(* Serving mode: tail latency vs offered load, CHARM vs RING vs the OS
   default.  The serving-side version of the paper's claim — a
   heterogeneity-aware mapping does not just raise batch throughput, it
   moves the latency knee: at equal offered load the CHARM-placed server
   holds lower p95/p99 and fewer SLO violations because job working sets
   stay on local chiplets while baselines spill to remote caches. *)

module Sys_ = Harness.Systems
module Server = Serving.Server
module Histogram = Serving.Histogram

let seed = 42
let n_workers = 32
let cache_scale = 16

let systems =
  [ (Sys_.Charm, "charm"); (Sys_.Ring, "ring"); (Sys_.Os_default, "os-default") ]

(* per-tenant offered load; aggregate is 3x this *)
let rates = [ 2_000.0; 5_000.0; 10_000.0; 20_000.0 ]

let config ~rate =
  let base = Server.default_config ~seed in
  {
    base with
    Server.tenants =
      List.map
        (fun t ->
          {
            t with
            Server.process = Serving.Arrivals.Open_loop { rate_per_s = rate };
          })
        base.Server.tenants;
  }

(* aggregate per-tenant latency distributions into one server-wide
   histogram instead of eyeballing the worst tenant: merged percentiles
   weight tenants by their actual traffic *)
let merged_latency r =
  let h = Histogram.create () in
  List.iter
    (fun (tr : Server.tenant_report) -> Histogram.merge h tr.Server.latency)
    r.Server.tenant_reports;
  h

let sum f r =
  List.fold_left
    (fun acc (tr : Server.tenant_report) -> acc + f tr)
    0 r.Server.tenant_reports

let run_one sys ~rate =
  let inst = Sys_.make ~cache_scale sys (Util.machine Sys_.Amd_milan) ~n_workers () in
  (* the driver's --trace sink, if set, rides in on the server config so
     job lifecycle and counter events are captured too *)
  Server.run inst { (config ~rate) with Server.trace = !Util.trace_sink }

let run () =
  Util.section
    "Serve - tail latency vs offered load (3 tenants, merged distribution)";
  Util.row "  %-10s | %-10s %9s %9s %9s %6s %6s\n" "rate/tenant" "system"
    "p50(us)" "p95(us)" "p99(us)" "viol" "shed";
  List.iter
    (fun rate ->
      List.iter
        (fun (sys, name) ->
          let r = run_one sys ~rate in
          let h = merged_latency r in
          Util.row "  %-10.0f | %-10s %9.1f %9.1f %9.1f %6d %6d\n" rate name
            (Histogram.p50 h /. 1e3)
            (Histogram.p95 h /. 1e3)
            (Histogram.p99 h /. 1e3)
            (sum (fun tr -> tr.Server.slo_violations) r)
            (sum (fun tr -> tr.Server.shed) r))
        systems;
      Util.row "\n")
    rates
