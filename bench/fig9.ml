(* Fig. 9: Streamcluster speedup over the no-runtime-support baseline,
   CHARM vs SHOAL, 1..128 cores.  Paper shape: CHARM peaks earlier and
   higher (21x @ 24 cores vs SHOAL's 16x @ 32), leads up to ~40 cores,
   then both decay as over-parallelism fragments the input. *)

module Sys_ = Harness.Systems

let cache_scale = 128  (* 256 KiB slices: the 8 MiB stream exceeds all caches *)

let params =
  {
    Workloads.Streamcluster.points = 16384;
    dims = 128;
    batch = 16384;
    k_max = 12;
    search_rounds = 4;
    seed = 5;
  }

let time sys ~workers =
  let inst = Sys_.make ~cache_scale sys Sys_.Amd_milan ~n_workers:workers () in
  Util.attach_trace inst;
  let o = Workloads.Streamcluster.run inst.Sys_.env params in
  o.Workloads.Streamcluster.result.Workloads.Workload_result.makespan_ns

let core_counts = [ 1; 4; 8; 16; 24; 32; 48; 64; 128 ]

let run () =
  Util.section "Fig. 9 - Streamcluster speedup: CHARM vs SHOAL";
  let base = time Sys_.Os_default ~workers:1 in
  Util.row "  (speedup over 1-core run without architecture-aware support)\n";
  Util.row "  %-6s %10s %10s\n" "cores" "charm" "shoal";
  List.iter
    (fun workers ->
      let charm = base /. time Sys_.Charm ~workers in
      let shoal = base /. time Sys_.Shoal ~workers in
      Util.row "  %-6d %9.2fx %9.2fx\n" workers charm shoal)
    core_counts

(* Tab. 2: access-class breakdown for the same workload. *)
let run_tab2 () =
  Util.section "Tab. 2 - memory/cache accesses: CHARM vs SHOAL";
  Util.row "  %-6s | %12s %12s | %12s %12s | %12s %12s\n" "cores" "local(charm)"
    "local(shoal)" "rmt(charm)" "rmt(shoal)" "dram(charm)" "dram(shoal)";
  List.iter
    (fun workers ->
      let counts sys =
        let inst = Sys_.make ~cache_scale sys Sys_.Amd_milan ~n_workers:workers () in
        Util.attach_trace inst;
        ignore (Workloads.Streamcluster.run inst.Sys_.env params);
        let r = Harness.Systems.report inst in
        ( r.Engine.Stats.accesses.Engine.Stats.local_chiplet,
          r.Engine.Stats.accesses.Engine.Stats.remote_chiplet,
          r.Engine.Stats.accesses.Engine.Stats.dram )
      in
      let cl, cr, cd = counts Sys_.Charm in
      let sl, sr, sd = counts Sys_.Shoal in
      Util.row "  %-6d | %12d %12d | %12d %12d | %12d %12d\n" workers cl sl cr sr cd sd)
    [ 8; 16; 32; 64 ]
