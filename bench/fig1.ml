(* Fig. 1: the headline summary — CHARM's speedup over the best NUMA-aware
   system per domain.  Paper: up to 3.9x in statistical computation, 2.3x
   in graph processing, consistent gains on memory-intensive workloads. *)

open Workloads
module Sys_ = Harness.Systems

let graph_speedup bench =
  let tp sys = fst (Util.run_graph_bench ~sys ~kind:Sys_.Amd_milan ~workers:64 bench) in
  let charm = tp Sys_.Charm in
  let best =
    List.fold_left
      (fun acc sys -> Float.max acc (tp sys))
      0.0
      [ Sys_.Ring; Sys_.Asymsched; Sys_.Sam ]
  in
  charm /. best

let sgd_speedup () =
  (* the paper's Fig. 11 comparison: DW+CHARM vs DimmWitted's own engine
     (kernel threads, coarse per-core tasks, NUMA-node replicas) *)
  let run sys ~grain =
    let inst = Sys_.make ~cache_scale:16 sys Sys_.Amd_milan ~n_workers:64 () in
    Util.attach_trace inst;
    let env = inst.Sys_.env in
    let data =
      Dataset.generate
        ~alloc:(fun ~elt_bytes ~count -> env.Exec_env.alloc_shared ~elt_bytes ~count)
        ~samples:1024 ~features:1024 ()
    in
    let o = Dimmwitted.run env ~replica:Sgd.Per_node ~epochs:2 ?grain data in
    o.Dimmwitted.gradient_gbps
  in
  run Sys_.Charm ~grain:None /. run Sys_.Dw_native ~grain:(Some (1024 / 64))

let streamcluster_speedup () =
  (* Fig. 9's configuration at 16 cores, where the paper reports the
     widest CHARM-vs-SHOAL gap *)
  let params =
    {
      Streamcluster.points = 16384;
      dims = 128;
      batch = 16384;
      k_max = 12;
      search_rounds = 4;
      seed = 5;
    }
  in
  let time sys =
    let inst = Sys_.make ~cache_scale:128 sys Sys_.Amd_milan ~n_workers:16 () in
    Util.attach_trace inst;
    (Streamcluster.run inst.Sys_.env params).Streamcluster.result
      .Workload_result.makespan_ns
  in
  time Sys_.Shoal /. time Sys_.Charm

let run () =
  Util.section "Fig. 1 - CHARM speedups vs NUMA-aware systems (summary)";
  Util.row "  %-34s %10s\n" "workload (vs best NUMA baseline)" "speedup";
  List.iter
    (fun bench ->
      Util.row "  %-34s %9.2fx\n"
        (Util.graph_bench_name bench ^ " @64 cores")
        (graph_speedup bench))
    [ Util.Bfs; Util.Cc; Util.Sssp; Util.Gups_w ];
  Util.row "  %-34s %9.2fx\n" "SGD gradient @64 cores (vs DW engine)" (sgd_speedup ());
  Util.row "  %-34s %9.2fx\n" "Streamcluster @24 cores (vs SHOAL)"
    (streamcluster_speedup ())
