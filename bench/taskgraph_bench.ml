(* Task-graph serving: inference tail latency vs offered load on a
   heterogeneous machine, communication-aware DAG mapping vs the blind
   round-robin baseline.  An inference tenant submits generated DNN task
   DAGs (chain / inception / microservice-fanout shapes) alongside an
   OLAP tenant, on a machine mixing big, little and accelerator-only
   chiplets behind a slow link.  The comm-aware mapper contracts heavy
   edges into one chiplet and steers dense clusters to the accelerator,
   so it should hold a lower inference p99 than blind mapping at every
   offered load. *)

module Sys_ = Harness.Systems
module Server = Serving.Server
module Histogram = Serving.Histogram
module Job = Serving.Job
module Mapper = Taskgraph.Mapper
module Graph = Taskgraph.Graph

let seed = 42
let n_workers = 8
let cache_scale = 16
let jobs_per_tenant = 40

(* the tiny-hetero preset as an inline spec, so the bench does not depend
   on the working directory (examples/topologies/tiny-hetero.topo is the
   same machine as a file) *)
let hetero_topology =
  "sockets 1; chiplets-per-socket 4; cores-per-chiplet 2; \
   chiplet-group-size 2; l3-bytes-per-chiplet 16KiB; l2-bytes-per-core \
   4KiB; line-bytes 64; mem-channels-per-socket 2; mem-bw-bytes-per-ns \
   4.8; chiplet-kinds big big little accel; link 3 lat-mult 1.5 bw 2"

let hetero_machine =
  match Sys_.custom_machine_of_spec hetero_topology with
  | Ok m -> m
  | Error msg -> failwith ("taskgraph bench: bad inline topology: " ^ msg)

let mappers = [ (Mapper.Blind, "blind"); (Mapper.Comm_aware, "comm-aware") ]

(* per-tenant offered load (jobs/s of virtual time) *)
let rates = [ 1_000.0; 2_000.0; 4_000.0 ]

let infer_mix =
  [
    (Job.Dag (Graph.Chain, 4), 2);
    (Job.Dag (Graph.Inception, 3), 1);
    (Job.Dag (Graph.Fanout, 4), 1);
  ]

let olap_mix = [ (Job.Tpch 1, 1); (Job.Tpch 3, 1); (Job.Tpch 6, 1) ]

let config ~comm_aware ~rate =
  let tenant name weight mix =
    {
      Server.name;
      weight;
      slo_factor = 3.0;
      process = Serving.Arrivals.Open_loop { rate_per_s = rate };
      jobs = jobs_per_tenant;
      mix;
      replicas = 1;
    }
  in
  {
    Server.tenants = [ tenant "infer" 2.0 infer_mix; tenant "olap" 1.0 olap_mix ];
    admission =
      { Serving.Admission.max_queue_per_tenant = 64; max_global_queue = 256 };
    max_inflight = 4;
    seed;
    data =
      {
        Job.default_data_config with
        graph_scale = 8;
        dag_comm_aware = comm_aware;
        seed = seed + 1;
      };
    trace = None;
    on_complete = None;
    check = false;
  }

(* same definition of a simulated event as [bench core]: accesses charged
   through the machine model plus scheduler events *)
let engine_events machine =
  let open Chipsim in
  let pmu = Machine.pmu machine in
  Machine.accesses machine
  + Pmu.total pmu Pmu.Context_switch
  + Pmu.total pmu Pmu.Task_stolen
  + Pmu.total pmu Pmu.Migration

let run_one ~comm_aware ~rate =
  let inst = Sys_.make ~cache_scale Sys_.Charm hetero_machine ~n_workers () in
  Util.attach_trace inst;
  let t0 = Unix.gettimeofday () in
  let report = Server.run inst (config ~comm_aware ~rate) in
  (report, engine_events inst.Sys_.machine, Unix.gettimeofday () -. t0)

let tenant_report (report : Server.report) name =
  List.find
    (fun (tr : Server.tenant_report) -> tr.Server.tenant = name)
    report.Server.tenant_reports

let run () =
  Util.section
    (Printf.sprintf
       "Taskgraph - inference p99 vs load (hetero machine, %d workers, DAG \
        tenant + OLAP tenant)"
       n_workers);
  Util.row "  %-10s | %-10s %9s %9s %9s %6s %6s %10s %7s\n" "rate/tenant"
    "mapper" "p50(us)" "p99(us)" "olap-p99" "done" "shed" "events" "wall(s)";
  let p99s = Hashtbl.create 16 in
  List.iter
    (fun rate ->
      List.iter
        (fun (policy, name) ->
          let comm_aware = policy = Mapper.Comm_aware in
          let report, events, wall = run_one ~comm_aware ~rate in
          let infer = tenant_report report "infer" in
          let olap = tenant_report report "olap" in
          let p99 = Histogram.p99 infer.Server.latency in
          Hashtbl.replace p99s (rate, name) p99;
          let completed =
            List.fold_left
              (fun acc (tr : Server.tenant_report) -> acc + tr.Server.completed)
              0 report.Server.tenant_reports
          in
          let shed =
            List.fold_left
              (fun acc (tr : Server.tenant_report) -> acc + tr.Server.shed)
              0 report.Server.tenant_reports
          in
          Util.row "  %-10.0f | %-10s %9.1f %9.1f %9.1f %6d %6d %10d %7.2f\n"
            rate name
            (Histogram.p50 infer.Server.latency /. 1e3)
            (p99 /. 1e3)
            (Histogram.p99 olap.Server.latency /. 1e3)
            completed shed events wall;
          Util.json_row ~experiment:"taskgraph"
            [
              ("mapper", Util.json_str name);
              ("rate_per_tenant", Util.json_num rate);
              ("workers", string_of_int n_workers);
              ( "infer_p50_us",
                Util.json_num (Histogram.p50 infer.Server.latency /. 1e3) );
              ("infer_p99_us", Util.json_num (p99 /. 1e3));
              ( "olap_p99_us",
                Util.json_num (Histogram.p99 olap.Server.latency /. 1e3) );
              ("completed", string_of_int completed);
              ("shed", string_of_int shed);
              ("events", string_of_int events);
              ("makespan_us", Util.json_num (report.Server.makespan_ns /. 1e3));
              ("wall_s", Util.json_num wall);
            ])
        mappers;
      Util.row "\n")
    rates;
  (* the headline claim: on a heterogeneous machine the comm-aware mapper
     must hold a lower inference p99 than blind mapping at every load *)
  let verdict =
    List.for_all
      (fun rate ->
        Hashtbl.find p99s (rate, "comm-aware") < Hashtbl.find p99s (rate, "blind"))
      rates
  in
  Util.row "  VERDICT: comm-aware mapping %s blind mapping on inference p99 %s\n"
    (if verdict then "beats" else "DOES NOT beat")
    (if verdict then "at every offered load" else "(regression!)");
  Util.json_row ~experiment:"taskgraph"
    [ ("verdict_comm_aware_beats_blind", if verdict then "true" else "false") ];
  if not verdict then exit 1
