(* Fig. 13: TPC-H queries on the mini column store (DuckDB-style
   morsel-driven execution) with and without the CHARM runtime, 8 cores.
   Paper shape: every query benefits, the join-heavy ones (Q3/4/5/7/9/10,
   Q21) by 1.2-1.5x; Q18 (skewed group-by) improves least. *)

module Sys_ = Harness.Systems

let cache_scale = 16
let sf = 0.01
let workers = 8

let dataset env =
  Olap.Tpch_data.generate
    ~alloc:(fun ~elt_bytes ~count ->
      env.Workloads.Exec_env.alloc_shared ~elt_bytes ~count)
    ~sf ()

let run () =
  Util.section "Fig. 13 - TPC-H query times: DuckDB-style engine +/- CHARM";
  Util.row "  (scale-factor-%.2f-shaped data, %d cores)\n" sf workers;
  Util.row "  %-5s %14s %14s %10s %s\n" "query" "duckdb (ms)" "+charm (ms)" "speedup" "";
  (* unmodified engine: OS-default thread placement (DuckDB's own scheduler
     is chiplet-blind); +CHARM overrides scheduling and thread mapping.
     Each query is run once cold, then measured warm (the paper averages
     10 repetitions). *)
  let base_inst = Sys_.make ~cache_scale Sys_.Os_default Sys_.Amd_milan ~n_workers:workers () in
  Util.attach_trace base_inst;
  let base_env = base_inst.Sys_.env in
  let base_data = dataset base_env in
  (* short-lived OLAP tasks: CHARM's profiling interval is configurable
     (paper 5.6); use a 10 us timer with a proportionally scaled threshold *)
  let charm_config =
    {
      Charm.Config.default with
      Charm.Config.scheduler_timer_ns = 10_000.0;
      rmt_chip_access_rate = 60.0;
    }
  in
  let charm_inst =
    Sys_.make ~cache_scale ~charm_config Sys_.Charm Sys_.Amd_milan
      ~n_workers:workers ()
  in
  Util.attach_trace charm_inst;
  let charm_env = charm_inst.Sys_.env in
  let charm_data = dataset charm_env in
  let total_base = ref 0.0 and total_charm = ref 0.0 in
  let reps = 4 in
  let measure env data q =
    ignore (Olap.Tpch_queries.execute env data q);
    let result = ref { Olap.Tpch_queries.query = q; checksum = 0.0; rows_out = 0 } in
    let total = ref 0.0 in
    for _ = 1 to reps do
      let r, t = Olap.Tpch_queries.execute env data q in
      result := r;
      total := !total +. t
    done;
    (!result, !total /. float_of_int reps)
  in
  List.iter
    (fun q ->
      let rb, tb = measure base_env base_data q in
      let rc, tc = measure charm_env charm_data q in
      assert (abs_float (rb.Olap.Tpch_queries.checksum -. rc.Olap.Tpch_queries.checksum)
              <= 1e-6 *. (1.0 +. abs_float rb.Olap.Tpch_queries.checksum));
      total_base := !total_base +. tb;
      total_charm := !total_charm +. tc;
      Util.row "  Q%-4d %14.3f %14.3f %9.2fx %s\n" q (tb /. 1e6) (tc /. 1e6)
        (tb /. tc)
        (if List.mem q Olap.Tpch_queries.join_heavy then "(join-heavy)" else ""))
    Olap.Tpch_queries.query_numbers;
  Util.row "  %-5s %14.3f %14.3f %9.2fx\n" "all" (!total_base /. 1e6)
    (!total_charm /. 1e6)
    (!total_base /. !total_charm)
