(* Fig. 12: thread concurrency during SGD at 32 cores.  Paper shape:
   DimmWitted's std::async model fluctuates around a mean of ~16 active
   threads while creating 641 threads in total; CHARM holds a stable ~31
   with only ~34 threads created (cooperative coroutines on pinned
   workers). *)

open Workloads
module Sys_ = Harness.Systems

let workers = 32

let observe sys =
  let inst = Sys_.make ~cache_scale:16 sys Sys_.Amd_milan ~n_workers:workers () in
  Util.attach_trace inst;
  let env = inst.Sys_.env in
  let data =
    Dataset.generate
      ~alloc:(fun ~elt_bytes ~count -> env.Exec_env.alloc_shared ~elt_bytes ~count)
      ~samples:1024 ~features:512 ()
  in
  let model = Sgd.make_model env ~replica:Sgd.Per_node ~features:512 in
  for _ = 1 to 5 do
    ignore (Sgd.gradient_epoch env model data : Workload_result.t)
  done;
  let sched = env.Exec_env.sched in
  let samples = Engine.Sched.concurrency_samples sched in
  (* time-weighted statistics: each sample's concurrency holds until the
     next event; at most one thread runs per core at a time *)
  let n = Array.length samples in
  let mean, var =
    if n < 2 then (0.0, 0.0)
    else begin
      let total_time = ref 0.0 and acc = ref 0.0 and acc2 = ref 0.0 in
      for i = 0 to n - 2 do
        let t0, live = samples.(i) in
        let t1, _ = samples.(i + 1) in
        let dt = Float.max 0.0 (t1 -. t0) in
        (* native: threads come and go with tasks (clamped to cores, i.e.
           schedulable concurrency); CHARM: the worker pool is fixed, so
           thread concurrency is the pool size for the whole run *)
        let v =
          match sys with
          | Sys_.Dw_native | Sys_.Charm_os_threads ->
              float_of_int (min live workers)
          | _ -> float_of_int (workers + 1)
        in
        total_time := !total_time +. dt;
        acc := !acc +. (v *. dt);
        acc2 := !acc2 +. (v *. v *. dt)
      done;
      if !total_time <= 0.0 then (0.0, 0.0)
      else begin
        let mean = !acc /. !total_time in
        (mean, (!acc2 /. !total_time) -. (mean *. mean))
      end
    end
  in
  let threads_made =
    match sys with
    | Sys_.Dw_native | Sys_.Charm_os_threads ->
        Engine.Sched.total_spawned sched  (* one kernel thread per task *)
    | _ -> workers + 1  (* pinned workers + the main thread *)
  in
  (mean, sqrt var, threads_made)

let run () =
  Util.section "Fig. 12 - thread concurrency during SGD (32 cores)";
  Util.row "  %-22s %12s %12s %14s\n" "system" "mean" "stddev" "threads made";
  List.iter
    (fun (label, sys) ->
      let mean, sd, spawned = observe sys in
      Util.row "  %-22s %12.1f %12.1f %14d\n" label mean sd spawned)
    [ ("DimmWitted (native)", Sys_.Dw_native); ("DW+CHARM", Sys_.Charm) ]
