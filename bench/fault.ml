(* Fault timeline: tail latency before / during / after a chiplet
   meltdown, CHARM vs RING vs the OS default.

   At t=3ms of a steady serving run, chiplet 0 melts down: every core
   throttles to 0.35x, the L3 drops to 2 ways and the I/O-die link
   degrades 6x (Faults.Schedule.chiplet_meltdown).  The claim under test:
   CHARM's health monitor flags the chiplet and the policy flees it, so
   its p99 re-converges to within 2x of the pre-fault tail once the gang
   has resettled — while fault-blind placements keep scheduling work onto
   the degraded silicon and never recover. *)

module Sys_ = Harness.Systems
module Server = Serving.Server
module Histogram = Serving.Histogram

let seed = 42
let n_workers = 32
let cache_scale = 16
let rate = 5_000.0  (* per tenant; aggregate 3x *)
let jobs = 60  (* per tenant: ~12 ms of arrivals *)
let fault_us = 3_000.0
let settle_us = 4_000.0

let systems =
  [ (Sys_.Charm, "charm"); (Sys_.Ring, "ring"); (Sys_.Os_default, "os-default") ]

(* latency histograms windowed by job arrival time *)
type windows = { pre : Histogram.t; during : Histogram.t; post : Histogram.t }

let run_one sys =
  let inst = Sys_.make ~cache_scale sys (Util.machine Sys_.Amd_milan) ~n_workers () in
  let topo = Chipsim.Machine.topology inst.Sys_.machine in
  let schedule =
    Faults.Schedule.chiplet_meltdown ~topo ~chiplet:0 ~at_us:fault_us ()
  in
  ignore
    (Faults.Injector.attach inst.Sys_.env.Workloads.Exec_env.sched schedule
      : Faults.Injector.t);
  let w =
    {
      pre = Histogram.create ();
      during = Histogram.create ();
      post = Histogram.create ();
    }
  in
  let on_complete ~tenant:_ ~kind:_ ~submit_ns ~finish_ns =
    let h =
      if submit_ns < fault_us *. 1e3 then w.pre
      else if submit_ns < (fault_us +. settle_us) *. 1e3 then w.during
      else w.post
    in
    Histogram.observe h (finish_ns -. submit_ns)
  in
  let base = Server.default_config ~seed in
  let cfg =
    {
      base with
      Server.tenants =
        List.map
          (fun t ->
            {
              t with
              Server.process = Serving.Arrivals.Open_loop { rate_per_s = rate };
              jobs;
            })
          base.Server.tenants;
      on_complete = Some on_complete;
      trace = !Util.trace_sink;
    }
  in
  ignore (Server.run inst cfg : Server.report);
  (w, inst)

let run () =
  Util.section
    "Fault - p99 across a chiplet-0 meltdown at t=3ms (dvfs 0.35x, L3 2 \
     ways, link 6x)";
  Util.row "  %-10s %12s %12s %12s %9s %s\n" "system" "pre(us)" "during(us)"
    "post(us)" "post/pre" "verdict";
  List.iter
    (fun (sys, name) ->
      let w, inst = run_one sys in
      let pre = Histogram.p99 w.pre and post = Histogram.p99 w.post in
      let ratio = if pre > 0.0 then post /. pre else 0.0 in
      let verdict = if ratio <= 2.0 then "recovered" else "degraded" in
      Util.row "  %-10s %12.1f %12.1f %12.1f %9.2f %s\n" name (pre /. 1e3)
        (Histogram.p99 w.during /. 1e3)
        (post /. 1e3) ratio verdict;
      match inst.Sys_.charm with
      | Some rt ->
          let st = Charm.Policy.stats (Charm.Runtime.policy rt) in
          (* detection latency = first sick flag for the melted chiplet at
             or after the fault instant (warm-up imbalance can flag other
             chiplets earlier) *)
          let detect =
            Charm.Health_monitor.events (Charm.Runtime.health rt)
            |> List.filter_map (fun e ->
                   if
                     e.Charm.Health_monitor.chiplet = 0
                     && e.Charm.Health_monitor.sick
                     && e.Charm.Health_monitor.at_ns >= fault_us *. 1e3
                   then Some e.Charm.Health_monitor.at_ns
                   else None)
            |> function [] -> None | ns -> Some (List.fold_left min infinity ns)
          in
          (match detect with
          | Some flag_ns ->
              Util.row
                "  %-10s detection latency %.0f us, %d health migrations\n" ""
                ((flag_ns -. (fault_us *. 1e3)) /. 1e3)
                st.Charm.Policy.health_migrations
          | None ->
              Util.row "  %-10s no sick flag raised (%d health migrations)\n"
                "" st.Charm.Policy.health_migrations)
      | None -> ())
    systems
