(* Fleet mode: cluster tail latency vs offered load, CHARM-aware routing
   vs chiplet-blind policies.  The paper's heterogeneity argument lifted
   one level: when a machine in the fleet degrades mid-run (every core of
   shard 0 throttled to quarter speed), a router that reads per-shard
   capacity and sick-chiplet fractions steers new and relocated jobs away
   immediately, while least-loaded only reacts once queues back up and
   round-robin never reacts at all.  Traffic is diurnal with one hot
   tenant, so the router is exercised across the load swing. *)

module Sys_ = Harness.Systems
module Server = Serving.Server
module Histogram = Serving.Histogram
module Metrics = Serving.Metrics
module Cluster = Fleet.Cluster
module Router = Fleet.Router
module Schedule = Faults.Schedule

let seed = 42
let n_shards = 4
let n_workers = 16
let cache_scale = 16
let jobs_per_tenant = 90
let fault_at_us = 400.0

let policies =
  [
    (Router.Round_robin, "round-robin");
    (Router.Least_loaded, "least-loaded");
    (Router.Charm_aware, "charm");
  ]

(* per-tenant offered load; the hot tenant runs at twice this *)
let rates = [ 4_000.0; 8_000.0; 16_000.0 ]

(* shard 0 limps from [fault_at_us]: every core throttled to quarter
   speed — the machine-level analogue of the sick-chiplet scenario.
   Mild faults (a few cores offline) barely dent a 128-core machine's
   online capacity, so the bench uses a degradation heavy enough to
   cross the relocation threshold. *)
let shard0_fault =
  let topo = Sys_.topology (Util.machine Sys_.Amd_milan) ~cache_scale in
  List.init (Chipsim.Topology.num_cores topo) (fun core ->
      {
        Schedule.at_ns = fault_at_us *. 1e3;
        kind = Schedule.Dvfs { core; speed = 0.25 };
      })

let config ~policy ~rate =
  let base = Cluster.default_config ~seed in
  let serve = base.Cluster.serve in
  let tenants =
    List.mapi
      (fun i t ->
        let r = if i = 0 then 2.0 *. rate else rate in
        {
          t with
          Server.process = Serving.Arrivals.Open_loop { rate_per_s = r };
          jobs = jobs_per_tenant;
        })
      serve.Server.tenants
  in
  {
    base with
    Cluster.n_shards;
    machines = [ Util.machine Sys_.Amd_milan ];
    n_workers;
    cache_scale;
    policy;
    serve = { serve with Server.tenants; check = false };
    diurnal_amplitude = 0.6;
    faults = [ (0, shard0_fault) ];
  }

let sum_tenants f (res : Cluster.result) =
  List.fold_left
    (fun acc (sr : Cluster.shard_result) ->
      List.fold_left
        (fun acc (tr : Server.tenant_report) -> acc + f tr)
        acc sr.Cluster.report.Server.tenant_reports)
    0 res.Cluster.shard_results

let run_one ~policy ~rate =
  let t0 = Unix.gettimeofday () in
  let res = Cluster.run (config ~policy ~rate) in
  (res, Unix.gettimeofday () -. t0)

let run () =
  Util.section
    (Printf.sprintf
       "Fleet - cluster p99 vs load (%d shards, shard 0 faulted at %.0fus, \
        diurnal, hot tenant)"
       n_shards fault_at_us);
  Util.row "  %-10s | %-12s %9s %9s %6s %6s %6s %7s\n" "rate/tenant" "router"
    "p50(us)" "p99(us)" "done" "shed" "reloc" "wall(s)";
  let p99s = Hashtbl.create 16 in
  List.iter
    (fun rate ->
      List.iter
        (fun (policy, name) ->
          let res, wall = run_one ~policy ~rate in
          let h = res.Cluster.fleet_latency in
          let completed = sum_tenants (fun tr -> tr.Server.completed) res in
          let shed =
            res.Cluster.router_shed
            + sum_tenants (fun tr -> tr.Server.shed) res
          in
          let p99 = Histogram.p99 h in
          Hashtbl.replace p99s (rate, name) p99;
          let work =
            Metrics.counter_value res.Cluster.registry "serve.work_items"
          in
          Util.row "  %-10.0f | %-12s %9.1f %9.1f %6d %6d %6d %7.2f\n" rate
            name
            (Histogram.p50 h /. 1e3)
            (p99 /. 1e3) completed shed res.Cluster.relocations wall;
          Util.json_row ~experiment:"fleet"
            [
              ("policy", Util.json_str name);
              ("rate_per_tenant", Util.json_num rate);
              ("shards", string_of_int n_shards);
              ("p50_us", Util.json_num (Histogram.p50 h /. 1e3));
              ("p99_us", Util.json_num (p99 /. 1e3));
              ("completed", string_of_int completed);
              ("shed", string_of_int shed);
              ("relocations", string_of_int res.Cluster.relocations);
              ("makespan_us", Util.json_num (res.Cluster.makespan_ns /. 1e3));
              ("wall_s", Util.json_num wall);
              ( "sim_work_items_per_s",
                Util.json_num (float_of_int work /. Float.max 1e-9 wall) );
            ])
        policies;
      Util.row "\n")
    rates;
  (* the headline claim: with a degraded machine in the fleet, the
     chiplet-aware router must hold a lower cluster p99 than both blind
     policies at every offered load *)
  let verdict =
    List.for_all
      (fun rate ->
        let p name = Hashtbl.find p99s (rate, name) in
        p "charm" < p "least-loaded" && p "charm" < p "round-robin")
      rates
  in
  Util.row "  VERDICT: charm-aware routing %s blind policies on p99 %s\n"
    (if verdict then "beats" else "DOES NOT beat")
    (if verdict then "at every offered load" else "(regression!)");
  Util.json_row ~experiment:"fleet"
    [ ("verdict_charm_beats_blind", if verdict then "true" else "false") ];
  if not verdict then exit 1
