(* Power figure: serving tail latency vs simulated watts on the
   heterogeneous machine, energy-aware CHARM vs cap-oblivious CHARM.

   Three runtimes serve the same two-tenant mix on tiny-hetero:

     oblivious  - plain CHARM with energy metering on (the meter is
                  observation only; this schedule is bit-identical to a
                  meter-off run) and no cap: unconstrained watts
     capped     - a machine power cap with energy_weight = 0: the
                  Power_cap controller sheds the hottest chiplet's DVFS
                  whenever the sliding-window estimate exceeds the cap,
                  but placement stays cap-oblivious, so work keeps
                  landing on throttled silicon
     charm-edp  - the same cap plus Config.energy_weight > 0: placement
                  consults the controller's hot-chiplet oracle and
                  discounts flee targets by their kind's power density,
                  steering work off throttled chiplets

   The headline claim is a latency-vs-watts frontier: both capped
   runtimes must actuate (sheds > 0) and hold average power below the
   oblivious draw, and CHARM-EDP must pay a smaller tail-latency premium
   for those watts than the cap-oblivious placement does.  1 pJ/ns is
   exactly 1 mW, so watts here are combined (memory + compute)
   picojoules over the serving makespan. *)

module Sys_ = Harness.Systems
module Server = Serving.Server
module Histogram = Serving.Histogram
module Job = Serving.Job
module Machine = Chipsim.Machine

let seed = 42
let n_workers = 5
let cache_scale = 16
let jobs_per_tenant = 30
let rate = 3_000.0
let cap_mw = 2.0
let edp_weight = 2.0

(* a grown tiny-hetero: six singleton-group chiplets (3 big, 2 little,
   1 accelerator) so a fleeing worker faces a genuine kind choice — a
   free big core and a free little core at the same distance rank — and
   the EDP score, not the distance rank, decides where work lands *)
let hetero_topology =
  "sockets 1; chiplets-per-socket 6; cores-per-chiplet 2; \
   chiplet-group-size 1; l3-bytes-per-chiplet 16KiB; l2-bytes-per-core \
   4KiB; line-bytes 64; mem-channels-per-socket 2; mem-bw-bytes-per-ns \
   4.8; chiplet-kinds big big big little little accel; link 5 lat-mult \
   1.5 bw 2"

let hetero_machine =
  match Sys_.custom_machine_of_spec hetero_topology with
  | Ok m -> m
  | Error msg -> failwith ("power bench: bad inline topology: " ^ msg)

let configs =
  [
    ("oblivious", Charm.Config.default);
    ("capped", { Charm.Config.default with power_cap_mw = cap_mw });
    ( "charm-edp",
      { Charm.Config.default with energy_weight = edp_weight; power_cap_mw = cap_mw } );
  ]

let graph_mix = [ (Job.Bfs, 2); (Job.Pagerank, 1) ]
let olap_mix = [ (Job.Tpch 1, 1); (Job.Tpch 6, 1) ]

let server_config () =
  let tenant name weight mix =
    {
      Server.name;
      weight;
      slo_factor = 3.0;
      process = Serving.Arrivals.Open_loop { rate_per_s = rate };
      jobs = jobs_per_tenant;
      mix;
      replicas = 1;
    }
  in
  {
    Server.tenants = [ tenant "graph" 2.0 graph_mix; tenant "olap" 1.0 olap_mix ];
    admission =
      { Serving.Admission.max_queue_per_tenant = 64; max_global_queue = 256 };
    max_inflight = 4;
    seed;
    data = { Job.default_data_config with graph_scale = 8; seed = seed + 1 };
    trace = None;
    on_complete = None;
    check = false;
  }

let engine_events machine =
  let open Chipsim in
  let pmu = Machine.pmu machine in
  Machine.accesses machine
  + Pmu.total pmu Pmu.Context_switch
  + Pmu.total pmu Pmu.Task_stolen
  + Pmu.total pmu Pmu.Migration

type row = {
  p99_us : float;
  avg_mw : float;
  energy_uj : float;
  sheds : int;
}

let run_one charm_config =
  let inst =
    Sys_.make ~cache_scale ~charm_config Sys_.Charm hetero_machine ~n_workers ()
  in
  Util.attach_trace inst;
  Engine.Sched.set_energy inst.Sys_.env.Workloads.Exec_env.sched true;
  let t0 = Unix.gettimeofday () in
  let report = Server.run inst (server_config ()) in
  let wall = Unix.gettimeofday () -. t0 in
  let energy_pj = Machine.combined_energy_pj inst.Sys_.machine in
  let sheds, peak_mw =
    match Option.map Charm.Runtime.power_cap inst.Sys_.charm with
    | Some (Some pc) ->
        (Charm.Power_cap.sheds pc, Charm.Power_cap.max_power_mw pc)
    | _ -> (0, 0.0)
  in
  (report, energy_pj, sheds, peak_mw, engine_events inst.Sys_.machine, wall)

let tenant_report (report : Server.report) name =
  List.find
    (fun (tr : Server.tenant_report) -> tr.Server.tenant = name)
    report.Server.tenant_reports

let run () =
  Util.section
    (Printf.sprintf
       "Power - serving tail latency vs watts (hetero machine, %d workers, \
        cap %.1f mW, EDP weight %g)"
       n_workers cap_mw edp_weight);
  Util.row "  %-10s %9s %9s %9s %9s %7s %9s %6s %10s %7s\n" "runtime"
    "p50(us)" "p99(us)" "avg(mW)" "peak(mW)" "sheds" "uJ" "done" "events"
    "wall(s)";
  let rows = Hashtbl.create 8 in
  List.iter
    (fun (name, charm_config) ->
      let report, energy_pj, sheds, peak_mw, events, wall =
        run_one charm_config
      in
      let graph = tenant_report report "graph" in
      let p99 = Histogram.p99 graph.Server.latency in
      let avg_mw = energy_pj /. report.Server.makespan_ns in
      let completed =
        List.fold_left
          (fun acc (tr : Server.tenant_report) -> acc + tr.Server.completed)
          0 report.Server.tenant_reports
      in
      Hashtbl.replace rows name
        { p99_us = p99 /. 1e3; avg_mw; energy_uj = energy_pj /. 1e6; sheds };
      Util.row "  %-10s %9.1f %9.1f %9.2f %9.2f %7d %9.2f %6d %10d %7.2f\n"
        name
        (Histogram.p50 graph.Server.latency /. 1e3)
        (p99 /. 1e3) avg_mw peak_mw sheds (energy_pj /. 1e6) completed events
        wall;
      Util.json_row ~experiment:"power"
        [
          ("runtime", Util.json_str name);
          ("rate_per_tenant", Util.json_num rate);
          ("workers", string_of_int n_workers);
          ("graph_p50_us", Util.json_num (Histogram.p50 graph.Server.latency /. 1e3));
          ("graph_p99_us", Util.json_num (p99 /. 1e3));
          ("avg_power_mw", Util.json_num avg_mw);
          ("peak_power_mw", Util.json_num peak_mw);
          ("sheds", string_of_int sheds);
          ("energy_uj", Util.json_num (energy_pj /. 1e6));
          ("completed", string_of_int completed);
          ("events", string_of_int events);
          ("makespan_us", Util.json_num (report.Server.makespan_ns /. 1e3));
          ("wall_s", Util.json_num wall);
        ])
    configs;
  let obliv = Hashtbl.find rows "oblivious" in
  let capped = Hashtbl.find rows "capped" in
  let edp = Hashtbl.find rows "charm-edp" in
  (* the frontier claim: both capped runtimes actuate and save watts,
     and EDP-aware placement pays a smaller tail premium for the cap
     than cap-oblivious placement does *)
  let caps_actuate = capped.sheds > 0 && edp.sheds > 0 in
  let caps_save = capped.avg_mw < obliv.avg_mw && edp.avg_mw < obliv.avg_mw in
  let edp_tail_better = edp.p99_us <= capped.p99_us in
  let edp_tail_bounded = edp.p99_us <= obliv.p99_us *. 1.25 in
  let verdict = caps_actuate && caps_save && edp_tail_better && edp_tail_bounded in
  Util.row
    "  VERDICT: CHARM-EDP %s the latency-vs-watts frontier (%.2f mW vs \
     oblivious %.2f mW, p99 %+.0f%% vs cap-oblivious %+.0f%%)\n"
    (if verdict then "holds" else "DOES NOT hold")
    edp.avg_mw obliv.avg_mw
    ((edp.p99_us /. obliv.p99_us -. 1.0) *. 100.0)
    ((capped.p99_us /. obliv.p99_us -. 1.0) *. 100.0);
  Util.json_row ~experiment:"power"
    [ ("verdict_energy_aware_on_frontier", if verdict then "true" else "false") ];
  if not verdict then exit 1
