(* Fig. 11: SGD (logistic regression) loss and gradient throughput across
   core counts for DimmWitted's native strategies, DW+CHARM, and
   DW+CHARM+std::async.  Paper shape: DW-NUMA-node is the best native
   strategy but plateaus (~50 GB/s loss, ~40 GB/s gradient); DW+CHARM
   scales far beyond (165 / 106 GB/s peaks); the std::async variant drops
   below the native strategies. *)

open Workloads
module Sys_ = Harness.Systems

let cache_scale = 16
let samples = 1024
let features = 1024

type config = {
  label : string;
  sys : Sys_.sys;
  replica : Sgd.replica;
  coarse : bool;  (** DimmWitted-native task grain: one chunk per core *)
}

let configs =
  [
    { label = "DW-per-core"; sys = Sys_.Dw_native; replica = Sgd.Per_core; coarse = true };
    { label = "DW-NUMA-node"; sys = Sys_.Dw_native; replica = Sgd.Per_node; coarse = true };
    { label = "DW-per-machine"; sys = Sys_.Dw_native; replica = Sgd.Per_machine; coarse = true };
    { label = "DW+CHARM"; sys = Sys_.Charm; replica = Sgd.Per_node; coarse = false };
    { label = "DW+CHARM+async"; sys = Sys_.Charm_os_threads; replica = Sgd.Per_node; coarse = false };
  ]

let core_counts = [ 8; 16; 32; 64; 128 ]

let run_config config ~workers =
  let inst = Sys_.make ~cache_scale config.sys Sys_.Amd_milan ~n_workers:workers () in
  Util.attach_trace inst;
  let env = inst.Sys_.env in
  let data =
    Dataset.generate
      ~alloc:(fun ~elt_bytes ~count -> env.Exec_env.alloc_shared ~elt_bytes ~count)
      ~samples ~features ()
  in
  let grain = if config.coarse then Some (max 1 (samples / workers)) else None in
  let o = Dimmwitted.run env ~replica:config.replica ~epochs:2 ?grain data in
  (o.Dimmwitted.loss_gbps, o.Dimmwitted.gradient_gbps)

let table pick title =
  Util.subsection title;
  Util.row "  %-6s" "cores";
  List.iter (fun c -> Util.row " %16s" c.label) configs;
  Util.row "\n";
  List.iter
    (fun workers ->
      Util.row "  %-6d" workers;
      List.iter
        (fun config ->
          let loss, grad = run_config config ~workers in
          Util.row " %14.1fGB" (pick (loss, grad)))
        configs;
      Util.row "\n")
    core_counts

let run () =
  Util.section "Fig. 11 - SGD throughput (GB/s of virtual time)";
  table fst "(a) logistic loss";
  table snd "(b) gradient"
