(* §4.6 sensitivity analysis + the DESIGN.md ablations: threshold sweep,
   timer sweep, approach comparison, chiplet-first stealing, memory
   rebinding, and profiling on/off.  The paper picks
   RMT_CHIP_ACCESS_RATE = 300 per timer interval as the best balance. *)

module Sys_ = Harness.Systems

(* like Util.run_graph_bench, but with a custom CHARM config *)
let run_with_config config bench ~workers =
  let inst =
    Sys_.make ~cache_scale:Util.default_cache_scale ~charm_config:config
      Sys_.Charm Sys_.Amd_milan ~n_workers:workers ()
  in
  Util.attach_trace inst;
  let env = inst.Sys_.env in
  let open Workloads in
  let result =
    match bench with
    | Util.Bfs ->
        let g = Util.build_graph env ~scale:Util.default_graph_scale ~weighted:false in
        snd (Bfs.run env g ~source:0)
    | Util.Gups_w ->
        Gups.run env { Gups.table_words = 1 lsl 20; updates = 1 lsl 16; seed = 17 }
    | _ -> invalid_arg "ablation: only BFS and GUPS are swept"
  in
  Workload_result.throughput_per_s result

let threshold_sweep () =
  Util.subsection "RMT_CHIP_ACCESS_RATE sweep (events per timer, 32 cores)";
  Util.row "  %-10s %12s %12s\n" "threshold" "BFS" "GUPS";
  List.iter
    (fun threshold ->
      let config =
        { Charm.Config.default with Charm.Config.rmt_chip_access_rate = threshold }
      in
      Util.row "  %-10.0f %12s %12s\n" threshold
        (Util.pp_throughput (run_with_config config Util.Bfs ~workers:32))
        (Util.pp_throughput (run_with_config config Util.Gups_w ~workers:32)))
    [ 75.0; 150.0; 300.0; 600.0; 1200.0 ]

let timer_sweep () =
  Util.subsection "SCHEDULER_TIMER sweep (32 cores)";
  Util.row "  %-10s %12s %12s\n" "timer(us)" "BFS" "GUPS";
  List.iter
    (fun timer_us ->
      let config =
        {
          Charm.Config.default with
          Charm.Config.scheduler_timer_ns = timer_us *. 1000.0;
        }
      in
      Util.row "  %-10.1f %12s %12s\n" timer_us
        (Util.pp_throughput (run_with_config config Util.Bfs ~workers:32))
        (Util.pp_throughput (run_with_config config Util.Gups_w ~workers:32)))
    [ 12.5; 25.0; 50.0; 100.0; 200.0 ]

let approach_compare () =
  Util.subsection "controller approach (32 cores)";
  Util.row "  %-18s %12s %12s\n" "approach" "BFS" "GUPS";
  List.iter
    (fun approach ->
      let config = { Charm.Config.default with Charm.Config.approach } in
      Util.row "  %-18s %12s %12s\n"
        (Charm.Config.approach_to_string approach)
        (Util.pp_throughput (run_with_config config Util.Bfs ~workers:32))
        (Util.pp_throughput (run_with_config config Util.Gups_w ~workers:32)))
    [ Charm.Config.Location_centric; Charm.Config.Cache_centric; Charm.Config.Adaptive ]

(* A workload whose demands shift mid-run (paper 3, challenge 3): each of
   8 workers first re-scans a small private array (any placement fits),
   then a 2 MiB one.  Packed on one chiplet the second phase thrashes the
   shared slice; the adaptive policy spreads the gang so every worker gets
   its own slice. *)
let phased_scan config =
  let inst =
    Harness.Systems.make ~cache_scale:Util.default_cache_scale
      ~charm_config:config Harness.Systems.Charm Harness.Systems.Amd_milan
      ~n_workers:8 ()
  in
  Util.attach_trace inst;
  let env = inst.Harness.Systems.env in
  let module Sched = Engine.Sched in
  let small_words = 1 lsl 12 and big_words = 1 lsl 18 in
  let regions =
    Array.init 8 (fun _ ->
        ( env.Workloads.Exec_env.alloc_shared ~elt_bytes:8 ~count:small_words,
          env.Workloads.Exec_env.alloc_shared ~elt_bytes:8 ~count:big_words ))
  in
  let passes = 6 in
  let makespan =
    env.Workloads.Exec_env.run (fun ctx ->
        Engine.Par.all_do ctx (fun ctx' w ->
            let small, big = regions.(w) in
            for _ = 1 to passes do
              Sched.Ctx.read_range ctx' small ~lo:0 ~hi:small_words;
              Sched.Ctx.yield ctx'
            done;
            for _ = 1 to passes do
              Sched.Ctx.read_range ctx' big ~lo:0 ~hi:big_words;
              Sched.Ctx.yield ctx'
            done))
  in
  let lines = 8 * passes * ((small_words + big_words) / 8) in
  float_of_int lines /. (makespan /. 1e9)

let toggles () =
  Util.subsection "design toggles (BFS @32 cores; phase-shift scan @8 cores)";
  let show label config =
    Util.row "  %-34s %12s %12s\n" label
      (Util.pp_throughput (run_with_config config Util.Bfs ~workers:32))
      (Util.pp_throughput (phased_scan config))
  in
  Util.row "  %-34s %12s %12s\n" "" "BFS" "phased-scan";
  show "full CHARM" Charm.Config.default;
  show "random-victim stealing"
    { Charm.Config.default with Charm.Config.chiplet_first_steal = false };
  show "no memory rebinding on migrate"
    { Charm.Config.default with Charm.Config.rebind_memory_on_migrate = false };
  show "centralized arbiter (not decentr.)"
    { Charm.Config.default with Charm.Config.decentralized = false };
  show "profiling/adaptation off"
    { Charm.Config.default with Charm.Config.profile_while_running = false }

let run () =
  Util.section "Sensitivity + ablations (paper 4.6 and DESIGN.md)";
  threshold_sweep ();
  timer_sweep ();
  approach_compare ();
  toggles ()
