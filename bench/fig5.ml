(* Fig. 5: LocalCache vs DistributedCache write microbenchmark (§2.3).
   8 threads write disjoint segments of one vector, iterating with a
   barrier; the data size sweeps across the (scaled) single-chiplet L3
   capacity.  Paper shape: LocalCache wins below one L3 slice, then
   DistributedCache wins, peaking around 2.5x on huge arrays. *)

open Workloads
module Sched = Engine.Sched
module Sys_ = Harness.Systems

let cache_scale = 16  (* L3 slice = 2 MiB; aggregate on the socket = 16 MiB *)
let threads = 8

let time_one sys ~words =
  let inst = Sys_.make ~cache_scale sys Sys_.Amd_milan_1s ~n_workers:threads () in
  Util.attach_trace inst;
  let env = inst.Sys_.env in
  let region = env.Exec_env.alloc_shared ~elt_bytes:8 ~count:words in
  let seg = words / threads in
  let lines = max 1 (words / 8) in
  let iters = max 2 (min 16 (3_000_000 / lines)) in
  let barrier = Engine.Barrier.create threads in
  let makespan =
    env.Exec_env.run (fun ctx ->
        Engine.Par.all_do ctx (fun ctx' w ->
            let lo = w * seg and hi = (w + 1) * seg in
            (* warm-up pass (the paper sets all elements to 1 first) *)
            Sched.Ctx.write_range ctx' region ~lo ~hi;
            Engine.Barrier.wait ctx' barrier;
            for _ = 1 to iters do
              Sched.Ctx.write_range ctx' region ~lo ~hi;
              Engine.Barrier.wait ctx' barrier
            done))
  in
  makespan /. float_of_int iters

let run () =
  Util.section "Fig. 5 - LocalCache vs DistributedCache write speedup";
  Util.row "  (single socket, 8 chiplets; L3 slice scaled to 2 MiB)\n";
  Util.row "  %-10s %14s %14s %10s\n" "size" "local (us)" "distrib (us)" "local/dist";
  let sizes_bytes =
    [ 64 * 1024; 256 * 1024; 1 lsl 20; 2 * (1 lsl 20); 4 * (1 lsl 20);
      8 * (1 lsl 20); 16 * (1 lsl 20); 32 * (1 lsl 20) ]
  in
  List.iter
    (fun bytes ->
      let words = bytes / 8 in
      let local = time_one Sys_.Local_cache ~words in
      let dist = time_one Sys_.Distributed_cache ~words in
      let label =
        if bytes >= 1 lsl 20 then Printf.sprintf "%dMiB" (bytes / (1 lsl 20))
        else Printf.sprintf "%dKiB" (bytes / 1024)
      in
      Util.row "  %-10s %14.2f %14.2f %10.2f\n" label (local /. 1e3) (dist /. 1e3)
        (local /. dist))
    sizes_bytes;
  Util.row "  (ratio < 1: LocalCache faster; > 1: DistributedCache faster)\n"
