(* Fig. 14: OLTP commits/s under the static LocalCache vs DistributedCache
   policies across core counts.  Paper shape: the two curves are nearly
   identical for both YCSB and TPC-C — commit latency and synchronization
   dwarf cache-placement effects. *)

module Sys_ = Harness.Systems

let cache_scale = 32
let core_counts = [ 8; 16; 32; 64 ]

let env sys ~workers =
  let inst = Sys_.make ~cache_scale sys Sys_.Amd_milan ~n_workers:workers () in
  Util.attach_trace inst;
  inst.Sys_.env

let run () =
  Util.section "Fig. 14 - OLTP commits/s: LocalCache vs DistributedCache";
  Util.subsection "(a) YCSB (45% read / 55% RMW)";
  Util.row "  %-6s %14s %14s %8s\n" "cores" "local" "distributed" "gap";
  List.iter
    (fun workers ->
      let run sys =
        (Oltp.Ycsb.run (env sys ~workers) Oltp.Ycsb.default_params)
          .Oltp.Ycsb.commits_per_second
      in
      let l = run Sys_.Local_cache and d = run Sys_.Distributed_cache in
      Util.row "  %-6d %13sc/s %13sc/s %7.1f%%\n" workers (Util.pp_throughput l)
        (Util.pp_throughput d)
        (100.0 *. abs_float (l -. d) /. Float.max l d))
    core_counts;
  Util.subsection "(b) TPC-C (45% NewOrder / 43% Payment / rest mixed)";
  Util.row "  %-6s %14s %14s %8s\n" "cores" "local" "distributed" "gap";
  List.iter
    (fun workers ->
      let run sys =
        (Oltp.Tpcc.run (env sys ~workers) Oltp.Tpcc.default_params)
          .Oltp.Tpcc.commits_per_second
      in
      let l = run Sys_.Local_cache and d = run Sys_.Distributed_cache in
      Util.row "  %-6d %13sc/s %13sc/s %7.1f%%\n" workers (Util.pp_throughput l)
        (Util.pp_throughput d)
        (100.0 *. abs_float (l -. d) /. Float.max l d))
    core_counts
