(* Core engine throughput: simulated events/sec and wall-clock for three
   standard scenarios — a batch morsel scan, an online serving run and a
   small fleet.  This is the perf trajectory of the discrete-event core
   itself (scheduler event loop + per-access memory model): every PR runs
   [bench core --json] in CI and diffs events/sec against the committed
   BENCH_core.json baseline, so "measurably faster" (or slower) is visible
   per PR.

   A "simulated event" is one unit of discrete-event work the engine
   retired: a memory access charged through the machine model, a task
   quantum (context switch), a steal or a migration.  The count is
   deterministic per scenario (equal seeds), so only wall-clock varies
   across runs and machines; each scenario runs [reps] times on a fresh
   machine (cold caches, per the paper's methodology) and reports the best
   rep to damp scheduler noise. *)

open Chipsim
module Sched = Engine.Sched
module Par = Engine.Par
module Sys_ = Harness.Systems
module Server = Serving.Server
module Cluster = Fleet.Cluster

let reps = 3
let cache_scale = 16

let engine_events machine =
  let pmu = Machine.pmu machine in
  Machine.accesses machine
  + Pmu.total pmu Pmu.Context_switch
  + Pmu.total pmu Pmu.Task_stolen
  + Pmu.total pmu Pmu.Migration

(* -- batch: morsel-driven scan + random updates + a fine-grain task storm
   on a bare scheduler (default hooks, no policy layer) — the least-
   advanced-worker loop, the deques and the per-access path with nothing
   else on top *)

let batch_rows = 1 lsl 19
let batch_scan_iters = 6
let batch_updates = 1 lsl 18
let batch_storm_tasks = 1 lsl 12

let run_batch () =
  let topo = Presets.amd_milan ~scale:cache_scale () in
  let machine = Machine.create topo in
  let sched = Sched.create machine ~n_workers:16 ~placement:(fun w -> w) in
  let region = Machine.alloc machine ~elt_bytes:8 ~count:batch_rows () in
  let t0 = Unix.gettimeofday () in
  ignore
    (Sched.spawn sched ~worker:0 (fun ctx ->
         (* phase 1: sequential morsel scans (range path, prefetch-friendly) *)
         for _ = 1 to batch_scan_iters do
           Par.parallel_for ctx ~lo:0 ~hi:batch_rows ~grain:2048
             (fun ctx' lo hi ->
               Sched.Ctx.read_range ctx' region ~lo ~hi;
               Sched.Ctx.work ctx' (0.6 *. float_of_int (hi - lo));
               Sched.Ctx.maybe_yield ctx')
         done;
         (* phase 2: scattered read-modify-writes (single-access path,
            directory + coherence traffic) *)
         Par.parallel_for ctx ~lo:0 ~hi:batch_updates ~grain:512
           (fun ctx' lo hi ->
             for i = lo to hi - 1 do
               let j = i * 0x9e3779b9 land (batch_rows - 1) in
               Sched.Ctx.read ctx' region j;
               Sched.Ctx.write ctx' region j;
               Sched.Ctx.maybe_yield ctx'
             done);
         (* phase 3: storm of tiny compute tasks (deque + steal pressure) *)
         Par.parallel_for ctx ~lo:0 ~hi:(batch_storm_tasks * 16) ~grain:16
           (fun ctx' lo hi ->
             Sched.Ctx.work ctx' (5.0 *. float_of_int (hi - lo))))
      : Sched.task);
  let makespan = Sched.run sched in
  let wall = Unix.gettimeofday () -. t0 in
  (engine_events machine, wall, makespan)

(* -- serve: the charm_serve configuration at a fixed load on one machine *)

let run_serve () =
  let inst = Sys_.make ~cache_scale Sys_.Charm (Util.machine Sys_.Amd_milan) ~n_workers:16 () in
  let base = Server.default_config ~seed:42 in
  let cfg =
    {
      base with
      Server.tenants =
        List.map
          (fun t ->
            {
              t with
              Server.process = Serving.Arrivals.Open_loop { rate_per_s = 10_000.0 };
            })
          base.Server.tenants;
    }
  in
  let t0 = Unix.gettimeofday () in
  let r = Server.run inst cfg in
  let wall = Unix.gettimeofday () -. t0 in
  (engine_events inst.Sys_.machine, wall, r.Server.makespan_ns)

(* -- fleet: a small cluster (event counts multiplied by N shards) *)

let run_fleet () =
  let base = Cluster.default_config ~seed:42 in
  let serve = base.Cluster.serve in
  let tenants =
    List.map
      (fun t ->
        {
          t with
          Server.process = Serving.Arrivals.Open_loop { rate_per_s = 8_000.0 };
          jobs = 30;
        })
      serve.Server.tenants
  in
  let cfg =
    {
      base with
      Cluster.n_shards = 2;
      machines = [ Util.machine Sys_.Amd_milan ];
      n_workers = 8;
      cache_scale;
      serve = { serve with Server.tenants; check = false };
    }
  in
  let t0 = Unix.gettimeofday () in
  let res = Cluster.run cfg in
  let wall = Unix.gettimeofday () -. t0 in
  let events =
    List.fold_left
      (fun acc (sr : Cluster.shard_result) -> acc + sr.Cluster.sim_events)
      0 res.Cluster.shard_results
  in
  (events, wall, res.Cluster.makespan_ns)

let scenarios =
  [ ("batch", run_batch); ("serve", run_serve); ("fleet", run_fleet) ]

let run () =
  Util.section "Core - engine throughput (simulated events/sec per scenario)";
  Util.row "  %-8s %12s %9s %14s %12s\n" "scenario" "events" "wall(s)"
    "events/sec" "makespan(us)";
  List.iter
    (fun (name, f) ->
      let best = ref None in
      let events0 = ref 0 in
      for _ = 1 to reps do
        let events, wall, makespan = f () in
        if !events0 = 0 then events0 := events
        else if !events0 <> events then begin
          Printf.eprintf
            "bench core: %s event count not deterministic (%d vs %d)\n" name
            !events0 events;
          exit 1
        end;
        match !best with
        | Some (w, _) when w <= wall -> ()
        | _ -> best := Some (wall, makespan)
      done;
      let wall, makespan = Option.get !best in
      let eps = float_of_int !events0 /. Float.max 1e-9 wall in
      Util.row "  %-8s %12d %9.3f %14.0f %12.1f\n" name !events0 wall eps
        (makespan /. 1e3);
      Util.json_row ~experiment:"core"
        [
          ("scenario", Util.json_str name);
          ("events", string_of_int !events0);
          ("wall_s", Util.json_num wall);
          ("events_per_s", Util.json_num eps);
          ("makespan_us", Util.json_num (makespan /. 1e3));
        ])
    scenarios
