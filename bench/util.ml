(* Shared bench machinery: build environments, run the six graph-suite
   workloads, format paper-style tables. *)

open Workloads
module Sys_ = Harness.Systems

(* Optional trace sink shared by every instance a figure builds: set by the
   driver's [--trace FILE] flag, attached by {!run_graph_bench} (and any
   figure that calls {!attach_trace} on its own instances), written once at
   the end of the run.  All experiments append to one ring, so the file
   holds the newest window across the whole bench invocation. *)
let trace_sink : Engine.Trace.t option ref = ref None

let attach_trace inst =
  match !trace_sink with
  | None -> ()
  | Some tr -> (
      match inst.Sys_.charm with
      | Some rt -> Charm.Runtime.attach_trace rt tr
      | None ->
          Engine.Sched.set_trace inst.Sys_.env.Exec_env.sched (Some tr))

(* Optional machine-readable sink: set by the driver's [--json FILE] flag;
   experiments append flat rows of pre-rendered JSON values alongside their
   human tables, and the driver writes the file once at the end.  The
   committed BENCH_*.json baselines and the CI bench-diff step read this. *)
let json_sink : string option ref = ref None
let json_rows : string list ref = ref []
let json_str s = Printf.sprintf "%S" s
let json_num f = Printf.sprintf "%.6g" f

let json_row ~experiment kvs =
  if !json_sink <> None then
    json_rows :=
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) -> Printf.sprintf "%S:%s" k v)
              (("experiment", json_str experiment) :: kvs)))
      :: !json_rows

let json_write () =
  match !json_sink with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      Printf.fprintf oc "{\"rows\":[\n%s\n]}\n"
        (String.concat ",\n" (List.rev !json_rows));
      close_out oc;
      Printf.printf "\nwrote %d bench rows to %s\n"
        (List.length !json_rows) file

(* Optional machine override: set by the driver's [--topology SPEC] flag.
   Figures route their preset through {!machine} when building instances,
   so one flag re-runs any figure on a data-driven topology. *)
let machine_override : Sys_.machine_kind option ref = ref None
let machine kind = match !machine_override with Some m -> m | None -> kind

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

(* Default evaluation scale: graphs at 2^13 vertices with caches scaled
   1:16 keep the paper's working-set : L3 ratio at tractable runtime. *)
let default_cache_scale = 16
let default_graph_scale = 14

type graph_bench = Bfs | Pr | Cc | Sssp | Gups_w | G500

let graph_bench_name = function
  | Bfs -> "BFS"
  | Pr -> "PR"
  | Cc -> "CC"
  | Sssp -> "SSSP"
  | Gups_w -> "GUPS"
  | G500 -> "Graph500"

let all_graph_benches = [ Bfs; Pr; Cc; Sssp; Gups_w; G500 ]

(* Edge lists are deterministic per scale; cache them across systems so
   every system sees the same graph. *)
let kron_cache : (int, Kronecker.t) Hashtbl.t = Hashtbl.create 8

let kron ~scale =
  match Hashtbl.find_opt kron_cache scale with
  | Some k -> k
  | None ->
      let k = Kronecker.generate ~scale ~edge_factor:16 () in
      Hashtbl.add kron_cache scale k;
      k

let build_graph env ~scale ~weighted =
  Csr.of_kronecker ~weighted
    ~alloc:(fun ~elt_bytes ~count -> env.Exec_env.alloc_shared ~elt_bytes ~count)
    (kron ~scale)

(* a BFS/SSSP source must not be isolated (vertex 0 can be, after the
   Graph500 label permutation) *)
let pick_source g =
  let rec go v = if v >= g.Csr.n || Csr.degree g v > 0 then min v (g.Csr.n - 1) else go (v + 1) in
  go 0

(* Throughput of one graph-suite workload in work-items per second of
   virtual time (edges/s for the graph algorithms, updates/s for GUPS). *)
let run_graph_bench ?(cache_scale = default_cache_scale)
    ?(graph_scale = default_graph_scale) ~sys ~kind ~workers bench =
  let inst = Sys_.make ~cache_scale sys (machine kind) ~n_workers:workers () in
  attach_trace inst;
  let env = inst.Sys_.env in
  let result =
    match bench with
    | Bfs ->
        let g = build_graph env ~scale:graph_scale ~weighted:false in
        snd (Bfs.run env g ~source:(pick_source g))
    | Pr ->
        let g = build_graph env ~scale:graph_scale ~weighted:false in
        snd (Pagerank.run env g ())
    | Cc ->
        let g = build_graph env ~scale:graph_scale ~weighted:false in
        snd (Concomp.run env g)
    | Sssp ->
        let g = build_graph env ~scale:graph_scale ~weighted:true in
        snd (Sssp.run env g ~source:(pick_source g))
    | Gups_w ->
        (* table size tracks the graph scale, as the paper's Fig. 10 sweep
           controls the number of vertices *)
        Gups.run env
          { Gups.table_words = 1 lsl (graph_scale + 6); updates = 1 lsl 16; seed = 17 }
    | G500 ->
        let g = build_graph env ~scale:graph_scale ~weighted:false in
        Graph500.run env g
          { Graph500.scale = graph_scale; edge_factor = 16; roots = 2; seed = 99 }
  in
  (Workload_result.throughput_per_s result, inst)

let sys_label sys = Sys_.sys_name sys

let pp_throughput t =
  if t >= 1e9 then Printf.sprintf "%.2fG" (t /. 1e9)
  else if t >= 1e6 then Printf.sprintf "%.2fM" (t /. 1e6)
  else Printf.sprintf "%.0fk" (t /. 1e3)
