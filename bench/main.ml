(* Bench driver: regenerates every table and figure of the paper's
   evaluation.  Run with no arguments for the full suite, or pass
   experiment names (fig1 fig3 fig4 fig5 fig7 tab1 fig8 fig9 tab2 fig10
   fig11 fig12 fig13 fig14 ablation micro serve fault fleet taskgraph power
   core) to run a subset.  [--json FILE] additionally writes
   machine-readable result rows for experiments that emit them (currently:
   fleet, taskgraph, power and core, whose committed baselines
   BENCH_fleet.json / BENCH_taskgraph.json / BENCH_power.json /
   BENCH_core.json CI diffs against). *)

let experiments =
  [
    ("fig3", Fig3.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig7", Fig7.run);
    ("tab1", Tab1.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("tab2", Fig9.run_tab2);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("fig14", Fig14.run);
    ("fig1", Fig1.run);
    ("ablation", Ablation.run);
    ("micro", Micro.run);
    ("serve", Serve.run);
    ("fault", Fault.run);
    ("fleet", Fleet_bench.run);
    ("taskgraph", Taskgraph_bench.run);
    ("power", Power_bench.run);
    ("core", Core_bench.run);
  ]

let () =
  (* [--trace FILE] attaches one shared trace sink to every instance the
     requested experiments build and writes the Chrome-trace JSON at the
     end; remaining arguments select experiments *)
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split_trace acc = function
    | "--trace" :: file :: rest -> (Some file, List.rev_append acc rest)
    | a :: rest -> split_trace (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  (* [--json FILE] collects machine-readable result rows from every
     experiment that emits them and writes one JSON document at the end *)
  let rec split_json acc = function
    | "--json" :: file :: rest -> (Some file, List.rev_append acc rest)
    | a :: rest -> split_json (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  (* [--topology SPEC] re-runs the requested figures on a data-driven
     topology (file path or inline spec) instead of their preset machine *)
  let rec split_topology acc = function
    | "--topology" :: spec :: rest -> (Some spec, List.rev_append acc rest)
    | a :: rest -> split_topology (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let trace_file, args = split_trace [] args in
  let json_file, args = split_json [] args in
  let topology_spec, names = split_topology [] args in
  Util.json_sink := json_file;
  (match topology_spec with
  | None -> ()
  | Some spec -> (
      match Harness.Systems.custom_machine_of_spec spec with
      | Ok m -> Util.machine_override := Some m
      | Error msg ->
          Printf.eprintf "bench: bad --topology spec: %s\n" msg;
          exit 2));
  (match trace_file with
  | Some _ -> Util.trace_sink := Some (Engine.Trace.create ())
  | None -> ());
  let requested = match names with [] -> List.map fst experiments | _ -> names in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
          let start = Unix.gettimeofday () in
          run ();
          Printf.printf "  [%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. start)
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested;
  (match (trace_file, !Util.trace_sink) with
  | Some file, Some tr ->
      Engine.Trace.save tr file;
      Printf.printf "\nwrote %d trace events to %s\n%s"
        (Engine.Trace.num_events tr) file (Engine.Trace.summary tr)
  | _ -> ());
  Util.json_write ();
  Printf.printf "\nAll requested experiments finished in %.1fs.\n"
    (Unix.gettimeofday () -. t0)
