(** Set-associative LRU cache model over cache-line identifiers.

    The model tracks only line {e presence}; data values live in ordinary
    OCaml arrays owned by the workloads.  A line identifier is the simulated
    byte address divided by the line size. *)

type t

val create : ?ways:int -> size_bytes:int -> line_bytes:int -> unit -> t
(** [create ~size_bytes ~line_bytes ()] rounds the number of sets down to a
    power of two.  @raise Invalid_argument if the geometry is degenerate. *)

val hit : int
(** Sentinel (-2) returned by {!access} on a hit. *)

val miss : int
(** Sentinel (-1) returned by {!access} on a miss that filled an empty way
    (nothing evicted). *)

val access : t -> int -> int
(** [access t line] looks up [line], inserting it (LRU replacement) on miss
    and refreshing recency on hit.  Returns {!hit}, {!miss}, or the evicted
    line id ([>= 0]) when the chosen set was full.  The result is an int
    sentinel rather than a variant so the per-access hot path allocates
    nothing. *)

val probe : t -> int -> bool
(** Presence test without any state change. *)

val invalidate : t -> int -> bool
(** Remove a line if present; returns whether it was present. *)

val clear : t -> unit
val size_bytes : t -> int
val ways : t -> int
val sets : t -> int

val effective_ways : t -> int
(** Ways currently enabled (= [ways] unless degraded). *)

val set_effective_ways : t -> int -> unit
(** Degrade (or restore) the cache to the given way count, clamped to
    [\[1, ways\]].  Shrinking drops the lines held in the disabled ways;
    growing re-enables empty ways.  Models runtime L3 way-partitioning
    faults. *)

val occupancy : t -> int
(** Number of valid lines currently held (O(capacity); for tests/stats). *)
