(** Open-addressing [int -> int] hash map (linear probing, power-of-two
    capacity).  Purpose-built for the simulator's per-access hot paths
    (coherence directory, page map): every operation except growth is
    allocation-free, and lookups cost one multiplicative hash plus a short
    probe run instead of a C hashing call and bucket-list chasing.

    Keys must be non-negative. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is rounded up to a power of two (default 16). *)

val get : t -> int -> absent:int -> int
(** [get t k ~absent] is the value bound to [k], or [absent] if unbound. *)

val set : t -> int -> int -> unit
(** Bind [k] to [v], replacing any previous binding.
    @raise Invalid_argument on a negative key. *)

val remove : t -> int -> unit
(** Unbind [k] (no-op if unbound). *)

val size : t -> int
(** Number of live bindings. *)

val iter : t -> (int -> int -> unit) -> unit
(** Apply to every binding, in unspecified order. *)

val clear : t -> unit
(** Drop all bindings, keeping the current capacity. *)
