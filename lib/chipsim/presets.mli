(** Ready-made topologies for the two evaluation platforms of the paper.

    [scale] divides cache capacities (and leaves layout alone) so that
    experiments whose point is a {e capacity crossover} can run with
    proportionally smaller datasets in the same shape; the default of 1
    models the real parts. *)

val scale_topology : Topology.t -> scale:int -> Topology.t
(** Divide both cache capacities by [scale], clamping each to a per-cache
    minimum line count (16 lines for L2, 64 for L3) so the L2:L3 hierarchy
    survives aggressive scaling; layout, kinds and links are untouched.
    @raise Invalid_argument if [scale <= 0] or the scaled L2 would reach
    or exceed the scaled L3 (an inverted hierarchy). *)

val amd_milan : ?scale:int -> unit -> Topology.t
(** Dual-socket AMD EPYC Milan 7713: 2 sockets x 8 chiplets x 8 cores,
    32 MB L3 per chiplet, 8 memory channels per socket. *)

val amd_milan_1s : ?scale:int -> unit -> Topology.t
(** Single-socket Milan (the §2.3 microbenchmark platform). *)

val intel_spr : ?scale:int -> unit -> Topology.t
(** Dual-socket Intel Xeon Platinum 8488C modelled as 4 tiles x 12 cores per
    socket with a shared-ish L3 split in tile slices and a faster on-die
    interconnect than AMD's. *)

val tiny : unit -> Topology.t
(** 1 socket x 2 chiplets x 2 cores with KB-scale caches, for unit tests. *)

val intel_profile : Latency.profile
(** Latency profile for the Intel preset: flatter hierarchy (faster mesh
    between tiles, slightly slower intra-tile L3) per paper §5.3. *)
