(** Dynamic machine-state modifiers: the mutable "hardware registers" a
    fault injector writes and the simulated machine reads on every access.

    All values start pristine (speed 1.0, everything online, all
    multipliers 1.0).  The scheduler reads {!core_speed} to scale quantum
    progress and {!core_online} to park workers; {!Machine.access_line}
    reads the link and cross-socket multipliers on every remote fill.
    DVFS state and core hotplug are OS-visible on real machines, so
    runtime components may read those directly; latency multipliers model
    silent degradation that only shows up in PMU counters. *)

type t

val create : cores:int -> chiplets:int -> nodes:int -> t

val core_speed : t -> int -> float
(** DVFS factor: 1.0 nominal, 0.5 half speed.  Clamped to >= 0.05. *)

val set_core_speed : t -> int -> float -> unit
val core_online : t -> int -> bool
val set_core_online : t -> int -> bool -> unit

val link_mult : t -> int -> float
(** Per-chiplet I/O-die link latency multiplier (>= 1.0). *)

val unsafe_link_mult : t -> int -> float
(** {!link_mult} without the range check: a single array read that inlines
    across the module boundary, keeping the per-access hot path free of
    boxed float returns.  The caller must guarantee the chiplet index. *)

val set_link_mult : t -> int -> float -> unit

val xsocket_mult : t -> float
(** Cross-socket hop latency multiplier (>= 1.0). *)

val set_xsocket_mult : t -> float -> unit

val arm_corruption : t -> seed:int -> unit
(** Arm a one-shot result-corruption register: the next result token
    computed through {!take_corruption} is bit-flipped with [seed].
    Several armed corruptions queue FIFO, so a schedule with multiple
    corruption events replays deterministically. *)

val take_corruption : t -> int option
(** Consume the oldest armed corruption seed, if any.  Called by the
    replica layer when it derives a result token; a run without
    replication simply never consumes armed seeds. *)

val corruptions_armed : t -> int
(** Number of armed, not-yet-consumed corruption seeds. *)

val online_capacity : t -> float
(** Machine-wide effective compute capacity in [0, 1]: mean over cores of
    [speed] for online cores (offline cores contribute 0).  The serving
    layer scales admission bounds by this. *)

val chiplet_os_impaired : t -> chiplet:int -> cores_per_chiplet:int -> bool
(** OS-visible impairment on the chiplet: any core offline or DVFS
    throttled — the state a real runtime reads from sysfs.  Link
    degradation is deliberately excluded; it is silent and must be
    inferred from latency (see {!Core.Health_monitor}). *)

val chiplet_impaired : t -> chiplet:int -> cores_per_chiplet:int -> bool
(** Any impairment on the chiplet, OS-visible or silent: offline or
    throttled cores, or a raised link multiplier. *)

val pristine : t -> bool
(** True iff no modifier deviates from its healthy default. *)

val generation : t -> int
(** Bumped on every mutation (cheap change detection for observers). *)

val reset : t -> unit
