exception Violation of string

let fail fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt
let require cond msg = if not cond then raise (Violation msg)
