type distance =
  | Same_core
  | Same_chiplet
  | Same_group
  | Same_socket
  | Cross_socket

type profile = {
  same_chiplet_ns : float;
  same_group_ns : float;
  same_socket_ns : float;
  cross_socket_ns : float;
  l2_hit_ns : float;
  dram_local_ns : float;
  dram_remote_ns : float;
  coherence_inval_ns : float;
}

let default_profile =
  {
    same_chiplet_ns = 25.0;
    same_group_ns = 85.0;
    same_socket_ns = 150.0;
    cross_socket_ns = 220.0;
    l2_hit_ns = 12.0;
    dram_local_ns = 110.0;
    dram_remote_ns = 190.0;
    coherence_inval_ns = 18.0;
  }

let classify topo a b =
  if a = b then Same_core
  else
    let ca = Topology.chiplet_of_core topo a
    and cb = Topology.chiplet_of_core topo b in
    if ca = cb then Same_chiplet
    else if Topology.socket_of_chiplet topo ca <> Topology.socket_of_chiplet topo cb
    then Cross_socket
    else if Topology.group_of_chiplet topo ca = Topology.group_of_chiplet topo cb
    then Same_group
    else Same_socket

let classify_chiplets topo ca cb =
  if ca = cb then Same_chiplet
  else if Topology.socket_of_chiplet topo ca <> Topology.socket_of_chiplet topo cb
  then Cross_socket
  else if Topology.group_of_chiplet topo ca = Topology.group_of_chiplet topo cb
  then Same_group
  else Same_socket

let rank_of_distance = function
  | Same_core -> 0
  | Same_chiplet -> 1
  | Same_group -> 2
  | Same_socket -> 3
  | Cross_socket -> 4

(* cores x cores distance ranks, flattened row-major: schedulers index
   this on every steal-order refresh instead of re-classifying pairs *)
let rank_matrix topo =
  let n = Topology.num_cores topo in
  let m = Array.make (n * n) 0 in
  for a = 0 to n - 1 do
    let row = a * n in
    for b = 0 to n - 1 do
      m.(row + b) <- rank_of_distance (classify topo a b)
    done
  done;
  m

let of_distance p = function
  | Same_core -> 0.0
  | Same_chiplet -> p.same_chiplet_ns
  | Same_group -> p.same_group_ns
  | Same_socket -> p.same_socket_ns
  | Cross_socket -> p.cross_socket_ns

(* Small deterministic per-pair jitter (up to ~8% of the class latency) so
   the latency CDF exhibits realistic spread within each step. *)
let pair_jitter a b =
  let h = (a * 0x9e3779b9) lxor (b * 0x85ebca6b) in
  let h = (h lxor (h lsr 13)) * 0xc2b2ae35 in
  let u = (h lsr 7) land 0xffff in
  float_of_int u /. 65535.0

let core_to_core_ns ?(profile = default_profile) topo a b =
  Topology.validate_core topo a;
  Topology.validate_core topo b;
  let base = of_distance profile (classify topo a b) in
  base *. (1.0 +. (0.08 *. pair_jitter (min a b) (max a b)))

let distance_to_string = function
  | Same_core -> "same-core"
  | Same_chiplet -> "same-chiplet"
  | Same_group -> "same-group"
  | Same_socket -> "same-socket"
  | Cross_socket -> "cross-socket"
