(* Line ids are byte addresses divided by the line size, so for realistic
   simulated footprints they are small dense integers.  The holder masks
   therefore live in a flat array indexed by line — one direct read or
   write per directory operation on the per-access hot path — growing on
   demand.  Lines past [dense_limit] (sparse gigantic address spaces)
   spill into an open-addressing {!Intmap}. *)

type t = {
  chiplets : int;
  mutable dense : int array;  (* line -> holder bitmask; 0 = uncached *)
  sparse : Intmap.t;  (* lines >= dense_limit only *)
}

(* 4M lines = 256 MB of simulated memory covered by the flat array
   (32 MB of host metadata at the maximum) *)
let dense_limit = 1 lsl 22

let create ~chiplets =
  if chiplets <= 0 || chiplets > 62 then
    invalid_arg "Directory.create: chiplets must be in [1,62]";
  {
    chiplets;
    dense = Array.make (1 lsl 16) 0;
    sparse = Intmap.create ~capacity:16 ();
  }

(* an absent line has no holders: the zero mask doubles as the default,
   so presence needs no separate membership test *)
let holders t line =
  if line >= 0 && line < Array.length t.dense then Array.unsafe_get t.dense line
  else if line < dense_limit then 0  (* negative lines never stored *)
  else Intmap.get t.sparse line ~absent:0

let grow_dense t line =
  let cur = Array.length t.dense in
  let rec cap c = if c > line then c else cap (c * 2) in
  let n = min dense_limit (cap cur) in
  let bigger = Array.make n 0 in
  Array.blit t.dense 0 bigger 0 cur;
  t.dense <- bigger

let set_mask t line m =
  if line >= 0 && line < Array.length t.dense then Array.unsafe_set t.dense line m
  else if line >= 0 && line < dense_limit then begin
    grow_dense t line;
    t.dense.(line) <- m
  end
  else if m = 0 then Intmap.remove t.sparse line
  else Intmap.set t.sparse line m

let check t chiplet =
  if chiplet < 0 || chiplet >= t.chiplets then
    invalid_arg "Directory: chiplet out of range"

let add t ~line ~chiplet =
  check t chiplet;
  let m = holders t line in
  let bit = 1 lsl chiplet in
  if m land bit = 0 then set_mask t line (m lor bit)

let remove t ~line ~chiplet =
  check t chiplet;
  let m = holders t line in
  let bit = 1 lsl chiplet in
  if m land bit <> 0 then set_mask t line (m land lnot bit)

let set_exclusive t ~line ~chiplet =
  check t chiplet;
  let bit = 1 lsl chiplet in
  if holders t line <> bit then set_mask t line bit

let holds t ~line ~chiplet =
  check t chiplet;
  holders t line land (1 lsl chiplet) <> 0

let iter_holders t ~line f =
  let m = holders t line in
  for c = 0 to t.chiplets - 1 do
    if m land (1 lsl c) <> 0 then f c
  done

let count_holders t ~line =
  let m = holders t line in
  let rec popcount m acc = if m = 0 then acc else popcount (m lsr 1) (acc + (m land 1)) in
  popcount m 0

(* [-1] = no other holder; int-coded so the hot path allocates no option.
   The shift-loop stops at the highest set holder bit instead of scanning
   every chiplet.  [ranks] is a row of a precomputed chiplets x chiplets
   distance-rank matrix ({!Machine} owns one), so picking the nearest
   holder costs one array read per set bit instead of a classify call. *)
let nearest_holder_ranked t ~line ~from_chiplet ~ranks ~row =
  let m0 = holders t line land lnot (1 lsl from_chiplet) in
  if m0 = 0 then -1
  else begin
    let best = ref (-1) and best_rank = ref max_int in
    let m = ref m0 and c = ref 0 in
    while !m <> 0 do
      if !m land 1 <> 0 then begin
        let r = Array.unsafe_get ranks (row + !c) in
        if r < !best_rank then begin
          best_rank := r;
          best := !c
        end
      end;
      m := !m lsr 1;
      incr c
    done;
    !best
  end

let nearest_holder_id topo t ~line ~from_chiplet =
  let m0 = holders t line land lnot (1 lsl from_chiplet) in
  if m0 = 0 then -1
  else begin
    let best = ref (-1) and best_rank = ref max_int in
    let m = ref m0 and c = ref 0 in
    while !m <> 0 do
      if !m land 1 <> 0 then begin
        let r =
          Latency.rank_of_distance
            (Latency.classify_chiplets topo from_chiplet !c)
        in
        if r < !best_rank then begin
          best_rank := r;
          best := !c
        end
      end;
      m := !m lsr 1;
      incr c
    done;
    !best
  end

let nearest_holder topo t ~line ~from_chiplet =
  match nearest_holder_id topo t ~line ~from_chiplet with
  | -1 -> None
  | c -> Some c

let clear t =
  Array.fill t.dense 0 (Array.length t.dense) 0;
  Intmap.clear t.sparse
