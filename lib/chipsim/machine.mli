(** The simulated chiplet machine: caches + coherence + DRAM + PMU behind a
    single access call.

    Every memory access made by a simulated core returns the latency it
    would have cost on the modelled hardware, and increments the PMU
    counter classifying the source that served it (local L3 slice, remote
    chiplet, remote socket, or DRAM) — the same signal CHARM's profiler
    reads from hardware counters on real machines. *)

type t

val create : ?profile:Latency.profile -> Topology.t -> t
val topology : t -> Topology.t
val profile : t -> Latency.profile
val pmu : t -> Pmu.t
val mem : t -> Simmem.t

val modifiers : t -> Modifiers.t
(** Dynamic fault state (DVFS factors, offline cores, link/cross-socket
    latency multipliers).  Writing it changes the latencies and PMU fill
    classes of subsequent accesses; the scheduler reads it to scale
    quantum progress and honour offline cores. *)

val set_l3_ways : t -> chiplet:int -> ways:int -> unit
(** Degrade (or restore) a chiplet's L3 to [ways] enabled ways (see
    {!Cache.set_effective_ways}). *)

val l3_ways : t -> chiplet:int -> int

val set_mem_capacity_factor : t -> node:int -> float -> unit
(** Throttle a NUMA node's deliverable memory bandwidth (see
    {!Memchan.set_capacity_factor}). *)

val mem_capacity_factor : t -> node:int -> float

val alloc :
  t -> ?policy:Simmem.policy -> elt_bytes:int -> count:int -> unit ->
  Simmem.region
(** Allocate simulated memory (see {!Simmem.alloc}). *)

val access : t -> core:int -> now_ns:float -> write:bool -> int -> float
(** [access t ~core ~now_ns ~write addr] simulates one memory access and
    returns its latency in virtual nanoseconds. *)

val access_line :
  t -> core:int -> now_ns:float -> write:bool -> line:int -> float
(** Same, when the caller already knows the line id. *)

val touch :
  t -> core:int -> now_ns:float -> write:bool -> Simmem.region -> int -> float
(** Access element [i] of a region. *)

val touch_range :
  t -> core:int -> now_ns:float -> write:bool -> Simmem.region ->
  lo:int -> hi:int -> float
(** Sequentially access elements [lo, hi) of a region, touching each covered
    cache line exactly once.  Returns the summed latency. *)

val access_clk : t -> core:int -> write:bool -> int -> float array -> int -> unit
(** [access_clk t ~core ~write addr clk slot] simulates one access at
    virtual time [clk.(slot)] and advances [clk.(slot)] by its latency.
    Charging the caller's clock cell in place keeps boxed floats off the
    per-access path (the float-returning {!access} is a wrapper over
    this); the scheduler passes each worker's clock cell directly. *)

val touch_range_clk :
  t -> core:int -> write:bool -> Simmem.region -> lo:int -> hi:int ->
  float array -> int -> unit
(** Clock-cell variant of {!touch_range}: advances [clk.(slot)] by the
    summed (prefetch-discounted) latency of the range. *)

val transfer :
  t -> src_chiplet:int -> dst_chiplet:int -> now_ns:float -> bytes:int ->
  float
(** [transfer t ~src_chiplet ~dst_chiplet ~now_ns ~bytes] simulates a bulk
    chiplet-to-chiplet data movement (a task-graph edge) and returns its
    latency in virtual ns.  Bytes round up to whole cache lines.  Within
    one chiplet the payload stays in the local L3 and costs a single
    same-chiplet hop; across chiplets it pays the distance-classified base
    latency (times the cross-socket fault multiplier where applicable)
    plus serialization and contention on {e both} endpoints' I/O-die links
    via {!Memchan.charge_lines}, the slower leg dominating.  [bytes = 0]
    is free.
    @raise Invalid_argument on out-of-range chiplets or negative bytes. *)

val transferred_bytes : t -> int
(** Total payload bytes ever moved cross-chiplet by {!transfer}
    (line-rounded) since creation, {!reset} or {!flush_caches} — the
    ledger the edge-byte conservation invariant checks against the link
    channels' byte totals. *)

val core_to_core_ns : t -> int -> int -> float
val dram_load_ratio : t -> node:int -> now_ns:float -> float
val dram_bytes_served : t -> node:int -> int

val mem_ns : t -> core:int -> float
(** Accumulated memory-access latency this core has been charged, in
    virtual ns — a "latency PMU" companion to the fill-event counters.
    Dividing its delta by the fill-count delta gives average latency per
    access, which degradation faults (link, L3 ways, bandwidth) inflate
    directly while compute time and scheduling delays leave it untouched;
    {!Core.Health_monitor} feeds on exactly that ratio. *)

val energy_pj : t -> core:int -> float
(** Accumulated access energy charged to this core, in picojoules: each
    simulated access costs its core kind's [energy_pj] (see
    {!Topology.kind_spec}).  Zeroed by {!reset}. *)

val total_energy_pj : t -> float
(** Sum of {!energy_pj} over all cores — {e memory-access energy only}.
    Per-quantum compute energy deliberately accumulates in a separate
    meter ({!compute_energy_pj}), so this total — and every figure built
    on it before compute charging existed — is bit-identical whether or
    not [--energy] is on. *)

val charge_quantum : t -> core:int -> dt_ns:float -> dvfs:float -> unit
(** Charge [dt_ns] virtual ns of compute on [core] to its compute-energy
    meter: [dt_ns x kind_energy_pj x kind_speed x dvfs^2] pJ.  The
    quadratic DVFS term makes power (energy over time) scale roughly
    cubically with frequency, so shedding frequency is an effective
    power-cap actuator.  Never touches virtual time; the scheduler calls
    this at quantum end only when energy accounting is enabled. *)

val compute_energy_pj : t -> core:int -> float
(** Accumulated per-quantum compute energy charged to this core, in
    picojoules.  Zeroed by {!reset}. *)

val total_compute_energy_pj : t -> float
(** Sum of {!compute_energy_pj} over all cores. *)

val combined_energy_pj : t -> float
(** {!total_energy_pj} + {!total_compute_energy_pj}: the machine's whole
    energy story, what power estimates and per-tenant attribution use. *)

val chiplet_energy_pj : t -> chiplet:int -> float
(** Combined (access + compute) energy accumulated by the chiplet's
    cores, in picojoules — the per-chiplet signal the power-cap
    controller differentiates into a sliding-window power estimate.
    @raise Invalid_argument on an out-of-range chiplet. *)

val accesses : t -> int
(** Total simulated accesses ({!access_line} calls) since creation or
    {!reset}.  Every one is classified into exactly one PMU fill-source
    counter — the conservation law {!check_invariants} verifies. *)

val check_invariants : t -> unit
(** Cheap structural checks (O(cores) + O(chiplets)): the six fill-source
    PMU counters sum to {!accesses}, every chiplet's effective L3 ways lie
    in [1, ways] under {!Modifiers} degradation, and the per-core latency
    meters are finite and non-negative.  Cheap enough to run every few
    quanta when [~check:true] scheduling is on.
    @raise Invariant.Violation describing the first broken invariant. *)

val check_invariants_full : t -> unit
(** {!check_invariants} plus the O(nodes x slots) {!Memchan} ring scans of
    the DRAM channels and the chiplet I/O-die links — end-of-run and
    fuzzer verification.
    @raise Invariant.Violation describing the first broken invariant. *)

val flush_caches : t -> unit
(** Drop all cached state (caches, directory, channel history) but keep
    page placements and PMU counters. *)

val reset : t -> unit
(** Full reset: caches, directory, channels, page placements, PMU. *)
