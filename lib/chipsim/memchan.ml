type t = {
  bin_ns : float;
  nodes : int;
  line_bytes : int;
  capacity_bytes_per_bin : float;  (* per node, at full health *)
  cap_factor : float array;  (* per node, fault throttling in (0, 1] *)
  (* ring of recent bins per node: bins.(node * ring + (bin mod ring)) *)
  ring : int;
  bin_ids : int array;  (* which absolute bin each slot currently holds *)
  bin_bytes : int array;
  total_bytes : int array;  (* per node *)
  mutable stale_accesses : int;  (* accesses landing in an already-recycled bin *)
}

let ring_slots = 8192

let create ?(bin_ns = 1000.0) ?(slots = ring_slots) ~nodes ~channels_per_node
    ~bytes_per_ns_per_channel ~line_bytes () =
  if nodes <= 0 then invalid_arg "Memchan.create: nodes must be positive";
  if channels_per_node <= 0 then
    invalid_arg "Memchan.create: channels_per_node must be positive";
  if slots <= 0 then invalid_arg "Memchan.create: slots must be positive";
  {
    bin_ns;
    nodes;
    line_bytes;
    capacity_bytes_per_bin =
      float_of_int channels_per_node *. bytes_per_ns_per_channel *. bin_ns;
    cap_factor = Array.make nodes 1.0;
    ring = slots;
    bin_ids = Array.make (nodes * slots) (-1);
    bin_bytes = Array.make (nodes * slots) 0;
    total_bytes = Array.make nodes 0;
    stale_accesses = 0;
  }

let slot t node bin = (node * t.ring) + (bin mod t.ring)

(* clamp below at 0 so a (defensive) negative timestamp cannot index into
   another node's slot range *)
let bin_of t now_ns = max 0 (int_of_float (now_ns /. t.bin_ns))

let check_node t node =
  if node < 0 || node >= t.nodes then invalid_arg "Memchan: node out of range"

let capacity t node = t.capacity_bytes_per_bin *. t.cap_factor.(node)

let set_capacity_factor t ~node factor =
  check_node t node;
  t.cap_factor.(node) <- Float.max 0.01 (Float.min 1.0 factor)

let capacity_factor t ~node =
  check_node t node;
  t.cap_factor.(node)

let current_bytes t node bin =
  let s = slot t node bin in
  if t.bin_ids.(s) = bin then t.bin_bytes.(s) else 0

(* Mild queueing slope below saturation, steep beyond it. *)
let contention_factor load =
  if load <= 1.0 then 1.0 +. (0.3 *. load) else 1.3 +. (2.0 *. (load -. 1.0))

let access_ns t ~node ~now_ns ~base_ns =
  check_node t node;
  let bin = bin_of t now_ns in
  let s = slot t node bin in
  t.total_bytes.(node) <- t.total_bytes.(node) + t.line_bytes;
  if t.bin_ids.(s) = bin then begin
    t.bin_bytes.(s) <- t.bin_bytes.(s) + t.line_bytes;
    base_ns *. contention_factor (float_of_int t.bin_bytes.(s) /. capacity t node)
  end
  else if t.bin_ids.(s) < bin then begin
    (* fresh (or recycled) bin: the slot's previous occupant is older and
       its window has passed *)
    t.bin_ids.(s) <- bin;
    t.bin_bytes.(s) <- t.line_bytes;
    base_ns *. contention_factor (float_of_int t.line_bytes /. capacity t node)
  end
  else begin
    (* ring wraparound alias: a lagging worker touches a bin whose slot was
       already recycled by an access [ring] bins later.  Resetting the slot
       here would erase the newer bin's demand history (the old silent
       bug); instead keep the newer bin intact, count the stale access, and
       charge the lagging access at its own (unknowable) bin's base load. *)
    t.stale_accesses <- t.stale_accesses + 1;
    base_ns *. contention_factor (float_of_int t.line_bytes /. capacity t node)
  end

let load_ratio t ~node ~now_ns =
  check_node t node;
  let bin = bin_of t now_ns in
  float_of_int (current_bytes t node bin) /. capacity t node

let bytes_served t ~node =
  check_node t node;
  t.total_bytes.(node)

let stale_accesses t = t.stale_accesses

let reset t =
  Array.fill t.bin_ids 0 (Array.length t.bin_ids) (-1);
  Array.fill t.bin_bytes 0 (Array.length t.bin_bytes) 0;
  Array.fill t.total_bytes 0 (Array.length t.total_bytes) 0;
  t.stale_accesses <- 0

(* Full O(nodes * slots) scan — for tests, end-of-run verification and the
   scenario fuzzer, not the per-access hot path. *)
let check_invariants t =
  if t.stale_accesses < 0 then
    Invariant.fail "memchan: negative stale-access count %d" t.stale_accesses;
  for node = 0 to t.nodes - 1 do
    let cf = t.cap_factor.(node) in
    if cf < 0.01 -. 1e-12 || cf > 1.0 +. 1e-12 then
      Invariant.fail "memchan: node %d capacity factor %g outside [0.01, 1]"
        node cf;
    if t.total_bytes.(node) < 0 then
      Invariant.fail "memchan: node %d negative byte total %d" node
        t.total_bytes.(node);
    if t.total_bytes.(node) mod t.line_bytes <> 0 then
      Invariant.fail
        "memchan: node %d byte total %d not a multiple of the %d-byte line"
        node t.total_bytes.(node) t.line_bytes;
    (* ring conservation: live bins hold at most what was ever served (the
       difference is bins whose slots were since recycled), and a slot is
       populated iff it holds a bin *)
    let live = ref 0 in
    for s = node * t.ring to ((node + 1) * t.ring) - 1 do
      let id = t.bin_ids.(s) and bytes = t.bin_bytes.(s) in
      if bytes < 0 then
        Invariant.fail "memchan: node %d slot %d negative demand %d" node s
          bytes;
      if id = -1 && bytes <> 0 then
        Invariant.fail "memchan: node %d slot %d holds %d bytes but no bin"
          node s bytes;
      if id >= 0 && bytes = 0 then
        Invariant.fail "memchan: node %d slot %d holds bin %d with no bytes"
          node s id;
      if id >= 0 && slot t node id <> s then
        Invariant.fail "memchan: node %d slot %d holds bin %d that maps to slot %d"
          node s id (slot t node id);
      live := !live + bytes
    done;
    if !live > t.total_bytes.(node) then
      Invariant.fail
        "memchan: node %d ring holds %d bytes but only %d were ever served"
        node !live t.total_bytes.(node)
  done
