type t = {
  bin_ns : float;
  nodes : int;
  line_bytes : int;
  capacity_bytes_per_bin : float;  (* per node, at full health *)
  cap_factor : float array;  (* per node, fault throttling in (0, 1] *)
  (* ring of recent bins per node: bins.(node * ring + (bin land mask));
     ring is a power of two so the wrap is a mask, not an integer divide *)
  ring : int;
  ring_mask : int;
  bin_ids : int array;  (* which absolute bin each slot currently holds *)
  bin_bytes : int array;
  total_bytes : int array;  (* per node *)
  mutable stale_accesses : int;  (* accesses landing in an already-recycled bin *)
  scratch_io : float array;  (* backs the float-returning access_ns wrapper *)
}

let ring_slots = 8192

let create ?(bin_ns = 1000.0) ?(slots = ring_slots) ~nodes ~channels_per_node
    ~bytes_per_ns_per_channel ~line_bytes () =
  if nodes <= 0 then invalid_arg "Memchan.create: nodes must be positive";
  if channels_per_node <= 0 then
    invalid_arg "Memchan.create: channels_per_node must be positive";
  if slots <= 0 then invalid_arg "Memchan.create: slots must be positive";
  (* round the ring up to a power of two so slot wrap is a mask *)
  let rec pow2 n acc = if acc >= n then acc else pow2 n (acc * 2) in
  let slots = pow2 slots 1 in
  {
    bin_ns;
    nodes;
    line_bytes;
    capacity_bytes_per_bin =
      float_of_int channels_per_node *. bytes_per_ns_per_channel *. bin_ns;
    cap_factor = Array.make nodes 1.0;
    ring = slots;
    ring_mask = slots - 1;
    bin_ids = Array.make (nodes * slots) (-1);
    bin_bytes = Array.make (nodes * slots) 0;
    total_bytes = Array.make nodes 0;
    stale_accesses = 0;
    scratch_io = Array.make 2 0.0;
  }

let slot t node bin = (node * t.ring) + (bin land t.ring_mask)

(* clamp below at 0 so a (defensive) negative timestamp cannot index into
   another node's slot range *)
let bin_of t now_ns =
  let b = int_of_float (now_ns /. t.bin_ns) in
  if b < 0 then 0 else b

let check_node t node =
  if node < 0 || node >= t.nodes then invalid_arg "Memchan: node out of range"

let capacity t node = t.capacity_bytes_per_bin *. t.cap_factor.(node)

let set_capacity_factor t ~node factor =
  check_node t node;
  t.cap_factor.(node) <- Float.max 0.01 (Float.min 1.0 factor)

let capacity_factor t ~node =
  check_node t node;
  t.cap_factor.(node)

let current_bytes t node bin =
  let s = slot t node bin in
  if t.bin_ids.(s) = bin then t.bin_bytes.(s) else 0


(* The hot entry point exchanges its floats through the caller's 2-slot io
   cell — [io.(0)] holds now_ns on entry and the charged latency on return,
   [io.(1)] holds base_ns — because boxed float arguments/returns were the
   last allocation left on the per-access path. *)
let charge t ~node io =
  check_node t node;
  let now_ns = io.(0) and base_ns = io.(1) in
  let bin = bin_of t now_ns in
  (* [node] is checked above and [bin] is clamped non-negative, so the
     ring index and the per-node reads below are in bounds by
     construction — unsafe accesses keep the per-fill path lean *)
  let s = slot t node bin in
  let bin_ids = t.bin_ids and bin_bytes = t.bin_bytes in
  t.total_bytes.(node) <- t.total_bytes.(node) + t.line_bytes;
  let demand_bytes =
    let id = Array.unsafe_get bin_ids s in
    if id = bin then begin
      let b = Array.unsafe_get bin_bytes s + t.line_bytes in
      Array.unsafe_set bin_bytes s b;
      b
    end
    else if id < bin then begin
      (* fresh (or recycled) bin: the slot's previous occupant is older and
         its window has passed *)
      Array.unsafe_set bin_ids s bin;
      Array.unsafe_set bin_bytes s t.line_bytes;
      t.line_bytes
    end
    else begin
      (* ring wraparound alias: a lagging worker touches a bin whose slot was
         already recycled by an access [ring] bins later.  Resetting the slot
         here would erase the newer bin's demand history (the old silent
         bug); instead keep the newer bin intact, count the stale access, and
         charge the lagging access at its own (unknowable) bin's base load. *)
      t.stale_accesses <- t.stale_accesses + 1;
      t.line_bytes
    end
  in
  (* contention_factor, hand-inlined: a non-inlined float call here would
     box its argument and result on every access *)
  let load = float_of_int demand_bytes /. (t.capacity_bytes_per_bin *. t.cap_factor.(node)) in
  let f = if load <= 1.0 then 1.0 +. (0.3 *. load) else 1.3 +. (2.0 *. (load -. 1.0)) in
  io.(0) <- base_ns *. f

(* Bulk transfer: [lines] whole lines charged against one bin in a single
   update — the task-graph edge path, where a tensor's bytes cross the
   channel at once rather than line-by-line through the cache hierarchy.
   The latency adds a serialization term (bytes over the node's
   deliverable bytes/ns) to [base_ns], then applies the same contention
   factor as [charge], computed at the post-charge bin load.  Demand and
   byte totals stay whole lines, so [check_invariants] holds unchanged. *)
let charge_lines t ~node ~now_ns ~base_ns ~lines =
  check_node t node;
  if lines < 0 then invalid_arg "Memchan.charge_lines: negative line count";
  if lines = 0 then base_ns
  else begin
    let bytes = lines * t.line_bytes in
    let bin = bin_of t now_ns in
    let s = slot t node bin in
    t.total_bytes.(node) <- t.total_bytes.(node) + bytes;
    let demand_bytes =
      let id = t.bin_ids.(s) in
      if id = bin then begin
        let b = t.bin_bytes.(s) + bytes in
        t.bin_bytes.(s) <- b;
        b
      end
      else if id < bin then begin
        t.bin_ids.(s) <- bin;
        t.bin_bytes.(s) <- bytes;
        bytes
      end
      else begin
        (* stale ring-wraparound access: same policy as [charge] *)
        t.stale_accesses <- t.stale_accesses + 1;
        bytes
      end
    in
    let cap = t.capacity_bytes_per_bin *. t.cap_factor.(node) in
    let load = float_of_int demand_bytes /. cap in
    let f =
      if load <= 1.0 then 1.0 +. (0.3 *. load)
      else 1.3 +. (2.0 *. (load -. 1.0))
    in
    let serialization_ns = float_of_int bytes *. t.bin_ns /. cap in
    (base_ns +. serialization_ns) *. f
  end

let access_ns t ~node ~now_ns ~base_ns =
  let io = t.scratch_io in
  io.(0) <- now_ns;
  io.(1) <- base_ns;
  charge t ~node io;
  io.(0)

let load_ratio t ~node ~now_ns =
  check_node t node;
  let bin = bin_of t now_ns in
  float_of_int (current_bytes t node bin) /. capacity t node

let bytes_served t ~node =
  check_node t node;
  t.total_bytes.(node)

let stale_accesses t = t.stale_accesses

let reset t =
  Array.fill t.bin_ids 0 (Array.length t.bin_ids) (-1);
  Array.fill t.bin_bytes 0 (Array.length t.bin_bytes) 0;
  Array.fill t.total_bytes 0 (Array.length t.total_bytes) 0;
  t.stale_accesses <- 0

(* Full O(nodes * slots) scan — for tests, end-of-run verification and the
   scenario fuzzer, not the per-access hot path. *)
let check_invariants t =
  if t.stale_accesses < 0 then
    Invariant.fail "memchan: negative stale-access count %d" t.stale_accesses;
  for node = 0 to t.nodes - 1 do
    let cf = t.cap_factor.(node) in
    if cf < 0.01 -. 1e-12 || cf > 1.0 +. 1e-12 then
      Invariant.fail "memchan: node %d capacity factor %g outside [0.01, 1]"
        node cf;
    if t.total_bytes.(node) < 0 then
      Invariant.fail "memchan: node %d negative byte total %d" node
        t.total_bytes.(node);
    if t.total_bytes.(node) mod t.line_bytes <> 0 then
      Invariant.fail
        "memchan: node %d byte total %d not a multiple of the %d-byte line"
        node t.total_bytes.(node) t.line_bytes;
    (* ring conservation: live bins hold at most what was ever served (the
       difference is bins whose slots were since recycled), and a slot is
       populated iff it holds a bin *)
    let live = ref 0 in
    for s = node * t.ring to ((node + 1) * t.ring) - 1 do
      let id = t.bin_ids.(s) and bytes = t.bin_bytes.(s) in
      if bytes < 0 then
        Invariant.fail "memchan: node %d slot %d negative demand %d" node s
          bytes;
      if id = -1 && bytes <> 0 then
        Invariant.fail "memchan: node %d slot %d holds %d bytes but no bin"
          node s bytes;
      if id >= 0 && bytes = 0 then
        Invariant.fail "memchan: node %d slot %d holds bin %d with no bytes"
          node s id;
      if id >= 0 && slot t node id <> s then
        Invariant.fail "memchan: node %d slot %d holds bin %d that maps to slot %d"
          node s id (slot t node id);
      live := !live + bytes
    done;
    if !live > t.total_bytes.(node) then
      Invariant.fail
        "memchan: node %d ring holds %d bytes but only %d were ever served"
        node !live t.total_bytes.(node)
  done
