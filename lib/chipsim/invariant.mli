(** The shared invariant-violation exception for executable runtime checks.

    Every layer of the stack (machine model, scheduler, serving loop)
    validates its own invariants when checking is enabled; all of them
    report through this one exception so harnesses — the scenario fuzzer,
    [--check] CLI runs, CI — can catch "any invariant broke anywhere" in a
    single place.  It lives in [chipsim] only because that is the bottom
    of the dependency order. *)

exception Violation of string
(** [Violation "subsystem: what"] — the invariant that failed, with enough
    context to reproduce. *)

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Violation} with the formatted message.  Call
    sites guard with [if] so the message is only built on failure — checks
    on hot paths must not allocate when the invariant holds. *)

val require : bool -> string -> unit
(** [require cond msg] raises [Violation msg] unless [cond].  Only for
    cold paths: [msg] is built eagerly. *)
