(* The topology is a *value*: everything the machine model needs to know
   about a chiplet CPU — geometry, cache sizes, per-chiplet compute kind
   and per-chiplet I/O-die link characteristics — lives in this record,
   loadable from a small config file (see [of_string]) so machine
   families are data, not code. *)

type core_kind = Big | Little | Accel

type kind_spec = {
  speed : float;
  access_mult : float;
  energy_pj : float;
  general_tasks : bool;
}

type link = {
  lat_mult : float;
  bw_bytes_per_ns : float;
}

type t = {
  sockets : int;
  chiplets_per_socket : int;
  cores_per_chiplet : int;
  chiplet_group_size : int;
  l3_bytes_per_chiplet : int;
  l2_bytes_per_core : int;
  line_bytes : int;
  mem_channels_per_socket : int;
  mem_bw_bytes_per_ns_per_channel : float;
  chiplet_kinds : core_kind array;
  kind_specs : kind_spec array;  (* indexed by [kind_index], length 3 *)
  links : link array;  (* per chiplet *)
}

let kind_index = function Big -> 0 | Little -> 1 | Accel -> 2
let kind_name = function Big -> "big" | Little -> "little" | Accel -> "accel"

let kind_of_name = function
  | "big" -> Some Big
  | "little" -> Some Little
  | "accel" -> Some Accel
  | _ -> None

(* Per-kind cost tables in the Hetero-OU style: throughput multiplier,
   memory-path latency multiplier, and energy per access.  Big is the
   calibration baseline (multipliers exactly 1.0, so homogeneous machines
   are bit-identical to the pre-kind model); little cores trade speed for
   energy, accelerator tiles trade generality (slower per-access memory
   path) for raw throughput. *)
let default_kind_specs =
  [|
    { speed = 1.0; access_mult = 1.0; energy_pj = 0.87; general_tasks = true };
    { speed = 0.6; access_mult = 1.15; energy_pj = 0.30; general_tasks = true };
    { speed = 2.5; access_mult = 1.30; energy_pj = 0.22; general_tasks = false };
  |]

let default_link = { lat_mult = 1.0; bw_bytes_per_ns = 4.0 }

let finite f = Float.is_finite f

let v ?(chiplet_group_size = 2) ?(l3_bytes_per_chiplet = 32 * 1024 * 1024)
    ?(l2_bytes_per_core = 512 * 1024) ?(line_bytes = 64)
    ?(mem_channels_per_socket = 8) ?(mem_bw_bytes_per_ns_per_channel = 4.8)
    ?chiplet_kinds ?kind_specs ?links ~sockets ~chiplets_per_socket
    ~cores_per_chiplet () =
  if sockets <= 0 || chiplets_per_socket <= 0 || cores_per_chiplet <= 0 then
    invalid_arg "Topology.v: counts must be positive";
  if chiplet_group_size <= 0 || chiplets_per_socket mod chiplet_group_size <> 0
  then invalid_arg "Topology.v: chiplet_group_size must divide chiplets_per_socket";
  if line_bytes <= 0 || line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Topology.v: line_bytes must be a positive power of two";
  if l3_bytes_per_chiplet < line_bytes || l2_bytes_per_core < line_bytes then
    invalid_arg "Topology.v: cache sizes must hold at least one line";
  if mem_channels_per_socket <= 0 then
    invalid_arg "Topology.v: mem_channels_per_socket must be positive";
  if
    (not (finite mem_bw_bytes_per_ns_per_channel))
    || mem_bw_bytes_per_ns_per_channel <= 0.0
  then invalid_arg "Topology.v: mem bandwidth must be positive";
  let nchiplets = sockets * chiplets_per_socket in
  let chiplet_kinds =
    match chiplet_kinds with
    | None -> Array.make nchiplets Big
    | Some ks ->
        if Array.length ks <> nchiplets then
          invalid_arg
            (Printf.sprintf
               "Topology.v: chiplet_kinds has %d entries for %d chiplets"
               (Array.length ks) nchiplets);
        Array.copy ks
  in
  let kind_specs =
    match kind_specs with
    | None -> default_kind_specs
    | Some ss ->
        if Array.length ss <> 3 then
          invalid_arg "Topology.v: kind_specs must have one entry per kind (3)";
        Array.iter
          (fun s ->
            if (not (finite s.speed)) || s.speed <= 0.0 then
              invalid_arg "Topology.v: kind speed must be positive";
            if (not (finite s.access_mult)) || s.access_mult <= 0.0 then
              invalid_arg "Topology.v: kind access-mult must be positive";
            if (not (finite s.energy_pj)) || s.energy_pj < 0.0 then
              invalid_arg "Topology.v: kind energy-pj must be non-negative")
          ss;
        Array.copy ss
  in
  let links =
    match links with
    | None -> Array.make nchiplets default_link
    | Some ls ->
        if Array.length ls <> nchiplets then
          invalid_arg
            (Printf.sprintf "Topology.v: links has %d entries for %d chiplets"
               (Array.length ls) nchiplets);
        Array.iter
          (fun l ->
            if (not (finite l.lat_mult)) || l.lat_mult <= 0.0 then
              invalid_arg "Topology.v: link lat-mult must be positive";
            if (not (finite l.bw_bytes_per_ns)) || l.bw_bytes_per_ns <= 0.0 then
              invalid_arg "Topology.v: link bandwidth must be positive")
          ls;
        Array.copy ls
  in
  {
    sockets;
    chiplets_per_socket;
    cores_per_chiplet;
    chiplet_group_size;
    l3_bytes_per_chiplet;
    l2_bytes_per_core;
    line_bytes;
    mem_channels_per_socket;
    mem_bw_bytes_per_ns_per_channel;
    chiplet_kinds;
    kind_specs;
    links;
  }

let num_chiplets t = t.sockets * t.chiplets_per_socket
let cores_per_socket t = t.chiplets_per_socket * t.cores_per_chiplet
let num_cores t = t.sockets * cores_per_socket t

let validate_core t core =
  if core < 0 || core >= num_cores t then
    invalid_arg (Printf.sprintf "Topology: core %d out of range [0,%d)" core (num_cores t))

let chiplet_of_core t core = core / t.cores_per_chiplet
let socket_of_core t core = core / cores_per_socket t
let socket_of_chiplet t chiplet = chiplet / t.chiplets_per_socket

(* Groups are computed within the chiplet's own socket, so a quadrant can
   never straddle a socket boundary — [v] additionally guarantees the
   group size divides chiplets_per_socket, which makes this coincide with
   the plain global division for every valid topology. *)
let group_of_chiplet t chiplet =
  let socket = chiplet / t.chiplets_per_socket in
  let local = chiplet mod t.chiplets_per_socket in
  let groups_per_socket = t.chiplets_per_socket / t.chiplet_group_size in
  (socket * groups_per_socket) + (local / t.chiplet_group_size)

let first_core_of_chiplet t chiplet = chiplet * t.cores_per_chiplet

let cores_of_chiplet t chiplet =
  let base = first_core_of_chiplet t chiplet in
  List.init t.cores_per_chiplet (fun i -> base + i)

let chiplets_of_socket t socket =
  let base = socket * t.chiplets_per_socket in
  List.init t.chiplets_per_socket (fun i -> base + i)

let same_chiplet t a b = chiplet_of_core t a = chiplet_of_core t b
let same_socket t a b = socket_of_core t a = socket_of_core t b

(* -- heterogeneity accessors -------------------------------------------- *)

let kind_of_chiplet t chiplet = t.chiplet_kinds.(chiplet)
let kind_of_core t core = t.chiplet_kinds.(chiplet_of_core t core)
let spec_of_kind t kind = t.kind_specs.(kind_index kind)
let core_speed t core = (spec_of_kind t (kind_of_core t core)).speed

let chiplet_accepts_general t chiplet =
  (spec_of_kind t (kind_of_chiplet t chiplet)).general_tasks

let general_chiplets_per_socket t =
  List.length
    (List.filter (chiplet_accepts_general t) (chiplets_of_socket t 0))

let heterogeneous t =
  Array.exists (fun k -> k <> t.chiplet_kinds.(0)) t.chiplet_kinds

(* mean per-core throughput capacity relative to a big core, capped at 1.0
   per core to mirror {!Modifiers.online_capacity}'s convention *)
let relative_capacity t =
  let acc = ref 0.0 in
  let n = num_cores t in
  for c = 0 to n - 1 do
    acc := !acc +. Float.min 1.0 (core_speed t c)
  done;
  !acc /. float_of_int n

let equal a b = a = b

(* -- printing ------------------------------------------------------------ *)

let pp_cache ppf bytes =
  let mib = 1024 * 1024 in
  if bytes >= mib && bytes mod mib = 0 then
    Format.fprintf ppf "%d MiB" (bytes / mib)
  else if bytes >= mib then Format.fprintf ppf "%.1f MiB" (float_of_int bytes /. float_of_int mib)
  else Format.fprintf ppf "%d KiB" ((bytes + 1023) / 1024)

let pp ppf t =
  Format.fprintf ppf
    "%d socket(s) x %d chiplet(s) x %d core(s); L3 %a/chiplet; %d mem ch/socket"
    t.sockets t.chiplets_per_socket t.cores_per_chiplet pp_cache
    t.l3_bytes_per_chiplet t.mem_channels_per_socket;
  if heterogeneous t then begin
    let count k =
      Array.fold_left
        (fun acc k' -> if k = k' then acc + 1 else acc)
        0 t.chiplet_kinds
    in
    Format.fprintf ppf "; kinds";
    List.iter
      (fun k ->
        let n = count k in
        if n > 0 then Format.fprintf ppf " %s:%d" (kind_name k) n)
      [ Big; Little; Accel ]
  end

(* -- config-file format --------------------------------------------------

   One directive per line (or ';'-separated, so a whole spec fits on a
   command line); '#' starts a comment.  Sizes accept KiB/MiB/GiB
   suffixes.  Geometry directives are required; everything else defaults
   as in [v].

     sockets 2
     chiplets-per-socket 8
     cores-per-chiplet 8
     chiplet-group-size 2
     l3-bytes-per-chiplet 32MiB
     l2-bytes-per-core 512KiB
     line-bytes 64
     mem-channels-per-socket 8
     mem-bw-bytes-per-ns 4.8
     kind little speed 0.6 access-mult 1.15 energy-pj 0.3
     chiplet-kinds big big little accel
     link 3 lat-mult 1.5 bw 2                                            *)

let format_bytes b =
  let mib = 1024 * 1024 in
  if b >= mib && b mod mib = 0 then Printf.sprintf "%dMiB" (b / mib)
  else if b >= 1024 && b mod 1024 = 0 then Printf.sprintf "%dKiB" (b / 1024)
  else string_of_int b

let parse_bytes s =
  let num, mult =
    let n = String.length s in
    let suffix k m =
      if n > String.length k && String.sub s (n - String.length k) (String.length k) = k
      then Some (String.sub s 0 (n - String.length k), m)
      else None
    in
    match suffix "GiB" (1024 * 1024 * 1024) with
    | Some r -> r
    | None -> (
        match suffix "MiB" (1024 * 1024) with
        | Some r -> r
        | None -> (
            match suffix "KiB" 1024 with Some r -> r | None -> (s, 1)))
  in
  match int_of_string_opt num with
  | Some v when v >= 0 -> Some (v * mult)
  | _ -> None

(* shortest float literal that parses back to the same value *)
let format_float f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_lines t =
  let buf = ref [] in
  let add l = buf := l :: !buf in
  add (Printf.sprintf "sockets %d" t.sockets);
  add (Printf.sprintf "chiplets-per-socket %d" t.chiplets_per_socket);
  add (Printf.sprintf "cores-per-chiplet %d" t.cores_per_chiplet);
  add (Printf.sprintf "chiplet-group-size %d" t.chiplet_group_size);
  add (Printf.sprintf "l3-bytes-per-chiplet %s" (format_bytes t.l3_bytes_per_chiplet));
  add (Printf.sprintf "l2-bytes-per-core %s" (format_bytes t.l2_bytes_per_core));
  add (Printf.sprintf "line-bytes %d" t.line_bytes);
  add (Printf.sprintf "mem-channels-per-socket %d" t.mem_channels_per_socket);
  add (Printf.sprintf "mem-bw-bytes-per-ns %s" (format_float t.mem_bw_bytes_per_ns_per_channel));
  List.iter
    (fun k ->
      let s = spec_of_kind t k in
      if s <> default_kind_specs.(kind_index k) || heterogeneous t then
        add
          (Printf.sprintf "kind %s speed %s access-mult %s energy-pj %s general-tasks %d"
             (kind_name k) (format_float s.speed) (format_float s.access_mult)
             (format_float s.energy_pj)
             (if s.general_tasks then 1 else 0)))
    [ Big; Little; Accel ];
  if heterogeneous t then
    add
      ("chiplet-kinds "
      ^ String.concat " "
          (Array.to_list (Array.map kind_name t.chiplet_kinds)));
  Array.iteri
    (fun ch l ->
      if l <> default_link then
        add
          (Printf.sprintf "link %d lat-mult %s bw %s" ch (format_float l.lat_mult)
             (format_float l.bw_bytes_per_ns)))
    t.links;
  List.rev !buf

let to_string t = String.concat "\n" (to_lines t) ^ "\n"
let to_spec t = String.concat "; " (to_lines t)

(* key-value pair scanner for [kind]/[link] directives: remaining tokens
   come in (key, float) pairs in any order *)
let parse_pairs ~directive ~allowed tokens =
  let rec go acc = function
    | [] -> Ok acc
    | [ k ] ->
        Error (Printf.sprintf "bad %s directive: missing value for %S" directive k)
    | k :: value :: rest ->
        if not (List.mem k allowed) then
          Error
            (Printf.sprintf "bad %s directive: unknown field %S (want %s)"
               directive k (String.concat "/" allowed))
        else (
          match float_of_string_opt value with
          | Some f when Float.is_finite f -> go ((k, f) :: acc) rest
          | _ ->
              Error
                (Printf.sprintf "bad %s directive: field %s value %S is not a number"
                   directive k value))
  in
  go [] tokens

let of_string spec =
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let directives =
    (* comments run to end of line, so strip them before splitting the
       remainder of each line on ';' *)
    String.split_on_char '\n' spec
    |> List.map strip_comment
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let tokens_of line =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun tok -> tok <> "")
  in
  let sockets = ref None
  and chiplets_per_socket = ref None
  and cores_per_chiplet = ref None
  and chiplet_group_size = ref None
  and l3 = ref None
  and l2 = ref None
  and line_bytes = ref None
  and mem_channels = ref None
  and mem_bw = ref None
  and kind_overrides = ref []
  and chiplet_kind_names = ref []
  and link_overrides = ref [] in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  let set_int name r v =
    match int_of_string_opt v with
    | Some n -> r := Some n
    | None -> fail (Printf.sprintf "field %s value %S is not an integer" name v)
  in
  let set_bytes name r v =
    match parse_bytes v with
    | Some n -> r := Some n
    | None ->
        fail
          (Printf.sprintf "field %s value %S is not a size (int with optional KiB/MiB/GiB)"
             name v)
  in
  List.iter
    (fun line ->
      if !err = None then
        match tokens_of line with
        | [ "sockets"; v ] -> set_int "sockets" sockets v
        | [ "chiplets-per-socket"; v ] ->
            set_int "chiplets-per-socket" chiplets_per_socket v
        | [ "cores-per-chiplet"; v ] ->
            set_int "cores-per-chiplet" cores_per_chiplet v
        | [ "chiplet-group-size"; v ] ->
            set_int "chiplet-group-size" chiplet_group_size v
        | [ "l3-bytes-per-chiplet"; v ] -> set_bytes "l3-bytes-per-chiplet" l3 v
        | [ "l2-bytes-per-core"; v ] -> set_bytes "l2-bytes-per-core" l2 v
        | [ "line-bytes"; v ] -> set_bytes "line-bytes" line_bytes v
        | [ "mem-channels-per-socket"; v ] ->
            set_int "mem-channels-per-socket" mem_channels v
        | [ "mem-bw-bytes-per-ns"; v ] -> (
            match float_of_string_opt v with
            | Some f -> mem_bw := Some f
            | None ->
                fail (Printf.sprintf "field mem-bw-bytes-per-ns value %S is not a number" v))
        | "kind" :: name :: rest -> (
            match kind_of_name name with
            | None ->
                fail
                  (Printf.sprintf "unknown core kind %S (want big/little/accel)" name)
            | Some k -> (
                match
                  parse_pairs ~directive:"kind"
                    ~allowed:[ "speed"; "access-mult"; "energy-pj"; "general-tasks" ]
                    rest
                with
                | Error m -> fail m
                | Ok pairs -> kind_overrides := (k, pairs) :: !kind_overrides))
        | "chiplet-kinds" :: names ->
            if names = [] then fail "chiplet-kinds directive needs at least one kind"
            else
              List.iter
                (fun name ->
                  match kind_of_name name with
                  | Some k -> chiplet_kind_names := k :: !chiplet_kind_names
                  | None ->
                      fail
                        (Printf.sprintf
                           "unknown core kind %S in chiplet-kinds (want big/little/accel)"
                           name))
                names
        | "link" :: ch :: rest -> (
            match int_of_string_opt ch with
            | None ->
                fail (Printf.sprintf "link directive chiplet %S is not an integer" ch)
            | Some chiplet -> (
                match
                  parse_pairs ~directive:"link" ~allowed:[ "lat-mult"; "bw" ] rest
                with
                | Error m -> fail m
                | Ok pairs -> link_overrides := (chiplet, pairs) :: !link_overrides))
        | key :: _ -> fail (Printf.sprintf "unknown topology field %S in %S" key line)
        | [] -> ())
    directives;
  match !err with
  | Some m -> Error m
  | None -> (
      match (!sockets, !chiplets_per_socket, !cores_per_chiplet) with
      | None, _, _ -> Error "missing required field sockets"
      | _, None, _ -> Error "missing required field chiplets-per-socket"
      | _, _, None -> Error "missing required field cores-per-chiplet"
      | Some sockets, Some chiplets_per_socket, Some cores_per_chiplet -> (
          let nchiplets = sockets * chiplets_per_socket in
          let kind_specs = Array.copy default_kind_specs in
          List.iter
            (fun (k, pairs) ->
              let s = ref kind_specs.(kind_index k) in
              List.iter
                (fun (key, v) ->
                  match key with
                  | "speed" -> s := { !s with speed = v }
                  | "access-mult" -> s := { !s with access_mult = v }
                  | "general-tasks" -> s := { !s with general_tasks = v <> 0.0 }
                  | _ -> s := { !s with energy_pj = v })
                pairs;
              kind_specs.(kind_index k) <- !s)
            (List.rev !kind_overrides);
          let chiplet_kinds =
            match List.rev !chiplet_kind_names with
            | [] -> Ok (Array.make (max 1 nchiplets) Big)
            | ks when List.length ks = nchiplets -> Ok (Array.of_list ks)
            | ks ->
                Error
                  (Printf.sprintf "chiplet-kinds lists %d kinds for %d chiplets"
                     (List.length ks) nchiplets)
          in
          let links =
            let arr = Array.make (max 1 nchiplets) default_link in
            let rec apply = function
              | [] -> Ok arr
              | (ch, pairs) :: rest ->
                  if ch < 0 || ch >= nchiplets then
                    Error
                      (Printf.sprintf "link chiplet %d out of range [0,%d)" ch
                         nchiplets)
                  else begin
                    let l = ref arr.(ch) in
                    List.iter
                      (fun (key, v) ->
                        match key with
                        | "lat-mult" -> l := { !l with lat_mult = v }
                        | _ -> l := { !l with bw_bytes_per_ns = v })
                      pairs;
                    arr.(ch) <- !l;
                    apply rest
                  end
            in
            apply (List.rev !link_overrides)
          in
          match (chiplet_kinds, links) with
          | Error m, _ | _, Error m -> Error m
          | Ok chiplet_kinds, Ok links -> (
              let build () =
                v
                  ?chiplet_group_size:!chiplet_group_size
                  ?l3_bytes_per_chiplet:!l3 ?l2_bytes_per_core:!l2
                  ?line_bytes:!line_bytes
                  ?mem_channels_per_socket:!mem_channels
                  ?mem_bw_bytes_per_ns_per_channel:!mem_bw ~chiplet_kinds
                  ~kind_specs ~links ~sockets ~chiplets_per_socket
                  ~cores_per_chiplet ()
              in
              match build () with
              | t -> Ok t
              | exception Invalid_argument m -> Error m)))

let of_file path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let spec =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string spec
