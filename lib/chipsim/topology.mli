(** Physical layout of a chiplet-based CPU.

    A machine is a set of sockets (= NUMA nodes); each socket holds several
    chiplets (CCDs); each chiplet holds several physical cores sharing one
    L3 slice.  Chiplets are further grouped into {e quadrants} that share an
    I/O-die stop, which produces the middle latency band of paper Fig. 3
    (inter-chiplet but intra-quadrant traffic is cheaper than crossing the
    whole die).

    The topology is a {e value}: per-chiplet compute kinds (big / little /
    accelerator, each with a throughput, memory-path and energy cost table)
    and per-chiplet I/O-die link overrides are part of the record, and the
    whole thing can be loaded from a small config file ({!of_file}) or
    rendered back out ({!to_string}), so machine families are data rather
    than code. *)

type core_kind = Big | Little | Accel
(** Compute kind of every core on a chiplet.  [Big] is the calibration
    baseline (all multipliers exactly 1.0). *)

type kind_spec = {
  speed : float;
      (** throughput multiplier vs a big core; scales quantum progress *)
  access_mult : float;  (** memory access latency multiplier *)
  energy_pj : float;  (** energy charged per memory access, picojoules *)
  general_tasks : bool;
      (** whether chiplets of this kind accept general (non-task-graph)
          work.  Big and little cores default to [true]; accelerator
          tiles default to [false], so placement skips them for morsel /
          OLAP gangs and only explicit task-graph mappings use them.
          Config files override with [general-tasks 0/1]. *)
}

type link = {
  lat_mult : float;  (** multiplier on this chiplet's I/O-die latencies *)
  bw_bytes_per_ns : float;  (** this chiplet's I/O-die link bandwidth *)
}

type t = {
  sockets : int;  (** number of sockets = NUMA nodes *)
  chiplets_per_socket : int;
  cores_per_chiplet : int;
  chiplet_group_size : int;
      (** chiplets per I/O-die quadrant; must divide [chiplets_per_socket] *)
  l3_bytes_per_chiplet : int;
  l2_bytes_per_core : int;
  line_bytes : int;
  mem_channels_per_socket : int;
  mem_bw_bytes_per_ns_per_channel : float;
      (** calibrated as {e effective} bandwidth per outstanding miss: the
          simulator issues one access at a time per core (no MLP), so
          capacities are scaled down ~10x from the parts' raw numbers to
          keep saturation points realistic *)
  chiplet_kinds : core_kind array;  (** one entry per (global) chiplet *)
  kind_specs : kind_spec array;
      (** cost table indexed by {!kind_index}; always length 3 *)
  links : link array;  (** one entry per (global) chiplet *)
}

val v :
  ?chiplet_group_size:int ->
  ?l3_bytes_per_chiplet:int ->
  ?l2_bytes_per_core:int ->
  ?line_bytes:int ->
  ?mem_channels_per_socket:int ->
  ?mem_bw_bytes_per_ns_per_channel:float ->
  ?chiplet_kinds:core_kind array ->
  ?kind_specs:kind_spec array ->
  ?links:link array ->
  sockets:int ->
  chiplets_per_socket:int ->
  cores_per_chiplet:int ->
  unit ->
  t
(** [v ~sockets ~chiplets_per_socket ~cores_per_chiplet ()] builds a
    topology, validating that every divisibility constraint holds, that
    kind/link arrays (when given) have one entry per chiplet, and that all
    multipliers are finite and positive.  Omitted kind/link arrays default
    to all-[Big] chiplets with identity links, which is bit-identical to
    the pre-heterogeneity model.
    @raise Invalid_argument on inconsistent parameters. *)

val num_cores : t -> int
val num_chiplets : t -> int
val cores_per_socket : t -> int

val chiplet_of_core : t -> int -> int
(** Global chiplet index of a global core index. *)

val socket_of_core : t -> int -> int
val socket_of_chiplet : t -> int -> int

val group_of_chiplet : t -> int -> int
(** Quadrant index (global) of a chiplet.  Computed per-socket, so a
    quadrant never spans a socket boundary regardless of how the topology
    was constructed. *)

val cores_of_chiplet : t -> int -> int list
(** Ascending list of the core ids located on a chiplet. *)

val first_core_of_chiplet : t -> int -> int
val chiplets_of_socket : t -> int -> int list

val same_chiplet : t -> int -> int -> bool
val same_socket : t -> int -> int -> bool

val validate_core : t -> int -> unit
(** @raise Invalid_argument if the core id is out of range. *)

(** {1 Heterogeneity} *)

val kind_index : core_kind -> int
(** [Big] = 0, [Little] = 1, [Accel] = 2; indexes [kind_specs]. *)

val kind_name : core_kind -> string
val kind_of_name : string -> core_kind option
val kind_of_chiplet : t -> int -> core_kind
val kind_of_core : t -> int -> core_kind
val spec_of_kind : t -> core_kind -> kind_spec

val core_speed : t -> int -> float
(** Static throughput multiplier of a core (its kind's [speed]). *)

val chiplet_accepts_general : t -> int -> bool
(** Whether a chiplet's kind accepts general (non-task-graph) work. *)

val general_chiplets_per_socket : t -> int
(** Count of general-task chiplets on a socket (sockets are uniform). *)

val heterogeneous : t -> bool
(** True iff not all chiplets share one kind. *)

val relative_capacity : t -> float
(** Mean per-core throughput relative to a big core, each core capped at
    1.0 — mirrors [Modifiers.online_capacity]'s convention so fleet
    routers can multiply the two.  Exactly 1.0 for homogeneous-big. *)

val default_kind_specs : kind_spec array
val default_link : link

val equal : t -> t -> bool

(** {1 Config files} *)

val of_string : string -> (t, string) result
(** Parse the topology config format: one directive per line or separated
    by [';'], [#] comments, sizes with optional KiB/MiB/GiB suffixes.
    Errors are one line naming the offending directive or field. *)

val of_file : string -> (t, string) result

val to_string : t -> string
(** Canonical multi-line rendering; [of_string (to_string t)] yields a
    topology [equal] to [t]. *)

val to_spec : t -> string
(** Same directives joined with ["; "] — a single-line form suitable for
    embedding in a CLI argument. *)

val pp : Format.formatter -> t -> unit
