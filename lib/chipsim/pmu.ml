type event =
  | L2_hit
  | L3_local_hit
  | Fill_remote_chiplet
  | Fill_remote_numa
  | Dram_local
  | Dram_remote
  | Coherence_invalidation
  | Task_executed
  | Task_stolen
  | Migration
  | Context_switch

let num_events = 11

let event_index = function
  | L2_hit -> 0
  | L3_local_hit -> 1
  | Fill_remote_chiplet -> 2
  | Fill_remote_numa -> 3
  | Dram_local -> 4
  | Dram_remote -> 5
  | Coherence_invalidation -> 6
  | Task_executed -> 7
  | Task_stolen -> 8
  | Migration -> 9
  | Context_switch -> 10

let event_name = function
  | L2_hit -> "l2_hit"
  | L3_local_hit -> "l3_local_hit"
  | Fill_remote_chiplet -> "fill_remote_chiplet"
  | Fill_remote_numa -> "fill_remote_numa"
  | Dram_local -> "dram_local"
  | Dram_remote -> "dram_remote"
  | Coherence_invalidation -> "coherence_invalidation"
  | Task_executed -> "task_executed"
  | Task_stolen -> "task_stolen"
  | Migration -> "migration"
  | Context_switch -> "context_switch"

let all_events =
  [
    L2_hit;
    L3_local_hit;
    Fill_remote_chiplet;
    Fill_remote_numa;
    Dram_local;
    Dram_remote;
    Coherence_invalidation;
    Task_executed;
    Task_stolen;
    Migration;
    Context_switch;
  ]

type t = { cores : int; counters : int array }

let create ~cores =
  if cores <= 0 then invalid_arg "Pmu.create: cores must be positive";
  { cores; counters = Array.make (cores * num_events) 0 }

let cores t = t.cores

let slot t core ev =
  if core < 0 || core >= t.cores then invalid_arg "Pmu: core out of range";
  (core * num_events) + event_index ev

let incr t ~core ev =
  let i = slot t core ev in
  t.counters.(i) <- t.counters.(i) + 1

let add t ~core ev n =
  let i = slot t core ev in
  t.counters.(i) <- t.counters.(i) + n

let read t ~core ev = t.counters.(slot t core ev)

let total t ev =
  let idx = event_index ev in
  let acc = ref 0 in
  for core = 0 to t.cores - 1 do
    acc := !acc + t.counters.((core * num_events) + idx)
  done;
  !acc

let reset t = Array.fill t.counters 0 (Array.length t.counters) 0

let reset_core t ~core =
  if core < 0 || core >= t.cores then invalid_arg "Pmu: core out of range";
  Array.fill t.counters (core * num_events) num_events 0

type snapshot = { snap_cores : int; values : int array }

let snapshot t = { snap_cores = t.cores; values = Array.copy t.counters }

let delta ~before ~after ~core ev =
  if before.snap_cores <> after.snap_cores then
    invalid_arg "Pmu.delta: snapshots from different PMUs";
  let i = (core * num_events) + event_index ev in
  after.values.(i) - before.values.(i)

let delta_total ~before ~after ev =
  let idx = event_index ev in
  let acc = ref 0 in
  for core = 0 to before.snap_cores - 1 do
    acc := !acc + after.values.((core * num_events) + idx)
           - before.values.((core * num_events) + idx)
  done;
  !acc

type fill_classes = {
  fc_local : int;
  fc_remote_chiplet : int;
  fc_remote_numa : int;
  fc_dram : int;
}

let zero_fill_classes =
  { fc_local = 0; fc_remote_chiplet = 0; fc_remote_numa = 0; fc_dram = 0 }

let fill_classes t =
  {
    fc_local = total t L3_local_hit;
    fc_remote_chiplet = total t Fill_remote_chiplet;
    fc_remote_numa = total t Fill_remote_numa;
    fc_dram = total t Dram_local + total t Dram_remote;
  }

let fill_classes_delta ~before ~after =
  {
    fc_local = after.fc_local - before.fc_local;
    fc_remote_chiplet = after.fc_remote_chiplet - before.fc_remote_chiplet;
    fc_remote_numa = after.fc_remote_numa - before.fc_remote_numa;
    fc_dram = after.fc_dram - before.fc_dram;
  }

let remote_fill_events t ~core =
  read t ~core Fill_remote_chiplet
  + read t ~core Fill_remote_numa
  + read t ~core Dram_local
  + read t ~core Dram_remote

let pp_core ppf (t, core) =
  Format.fprintf ppf "@[<v>core %d:" core;
  List.iter
    (fun ev ->
      let v = read t ~core ev in
      if v <> 0 then Format.fprintf ppf "@ %s = %d" (event_name ev) v)
    all_events;
  Format.fprintf ppf "@]"
