(** Per-NUMA-node memory-channel contention model.

    DRAM accesses are binned by virtual time; when the bytes demanded within
    a bin exceed what the node's channels can deliver, the access latency is
    inflated proportionally.  This reproduces the paper's core premise
    (§2.2): more cores competing for a fixed number of channels degrade
    per-access latency once the node saturates.

    Recent bins live in a fixed ring.  When virtual time spans more than
    [slots] bins, a lagging access can alias with a newer bin that recycled
    its slot; such stale accesses are counted (see {!stale_accesses}) and
    charged at base load instead of clobbering the newer bin's demand
    history.  A node's deliverable capacity can be throttled at runtime
    (fault injection) via {!set_capacity_factor}. *)

type t

val create :
  ?bin_ns:float ->
  ?slots:int ->
  nodes:int ->
  channels_per_node:int ->
  bytes_per_ns_per_channel:float ->
  line_bytes:int ->
  unit ->
  t
(** [slots] is the ring length in bins (default 8192; exposed for
    wraparound tests).  Rounded up to a power of two so the ring wrap is
    a mask rather than an integer divide on the per-access path. *)

val charge : t -> node:int -> float array -> unit
(** [charge t ~node io] records one line transfer against [node].  On entry
    [io.(0)] is the virtual time and [io.(1)] the base latency; on return
    [io.(0)] holds the contention-adjusted latency (at least [io.(1)]).
    Floats cross the module boundary through the caller-owned cell so the
    per-access hot path never boxes. *)

val access_ns : t -> node:int -> now_ns:float -> base_ns:float -> float
(** [access_ns t ~node ~now_ns ~base_ns] records one line transfer against
    [node] at virtual time [now_ns] and returns the contention-adjusted
    latency (at least [base_ns]).  Convenience wrapper over {!charge}. *)

val charge_lines :
  t -> node:int -> now_ns:float -> base_ns:float -> lines:int -> float
(** [charge_lines t ~node ~now_ns ~base_ns ~lines] records a bulk transfer
    of [lines] whole lines against [node]'s bin at [now_ns] — the
    task-graph edge path, where a tensor's bytes cross the channel at once
    — and returns the contention-adjusted latency: [base_ns] plus a
    serialization term ([lines * line_bytes] over the node's deliverable
    bytes/ns), scaled by the same contention factor as {!charge} at the
    post-charge bin load.  [lines = 0] returns [base_ns] without touching
    the channel.  Byte totals stay whole lines, so {!check_invariants} is
    preserved.
    @raise Invalid_argument on a negative line count. *)

val load_ratio : t -> node:int -> now_ns:float -> float
(** Demand / effective capacity of the bin containing [now_ns]
    (1.0 = saturated). *)

val bytes_served : t -> node:int -> int
(** Total bytes ever served by the node (for bandwidth-utilisation stats).
    Includes stale (aliased) accesses, so per-node byte totals stay correct
    across ring wraparound. *)

val set_capacity_factor : t -> node:int -> float -> unit
(** Throttle the node's deliverable bytes per bin to this fraction of
    nominal (clamped to [\[0.01, 1\]]).  Models memory-channel faults. *)

val capacity_factor : t -> node:int -> float

val stale_accesses : t -> int
(** Accesses that landed in a bin whose ring slot was already recycled by
    a newer bin (only possible once virtual time spans more than [slots]
    bins). *)

val reset : t -> unit
(** Clears demand history and byte totals; capacity throttling persists
    (a cache flush does not heal a hardware fault). *)

val check_invariants : t -> unit
(** Verify the channel's structural invariants: ring byte conservation
    (live bin demand never exceeds the bytes ever served, slots are
    populated iff they hold a bin, bin ids map back to their slot),
    non-negative counters, byte totals that are whole lines, and capacity
    factors inside the clamped range.  O(nodes x slots) — meant for tests,
    end-of-run verification and the scenario fuzzer, not per access.
    @raise Invariant.Violation describing the first broken invariant. *)
