let mib n = n * 1024 * 1024
let kib n = n * 1024

(* Cache-capacity scaling with per-cache floors expressed in *lines*, so
   that L2 and L3 keep a sane hierarchy at any scale: a flat byte floor
   would bottom L2 out at the same size as a scaled-down L3 and silently
   invert the capacity ratio the policies reason about. *)
let l2_min_lines = 16
let l3_min_lines = 64

let scale_topology topo ~scale =
  if scale <= 0 then invalid_arg "Presets.scale_topology: scale must be positive";
  if scale = 1 then topo
  else begin
    let line = topo.Topology.line_bytes in
    let l2 = max (topo.Topology.l2_bytes_per_core / scale) (l2_min_lines * line) in
    let l3 = max (topo.Topology.l3_bytes_per_chiplet / scale) (l3_min_lines * line) in
    if l2 >= l3 then
      invalid_arg
        (Printf.sprintf
           "Presets.scale_topology: scale %d inverts the cache hierarchy \
            (L2 %dB >= L3 %dB)"
           scale l2 l3);
    Topology.v ~chiplet_group_size:topo.Topology.chiplet_group_size
      ~l3_bytes_per_chiplet:l3 ~l2_bytes_per_core:l2 ~line_bytes:line
      ~mem_channels_per_socket:topo.Topology.mem_channels_per_socket
      ~mem_bw_bytes_per_ns_per_channel:
        topo.Topology.mem_bw_bytes_per_ns_per_channel
      ~chiplet_kinds:topo.Topology.chiplet_kinds
      ~kind_specs:topo.Topology.kind_specs ~links:topo.Topology.links
      ~sockets:topo.Topology.sockets
      ~chiplets_per_socket:topo.Topology.chiplets_per_socket
      ~cores_per_chiplet:topo.Topology.cores_per_chiplet ()
  end

let amd_milan ?(scale = 1) () =
  let base =
    Topology.v ~sockets:2 ~chiplets_per_socket:8 ~cores_per_chiplet:8
      ~chiplet_group_size:2 ~l3_bytes_per_chiplet:(mib 32)
      ~l2_bytes_per_core:(kib 512) ~mem_channels_per_socket:8
      ~mem_bw_bytes_per_ns_per_channel:4.8 ()
  in
  scale_topology base ~scale

let amd_milan_1s ?(scale = 1) () =
  let base =
    Topology.v ~sockets:1 ~chiplets_per_socket:8 ~cores_per_chiplet:8
      ~chiplet_group_size:2 ~l3_bytes_per_chiplet:(mib 32)
      ~l2_bytes_per_core:(kib 512) ~mem_channels_per_socket:8
      ~mem_bw_bytes_per_ns_per_channel:4.8 ()
  in
  scale_topology base ~scale

let intel_spr ?(scale = 1) () =
  (* 48 cores/socket as 4 tiles x 12 cores; 105 MB shared L3 modelled as
     ~26 MB slices with a faster tile-to-tile interconnect. *)
  let base =
    Topology.v ~sockets:2 ~chiplets_per_socket:4 ~cores_per_chiplet:12
      ~chiplet_group_size:2 ~l3_bytes_per_chiplet:(mib 26)
      ~l2_bytes_per_core:(mib 2) ~mem_channels_per_socket:8
      ~mem_bw_bytes_per_ns_per_channel:4.8 ()
  in
  scale_topology base ~scale

let tiny () =
  Topology.v ~sockets:1 ~chiplets_per_socket:2 ~cores_per_chiplet:2
    ~chiplet_group_size:1 ~l3_bytes_per_chiplet:(kib 16)
    ~l2_bytes_per_core:4096 ~mem_channels_per_socket:2 ()

let intel_profile =
  {
    Latency.default_profile with
    Latency.same_chiplet_ns = 32.0;
    same_group_ns = 60.0;
    same_socket_ns = 75.0;
    cross_socket_ns = 240.0;
  }
