(** Sparse coherence directory: which chiplets hold a copy of each line.

    Presence is a bitmask (machine-wide chiplet index), so topologies of up
    to 62 chiplets are supported. *)

type t

val create : chiplets:int -> t
val holders : t -> int -> int
(** Bitmask of chiplets holding the line (0 if uncached). *)

val add : t -> line:int -> chiplet:int -> unit
val remove : t -> line:int -> chiplet:int -> unit
val set_exclusive : t -> line:int -> chiplet:int -> unit
val holds : t -> line:int -> chiplet:int -> bool
val iter_holders : t -> line:int -> (int -> unit) -> unit
val count_holders : t -> line:int -> int
val nearest_holder :
  Topology.t -> t -> line:int -> from_chiplet:int -> int option
(** Closest chiplet (by {!Latency.classify_chiplets} order, same chiplet
    excluded) holding the line, or [None] when uncached anywhere else. *)

val nearest_holder_id :
  Topology.t -> t -> line:int -> from_chiplet:int -> int
(** Like {!nearest_holder} but int-coded ([-1] = none) so the per-access
    hot path allocates nothing. *)

val nearest_holder_ranked :
  t -> line:int -> from_chiplet:int -> ranks:int array -> row:int -> int
(** Like {!nearest_holder_id}, but distances come from row [row] of the
    caller's flattened chiplets x chiplets rank matrix ([ranks.(row + c)]
    is the rank from [from_chiplet] to [c]) instead of per-bit classify
    calls — the form the {!Machine} fill path uses. *)

val clear : t -> unit
