type t = {
  topo : Topology.t;
  profile : Latency.profile;
  l3 : Cache.t array;  (* per chiplet *)
  l2 : Cache.t array;  (* per core *)
  dir : Directory.t;
  chan : Memchan.t;
  links : Memchan.t;  (* per-chiplet link to the I/O die (GMI) *)
  mem : Simmem.t;
  pmu : Pmu.t;
  mods : Modifiers.t;  (* dynamic fault state, read on every access *)
  mem_ns : float array;
      (* per-core accumulated memory-access latency: the "latency PMU"
         the health monitor divides by the fill-event count to get a
         clean ns/access signal, unaffected by compute time *)
  mutable accesses : int;
      (* total access_line calls ever — every one must be classified into
         exactly one PMU fill-source counter, which check_invariants
         verifies *)
}

let create ?(profile = Latency.default_profile) topo =
  let chiplets = Topology.num_chiplets topo in
  let cores = Topology.num_cores topo in
  {
    topo;
    profile;
    l3 =
      Array.init chiplets (fun _ ->
          Cache.create ~size_bytes:topo.Topology.l3_bytes_per_chiplet
            ~line_bytes:topo.Topology.line_bytes ());
    l2 =
      Array.init cores (fun _ ->
          Cache.create ~ways:8 ~size_bytes:topo.Topology.l2_bytes_per_core
            ~line_bytes:topo.Topology.line_bytes ());
    dir = Directory.create ~chiplets;
    chan =
      Memchan.create ~nodes:topo.Topology.sockets
        ~channels_per_node:topo.Topology.mem_channels_per_socket
        ~bytes_per_ns_per_channel:topo.Topology.mem_bw_bytes_per_ns_per_channel
        ~line_bytes:topo.Topology.line_bytes ();
    links =
      Memchan.create ~nodes:(Topology.num_chiplets topo) ~channels_per_node:1
        ~bytes_per_ns_per_channel:4.0 ~line_bytes:topo.Topology.line_bytes ();
    mem = Simmem.create topo;
    pmu = Pmu.create ~cores;
    mods = Modifiers.create ~cores ~chiplets ~nodes:topo.Topology.sockets;
    mem_ns = Array.make cores 0.0;
    accesses = 0;
  }

let topology t = t.topo
let profile t = t.profile
let pmu t = t.pmu
let mem t = t.mem
let modifiers t = t.mods

let set_l3_ways t ~chiplet ~ways =
  if chiplet < 0 || chiplet >= Array.length t.l3 then
    invalid_arg "Machine.set_l3_ways: chiplet out of range";
  Cache.set_effective_ways t.l3.(chiplet) ways

let l3_ways t ~chiplet =
  if chiplet < 0 || chiplet >= Array.length t.l3 then
    invalid_arg "Machine.l3_ways: chiplet out of range";
  Cache.effective_ways t.l3.(chiplet)

let set_mem_capacity_factor t ~node factor =
  Memchan.set_capacity_factor t.chan ~node factor

let mem_capacity_factor t ~node = Memchan.capacity_factor t.chan ~node

let alloc t ?policy ~elt_bytes ~count () =
  Simmem.alloc t.mem ?policy ~elt_bytes ~count ()

let access_line t ~core ~now_ns ~write ~line =
  t.accesses <- t.accesses + 1;
  let topo = t.topo and p = t.profile in
  let chiplet = Topology.chiplet_of_core topo core in
  let socket = Topology.socket_of_core topo core in
  (* Core-private L2 filter: reads served by the L2 cost nothing beyond the
     L2 hit latency and generate no chiplet-level traffic. *)
  let l2 = t.l2.(core) in
  let l2_hit = match Cache.access l2 line with Cache.Hit -> true | Cache.Miss _ -> false in
  let cost =
    if l2_hit && not write then begin
      Pmu.incr t.pmu ~core Pmu.L2_hit;
      p.Latency.l2_hit_ns
    end
    else begin
      let l3 = t.l3.(chiplet) in
      let fill_cost =
        match Cache.access l3 line with
        | Cache.Hit ->
            Pmu.incr t.pmu ~core Pmu.L3_local_hit;
            p.Latency.same_chiplet_ns
        | Cache.Miss { evicted } ->
            (match evicted with
            | Some victim -> Directory.remove t.dir ~line:victim ~chiplet
            | None -> ());
            let cost =
              match Directory.nearest_holder topo t.dir ~line ~from_chiplet:chiplet with
              | Some holder ->
                  let d = Latency.classify_chiplets topo chiplet holder in
                  let base = Latency.of_distance p d in
                  let base =
                    (* degraded cross-socket fabric inflates every hop
                       between the sockets *)
                    if Topology.socket_of_chiplet topo holder = socket then base
                    else base *. Modifiers.xsocket_mult t.mods
                  in
                  if Topology.socket_of_chiplet topo holder = socket then
                    Pmu.incr t.pmu ~core Pmu.Fill_remote_chiplet
                  else Pmu.incr t.pmu ~core Pmu.Fill_remote_numa;
                  (* a cache-to-cache transfer occupies both chiplets'
                     I/O-die links; inter-chiplet traffic therefore
                     saturates with core count (paper insight 3).  A
                     degraded link multiplies the latency of every
                     transfer crossing it. *)
                  let l1 =
                    Memchan.access_ns t.links ~node:chiplet ~now_ns
                      ~base_ns:(base *. Modifiers.link_mult t.mods chiplet)
                  in
                  let l2c =
                    Memchan.access_ns t.links ~node:holder ~now_ns
                      ~base_ns:(base *. Modifiers.link_mult t.mods holder)
                  in
                  Float.max l1 l2c
              | None ->
                  let addr = line * topo.Topology.line_bytes in
                  let home = Simmem.node_of_addr t.mem ~toucher_node:socket addr in
                  let base =
                    if home = socket then begin
                      Pmu.incr t.pmu ~core Pmu.Dram_local;
                      p.Latency.dram_local_ns
                    end
                    else begin
                      Pmu.incr t.pmu ~core Pmu.Dram_remote;
                      p.Latency.dram_remote_ns *. Modifiers.xsocket_mult t.mods
                    end
                  in
                  let node_cost =
                    Memchan.access_ns t.chan ~node:home ~now_ns ~base_ns:base
                  in
                  (* DRAM traffic also crosses this chiplet's I/O-die link;
                     the slower of the two queues dominates *)
                  let link_cost =
                    Memchan.access_ns t.links ~node:chiplet ~now_ns
                      ~base_ns:(base *. Modifiers.link_mult t.mods chiplet)
                  in
                  Float.max node_cost link_cost
            in
            Directory.add t.dir ~line ~chiplet;
            cost
      in
      fill_cost
    end
  in
  let total =
    if write then begin
      (* Invalidate copies held by other chiplets; the writer becomes the
         exclusive holder. *)
      let extra = ref 0.0 in
      Directory.iter_holders t.dir ~line (fun holder ->
          if holder <> chiplet then begin
            ignore (Cache.invalidate t.l3.(holder) line : bool);
            Pmu.incr t.pmu ~core Pmu.Coherence_invalidation;
            extra := !extra +. p.Latency.coherence_inval_ns
          end);
      Directory.set_exclusive t.dir ~line ~chiplet;
      cost +. !extra
    end
    else cost
  in
  t.mem_ns.(core) <- t.mem_ns.(core) +. total;
  total

let access t ~core ~now_ns ~write addr =
  access_line t ~core ~now_ns ~write ~line:(addr / t.topo.Topology.line_bytes)

let touch t ~core ~now_ns ~write region i =
  access t ~core ~now_ns ~write (Simmem.addr region i)

(* Hardware prefetchers hide most of the latency of a sequential run:
   lines after the first are charged a fraction of their latency, while
   the bandwidth they consume is still fully accounted by the channel and
   link models.  This is what lets one streaming thread pull an order of
   magnitude more bandwidth than a pointer-chasing one. *)
let prefetch_factor = 0.35

let touch_range t ~core ~now_ns ~write region ~lo ~hi =
  if lo >= hi then 0.0
  else begin
    let line_bytes = t.topo.Topology.line_bytes in
    let first = Simmem.addr region lo / line_bytes in
    let last = (Simmem.addr region (hi - 1)) / line_bytes in
    let total = ref 0.0 in
    for line = first to last do
      let cost = access_line t ~core ~now_ns:(now_ns +. !total) ~write ~line in
      let cost = if line = first then cost else cost *. prefetch_factor in
      total := !total +. cost
    done;
    !total
  end

let core_to_core_ns t a b = Latency.core_to_core_ns ~profile:t.profile t.topo a b
let dram_load_ratio t ~node ~now_ns = Memchan.load_ratio t.chan ~node ~now_ns
let dram_bytes_served t ~node = Memchan.bytes_served t.chan ~node

let flush_caches t =
  Array.iter Cache.clear t.l3;
  Array.iter Cache.clear t.l2;
  Directory.clear t.dir;
  Memchan.reset t.chan;
  Memchan.reset t.links

let mem_ns t ~core = t.mem_ns.(core)
let accesses t = t.accesses

(* Cheap structural checks, suitable for calling every few quanta from the
   scheduler when checking is on: O(cores) PMU sums + O(chiplets) bounds. *)
let check_invariants t =
  let fills =
    Pmu.total t.pmu Pmu.L2_hit
    + Pmu.total t.pmu Pmu.L3_local_hit
    + Pmu.total t.pmu Pmu.Fill_remote_chiplet
    + Pmu.total t.pmu Pmu.Fill_remote_numa
    + Pmu.total t.pmu Pmu.Dram_local
    + Pmu.total t.pmu Pmu.Dram_remote
  in
  if fills <> t.accesses then
    Invariant.fail
      "machine: fill-class counts sum to %d but %d accesses were simulated"
      fills t.accesses;
  Array.iteri
    (fun chiplet l3 ->
      let eff = Cache.effective_ways l3 in
      if eff < 1 || eff > Cache.ways l3 then
        Invariant.fail
          "machine: chiplet %d L3 has %d effective ways outside [1, %d]"
          chiplet eff (Cache.ways l3))
    t.l3;
  Array.iteri
    (fun core ns ->
      if not (Float.is_finite ns) || ns < 0.0 then
        Invariant.fail "machine: core %d memory-latency meter is %g" core ns)
    t.mem_ns

(* Adds the O(nodes * slots) memory-channel ring scans — end-of-run /
   fuzzer verification. *)
let check_invariants_full t =
  check_invariants t;
  Memchan.check_invariants t.chan;
  Memchan.check_invariants t.links

let reset t =
  flush_caches t;
  Simmem.reset t.mem;
  Pmu.reset t.pmu;
  Array.fill t.mem_ns 0 (Array.length t.mem_ns) 0.0;
  t.accesses <- 0
