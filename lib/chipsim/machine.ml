type t = {
  topo : Topology.t;
  profile : Latency.profile;
  l3 : Cache.t array;  (* per chiplet *)
  l2 : Cache.t array;  (* per core *)
  dir : Directory.t;
  chan : Memchan.t;
  links : Memchan.t;  (* per-chiplet link to the I/O die (GMI) *)
  mem : Simmem.t;
  pmu : Pmu.t;
  mods : Modifiers.t;  (* dynamic fault state, read on every access *)
  (* per-core / per-chiplet lookup tables: the per-access path resolves
     core -> chiplet -> socket by indexing instead of dividing *)
  core_chiplet : int array;
  core_socket : int array;
  chiplet_socket : int array;
  nchiplets : int;
  line_shift : int;
      (* log2 line_bytes: addr -> line is a shift, not an integer divide *)
  chiplet_base_ns : float array;
      (* chiplets x chiplets base transfer latency
         (of_distance . classify_chiplets), precomputed so the remote-fill
         path is one unboxed array read instead of a classify + match *)
  chiplet_rank : int array;
      (* chiplets x chiplets distance ranks
         (rank_of_distance . classify_chiplets), for the nearest-holder
         scan on the L3-miss path *)
  scratch_clk : float array;
      (* 1-slot clock cell backing the float-returning compat wrappers
         around the [_clk] entry points *)
  chan_io : float array;
      (* 2-slot io cell for {!Memchan.charge}: floats cross that module
         boundary through it instead of boxed arguments/returns *)
  mem_ns : float array;
      (* per-core accumulated memory-access latency: the "latency PMU"
         the health monitor divides by the fill-event count to get a
         clean ns/access signal, unaffected by compute time *)
  kind_access_mult : float array;
      (* per-core static memory-path multiplier from the core's kind;
         exactly 1.0 on homogeneous-big machines so the product is a
         bit-identical no-op there *)
  kind_energy_pj : float array;
      (* per-core energy charged per access, from the core's kind *)
  energy_pj : float array;  (* per-core accumulated access energy *)
  kind_compute_pw : float array;
      (* per-core compute power density in pJ per virtual ns at nominal
         DVFS: a faster kind retires more work per ns and burns
         proportionally more, so density = kind energy_pj x kind speed *)
  compute_pj : float array;
      (* per-core accumulated per-quantum compute energy — kept separate
         from [energy_pj] so the PR-8 access-energy figures stay
         bit-identical when per-quantum charging is off *)
  link_lat_mult : float array;
      (* per-chiplet static I/O-die latency multiplier from the topology's
         link table; composes with the dynamic fault multiplier *)
  mutable accesses : int;
      (* total access_line calls ever — every one must be classified into
         exactly one PMU fill-source counter, which check_invariants
         verifies *)
  mutable xfer_bytes : int;
      (* payload bytes of cross-chiplet bulk transfers ({!transfer}),
         rounded up to whole lines; each such transfer occupies BOTH
         endpoint links, so 2 * xfer_bytes never exceeds the links'
         total bytes served — checked by check_invariants_full *)
}

let create ?(profile = Latency.default_profile) topo =
  let chiplets = Topology.num_chiplets topo in
  let cores = Topology.num_cores topo in
  let line_bytes = topo.Topology.line_bytes in
  if line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Machine.create: line_bytes must be a power of two";
  let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
  (* the per-chiplet link Memchan runs at the fastest link's bandwidth;
     slower links are expressed as capacity factors, which is exactly how
     dynamic membw faults scale channels — identical maths, so a topology
     with all-default links matches the historical fixed 4.0 bytes/ns *)
  let link_bw ch = topo.Topology.links.(ch).Topology.bw_bytes_per_ns in
  let max_link_bw =
    let m = ref (link_bw 0) in
    for ch = 1 to chiplets - 1 do
      if link_bw ch > !m then m := link_bw ch
    done;
    !m
  in
  let links_chan =
    Memchan.create ~nodes:chiplets ~channels_per_node:1
      ~bytes_per_ns_per_channel:max_link_bw ~line_bytes ()
  in
  for ch = 0 to chiplets - 1 do
    let f = link_bw ch /. max_link_bw in
    if f <> 1.0 then Memchan.set_capacity_factor links_chan ~node:ch f
  done;
  {
    topo;
    profile;
    l3 =
      Array.init chiplets (fun _ ->
          Cache.create ~size_bytes:topo.Topology.l3_bytes_per_chiplet
            ~line_bytes:topo.Topology.line_bytes ());
    l2 =
      Array.init cores (fun _ ->
          Cache.create ~ways:8 ~size_bytes:topo.Topology.l2_bytes_per_core
            ~line_bytes:topo.Topology.line_bytes ());
    dir = Directory.create ~chiplets;
    chan =
      Memchan.create ~nodes:topo.Topology.sockets
        ~channels_per_node:topo.Topology.mem_channels_per_socket
        ~bytes_per_ns_per_channel:topo.Topology.mem_bw_bytes_per_ns_per_channel
        ~line_bytes:topo.Topology.line_bytes ();
    links = links_chan;
    mem = Simmem.create topo;
    pmu = Pmu.create ~cores;
    mods = Modifiers.create ~cores ~chiplets ~nodes:topo.Topology.sockets;
    core_chiplet = Array.init cores (fun c -> Topology.chiplet_of_core topo c);
    core_socket = Array.init cores (fun c -> Topology.socket_of_core topo c);
    chiplet_socket =
      Array.init chiplets (fun ch -> Topology.socket_of_chiplet topo ch);
    nchiplets = chiplets;
    line_shift = log2 line_bytes 0;
    chiplet_base_ns =
      Array.init (chiplets * chiplets) (fun i ->
          Latency.of_distance profile
            (Latency.classify_chiplets topo (i / chiplets) (i mod chiplets)));
    chiplet_rank =
      Array.init (chiplets * chiplets) (fun i ->
          Latency.rank_of_distance
            (Latency.classify_chiplets topo (i / chiplets) (i mod chiplets)));
    scratch_clk = Array.make 1 0.0;
    chan_io = Array.make 2 0.0;
    mem_ns = Array.make cores 0.0;
    kind_access_mult =
      Array.init cores (fun c ->
          (Topology.spec_of_kind topo (Topology.kind_of_core topo c))
            .Topology.access_mult);
    kind_energy_pj =
      Array.init cores (fun c ->
          (Topology.spec_of_kind topo (Topology.kind_of_core topo c))
            .Topology.energy_pj);
    energy_pj = Array.make cores 0.0;
    kind_compute_pw =
      Array.init cores (fun c ->
          let spec =
            Topology.spec_of_kind topo (Topology.kind_of_core topo c)
          in
          spec.Topology.energy_pj *. spec.Topology.speed);
    compute_pj = Array.make cores 0.0;
    link_lat_mult =
      Array.init chiplets (fun ch -> topo.Topology.links.(ch).Topology.lat_mult);
    accesses = 0;
    xfer_bytes = 0;
  }

let topology t = t.topo
let profile t = t.profile
let pmu t = t.pmu
let mem t = t.mem
let modifiers t = t.mods

let set_l3_ways t ~chiplet ~ways =
  if chiplet < 0 || chiplet >= Array.length t.l3 then
    invalid_arg "Machine.set_l3_ways: chiplet out of range";
  Cache.set_effective_ways t.l3.(chiplet) ways

let l3_ways t ~chiplet =
  if chiplet < 0 || chiplet >= Array.length t.l3 then
    invalid_arg "Machine.l3_ways: chiplet out of range";
  Cache.effective_ways t.l3.(chiplet)

let set_mem_capacity_factor t ~node factor =
  Memchan.set_capacity_factor t.chan ~node factor

let mem_capacity_factor t ~node = Memchan.capacity_factor t.chan ~node

let alloc t ?policy ~elt_bytes ~count () =
  Simmem.alloc t.mem ?policy ~elt_bytes ~count ()

(* The core access routine charges the latency directly into the caller's
   clock cell [clk.(slot)] (an unboxed float-array slot — the scheduler
   passes each worker's virtual clock).  Nothing float-valued crosses a
   function boundary on the L2/L3-hit paths, so they allocate nothing;
   only the fill paths pay the boxed calls into {!Memchan}. *)
(* Core per-access routine with io-cell calling convention: on entry
   [clk.(slot)] holds the virtual time, on return it holds the raw access
   cost (NOT the advanced clock).  Floats cross this boundary through the
   caller-owned cell, so neither the arguments nor the result box. *)
let access_line_io t ~core ~write ~line clk slot =
  t.accesses <- t.accesses + 1;
  let now_ns = clk.(slot) in
  let p = t.profile in
  let chiplet = t.core_chiplet.(core) in
  let socket = t.core_socket.(core) in
  (* Core-private L2 filter: reads served by the L2 cost nothing beyond the
     L2 hit latency and generate no chiplet-level traffic. *)
  let l2_res = Cache.access t.l2.(core) line in
  let cost =
    if l2_res = Cache.hit && not write then begin
      Pmu.incr t.pmu ~core Pmu.L2_hit;
      p.Latency.l2_hit_ns
    end
    else begin
      let l3 = t.l3.(chiplet) in
      let l3_res = Cache.access l3 line in
      if l3_res = Cache.hit then begin
        Pmu.incr t.pmu ~core Pmu.L3_local_hit;
        p.Latency.same_chiplet_ns
      end
      else begin
        if l3_res >= 0 then Directory.remove t.dir ~line:l3_res ~chiplet;
        let holder =
          Directory.nearest_holder_ranked t.dir ~line ~from_chiplet:chiplet
            ~ranks:t.chiplet_rank ~row:(chiplet * t.nchiplets)
        in
        let cost =
          if holder >= 0 then begin
            let base0 = t.chiplet_base_ns.((chiplet * t.nchiplets) + holder) in
            let base =
              (* degraded cross-socket fabric inflates every hop
                 between the sockets *)
              if t.chiplet_socket.(holder) = socket then base0
              else base0 *. Modifiers.xsocket_mult t.mods
            in
            if t.chiplet_socket.(holder) = socket then
              Pmu.incr t.pmu ~core Pmu.Fill_remote_chiplet
            else Pmu.incr t.pmu ~core Pmu.Fill_remote_numa;
            (* a cache-to-cache transfer occupies both chiplets'
               I/O-die links; inter-chiplet traffic therefore
               saturates with core count (paper insight 3).  A
               degraded link multiplies the latency of every
               transfer crossing it. *)
            let io = t.chan_io in
            io.(0) <- now_ns;
            io.(1) <-
              base
              *. Modifiers.unsafe_link_mult t.mods chiplet
              *. Array.unsafe_get t.link_lat_mult chiplet;
            Memchan.charge t.links ~node:chiplet io;
            let l1 = io.(0) in
            io.(0) <- now_ns;
            io.(1) <-
              base
              *. Modifiers.unsafe_link_mult t.mods holder
              *. Array.unsafe_get t.link_lat_mult holder;
            Memchan.charge t.links ~node:holder io;
            let l2c = io.(0) in
            if l1 >= l2c then l1 else l2c
          end
          else begin
            let addr = line lsl t.line_shift in
            let home = Simmem.node_of_addr t.mem ~toucher_node:socket addr in
            let base =
              if home = socket then begin
                Pmu.incr t.pmu ~core Pmu.Dram_local;
                p.Latency.dram_local_ns
              end
              else begin
                Pmu.incr t.pmu ~core Pmu.Dram_remote;
                p.Latency.dram_remote_ns *. Modifiers.xsocket_mult t.mods
              end
            in
            let io = t.chan_io in
            io.(0) <- now_ns;
            io.(1) <- base;
            Memchan.charge t.chan ~node:home io;
            let node_cost = io.(0) in
            (* DRAM traffic also crosses this chiplet's I/O-die link;
               the slower of the two queues dominates *)
            io.(0) <- now_ns;
            io.(1) <-
              base
              *. Modifiers.unsafe_link_mult t.mods chiplet
              *. Array.unsafe_get t.link_lat_mult chiplet;
            Memchan.charge t.links ~node:chiplet io;
            let link_cost = io.(0) in
            if node_cost >= link_cost then node_cost else link_cost
          end
        in
        Directory.add t.dir ~line ~chiplet;
        cost
      end
    end
  in
  let total =
    if write then begin
      (* Invalidate copies held by other chiplets; the writer becomes the
         exclusive holder.  The holder set is walked as a bitmask — no
         closure, no allocation on this per-write path. *)
      let others = Directory.holders t.dir line land lnot (1 lsl chiplet) in
      if others = 0 then begin
        Directory.set_exclusive t.dir ~line ~chiplet;
        cost
      end
      else begin
        (* walk only up to the highest set holder bit — typically a
           handful of chiplets share a line, not the whole machine *)
        let extra = ref 0.0 in
        let m = ref others and holder = ref 0 in
        while !m <> 0 do
          if !m land 1 <> 0 then begin
            ignore (Cache.invalidate t.l3.(!holder) line : bool);
            Pmu.incr t.pmu ~core Pmu.Coherence_invalidation;
            extra := !extra +. p.Latency.coherence_inval_ns
          end;
          m := !m lsr 1;
          incr holder
        done;
        Directory.set_exclusive t.dir ~line ~chiplet;
        cost +. !extra
      end
    end
    else cost
  in
  (* accelerator/little tiles see the shared memory path through a
     less aggressive core frontend: one static multiplier per kind,
     exactly 1.0 for big cores *)
  let total = total *. Array.unsafe_get t.kind_access_mult core in
  Array.unsafe_set t.energy_pj core
    (Array.unsafe_get t.energy_pj core +. Array.unsafe_get t.kind_energy_pj core);
  t.mem_ns.(core) <- t.mem_ns.(core) +. total;
  clk.(slot) <- total

let access_line_clk t ~core ~write ~line clk slot =
  let now_ns = clk.(slot) in
  access_line_io t ~core ~write ~line clk slot;
  clk.(slot) <- now_ns +. clk.(slot)

let access_clk t ~core ~write addr clk slot =
  access_line_clk t ~core ~write ~line:(addr lsr t.line_shift) clk slot

(* float-returning compat wrappers over the scratch clock cell *)
let access_line t ~core ~now_ns ~write ~line =
  let c = t.scratch_clk in
  c.(0) <- now_ns;
  access_line_io t ~core ~write ~line c 0;
  c.(0)

let access t ~core ~now_ns ~write addr =
  access_line t ~core ~now_ns ~write ~line:(addr / t.topo.Topology.line_bytes)

let touch t ~core ~now_ns ~write region i =
  access t ~core ~now_ns ~write (Simmem.addr region i)

(* Hardware prefetchers hide most of the latency of a sequential run:
   lines after the first are charged a fraction of their latency, while
   the bandwidth they consume is still fully accounted by the channel and
   link models.  This is what lets one streaming thread pull an order of
   magnitude more bandwidth than a pointer-chasing one. *)
let prefetch_factor = 0.35

(* io-cell variant: [clk.(slot)] holds the virtual time on entry and the
   span's total cost on return.  Each line is charged at [now + total-so-
   far], exactly the evaluation order of a caller summing per-line costs
   itself, so the clock's float rounding is independent of how a range is
   chunked. *)
let touch_range_io t ~core ~write region ~lo ~hi clk slot =
  let first = Simmem.addr region lo lsr t.line_shift in
  let last = Simmem.addr region (hi - 1) lsr t.line_shift in
  let now0 = clk.(slot) in
  let total = ref 0.0 in
  for line = first to last do
    clk.(slot) <- now0 +. !total;
    access_line_io t ~core ~write ~line clk slot;
    let cost = clk.(slot) in
    let cost = if line = first then cost else cost *. prefetch_factor in
    total := !total +. cost
  done;
  clk.(slot) <- !total

let touch_range_clk t ~core ~write region ~lo ~hi clk slot =
  if lo < hi then begin
    let now0 = clk.(slot) in
    touch_range_io t ~core ~write region ~lo ~hi clk slot;
    clk.(slot) <- now0 +. clk.(slot)
  end

let touch_range t ~core ~now_ns ~write region ~lo ~hi =
  if lo >= hi then 0.0
  else begin
    let c = t.scratch_clk in
    c.(0) <- now_ns;
    touch_range_io t ~core ~write region ~lo ~hi c 0;
    c.(0)
  end

(* Bulk chiplet-to-chiplet transfer — the task-graph edge path.  Bytes are
   rounded up to whole lines so the link channels keep their whole-line
   accounting.  A transfer within one chiplet stays inside the local L3
   and costs one same-chiplet hop regardless of size; a cross-chiplet
   transfer pays the distance-classified base latency (inflated by a
   degraded cross-socket fabric) plus serialization and contention on
   BOTH endpoints' I/O-die links, the slower of the two dominating —
   the same composition as the cache-to-cache fill path above. *)
let transfer t ~src_chiplet ~dst_chiplet ~now_ns ~bytes =
  if src_chiplet < 0 || src_chiplet >= t.nchiplets then
    invalid_arg "Machine.transfer: src chiplet out of range";
  if dst_chiplet < 0 || dst_chiplet >= t.nchiplets then
    invalid_arg "Machine.transfer: dst chiplet out of range";
  if bytes < 0 then invalid_arg "Machine.transfer: negative byte count";
  if bytes = 0 then 0.0
  else if src_chiplet = dst_chiplet then t.profile.Latency.same_chiplet_ns
  else begin
    let line_bytes = t.topo.Topology.line_bytes in
    let lines = (bytes + line_bytes - 1) / line_bytes in
    t.xfer_bytes <- t.xfer_bytes + (lines * line_bytes);
    let base0 = t.chiplet_base_ns.((src_chiplet * t.nchiplets) + dst_chiplet) in
    let base =
      if t.chiplet_socket.(src_chiplet) = t.chiplet_socket.(dst_chiplet) then
        base0
      else base0 *. Modifiers.xsocket_mult t.mods
    in
    let leg chiplet =
      Memchan.charge_lines t.links ~node:chiplet ~now_ns
        ~base_ns:
          (base
          *. Modifiers.unsafe_link_mult t.mods chiplet
          *. t.link_lat_mult.(chiplet))
        ~lines
    in
    Float.max (leg src_chiplet) (leg dst_chiplet)
  end

let transferred_bytes t = t.xfer_bytes

let core_to_core_ns t a b = Latency.core_to_core_ns ~profile:t.profile t.topo a b
let dram_load_ratio t ~node ~now_ns = Memchan.load_ratio t.chan ~node ~now_ns
let dram_bytes_served t ~node = Memchan.bytes_served t.chan ~node

let flush_caches t =
  Array.iter Cache.clear t.l3;
  Array.iter Cache.clear t.l2;
  Directory.clear t.dir;
  Memchan.reset t.chan;
  Memchan.reset t.links;
  (* the links' byte totals restart, so the transfer ledger they bound
     must restart with them *)
  t.xfer_bytes <- 0

let mem_ns t ~core = t.mem_ns.(core)
let energy_pj t ~core = t.energy_pj.(core)

(* memory-access energy only — the historical PR-8 meter; compute energy
   deliberately lands in [compute_pj] so this total is bit-identical
   whether or not per-quantum charging is enabled *)
let total_energy_pj t =
  Array.fold_left ( +. ) 0.0 t.energy_pj

(* Per-quantum compute energy.  [dt_ns] is virtual time retired by the
   core during the quantum; the DVFS factor enters quadratically, so with
   power = energy/time the core's power scales ~cubically with frequency —
   which is why shedding frequency is an effective power-cap actuator.
   Energy accounting never touches virtual time. *)
let charge_quantum t ~core ~dt_ns ~dvfs =
  Array.unsafe_set t.compute_pj core
    (Array.unsafe_get t.compute_pj core
    +. (dt_ns *. Array.unsafe_get t.kind_compute_pw core *. dvfs *. dvfs))

let compute_energy_pj t ~core = t.compute_pj.(core)
let total_compute_energy_pj t = Array.fold_left ( +. ) 0.0 t.compute_pj
let combined_energy_pj t = total_energy_pj t +. total_compute_energy_pj t

let chiplet_energy_pj t ~chiplet =
  if chiplet < 0 || chiplet >= t.nchiplets then
    invalid_arg "Machine.chiplet_energy_pj: chiplet out of range";
  let acc = ref 0.0 in
  Array.iteri
    (fun core ch ->
      if ch = chiplet then
        acc := !acc +. t.energy_pj.(core) +. t.compute_pj.(core))
    t.core_chiplet;
  !acc

let accesses t = t.accesses

(* Cheap structural checks, suitable for calling every few quanta from the
   scheduler when checking is on: O(cores) PMU sums + O(chiplets) bounds. *)
let check_invariants t =
  let fills =
    Pmu.total t.pmu Pmu.L2_hit
    + Pmu.total t.pmu Pmu.L3_local_hit
    + Pmu.total t.pmu Pmu.Fill_remote_chiplet
    + Pmu.total t.pmu Pmu.Fill_remote_numa
    + Pmu.total t.pmu Pmu.Dram_local
    + Pmu.total t.pmu Pmu.Dram_remote
  in
  if fills <> t.accesses then
    Invariant.fail
      "machine: fill-class counts sum to %d but %d accesses were simulated"
      fills t.accesses;
  Array.iteri
    (fun chiplet l3 ->
      let eff = Cache.effective_ways l3 in
      if eff < 1 || eff > Cache.ways l3 then
        Invariant.fail
          "machine: chiplet %d L3 has %d effective ways outside [1, %d]"
          chiplet eff (Cache.ways l3))
    t.l3;
  Array.iteri
    (fun core ns ->
      if not (Float.is_finite ns) || ns < 0.0 then
        Invariant.fail "machine: core %d memory-latency meter is %g" core ns)
    t.mem_ns;
  Array.iteri
    (fun core e ->
      if not (Float.is_finite e) || e < 0.0 then
        Invariant.fail "machine: core %d energy meter is %g" core e)
    t.energy_pj;
  Array.iteri
    (fun core e ->
      if not (Float.is_finite e) || e < 0.0 then
        Invariant.fail "machine: core %d compute-energy meter is %g" core e)
    t.compute_pj

(* Adds the O(nodes * slots) memory-channel ring scans — end-of-run /
   fuzzer verification. *)
let check_invariants_full t =
  check_invariants t;
  Memchan.check_invariants t.chan;
  Memchan.check_invariants t.links;
  (* edge-byte conservation: every cross-chiplet transfer occupied both
     endpoint links, and the links also carry cache-fill traffic on top *)
  if t.xfer_bytes < 0 then
    Invariant.fail "machine: negative transfer ledger %d" t.xfer_bytes;
  if t.xfer_bytes mod t.topo.Topology.line_bytes <> 0 then
    Invariant.fail
      "machine: transfer ledger %d not a multiple of the %d-byte line"
      t.xfer_bytes t.topo.Topology.line_bytes;
  let link_total = ref 0 in
  for ch = 0 to t.nchiplets - 1 do
    link_total := !link_total + Memchan.bytes_served t.links ~node:ch
  done;
  if 2 * t.xfer_bytes > !link_total then
    Invariant.fail
      "machine: transfer ledger %d bytes (x2 link legs) exceeds the %d bytes \
       the links ever served"
      t.xfer_bytes !link_total;
  (* energy conservation: the per-chiplet view is a re-partition of the
     per-core meters, so both sums must agree (to float re-association) *)
  let per_chiplet = ref 0.0 in
  for ch = 0 to t.nchiplets - 1 do
    per_chiplet := !per_chiplet +. chiplet_energy_pj t ~chiplet:ch
  done;
  let total = combined_energy_pj t in
  if Float.abs (!per_chiplet -. total) > 1e-6 *. Float.max 1.0 total then
    Invariant.fail
      "machine: per-chiplet energy sums to %g pJ but the machine total is %g pJ"
      !per_chiplet total

let reset t =
  flush_caches t;
  Simmem.reset t.mem;
  Pmu.reset t.pmu;
  Array.fill t.mem_ns 0 (Array.length t.mem_ns) 0.0;
  Array.fill t.energy_pj 0 (Array.length t.energy_pj) 0.0;
  Array.fill t.compute_pj 0 (Array.length t.compute_pj) 0.0;
  t.accesses <- 0;
  t.xfer_bytes <- 0
