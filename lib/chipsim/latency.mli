(** Core-to-core and fill latencies, in (virtual) nanoseconds.

    The distance classes mirror the stepped CDF of paper Fig. 3: intra-chiplet
    around 25 ns, inter-chiplet-intra-quadrant around 85 ns, cross-quadrant
    within a socket beyond 150 ns, and cross-socket slowest of all. *)

type distance =
  | Same_core
  | Same_chiplet
  | Same_group  (** different chiplet, same I/O-die quadrant, same socket *)
  | Same_socket  (** different quadrant, same socket *)
  | Cross_socket

type profile = {
  same_chiplet_ns : float;
  same_group_ns : float;
  same_socket_ns : float;
  cross_socket_ns : float;
  l2_hit_ns : float;
  dram_local_ns : float;
  dram_remote_ns : float;
  coherence_inval_ns : float;  (** per remote copy invalidated on a write *)
}

val default_profile : profile
(** Calibrated against the AMD EPYC Milan measurements of paper §2.1. *)

val classify : Topology.t -> int -> int -> distance
(** [classify topo core_a core_b] is the distance class between two cores. *)

val classify_chiplets : Topology.t -> int -> int -> distance
(** Distance class between two chiplets (never [Same_core]). *)

val rank_of_distance : distance -> int
(** Monotone rank of a distance class: 0 = [Same_core] .. 4 =
    [Cross_socket].  Smaller is closer. *)

val rank_matrix : Topology.t -> int array
(** [rank_matrix topo] is the [cores * cores] matrix of
    [rank_of_distance (classify topo a b)], flattened row-major
    ([a * cores + b]).  Precomputed once so hot scheduler paths resolve
    core distance by a single array load. *)

val core_to_core_ns : ?profile:profile -> Topology.t -> int -> int -> float
(** Latency of a cache-to-cache transfer between two cores, with a small
    deterministic per-pair jitter so the CDF is stepped but not degenerate. *)

val of_distance : profile -> distance -> float
val distance_to_string : distance -> string
