(* Open-addressing int -> int hash map with linear probing.  The coherence
   directory and the page map sit on the per-access hot path; the generic
   Hashtbl costs a C hashing call plus bucket-list pointer chasing per
   lookup and allocates a cons cell per insert.  This table is one flat
   int array of interleaved (key, value) pairs — a probe touches a single
   cache line — and one multiplicative hash; no operation allocates
   except growth. *)

type t = {
  mutable data : int array;  (* slot i: key at 2i, value at 2i+1 *)
  mutable mask : int;  (* slots - 1; slot count is a power of two *)
  mutable size : int;  (* live entries *)
  mutable used : int;  (* live entries + tombstones *)
}

let empty_slot = -1  (* key marker: never used *)
let tomb = -2  (* key marker: deleted *)

let create ?(capacity = 16) () =
  let rec pow2 n acc = if acc >= n then acc else pow2 n (acc * 2) in
  let cap = pow2 (max capacity 8) 8 in
  { data = Array.make (2 * cap) empty_slot; mask = cap - 1; size = 0; used = 0 }

let size t = t.size

(* Multiplicative hashing (SplitMix finalizer constant, truncated to
   OCaml's 63-bit int range): one multiply, one shift-xor, then mask.
   Keys are non-negative, but the product may wrap negative — the mask
   clears the sign. *)
let hash k mask =
  let h = k * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land mask

(* probe offsets are always (masked slot) * 2 [+ 1], so the unsafe
   accesses below cannot leave the (power-of-two sized) array *)
let get t k ~absent =
  let data = t.data and mask = t.mask in
  let i = ref (hash k mask) in
  let res = ref absent and continue_ = ref true in
  while !continue_ do
    let kk = Array.unsafe_get data (2 * !i) in
    if kk = k then begin
      res := Array.unsafe_get data ((2 * !i) + 1);
      continue_ := false
    end
    else if kk = empty_slot then continue_ := false
    else i := (!i + 1) land mask
  done;
  !res

let rec grow t =
  (* If live entries occupy under a quarter of the table, the load is all
     tombstones (heavy insert/remove churn, e.g. the coherence directory
     under cache eviction): rehash in place to clear them instead of
     doubling, or capacity would grow without bound. *)
  let cap = t.mask + 1 in
  let cap = if t.size * 4 <= cap then cap else cap * 2 in
  let old = t.data in
  t.data <- Array.make (2 * cap) empty_slot;
  t.mask <- cap - 1;
  t.used <- t.size;
  let mask = t.mask and data = t.data in
  let n = Array.length old / 2 in
  for s = 0 to n - 1 do
    let k = old.(2 * s) in
    if k >= 0 then begin
      let i = ref (hash k mask) in
      while data.(2 * !i) <> empty_slot do
        i := (!i + 1) land mask
      done;
      data.(2 * !i) <- k;
      data.((2 * !i) + 1) <- old.((2 * s) + 1)
    end
  done

and set t k v =
  if k < 0 then invalid_arg "Intmap.set: negative key";
  (* grow at 1/2 load (counting tombstones) so probe runs stay short *)
  if (t.used + 1) * 2 > t.mask + 1 then grow t;
  let data = t.data and mask = t.mask in
  let i = ref (hash k mask) in
  let slot = ref (-1) and continue_ = ref true in
  while !continue_ do
    let kk = Array.unsafe_get data (2 * !i) in
    if kk = k then begin
      slot := !i;
      continue_ := false
    end
    else if kk = empty_slot then begin
      (* reuse the first tombstone passed on the way, if any *)
      if !slot = -1 then begin
        slot := !i;
        t.used <- t.used + 1
      end;
      data.(2 * !slot) <- k;
      t.size <- t.size + 1;
      continue_ := false
    end
    else begin
      if kk = tomb && !slot = -1 then slot := !i;
      i := (!i + 1) land mask
    end
  done;
  data.((2 * !slot) + 1) <- v

let remove t k =
  let data = t.data and mask = t.mask in
  let i = ref (hash k mask) in
  let continue_ = ref true in
  while !continue_ do
    let kk = Array.unsafe_get data (2 * !i) in
    if kk = k then begin
      data.(2 * !i) <- tomb;
      t.size <- t.size - 1;
      continue_ := false
    end
    else if kk = empty_slot then continue_ := false
    else i := (!i + 1) land mask
  done

let iter t f =
  let n = Array.length t.data / 2 in
  for s = 0 to n - 1 do
    let k = t.data.(2 * s) in
    if k >= 0 then f k t.data.((2 * s) + 1)
  done

let clear t =
  Array.fill t.data 0 (Array.length t.data) empty_slot;
  t.size <- 0;
  t.used <- 0
