type t = {
  cores : int;
  chiplets : int;
  nodes : int;
  core_speed : float array;
  core_online : bool array;
  link_mult : float array;  (* per chiplet, I/O-die link latency multiplier *)
  mutable xsocket_mult : float;
  mutable corruptions : int list;
      (* armed result-corruption seeds, FIFO: a corruption fault arms one,
         the next replica result computed consumes it *)
  mutable generation : int;
}

let create ~cores ~chiplets ~nodes =
  if cores <= 0 || chiplets <= 0 || nodes <= 0 then
    invalid_arg "Modifiers.create: counts must be positive";
  {
    cores;
    chiplets;
    nodes;
    core_speed = Array.make cores 1.0;
    core_online = Array.make cores true;
    link_mult = Array.make chiplets 1.0;
    xsocket_mult = 1.0;
    corruptions = [];
    generation = 0;
  }

let check name i n = if i < 0 || i >= n then invalid_arg ("Modifiers: " ^ name ^ " out of range")

let touch t = t.generation <- t.generation + 1
let generation t = t.generation

let core_speed t core =
  check "core" core t.cores;
  t.core_speed.(core)

(* The floor keeps a throttled core from stalling virtual time: even a
   thermally wedged core retires instructions eventually. *)
let min_speed = 0.05

let set_core_speed t core speed =
  check "core" core t.cores;
  t.core_speed.(core) <- Float.max min_speed speed;
  touch t

let core_online t core =
  check "core" core t.cores;
  t.core_online.(core)

let set_core_online t core on =
  check "core" core t.cores;
  if t.core_online.(core) <> on then begin
    t.core_online.(core) <- on;
    touch t
  end

let link_mult t chiplet =
  check "chiplet" chiplet t.chiplets;
  t.link_mult.(chiplet)

(* small enough to cross-module inline, so the float comes back unboxed on
   the per-access hot path; the caller guarantees the index *)
let unsafe_link_mult t chiplet = Array.unsafe_get t.link_mult chiplet

let set_link_mult t chiplet mult =
  check "chiplet" chiplet t.chiplets;
  t.link_mult.(chiplet) <- Float.max 1.0 mult;
  touch t

let xsocket_mult t = t.xsocket_mult

let set_xsocket_mult t mult =
  t.xsocket_mult <- Float.max 1.0 mult;
  touch t

(* Result corruption is a one-shot register, not a persistent state: each
   armed seed poisons exactly one subsequently computed result token
   (seeded bit-flip, applied by the consumer).  FIFO so a schedule with
   several corruption events replays deterministically. *)
let arm_corruption t ~seed =
  t.corruptions <- t.corruptions @ [ seed ];
  touch t

let take_corruption t =
  match t.corruptions with
  | [] -> None
  | seed :: rest ->
      t.corruptions <- rest;
      touch t;
      Some seed

let corruptions_armed t = List.length t.corruptions

let online_capacity t =
  let acc = ref 0.0 in
  for c = 0 to t.cores - 1 do
    if t.core_online.(c) then acc := !acc +. Float.min 1.0 t.core_speed.(c)
  done;
  !acc /. float_of_int t.cores

(* Hotplug and DVFS are what a real runtime can read from sysfs; link
   degradation is silent and must be inferred from latency. *)
let chiplet_os_impaired t ~chiplet ~cores_per_chiplet =
  check "chiplet" chiplet t.chiplets;
  let base = chiplet * cores_per_chiplet in
  let bad = ref false in
  for c = base to min (t.cores - 1) (base + cores_per_chiplet - 1) do
    if (not t.core_online.(c)) || t.core_speed.(c) < 1.0 then bad := true
  done;
  !bad

let chiplet_impaired t ~chiplet ~cores_per_chiplet =
  chiplet_os_impaired t ~chiplet ~cores_per_chiplet
  || t.link_mult.(chiplet) > 1.0

let pristine t =
  t.xsocket_mult = 1.0
  && t.corruptions = []
  && Array.for_all (fun s -> s = 1.0) t.core_speed
  && Array.for_all Fun.id t.core_online
  && Array.for_all (fun m -> m = 1.0) t.link_mult

let reset t =
  Array.fill t.core_speed 0 t.cores 1.0;
  Array.fill t.core_online 0 t.cores true;
  Array.fill t.link_mult 0 t.chiplets 1.0;
  t.xsocket_mult <- 1.0;
  t.corruptions <- [];
  touch t
