(** Software performance-monitoring unit.

    Mirrors the hardware counters CHARM consumes on real machines
    (AMD [ANY_DATA_CACHE_FILLS_FROM_SYSTEM], Intel [OFFCORE_RESPONSE]):
    every simulated memory access increments one per-core counter
    classifying the source that served it. *)

type event =
  | L2_hit  (** served by the core-private L2 *)
  | L3_local_hit  (** served by the local chiplet's L3 slice *)
  | Fill_remote_chiplet  (** cache-to-cache fill, other chiplet, same NUMA *)
  | Fill_remote_numa  (** cache-to-cache fill from another socket *)
  | Dram_local  (** DRAM access to the local NUMA node *)
  | Dram_remote  (** DRAM access to a remote NUMA node *)
  | Coherence_invalidation  (** remote copies invalidated by a write *)
  | Task_executed
  | Task_stolen
  | Migration  (** worker changed its core affinity *)
  | Context_switch  (** coroutine suspend/resume *)

val num_events : int
val event_index : event -> int
val event_name : event -> string
val all_events : event list

type t

val create : cores:int -> t
val cores : t -> int
val incr : t -> core:int -> event -> unit
val add : t -> core:int -> event -> int -> unit
val read : t -> core:int -> event -> int
val total : t -> event -> int
val reset : t -> unit
val reset_core : t -> core:int -> unit

type snapshot

val snapshot : t -> snapshot
val delta : before:snapshot -> after:snapshot -> core:int -> event -> int
val delta_total : before:snapshot -> after:snapshot -> event -> int

type fill_classes = {
  fc_local : int;  (** local-chiplet L3 hits *)
  fc_remote_chiplet : int;
  fc_remote_numa : int;
  fc_dram : int;  (** local + remote DRAM *)
}
(** Machine-wide totals of the four fill classes the CHARM policy consumes
    (paper Fig. 3) — the signal a periodic trace counter track samples. *)

val zero_fill_classes : fill_classes
val fill_classes : t -> fill_classes
val fill_classes_delta : before:fill_classes -> after:fill_classes -> fill_classes

val remote_fill_events : t -> core:int -> int
(** Sum of the events Alg. 1 treats as "remote chiplet access": fills served
    by another chiplet (either socket) plus DRAM accesses.  This is the
    cache-fill-event counter of paper Alg. 1 line 5. *)

val pp_core : Format.formatter -> t * int -> unit
