type t = {
  sets : int;  (* power of two *)
  ways : int;
  size_bytes : int;
  tags : int array;  (* sets * ways; -1 = invalid *)
  stamps : int array;  (* recency stamp per way *)
  mutable clock : int;
  mutable effective_ways : int;  (* <= ways; disabled ways hold no lines *)
}

let create ?(ways = 16) ~size_bytes ~line_bytes () =
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  if line_bytes <= 0 then invalid_arg "Cache.create: line_bytes must be positive";
  let lines = size_bytes / line_bytes in
  if lines < ways then invalid_arg "Cache.create: cache smaller than one set";
  let raw_sets = lines / ways in
  (* round down to a power of two so set indexing is a mask *)
  let rec pow2_below n acc = if acc * 2 > n then acc else pow2_below n (acc * 2) in
  let sets = pow2_below raw_sets 1 in
  {
    sets;
    ways;
    size_bytes = sets * ways * line_bytes;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    effective_ways = ways;
  }

(* int-coded access results: the per-access path must not allocate, so the
   outcome is a sentinel rather than a variant (line ids are >= 0, leaving
   the negatives free) *)
let hit = -2
let miss = -1

let set_of_line t line =
  (* mix the high bits in so strided workloads spread across sets *)
  let h = line lxor (line lsr 16) in
  h land (t.sets - 1)

(* inner scans are while-loops over local refs (the compiler keeps
   non-escaping refs in registers) — a [let rec find] here would allocate
   a closure on every call without flambda.  Way indices are bounded by
   [effective_ways <= ways] and the set index is masked, so the unsafe
   array accesses below cannot escape [sets * ways]. *)
let access t line =
  t.clock <- t.clock + 1;
  let base = set_of_line t line * t.ways in
  let tags = t.tags and stamps = t.stamps in
  let eff = t.effective_ways in
  (* single pass: look the line up while tracking the first invalid way
     and the LRU victim, so a miss needs no second scan over the set (the
     victim choice — first invalid way, else lowest stamp with ties to
     the lowest index — is the same one the old two-scan version made) *)
  let found = ref (-1) in
  let victim = ref 0 and best = ref max_int and free = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < eff do
    let tag = Array.unsafe_get tags (base + !i) in
    if tag = line then found := !i
    else begin
      if tag = -1 then (if !free = -1 then free := !i)
      else begin
        let s = Array.unsafe_get stamps (base + !i) in
        if s < !best then begin
          best := s;
          victim := !i
        end
      end;
      incr i
    end
  done;
  if !found >= 0 then begin
    Array.unsafe_set stamps (base + !found) t.clock;
    hit
  end
  else begin
    let way = if !free >= 0 then !free else !victim in
    let evicted = if !free >= 0 then miss else Array.unsafe_get tags (base + way) in
    Array.unsafe_set tags (base + way) line;
    Array.unsafe_set stamps (base + way) t.clock;
    evicted
  end

let probe t line =
  let base = set_of_line t line * t.ways in
  let tags = t.tags in
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < t.effective_ways do
    if Array.unsafe_get tags (base + !i) = line then found := true;
    incr i
  done;
  !found

let invalidate t line =
  let base = set_of_line t line * t.ways in
  let tags = t.tags in
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < t.effective_ways do
    if Array.unsafe_get tags (base + !i) = line then begin
      Array.unsafe_set tags (base + !i) (-1);
      found := true
    end;
    incr i
  done;
  !found

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0

let size_bytes t = t.size_bytes
let ways t = t.ways
let sets t = t.sets
let effective_ways t = t.effective_ways

let set_effective_ways t ways =
  let ways = max 1 (min t.ways ways) in
  if ways < t.effective_ways then
    (* lines resident in the disabled ways are lost, as with real L3 way
       partitioning: the victim ways drop their contents *)
    for s = 0 to t.sets - 1 do
      for w = ways to t.effective_ways - 1 do
        t.tags.((s * t.ways) + w) <- -1
      done
    done;
  t.effective_ways <- ways

let occupancy t =
  let n = ref 0 in
  Array.iter (fun tag -> if tag <> -1 then incr n) t.tags;
  !n
