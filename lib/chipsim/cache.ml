type t = {
  sets : int;  (* power of two *)
  ways : int;
  size_bytes : int;
  tags : int array;  (* sets * ways; -1 = invalid *)
  stamps : int array;  (* recency stamp per way *)
  mutable clock : int;
  mutable effective_ways : int;  (* <= ways; disabled ways hold no lines *)
}

let create ?(ways = 16) ~size_bytes ~line_bytes () =
  if ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  if line_bytes <= 0 then invalid_arg "Cache.create: line_bytes must be positive";
  let lines = size_bytes / line_bytes in
  if lines < ways then invalid_arg "Cache.create: cache smaller than one set";
  let raw_sets = lines / ways in
  (* round down to a power of two so set indexing is a mask *)
  let rec pow2_below n acc = if acc * 2 > n then acc else pow2_below n (acc * 2) in
  let sets = pow2_below raw_sets 1 in
  {
    sets;
    ways;
    size_bytes = sets * ways * line_bytes;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    clock = 0;
    effective_ways = ways;
  }

type access_result = Hit | Miss of { evicted : int option }

let set_of_line t line =
  (* mix the high bits in so strided workloads spread across sets *)
  let h = line lxor (line lsr 16) in
  h land (t.sets - 1)

let access t line =
  t.clock <- t.clock + 1;
  let base = set_of_line t line * t.ways in
  let rec find i =
    if i >= t.effective_ways then None
    else if t.tags.(base + i) = line then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
      t.stamps.(base + i) <- t.clock;
      Hit
  | None ->
      (* choose an invalid way, else the LRU way *)
      let victim = ref 0 and best = ref max_int and free = ref (-1) in
      for i = 0 to t.effective_ways - 1 do
        if t.tags.(base + i) = -1 then (if !free = -1 then free := i)
        else if t.stamps.(base + i) < !best then begin
          best := t.stamps.(base + i);
          victim := i
        end
      done;
      let way = if !free >= 0 then !free else !victim in
      let evicted = if !free >= 0 then None else Some t.tags.(base + way) in
      t.tags.(base + way) <- line;
      t.stamps.(base + way) <- t.clock;
      Miss { evicted }

let probe t line =
  let base = set_of_line t line * t.ways in
  let rec find i =
    if i >= t.effective_ways then false
    else t.tags.(base + i) = line || find (i + 1)
  in
  find 0

let invalidate t line =
  let base = set_of_line t line * t.ways in
  let rec find i =
    if i >= t.effective_ways then false
    else if t.tags.(base + i) = line then begin
      t.tags.(base + i) <- -1;
      true
    end
    else find (i + 1)
  in
  find 0

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.clock <- 0

let size_bytes t = t.size_bytes
let ways t = t.ways
let sets t = t.sets
let effective_ways t = t.effective_ways

let set_effective_ways t ways =
  let ways = max 1 (min t.ways ways) in
  if ways < t.effective_ways then
    (* lines resident in the disabled ways are lost, as with real L3 way
       partitioning: the victim ways drop their contents *)
    for s = 0 to t.sets - 1 do
      for w = ways to t.effective_ways - 1 do
        t.tags.((s * t.ways) + w) <- -1
      done
    done;
  t.effective_ways <- ways

let occupancy t =
  let n = ref 0 in
  Array.iter (fun tag -> if tag <> -1 then incr n) t.tags;
  !n
