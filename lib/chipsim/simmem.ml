type policy = First_touch | Bind of int | Interleave

type region = {
  base : int;
  length_bytes : int;
  elt_bytes : int;
  mutable region_policy : policy;
}

type t = {
  topo : Topology.t;
  mutable next_base : int;
  mutable regions : region array;  (* sorted by base *)
  mutable nregions : int;
  (* page placements: pages are small dense integers (addr / 4096), so
     they live in a flat array holding node + 1 (0 = unmapped), growing on
     demand — one direct read on the DRAM-fill hot path.  Pages past
     [dense_pages] (sparse gigantic address spaces) spill into an Intmap. *)
  mutable pagemap_dense : int array;
  pagemap_sparse : Intmap.t;
  node_pages : int array;
}

let page_bytes = 4096

(* 1M pages = 4 GB of simulated memory covered by the flat array *)
let dense_pages = 1 lsl 20

let create topo =
  {
    topo;
    next_base = page_bytes;  (* keep 0 unmapped to catch stray addresses *)
    regions = Array.make 16 { base = 0; length_bytes = 0; elt_bytes = 1; region_policy = First_touch };
    nregions = 0;
    pagemap_dense = Array.make 4096 0;
    pagemap_sparse = Intmap.create ~capacity:16 ();
    node_pages = Array.make topo.Topology.sockets 0;
  }

(* page -> node, -1 if unmapped *)
let page_node t page =
  if page >= 0 && page < Array.length t.pagemap_dense then
    Array.unsafe_get t.pagemap_dense page - 1
  else if page < dense_pages then -1  (* negative pages never stored *)
  else Intmap.get t.pagemap_sparse page ~absent:(-1)

let set_page_node t page node =
  if page >= 0 && page < Array.length t.pagemap_dense then
    Array.unsafe_set t.pagemap_dense page (node + 1)
  else if page >= 0 && page < dense_pages then begin
    let cur = Array.length t.pagemap_dense in
    let rec cap c = if c > page then c else cap (c * 2) in
    let bigger = Array.make (min dense_pages (cap cur)) 0 in
    Array.blit t.pagemap_dense 0 bigger 0 cur;
    t.pagemap_dense <- bigger;
    t.pagemap_dense.(page) <- node + 1
  end
  else if node < 0 then Intmap.remove t.pagemap_sparse page
  else Intmap.set t.pagemap_sparse page node

let alloc t ?(policy = First_touch) ~elt_bytes ~count () =
  if elt_bytes <= 0 || count < 0 then invalid_arg "Simmem.alloc: bad geometry";
  (match policy with
  | Bind n when n < 0 || n >= t.topo.Topology.sockets ->
      invalid_arg "Simmem.alloc: bind node out of range"
  | _ -> ());
  let length_bytes = elt_bytes * max count 1 in
  let region = { base = t.next_base; length_bytes; elt_bytes; region_policy = policy } in
  let aligned = (length_bytes + page_bytes - 1) / page_bytes * page_bytes in
  t.next_base <- t.next_base + aligned + page_bytes;  (* guard page *)
  if t.nregions = Array.length t.regions then begin
    let bigger = Array.make (2 * t.nregions) region in
    Array.blit t.regions 0 bigger 0 t.nregions;
    t.regions <- bigger
  end;
  t.regions.(t.nregions) <- region;
  t.nregions <- t.nregions + 1;
  region

let addr region i =
  assert (i >= 0 && i * region.elt_bytes < region.length_bytes);
  region.base + (i * region.elt_bytes)

let find_region t a =
  (* binary search: last region with base <= a *)
  let lo = ref 0 and hi = ref (t.nregions - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = t.regions.(mid) in
    if r.base <= a then begin
      if a < r.base + r.length_bytes then found := Some r;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !found

let node_of_addr t ~toucher_node a =
  let page = a / page_bytes in
  let node = page_node t page in
  if node >= 0 then node
  else begin
    let node =
      match find_region t a with
      | None -> toucher_node  (* unmapped: behave like first touch *)
      | Some r -> (
          match r.region_policy with
          | First_touch -> toucher_node
          | Bind n -> n
          | Interleave ->
              (page - (r.base / page_bytes)) mod t.topo.Topology.sockets)
    in
    set_page_node t page node;
    t.node_pages.(node) <- t.node_pages.(node) + 1;
    node
  end

let rebind t region policy =
  (match policy with
  | Bind n when n < 0 || n >= t.topo.Topology.sockets ->
      invalid_arg "Simmem.rebind: bind node out of range"
  | _ -> ());
  region.region_policy <- policy;
  let first = region.base / page_bytes in
  let last = (region.base + region.length_bytes - 1) / page_bytes in
  for page = first to last do
    let node = page_node t page in
    if node >= 0 then begin
      t.node_pages.(node) <- t.node_pages.(node) - 1;
      set_page_node t page (-1)
    end
  done

let placed_pages t ~node =
  if node < 0 || node >= Array.length t.node_pages then
    invalid_arg "Simmem.placed_pages: node out of range";
  t.node_pages.(node)

let line_of_addr t a = a / t.topo.Topology.line_bytes

let reset t =
  t.next_base <- page_bytes;
  t.nregions <- 0;
  Array.fill t.pagemap_dense 0 (Array.length t.pagemap_dense) 0;
  Intmap.clear t.pagemap_sparse;
  Array.fill t.node_pages 0 (Array.length t.node_pages) 0
