(** Typed single-assignment futures over {!Sched} tasks.

    The paper's [call()] API has synchronous and asynchronous flavours;
    futures give the asynchronous one a result channel: a producer task
    fulfills once, any number of consumer tasks await the value
    (suspending until it arrives). *)

type 'a t

val create : unit -> 'a t

val fulfill : Sched.ctx -> 'a t -> 'a -> unit
(** Publish the value and wake all waiters.
    @raise Invalid_argument if already fulfilled. *)

val is_fulfilled : 'a t -> bool

val await : Sched.ctx -> 'a t -> 'a
(** The value, suspending the calling task until {!fulfill} runs. *)

val peek : 'a t -> 'a option

val spawn : Sched.t -> ?worker:int -> (Sched.ctx -> 'a) -> 'a t
(** Run a function as a task; its return value fulfills the future. *)

val spawn_at : Sched.ctx -> ?worker:int -> ?at:float -> (Sched.ctx -> 'a) -> 'a t
(** Same, from inside a task (child defaults to the caller's worker and,
    like {!Par.call}, is immediately runnable).  [?at] is the earliest
    virtual time the producer may start — serving dispatchers use it to
    keep a job's start causally after its arrival even when a worker with
    a lagging clock steals it. *)
