(** End-of-run metrics for a CHARM (or baseline) execution. *)

open Chipsim

type access_breakdown = {
  l2_hits : int;
  local_chiplet : int;  (** local L3 slice hits *)
  remote_chiplet : int;  (** fills from another chiplet, same socket *)
  remote_numa : int;  (** fills from the other socket *)
  dram : int;
  invalidations : int;
}

type report = {
  makespan_ns : float;
  accesses : access_breakdown;
  tasks_executed : int;
  tasks_stolen : int;
  migrations : int;
  context_switches : int;
  dram_bytes_per_node : int array;
  avg_bandwidth_gbps : float;
      (** total DRAM bytes / makespan, in GB/s of virtual time *)
  energy_uj : float;
      (** total access energy charged by the per-kind energy table
          ({!Chipsim.Machine.total_energy_pj}), in microjoules —
          memory-access energy only, so PR-8 figures stay identical
          whether per-quantum charging is on or off *)
  compute_energy_uj : float;
      (** total per-quantum compute energy
          ({!Chipsim.Machine.total_compute_energy_pj}), in microjoules;
          0 unless {!Sched.set_energy} enabled charging.  The machine's
          whole energy story is [energy_uj +. compute_energy_uj], which
          {!pp} prints alongside both parts *)
}

val collect : Machine.t -> makespan_ns:float -> report

val breakdown_of_pmu : Pmu.t -> access_breakdown

val speedup : baseline:report -> report -> float
(** [makespan baseline / makespan subject]. *)

val throughput : work_items:int -> report -> float
(** Items per virtual second. *)

val pp : Format.formatter -> report -> unit
