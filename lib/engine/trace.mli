(** Execution tracing: a bounded ring buffer of scheduler, policy, memory
    and serving events, serialized as Chrome trace-event JSON (load in
    [chrome://tracing] / Perfetto).

    This is the observability side of the paper's profiler: where the PMU
    counters say {e what} was served from where, the trace shows {e when}
    each worker ran which task on which core, when the policy spread or
    contracted the gang, when memory was re-homed, and (in serving mode)
    the admit/shed/start/finish lifecycle of every job plus a periodic
    fill-class counter track — the Fig. 3 time series the policy consumes.

    Producers guard every emission behind {!enabled}, so an attached but
    disabled trace costs one branch and no allocation on the hot paths.
    The store is a fixed-capacity ring: when full, the {e oldest} events
    are overwritten ({!dropped} counts the overwritten ones), bounding
    memory for long serving runs. *)

type t

type job_phase = Admit | Shed | Start | Finish

val job_phase_name : job_phase -> string

type fleet_phase = Route | Relocate | Router_shed

val fleet_phase_name : fleet_phase -> string
(** ["route"], ["relocate"], ["router-shed"]. *)

type event =
  | Quantum of { worker : int; core : int; task_id : int; start_ns : float; end_ns : float }
  | Steal of { thief : int; victim : int; task_id : int; at_ns : float }
  | Park of { worker : int; at_ns : float }
  | Migration of { worker : int; from_core : int; to_core : int; at_ns : float }
  | Policy of { worker : int; spread : int; at_ns : float }
  | Spread_change of { worker : int; old_spread : int; new_spread : int; at_ns : float }
  | Mode_switch of { from_mode : string; to_mode : string; at_ns : float }
  | Rebind of { worker : int; node : int; regions : int; at_ns : float }
  | Job of { phase : job_phase; tenant : string; kind : string; job_id : int; at_ns : float }
  | Counter of { name : string; at_ns : float; series : (string * float) list }
  | Instant of { name : string; at_ns : float }
  | Fault of { desc : string; at_ns : float }
  | Fleet of {
      phase : fleet_phase;
      job_id : int;
      tenant : string;
      shard : int;  (** destination shard ([-1] for a router shed) *)
      from_shard : int;  (** source shard for relocations, [-1] otherwise *)
      at_ns : float;
    }
  | Dag_node of {
      tenant : string;
      job_id : int;
      node : int;
      op : string;
      chiplet : int;
      start_ns : float;
      end_ns : float;
    }  (** one task-graph node's execution on its mapped chiplet *)

val create : ?capacity:int -> ?pid:int -> ?name:string -> unit -> t
(** Ring buffer of [capacity] events (default 2^18).  [pid] (default 0)
    is the Chrome-trace process id every event is rendered under — fleet
    mode gives each shard its own pid so shards appear as separate
    process rows.  [name] labels the process row when traces are merged.
    @raise Invalid_argument if [capacity <= 0]. *)

val pid : t -> int

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** Event recording (no-ops when disabled). *)

val task_quantum :
  t -> worker:int -> core:int -> task_id:int -> start_ns:float -> end_ns:float -> unit

val steal : t -> thief:int -> victim:int -> task_id:int -> at_ns:float -> unit
val park : t -> worker:int -> at_ns:float -> unit
val migration : t -> worker:int -> from_core:int -> to_core:int -> at_ns:float -> unit
val policy_decision : t -> worker:int -> spread:int -> at_ns:float -> unit

val spread_change :
  t -> worker:int -> old_spread:int -> new_spread:int -> at_ns:float -> unit

val mode_switch : t -> from_mode:string -> to_mode:string -> at_ns:float -> unit
val rebind : t -> worker:int -> node:int -> regions:int -> at_ns:float -> unit

val job :
  t -> phase:job_phase -> tenant:string -> kind:string -> job_id:int ->
  at_ns:float -> unit

val counter : t -> name:string -> at_ns:float -> series:(string * float) list -> unit
(** One sample on a Chrome counter track (["ph":"C"]); [series] maps
    sub-track names to values at [at_ns]. *)

val instant : t -> name:string -> at_ns:float -> unit

val fault : t -> desc:string -> at_ns:float -> unit
(** Record a fault-injection or recovery instant (rendered on the global
    ["fault"] category track). *)

(** Fleet (cluster-router) events, rendered on the ["fleet"] category
    track.  Emitted into the {e router's} trace, not a shard's. *)

val fleet_route : t -> job_id:int -> tenant:string -> shard:int -> at_ns:float -> unit
val fleet_relocate : t -> job_id:int -> from_shard:int -> to_shard:int -> at_ns:float -> unit
val fleet_shed : t -> job_id:int -> tenant:string -> at_ns:float -> unit

val dag_node :
  t -> tenant:string -> job_id:int -> node:int -> op:string -> chiplet:int ->
  start_ns:float -> end_ns:float -> unit
(** Record one task-graph node's execution window on its mapped chiplet
    (rendered as a duration row per chiplet on the ["dag"] category
    track). *)

val num_events : t -> int
(** Events currently retained (at most [capacity]). *)

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val capacity : t -> int
val clear : t -> unit

val events : t -> event list
(** Retained events, oldest first (for tests and offline analysis). *)

val to_chrome_json : t -> string
(** The retained window as a Chrome trace-event JSON array.  Timestamps
    and durations are microseconds of virtual time, one row
    ("pid 0, tid = worker") per worker; all interpolated names are
    JSON-escaped. *)

val save : t -> string -> unit
(** Write {!to_chrome_json} to a file. *)

val to_chrome_json_merged : t list -> string
(** Merge several traces (one per shard plus the router) into one Chrome
    JSON array.  Each trace renders under its own {!pid}; traces created
    with [~name] get a ["process_name"] metadata row so Perfetto labels
    the process. *)

val save_merged : t list -> string -> unit
(** Write {!to_chrome_json_merged} to a file. *)

val summary : t -> string
(** Human-readable digest: event counts by category, migration churn,
    job-phase counts and the spread-change timeline. *)
