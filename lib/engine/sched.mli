open Chipsim

(** Discrete-event task scheduler over the simulated machine.

    Workers model the runtime's OS-pinned worker threads: each owns a core
    binding, a virtual clock and a work-stealing deque of tasks
    (coroutines).  The event loop always advances the least-advanced
    worker, so virtual time is near-monotone machine-wide.  All latencies
    charged by {!Ctx} memory operations accrue to the executing worker's
    clock; the makespan returned by {!run} is the virtual wall-clock time
    the workload would have taken.

    Placement policy is injected through {!hooks}: CHARM and each baseline
    provide their own quantum-end migration logic and steal-victim order. *)

type t
type task
type ctx

exception Deadlock
(** Raised when live tasks remain but every one of them is suspended. *)

type task_model =
  | Coroutines of { switch_ns : float }
      (** user-space cooperative switching (CHARM's model, paper §4.4) *)
  | Os_threads of { spawn_ns : float; switch_ns : float }
      (** one kernel thread per task, as with [std::async]: expensive
          creation, kernel context switches, oversubscription penalties *)

type config = {
  task_model : task_model;
  steal_enabled : bool;
  max_accesses_per_quantum : int;
      (** {!Ctx.maybe_yield} yields after this many charged accesses *)
  idle_quantum_ns : float;  (** clock advance for a worker that finds no work *)
  migration_cost_ns : float;  (** charged to a worker when it changes core *)
  steal_horizon_ns : float;
      (** thieves only steal tasks ready within this window past their own
          clock; tasks scheduled further out (timers, pending arrivals)
          stay with their owner so steals cannot drag a worker's clock
          into the far future *)
  check : bool;
      (** run the executable invariants on every quantum (see
          {!set_check}); off by default — the hot loop then pays only one
          predictable branch per quantum *)
}

val default_config : config

type hooks = {
  on_quantum_end : t -> int -> unit;
      (** called with the worker id after every task quantum *)
  steal_order : t -> thief:int -> int array;
      (** worker ids to steal from, best victim first *)
}

val no_hooks : hooks
(** No migrations; steal order by ascending core distance (chiplet-first). *)

val create :
  ?config:config ->
  ?hooks:hooks ->
  Machine.t ->
  n_workers:int ->
  placement:(int -> int) ->
  t
(** [create machine ~n_workers ~placement] binds worker [w] to core
    [placement w].  Distinct workers must get distinct cores.
    @raise Invalid_argument on core clashes or out-of-range cores. *)

val machine : t -> Machine.t
val n_workers : t -> int
val config : t -> config
val set_hooks : t -> hooks -> unit

val hooks : t -> hooks
(** The currently installed hooks — lets observers (serving-layer metrics)
    wrap the active policy hooks instead of replacing them. *)

val set_trace : t -> Trace.t option -> unit
(** Attach (or detach) a trace sink.  While attached and enabled the
    scheduler emits a [Quantum] event per executed task quantum (real task
    id, start stamped when the task actually begins — idle and steal time
    are excluded), a [Steal] event per successful steal, a [Park] event
    when a worker runs dry, and a [Migration] event from {!migrate}.  With
    no sink (the default) the hot loop pays one branch and allocates
    nothing. *)

val trace : t -> Trace.t option


val set_check : t -> bool -> unit
(** Enable (or disable) the executable invariant layer at runtime.  While
    on, every quantum asserts: the task does not start before its
    [ready_at] (causality), the executing worker is not dormant and its
    core is online, the worker clock never runs backwards across a
    quantum, and consecutive quanta on a core do not overlap in virtual
    time while the core keeps the same occupant.  Every 64 quanta the
    machine's conservation laws ({!Chipsim.Machine.check_invariants}) and
    scheduler work conservation (every runnable task sits in exactly one
    deque) are verified, and {!run} ends with a full quiescence check.
    A violation raises {!Chipsim.Invariant.Violation}.

    Overhead is a few comparisons per quantum plus the amortised periodic
    sweeps — cheap enough to leave on in every perf experiment (< 2x on
    the micro workloads, unmeasurable on memory-bound ones). *)

val check_enabled : t -> bool

val set_energy : t -> bool -> unit
(** Enable per-quantum compute-energy charging: at each quantum end the
    retired virtual time is charged to the core's compute-energy meter
    ({!Chipsim.Machine.charge_quantum}), scaled by its kind's power
    density and the square of its DVFS factor.  Off by default — energy
    accounting never affects virtual time, and leaving the meters
    untouched keeps energy-off runs bit-identical to pre-energy
    baselines. *)

val energy_enabled : t -> bool

val check_quiescent : t -> unit
(** The end-of-run verification {!run} performs when checking is on: work
    conservation, empty deques once no task is live, and the machine's
    full conservation scan ({!Chipsim.Machine.check_invariants_full}).
    Exposed so harnesses can verify externally-driven phases.
    @raise Chipsim.Invariant.Violation on the first broken invariant. *)

val set_on_advance : t -> (float -> unit) option -> unit
(** Install a fault pump: called with the event-loop frontier (the
    least-advanced runnable worker's clock) before every scheduling pick.
    Virtual time never runs ahead of the frontier, so applying a fault
    schedule from this callback is deterministic — a fault due at time
    [f] lands at the first quantum boundary whose frontier reaches [f]. *)

val worker_core : t -> int -> int
val worker_clock : t -> int -> float
val worker_of_core : t -> int -> int option

val queue_length : t -> int -> int
(** Total tasks queued on the worker. *)

val pending_length : t -> int -> int
(** Queued tasks whose ready time is still beyond the worker's clock
    (timers, pending arrivals). *)

val ready_queue_ids : t -> int -> int list
(** Task ids in the worker's run queue, oldest first.  Exposed so tests
    can assert that refused steals leave the run order untouched. *)

val heap_snapshot : t -> (float * int) array
(** Raw [(clock key, worker id)] entries of the event-loop heap, in heap
    order.  Exposed so tests can assert keys stay in step with worker
    clocks (e.g. across {!sync_clocks}). *)

val steal_once : t -> thief:int -> victim:int -> int
(** Single horizon-filtered steal attempt from [victim]'s queue on behalf
    of [thief]: the stolen task id, or [-1] if every queued task was
    refused (beyond the thief's steal horizon).  A stolen task leaves the
    scheduler's accounting — test hook only. *)

val worker_offlined : t -> int -> bool
(** Whether the worker is dormant because its core went offline with no
    spare core to migrate to. *)

val active_workers : t -> int
(** Workers currently able to run tasks (not dormant). *)

val migrate : t -> worker:int -> core:int -> unit
(** Rebind a worker to another (free) core, charging the migration cost.
    No-op if already there, or if the target core is marked offline in the
    machine's {!Chipsim.Modifiers} (fault-blind policies keep proposing
    arbitrary cores; a real kernel silently skips offlined CPUs).
    @raise Invalid_argument if the core is bound to another worker. *)

val handle_core_offline : t -> core:int -> unit
(** React to a core-offline fault: migrate the bound worker to the nearest
    free online core, or — with none available — park it dormant and drain
    its queue into the nearest surviving worker.  The last active worker
    is never made dormant.  No-op if no worker is bound to [core].  The
    caller is expected to have already marked the core offline in
    {!Chipsim.Modifiers}. *)

val handle_core_online : t -> core:int -> at:float -> unit
(** React to a core-online recovery at virtual time [at]: revive a worker
    that went dormant in place on [core].  A worker that migrated away
    stays on its new core.  No-op otherwise. *)

val spawn : t -> ?worker:int -> ?at:float -> (ctx -> unit) -> task
(** Enqueue a new task.  Without [?worker] tasks are distributed
    round-robin.  [?at] is the earliest virtual time it may start. *)

val ready : t -> ?at:float -> task -> unit
(** Requeue a previously suspended task (on the worker that last ran it). *)

val run : t -> float
(** Run until no live task remains; returns the makespan in virtual ns
    (max over workers that executed work of their final clock). *)

val live_tasks : t -> int
val total_spawned : t -> int
val concurrency_samples : t -> (float * int) array
(** [(virtual time, live task count)] recorded at every spawn/finish. *)

val task_id : task -> int
val task_is_done : task -> bool

module Ctx : sig
  val sched : ctx -> t
  val machine : ctx -> Machine.t
  val now : ctx -> float
  val worker_id : ctx -> int
  val core : ctx -> int
  val rng : ctx -> Rng.t

  val read : ctx -> Simmem.region -> int -> unit
  (** Simulate a load of element [i]; charges the executing worker. *)

  val write : ctx -> Simmem.region -> int -> unit
  val read_range : ctx -> Simmem.region -> lo:int -> hi:int -> unit
  val write_range : ctx -> Simmem.region -> lo:int -> hi:int -> unit
  val access_addr : ctx -> write:bool -> int -> unit

  val work : ctx -> float -> unit
  (** Charge pure compute time (ns). *)

  val yield : ctx -> unit
  val maybe_yield : ctx -> unit
  (** Yield only if the access budget for this quantum is exhausted. *)

  val quantum_accesses : ctx -> int
  (** Accesses charged to the executing worker so far this quantum (the
      counter {!maybe_yield} compares against the budget). *)

  val suspend : ctx -> (task -> unit) -> unit
  (** Park the current task, handing it to a registrar (wait list). *)

  val spawn : ctx -> ?worker:int -> ?at:float -> (ctx -> unit) -> task
  (** Child tasks default to the spawner's local queue. *)

  val await : ctx -> task -> unit
  (** Suspend until [task] finishes (no-op if it already did). *)

  val current_task : ctx -> task
end

val charge : t -> worker:int -> float -> unit
(** Add [ns] of cost to a worker's clock from outside a task (policy hooks,
    profiler overhead). *)

val sync_clocks : t -> unit
(** Advance every worker's clock to the global maximum (a quiescent point
    between measured phases, so the next makespan delta is meaningful).
    The event-loop heap is refreshed to the new clocks, so the next run
    does not start with every entry stale. *)
