type 'a state =
  | Pending of Sched.task list  (* waiting tasks *)
  | Done of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Pending [] }

let is_fulfilled t = match t.state with Done _ -> true | Pending _ -> false
let peek t = match t.state with Done v -> Some v | Pending _ -> None

let fulfill ctx t v =
  match t.state with
  | Done _ -> invalid_arg "Future.fulfill: already fulfilled"
  | Pending waiters ->
      t.state <- Done v;
      let sched = Sched.Ctx.sched ctx in
      let now = Sched.Ctx.now ctx in
      List.iter (fun task -> Sched.ready sched ~at:now task) waiters

let await ctx t =
  match t.state with
  | Done v -> v
  | Pending _ ->
      Sched.Ctx.suspend ctx (fun task ->
          match t.state with
          | Pending waiters -> t.state <- Pending (task :: waiters)
          | Done _ ->
              (* fulfilled between the check and the park: wake ourselves *)
              Sched.ready (Sched.Ctx.sched ctx) task);
      (match t.state with
      | Done v -> v
      | Pending _ -> assert false)

let spawn sched ?worker f =
  let t = create () in
  ignore
    (Sched.spawn sched ?worker (fun ctx -> fulfill ctx t (f ctx)) : Sched.task);
  t

let spawn_at ctx ?worker ?at f =
  let t = create () in
  ignore
    (Sched.Ctx.spawn ctx ?worker ?at (fun ctx' -> fulfill ctx' t (f ctx'))
      : Sched.task);
  t
