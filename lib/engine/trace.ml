type job_phase = Admit | Shed | Start | Finish

let job_phase_name = function
  | Admit -> "admit"
  | Shed -> "shed"
  | Start -> "start"
  | Finish -> "finish"

type fleet_phase = Route | Relocate | Router_shed

let fleet_phase_name = function
  | Route -> "route"
  | Relocate -> "relocate"
  | Router_shed -> "router-shed"

type event =
  | Quantum of { worker : int; core : int; task_id : int; start_ns : float; end_ns : float }
  | Steal of { thief : int; victim : int; task_id : int; at_ns : float }
  | Park of { worker : int; at_ns : float }
  | Migration of { worker : int; from_core : int; to_core : int; at_ns : float }
  | Policy of { worker : int; spread : int; at_ns : float }
  | Spread_change of { worker : int; old_spread : int; new_spread : int; at_ns : float }
  | Mode_switch of { from_mode : string; to_mode : string; at_ns : float }
  | Rebind of { worker : int; node : int; regions : int; at_ns : float }
  | Job of { phase : job_phase; tenant : string; kind : string; job_id : int; at_ns : float }
  | Counter of { name : string; at_ns : float; series : (string * float) list }
  | Instant of { name : string; at_ns : float }
  | Fault of { desc : string; at_ns : float }
  | Fleet of {
      phase : fleet_phase;
      job_id : int;
      tenant : string;
      shard : int;  (** destination shard ([-1] for a router shed) *)
      from_shard : int;  (** source shard for relocations, [-1] otherwise *)
      at_ns : float;
    }
  | Dag_node of {
      tenant : string;
      job_id : int;
      node : int;
      op : string;
      chiplet : int;
      start_ns : float;
      end_ns : float;
    }

(* Fixed-capacity ring: when full the oldest event is overwritten, so a
   long serving run keeps the newest window instead of growing without
   bound.  [head] is the next write slot; the oldest retained event sits
   [len] slots behind it. *)
type t = {
  buf : event array;
  capacity : int;
  pid : int;
  name : string option;
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
  mutable on : bool;
}

let default_capacity = 1 lsl 18

let create ?(capacity = default_capacity) ?(pid = 0) ?name () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    buf = Array.make capacity (Instant { name = ""; at_ns = 0.0 });
    capacity;
    pid;
    name;
    head = 0;
    len = 0;
    dropped = 0;
    on = true;
  }

let pid t = t.pid

let enabled t = t.on
let set_enabled t on = t.on <- on
let capacity t = t.capacity
let num_events t = t.len
let dropped t = t.dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let push t e =
  if t.on then begin
    t.buf.(t.head) <- e;
    t.head <- (t.head + 1) mod t.capacity;
    if t.len < t.capacity then t.len <- t.len + 1 else t.dropped <- t.dropped + 1
  end

(* oldest-first iteration over the retained window *)
let iter t f =
  let start = (t.head - t.len + t.capacity) mod t.capacity in
  for i = 0 to t.len - 1 do
    f t.buf.((start + i) mod t.capacity)
  done

let events t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let task_quantum t ~worker ~core ~task_id ~start_ns ~end_ns =
  push t (Quantum { worker; core; task_id; start_ns; end_ns })

let steal t ~thief ~victim ~task_id ~at_ns = push t (Steal { thief; victim; task_id; at_ns })
let park t ~worker ~at_ns = push t (Park { worker; at_ns })

let migration t ~worker ~from_core ~to_core ~at_ns =
  push t (Migration { worker; from_core; to_core; at_ns })

let policy_decision t ~worker ~spread ~at_ns =
  push t (Policy { worker; spread; at_ns })

let spread_change t ~worker ~old_spread ~new_spread ~at_ns =
  push t (Spread_change { worker; old_spread; new_spread; at_ns })

let mode_switch t ~from_mode ~to_mode ~at_ns =
  push t (Mode_switch { from_mode; to_mode; at_ns })

let rebind t ~worker ~node ~regions ~at_ns =
  push t (Rebind { worker; node; regions; at_ns })

let job t ~phase ~tenant ~kind ~job_id ~at_ns =
  push t (Job { phase; tenant; kind; job_id; at_ns })

let counter t ~name ~at_ns ~series = push t (Counter { name; at_ns; series })
let instant t ~name ~at_ns = push t (Instant { name; at_ns })
let fault t ~desc ~at_ns = push t (Fault { desc; at_ns })

let fleet_route t ~job_id ~tenant ~shard ~at_ns =
  push t (Fleet { phase = Route; job_id; tenant; shard; from_shard = -1; at_ns })

let fleet_relocate t ~job_id ~from_shard ~to_shard ~at_ns =
  push t
    (Fleet
       { phase = Relocate; job_id; tenant = ""; shard = to_shard; from_shard; at_ns })

let fleet_shed t ~job_id ~tenant ~at_ns =
  push t
    (Fleet { phase = Router_shed; job_id; tenant; shard = -1; from_shard = -1; at_ns })

let dag_node t ~tenant ~job_id ~node ~op ~chiplet ~start_ns ~end_ns =
  push t (Dag_node { tenant; job_id; node; op; chiplet; start_ns; end_ns })

(* -- Chrome trace-event JSON -------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us ns = ns /. 1000.0

let event_json pid = function
  | Quantum { worker; core; task_id; start_ns; end_ns } ->
      Printf.sprintf
        {|{"name":"task %d","cat":"quantum","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"core":%d,"task":%d}}|}
        task_id (us start_ns)
        (us (Float.max 0.0 (end_ns -. start_ns)))
        pid worker core task_id
  | Steal { thief; victim; task_id; at_ns } ->
      Printf.sprintf
        {|{"name":"steal task %d from w%d","cat":"steal","ph":"i","ts":%.3f,"pid":%d,"tid":%d,"s":"t","args":{"victim":%d,"task":%d}}|}
        task_id victim (us at_ns) pid thief victim task_id
  | Park { worker; at_ns } ->
      Printf.sprintf
        {|{"name":"park","cat":"park","ph":"i","ts":%.3f,"pid":%d,"tid":%d,"s":"t"}|}
        (us at_ns) pid worker
  | Migration { worker; from_core; to_core; at_ns } ->
      Printf.sprintf
        {|{"name":"migrate %d->%d","cat":"migration","ph":"i","ts":%.3f,"pid":%d,"tid":%d,"s":"t"}|}
        from_core to_core (us at_ns) pid worker
  | Policy { worker; spread; at_ns } ->
      Printf.sprintf
        {|{"name":"spread=%d","cat":"policy","ph":"i","ts":%.3f,"pid":%d,"tid":%d,"s":"t"}|}
        spread (us at_ns) pid worker
  | Spread_change { worker; old_spread; new_spread; at_ns } ->
      Printf.sprintf
        {|{"name":"spread %d->%d","cat":"policy","ph":"i","ts":%.3f,"pid":%d,"tid":%d,"s":"t","args":{"old":%d,"new":%d}}|}
        old_spread new_spread (us at_ns) pid worker old_spread new_spread
  | Mode_switch { from_mode; to_mode; at_ns } ->
      Printf.sprintf
        {|{"name":"mode %s->%s","cat":"policy","ph":"i","ts":%.3f,"pid":%d,"tid":0,"s":"g"}|}
        (escape from_mode) (escape to_mode) (us at_ns) pid
  | Rebind { worker; node; regions; at_ns } ->
      Printf.sprintf
        {|{"name":"rebind node %d","cat":"rebind","ph":"i","ts":%.3f,"pid":%d,"tid":%d,"s":"t","args":{"node":%d,"regions":%d}}|}
        node (us at_ns) pid worker node regions
  | Job { phase; tenant; kind; job_id; at_ns } ->
      Printf.sprintf
        {|{"name":"%s %s/%s#%d","cat":"job","ph":"i","ts":%.3f,"pid":%d,"tid":0,"s":"g","args":{"phase":"%s","tenant":"%s","kind":"%s","id":%d}}|}
        (job_phase_name phase) (escape tenant) (escape kind) job_id (us at_ns)
        pid (job_phase_name phase) (escape tenant) (escape kind) job_id
  | Counter { name; at_ns; series } ->
      let args =
        String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf {|"%s":%.3f|} (escape k) v)
             series)
      in
      Printf.sprintf {|{"name":"%s","cat":"counter","ph":"C","ts":%.3f,"pid":%d,"args":{%s}}|}
        (escape name) (us at_ns) pid args
  | Instant { name; at_ns } ->
      Printf.sprintf
        {|{"name":"%s","cat":"marker","ph":"i","ts":%.3f,"pid":%d,"tid":0,"s":"g"}|}
        (escape name) (us at_ns) pid
  | Fault { desc; at_ns } ->
      Printf.sprintf
        {|{"name":"%s","cat":"fault","ph":"i","ts":%.3f,"pid":%d,"tid":0,"s":"g"}|}
        (escape desc) (us at_ns) pid
  | Fleet { phase; job_id; tenant; shard; from_shard; at_ns } ->
      let name =
        match phase with
        | Route ->
            Printf.sprintf "route %s#%d -> shard %d" (escape tenant) job_id shard
        | Relocate ->
            Printf.sprintf "relocate #%d shard %d -> %d" job_id from_shard shard
        | Router_shed ->
            Printf.sprintf "router shed %s#%d" (escape tenant) job_id
      in
      Printf.sprintf
        {|{"name":"%s","cat":"fleet","ph":"i","ts":%.3f,"pid":%d,"tid":0,"s":"g","args":{"phase":"%s","id":%d,"shard":%d,"from":%d}}|}
        name (us at_ns) pid (fleet_phase_name phase) job_id shard from_shard
  | Dag_node { tenant; job_id; node; op; chiplet; start_ns; end_ns } ->
      (* node-lifecycle track: one duration row per chiplet, offset past
         the worker tids so DAG rows group separately in the viewer *)
      Printf.sprintf
        {|{"name":"%s#%d n%d %s","cat":"dag","ph":"X","ts":%.3f,"dur":%.3f,"pid":%d,"tid":%d,"args":{"tenant":"%s","id":%d,"node":%d,"op":"%s","chiplet":%d}}|}
        (escape tenant) job_id node (escape op) (us start_ns)
        (us (Float.max 0.0 (end_ns -. start_ns)))
        pid (1000 + chiplet) (escape tenant) job_id node (escape op) chiplet

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  iter t (fun e ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf (event_json t.pid e));
  Buffer.add_string buf "]";
  Buffer.contents buf

(* Merged serialization for multi-machine (fleet) runs: each trace keeps
   its own pid so every shard renders as a separate process row, with
   process_name metadata rows for the labelled ones. *)
let to_chrome_json_merged ts =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf s
  in
  List.iter
    (fun t ->
      match t.name with
      | Some n ->
          emit
            (Printf.sprintf
               {|{"name":"process_name","ph":"M","pid":%d,"args":{"name":"%s"}}|}
               t.pid (escape n))
      | None -> ())
    ts;
  List.iter (fun t -> iter t (fun e -> emit (event_json t.pid e))) ts;
  Buffer.add_string buf "]";
  Buffer.contents buf

let save t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_chrome_json t);
      output_char oc '\n')

let save_merged ts file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_chrome_json_merged ts);
      output_char oc '\n')

(* -- text summary ------------------------------------------------------- *)

let category = function
  | Quantum _ -> "quantum"
  | Steal _ -> "steal"
  | Park _ -> "park"
  | Migration _ -> "migration"
  | Policy _ | Spread_change _ | Mode_switch _ -> "policy"
  | Rebind _ -> "rebind"
  | Job _ -> "job"
  | Counter _ -> "counter"
  | Instant _ -> "marker"
  | Fault _ -> "fault"
  | Fleet _ -> "fleet"
  | Dag_node _ -> "dag"

let summary t =
  let b = Buffer.create 1024 in
  let cats = Hashtbl.create 8 in
  let migrations = ref 0 and migrating_workers = Hashtbl.create 8 in
  let spread_timeline = ref [] in
  let job_phases = Hashtbl.create 4 in
  let fleet_phases = Hashtbl.create 4 in
  iter t (fun e ->
      let c = category e in
      Hashtbl.replace cats c (1 + Option.value ~default:0 (Hashtbl.find_opt cats c));
      match e with
      | Migration { worker; _ } ->
          incr migrations;
          Hashtbl.replace migrating_workers worker ()
      | Spread_change { worker; old_spread; new_spread; at_ns } ->
          spread_timeline := (at_ns, worker, old_spread, new_spread) :: !spread_timeline
      | Job { phase; _ } ->
          let p = job_phase_name phase in
          Hashtbl.replace job_phases p
            (1 + Option.value ~default:0 (Hashtbl.find_opt job_phases p))
      | Fleet { phase; _ } ->
          let p = fleet_phase_name phase in
          Hashtbl.replace fleet_phases p
            (1 + Option.value ~default:0 (Hashtbl.find_opt fleet_phases p))
      | _ -> ());
  Buffer.add_string b
    (Printf.sprintf "trace: %d events retained (%d dropped, capacity %d)\n"
       t.len t.dropped t.capacity);
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (c, n) -> Buffer.add_string b (Printf.sprintf "  %-10s %8d\n" c n))
    (sorted cats);
  if !migrations > 0 then
    Buffer.add_string b
      (Printf.sprintf "migration churn: %d migrations across %d workers\n"
         !migrations (Hashtbl.length migrating_workers));
  (match sorted job_phases with
  | [] -> ()
  | phases ->
      Buffer.add_string b "jobs:";
      List.iter
        (fun (p, n) -> Buffer.add_string b (Printf.sprintf " %s=%d" p n))
        phases;
      Buffer.add_char b '\n');
  (match sorted fleet_phases with
  | [] -> ()
  | phases ->
      Buffer.add_string b "fleet:";
      List.iter
        (fun (p, n) -> Buffer.add_string b (Printf.sprintf " %s=%d" p n))
        phases;
      Buffer.add_char b '\n');
  let timeline = List.rev !spread_timeline in
  if timeline <> [] then begin
    Buffer.add_string b "spread timeline (first 32):\n";
    List.iteri
      (fun i (at_ns, worker, old_s, new_s) ->
        if i < 32 then
          Buffer.add_string b
            (Printf.sprintf "  t=%12.1fns w%-3d spread %d -> %d\n" at_ns worker
               old_s new_s))
      timeline;
    if List.length timeline > 32 then
      Buffer.add_string b
        (Printf.sprintf "  ... %d more\n" (List.length timeline - 32))
  end;
  Buffer.contents b
