open Chipsim

exception Deadlock

type task_model =
  | Coroutines of { switch_ns : float }
  | Os_threads of { spawn_ns : float; switch_ns : float }

type config = {
  task_model : task_model;
  steal_enabled : bool;
  max_accesses_per_quantum : int;
  idle_quantum_ns : float;
  migration_cost_ns : float;
  steal_horizon_ns : float;
  check : bool;
}

let default_config =
  {
    task_model = Coroutines { switch_ns = 30.0 };
    steal_enabled = true;
    max_accesses_per_quantum = 2048;
    idle_quantum_ns = 400.0;
    migration_cost_ns = 1500.0;
    steal_horizon_ns = 1_000.0;
    check = false;
  }

(* Deliberately plantable bugs, enabled by CHARM_CHECK_PLANT, that the
   invariant layer must catch — CI proves the checker detects and the
   fuzzer shrinks them.  Read lazily so a harness can Unix.putenv before
   the first quantum runs. *)
let planted_skip_ready_clamp =
  lazy (Sys.getenv_opt "CHARM_CHECK_PLANT" = Some "skip-ready-clamp")

type t = {
  machine : Machine.t;
  config : config;
  mutable check : bool;  (* executable invariants on every quantum *)
  mutable check_tick : int;  (* quanta since the last periodic machine check *)
  mutable energy : bool;
      (* per-quantum compute-energy charging ({!Machine.charge_quantum}).
         Off by default: energy never affects virtual time, but keeping
         the meters untouched makes energy-off runs bit-identical to
         pre-energy baselines *)
  core_last_end : float array;
      (* per core: virtual end of the last quantum it executed, and the
         worker that ran it — the per-core non-overlap invariant *)
  core_last_worker : int array;
  mutable hooks : hooks;
  mutable trace : Trace.t option;
  mutable on_advance : (float -> unit) option;
      (* fault pump: called with the event-loop frontier before each pick *)
  workers : worker array;
  core_owner : int array;  (* core -> worker id, -1 if free *)
  kind_speed : float array;
      (* per-core static throughput multiplier from the topology's core
         kind (big=1.0); composes with the dynamic DVFS factor at quantum
         end.  Exactly 1.0 everywhere on homogeneous machines, keeping
         those runs bit-identical *)
  rank : int array;  (* cores x cores distance ranks (Latency.rank_matrix) *)
  ncores : int;
  mutable placement_epoch : int;
      (* bumped whenever any worker changes core; cached steal orders
         carry the epoch they were built under and lazily refresh *)
  mutable parked_count : int;  (* workers with parked && not offlined *)
  heap : heap;
  mutable live : int;
  mutable spawned : int;
  mutable runnable : int;
  mutable rr : int;  (* round-robin spawn cursor *)
  mutable next_tid : int;  (* per-instance so trace task ids are reproducible *)
  (* concurrency samples in two parallel arrays: an unboxed float array
     for the stamps and an int array for the counts, so sampling never
     allocates a tuple on the task-finish path *)
  mutable sample_ts : float array;
  mutable sample_live : int array;
  mutable nsamples : int;
  rng : Rng.t;
}

and worker = {
  wid : int;
  mutable core : int;
  clock : float array;
      (* 1-element clock cell: {!Machine.access_clk} charges latency into
         it in place, so no boxed float crosses the per-access boundary *)
  mutable busy_clock : float;  (* clock at the end of the last real quantum *)
  mutable did_work : bool;
  mutable parked : bool;  (* out of the heap, waiting for an enqueue *)
  mutable offlined : bool;  (* core lost with nowhere to migrate: dormant *)
  mutable redirect : int;  (* where an offlined worker's enqueues go; -1 none *)
  (* Two-lane run queue.  [ready] is the run deque holding every queued
     task in service order; not-yet-due tasks (timers, pending arrivals,
     children spawned ahead of time) additionally mirror their ready_at
     into [pend_keys], a binary min-heap of bare floats.  The heap is
     advisory: keys are never deleted when their task leaves the deque (a
     steal, an offline drain), so the root may be stale — but every
     queued future task has a live key, stale keys only ever sit at or
     below the true minimum, and a failed deque sweep proves keys <= the
     clock stale, so draining them converges on the exact clock advance
     the old full-deque rescan computed.  This keeps pop_own's run-dry
     path at O(log n) per advance instead of the old O(n) rescan per
     pick, without perturbing service order by a single task. *)
  ready : dq;
  mutable pend_keys : float array;
  mutable pend_size : int;
  mutable victims : int array;  (* cached default steal order *)
  mutable victims_epoch : int;  (* placement_epoch it was built under *)
  wrng : Rng.t;
  mutable accesses : int;  (* this quantum *)
}

and task = {
  tid : int;
  mutable coro : Coroutine.t option;
  mutable ready_at : float;
  mutable last_worker : int;
  mutable finished : bool;
  mutable waiters : task list;
}

and ctx = { csched : t; ctask : task }

and hooks = {
  on_quantum_end : t -> int -> unit;
  steal_order : t -> thief:int -> int array;
}

(* specialised task ring deque: empty slots hold a dummy task, so pushes
   and pops move bare pointers with no option boxing *)
and dq = {
  mutable dbuf : task array;
  mutable dtop : int;  (* index of oldest element *)
  mutable dbot : int;  (* one past newest element *)
}

(* -- min-heap of (clock, worker id) with lazy deletion ------------------- *)
and heap = {
  mutable keys : float array;
  mutable vals : int array;
  mutable size : int;
}

let heap_create n = { keys = Array.make (max n 4) 0.0; vals = Array.make (max n 4) 0; size = 0 }

let heap_push h key v =
  if h.size = Array.length h.keys then begin
    let keys = Array.make (2 * h.size) 0.0 and vals = Array.make (2 * h.size) 0 in
    Array.blit h.keys 0 keys 0 h.size;
    Array.blit h.vals 0 vals 0 h.size;
    h.keys <- keys;
    h.vals <- vals
  end;
  let i = ref h.size in
  h.size <- h.size + 1;
  h.keys.(!i) <- key;
  h.vals.(!i) <- v;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.keys.(parent) > h.keys.(!i) then begin
      let tk = h.keys.(parent) and tv = h.vals.(parent) in
      h.keys.(parent) <- h.keys.(!i);
      h.vals.(parent) <- h.vals.(!i);
      h.keys.(!i) <- tk;
      h.vals.(!i) <- tv;
      i := parent
    end
    else continue_ := false
  done

let heap_pop h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) and v = h.vals.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.keys.(0) <- h.keys.(h.size);
      h.vals.(0) <- h.vals.(h.size);
      let i = ref 0 and continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
        if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tk = h.keys.(!smallest) and tv = h.vals.(!smallest) in
          h.keys.(!smallest) <- h.keys.(!i);
          h.vals.(!smallest) <- h.vals.(!i);
          h.keys.(!i) <- tk;
          h.vals.(!i) <- tv;
          i := !smallest
        end
        else continue_ := false
      done
    end;
    Some (key, v)
  end

(* -- task deque and pending heap ----------------------------------------- *)

(* the sentinel filling empty queue slots; compared with == only *)
let dummy_task =
  { tid = -1; coro = None; ready_at = 0.0; last_worker = -1; finished = true; waiters = [] }

let dq_create () = { dbuf = Array.make 16 dummy_task; dtop = 0; dbot = 0 }
let dq_length q = q.dbot - q.dtop
let dq_is_empty q = q.dbot = q.dtop
let dq_slot q i = i land (Array.length q.dbuf - 1)

let dq_grow q =
  let old = q.dbuf in
  let cap = Array.length old in
  let buf = Array.make (cap * 2) dummy_task in
  for i = q.dtop to q.dbot - 1 do
    buf.(i land ((cap * 2) - 1)) <- old.(i land (cap - 1))
  done;
  q.dbuf <- buf

let dq_push q x =
  if dq_length q = Array.length q.dbuf then dq_grow q;
  q.dbuf.(dq_slot q q.dbot) <- x;
  q.dbot <- q.dbot + 1

let dq_pop_front q =
  if dq_is_empty q then dummy_task
  else begin
    let i = dq_slot q q.dtop in
    let x = q.dbuf.(i) in
    q.dbuf.(i) <- dummy_task;
    q.dtop <- q.dtop + 1;
    x
  end

let dq_get q i = q.dbuf.(dq_slot q (q.dtop + i))

(* remove the [i]-th element from the front, preserving the relative order
   of everything else: the [i] elements ahead of it shift back one slot *)
let dq_remove q i =
  let j = ref i in
  while !j > 0 do
    q.dbuf.(dq_slot q (q.dtop + !j)) <- q.dbuf.(dq_slot q (q.dtop + !j - 1));
    decr j
  done;
  q.dbuf.(dq_slot q q.dtop) <- dummy_task;
  q.dtop <- q.dtop + 1

(* the pending heap holds bare ready_at keys, nothing else: values are
   never needed (the deque owns the tasks) and bare floats keep the heap
   unboxed end to end *)
let pend_push w key =
  let n = w.pend_size in
  if n = Array.length w.pend_keys then begin
    let keys = Array.make (max 8 (2 * n)) 0.0 in
    Array.blit w.pend_keys 0 keys 0 n;
    w.pend_keys <- keys
  end;
  w.pend_size <- n + 1;
  let keys = w.pend_keys in
  let i = ref n in
  keys.(!i) <- key;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let p = (!i - 1) / 2 in
    if keys.(!i) < keys.(p) then begin
      let tk = keys.(p) in
      keys.(p) <- keys.(!i);
      keys.(!i) <- tk;
      i := p
    end
    else continue_ := false
  done

(* caller must ensure [w.pend_size > 0] *)
let pend_drop_root w =
  let keys = w.pend_keys in
  let n = w.pend_size - 1 in
  w.pend_size <- n;
  keys.(0) <- keys.(n);
  let i = ref 0 and continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < n && keys.(l) < keys.(!s) then s := l;
    if r < n && keys.(r) < keys.(!s) then s := r;
    if !s <> !i then begin
      let tk = keys.(!s) in
      keys.(!s) <- keys.(!i);
      keys.(!i) <- tk;
      i := !s
    end
    else continue_ := false
  done

let run_queue_len w = dq_length w.ready

(* ------------------------------------------------------------------------ *)

(* Cached per-worker victim order, sorted by (distance rank, wid) from the
   precomputed rank matrix.  Rebuilt lazily after any placement change
   (placement_epoch bump) instead of list-building, classifying and
   tuple-sorting on every failed pop. *)
let default_steal_order t ~thief =
  let w = t.workers.(thief) in
  if w.victims_epoch <> t.placement_epoch then begin
    let n = Array.length t.workers in
    if Array.length w.victims <> n - 1 then w.victims <- Array.make (n - 1) 0;
    let j = ref 0 in
    for v = 0 to n - 1 do
      if v <> thief then begin
        w.victims.(!j) <- v;
        incr j
      end
    done;
    let base = w.core * t.ncores in
    let rank = t.rank and workers = t.workers in
    Array.sort
      (fun a b ->
        let ra = rank.(base + workers.(a).core)
        and rb = rank.(base + workers.(b).core) in
        if ra <> rb then compare ra rb else compare a b)
      w.victims;
    w.victims_epoch <- t.placement_epoch
  end;
  w.victims

let no_hooks =
  { on_quantum_end = (fun _ _ -> ()); steal_order = (fun t ~thief -> default_steal_order t ~thief) }

let create ?(config = default_config) ?(hooks = no_hooks) machine ~n_workers ~placement =
  if n_workers <= 0 then invalid_arg "Sched.create: n_workers must be positive";
  let topo = Machine.topology machine in
  let cores = Topology.num_cores topo in
  let core_owner = Array.make cores (-1) in
  let rng = Rng.create 0x5eed in
  let workers =
    Array.init n_workers (fun wid ->
        let core = placement wid in
        Topology.validate_core topo core;
        if core_owner.(core) <> -1 then
          invalid_arg
            (Printf.sprintf "Sched.create: core %d assigned to workers %d and %d"
               core core_owner.(core) wid);
        core_owner.(core) <- wid;
        {
          wid;
          core;
          clock = Array.make 1 0.0;
          busy_clock = 0.0;
          did_work = false;
          parked = false;
          offlined = false;
          redirect = -1;
          ready = dq_create ();
          pend_keys = Array.make 8 0.0;
          pend_size = 0;
          victims = [||];
          victims_epoch = -1;
          wrng = Rng.split rng;
          accesses = 0;
        })
  in
  let heap = heap_create n_workers in
  Array.iter (fun w -> heap_push heap w.clock.(0) w.wid) workers;
  {
    machine;
    config;
    check = config.check;
    check_tick = 0;
    energy = false;
    core_last_end = Array.make cores neg_infinity;
    core_last_worker = Array.make cores (-1);
    hooks;
    trace = None;
    on_advance = None;
    workers;
    core_owner;
    kind_speed = Array.init cores (fun c -> Topology.core_speed topo c);
    rank = Latency.rank_matrix topo;
    ncores = cores;
    placement_epoch = 0;
    parked_count = 0;
    heap;
    live = 0;
    spawned = 0;
    runnable = 0;
    rr = 0;
    next_tid = 0;
    sample_ts = Array.make 256 0.0;
    sample_live = Array.make 256 0;
    nsamples = 0;
    rng;
  }

let machine t = t.machine
let n_workers t = Array.length t.workers
let config t = t.config
let set_hooks t hooks = t.hooks <- hooks
let hooks t = t.hooks
let set_trace t trace = t.trace <- trace
let trace t = t.trace
let set_check t on = t.check <- on
let check_enabled t = t.check
let set_energy t on = t.energy <- on
let energy_enabled t = t.energy
let set_on_advance t f = t.on_advance <- f
let worker_core t w = t.workers.(w).core
let worker_clock t w = t.workers.(w).clock.(0)
let worker_offlined t w = t.workers.(w).offlined

let active_workers t =
  Array.fold_left (fun acc w -> if w.offlined then acc else acc + 1) 0 t.workers

let worker_of_core t core =
  if core < 0 || core >= Array.length t.core_owner then None
  else if t.core_owner.(core) = -1 then None
  else Some t.core_owner.(core)

let queue_length t w = run_queue_len t.workers.(w)

let pending_length t w =
  let w = t.workers.(w) in
  let q = w.ready and clock = w.clock.(0) in
  let n = ref 0 in
  for i = 0 to dq_length q - 1 do
    if (dq_get q i).ready_at > clock then incr n
  done;
  !n

let ready_queue_ids t w =
  let q = t.workers.(w).ready in
  List.init (dq_length q) (fun i -> (dq_get q i).tid)

let heap_snapshot t =
  Array.init t.heap.size (fun i -> (t.heap.keys.(i), t.heap.vals.(i)))

let live_tasks t = t.live
let total_spawned t = t.spawned

let sample t now =
  let n = t.nsamples in
  if n = Array.length t.sample_ts then begin
    let ts = Array.make (2 * n) 0.0 and live = Array.make (2 * n) 0 in
    Array.blit t.sample_ts 0 ts 0 n;
    Array.blit t.sample_live 0 live 0 n;
    t.sample_ts <- ts;
    t.sample_live <- live
  end;
  t.sample_ts.(n) <- now;
  t.sample_live.(n) <- t.live;
  t.nsamples <- n + 1

let concurrency_samples t =
  Array.init t.nsamples (fun i -> (t.sample_ts.(i), t.sample_live.(i)))

let migrate t ~worker ~core =
  let w = t.workers.(worker) in
  if w.core <> core && Modifiers.core_online (Machine.modifiers t.machine) core
  then begin
    (* migrating onto an offline core is silently refused rather than
       raised: fault-blind policies (the OS-default wanderer) keep trying
       arbitrary cores, exactly as a real kernel's load balancer skips
       offlined CPUs *)
    let topo = Machine.topology t.machine in
    Topology.validate_core topo core;
    if t.core_owner.(core) <> -1 then
      invalid_arg
        (Printf.sprintf "Sched.migrate: core %d already owned by worker %d" core
           t.core_owner.(core));
    let from_core = w.core in
    t.core_owner.(w.core) <- -1;
    t.core_owner.(core) <- worker;
    w.core <- core;
    t.placement_epoch <- t.placement_epoch + 1;
    w.clock.(0) <- w.clock.(0) +. t.config.migration_cost_ns;
    Pmu.incr (Machine.pmu t.machine) ~core Pmu.Migration;
    match t.trace with
    | Some tr when Trace.enabled tr ->
        Trace.migration tr ~worker ~from_core ~to_core:core ~at_ns:w.clock.(0)
    | _ -> ()
  end

let task_id task = task.tid
let task_is_done task = task.finished

let make_task t body ~worker ~at =
  t.next_tid <- t.next_tid + 1;
  let task =
    { tid = t.next_tid; coro = None; ready_at = at; last_worker = worker; finished = false; waiters = [] }
  in
  let ctx = { csched = t; ctask = task } in
  task.coro <- Some (Coroutine.create (fun () -> body ctx));
  task

let unpark t w ~at =
  if w.parked && not w.offlined then begin
    w.parked <- false;
    t.parked_count <- t.parked_count - 1;
    if at > w.clock.(0) then w.clock.(0) <- at;
    heap_push t.heap w.clock.(0) w.wid
  end

(* Wake the parked worker closest to [near] so it can steal.  [near]'s
   cached victim order is exactly the ascending-distance scan (lowest wid
   first within a class), so the first parked entry is the old
   full-scan minimum — without classifying every worker pair, and with a
   counter fast-path when nobody is parked at all. *)
let wake_one_thief t ~near ~at =
  if t.parked_count > 0 then begin
    let order = default_steal_order t ~thief:near.wid in
    let n = Array.length order in
    let rec go i =
      if i < n then begin
        let w = t.workers.(order.(i)) in
        if w.parked && not w.offlined then unpark t w ~at else go (i + 1)
      end
    in
    go 0
  end

(* Resolve an offlined worker to the live worker its queue was drained
   into; the chain is bounded by the worker count (redirects only ever
   point at workers that were live at drain time). *)
let live_target t wid =
  let rec go wid guard =
    let w = t.workers.(wid) in
    if (not w.offlined) || w.redirect < 0 || guard = 0 then wid
    else go w.redirect (guard - 1)
  in
  go wid (Array.length t.workers)

let enqueue t task =
  let target = live_target t task.last_worker in
  task.last_worker <- target;
  let w = t.workers.(target) in
  dq_push w.ready task;
  if task.ready_at > w.clock.(0) then pend_push w task.ready_at;
  t.runnable <- t.runnable + 1;
  unpark t w ~at:task.ready_at;
  if t.config.steal_enabled && run_queue_len w >= 2 then
    wake_one_thief t ~near:w ~at:(Float.max w.clock.(0) task.ready_at)

let spawn t ?worker ?(at = 0.0) body =
  let worker =
    match worker with
    | Some w ->
        if w < 0 || w >= Array.length t.workers then
          invalid_arg "Sched.spawn: worker out of range";
        w
    | None ->
        (* skip dormant workers so round-robin spawns land on live queues
           directly (enqueue would redirect anyway, but the rr cursor
           should keep distributing evenly over the survivors) *)
        let n = Array.length t.workers in
        let rec pick tries =
          let w = t.rr in
          t.rr <- (t.rr + 1) mod n;
          if t.workers.(w).offlined && tries < n then pick (tries + 1) else w
        in
        pick 0
  in
  let task = make_task t body ~worker ~at in
  t.live <- t.live + 1;
  t.spawned <- t.spawned + 1;
  enqueue t task;
  task

let ready t ?at task =
  if task.finished then invalid_arg "Sched.ready: task already finished";
  (match at with Some at -> task.ready_at <- Float.max task.ready_at at | None -> ());
  enqueue t task

(* Pop the next runnable task: the first task in queue order whose
   ready_at is within the worker's clock, rotating the not-yet-due prefix
   to the back — the same discipline as the original single-deque
   scheduler, because downstream service order depends on it.  When every
   queued task is in the future, the clock advances to the earliest
   ready_at; the advisory heap supplies that minimum in O(log n) where
   the old code re-scanned the whole deque per pick.  Returns
   [dummy_task] when the queue is empty. *)
let rec pop_own_slow w =
  let len = dq_length w.ready in
  if len = 0 then dummy_task
  else begin
    let clock = w.clock.(0) in
    let rec go i =
      if i >= len then dummy_task
      else begin
        let task = dq_pop_front w.ready in
        if task.ready_at <= clock then task
        else begin
          dq_push w.ready task;
          go (i + 1)
        end
      end
    in
    let found = go 0 in
    if found != dummy_task then found
    else begin
      (* Nothing due: every queued task mirrors a live heap key above the
         clock, and any key at or below it is provably stale (its task
         would have been found by the sweep) — drop those, advance to the
         root and retry.  A stale root between the clock and the true
         minimum only costs one extra sweep before it is dropped in
         turn. *)
      while w.pend_size > 0 && w.pend_keys.(0) <= w.clock.(0) do
        pend_drop_root w
      done;
      if w.pend_size > 0 then w.clock.(0) <- w.pend_keys.(0)
      else begin
        (* The heap can run dry with future tasks still queued: a
           fast-core (speed > 1) quantum rescale pulls the clock
           backward past tasks that were due when enqueued, so no key
           was ever pushed for them.  Recover the minimum by scanning
           the deque — rare, and bounded by the queue length. *)
        let m = ref infinity in
        for i = 0 to len - 1 do
          let task = dq_get w.ready i in
          if task.ready_at < !m then m := task.ready_at
        done;
        w.clock.(0) <- !m
      end;
      pop_own_slow w
    end
  end

(* fast path: the front task is due (the steady state when the queue
   holds running work rather than timers) — no sweep state to set up *)
let pop_own w =
  let q = w.ready in
  if dq_is_empty q then dummy_task
  else begin
    let front = dq_get q 0 in
    if front.ready_at <= w.clock.(0) then begin
      q.dbuf.(dq_slot q q.dtop) <- dummy_task;
      q.dtop <- q.dtop + 1;
      front
    end
    else pop_own_slow w
  end

(* Steal from one victim, skipping tasks scheduled beyond the thief's
   steal horizon: running a far-future task (a timer, a pending arrival)
   would drag the thief's clock forward, and every ready task it later
   touches would finish "in the future".  The victim's deque is scanned
   in place oldest-first and only the stolen task is removed, so refusals
   leave the owner's run order untouched (re-pushing refused tasks to the
   back would rotate it).  A stolen future task leaves its advisory heap
   key behind; the owner's next run-dry sweep drops it as stale. *)
let steal_ready t w victim =
  let horizon = w.clock.(0) +. t.config.steal_horizon_ns in
  let n = dq_length victim.ready in
  let rec scan i =
    if i >= n then dummy_task
    else begin
      let task = dq_get victim.ready i in
      if task.ready_at <= horizon then begin
        dq_remove victim.ready i;
        task
      end
      else scan (i + 1)
    end
  in
  scan 0

let try_steal t w =
  if not t.config.steal_enabled then dummy_task
  else begin
    let order = t.hooks.steal_order t ~thief:w.wid in
    let topo = Machine.topology t.machine in
    let rec go i =
      if i >= Array.length order then dummy_task
      else begin
        let victim = t.workers.(order.(i)) in
        let task = steal_ready t w victim in
        if task != dummy_task then begin
          let cost =
            2.0 *. Latency.core_to_core_ns ~profile:(Machine.profile t.machine) topo w.core victim.core
          in
          w.clock.(0) <- w.clock.(0) +. cost;
          Pmu.incr (Machine.pmu t.machine) ~core:w.core Pmu.Task_stolen;
          (match t.trace with
          | Some tr when Trace.enabled tr ->
              Trace.steal tr ~thief:w.wid ~victim:victim.wid ~task_id:task.tid
                ~at_ns:w.clock.(0)
          | _ -> ());
          if run_queue_len victim > 0 then
            wake_one_thief t ~near:victim ~at:w.clock.(0);
          task
        end
        else go (i + 1)
      end
    in
    go 0
  end

(* Single horizon-filtered steal attempt, exposed for tests: returns the
   stolen task id, or -1 when every queued task was refused.  A stolen
   task leaves the scheduler's accounting (the caller owns it). *)
let steal_once t ~thief ~victim =
  let task = steal_ready t t.workers.(thief) t.workers.(victim) in
  if task == dummy_task then -1
  else begin
    t.runnable <- t.runnable - 1;
    task.tid
  end

let next_task t w =
  let task = pop_own w in
  let task = if task == dummy_task then try_steal t w else task in
  if task != dummy_task then t.runnable <- t.runnable - 1;
  task

(* -- executable invariants (config.check / set_check) --------------------

   Each check is a cheap assertion over state the scheduler already has in
   hand; together they pin down the properties every perf PR must
   preserve: causality (no task before its ready time), per-core quantum
   ordering, offline cores staying idle, and work conservation. *)

(* Every task accounted runnable sits in exactly one lane of exactly one
   worker, and the parked-worker counter matches the flags.  O(workers),
   so it runs on the periodic tick, not every quantum. *)
let check_work_conservation t =
  let queued =
    Array.fold_left (fun acc w -> acc + run_queue_len w) 0 t.workers
  in
  if queued <> t.runnable then
    Invariant.fail "sched: %d tasks queued but %d accounted runnable" queued
      t.runnable;
  let parked =
    Array.fold_left
      (fun acc w -> if w.parked && not w.offlined then acc + 1 else acc)
      0 t.workers
  in
  if parked <> t.parked_count then
    Invariant.fail "sched: %d workers parked but %d counted" parked
      t.parked_count

let machine_check_period = 64

let check_quantum_start t w task =
  if w.offlined then
    Invariant.fail "sched: dormant worker %d executing task %d" w.wid task.tid;
  if not (Modifiers.core_online (Machine.modifiers t.machine) w.core) then
    Invariant.fail "sched: worker %d executing task %d on offline core %d"
      w.wid task.tid w.core;
  if w.clock.(0) < task.ready_at then
    Invariant.fail
      "sched: task %d starts at %.3f ns, before its ready time %.3f ns (worker %d)"
      task.tid w.clock.(0) task.ready_at w.wid

let check_quantum_end t w task ~quantum_start =
  if not (Float.is_finite w.clock.(0)) || w.clock.(0) < quantum_start then
    Invariant.fail
      "sched: worker %d clock went from %.3f to %.3f ns across task %d's quantum"
      w.wid quantum_start w.clock.(0) task.tid;
  (* Per-core non-overlap: consecutive quanta on one core must not overlap
     in virtual time while the core keeps the same occupant.  After a
     hand-over (migration / hotplug) the new worker's clock is independent
     of the previous occupant's, so a fresh baseline is recorded. *)
  if
    t.core_last_worker.(w.core) = w.wid
    && quantum_start < t.core_last_end.(w.core) -. 1e-9
  then
    Invariant.fail
      "sched: core %d quantum [%.3f, %.3f] overlaps the previous one ending at %.3f"
      w.core quantum_start w.clock.(0) t.core_last_end.(w.core);
  t.core_last_worker.(w.core) <- w.wid;
  t.core_last_end.(w.core) <- w.clock.(0);
  t.check_tick <- t.check_tick + 1;
  if t.check_tick >= machine_check_period then begin
    t.check_tick <- 0;
    Machine.check_invariants t.machine;
    check_work_conservation t
  end

let check_quiescent t =
  check_work_conservation t;
  Array.iter
    (fun w ->
      if t.live = 0 && run_queue_len w > 0 then
        Invariant.fail
          "sched: no live tasks but worker %d still queues %d of them" w.wid
          (run_queue_len w))
    t.workers;
  Machine.check_invariants_full t.machine

let execute t w task =
  if task.ready_at > w.clock.(0) && not (Lazy.force planted_skip_ready_clamp) then
    w.clock.(0) <- task.ready_at;
  if t.check then check_quantum_start t w task;
  (* the quantum starts here, after the ready-time clamp: idle waiting and
     steal latency before this point belong to no task *)
  let quantum_start = w.clock.(0) in
  w.accesses <- 0;
  let pmu = Machine.pmu t.machine in
  (match t.config.task_model with
  | Coroutines { switch_ns } -> w.clock.(0) <- w.clock.(0) +. switch_ns
  | Os_threads { switch_ns; _ } ->
      (* oversubscription: kernel switching degrades with the ratio of
         runnable threads to cores *)
      let over = float_of_int t.live /. float_of_int (Array.length t.workers) in
      w.clock.(0) <- w.clock.(0) +. (switch_ns *. Float.max 1.0 over));
  Pmu.incr pmu ~core:w.core Pmu.Context_switch;
  task.last_worker <- w.wid;
  let coro = Option.get task.coro in
  let result = Coroutine.resume coro in
  (* DVFS: a slowed core retires the same work in proportionally more
     virtual time.  Rescaling at quantum end keeps the memory model exact
     (accesses were charged at nominal latency inside the quantum) while
     the task's forward progress per nanosecond drops with core speed. *)
  (* compose dynamic DVFS with the static kind speed: a little core's
     quantum runs proportionally longer, an accelerator tile's shorter *)
  let dvfs = Modifiers.core_speed (Machine.modifiers t.machine) w.core in
  let speed = dvfs *. Array.unsafe_get t.kind_speed w.core in
  if speed <> 1.0 then
    w.clock.(0) <- quantum_start +. ((w.clock.(0) -. quantum_start) /. speed);
  if t.energy then begin
    let dt_ns = w.clock.(0) -. quantum_start in
    if dt_ns > 0.0 then
      Machine.charge_quantum t.machine ~core:w.core ~dt_ns ~dvfs
  end;
  (match result with
  | Coroutine.Yielded ->
      (* remember the progress point: if a lagging thief later steals this
         task it must resume at or after where it left off, or task-local
         time would run backward *)
      task.ready_at <- w.clock.(0);
      enqueue t task
  | Coroutine.Suspended -> task.ready_at <- w.clock.(0)
  | Coroutine.Finished ->
      task.finished <- true;
      t.live <- t.live - 1;
      Pmu.incr pmu ~core:w.core Pmu.Task_executed;
      sample t w.clock.(0);
      let waiters = task.waiters in
      task.waiters <- [];
      List.iter (fun waiter -> ready t ~at:w.clock.(0) waiter) waiters);
  w.did_work <- true;
  w.busy_clock <- w.clock.(0);
  (* emit before the policy hook runs: a migration decided at quantum end
     must not retroactively relabel the core this quantum ran on *)
  (match t.trace with
  | Some tr when Trace.enabled tr ->
      Trace.task_quantum tr ~worker:w.wid ~core:w.core ~task_id:task.tid
        ~start_ns:quantum_start ~end_ns:w.clock.(0)
  | _ -> ());
  if t.check then check_quantum_end t w task ~quantum_start;
  t.hooks.on_quantum_end t w.wid

(* A core went offline.  Preference order: migrate its worker to the
   nearest free online core; otherwise park the worker dormant and drain
   its queue into the nearest surviving worker.  The last active worker is
   never offlined — the simulation must be able to drain. *)
let handle_core_offline t ~core =
  match worker_of_core t core with
  | None -> ()
  | Some wid ->
      let w = t.workers.(wid) in
      let mods = Machine.modifiers t.machine in
      let base = core * t.ncores in
      let best = ref (-1) and best_rank = ref max_int in
      Array.iteri
        (fun c owner ->
          if owner = -1 && Modifiers.core_online mods c then begin
            let r = t.rank.(base + c) in
            if r < !best_rank then begin
              best_rank := r;
              best := c
            end
          end)
        t.core_owner;
      if !best >= 0 then migrate t ~worker:wid ~core:!best
      else if active_workers t > 1 then begin
        if w.parked then t.parked_count <- t.parked_count - 1;
        w.offlined <- true;
        w.parked <- true;
        let dest = ref (-1) and dest_rank = ref max_int in
        Array.iter
          (fun w' ->
            if w'.wid <> wid && not w'.offlined then begin
              let r = t.rank.(base + w'.core) in
              if r < !dest_rank then begin
                dest_rank := r;
                dest := w'.wid
              end
            end)
          t.workers;
        if !dest >= 0 then begin
          let d = t.workers.(!dest) in
          w.redirect <- d.wid;
          (* append the dead worker's queue to the survivor's in order,
             mirroring future ready times into the survivor's heap; the
             dead worker's own heap keys are orphaned wholesale *)
          while not (dq_is_empty w.ready) do
            let task = dq_pop_front w.ready in
            task.last_worker <- d.wid;
            dq_push d.ready task;
            if task.ready_at > d.clock.(0) then pend_push d task.ready_at
          done;
          w.pend_size <- 0;
          unpark t d ~at:w.clock.(0)
        end
      end

(* A previously offlined core came back.  Only workers that went dormant
   in place are revived; a worker that migrated away stays where it is
   (its old core is simply available again as a migration target). *)
let handle_core_online t ~core ~at =
  match worker_of_core t core with
  | None -> ()
  | Some wid ->
      let w = t.workers.(wid) in
      if w.offlined then begin
        w.offlined <- false;
        w.redirect <- -1;
        if at > w.clock.(0) then w.clock.(0) <- at;
        w.parked <- true;
        t.parked_count <- t.parked_count + 1;
        unpark t w ~at
      end

let run t =
  let rec loop () =
    if t.live = 0 then ()
    else begin
      match heap_pop t.heap with
      | None ->
          (* every worker parked while tasks remain: they are all suspended
             with nobody left to wake them *)
          raise Deadlock
      | Some (key, wid) ->
          let w = t.workers.(wid) in
          if w.offlined then
            (* dormant worker's stale heap entry: drop it *)
            loop ()
          else begin
            (* fault pump: [key] is the event-loop frontier — no worker can
               run earlier than it, so faults due at or before it apply
               deterministically here, at a quantum boundary *)
            (match t.on_advance with Some f -> f key | None -> ());
            if w.offlined then loop ()
            else if key < w.clock.(0) then begin
              (* stale heap entry; reinsert with the fresh clock *)
              heap_push t.heap w.clock.(0) wid;
              loop ()
            end
            else begin
              let task = next_task t w in
              if task != dummy_task then begin
                execute t w task;
                heap_push t.heap w.clock.(0) wid
              end
              else begin
                (* Nothing to run or steal: park until an enqueue wakes us.
                   A short idle advance models the real polling interval. *)
                (match t.trace with
                | Some tr when Trace.enabled tr -> Trace.park tr ~worker:wid ~at_ns:w.clock.(0)
                | _ -> ());
                w.clock.(0) <- w.clock.(0) +. t.config.idle_quantum_ns;
                w.parked <- true;
                t.parked_count <- t.parked_count + 1
              end;
              loop ()
            end
          end
    end
  in
  loop ();
  if t.check then check_quiescent t;
  Array.fold_left (fun acc w -> if w.did_work then Float.max acc w.busy_clock else acc) 0.0 t.workers

module Ctx = struct
  let sched c = c.csched
  let machine c = c.csched.machine

  let worker c = c.csched.workers.(c.ctask.last_worker)
  let now c = (worker c).clock.(0)
  let worker_id c = c.ctask.last_worker
  let core c = (worker c).core
  let rng c = (worker c).wrng
  let current_task c = c.ctask
  let quantum_accesses c = (worker c).accesses

  let charge c ns =
    let w = worker c in
    w.clock.(0) <- w.clock.(0) +. ns

  let access_addr c ~write addr =
    let w = worker c in
    Machine.access_clk c.csched.machine ~core:w.core ~write addr w.clock 0;
    w.accesses <- w.accesses + 1

  let read c region i =
    access_addr c ~write:false (Simmem.addr region i)

  let write c region i = access_addr c ~write:true (Simmem.addr region i)

  (* Long ranges are charged in bounded chunks with a yield in between so
     concurrent workers stay aligned in virtual time (the DRAM contention
     model bins demand by virtual time, and cooperative scheduling must
     not let one worker race thousands of lines ahead). *)
  let range c ~write region ~lo ~hi =
    let line_bytes = (Machine.topology c.csched.machine).Topology.line_bytes in
    let elems_per_chunk =
      max 1 (c.csched.config.max_accesses_per_quantum * line_bytes / (2 * region.Simmem.elt_bytes))
    in
    let pos = ref lo in
    while !pos < hi do
      let stop = min hi (!pos + elems_per_chunk) in
      let w = worker c in
      Machine.touch_range_clk c.csched.machine ~core:w.core ~write region
        ~lo:!pos ~hi:stop w.clock 0;
      (* count exactly the lines touch_range visits (first..last line of
         the chunk's byte span): the access budget and the machine's
         access counter must agree *)
      let lines =
        (Simmem.addr region (stop - 1) / line_bytes)
        - (Simmem.addr region !pos / line_bytes)
        + 1
      in
      w.accesses <- w.accesses + lines;
      pos := stop;
      if !pos < hi then Coroutine.yield ()
    done

  let read_range c region ~lo ~hi = range c ~write:false region ~lo ~hi
  let write_range c region ~lo ~hi = range c ~write:true region ~lo ~hi
  let work c ns = charge c ns
  let yield _c = Coroutine.yield ()

  let maybe_yield c =
    let w = worker c in
    if w.accesses >= c.csched.config.max_accesses_per_quantum then Coroutine.yield ()

  (* [Coroutine.suspend] hands over the coroutine; the registrar wants the
     scheduler-level task, which owns requeue metadata. *)
  let suspend c register = Coroutine.suspend (fun _coro -> register c.ctask)

  let spawn c ?worker ?at body =
    let t = c.csched in
    let worker = match worker with Some w -> w | None -> c.ctask.last_worker in
    (match t.config.task_model with
    | Coroutines _ -> ()
    | Os_threads { spawn_ns; _ } -> charge c spawn_ns);
    (* causality: a child cannot start before its spawn — without this a
       thief whose clock lags the spawner would run the child "in the
       past", which breaks per-job latency accounting in serving mode *)
    let at = match at with Some at -> at | None -> now c in
    spawn t ~worker ~at body

  let await c task =
    if not task.finished then begin
      suspend c (fun waiter -> task.waiters <- waiter :: task.waiters);
      ()
    end
end

let charge t ~worker ns = t.workers.(worker).clock.(0) <- t.workers.(worker).clock.(0) +. ns

let sync_clocks t =
  let m = Array.fold_left (fun acc w -> Float.max acc w.clock.(0)) 0.0 t.workers in
  Array.iter (fun w -> w.clock.(0) <- m) t.workers;
  (* refresh the event heap: the old keys now all lag the clocks, so every
     next pop would take the stale-entry reinsert path (and hand the fault
     pump a frontier from before the sync) *)
  t.heap.size <- 0;
  Array.iter
    (fun w -> if (not w.parked) && not w.offlined then heap_push t.heap w.clock.(0) w.wid)
    t.workers
