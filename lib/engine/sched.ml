open Chipsim

exception Deadlock

type task_model =
  | Coroutines of { switch_ns : float }
  | Os_threads of { spawn_ns : float; switch_ns : float }

type config = {
  task_model : task_model;
  steal_enabled : bool;
  max_accesses_per_quantum : int;
  idle_quantum_ns : float;
  migration_cost_ns : float;
  steal_horizon_ns : float;
  check : bool;
}

let default_config =
  {
    task_model = Coroutines { switch_ns = 30.0 };
    steal_enabled = true;
    max_accesses_per_quantum = 2048;
    idle_quantum_ns = 400.0;
    migration_cost_ns = 1500.0;
    steal_horizon_ns = 1_000.0;
    check = false;
  }

(* Deliberately plantable bugs, enabled by CHARM_CHECK_PLANT, that the
   invariant layer must catch — CI proves the checker detects and the
   fuzzer shrinks them.  Read lazily so a harness can Unix.putenv before
   the first quantum runs. *)
let planted_skip_ready_clamp =
  lazy (Sys.getenv_opt "CHARM_CHECK_PLANT" = Some "skip-ready-clamp")

type t = {
  machine : Machine.t;
  config : config;
  mutable check : bool;  (* executable invariants on every quantum *)
  mutable check_tick : int;  (* quanta since the last periodic machine check *)
  core_last_end : float array;
      (* per core: virtual end of the last quantum it executed, and the
         worker that ran it — the per-core non-overlap invariant *)
  core_last_worker : int array;
  mutable hooks : hooks;
  mutable trace : Trace.t option;
  mutable on_advance : (float -> unit) option;
      (* fault pump: called with the event-loop frontier before each pick *)
  workers : worker array;
  core_owner : int array;  (* core -> worker id, -1 if free *)
  heap : heap;
  mutable live : int;
  mutable spawned : int;
  mutable runnable : int;
  mutable rr : int;  (* round-robin spawn cursor *)
  mutable next_tid : int;  (* per-instance so trace task ids are reproducible *)
  mutable samples : (float * int) array;
  mutable nsamples : int;
  rng : Rng.t;
}

and worker = {
  wid : int;
  mutable core : int;
  mutable clock : float;
  mutable busy_clock : float;  (* clock at the end of the last real quantum *)
  mutable did_work : bool;
  mutable parked : bool;  (* out of the heap, waiting for an enqueue *)
  mutable offlined : bool;  (* core lost with nowhere to migrate: dormant *)
  mutable redirect : int;  (* where an offlined worker's enqueues go; -1 none *)
  queue : task Wsqueue.t;
  wrng : Rng.t;
  mutable accesses : int;  (* this quantum *)
}

and task = {
  tid : int;
  mutable coro : Coroutine.t option;
  mutable ready_at : float;
  mutable last_worker : int;
  mutable finished : bool;
  mutable waiters : task list;
}

and ctx = { csched : t; ctask : task }

and hooks = {
  on_quantum_end : t -> int -> unit;
  steal_order : t -> thief:int -> int array;
}

(* -- min-heap of (clock, worker id) with lazy deletion ------------------- *)
and heap = {
  mutable keys : float array;
  mutable vals : int array;
  mutable size : int;
}

let heap_create n = { keys = Array.make (max n 4) 0.0; vals = Array.make (max n 4) 0; size = 0 }

let heap_push h key v =
  if h.size = Array.length h.keys then begin
    let keys = Array.make (2 * h.size) 0.0 and vals = Array.make (2 * h.size) 0 in
    Array.blit h.keys 0 keys 0 h.size;
    Array.blit h.vals 0 vals 0 h.size;
    h.keys <- keys;
    h.vals <- vals
  end;
  let i = ref h.size in
  h.size <- h.size + 1;
  h.keys.(!i) <- key;
  h.vals.(!i) <- v;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if h.keys.(parent) > h.keys.(!i) then begin
      let tk = h.keys.(parent) and tv = h.vals.(parent) in
      h.keys.(parent) <- h.keys.(!i);
      h.vals.(parent) <- h.vals.(!i);
      h.keys.(!i) <- tk;
      h.vals.(!i) <- tv;
      i := parent
    end
    else continue_ := false
  done

let heap_pop h =
  if h.size = 0 then None
  else begin
    let key = h.keys.(0) and v = h.vals.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.keys.(0) <- h.keys.(h.size);
      h.vals.(0) <- h.vals.(h.size);
      let i = ref 0 and continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
        if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tk = h.keys.(!smallest) and tv = h.vals.(!smallest) in
          h.keys.(!smallest) <- h.keys.(!i);
          h.vals.(!smallest) <- h.vals.(!i);
          h.keys.(!i) <- tk;
          h.vals.(!i) <- tv;
          i := !smallest
        end
        else continue_ := false
      done
    end;
    Some (key, v)
  end

(* ------------------------------------------------------------------------ *)

let distance_rank topo a b =
  match Latency.classify topo a b with
  | Latency.Same_core -> 0
  | Latency.Same_chiplet -> 1
  | Latency.Same_group -> 2
  | Latency.Same_socket -> 3
  | Latency.Cross_socket -> 4

let default_steal_order t ~thief =
  let my_core = t.workers.(thief).core in
  let topo = Machine.topology t.machine in
  let others =
    Array.of_list
      (List.filter_map
         (fun w -> if w.wid = thief then None else Some w.wid)
         (Array.to_list t.workers))
  in
  let rank wid = distance_rank topo my_core t.workers.(wid).core in
  Array.sort (fun a b -> compare (rank a, a) (rank b, b)) others;
  others

let no_hooks =
  { on_quantum_end = (fun _ _ -> ()); steal_order = (fun t ~thief -> default_steal_order t ~thief) }

let create ?(config = default_config) ?(hooks = no_hooks) machine ~n_workers ~placement =
  if n_workers <= 0 then invalid_arg "Sched.create: n_workers must be positive";
  let topo = Machine.topology machine in
  let cores = Topology.num_cores topo in
  let core_owner = Array.make cores (-1) in
  let rng = Rng.create 0x5eed in
  let workers =
    Array.init n_workers (fun wid ->
        let core = placement wid in
        Topology.validate_core topo core;
        if core_owner.(core) <> -1 then
          invalid_arg
            (Printf.sprintf "Sched.create: core %d assigned to workers %d and %d"
               core core_owner.(core) wid);
        core_owner.(core) <- wid;
        {
          wid;
          core;
          clock = 0.0;
          busy_clock = 0.0;
          did_work = false;
          parked = false;
          offlined = false;
          redirect = -1;
          queue = Wsqueue.create ();
          wrng = Rng.split rng;
          accesses = 0;
        })
  in
  let heap = heap_create n_workers in
  Array.iter (fun w -> heap_push heap w.clock w.wid) workers;
  {
    machine;
    config;
    check = config.check;
    check_tick = 0;
    core_last_end = Array.make cores neg_infinity;
    core_last_worker = Array.make cores (-1);
    hooks;
    trace = None;
    on_advance = None;
    workers;
    core_owner;
    heap;
    live = 0;
    spawned = 0;
    runnable = 0;
    rr = 0;
    next_tid = 0;
    samples = Array.make 256 (0.0, 0);
    nsamples = 0;
    rng;
  }

let machine t = t.machine
let n_workers t = Array.length t.workers
let config t = t.config
let set_hooks t hooks = t.hooks <- hooks
let hooks t = t.hooks
let set_trace t trace = t.trace <- trace
let trace t = t.trace
let set_check t on = t.check <- on
let check_enabled t = t.check
let set_on_advance t f = t.on_advance <- f
let worker_core t w = t.workers.(w).core
let worker_clock t w = t.workers.(w).clock
let worker_offlined t w = t.workers.(w).offlined

let active_workers t =
  Array.fold_left (fun acc w -> if w.offlined then acc else acc + 1) 0 t.workers

let worker_of_core t core =
  if core < 0 || core >= Array.length t.core_owner then None
  else if t.core_owner.(core) = -1 then None
  else Some t.core_owner.(core)

let queue_length t w = Wsqueue.length t.workers.(w).queue
let live_tasks t = t.live
let total_spawned t = t.spawned

let sample t now =
  if t.nsamples = Array.length t.samples then begin
    let bigger = Array.make (2 * t.nsamples) (0.0, 0) in
    Array.blit t.samples 0 bigger 0 t.nsamples;
    t.samples <- bigger
  end;
  t.samples.(t.nsamples) <- (now, t.live);
  t.nsamples <- t.nsamples + 1

let concurrency_samples t = Array.sub t.samples 0 t.nsamples

let migrate t ~worker ~core =
  let w = t.workers.(worker) in
  if w.core <> core && Modifiers.core_online (Machine.modifiers t.machine) core
  then begin
    (* migrating onto an offline core is silently refused rather than
       raised: fault-blind policies (the OS-default wanderer) keep trying
       arbitrary cores, exactly as a real kernel's load balancer skips
       offlined CPUs *)
    let topo = Machine.topology t.machine in
    Topology.validate_core topo core;
    if t.core_owner.(core) <> -1 then
      invalid_arg
        (Printf.sprintf "Sched.migrate: core %d already owned by worker %d" core
           t.core_owner.(core));
    let from_core = w.core in
    t.core_owner.(w.core) <- -1;
    t.core_owner.(core) <- worker;
    w.core <- core;
    w.clock <- w.clock +. t.config.migration_cost_ns;
    Pmu.incr (Machine.pmu t.machine) ~core Pmu.Migration;
    match t.trace with
    | Some tr when Trace.enabled tr ->
        Trace.migration tr ~worker ~from_core ~to_core:core ~at_ns:w.clock
    | _ -> ()
  end

let task_id task = task.tid
let task_is_done task = task.finished

let make_task t body ~worker ~at =
  t.next_tid <- t.next_tid + 1;
  let task =
    { tid = t.next_tid; coro = None; ready_at = at; last_worker = worker; finished = false; waiters = [] }
  in
  let ctx = { csched = t; ctask = task } in
  task.coro <- Some (Coroutine.create (fun () -> body ctx));
  task

let unpark t w ~at =
  if w.parked && not w.offlined then begin
    w.parked <- false;
    if at > w.clock then w.clock <- at;
    heap_push t.heap w.clock w.wid
  end

(* Wake the parked worker closest to [near] so it can steal. *)
let wake_one_thief t ~near ~at =
  let topo = Machine.topology t.machine in
  let best = ref None and best_rank = ref max_int in
  Array.iter
    (fun w ->
      if w.parked && not w.offlined then begin
        let r = distance_rank topo near.core w.core in
        if r < !best_rank then begin
          best_rank := r;
          best := Some w
        end
      end)
    t.workers;
  match !best with Some w -> unpark t w ~at | None -> ()

(* Resolve an offlined worker to the live worker its queue was drained
   into; the chain is bounded by the worker count (redirects only ever
   point at workers that were live at drain time). *)
let live_target t wid =
  let rec go wid guard =
    let w = t.workers.(wid) in
    if (not w.offlined) || w.redirect < 0 || guard = 0 then wid
    else go w.redirect (guard - 1)
  in
  go wid (Array.length t.workers)

let enqueue t task =
  let target = live_target t task.last_worker in
  task.last_worker <- target;
  let w = t.workers.(target) in
  Wsqueue.push w.queue task;
  t.runnable <- t.runnable + 1;
  unpark t w ~at:task.ready_at;
  if t.config.steal_enabled && Wsqueue.length w.queue >= 2 then
    wake_one_thief t ~near:w ~at:(Float.max w.clock task.ready_at)

let spawn t ?worker ?(at = 0.0) body =
  let worker =
    match worker with
    | Some w ->
        if w < 0 || w >= Array.length t.workers then
          invalid_arg "Sched.spawn: worker out of range";
        w
    | None ->
        (* skip dormant workers so round-robin spawns land on live queues
           directly (enqueue would redirect anyway, but the rr cursor
           should keep distributing evenly over the survivors) *)
        let n = Array.length t.workers in
        let rec pick tries =
          let w = t.rr in
          t.rr <- (t.rr + 1) mod n;
          if t.workers.(w).offlined && tries < n then pick (tries + 1) else w
        in
        pick 0
  in
  let task = make_task t body ~worker ~at in
  t.live <- t.live + 1;
  t.spawned <- t.spawned + 1;
  enqueue t task;
  task

let ready t ?at task =
  if task.finished then invalid_arg "Sched.ready: task already finished";
  (match at with Some at -> task.ready_at <- Float.max task.ready_at at | None -> ());
  enqueue t task

(* Pop a ready task from the worker's own queue, rotating not-yet-ready
   tasks to the back; if only future tasks exist, advance the clock. *)
let rec pop_own t w =
  let len = Wsqueue.length w.queue in
  if len = 0 then None
  else begin
    let min_ready = ref infinity in
    let rec go i =
      if i >= len then None
      else
        match Wsqueue.pop_front w.queue with
        | None -> None
        | Some task ->
            if task.ready_at <= w.clock then Some task
            else begin
              if task.ready_at < !min_ready then min_ready := task.ready_at;
              Wsqueue.push w.queue task;
              go (i + 1)
            end
    in
    match go 0 with
    | Some task -> Some task
    | None ->
        w.clock <- !min_ready;
        pop_own t w
  end

(* Steal from one victim, skipping tasks scheduled beyond the thief's
   steal horizon: running a far-future task (a timer, a pending arrival)
   would drag the thief's clock forward, and every ready task it later
   touches would finish "in the future".  Refused tasks go back to the
   owner, who advances to them naturally when it runs dry. *)
let steal_ready t w victim =
  let n = Wsqueue.length victim.queue in
  let horizon = w.clock +. t.config.steal_horizon_ns in
  let rec go k =
    if k >= n then None
    else
      match Wsqueue.steal victim.queue with
      | None -> None
      | Some task ->
          if task.ready_at > horizon then begin
            Wsqueue.push victim.queue task;
            go (k + 1)
          end
          else Some task
  in
  go 0

let try_steal t w =
  if not t.config.steal_enabled then None
  else begin
    let order = t.hooks.steal_order t ~thief:w.wid in
    let topo = Machine.topology t.machine in
    let rec go i =
      if i >= Array.length order then None
      else begin
        let victim = t.workers.(order.(i)) in
        match steal_ready t w victim with
        | Some task ->
            let cost =
              2.0 *. Latency.core_to_core_ns ~profile:(Machine.profile t.machine) topo w.core victim.core
            in
            w.clock <- w.clock +. cost;
            Pmu.incr (Machine.pmu t.machine) ~core:w.core Pmu.Task_stolen;
            (match t.trace with
            | Some tr when Trace.enabled tr ->
                Trace.steal tr ~thief:w.wid ~victim:victim.wid ~task_id:task.tid
                  ~at_ns:w.clock
            | _ -> ());
            if not (Wsqueue.is_empty victim.queue) then
              wake_one_thief t ~near:victim ~at:w.clock;
            Some task
        | None -> go (i + 1)
      end
    in
    go 0
  end

let next_task t w =
  match pop_own t w with
  | Some task ->
      t.runnable <- t.runnable - 1;
      Some task
  | None -> (
      match try_steal t w with
      | Some task ->
          t.runnable <- t.runnable - 1;
          Some task
      | None -> None)

(* -- executable invariants (config.check / set_check) --------------------

   Each check is a cheap assertion over state the scheduler already has in
   hand; together they pin down the properties every perf PR must
   preserve: causality (no task before its ready time), per-core quantum
   ordering, offline cores staying idle, and work conservation. *)

(* Every task accounted runnable sits in exactly one deque.  O(workers),
   so it runs on the periodic tick, not every quantum. *)
let check_work_conservation t =
  let queued =
    Array.fold_left (fun acc w -> acc + Wsqueue.length w.queue) 0 t.workers
  in
  if queued <> t.runnable then
    Invariant.fail "sched: %d tasks queued but %d accounted runnable" queued
      t.runnable

let machine_check_period = 64

let check_quantum_start t w task =
  if w.offlined then
    Invariant.fail "sched: dormant worker %d executing task %d" w.wid task.tid;
  if not (Modifiers.core_online (Machine.modifiers t.machine) w.core) then
    Invariant.fail "sched: worker %d executing task %d on offline core %d"
      w.wid task.tid w.core;
  if w.clock < task.ready_at then
    Invariant.fail
      "sched: task %d starts at %.3f ns, before its ready time %.3f ns (worker %d)"
      task.tid w.clock task.ready_at w.wid

let check_quantum_end t w task ~quantum_start =
  if not (Float.is_finite w.clock) || w.clock < quantum_start then
    Invariant.fail
      "sched: worker %d clock went from %.3f to %.3f ns across task %d's quantum"
      w.wid quantum_start w.clock task.tid;
  (* Per-core non-overlap: consecutive quanta on one core must not overlap
     in virtual time while the core keeps the same occupant.  After a
     hand-over (migration / hotplug) the new worker's clock is independent
     of the previous occupant's, so a fresh baseline is recorded. *)
  if
    t.core_last_worker.(w.core) = w.wid
    && quantum_start < t.core_last_end.(w.core) -. 1e-9
  then
    Invariant.fail
      "sched: core %d quantum [%.3f, %.3f] overlaps the previous one ending at %.3f"
      w.core quantum_start w.clock t.core_last_end.(w.core);
  t.core_last_worker.(w.core) <- w.wid;
  t.core_last_end.(w.core) <- w.clock;
  t.check_tick <- t.check_tick + 1;
  if t.check_tick >= machine_check_period then begin
    t.check_tick <- 0;
    Machine.check_invariants t.machine;
    check_work_conservation t
  end

let check_quiescent t =
  check_work_conservation t;
  Array.iter
    (fun w ->
      if t.live = 0 && not (Wsqueue.is_empty w.queue) then
        Invariant.fail
          "sched: no live tasks but worker %d still queues %d of them" w.wid
          (Wsqueue.length w.queue))
    t.workers;
  Machine.check_invariants_full t.machine

let execute t w task =
  if task.ready_at > w.clock && not (Lazy.force planted_skip_ready_clamp) then
    w.clock <- task.ready_at;
  if t.check then check_quantum_start t w task;
  (* the quantum starts here, after the ready-time clamp: idle waiting and
     steal latency before this point belong to no task *)
  let quantum_start = w.clock in
  w.accesses <- 0;
  let pmu = Machine.pmu t.machine in
  (match t.config.task_model with
  | Coroutines { switch_ns } -> w.clock <- w.clock +. switch_ns
  | Os_threads { switch_ns; _ } ->
      (* oversubscription: kernel switching degrades with the ratio of
         runnable threads to cores *)
      let over = float_of_int t.live /. float_of_int (Array.length t.workers) in
      w.clock <- w.clock +. (switch_ns *. Float.max 1.0 over));
  Pmu.incr pmu ~core:w.core Pmu.Context_switch;
  task.last_worker <- w.wid;
  let coro = Option.get task.coro in
  let result = Coroutine.resume coro in
  (* DVFS: a slowed core retires the same work in proportionally more
     virtual time.  Rescaling at quantum end keeps the memory model exact
     (accesses were charged at nominal latency inside the quantum) while
     the task's forward progress per nanosecond drops with core speed. *)
  let speed = Modifiers.core_speed (Machine.modifiers t.machine) w.core in
  if speed <> 1.0 then
    w.clock <- quantum_start +. ((w.clock -. quantum_start) /. speed);
  (match result with
  | Coroutine.Yielded ->
      (* remember the progress point: if a lagging thief later steals this
         task it must resume at or after where it left off, or task-local
         time would run backward *)
      task.ready_at <- w.clock;
      enqueue t task
  | Coroutine.Suspended -> task.ready_at <- w.clock
  | Coroutine.Finished ->
      task.finished <- true;
      t.live <- t.live - 1;
      Pmu.incr pmu ~core:w.core Pmu.Task_executed;
      sample t w.clock;
      let waiters = task.waiters in
      task.waiters <- [];
      List.iter (fun waiter -> ready t ~at:w.clock waiter) waiters);
  w.did_work <- true;
  w.busy_clock <- w.clock;
  (* emit before the policy hook runs: a migration decided at quantum end
     must not retroactively relabel the core this quantum ran on *)
  (match t.trace with
  | Some tr when Trace.enabled tr ->
      Trace.task_quantum tr ~worker:w.wid ~core:w.core ~task_id:task.tid
        ~start_ns:quantum_start ~end_ns:w.clock
  | _ -> ());
  if t.check then check_quantum_end t w task ~quantum_start;
  t.hooks.on_quantum_end t w.wid

(* A core went offline.  Preference order: migrate its worker to the
   nearest free online core; otherwise park the worker dormant and drain
   its queue into the nearest surviving worker.  The last active worker is
   never offlined — the simulation must be able to drain. *)
let handle_core_offline t ~core =
  match worker_of_core t core with
  | None -> ()
  | Some wid ->
      let w = t.workers.(wid) in
      let topo = Machine.topology t.machine in
      let mods = Machine.modifiers t.machine in
      let best = ref (-1) and best_rank = ref max_int in
      Array.iteri
        (fun c owner ->
          if owner = -1 && Modifiers.core_online mods c then begin
            let r = distance_rank topo core c in
            if r < !best_rank then begin
              best_rank := r;
              best := c
            end
          end)
        t.core_owner;
      if !best >= 0 then migrate t ~worker:wid ~core:!best
      else if active_workers t > 1 then begin
        w.offlined <- true;
        w.parked <- true;
        let dest = ref None and dest_rank = ref max_int in
        Array.iter
          (fun w' ->
            if w'.wid <> wid && not w'.offlined then begin
              let r = distance_rank topo core w'.core in
              if r < !dest_rank then begin
                dest_rank := r;
                dest := Some w'
              end
            end)
          t.workers;
        match !dest with
        | None -> ()  (* unreachable: active_workers > 1 *)
        | Some d ->
            w.redirect <- d.wid;
            let rec drain () =
              match Wsqueue.pop_front w.queue with
              | None -> ()
              | Some task ->
                  task.last_worker <- d.wid;
                  Wsqueue.push d.queue task;
                  drain ()
            in
            drain ();
            unpark t d ~at:w.clock
      end

(* A previously offlined core came back.  Only workers that went dormant
   in place are revived; a worker that migrated away stays where it is
   (its old core is simply available again as a migration target). *)
let handle_core_online t ~core ~at =
  match worker_of_core t core with
  | None -> ()
  | Some wid ->
      let w = t.workers.(wid) in
      if w.offlined then begin
        w.offlined <- false;
        w.redirect <- -1;
        if at > w.clock then w.clock <- at;
        w.parked <- true;
        unpark t w ~at
      end

let run t =
  let rec loop () =
    if t.live = 0 then ()
    else begin
      match heap_pop t.heap with
      | None ->
          (* every worker parked while tasks remain: they are all suspended
             with nobody left to wake them *)
          raise Deadlock
      | Some (key, wid) ->
          let w = t.workers.(wid) in
          if w.offlined then
            (* dormant worker's stale heap entry: drop it *)
            loop ()
          else begin
            (* fault pump: [key] is the event-loop frontier — no worker can
               run earlier than it, so faults due at or before it apply
               deterministically here, at a quantum boundary *)
            (match t.on_advance with Some f -> f key | None -> ());
            if w.offlined then loop ()
            else if key < w.clock then begin
              (* stale heap entry; reinsert with the fresh clock *)
              heap_push t.heap w.clock wid;
              loop ()
            end
            else begin
            (match next_task t w with
            | Some task ->
                execute t w task;
                heap_push t.heap w.clock wid
            | None ->
                (* Nothing to run or steal: park until an enqueue wakes us.
                   A short idle advance models the real polling interval. *)
                (match t.trace with
                | Some tr when Trace.enabled tr -> Trace.park tr ~worker:wid ~at_ns:w.clock
                | _ -> ());
                w.clock <- w.clock +. t.config.idle_quantum_ns;
                w.parked <- true);
              loop ()
            end
          end
    end
  in
  loop ();
  if t.check then check_quiescent t;
  Array.fold_left (fun acc w -> if w.did_work then Float.max acc w.busy_clock else acc) 0.0 t.workers

module Ctx = struct
  let sched c = c.csched
  let machine c = c.csched.machine

  let worker c = c.csched.workers.(c.ctask.last_worker)
  let now c = (worker c).clock
  let worker_id c = c.ctask.last_worker
  let core c = (worker c).core
  let rng c = (worker c).wrng
  let current_task c = c.ctask

  let charge c ns =
    let w = worker c in
    w.clock <- w.clock +. ns

  let access_addr c ~write addr =
    let w = worker c in
    let cost = Machine.access c.csched.machine ~core:w.core ~now_ns:w.clock ~write addr in
    w.clock <- w.clock +. cost;
    w.accesses <- w.accesses + 1

  let read c region i =
    access_addr c ~write:false (Simmem.addr region i)

  let write c region i = access_addr c ~write:true (Simmem.addr region i)

  (* Long ranges are charged in bounded chunks with a yield in between so
     concurrent workers stay aligned in virtual time (the DRAM contention
     model bins demand by virtual time, and cooperative scheduling must
     not let one worker race thousands of lines ahead). *)
  let range c ~write region ~lo ~hi =
    let line_bytes = (Machine.topology c.csched.machine).Topology.line_bytes in
    let elems_per_chunk =
      max 1 (c.csched.config.max_accesses_per_quantum * line_bytes / (2 * region.Simmem.elt_bytes))
    in
    let pos = ref lo in
    while !pos < hi do
      let stop = min hi (!pos + elems_per_chunk) in
      let w = worker c in
      let cost =
        Machine.touch_range c.csched.machine ~core:w.core ~now_ns:w.clock ~write
          region ~lo:!pos ~hi:stop
      in
      w.clock <- w.clock +. cost;
      let lines = 1 + (((stop - !pos) * region.Simmem.elt_bytes) / line_bytes) in
      w.accesses <- w.accesses + lines;
      pos := stop;
      if !pos < hi then Coroutine.yield ()
    done

  let read_range c region ~lo ~hi = range c ~write:false region ~lo ~hi
  let write_range c region ~lo ~hi = range c ~write:true region ~lo ~hi
  let work c ns = charge c ns
  let yield _c = Coroutine.yield ()

  let maybe_yield c =
    let w = worker c in
    if w.accesses >= c.csched.config.max_accesses_per_quantum then Coroutine.yield ()

  (* [Coroutine.suspend] hands over the coroutine; the registrar wants the
     scheduler-level task, which owns requeue metadata. *)
  let suspend c register = Coroutine.suspend (fun _coro -> register c.ctask)

  let spawn c ?worker ?at body =
    let t = c.csched in
    let worker = match worker with Some w -> w | None -> c.ctask.last_worker in
    (match t.config.task_model with
    | Coroutines _ -> ()
    | Os_threads { spawn_ns; _ } -> charge c spawn_ns);
    (* causality: a child cannot start before its spawn — without this a
       thief whose clock lags the spawner would run the child "in the
       past", which breaks per-job latency accounting in serving mode *)
    let at = match at with Some at -> at | None -> now c in
    spawn t ~worker ~at body

  let await c task =
    if not task.finished then begin
      suspend c (fun waiter -> task.waiters <- waiter :: task.waiters);
      ()
    end
end

let charge t ~worker ns = t.workers.(worker).clock <- t.workers.(worker).clock +. ns

let sync_clocks t =
  let m = Array.fold_left (fun acc w -> Float.max acc w.clock) 0.0 t.workers in
  Array.iter (fun w -> w.clock <- m) t.workers
