open Chipsim

type access_breakdown = {
  l2_hits : int;
  local_chiplet : int;
  remote_chiplet : int;
  remote_numa : int;
  dram : int;
  invalidations : int;
}

type report = {
  makespan_ns : float;
  accesses : access_breakdown;
  tasks_executed : int;
  tasks_stolen : int;
  migrations : int;
  context_switches : int;
  dram_bytes_per_node : int array;
  avg_bandwidth_gbps : float;
  energy_uj : float;
  compute_energy_uj : float;
}

let breakdown_of_pmu pmu =
  {
    l2_hits = Pmu.total pmu Pmu.L2_hit;
    local_chiplet = Pmu.total pmu Pmu.L3_local_hit;
    remote_chiplet = Pmu.total pmu Pmu.Fill_remote_chiplet;
    remote_numa = Pmu.total pmu Pmu.Fill_remote_numa;
    dram = Pmu.total pmu Pmu.Dram_local + Pmu.total pmu Pmu.Dram_remote;
    invalidations = Pmu.total pmu Pmu.Coherence_invalidation;
  }

let collect machine ~makespan_ns =
  let pmu = Machine.pmu machine in
  let topo = Machine.topology machine in
  let dram_bytes =
    Array.init topo.Topology.sockets (fun node ->
        Machine.dram_bytes_served machine ~node)
  in
  let total_bytes = Array.fold_left ( + ) 0 dram_bytes in
  {
    makespan_ns;
    accesses = breakdown_of_pmu pmu;
    tasks_executed = Pmu.total pmu Pmu.Task_executed;
    tasks_stolen = Pmu.total pmu Pmu.Task_stolen;
    migrations = Pmu.total pmu Pmu.Migration;
    context_switches = Pmu.total pmu Pmu.Context_switch;
    dram_bytes_per_node = dram_bytes;
    avg_bandwidth_gbps =
      (if makespan_ns > 0.0 then float_of_int total_bytes /. makespan_ns else 0.0);
    energy_uj = Machine.total_energy_pj machine /. 1e6;
    compute_energy_uj = Machine.total_compute_energy_pj machine /. 1e6;
  }

let speedup ~baseline report =
  if report.makespan_ns <= 0.0 then invalid_arg "Stats.speedup: zero makespan";
  baseline.makespan_ns /. report.makespan_ns

let throughput ~work_items report =
  if report.makespan_ns <= 0.0 then 0.0
  else float_of_int work_items /. (report.makespan_ns /. 1e9)

let pp ppf r =
  Format.fprintf ppf
    "@[<v>makespan: %.0f ns@ l2=%d local=%d remote-chiplet=%d remote-numa=%d \
     dram=%d inval=%d@ tasks=%d stolen=%d migrations=%d switches=%d@ \
     bandwidth=%.2f GB/s energy=%.1f uJ (mem) + %.1f uJ (compute) = %.1f uJ@]"
    r.makespan_ns r.accesses.l2_hits r.accesses.local_chiplet
    r.accesses.remote_chiplet r.accesses.remote_numa r.accesses.dram
    r.accesses.invalidations r.tasks_executed r.tasks_stolen r.migrations
    r.context_switches r.avg_bandwidth_gbps r.energy_uj r.compute_energy_uj
    (r.energy_uj +. r.compute_energy_uj)
