(** Registry of runnable systems and evaluation machines.

    One-stop construction of an {!Workloads.Exec_env.t} for any
    (system, machine, worker count) combination used in the paper's
    evaluation.  Every call builds a {e fresh} simulated machine so PMU
    counters and caches start cold, as in the paper's per-run methodology. *)

open Chipsim

type machine_kind =
  | Amd_milan  (** dual-socket EPYC Milan 7713 (the default testbed) *)
  | Amd_milan_1s  (** single-socket Milan (§2.3 microbenchmark) *)
  | Intel_spr  (** dual-socket Xeon Platinum 8488C (§5.3) *)
  | Custom of { name : string; topo : Topology.t }
      (** a data-driven topology, e.g. loaded from a [.topo] file; uses
          the default latency profile *)

type sys =
  | Charm
  | Charm_os_threads  (** CHARM placement but std::async-style tasking *)
  | Ring
  | Dw_native
      (** RING-like NUMA-aware placement with DimmWitted's kernel-thread
          tasking (one thread per task, as its engine creates) *)
  | Shoal
  | Asymsched
  | Sam
  | Os_default
  | Local_cache
  | Distributed_cache

val all_baseline_systems : sys list
(** The four comparison systems of §5.1 (plus OS default). *)

val sys_name : sys -> string

val machine_name : machine_kind -> string
(** Short CLI name ("amd", "amd1s", "intel"; a [Custom]'s own name). *)

val topology : machine_kind -> cache_scale:int -> Topology.t
(** [cache_scale] is applied with {!Chipsim.Presets.scale_topology} for
    every kind, including [Custom] — so a preset-as-data file scales
    exactly like its preset-as-code twin. *)

val custom_machine_of_spec : string -> (machine_kind, string) result
(** Build a [Custom] machine from a [--topology] argument: a path to a
    topology file (named after the file), or an inline [';']-separated
    spec (named "custom").  Errors are one line naming what failed. *)

type instance = {
  env : Workloads.Exec_env.t;
  machine : Machine.t;
  charm : Charm.Runtime.t option;  (** present when [sys] is CHARM *)
}

val make :
  ?cache_scale:int ->
  ?charm_config:Charm.Config.t ->
  sys ->
  machine_kind ->
  n_workers:int ->
  unit ->
  instance
(** @raise Invalid_argument if the machine cannot host [n_workers]. *)

val report : instance -> Engine.Stats.report
(** End-of-run statistics (makespan = last run on the instance). *)
