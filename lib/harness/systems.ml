open Chipsim

type machine_kind =
  | Amd_milan
  | Amd_milan_1s
  | Intel_spr
  | Custom of { name : string; topo : Topology.t }

type sys =
  | Charm
  | Charm_os_threads
  | Ring
  | Dw_native
  | Shoal
  | Asymsched
  | Sam
  | Os_default
  | Local_cache
  | Distributed_cache

let all_baseline_systems = [ Ring; Shoal; Asymsched; Sam; Os_default ]

let sys_name = function
  | Charm -> "charm"
  | Charm_os_threads -> "charm+std::async"
  | Ring -> "ring"
  | Dw_native -> "dw-native"
  | Shoal -> "shoal"
  | Asymsched -> "asymsched"
  | Sam -> "sam"
  | Os_default -> "os-default"
  | Local_cache -> "local-cache"
  | Distributed_cache -> "distributed-cache"

let machine_name = function
  | Amd_milan -> "amd"
  | Amd_milan_1s -> "amd1s"
  | Intel_spr -> "intel"
  | Custom { name; _ } -> name

let topology kind ~cache_scale =
  match kind with
  | Amd_milan -> Presets.amd_milan ~scale:cache_scale ()
  | Amd_milan_1s -> Presets.amd_milan_1s ~scale:cache_scale ()
  | Intel_spr -> Presets.intel_spr ~scale:cache_scale ()
  | Custom { topo; _ } -> Presets.scale_topology topo ~scale:cache_scale

(* Custom machines always use the default (AMD-calibrated) latency
   profile: loading spr.topo is the same *geometry* as [-m intel] but not
   the same interconnect timings.  Ship profile selection in the topology
   file if that ever matters. *)
let base_profile = function
  | Amd_milan | Amd_milan_1s | Custom _ -> Latency.default_profile
  | Intel_spr -> Presets.intel_profile

let custom_machine_of_spec spec =
  let looks_like_path =
    String.length spec > 0
    && (Sys.file_exists spec
       || Filename.check_suffix spec ".topo"
       || String.contains spec '/')
  in
  if looks_like_path then
    match Topology.of_file spec with
    | Ok topo ->
        let name = Filename.remove_extension (Filename.basename spec) in
        Ok (Custom { name; topo })
    | Error m -> Error (Printf.sprintf "%s: %s" spec m)
  else
    match Topology.of_string spec with
    | Ok topo -> Ok (Custom { name = "custom"; topo })
    | Error m -> Error m

type instance = {
  env : Workloads.Exec_env.t;
  machine : Machine.t;
  charm : Charm.Runtime.t option;
}

let baseline_spec ~kind = function
  | Ring -> Baselines.Ring.spec ()
  | Dw_native ->
      {
        (Baselines.Ring.spec ()) with
        Baselines.Baseline.name = "dw-native";
        task_model =
          Engine.Sched.Os_threads { spawn_ns = 20_000.0; switch_ns = 2_000.0 };
      }
  | Shoal -> Baselines.Shoal.spec ()
  | Asymsched -> Baselines.Asymsched.spec ()
  | Sam -> Baselines.Sam.spec ~confused:(kind = Intel_spr) ()
  | Os_default -> Baselines.Os_default.spec ()
  | Local_cache -> Baselines.Static_policy.local_cache ()
  | Distributed_cache -> Baselines.Static_policy.distributed_cache ()
  | Charm | Charm_os_threads -> invalid_arg "Systems.baseline_spec: not a baseline"

let make ?(cache_scale = 1) ?charm_config sys kind ~n_workers () =
  let topo = topology kind ~cache_scale in
  match sys with
  | Charm | Charm_os_threads ->
      let machine = Machine.create ~profile:(base_profile kind) topo in
      let sched_config =
        match sys with
        | Charm_os_threads ->
            {
              Engine.Sched.default_config with
              Engine.Sched.task_model =
                Engine.Sched.Os_threads { spawn_ns = 20_000.0; switch_ns = 2_000.0 };
            }
        | _ -> Engine.Sched.default_config
      in
      let rt = Charm.Runtime.init ?config:charm_config ~sched_config machine ~n_workers in
      let env =
        {
          Workloads.Exec_env.name = sys_name sys;
          sched = Charm.Runtime.sched rt;
          alloc_shared =
            (fun ~elt_bytes ~count ->
              Charm.Runtime.alloc_shared rt ~elt_bytes ~count ());
          run = (fun main -> Charm.Runtime.run rt main);
        }
      in
      { env; machine; charm = Some rt }
  | _ ->
      let spec = baseline_spec ~kind sys in
      let profile = spec.Baselines.Baseline.profile_adjust (base_profile kind) in
      let machine = Machine.create ~profile topo in
      let driver = Baselines.Baseline.init spec machine ~n_workers in
      let env =
        {
          Workloads.Exec_env.name = sys_name sys;
          sched = Baselines.Baseline.sched driver;
          alloc_shared =
            (fun ~elt_bytes ~count ->
              Baselines.Baseline.alloc_shared driver ~elt_bytes ~count ());
          run = (fun main -> Baselines.Baseline.run driver main);
        }
      in
      { env; machine; charm = None }

let report instance =
  let sched = instance.env.Workloads.Exec_env.sched in
  let makespan =
    (* max over workers' last busy clocks is what Sched.run returned; the
       cheapest faithful proxy here is the max worker clock *)
    let n = Engine.Sched.n_workers sched in
    let rec go w acc =
      if w >= n then acc
      else go (w + 1) (Float.max acc (Engine.Sched.worker_clock sched w))
    in
    go 0 0.0
  in
  Engine.Stats.collect instance.machine ~makespan_ns:makespan
