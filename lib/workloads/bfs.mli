(** Level-synchronous parallel breadth-first search (paper benchmark
    suite).  Tasks are generated dynamically per frontier chunk — the
    paper's "tasks per active frontier node" decomposition. *)

val run :
  Exec_env.t -> Csr.t -> source:int -> int array * Workload_result.t
(** Returns the level of every vertex (-1 if unreached) and the result;
    [work_items] counts traversed edges. *)

val run_in :
  Engine.Sched.ctx -> Csr.t -> levels:Chipsim.Simmem.region -> source:int ->
  int array * int
(** The same traversal from inside an existing task (one job of a serving
    mix): [levels] is the simulated shadow of the level vector; returns
    the levels and the number of traversed edges. *)

val reference : Csr.t -> source:int -> int array
(** Sequential reference implementation (for correctness tests). *)
