(** Push-style parallel PageRank (fixed iteration count).

    The push phase performs random writes into the next-rank vector —
    cross-chiplet invalidation traffic when the gang is spread — while the
    normalize phase is a sequential sweep.  This mix is what makes PR
    sensitive to placement in paper Fig. 7. *)

val run :
  Exec_env.t -> Csr.t -> ?iterations:int -> ?damping:float -> unit ->
  float array * Workload_result.t
(** Returns final ranks; [work_items] counts edge updates
    (edges x iterations). *)

val run_in :
  Engine.Sched.ctx -> Csr.t ->
  ranks:Chipsim.Simmem.region -> next:Chipsim.Simmem.region ->
  ?iterations:int -> ?damping:float -> unit -> float array * int
(** The same computation from inside an existing task (one job of a
    serving mix); [ranks]/[next] are the simulated shadows of the rank
    vectors.  Returns final ranks and the number of edge updates. *)

val reference : Csr.t -> ?iterations:int -> ?damping:float -> unit -> float array
