module Sched = Engine.Sched

let compute_ns_per_edge = 1.0

let reference g ?(iterations = 3) ?(damping = 0.85) () =
  let n = g.Csr.n in
  let rank = Array.make n (1.0 /. float_of_int n) in
  let next = Array.make n 0.0 in
  for _ = 1 to iterations do
    Array.fill next 0 n 0.0;
    for u = 0 to n - 1 do
      let d = Csr.degree g u in
      if d > 0 then begin
        let share = rank.(u) /. float_of_int d in
        Csr.out_neighbors g u (fun v _w -> next.(v) <- next.(v) +. share)
      end
    done;
    let base = (1.0 -. damping) /. float_of_int n in
    for v = 0 to n - 1 do
      rank.(v) <- base +. (damping *. next.(v))
    done
  done;
  rank

(* The iteration body, runnable from inside any task — the serving layer
   dispatches it as one concurrent job; [run] wraps it as a main task. *)
let run_in ctx g ~ranks ~next:sim_next ?(iterations = 3) ?(damping = 0.85) () =
  let n = g.Csr.n in
  let rank = Array.make n (1.0 /. float_of_int n) in
  let next = Array.make n 0.0 in
  let work = ref 0 in
  for _iter = 1 to iterations do
    Engine.Par.parallel_for ctx ~lo:0 ~hi:n (fun ctx' lo hi ->
        let local_edges = ref 0 in
        for u = lo to hi - 1 do
          let d = Csr.degree g u in
          if d > 0 then begin
            Csr.read_adj ctx' g u;
            Sched.Ctx.read ctx' ranks u;
            let share = rank.(u) /. float_of_int d in
            Csr.out_neighbors g u (fun v _w ->
                incr local_edges;
                next.(v) <- next.(v) +. share;
                Sched.Ctx.write ctx' sim_next v)
          end;
          Sched.Ctx.maybe_yield ctx'
        done;
        Sched.Ctx.work ctx' (compute_ns_per_edge *. float_of_int !local_edges);
        work := !work + !local_edges);
    let base = (1.0 -. damping) /. float_of_int n in
    Engine.Par.parallel_for ctx ~lo:0 ~hi:n (fun ctx' lo hi ->
        Sched.Ctx.read_range ctx' sim_next ~lo ~hi;
        Sched.Ctx.write_range ctx' ranks ~lo ~hi;
        for v = lo to hi - 1 do
          rank.(v) <- base +. (damping *. next.(v));
          next.(v) <- 0.0
        done;
        Sched.Ctx.work ctx' (0.5 *. float_of_int (hi - lo)))
  done;
  (rank, !work)

let run env g ?(iterations = 3) ?(damping = 0.85) () =
  let n = g.Csr.n in
  let sim_rank = env.Exec_env.alloc_shared ~elt_bytes:8 ~count:n in
  let sim_next = env.Exec_env.alloc_shared ~elt_bytes:8 ~count:n in
  let out = ref ([||], 0) in
  let makespan =
    env.Exec_env.run (fun ctx ->
        out := run_in ctx g ~ranks:sim_rank ~next:sim_next ~iterations ~damping ())
  in
  let rank, work = !out in
  (rank, Workload_result.v ~label:"pagerank" ~makespan_ns:makespan ~work_items:work)
