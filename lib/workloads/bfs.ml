module Sched = Engine.Sched

let compute_ns_per_edge = 1.0

let reference g ~source =
  let n = g.Csr.n in
  let level = Array.make n (-1) in
  level.(source) <- 0;
  let q = Queue.create () in
  Queue.add source q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Csr.out_neighbors g u (fun v _w ->
        if level.(v) = -1 then begin
          level.(v) <- level.(u) + 1;
          Queue.add v q
        end)
  done;
  level

(* The level-synchronous traversal itself, runnable from inside any task:
   the serving layer dispatches this as one job among many concurrent ones,
   while [run] below wraps it as a whole-machine main task. *)
let run_in ctx g ~levels ~source =
  let n = g.Csr.n in
  let level = Array.make n (-1) in
  let edges = ref 0 in
  level.(source) <- 0;
  Sched.Ctx.write ctx levels source;
  let frontier = ref [| source |] in
  let depth = ref 0 in
  while Array.length !frontier > 0 do
    let fr = !frontier in
    let next_level = !depth + 1 in
    let workers = Sched.n_workers (Sched.Ctx.sched ctx) in
    let grain = max 16 (Array.length fr / (4 * workers)) in
    (* per-chunk discovered vertices, merged after the barrier *)
    let buffers = ref [] in
    Engine.Par.parallel_for ctx ~lo:0 ~hi:(Array.length fr) ~grain
      (fun ctx' lo hi ->
        let local = ref [] in
        let local_edges = ref 0 in
        for i = lo to hi - 1 do
          let u = fr.(i) in
          Csr.read_adj ctx' g u;
          Csr.out_neighbors g u (fun v _w ->
              incr local_edges;
              Sched.Ctx.read ctx' levels v;
              if level.(v) = -1 then begin
                level.(v) <- next_level;
                Sched.Ctx.write ctx' levels v;
                local := v :: !local
              end);
          Sched.Ctx.maybe_yield ctx'
        done;
        Sched.Ctx.work ctx' (compute_ns_per_edge *. float_of_int !local_edges);
        edges := !edges + !local_edges;
        buffers := !local :: !buffers);
    frontier := Array.of_list (List.concat !buffers);
    incr depth
  done;
  (level, !edges)

let run env g ~source =
  let sim_level = env.Exec_env.alloc_shared ~elt_bytes:8 ~count:g.Csr.n in
  let out = ref ([||], 0) in
  let makespan =
    env.Exec_env.run (fun ctx -> out := run_in ctx g ~levels:sim_level ~source)
  in
  let level, edges = !out in
  (level, Workload_result.v ~label:"bfs" ~makespan_ns:makespan ~work_items:edges)
