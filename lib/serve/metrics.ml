type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let find_or tbl name mk =
  match Hashtbl.find_opt tbl name with
  | Some v -> v
  | None ->
      let v = mk () in
      Hashtbl.add tbl name v;
      v

let incr t ?(by = 1) name =
  let c = find_or t.counters name (fun () -> ref 0) in
  c := !c + by

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some c -> !c | None -> 0

let set_gauge t name v =
  let g = find_or t.gauges name (fun () -> ref 0.0) in
  g := v

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some g -> !g | None -> 0.0

let histogram t name =
  find_or t.histograms name (fun () -> Histogram.create ())

let observe t name v = Histogram.observe (histogram t name) v

(* Merge in sorted-key order so the result (and therefore [to_json]) is
   independent of the hash tables' internal iteration order. *)
let merge dst src =
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (name, c) -> incr dst ~by:!c name) (sorted src.counters);
  List.iter (fun (name, g) -> set_gauge dst name !g) (sorted src.gauges);
  List.iter
    (fun (name, h) -> Histogram.merge (histogram dst name) h)
    (sorted src.histograms)

(* JSON rendering: plain strings in, sorted keys out, no dependencies. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ v) fields) ^ "}"

let hist_json h =
  obj
    [
      ("count", string_of_int (Histogram.count h));
      ("mean", json_float (Histogram.mean h));
      ("p50", json_float (Histogram.p50 h));
      ("p95", json_float (Histogram.p95 h));
      ("p99", json_float (Histogram.p99 h));
      ("p999", json_float (Histogram.p999 h));
      ("max", json_float (if Histogram.count h = 0 then 0.0 else Histogram.max_value h));
    ]

let json_of_float = json_float
let json_escape = escape
let json_of_histogram = hist_json

let to_json t =
  obj
    [
      ( "counters",
        obj (List.map (fun (k, c) -> (k, string_of_int !c)) (sorted_bindings t.counters)) );
      ( "gauges",
        obj (List.map (fun (k, g) -> (k, json_float !g)) (sorted_bindings t.gauges)) );
      ( "histograms",
        obj (List.map (fun (k, h) -> (k, hist_json h)) (sorted_bindings t.histograms)) );
    ]
