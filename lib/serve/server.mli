(** The online serving loop: turn a {!Harness.Systems} instance into a
    multi-tenant job server.

    Per tenant, an arrival process ({!Arrivals}) submits jobs of a
    configured kind mix; an admission controller ({!Admission}) sheds
    arrivals beyond the queue bounds; admitted jobs wait in a weighted
    fair queue ({!Fair_queue}) until one of [max_inflight] service slots
    frees, then run as scheduler tasks dispatched through
    {!Engine.Future} — so many jobs overlap on the simulated machine and
    the placement policy under test (CHARM or a baseline) decides where
    their cache traffic lands.  Everything is driven by virtual time and
    seeded RNG streams: equal configurations give byte-identical reports.

    Observability: per-tenant latency/queue-wait histograms, SLO-violation
    and shed counters, and a {!Metrics} registry fed by the serving loop,
    by a scheduler-hook wrapper (quantum counts — installed around the
    policy's own hooks via {!Engine.Sched.hooks}), by {!Core.Profiler}
    fill counters when serving under CHARM, and by {!Engine.Trace} when a
    trace sink is attached. *)

type tenant_config = {
  name : string;
  weight : float;  (** fair-queue share *)
  slo_factor : float;
      (** SLO threshold as a multiple of the tenant's mean job cost
          estimate turned into ns (see {!Job.cost_estimate}); violations
          are counted per completed job *)
  process : Arrivals.process;
  jobs : int;  (** total jobs this tenant submits *)
  mix : (Job.kind * int) list;  (** kinds with relative weights *)
}

type config = {
  tenants : tenant_config list;
  admission : Admission.config;
      (** nominal bounds; at each arrival they are scaled by the machine's
          current {!Chipsim.Modifiers.online_capacity}, so core-offline or
          DVFS faults shrink the queues and shed load early *)
  max_inflight : int;  (** concurrent jobs in service *)
  seed : int;
  data : Job.data_config;
  trace : Engine.Trace.t option;
      (** when present, wired through every layer for the run: scheduler
          quantum/steal/park/migration events (plus policy, controller and
          memory-manager events under CHARM), job lifecycle instants
          (admit/shed/start/finish) and a periodic machine-wide fill-class
          counter track sampled every 50 us of virtual time *)
  on_complete :
    (tenant:string -> kind:Job.kind -> submit_ns:float -> finish_ns:float -> unit)
      option;
      (** called at every job completion with its arrival and finish
          virtual timestamps — lets experiment drivers (the fault bench)
          window latencies over the run without relying on the bounded
          trace ring *)
  check : bool;
      (** run the serving layer's executable invariants (and turn on the
          scheduler's, {!Engine.Sched.set_check}): every arrival is either
          admitted or shed, every admitted job completes and is sampled in
          exactly one latency histogram, the fair queue drains, and the
          registry's global counters agree with the per-tenant ledgers.  A
          violation raises {!Chipsim.Invariant.Violation}.  Default off. *)
}

val default_config : seed:int -> config
(** Three open-loop tenants (graph / OLAP / OLTP+GUPS mixes) with weights
    2:1:1 at 5000 jobs/s each, 40 jobs per tenant. *)

type tenant_report = {
  tenant : string;
  submitted : int;
  admitted : int;
  shed : int;
  completed : int;
  slo_ns : float;
  slo_violations : int;
  latency : Histogram.t;  (** sojourn time: completion - arrival, ns *)
  queue_wait : Histogram.t;  (** dispatch - arrival, ns *)
}

type report = {
  makespan_ns : float;
  tenant_reports : tenant_report list;  (** in configuration order *)
  registry : Metrics.t;
  stats : Engine.Stats.report;  (** machine-level fills, migrations, ... *)
}

val run : Harness.Systems.instance -> config -> report
(** Run the full serving experiment on a fresh instance.
    @raise Invalid_argument on an empty tenant list, an empty mix,
    [max_inflight < 1], or non-positive weights/jobs. *)

val report_to_json : report -> string
(** Deterministic JSON: run summary, per-tenant percentiles and SLO/shed
    counts, fill-location breakdown, and the full metrics registry. *)
