(** The online serving loop: turn a {!Harness.Systems} instance into a
    multi-tenant job server.

    Per tenant, an arrival process ({!Arrivals}) submits jobs of a
    configured kind mix; an admission controller ({!Admission}) sheds
    arrivals beyond the queue bounds; admitted jobs wait in a weighted
    fair queue ({!Fair_queue}) until one of [max_inflight] service slots
    frees, then run as scheduler tasks dispatched through
    {!Engine.Future} — so many jobs overlap on the simulated machine and
    the placement policy under test (CHARM or a baseline) decides where
    their cache traffic lands.  Everything is driven by virtual time and
    seeded RNG streams: equal configurations give byte-identical reports.

    Observability: per-tenant latency/queue-wait histograms, SLO-violation
    and shed counters, and a {!Metrics} registry fed by the serving loop,
    by a scheduler-hook wrapper (quantum counts — installed around the
    policy's own hooks via {!Engine.Sched.hooks}), by {!Core.Profiler}
    fill counters when serving under CHARM, and by {!Engine.Trace} when a
    trace sink is attached. *)

type tenant_config = {
  name : string;
  weight : float;  (** fair-queue share *)
  slo_factor : float;
      (** SLO threshold as a multiple of the tenant's mean job cost
          estimate turned into ns (see {!Job.cost_estimate}); violations
          are counted per completed job *)
  process : Arrivals.process;
  jobs : int;  (** total jobs this tenant submits *)
  mix : (Job.kind * int) list;  (** kinds with relative weights *)
  replicas : int;
      (** run each job this many times on distinct chiplets and vote on
          the result tokens ({!Replica}); 1 = no redundancy.  A replica
          group occupies one inflight slot and completes once (when its
          last replica finishes), so admission and latency see one job.
          Requested degrees beyond the machine's worker-hosting chiplet
          count are clamped. *)
}

type config = {
  tenants : tenant_config list;
  admission : Admission.config;
      (** nominal bounds; at each arrival they are scaled by the machine's
          current {!Chipsim.Modifiers.online_capacity}, so core-offline or
          DVFS faults shrink the queues and shed load early *)
  max_inflight : int;  (** concurrent jobs in service *)
  seed : int;
  data : Job.data_config;
  trace : Engine.Trace.t option;
      (** when present, wired through every layer for the run: scheduler
          quantum/steal/park/migration events (plus policy, controller and
          memory-manager events under CHARM), job lifecycle instants
          (admit/shed/start/finish) and a periodic machine-wide fill-class
          counter track sampled every 50 us of virtual time *)
  on_complete :
    (tenant:string -> kind:Job.kind -> submit_ns:float -> finish_ns:float -> unit)
      option;
      (** called at every job completion with its arrival and finish
          virtual timestamps — lets experiment drivers (the fault bench)
          window latencies over the run without relying on the bounded
          trace ring *)
  check : bool;
      (** run the serving layer's executable invariants (and turn on the
          scheduler's, {!Engine.Sched.set_check}): every arrival is either
          admitted or shed, every admitted job completes and is sampled in
          exactly one latency histogram, the fair queue drains, and the
          registry's global counters agree with the per-tenant ledgers.  A
          violation raises {!Chipsim.Invariant.Violation}.  Default off. *)
}

val default_config : seed:int -> config
(** Three open-loop tenants (graph / OLAP / OLTP+GUPS mixes) with weights
    2:1:1 at 5000 jobs/s each, 40 jobs per tenant. *)

type tenant_report = {
  tenant : string;
  submitted : int;
  admitted : int;
  shed : int;
  completed : int;
  relocated_out : int;
      (** admitted jobs pulled back out of the queue by a fleet router
          (0 outside fleet mode); [completed + relocated_out = admitted] *)
  relocated_in : int;  (** arrivals that were relocations from another shard *)
  slo_ns : float;
  slo_violations : int;
  latency : Histogram.t;  (** sojourn time: completion - arrival, ns *)
  queue_wait : Histogram.t;  (** dispatch - arrival, ns *)
  energy_uj : float;
      (** machine energy (memory + compute) attributed to this tenant by
          completion-time delta attribution; 0 unless energy accounting
          is on ({!Engine.Sched.set_energy} — memory energy accrues
          regardless, so this can be nonzero even without [--energy]).
          Growth not claimed by any completion lands in the registry
          gauge [serve.energy_overhead_uj]; tenant shares + overhead =
          machine growth exactly (checked under [check]) *)
  replicas : int;  (** configured redundancy degree *)
  divergences : int;
      (** replica groups whose tokens were not unanimous (equals injected
          corruptions consumed, absent a voting bug) *)
}

type report = {
  makespan_ns : float;
  tenant_reports : tenant_report list;  (** in configuration order *)
  registry : Metrics.t;
  stats : Engine.Stats.report;  (** machine-level fills, migrations, ... *)
}

val run : Harness.Systems.instance -> config -> report
(** Run the full serving experiment on a fresh instance.
    @raise Invalid_argument on an empty tenant list, an empty mix,
    [max_inflight < 1], or non-positive weights/jobs. *)

(** An externally-driven serving session — the fleet tier's view of one
    machine.

    [run] above drives arrivals in-sim to completion; a [Session] instead
    lets a cluster router drive the machine epoch by epoch: {!Session.submit}
    pushes routed jobs through the shard's own admission control,
    {!Session.drain} advances the simulation dispatching only jobs that
    can start before a horizon (so queues persist across epochs under
    overload), and {!Session.drop_queued} pulls still-queued jobs back
    out for relocation when the shard degrades.  {!Session.finish} must
    be called exactly once, after a final drain with an infinite
    horizon. *)
module Session : sig
  type t

  type relocatable = {
    r_id : int;  (** cluster-unique job id, preserved across relocation *)
    r_tenant : int;  (** tenant index (fleet shards share the tenant list) *)
    r_kind : Job.kind;
    r_seed : int;
    r_submit_ns : float;  (** original arrival instant — latency is
                              measured from first submission, so a
                              relocated job pays for its detour *)
  }

  val create : Harness.Systems.instance -> config -> t
  (** Prepare datasets, tenant ledgers and observability hooks; arrival
      processes in the config are ignored ([submit] drives arrivals).
      @raise Invalid_argument as {!run}. *)

  val submit :
    t -> tenant:int -> job_id:int -> arrival:float -> kind:Job.kind ->
    job_seed:int -> Admission.decision
  (** Offer one job to the shard's admission controller at virtual time
      [arrival].  Admitted jobs queue until the next {!drain}.
      @raise Invalid_argument on a tenant index out of range. *)

  val drain : t -> horizon:float -> kick_ns:float -> unit
  (** Run the shard's scheduler until every dispatched job completes,
      dispatching only queued jobs whose start time (clamped to their
      arrival) is before [horizon].  [kick_ns] is the virtual time the
      dispatcher wakes (normally the epoch start).  No-op when nothing
      is queued. *)

  val drop_queued : t -> relocatable list
  (** Remove every still-queued (admitted, not dispatched) job, crediting
      each tenant's [relocated_out] ledger; in-flight and completed jobs
      are untouched.  The caller re-submits them elsewhere. *)

  val note_relocated_in : t -> tenant:int -> unit
  (** Record that the next [submit] for this tenant is a relocation
      (ledger only; out-of-range indices are ignored). *)

  val queue_length : t -> int
  val tenant_queue_depth : t -> tenant:int -> int

  val queued_cost : t -> float
  (** Estimated service demand queued on the shard (tenant depth x mean
      mix cost) — a router load signal. *)

  val backlog_ns : t -> float
  (** Max worker clock: how far the shard's virtual time has advanced. *)

  val cost_estimate : t -> Job.kind -> float
  val registry : t -> Metrics.t
  val instance : t -> Harness.Systems.instance

  val finish : t -> report
  (** Tear down hooks, fold profiler/machine statistics into the registry
      and build the report; with [check] set, verifies the serving
      invariants including the relocation ledger
      ([completed + relocated_out = admitted]). *)
end

val report_to_json : report -> string
(** Deterministic JSON: run summary, per-tenant percentiles and SLO/shed
    counts, fill-location breakdown, and the full metrics registry. *)
