type 'a entry = { start : float; finish : float; seq : int; payload : 'a }

type 'a tenant_state = {
  weight : float;
  mutable last_finish : float;
  q : 'a entry Queue.t;
}

type 'a t = {
  tenants : (int, 'a tenant_state) Hashtbl.t;
  mutable ids : int list;  (* sorted, for deterministic scans *)
  mutable vtime : float;
  mutable next_seq : int;
  mutable size : int;
}

let create () =
  { tenants = Hashtbl.create 8; ids = []; vtime = 0.0; next_seq = 0; size = 0 }

let add_tenant t ~tenant ~weight =
  if weight <= 0.0 then invalid_arg "Fair_queue.add_tenant: weight <= 0";
  if Hashtbl.mem t.tenants tenant then
    invalid_arg "Fair_queue.add_tenant: duplicate tenant";
  Hashtbl.add t.tenants tenant { weight; last_finish = 0.0; q = Queue.create () };
  t.ids <- List.sort compare (tenant :: t.ids)

let push t ~tenant ~cost payload =
  if cost < 0.0 then invalid_arg "Fair_queue.push: negative cost";
  match Hashtbl.find_opt t.tenants tenant with
  | None -> invalid_arg "Fair_queue.push: unknown tenant"
  | Some st ->
      let start = Float.max t.vtime st.last_finish in
      let finish = start +. (cost /. st.weight) in
      st.last_finish <- finish;
      Queue.add { start; finish; seq = t.next_seq; payload } st.q;
      t.next_seq <- t.next_seq + 1;
      t.size <- t.size + 1

let select t =
  let best = ref None in
  List.iter
    (fun id ->
      let st = Hashtbl.find t.tenants id in
      match Queue.peek_opt st.q with
      | None -> ()
      | Some e -> (
          match !best with
          | Some (_, b) when (b.finish, b.seq) <= (e.finish, e.seq) -> ()
          | _ -> best := Some (id, e)))
    t.ids;
  !best

let peek t =
  match select t with None -> None | Some (id, e) -> Some (id, e.payload)

let pop t =
  match select t with
  | None -> None
  | Some (id, e) ->
      let st = Hashtbl.find t.tenants id in
      ignore (Queue.pop st.q);
      t.size <- t.size - 1;
      t.vtime <- Float.max t.vtime e.start;
      Some (id, e.payload)

let length t = t.size

let tenant_depth t ~tenant =
  match Hashtbl.find_opt t.tenants tenant with
  | None -> 0
  | Some st -> Queue.length st.q
