type process =
  | Open_loop of { rate_per_s : float }
  | Closed_loop of { clients : int; think_ns : float }

let pp_process ppf = function
  | Open_loop { rate_per_s } -> Format.fprintf ppf "open-loop %.1f jobs/s" rate_per_s
  | Closed_loop { clients; think_ns } ->
      Format.fprintf ppf "closed-loop %d clients, think %.0f ns" clients think_ns

let poisson_times ~rng ~rate_per_s ~jobs =
  if rate_per_s <= 0.0 then invalid_arg "Arrivals.poisson_times: rate <= 0";
  if jobs < 0 then invalid_arg "Arrivals.poisson_times: jobs < 0";
  let mean_gap_ns = 1e9 /. rate_per_s in
  let times = Array.make jobs 0.0 in
  let t = ref 0.0 in
  for i = 0 to jobs - 1 do
    (* inverse-CDF exponential; [Rng.float] is in [0, 1) so [1 - u] never
       hits 0 and the log stays finite *)
    let u = Engine.Rng.float rng 1.0 in
    t := !t +. (-.mean_gap_ns *. log (1.0 -. u));
    times.(i) <- !t
  done;
  times
