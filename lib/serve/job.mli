(** The unit of admission: one job of a known kind over shared datasets.

    Serving runs thousands of small requests against datasets that are
    loaded once ({!prepare}) — the multi-tenant analogue of the paper's
    one-shot workloads: BFS and PageRank reuse [lib/workloads]' in-task
    kernels over one shared graph, TPC-H queries run against one shared
    column store, YCSB batches hit one shared table through the OLTP
    engine, and GUPS batches pound one shared update table. *)

type kind =
  | Bfs  (** one traversal from a per-job pseudorandom source *)
  | Pagerank  (** a short fixed-iteration PageRank *)
  | Gups of int  (** that many random read-modify-writes *)
  | Tpch of int  (** one of the 22 TPC-H-shaped queries *)
  | Ycsb_batch of int  (** that many paper-mix transactions *)
  | Dag of Taskgraph.Graph.shape * int
      (** one generated task-DAG inference job of that shape with that
          many layers, mapped per {!data_config.dag_comm_aware} and
          executed through {!Taskgraph.Exec} *)

val kind_name : kind -> string
(** ["bfs"], ["pagerank"], ["gups:N"], ["tpch:Q"], ["ycsb:N"],
    ["dag:SHAPE:LAYERS"]. *)

val kind_of_string : string -> kind option
(** Inverse of {!kind_name}; also accepts the bare ["pr"], ["gups"],
    ["tpch"], ["ycsb"], ["dag"] with default sizes and ["dag:SHAPE"]
    with the default layer count. *)

type data_config = {
  graph_scale : int;  (** log2 vertices of the shared Kronecker graph *)
  edge_factor : int;
  tpch_sf : float;
  ycsb_records : int;
  gups_table_words : int;
  pagerank_iterations : int;
  dag_comm_aware : bool;
      (** map task-DAG jobs with the communication-aware mapper (default)
          instead of the blind round-robin baseline *)
  seed : int;  (** dataset-generation seed *)
}

val default_data_config : data_config
(** Small datasets sized for serving experiments (scale-10 graph,
    SF 0.002 TPC-H, 4 Ki-record YCSB table). *)

type data

val prepare : Workloads.Exec_env.t -> data_config -> data
(** Allocate and populate every shared dataset through the environment's
    shared allocator (so placement policy applies to serving data too). *)

val graph : data -> Workloads.Csr.t

val cost_estimate : data -> kind -> float
(** Rough service demand (arbitrary units, consistent across kinds) used
    as the weighted-fair-queue cost and for SLO scaling; a pure function
    of the prepared datasets. *)

val run : Engine.Sched.ctx -> data -> seed:int -> kind -> int
(** Execute one job inside the calling task; nested parallelism fans out
    over the machine via the scheduler.  [seed] individualises the job
    (BFS source, GUPS/YCSB key streams).  Returns the work items done
    (edges, updates, rows, transactions).
    @raise Invalid_argument on [Tpch q] with [q] outside [1..22] or
    non-positive batch sizes. *)

val run_replica : Engine.Sched.ctx -> data -> seed:int -> replica:int -> kind -> int
(** {!run} for the [replica]-th member of a replica group (0 = primary).
    Identical to {!run} for every kind except [Dag], where the replica
    ordinal rotates the usable-chiplet preference so redundant DAG
    executions map their nodes onto different silicon. *)

val worker_chiplets : Engine.Sched.ctx -> int array option
(** Chiplets that currently host a scheduler worker ([None] if none was
    found, leaving the caller its default).  DAG mapping and replica
    placement restrict themselves to these. *)
