type config = { max_queue_per_tenant : int; max_global_queue : int }

let default = { max_queue_per_tenant = 64; max_global_queue = 256 }

type decision = Admit | Shed_tenant_full | Shed_server_full

let decision_name = function
  | Admit -> "admit"
  | Shed_tenant_full -> "shed-tenant-full"
  | Shed_server_full -> "shed-server-full"

let decide cfg ~tenant_depth ~global_depth =
  if tenant_depth >= cfg.max_queue_per_tenant then Shed_tenant_full
  else if global_depth >= cfg.max_global_queue then Shed_server_full
  else Admit

(* Degradation-aware bounds: queue limits exist to bound waiting time, so
   when the machine can only deliver [capacity] of its nominal compute
   (offline or DVFS-throttled cores), the same wait bound needs
   proportionally shorter queues. *)
let scale cfg ~capacity =
  let capacity = Float.max 0.0 (Float.min 1.0 capacity) in
  let s b = max 1 (int_of_float (Float.ceil (float_of_int b *. capacity))) in
  {
    max_queue_per_tenant = s cfg.max_queue_per_tenant;
    max_global_queue = s cfg.max_global_queue;
  }
