type config = { max_queue_per_tenant : int; max_global_queue : int }

let default = { max_queue_per_tenant = 64; max_global_queue = 256 }

type decision = Admit | Shed_tenant_full | Shed_server_full

let decision_name = function
  | Admit -> "admit"
  | Shed_tenant_full -> "shed-tenant-full"
  | Shed_server_full -> "shed-server-full"

let decide cfg ~tenant_depth ~global_depth =
  if tenant_depth >= cfg.max_queue_per_tenant then Shed_tenant_full
  else if global_depth >= cfg.max_global_queue then Shed_server_full
  else Admit
