(** Counter / gauge / histogram metrics registry.

    The serving layer's single sink for observability: admission decisions,
    scheduler quanta, profiler fill counts and latency distributions all
    land here under dotted string names, and {!to_json} renders the whole
    registry deterministically (keys sorted, no wall-clock anywhere) so two
    runs with equal seeds produce byte-identical output. *)

type t

val create : unit -> t

(** {2 Counters} — monotonically increasing integers. *)

val incr : t -> ?by:int -> string -> unit
val counter_value : t -> string -> int
(** 0 if the counter was never incremented. *)

(** {2 Gauges} — last-write-wins floats. *)

val set_gauge : t -> string -> float -> unit
val gauge_value : t -> string -> float
(** 0. if the gauge was never set. *)

(** {2 Histograms} *)

val histogram : t -> string -> Histogram.t
(** Get-or-create (default {!Histogram.create} parameters). *)

val observe : t -> string -> float -> unit
(** [observe t name v] = [Histogram.observe (histogram t name) v]. *)

(** {2 Merging} *)

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst]: counters add, gauges take
    [src]'s value (last write wins, matching {!set_gauge}), histograms
    merge sample-by-bucket.  [src] is not modified.  Used to aggregate
    per-shard registries into one fleet-level registry.
    @raise Invalid_argument if a histogram name exists in both with
    incompatible bucket parameters. *)

(** {2 Export} *)

val to_json : t -> string
(** The registry as a JSON object
    [{"counters": {..}, "gauges": {..}, "histograms": {..}}] with keys in
    sorted order; histograms render count/mean/p50/p95/p99/max. *)

(** {2 JSON building blocks} — shared with report renderers so every
    number in the serving layer is formatted identically. *)

val json_of_float : float -> string
val json_escape : string -> string
val json_of_histogram : Histogram.t -> string
