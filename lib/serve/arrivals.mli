(** Job arrival processes for the serving layer.

    Open-loop arrivals are a Poisson process at a configured offered load:
    exponential inter-arrival gaps drawn from a private {!Engine.Rng}
    stream, so arrival times are a pure function of the seed and two runs
    of the same configuration replay the identical trace.  Closed-loop
    mode models a fixed client population with think time; its timing
    emerges from job completions inside the scheduler, so only the
    population parameters live here. *)

type process =
  | Open_loop of { rate_per_s : float }
      (** Poisson arrivals at [rate_per_s] jobs per second of virtual
          time, independent of completions (load keeps coming when the
          server falls behind — the regime where admission control
          matters). *)
  | Closed_loop of { clients : int; think_ns : float }
      (** [clients] sequential issuers, each submitting its next job
          [think_ns] after its previous one completed. *)

val pp_process : Format.formatter -> process -> unit

val poisson_times : rng:Engine.Rng.t -> rate_per_s:float -> jobs:int -> float array
(** [jobs] arrival timestamps in virtual ns, strictly increasing from the
    first exponential gap onward.  Consumes [jobs] draws from [rng].
    @raise Invalid_argument if [rate_per_s <= 0.] or [jobs < 0]. *)
