type t = {
  min_value : float;
  growth : float;
  log_growth : float;
  mutable counts : int array;  (* grown on demand *)
  mutable total : int;
  mutable sum : float;
  mutable max_v : float;
}

let create ?(min_value = 1.0) ?(growth = 1.12) () =
  if min_value <= 0.0 then invalid_arg "Histogram.create: min_value <= 0";
  if growth <= 1.0 then invalid_arg "Histogram.create: growth <= 1";
  {
    min_value;
    growth;
    log_growth = log growth;
    counts = Array.make 32 0;
    total = 0;
    sum = 0.0;
    max_v = neg_infinity;
  }

(* Hard cap on the bucket index: [int_of_float] on the huge (or infinite)
   result of the log formula is unspecified, and a single absurd sample
   must not allocate an unbounded counts array.  With growth 1.12 bucket
   4096 already covers > 10^201 x min_value, so nothing real clamps. *)
let max_bucket = 4096

(* bucket 0 = (-inf, min_value]; bucket i>0 = (min_value*g^(i-1), min_value*g^i] *)
let bucket_of t v =
  if Float.is_nan v then 0
  else if v <= t.min_value then 0
  else if v >= t.min_value *. (t.growth ** float_of_int max_bucket) then
    max_bucket
  else
    min max_bucket
      (1 + int_of_float (Float.floor (log (v /. t.min_value) /. t.log_growth)))

let bucket_upper t i =
  if i = 0 then t.min_value else t.min_value *. (t.growth ** float_of_int i)

let ensure t i =
  let n = Array.length t.counts in
  if i >= n then begin
    let counts = Array.make (max (i + 1) (2 * n)) 0 in
    Array.blit t.counts 0 counts 0 n;
    t.counts <- counts
  end

let observe t v =
  let i = bucket_of t v in
  ensure t i;
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v > t.max_v then t.max_v <- v

let count t = t.total
let sum t = t.sum
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
let max_value t = t.max_v

let quantile t q =
  if t.total = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.total))) in
    let i = ref 0 and seen = ref 0 in
    while !seen < rank do
      seen := !seen + t.counts.(!i);
      if !seen < rank then incr i
    done;
    Float.min (bucket_upper t !i) t.max_v
  end

let p50 t = quantile t 0.50
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99
let p999 t = quantile t 0.999

let merge dst src =
  if dst.min_value <> src.min_value || dst.growth <> src.growth then
    invalid_arg "Histogram.merge: incompatible bucket parameters";
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        ensure dst i;
        dst.counts.(i) <- dst.counts.(i) + c
      end)
    src.counts;
  dst.total <- dst.total + src.total;
  dst.sum <- dst.sum +. src.sum;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v
