(** Weighted fair queueing across tenants (start-time fair queueing).

    Each tenant owns a FIFO of pending jobs; every pushed job gets a
    virtual start tag [max (queue virtual time, tenant's last finish)] and
    a finish tag [start + cost / weight].  {!pop} serves the smallest
    finish tag (sequence number breaks ties, so order is total and
    deterministic) and advances the queue's virtual time to the served
    job's start tag.  A tenant with weight 2 therefore drains twice as
    fast as a weight-1 tenant under equal per-job cost, and an idle tenant
    accumulates no credit. *)

type 'a t

val create : unit -> 'a t

val add_tenant : 'a t -> tenant:int -> weight:float -> unit
(** Register [tenant] (any small non-negative id).
    @raise Invalid_argument if the weight is not positive or the tenant
    already exists. *)

val push : 'a t -> tenant:int -> cost:float -> 'a -> unit
(** Enqueue a job whose service demand is estimated at [cost] (any unit,
    as long as it is consistent across tenants).
    @raise Invalid_argument on an unknown tenant or negative cost. *)

val pop : 'a t -> (int * 'a) option
(** The next (tenant, job) in weighted-fair order; [None] when empty. *)

val peek : 'a t -> (int * 'a) option
(** What {!pop} would return, without removing it or advancing virtual
    time — used by dispatchers that must stall (not reorder) when the
    head job is not yet eligible to start. *)

val length : 'a t -> int
val tenant_depth : 'a t -> tenant:int -> int
(** 0 for unknown tenants. *)
