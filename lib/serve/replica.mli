(** Resource-aware replicated execution: deterministic result tokens,
    corruption, and voting.

    Critical tenants run each job [k] times on distinct chiplets (see
    {!Server}; the fleet router co-schedules whole groups).  Every
    replica derives a {!token} — a pure function of the job's seed and
    kind, so replicas agree by construction — then a [corruption] fault
    ({!Chipsim.Modifiers.take_corruption}) may flip one bit of one
    replica's token, and {!vote} masks the poisoned minority.  The token
    is deliberately {e not} derived from the job's computed values:
    replicas share the mutable job scratch (BFS levels, PageRank ranks),
    so value-derived tokens would diverge spuriously under interleaving.

    Placement spreads each group over distinct worker-hosting chiplets in
    the spirit of resource-aware replication on heterogeneous multicores:
    replicas land on different silicon, so a per-chiplet fault (or a
    power-capped hot chiplet) degrades at most one vote. *)

val token : job_seed:int -> kind:string -> int64
(** Deterministic result token (splitmix64 over seed and kind name). *)

val corrupt : int64 -> seed:int -> int64
(** Seeded single-bit flip — the injected silent-data-corruption model. *)

val vote : int64 array -> int64
(** Plurality winner with a deterministic tie-break (lowest replica index
    first).  Under the planted bug [CHARM_CHECK_PLANT=vote-skip] (read
    per call) it returns replica 0's token unchecked — the defect the
    replica-agreement invariant and the fuzzer gate must catch.
    @raise Invalid_argument on an empty group. *)

val majority : int64 array -> int64
(** The honest plurality computation, never subject to the plant —
    checkers recompute it to audit {!vote}.
    @raise Invalid_argument on an empty group. *)

val unanimous : int64 array -> bool
(** All tokens equal — must hold absent injected corruption. *)

val placement : chiplets:int array -> job_id:int -> replicas:int -> int array
(** Distinct chiplets for one group, rotated by [job_id] so successive
    groups spread over the machine.  Clamped to [length chiplets]: a
    machine with fewer worker-hosting chiplets than requested replicas
    cannot give more genuinely independent placements.
    @raise Invalid_argument on an empty chiplet set or [replicas < 1]. *)

val worker_on : Engine.Sched.t -> Chipsim.Topology.t -> chiplet:int -> int option
(** First scheduler worker hosted on the chiplet — the pin target. *)
