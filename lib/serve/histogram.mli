(** Log-bucketed latency histogram.

    Bucket boundaries grow geometrically from [min_value], so a fixed,
    small number of integer counters covers nanoseconds to seconds with a
    bounded relative error of [growth - 1] per quantile.  This is the
    HdrHistogram idea reduced to what the serving layer needs: cheap
    [observe], deterministic quantiles, mergeability. *)

type t

val create : ?min_value:float -> ?growth:float -> unit -> t
(** [min_value] is the upper bound of the first bucket (default 1.0, i.e.
    1 ns when observing latencies in ns); [growth] is the geometric bucket
    ratio (default 1.12, ~12%% worst-case quantile error).
    @raise Invalid_argument if [min_value <= 0.] or [growth <= 1.]. *)

val observe : t -> float -> unit
(** Record one sample.  Negative and NaN samples count into the first
    bucket; astronomically large (or infinite) samples clamp into a fixed
    top bucket, so a single absurd value can neither overflow the bucket
    computation nor allocate an unbounded counts array. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]]: the upper bound of the bucket
    holding the [ceil (q * count)]-th smallest sample, clamped to the
    largest sample seen (so [quantile t 1.0 <= max_value t]).  0 when
    empty.  Deterministic: depends only on the multiset of samples. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float

val p999 : t -> float
(** The 99.9th percentile — the serving-tail metric SLO reports quote. *)

val merge : t -> t -> unit
(** [merge dst src] adds [src]'s samples into [dst].
    @raise Invalid_argument if the two histograms have different bucket
    parameters. *)
