module Sched = Engine.Sched
module Topology = Chipsim.Topology

(* A replica's result token is a pure function of what the job computes
   over — its seed and kind — NOT of the shared mutable scratch the job
   kernels run in (BFS levels, PageRank ranks): replicas of one job share
   that scratch, so value-derived tokens would diverge spuriously when
   replicas interleave.  Corruption faults poison the token explicitly
   instead, which is exactly the silent-data-corruption model: the
   computation "ran fine" but the result is wrong. *)
let token ~job_seed ~kind =
  (* splitmix64 finalizer over the seed, offset by the kind's hash *)
  let z =
    Int64.add (Int64.of_int job_seed)
      (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (1 + Hashtbl.hash kind)))
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let corrupt tok ~seed = Int64.logxor tok (Int64.shift_left 1L (abs seed mod 63))

(* Plurality vote with a deterministic tie-break: among equally common
   tokens the one observed first (lowest replica index) wins.  O(k^2)
   over replica groups of 2-5 — no hashing, no allocation. *)
let majority tokens =
  if Array.length tokens = 0 then invalid_arg "Replica.majority: no replicas";
  let n = Array.length tokens in
  let best = ref tokens.(0) and best_count = ref 0 in
  for i = 0 to n - 1 do
    let c = ref 0 in
    for j = 0 to n - 1 do
      if Int64.equal tokens.(j) tokens.(i) then incr c
    done;
    if !c > !best_count then begin
      best_count := !c;
      best := tokens.(i)
    end
  done;
  !best

(* Read per call, NOT once per process: the fuzzer's planted-bug gate and
   the unit tests flip the variable between runs inside one binary. *)
let plant_vote_skip () =
  Sys.getenv_opt "CHARM_CHECK_PLANT" = Some "vote-skip"

let vote tokens =
  if Array.length tokens = 0 then invalid_arg "Replica.vote: no replicas";
  if plant_vote_skip () then tokens.(0) else majority tokens

let unanimous tokens =
  Array.for_all (fun t -> Int64.equal t tokens.(0)) tokens

(* Distinct chiplets for one replica group, rotated by job id so
   successive groups spread over the machine instead of always hammering
   the same chiplets.  Clamps to the chiplets that actually host workers:
   a 2-chiplet machine caps every group at 2 genuinely independent
   placements — pretending otherwise would just co-locate replicas. *)
let placement ~chiplets ~job_id ~replicas =
  let n = Array.length chiplets in
  if n = 0 then invalid_arg "Replica.placement: no chiplets";
  if replicas < 1 then invalid_arg "Replica.placement: replicas < 1";
  let k = min replicas n in
  Array.init k (fun r -> chiplets.((job_id + r) mod n))

(* first worker hosted on the chiplet, the pin target for a replica *)
let worker_on sched topo ~chiplet =
  List.find_map
    (fun core -> Sched.worker_of_core sched core)
    (Topology.cores_of_chiplet topo chiplet)
