(** CLI spec parsing for the serving layer.

    Shared by [charm_serve] and tests so malformed [--tenant],
    [--shard-machines] and [--faults-shard] arguments fail with a
    one-line error naming the offending field rather than a silent
    default or an exception. *)

val parse_tenant :
  string -> (string * float * (Job.kind * int) list, string) result
(** Parse a ["name:weight:kind+kind+..."] tenant spec (kind names may
    themselves contain [':'], e.g. [tpch:3] or the task-graph class
    [dag:inception:3] — shape then layer count, both optional:
    [dag] ≡ [dag:chain:6]).  Each kind gets mix weight 1. *)

val parse_replication : string -> (string * int, string) result
(** Parse a ["NAME:DEGREE"] replication spec ([--replicate]); the name is
    matched against configured tenants by the caller.  Degree must be a
    positive integer (splits on the {e last} [':'], so tenant names with
    colons survive). *)

val parse_shard_machines :
  ?fallback:(string -> ('a, string) result) ->
  machines:(string * 'a) list ->
  string ->
  ('a list, string) result
(** Parse a comma-separated machine-name list against a name table.
    Entries not in the table are handed to [fallback] (e.g.
    [Harness.Systems.custom_machine_of_spec], so a fleet can mix machine
    presets with topology-file shards); without a fallback, or when it
    also fails, the error names both rejections. *)

val parse_shard_fault : string -> (int * string, string) result
(** Parse a ["SHARD:SPEC"] entry; the fault spec itself is parsed later
    against the shard's topology. *)
