module Sched = Engine.Sched
module Future = Engine.Future
module Systems = Harness.Systems
module Machine = Chipsim.Machine
module Pmu = Chipsim.Pmu

type tenant_config = {
  name : string;
  weight : float;
  slo_factor : float;
  process : Arrivals.process;
  jobs : int;
  mix : (Job.kind * int) list;
  replicas : int;
      (* 1 = plain execution; k > 1 runs every job k times on distinct
         chiplets and votes on the result tokens (critical tenants) *)
}

type config = {
  tenants : tenant_config list;
  admission : Admission.config;
  max_inflight : int;
  seed : int;
  data : Job.data_config;
  trace : Engine.Trace.t option;
  on_complete :
    (tenant:string -> kind:Job.kind -> submit_ns:float -> finish_ns:float -> unit)
      option;
  check : bool;
}

let default_config ~seed =
  let open_loop rate = Arrivals.Open_loop { rate_per_s = rate } in
  {
    tenants =
      [
        {
          name = "graph";
          weight = 2.0;
          slo_factor = 3.0;
          process = open_loop 5000.0;
          jobs = 40;
          mix = [ (Job.Bfs, 2); (Job.Pagerank, 1) ];
          replicas = 1;
        };
        {
          name = "olap";
          weight = 1.0;
          slo_factor = 3.0;
          process = open_loop 5000.0;
          jobs = 40;
          mix = [ (Job.Tpch 1, 1); (Job.Tpch 3, 1); (Job.Tpch 6, 1) ];
          replicas = 1;
        };
        {
          name = "oltp";
          weight = 1.0;
          slo_factor = 3.0;
          process = open_loop 5000.0;
          jobs = 40;
          mix = [ (Job.Ycsb_batch 256, 2); (Job.Gups 4096, 1) ];
          replicas = 1;
        };
      ];
    admission = Admission.default;
    max_inflight = 4;
    seed;
    data = Job.default_data_config;
    trace = None;
    on_complete = None;
    check = false;
  }

type tenant_report = {
  tenant : string;
  submitted : int;
  admitted : int;
  shed : int;
  completed : int;
  relocated_out : int;
  relocated_in : int;
  slo_ns : float;
  slo_violations : int;
  latency : Histogram.t;
  queue_wait : Histogram.t;
  energy_uj : float;
  replicas : int;
  divergences : int;
}

type report = {
  makespan_ns : float;
  tenant_reports : tenant_report list;
  registry : Metrics.t;
  stats : Engine.Stats.report;
}

(* per-tenant mutable serving state *)
type tenant_state = {
  cfg_t : tenant_config;
  idx : int;
  mix_rng : Engine.Rng.t;  (** kind choice + per-job seeds *)
  arrival_rng : Engine.Rng.t;
  slo : float;
  mutable submitted : int;
  mutable admitted : int;
  mutable shed : int;
  mutable completed : int;
  mutable relocated_out : int;
  mutable relocated_in : int;
  mutable slo_violations : int;
  lat_hist : Histogram.t;
  wait_hist : Histogram.t;
  mutable energy_pj : float;
      (** machine energy attributed to this tenant (completion-time delta
          attribution; see [complete]) *)
  mutable divergences : int;  (** replica groups whose tokens disagreed *)
}

type pending = {
  id : int;  (** submission order, unique across tenants *)
  tenant : int;
  kind : Job.kind;
  job_seed : int;
  submit_ns : float;
  done_f : float Future.t;  (** fulfilled with the completion timestamp *)
}

type relocatable = {
  r_id : int;
  r_tenant : int;
  r_kind : Job.kind;
  r_seed : int;
  r_submit_ns : float;
}

let pick_kind st =
  let total = List.fold_left (fun a (_, w) -> a + w) 0 st.cfg_t.mix in
  let r = Engine.Rng.int st.mix_rng total in
  let rec go acc = function
    | [] -> assert false
    | (k, w) :: rest -> if r < acc + w then k else go (acc + w) rest
  in
  go 0 st.cfg_t.mix

let validate cfg =
  if cfg.tenants = [] then invalid_arg "Server.run: no tenants";
  if cfg.max_inflight < 1 then invalid_arg "Server.run: max_inflight < 1";
  List.iter
    (fun t ->
      if t.weight <= 0.0 then invalid_arg "Server.run: tenant weight <= 0";
      if t.jobs <= 0 then invalid_arg "Server.run: tenant jobs <= 0";
      if t.mix = [] then invalid_arg "Server.run: empty job mix";
      if List.exists (fun (_, w) -> w <= 0) t.mix then
        invalid_arg "Server.run: non-positive mix weight";
      if t.replicas < 1 then invalid_arg "Server.run: tenant replicas < 1")
    cfg.tenants

(* End-of-run conservation: arrivals all accounted, every admitted job
   completed or relocated away (the scheduler drained), histogram sample
   counts match the jobs that produced them, and the registry's global
   counters agree with the per-tenant ledgers. *)
let check_report ~registry ~fq tenants =
  let fail = Chipsim.Invariant.fail in
  Array.iter
    (fun st ->
      let name = st.cfg_t.name in
      if st.submitted <> st.admitted + st.shed then
        fail "serve: tenant %s saw %d arrivals but admitted %d + shed %d" name
          st.submitted st.admitted st.shed;
      if st.completed + st.relocated_out <> st.admitted then
        fail "serve: tenant %s admitted %d jobs but completed %d + relocated %d"
          name st.admitted st.completed st.relocated_out;
      if Histogram.count st.lat_hist <> st.completed then
        fail "serve: tenant %s recorded %d latency samples for %d completions"
          name (Histogram.count st.lat_hist) st.completed;
      if Histogram.count st.wait_hist <> st.admitted - st.relocated_out then
        fail "serve: tenant %s recorded %d queue-wait samples for %d dispatches"
          name (Histogram.count st.wait_hist) (st.admitted - st.relocated_out);
      if st.slo_violations > st.completed then
        fail "serve: tenant %s counts %d SLO violations over %d completions"
          name st.slo_violations st.completed)
    tenants;
  if Fair_queue.length fq <> 0 then
    fail "serve: %d jobs still queued after the run drained"
      (Fair_queue.length fq);
  let sum f = Array.fold_left (fun acc st -> acc + f st) 0 tenants in
  let counter = Metrics.counter_value registry in
  if counter "serve.submitted" <> sum (fun st -> st.submitted) then
    fail "serve: registry counts %d submissions, tenants %d"
      (counter "serve.submitted")
      (sum (fun st -> st.submitted));
  if counter "serve.admitted" <> sum (fun st -> st.admitted) then
    fail "serve: registry counts %d admissions, tenants %d"
      (counter "serve.admitted")
      (sum (fun st -> st.admitted));
  if counter "serve.shed" <> sum (fun st -> st.shed) then
    fail "serve: registry counts %d sheds, tenants %d" (counter "serve.shed")
      (sum (fun st -> st.shed));
  if counter "serve.completed" <> sum (fun st -> st.completed) then
    fail "serve: registry counts %d completions, tenants %d"
      (counter "serve.completed")
      (sum (fun st -> st.completed));
  if counter "serve.relocated_out" <> sum (fun st -> st.relocated_out) then
    fail "serve: registry counts %d relocations out, tenants %d"
      (counter "serve.relocated_out")
      (sum (fun st -> st.relocated_out))

(* Energy conservation: tenant attributions plus the overhead residual
   must reproduce the machine's combined (memory + compute) energy growth
   exactly — delta attribution guarantees it up to float re-association,
   so the tolerance is 1e-6 relative, not a loose band. *)
let check_energy ~machine ~base_energy_pj ~overhead_pj tenants =
  let fail = Chipsim.Invariant.fail in
  let attributed =
    Array.fold_left (fun acc st -> acc +. st.energy_pj) 0.0 tenants
  in
  let growth = Machine.combined_energy_pj machine -. base_energy_pj in
  let tol = 1e-6 *. Float.max 1.0 growth in
  if Float.abs (attributed +. overhead_pj -. growth) > tol then
    fail
      "serve: %.1f pJ attributed + %.1f pJ overhead but the machine grew \
       %.1f pJ"
      attributed overhead_pj growth;
  Array.iter
    (fun st ->
      if (not (Float.is_finite st.energy_pj)) || st.energy_pj < 0.0 then
        fail "serve: tenant %s energy meter reads %g pJ" st.cfg_t.name
          st.energy_pj)
    tenants

(* -- serving session ----------------------------------------------------

   All of the serving loop's mutable state, so a run can be driven two
   ways: [run] drives arrivals in-sim to completion on one machine, and
   the fleet tier drives N sessions epoch-by-epoch — submitting routed
   jobs from outside, draining each shard up to a dispatch horizon, and
   pulling queued jobs back out when a shard degrades. *)
type session = {
  inst : Systems.instance;
  cfg : config;
  sched : Sched.t;
  env : Workloads.Exec_env.t;
  data : Job.data;
  registry : Metrics.t;
  tenants : tenant_state array;
  fq : pending Fair_queue.t;
  inflight : int ref;
  next_job_id : int ref;
  base_hooks : Sched.hooks;
  mutable horizon : float;
      (** dispatch horizon: queued jobs whose (clamped) start time would
          reach this are left queued — epoch-driven callers use it to
          stop dispatch at the epoch boundary *)
  mutable makespan : float;
  base_energy_pj : float;
      (** machine combined energy when the session started (a reused
          machine arrives with history; only growth is attributable) *)
  mutable last_energy_pj : float;
      (** high-water mark of attributed energy: the delta since the last
          completion is charged to the tenant completing now, the
          residual past the final completion lands in the overhead
          bucket — so tenant + overhead = machine growth by
          construction *)
  mutable corruptions_consumed : int;
      (** armed corruption seeds actually consumed by replica tokens *)
}

let create inst cfg =
  validate cfg;
  let env = inst.Systems.env in
  let sched = env.Workloads.Exec_env.sched in
  if cfg.check then Sched.set_check sched true;
  let registry = Metrics.create () in
  Metrics.set_gauge registry "serve.effective_capacity"
    (Chipsim.Modifiers.online_capacity (Machine.modifiers inst.Systems.machine));
  let data = Job.prepare env cfg.data in
  let tenants =
    List.mapi
      (fun idx t ->
        let mean_cost =
          let num, den =
            List.fold_left
              (fun (num, den) (k, w) ->
                (num +. (float_of_int w *. Job.cost_estimate data k), den + w))
              (0.0, 0) t.mix
          in
          num /. float_of_int den
        in
        {
          cfg_t = t;
          idx;
          mix_rng = Engine.Rng.create ((cfg.seed * 31) + (2 * idx));
          arrival_rng = Engine.Rng.create ((cfg.seed * 31) + (2 * idx) + 1);
          slo = t.slo_factor *. mean_cost;
          submitted = 0;
          admitted = 0;
          shed = 0;
          completed = 0;
          relocated_out = 0;
          relocated_in = 0;
          slo_violations = 0;
          lat_hist = Metrics.histogram registry ("tenant." ^ t.name ^ ".latency_ns");
          wait_hist = Metrics.histogram registry ("tenant." ^ t.name ^ ".queue_wait_ns");
          energy_pj = 0.0;
          divergences = 0;
        })
      cfg.tenants
    |> Array.of_list
  in
  let fq = Fair_queue.create () in
  Array.iter (fun st -> Fair_queue.add_tenant fq ~tenant:st.idx ~weight:st.cfg_t.weight) tenants;

  (* trace sink: under CHARM wire every layer (scheduler, policy,
     controller, memory manager); baselines get the scheduler events *)
  (match cfg.trace with
  | Some tr -> (
      match inst.Systems.charm with
      | Some rt -> Charm.Runtime.attach_trace rt tr
      | None -> Sched.set_trace sched (Some tr))
  | None -> ());

  (* observability hooks: count scheduler quanta and, when tracing, sample
     the machine-wide fill-class counters once per interval of virtual
     time — the Fig. 3 time series the policy consumes — around the
     placement policy's own hooks *)
  let base_hooks = Sched.hooks sched in
  let counter_interval_ns = 50_000.0 in
  let last_fills = ref Pmu.zero_fill_classes in
  let last_fills_ns = ref 0.0 in
  Sched.set_hooks sched
    {
      base_hooks with
      Sched.on_quantum_end =
        (fun s w ->
          Metrics.incr registry "sched.quanta";
          (match cfg.trace with
          | Some tr when Engine.Trace.enabled tr ->
              let now = Sched.worker_clock s w in
              if now -. !last_fills_ns >= counter_interval_ns then begin
                let fills = Pmu.fill_classes (Machine.pmu inst.Systems.machine) in
                let d = Pmu.fill_classes_delta ~before:!last_fills ~after:fills in
                Engine.Trace.counter tr ~name:"fills" ~at_ns:now
                  ~series:
                    [
                      ("local", float_of_int d.Pmu.fc_local);
                      ("remote_chiplet", float_of_int d.Pmu.fc_remote_chiplet);
                      ("remote_numa", float_of_int d.Pmu.fc_remote_numa);
                      ("dram", float_of_int d.Pmu.fc_dram);
                    ];
                last_fills := fills;
                last_fills_ns := now
              end
          | _ -> ());
          base_hooks.Sched.on_quantum_end s w);
    };
  {
    inst;
    cfg;
    sched;
    env;
    data;
    registry;
    tenants;
    fq;
    inflight = ref 0;
    next_job_id = ref 0;
    base_hooks;
    horizon = infinity;
    makespan = 0.0;
    base_energy_pj = Machine.combined_energy_pj inst.Systems.machine;
    last_energy_pj = Machine.combined_energy_pj inst.Systems.machine;
    corruptions_consumed = 0;
  }

let trace_job sess ~phase ~tenant ~kind ~job_id ~at_ns =
  match sess.cfg.trace with
  | Some tr when Engine.Trace.enabled tr ->
      Engine.Trace.job tr ~phase ~tenant ~kind:(Job.kind_name kind) ~job_id ~at_ns
  | _ -> ()

(* dispatcher: drain the fair queue into at most [max_inflight]
   concurrently running jobs, each a future-dispatched scheduler task.
   Stalls (without reordering — [peek], not pop-and-requeue, which would
   perturb the fair queue's virtual-time tags) when the head job cannot
   start before the dispatch horizon. *)
let rec pump sess ctx =
  if !(sess.inflight) < sess.cfg.max_inflight then
    match Fair_queue.peek sess.fq with
    | None -> ()
    | Some (tidx, p) ->
        (* a job cannot start before it arrived: clamp the dispatch time
           so a thief worker with a lagging clock cannot run it "in the
           past" and produce negative latencies *)
        let start_at = Float.max (Sched.Ctx.now ctx) p.submit_ns in
        if start_at >= sess.horizon then ()
        else begin
          ignore (Fair_queue.pop sess.fq : (int * pending) option);
          let st = sess.tenants.(tidx) in
          incr sess.inflight;
          Metrics.set_gauge sess.registry "serve.inflight"
            (float_of_int !(sess.inflight));
          Histogram.observe st.wait_hist (start_at -. p.submit_ns);
          trace_job sess ~phase:Engine.Trace.Start ~tenant:st.cfg_t.name
            ~kind:p.kind ~job_id:p.id ~at_ns:start_at;
          if st.cfg_t.replicas <= 1 then
            ignore
              (Future.spawn_at ctx ~at:start_at (fun ctx' ->
                   let items = Job.run ctx' sess.data ~seed:p.job_seed p.kind in
                   complete sess ctx' st p items)
                : unit Future.t)
          else dispatch_replicated sess ctx st p ~start_at;
          pump sess ctx
        end

(* Replicated dispatch: the group occupies ONE inflight slot and
   completes once, when its last replica finishes — admission, fair
   queueing and latency see one job, redundancy is purely an execution
   concern.  Replicas pin to distinct chiplets ({!Replica.placement}), so
   a per-chiplet fault or a power-throttled hot chiplet degrades at most
   one vote. *)
and dispatch_replicated sess ctx st p ~start_at =
  let sched = Sched.Ctx.sched ctx in
  let topo = Machine.topology sess.inst.Systems.machine in
  let group =
    match Job.worker_chiplets ctx with
    | Some chiplets ->
        Replica.placement ~chiplets ~job_id:p.id ~replicas:st.cfg_t.replicas
    | None -> [| 0 |]
  in
  let k = Array.length group in
  let tokens = Array.make k 0L in
  let primary_items = ref 0 in
  let remaining = ref k in
  (* one armed corruption poisons one group; the victim replica index is
     derived from the seed, not from execution order, so a given fault
     spec always corrupts the same replica — tests and the planted-bug
     gate rely on [corrupt:SEED] with [SEED mod k = 0] hitting the
     primary *)
  let corrupt_at =
    match
      Chipsim.Modifiers.take_corruption
        (Machine.modifiers sess.inst.Systems.machine)
    with
    | Some seed ->
        sess.corruptions_consumed <- sess.corruptions_consumed + 1;
        Metrics.incr sess.registry "serve.replica.corruptions";
        Some (abs seed mod k, seed)
    | None -> None
  in
  let corrupted = match corrupt_at with Some _ -> 1 | None -> 0 in
  Metrics.incr sess.registry "serve.replica.groups";
  Array.iteri
    (fun r chiplet ->
      let worker = Replica.worker_on sched topo ~chiplet in
      ignore
        (Future.spawn_at ctx ?worker ~at:start_at (fun ctx' ->
             let items =
               Job.run_replica ctx' sess.data ~seed:p.job_seed ~replica:r p.kind
             in
             (* metrics count the primary's work; redundant items are
                overhead, not service *)
             if r = 0 then primary_items := items;
             let tok =
               Replica.token ~job_seed:p.job_seed ~kind:(Job.kind_name p.kind)
             in
             let tok =
               match corrupt_at with
               | Some (victim, seed) when victim = r -> Replica.corrupt tok ~seed
               | _ -> tok
             in
             tokens.(r) <- tok;
             decr remaining;
             if !remaining = 0 then
               finish_group sess ctx' st p ~tokens ~corrupted
                 ~items:!primary_items)
          : unit Future.t))
    group

and finish_group sess ctx st p ~tokens ~corrupted ~items =
  let voted = Replica.vote tokens in
  if not (Replica.unanimous tokens) then begin
    st.divergences <- st.divergences + 1;
    Metrics.incr sess.registry "serve.replica.divergent";
    if Int64.equal voted (Replica.majority tokens) then
      Metrics.incr sess.registry "serve.replica.masked";
    match sess.cfg.trace with
    | Some tr when Engine.Trace.enabled tr ->
        Engine.Trace.instant tr
          ~name:
            (Printf.sprintf
               "replica divergence: tenant %s job %d (%d of %d corrupted)"
               st.cfg_t.name p.id corrupted (Array.length tokens))
          ~at_ns:(Sched.Ctx.now ctx)
    | _ -> ()
  end;
  if sess.cfg.check then begin
    (* replica-agreement invariants (Check.Invariants): the voted result
       must match the honest plurality — the vote-skip plant trips this
       whenever replica 0 holds the poisoned minority token — and
       divergence is impossible without an injected corruption *)
    if not (Int64.equal voted (Replica.majority tokens)) then
      Chipsim.Invariant.fail
        "serve: tenant %s job %d voted token %Lx but the plurality is %Lx"
        st.cfg_t.name p.id voted (Replica.majority tokens);
    if corrupted = 0 && not (Replica.unanimous tokens) then
      Chipsim.Invariant.fail
        "serve: tenant %s job %d replicas diverged without injected corruption"
        st.cfg_t.name p.id
  end;
  complete sess ctx st p items

and complete sess ctx st p items =
  let fin = Sched.Ctx.now ctx in
  (* completion-time delta attribution: whatever the machine's combined
     energy meter grew since the last completion is charged to the tenant
     completing now.  Coarse (concurrent jobs blur into each other) but
     exactly conservative: tenant shares + the end-of-run overhead
     residual sum to the machine's growth by construction *)
  let e = Machine.combined_energy_pj sess.inst.Systems.machine in
  st.energy_pj <- st.energy_pj +. (e -. sess.last_energy_pj);
  sess.last_energy_pj <- e;
  let latency = fin -. p.submit_ns in
  trace_job sess ~phase:Engine.Trace.Finish ~tenant:st.cfg_t.name ~kind:p.kind
    ~job_id:p.id ~at_ns:fin;
  decr sess.inflight;
  st.completed <- st.completed + 1;
  Histogram.observe st.lat_hist latency;
  Metrics.observe sess.registry "serve.latency_ns" latency;
  Metrics.incr sess.registry "serve.completed";
  Metrics.incr sess.registry ~by:items "serve.work_items";
  Metrics.incr sess.registry ("serve.jobs." ^ Job.kind_name p.kind);
  if latency > st.slo then begin
    st.slo_violations <- st.slo_violations + 1;
    Metrics.incr sess.registry ("tenant." ^ st.cfg_t.name ^ ".slo_violations")
  end;
  (match sess.cfg.on_complete with
  | Some f ->
      f ~tenant:st.cfg_t.name ~kind:p.kind ~submit_ns:p.submit_ns ~finish_ns:fin
  | None -> ());
  Future.fulfill ctx p.done_f fin;
  pump sess ctx

(* Shared admission path.  [job_seed] individualises the job; the in-sim
   driver draws it from the tenant's mix RNG only on admission (shed
   arrivals must not consume draws), external drivers supply it. *)
let admit_or_shed sess st ~job_id ~arrival ~kind ~seed_of =
  let now = arrival in
  (* arrival conservation, checked before this arrival is counted: every
     prior submission was either admitted or shed, never both or neither *)
  if sess.cfg.check && st.submitted <> st.admitted + st.shed then
    Chipsim.Invariant.fail
      "serve: tenant %s saw %d arrivals but admitted %d + shed %d"
      st.cfg_t.name st.submitted st.admitted st.shed;
  st.submitted <- st.submitted + 1;
  Metrics.incr sess.registry "serve.submitted";
  (* degradation-aware admission: queue bounds shrink with the machine's
     effective compute capacity (offline / DVFS-throttled cores), so a
     faulted machine sheds early instead of queueing work it cannot
     drain within the wait bound *)
  let capacity =
    Chipsim.Modifiers.online_capacity (Machine.modifiers sess.inst.Systems.machine)
  in
  Metrics.set_gauge sess.registry "serve.effective_capacity" capacity;
  let decision =
    Admission.decide
      (Admission.scale sess.cfg.admission ~capacity)
      ~tenant_depth:(Fair_queue.tenant_depth sess.fq ~tenant:st.idx)
      ~global_depth:(Fair_queue.length sess.fq)
  in
  match decision with
  | Admission.Admit ->
      st.admitted <- st.admitted + 1;
      Metrics.incr sess.registry "serve.admitted";
      trace_job sess ~phase:Engine.Trace.Admit ~tenant:st.cfg_t.name ~kind
        ~job_id ~at_ns:now;
      let p =
        {
          id = job_id;
          tenant = st.idx;
          kind;
          job_seed = seed_of ();
          submit_ns = now;
          done_f = Future.create ();
        }
      in
      Fair_queue.push sess.fq ~tenant:st.idx
        ~cost:(Job.cost_estimate sess.data kind)
        p;
      Metrics.set_gauge sess.registry "serve.queue_depth"
        (float_of_int (Fair_queue.length sess.fq));
      (decision, Some p)
  | (Admission.Shed_tenant_full | Admission.Shed_server_full) as d ->
      st.shed <- st.shed + 1;
      trace_job sess ~phase:Engine.Trace.Shed ~tenant:st.cfg_t.name ~kind
        ~job_id ~at_ns:now;
      Metrics.incr sess.registry "serve.shed";
      Metrics.incr sess.registry ("serve.shed." ^ Admission.decision_name d);
      Metrics.incr sess.registry ("tenant." ^ st.cfg_t.name ^ ".shed");
      (d, None)

(* [arrival] is the job's nominal arrival instant: the Poisson timestamp
   for open-loop tenants (latency is measured from offered arrival, even
   if the acceptor task processed it late), the client's clock for
   closed-loop ones *)
let submit_in_sim sess ctx st ~arrival kind =
  let job_id = !(sess.next_job_id) in
  incr sess.next_job_id;
  match
    admit_or_shed sess st ~job_id ~arrival ~kind ~seed_of:(fun () ->
        Engine.Rng.int st.mix_rng 0x3FFFFFFF)
  with
  | _, Some p ->
      pump sess ctx;
      p.done_f
  | _, None ->
      (* back-pressure signal: the caller's future resolves immediately,
         so closed-loop clients retry after their think time *)
      let f = Future.create () in
      Future.fulfill ctx f arrival;
      f

let submit_external sess ~tenant ~job_id ~arrival ~kind ~job_seed =
  if tenant < 0 || tenant >= Array.length sess.tenants then
    invalid_arg "Server.Session.submit: tenant index out of range";
  fst
    (admit_or_shed sess sess.tenants.(tenant) ~job_id ~arrival ~kind
       ~seed_of:(fun () -> job_seed))

let drain sess ~horizon ~kick_ns =
  sess.horizon <- horizon;
  if Fair_queue.length sess.fq > 0 then begin
    ignore (Sched.spawn sess.sched ~at:kick_ns (fun ctx -> pump sess ctx) : Sched.task);
    let m = Sched.run sess.sched in
    sess.makespan <- Float.max sess.makespan m
  end

let drop_queued sess =
  let rec go acc =
    match Fair_queue.pop sess.fq with
    | None -> List.rev acc
    | Some (tidx, p) ->
        let st = sess.tenants.(tidx) in
        st.relocated_out <- st.relocated_out + 1;
        Metrics.incr sess.registry "serve.relocated_out";
        go
          ({
             r_id = p.id;
             r_tenant = tidx;
             r_kind = p.kind;
             r_seed = p.job_seed;
             r_submit_ns = p.submit_ns;
           }
          :: acc)
  in
  let dropped = go [] in
  Metrics.set_gauge sess.registry "serve.queue_depth"
    (float_of_int (Fair_queue.length sess.fq));
  dropped

let note_relocated_in sess ~tenant =
  if tenant >= 0 && tenant < Array.length sess.tenants then begin
    let st = sess.tenants.(tenant) in
    st.relocated_in <- st.relocated_in + 1;
    Metrics.incr sess.registry "serve.relocated_in"
  end

let queue_length sess = Fair_queue.length sess.fq
let tenant_queue_depth sess ~tenant = Fair_queue.tenant_depth sess.fq ~tenant

let queued_cost sess =
  (* Fair_queue does not expose iteration, so approximate the queued
     service demand as depth x mean mix cost per tenant — stable,
     deterministic and monotone with the real backlog. *)
  let total = ref 0.0 in
  Array.iter
    (fun st ->
      let mean_cost =
        let num, den =
          List.fold_left
            (fun (num, den) (k, w) ->
              (num +. (float_of_int w *. Job.cost_estimate sess.data k), den + w))
            (0.0, 0) st.cfg_t.mix
        in
        num /. float_of_int den
      in
      (* a replicated tenant's queued job will run [replicas] times *)
      total :=
        !total
        +. (float_of_int (Fair_queue.tenant_depth sess.fq ~tenant:st.idx)
           *. mean_cost
           *. float_of_int st.cfg_t.replicas))
    sess.tenants;
  !total

let backlog_ns sess =
  let m = ref 0.0 in
  for w = 0 to Sched.n_workers sess.sched - 1 do
    m := Float.max !m (Sched.worker_clock sess.sched w)
  done;
  !m

let cost_estimate sess kind = Job.cost_estimate sess.data kind
let session_registry sess = sess.registry
let session_instance sess = sess.inst

let finish sess =
  Sched.set_hooks sess.sched sess.base_hooks;
  (* flow end-of-run profiler / trace / machine statistics into the registry *)
  (match sess.inst.Systems.charm with
  | Some rt ->
      let prof = Charm.Runtime.profiler rt in
      for w = 0 to Charm.Runtime.n_workers rt - 1 do
        let s = Charm.Profiler.cumulative prof ~worker:w in
        Metrics.incr sess.registry ~by:s.Charm.Profiler.local_hits "profiler.local_hits";
        Metrics.incr sess.registry ~by:s.Charm.Profiler.remote_chiplet "profiler.remote_chiplet";
        Metrics.incr sess.registry ~by:s.Charm.Profiler.remote_numa "profiler.remote_numa";
        Metrics.incr sess.registry ~by:s.Charm.Profiler.dram "profiler.dram"
      done
  | None -> ());
  (match sess.cfg.trace with
  | Some tr ->
      Metrics.set_gauge sess.registry "trace.events"
        (float_of_int (Engine.Trace.num_events tr))
  | None -> ());
  let stats = Systems.report sess.inst in
  let acc = stats.Engine.Stats.accesses in
  Metrics.incr sess.registry ~by:acc.Engine.Stats.local_chiplet "fills.local_chiplet";
  Metrics.incr sess.registry ~by:acc.Engine.Stats.remote_chiplet "fills.remote_chiplet";
  Metrics.incr sess.registry ~by:acc.Engine.Stats.remote_numa "fills.remote_numa";
  Metrics.incr sess.registry ~by:acc.Engine.Stats.dram "fills.dram";
  Metrics.set_gauge sess.registry "serve.makespan_ns" sess.makespan;
  (* energy: growth not claimed by any completion (startup, idle spin,
     trailing work past the last completion) is the overhead residual *)
  let machine = sess.inst.Systems.machine in
  let final_e = Machine.combined_energy_pj machine in
  let overhead_pj = final_e -. sess.last_energy_pj in
  Metrics.set_gauge sess.registry "serve.energy_uj"
    ((final_e -. sess.base_energy_pj) /. 1e6);
  Metrics.set_gauge sess.registry "serve.energy_overhead_uj"
    (overhead_pj /. 1e6);
  Array.iter
    (fun st ->
      Metrics.set_gauge sess.registry
        ("tenant." ^ st.cfg_t.name ^ ".energy_uj")
        (st.energy_pj /. 1e6))
    sess.tenants;
  let tenant_reports =
    Array.to_list sess.tenants
    |> List.map (fun st ->
           {
             tenant = st.cfg_t.name;
             submitted = st.submitted;
             admitted = st.admitted;
             shed = st.shed;
             completed = st.completed;
             relocated_out = st.relocated_out;
             relocated_in = st.relocated_in;
             slo_ns = st.slo;
             slo_violations = st.slo_violations;
             latency = st.lat_hist;
             queue_wait = st.wait_hist;
             energy_uj = st.energy_pj /. 1e6;
             replicas = st.cfg_t.replicas;
             divergences = st.divergences;
           })
  in
  if sess.cfg.check then begin
    check_report ~registry:sess.registry ~fq:sess.fq sess.tenants;
    check_energy ~machine ~base_energy_pj:sess.base_energy_pj ~overhead_pj
      sess.tenants
  end;
  {
    makespan_ns = sess.makespan;
    tenant_reports;
    registry = sess.registry;
    stats;
  }

module Session = struct
  type t = session

  type nonrec relocatable = relocatable = {
    r_id : int;
    r_tenant : int;
    r_kind : Job.kind;
    r_seed : int;
    r_submit_ns : float;
  }

  let create = create
  let submit = submit_external
  let drain = drain
  let drop_queued = drop_queued
  let note_relocated_in = note_relocated_in
  let queue_length = queue_length
  let tenant_queue_depth = tenant_queue_depth
  let queued_cost = queued_cost
  let backlog_ns = backlog_ns
  let cost_estimate = cost_estimate
  let registry = session_registry
  let instance = session_instance
  let finish = finish
end

let run inst cfg =
  let sess = create inst cfg in
  (* drive: one source per tenant, spawned from the main task *)
  let makespan =
    sess.env.Workloads.Exec_env.run (fun ctx ->
        Array.iter
          (fun st ->
            match st.cfg_t.process with
            | Arrivals.Open_loop { rate_per_s } ->
                let times =
                  Arrivals.poisson_times ~rng:st.arrival_rng ~rate_per_s
                    ~jobs:st.cfg_t.jobs
                in
                let n = Array.length times in
                (* chain the source: each arrival schedules the next, so at
                   most one future-ready task per tenant exists at a time.
                   Spawning the whole schedule upfront lets idle thieves
                   steal far-future arrivals, drag their clocks forward,
                   and later finish stolen job fragments "in the future" —
                   inflating every measured latency *)
                let rec arrive k ctx' =
                  if k + 1 < n then
                    ignore
                      (Sched.Ctx.spawn ctx' ~at:times.(k + 1) (arrive (k + 1))
                        : Sched.task);
                  let kind = pick_kind st in
                  ignore
                    (submit_in_sim sess ctx' st ~arrival:times.(k) kind
                      : float Future.t)
                in
                if n > 0 then
                  ignore (Sched.Ctx.spawn ctx ~at:times.(0) (arrive 0) : Sched.task)
            | Arrivals.Closed_loop { clients; think_ns } ->
                let clients = max 1 clients in
                for c = 0 to clients - 1 do
                  let quota =
                    (st.cfg_t.jobs / clients)
                    + (if c < st.cfg_t.jobs mod clients then 1 else 0)
                  in
                  if quota > 0 then
                    ignore
                      (Sched.Ctx.spawn ctx (fun ctx' ->
                           for _ = 1 to quota do
                             let kind = pick_kind st in
                             let f =
                               submit_in_sim sess ctx' st
                                 ~arrival:(Sched.Ctx.now ctx') kind
                             in
                             ignore (Future.await ctx' f : float);
                             if think_ns > 0.0 then Sched.Ctx.work ctx' think_ns
                           done)
                        : Sched.task)
                done)
          sess.tenants)
  in
  sess.makespan <- makespan;
  finish sess

let report_to_json r =
  let obj fields =
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> "\"" ^ Metrics.json_escape k ^ "\":" ^ v) fields)
    ^ "}"
  in
  let f = Metrics.json_of_float in
  let acc = r.stats.Engine.Stats.accesses in
  let fills =
    obj
      [
        ("l2_hits", string_of_int acc.Engine.Stats.l2_hits);
        ("local_chiplet", string_of_int acc.Engine.Stats.local_chiplet);
        ("remote_chiplet", string_of_int acc.Engine.Stats.remote_chiplet);
        ("remote_numa", string_of_int acc.Engine.Stats.remote_numa);
        ("dram", string_of_int acc.Engine.Stats.dram);
      ]
  in
  let tenant (tr : tenant_report) =
    obj
      [
        ("name", "\"" ^ Metrics.json_escape tr.tenant ^ "\"");
        ("submitted", string_of_int tr.submitted);
        ("admitted", string_of_int tr.admitted);
        ("shed", string_of_int tr.shed);
        ("completed", string_of_int tr.completed);
        ("relocated_out", string_of_int tr.relocated_out);
        ("relocated_in", string_of_int tr.relocated_in);
        ("slo_ns", f tr.slo_ns);
        ("slo_violations", string_of_int tr.slo_violations);
        ("latency_ns", Metrics.json_of_histogram tr.latency);
        ("queue_wait_ns", Metrics.json_of_histogram tr.queue_wait);
        ("energy_uj", f tr.energy_uj);
        ("replicas", string_of_int tr.replicas);
        ("divergences", string_of_int tr.divergences);
      ]
  in
  let energy =
    obj
      [
        ("total_uj", f (Metrics.gauge_value r.registry "serve.energy_uj"));
        ( "overhead_uj",
          f (Metrics.gauge_value r.registry "serve.energy_overhead_uj") );
      ]
  in
  let admission =
    obj
      [
        ( "submitted",
          string_of_int (Metrics.counter_value r.registry "serve.submitted") );
        ( "admitted",
          string_of_int (Metrics.counter_value r.registry "serve.admitted") );
        ("shed", string_of_int (Metrics.counter_value r.registry "serve.shed"));
        ( "effective_capacity",
          f (Metrics.gauge_value r.registry "serve.effective_capacity") );
      ]
  in
  obj
    [
      ("makespan_ns", f r.makespan_ns);
      ("admission", admission);
      ("energy", energy);
      ("fills", fills);
      ( "tenants",
        "[" ^ String.concat "," (List.map tenant r.tenant_reports) ^ "]" );
      ("metrics", Metrics.to_json r.registry);
    ]
