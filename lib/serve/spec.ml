(* CLI spec parsing for the serving layer, shared by charm_serve and the
   fuzzer's repro round-trips.  Every parser returns a one-line error
   naming the offending field — never a silent default, never an
   exception backtrace. *)

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let parse_tenant spec =
  match String.split_on_char ':' spec with
  | name :: weight_s :: kinds_rest when name <> "" -> (
      match float_of_string_opt weight_s with
      | None ->
          err "bad tenant spec %S: weight %S is not a number" spec weight_s
      | Some w when not (Float.is_finite w && w > 0.0) ->
          err "bad tenant spec %S: weight %g must be positive" spec w
      | Some weight -> (
          (* kind names may contain ':' (tpch:3), so rejoin before
             splitting on the '+' separators *)
          let kind_names =
            String.concat ":" kinds_rest |> String.split_on_char '+'
          in
          if kinds_rest = [] || List.exists (fun k -> k = "") kind_names then
            err "bad tenant spec %S: empty job-kind list (want KIND+KIND+...)"
              spec
          else
            let rec resolve acc = function
              | [] -> Ok (List.rev acc)
              | k :: rest -> (
                  match Job.kind_of_string k with
                  | Some kind -> resolve ((kind, 1) :: acc) rest
                  | None -> err "bad tenant spec %S: unknown job kind %S" spec k)
            in
            match resolve [] kind_names with
            | Ok mix -> Ok (name, weight, mix)
            | Error _ as e -> e))
  | _ ->
      err "bad tenant spec %S: want NAME:WEIGHT:KIND+KIND (e.g. gold:2:bfs+tpch:3)"
        spec

let parse_replication spec =
  match String.rindex_opt spec ':' with
  | Some i when i > 0 && i < String.length spec - 1 -> (
      let name = String.sub spec 0 i in
      let k_s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt k_s with
      | None ->
          err "bad --replicate spec %S: degree %S is not an integer" spec k_s
      | Some k when k < 1 ->
          err "bad --replicate spec %S: degree %d must be >= 1" spec k
      | Some k -> Ok (name, k))
  | _ -> err "bad --replicate spec %S: want NAME:DEGREE (e.g. gold:3)" spec

let parse_shard_machines ?fallback ~machines spec =
  let names = String.split_on_char ',' spec in
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
        let n = String.trim n in
        match List.assoc_opt n machines with
        | Some m -> resolve (m :: acc) rest
        | None -> (
            (* not a preset name: let the caller try it as a data-driven
               machine (a topology-file path), so one fleet can mix
               preset and custom shards *)
            match Option.map (fun f -> f n) fallback with
            | Some (Ok m) -> resolve (m :: acc) rest
            | Some (Error fe) ->
                err
                  "bad --shard-machines list %S: %S is neither a machine \
                   preset (want %s) nor a topology file (%s)"
                  spec n
                  (String.concat "/" (List.map fst machines))
                  fe
            | None ->
                err "bad --shard-machines list %S: unknown machine %S (want %s)"
                  spec n
                  (String.concat "/" (List.map fst machines))))
  in
  if spec = "" then err "bad --shard-machines list: empty" else resolve [] names

let parse_shard_fault spec =
  match String.index_opt spec ':' with
  | Some i when i > 0 -> (
      let shard_s = String.sub spec 0 i in
      match int_of_string_opt shard_s with
      | None ->
          err "bad --faults-shard entry %S: shard %S is not an integer" spec
            shard_s
      | Some shard when shard < 0 ->
          err "bad --faults-shard entry %S: shard %d must be >= 0" spec shard
      | Some shard ->
          Ok (shard, String.sub spec (i + 1) (String.length spec - i - 1)))
  | _ -> err "bad --faults-shard entry %S: want SHARD:SPEC" spec
