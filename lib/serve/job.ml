open Chipsim
module Sched = Engine.Sched

type kind =
  | Bfs
  | Pagerank
  | Gups of int
  | Tpch of int
  | Ycsb_batch of int
  | Dag of Taskgraph.Graph.shape * int

let kind_name = function
  | Bfs -> "bfs"
  | Pagerank -> "pagerank"
  | Gups n -> Printf.sprintf "gups:%d" n
  | Tpch q -> Printf.sprintf "tpch:%d" q
  | Ycsb_batch n -> Printf.sprintf "ycsb:%d" n
  | Dag (shape, layers) ->
      Printf.sprintf "dag:%s:%d" (Taskgraph.Graph.shape_name shape) layers

let default_gups_updates = 4096
let default_ycsb_ops = 256
let default_dag_layers = 6
let max_dag_layers = 64

(* "dag" | "dag:SHAPE" | "dag:SHAPE:LAYERS" *)
let parse_dag s =
  if s = "dag" then Some (Dag (Taskgraph.Graph.Chain, default_dag_layers))
  else if String.length s > 4 && String.sub s 0 4 = "dag:" then
    let rest = String.sub s 4 (String.length s - 4) in
    let shape_s, layers_s =
      match String.index_opt rest ':' with
      | None -> (rest, None)
      | Some i ->
          ( String.sub rest 0 i,
            Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
    in
    match Taskgraph.Graph.shape_of_name shape_s with
    | None -> None
    | Some shape -> (
        match layers_s with
        | None -> Some (Dag (shape, default_dag_layers))
        | Some ls -> (
            match int_of_string_opt ls with
            | Some n when n >= 1 && n <= max_dag_layers -> Some (Dag (shape, n))
            | _ -> None))
  else None

let kind_of_string s =
  let parse_sized prefix mk default =
    if s = prefix then Some (mk default)
    else
      let plen = String.length prefix + 1 in
      if
        String.length s > plen
        && String.sub s 0 plen = prefix ^ ":"
      then
        match int_of_string_opt (String.sub s plen (String.length s - plen)) with
        | Some n when n > 0 -> Some (mk n)
        | _ -> None
      else None
  in
  match s with
  | "bfs" -> Some Bfs
  | "pr" | "pagerank" -> Some Pagerank
  | _ -> (
      match parse_dag s with
      | Some k -> Some k
      | None -> (
          match parse_sized "gups" (fun n -> Gups n) default_gups_updates with
          | Some k -> Some k
          | None -> (
              match parse_sized "tpch" (fun q -> Tpch q) 1 with
              | Some (Tpch q) when q >= 1 && q <= 22 -> Some (Tpch q)
              | Some _ | None ->
                  parse_sized "ycsb" (fun n -> Ycsb_batch n) default_ycsb_ops)))

type data_config = {
  graph_scale : int;
  edge_factor : int;
  tpch_sf : float;
  ycsb_records : int;
  gups_table_words : int;
  pagerank_iterations : int;
  dag_comm_aware : bool;
  seed : int;
}

let default_data_config =
  {
    graph_scale = 10;
    edge_factor = 8;
    tpch_sf = 0.002;
    ycsb_records = 4096;
    gups_table_words = 1 lsl 14;
    pagerank_iterations = 2;
    dag_comm_aware = true;
    seed = 7;
  }

type data = {
  cfg : data_config;
  graph : Workloads.Csr.t;
  bfs_levels : Simmem.region;
  pr_ranks : Simmem.region;
  pr_next : Simmem.region;
  tpch : Olap.Tpch_data.t;
  ycsb_table : Oltp.Storage.table;
  txn : Oltp.Txn.t;
  gups_table : Simmem.region;
  alloc : elt_bytes:int -> count:int -> Simmem.region;
}

let prepare env cfg =
  let alloc ~elt_bytes ~count =
    env.Workloads.Exec_env.alloc_shared ~elt_bytes ~count
  in
  let graph =
    Workloads.Csr.of_kronecker ~weighted:false ~alloc
      (Workloads.Kronecker.generate ~seed:cfg.seed ~scale:cfg.graph_scale
         ~edge_factor:cfg.edge_factor ())
  in
  let n = graph.Workloads.Csr.n in
  {
    cfg;
    graph;
    bfs_levels = alloc ~elt_bytes:8 ~count:n;
    pr_ranks = alloc ~elt_bytes:8 ~count:n;
    pr_next = alloc ~elt_bytes:8 ~count:n;
    tpch = Olap.Tpch_data.generate ~alloc ~seed:(cfg.seed + 1) ~sf:cfg.tpch_sf ();
    ycsb_table =
      Oltp.Storage.create_table ~alloc ~name:"serve-usertable"
        ~rows:cfg.ycsb_records ~payload_words:13;
    txn = Oltp.Txn.create ~alloc ();
    gups_table = alloc ~elt_bytes:8 ~count:cfg.gups_table_words;
    alloc;
  }

let graph d = d.graph

(* per-item factors calibrated against measured virtual service times on
   the default datasets (charm, 32 workers, cache_scale 16): BFS ~4.6 ns
   per edge, PageRank ~3 ns per edge update, GUPS ~130 ns per RMW, TPC-H
   ~8 ns per stored row, YCSB ~600 ns per transaction *)
let cost_estimate d = function
  | Bfs -> 4.5 *. float_of_int d.graph.Workloads.Csr.m
  | Pagerank ->
      3.0 *. float_of_int (d.cfg.pagerank_iterations * d.graph.Workloads.Csr.m)
  | Gups n -> 130.0 *. float_of_int n
  | Tpch q ->
      let rows = float_of_int (Olap.Tpch_data.total_rows d.tpch) in
      if List.mem q Olap.Tpch_queries.join_heavy then 12.0 *. rows else 8.0 *. rows
  | Ycsb_batch n -> 600.0 *. float_of_int n
  | Dag (shape, layers) ->
      (* graph costs vary per job seed; the canonical seed-0 instance is a
         representative estimate (generation is O(nodes), graphs are tiny) *)
      Taskgraph.Graph.total_cost_ns
        (Taskgraph.Graph.generate ~shape ~layers ~seed:0 ())

(* a BFS source must have outgoing edges or the job degenerates to nothing *)
let pick_source d rng =
  let g = d.graph in
  let n = g.Workloads.Csr.n in
  let rec try_random attempts =
    if attempts = 0 then
      (* fall back to the first non-isolated vertex *)
      let rec scan v =
        if v >= n - 1 || Workloads.Csr.degree g v > 0 then min v (n - 1)
        else scan (v + 1)
      in
      scan 0
    else
      let v = Engine.Rng.int rng n in
      if Workloads.Csr.degree g v > 0 then v else try_random (attempts - 1)
  in
  try_random 32

let run_gups ctx d rng updates =
  if updates <= 0 then invalid_arg "Job.run: gups updates <= 0";
  let words = d.cfg.gups_table_words in
  for i = 0 to updates - 1 do
    let idx = Engine.Rng.int rng words in
    Sched.Ctx.read ctx d.gups_table idx;
    Sched.Ctx.write ctx d.gups_table idx;
    Sched.Ctx.work ctx 2.0;
    if i land 63 = 63 then Sched.Ctx.maybe_yield ctx
  done;
  updates

(* the paper-mix transaction stream (45 read / 55 rmw) from Ycsb.run,
   reduced to a batch that runs inside one serving task *)
let run_ycsb ctx d rng ops =
  if ops <= 0 then invalid_arg "Job.run: ycsb batch <= 0";
  let records = d.cfg.ycsb_records in
  for i = 0 to ops - 1 do
    let key = Engine.Rng.int rng records in
    let dice = Engine.Rng.int rng 100 in
    if dice < 45 then ignore (Oltp.Storage.read_record ctx d.ycsb_table key : int)
    else begin
      let v = Oltp.Storage.read_record ctx d.ycsb_table key in
      Oltp.Storage.write_record ctx d.ycsb_table key (v + 1)
    end;
    Oltp.Txn.commit d.txn ctx;
    if i land 63 = 63 then Sched.Ctx.maybe_yield ctx
  done;
  ops

(* chiplets that actually host a scheduler worker — DAG nodes pinned
   anywhere else would silently fall back to the spawner's queue *)
let worker_chiplets ctx =
  let sched = Sched.Ctx.sched ctx in
  let topo = Machine.topology (Sched.Ctx.machine ctx) in
  let hosted =
    List.filter
      (fun ch ->
        List.exists
          (fun core -> Sched.worker_of_core sched core <> None)
          (Topology.cores_of_chiplet topo ch))
      (List.init (Topology.num_chiplets topo) Fun.id)
  in
  match hosted with [] -> None | l -> Some (Array.of_list l)

let run_dag ctx d ~seed ?(rotate = 0) shape layers =
  let g = Taskgraph.Graph.generate ~shape ~layers ~seed () in
  let topo = Machine.topology (Sched.Ctx.machine ctx) in
  let policy =
    if d.cfg.dag_comm_aware then Taskgraph.Mapper.Comm_aware
    else Taskgraph.Mapper.Blind
  in
  let usable =
    match worker_chiplets ctx with
    | Some a when rotate > 0 && Array.length a > 1 ->
        (* replica ordinal: rotate the usable-chiplet preference so
           redundant DAG executions map onto different silicon instead of
           piling their nodes on the same chiplets *)
        let n = Array.length a in
        Some (Array.init n (fun i -> a.((i + rotate) mod n)))
    | u -> u
  in
  let m = Taskgraph.Mapper.map ?usable topo ~policy g in
  let r = Taskgraph.Exec.run ~job_id:seed ctx m g in
  r.Taskgraph.Exec.nodes_run

let run ctx d ~seed kind =
  let rng = Engine.Rng.create seed in
  match kind with
  | Bfs ->
      let source = pick_source d rng in
      let _, edges = Workloads.Bfs.run_in ctx d.graph ~levels:d.bfs_levels ~source in
      edges
  | Pagerank ->
      let _, updates =
        Workloads.Pagerank.run_in ctx d.graph ~ranks:d.pr_ranks ~next:d.pr_next
          ~iterations:d.cfg.pagerank_iterations ()
      in
      updates
  | Gups n -> run_gups ctx d rng n
  | Tpch q ->
      let r = Olap.Tpch_queries.run ctx ~alloc:d.alloc d.tpch q in
      max 1 r.Olap.Tpch_queries.rows_out
  | Ycsb_batch n -> run_ycsb ctx d rng n
  | Dag (shape, layers) -> run_dag ctx d ~seed shape layers

let run_replica ctx d ~seed ~replica kind =
  match kind with
  | Dag (shape, layers) -> run_dag ctx d ~seed ~rotate:replica shape layers
  | _ -> run ctx d ~seed kind
