(** Admission control: decide, per arriving job, whether to queue it or
    shed it.

    The controller is deliberately memoryless — the decision is a pure
    function of the configured bounds and the observed queue depths — so
    the serving loop stays deterministic and the policy is trivially
    testable.  Back-pressure emerges from the bounds: an open-loop source
    that outruns the dispatcher fills its tenant queue and every job
    beyond the bound is dropped (counted, never silently). *)

type config = {
  max_queue_per_tenant : int;
      (** upper bound on one tenant's queued (not yet dispatched) jobs *)
  max_global_queue : int;  (** upper bound on the total queued jobs *)
}

val default : config
(** 64 per tenant, 256 global. *)

type decision =
  | Admit
  | Shed_tenant_full  (** the submitting tenant hit its own queue bound *)
  | Shed_server_full  (** the shared queue bound was hit *)

val decision_name : decision -> string

val decide : config -> tenant_depth:int -> global_depth:int -> decision
(** Tenant bound is checked first, so a greedy tenant is shed on its own
    quota before it can push the server into global shedding. *)

val scale : config -> capacity:float -> config
(** Shrink both bounds to [capacity] (clamped to [\[0, 1\]]) of their
    nominal values, rounding up and never below 1 — so a machine running
    at half its compute capacity (faults, throttling) sheds load early
    instead of letting queues grow past what it can drain in time. *)
