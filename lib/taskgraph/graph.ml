(* A job as a static task DAG: per-node compute cost (weighted per chiplet
   kind, so accelerator tiles are genuinely faster on the dense
   conv/matmul-class nodes and slower on everything else) and per-edge
   communication volumes.  Like [Chipsim.Topology], a graph is a *value*
   with a small config-file form ([of_string]/[to_string] round-trip), so
   model zoos are data, not code. *)

open Chipsim

type op = Conv | Matmul | Elementwise | Reduce | Embed

let op_name = function
  | Conv -> "conv"
  | Matmul -> "matmul"
  | Elementwise -> "elementwise"
  | Reduce -> "reduce"
  | Embed -> "embed"

let op_of_name = function
  | "conv" -> Some Conv
  | "matmul" -> Some Matmul
  | "elementwise" -> Some Elementwise
  | "reduce" -> Some Reduce
  | "embed" -> Some Embed
  | _ -> None

let all_ops = [ Conv; Matmul; Elementwise; Reduce; Embed ]

let accel_friendly = function
  | Conv | Matmul -> true
  | Elementwise | Reduce | Embed -> false

(* Accelerator tiles run the dense kernels at their full kind speed but
   push everything else (elementwise glue, reductions, embedding lookups)
   through a thin scalar frontend.  The penalty exceeds the default accel
   speed (2.5), so an off-profile node is net *slower* on an accel
   chiplet than on a big core — which is what makes mapping a genuine
   decision rather than "always use the fastest kind". *)
let off_profile_penalty = 3.0

let op_mult (kind : Topology.core_kind) op =
  match kind with
  | Big | Little -> 1.0
  | Accel -> if accel_friendly op then 1.0 else off_profile_penalty

type node = { op : op; cost_ns : float }
type edge = { src : int; dst : int; bytes : int }

type t = {
  name : string;
  nodes : node array;
  edges : edge array;
  preds : int array array;  (* incoming edge indices, per node *)
  succs : int array array;  (* outgoing edge indices, per node *)
  order : int array;  (* a deterministic topological order of node ids *)
}

let name t = t.name
let num_nodes t = Array.length t.nodes
let num_edges t = Array.length t.edges

let total_cost_ns t =
  Array.fold_left (fun acc n -> acc +. n.cost_ns) 0.0 t.nodes

let total_edge_bytes t =
  Array.fold_left (fun acc e -> acc + e.bytes) 0 t.edges

(* effective compute cost of a node on a chiplet of [kind], in ns of a
   big core's time: op-class weighting over the kind's raw speed *)
let scaled_cost_ns topo kind n =
  n.cost_ns *. op_mult kind n.op /. (Topology.spec_of_kind topo kind).Topology.speed

let equal a b = a.name = b.name && a.nodes = b.nodes && a.edges = b.edges

let v ~name ~nodes ~edges =
  let n = Array.length nodes in
  if n = 0 then invalid_arg "Graph.v: a graph needs at least one node";
  Array.iteri
    (fun i nd ->
      if (not (Float.is_finite nd.cost_ns)) || nd.cost_ns <= 0.0 then
        invalid_arg
          (Printf.sprintf "Graph.v: node %d cost %g must be positive" i
             nd.cost_ns))
    nodes;
  let seen = Hashtbl.create (Array.length edges) in
  Array.iter
    (fun e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid_arg
          (Printf.sprintf "Graph.v: edge %d -> %d references a node outside [0,%d)"
             e.src e.dst n);
      if e.src = e.dst then
        invalid_arg (Printf.sprintf "Graph.v: self-edge on node %d" e.src);
      if e.bytes < 0 then
        invalid_arg
          (Printf.sprintf "Graph.v: edge %d -> %d has negative bytes" e.src e.dst);
      if Hashtbl.mem seen (e.src, e.dst) then
        invalid_arg (Printf.sprintf "Graph.v: duplicate edge %d -> %d" e.src e.dst);
      Hashtbl.add seen (e.src, e.dst) ())
    edges;
  let preds = Array.make n [] and succs = Array.make n [] in
  Array.iteri
    (fun i e ->
      preds.(e.dst) <- i :: preds.(e.dst);
      succs.(e.src) <- i :: succs.(e.src))
    edges;
  let preds = Array.map (fun l -> Array.of_list (List.rev l)) preds in
  let succs = Array.map (fun l -> Array.of_list (List.rev l)) succs in
  (* Kahn's algorithm, always picking the smallest ready node id: rejects
     cycles and yields one deterministic topological order *)
  let indeg = Array.map Array.length preds in
  let order = Array.make n (-1) in
  let placed = ref 0 in
  (try
     while !placed < n do
       let pick = ref (-1) in
       for i = n - 1 downto 0 do
         if indeg.(i) = 0 then pick := i
       done;
       if !pick < 0 then raise Exit;
       order.(!placed) <- !pick;
       incr placed;
       indeg.(!pick) <- -1;
       Array.iter (fun ei -> indeg.(edges.(ei).dst) <- indeg.(edges.(ei).dst) - 1)
         succs.(!pick)
     done
   with Exit ->
     let culprit = ref 0 in
     for i = n - 1 downto 0 do
       if indeg.(i) > 0 then culprit := i
     done;
     invalid_arg (Printf.sprintf "Graph.v: cycle through node %d" !culprit));
  { name; nodes = Array.copy nodes; edges = Array.copy edges; preds; succs; order }

(* -- deterministic generator --------------------------------------------- *)

type shape = Chain | Inception | Fanout

let shape_name = function
  | Chain -> "chain"
  | Inception -> "inception"
  | Fanout -> "fanout"

let shape_of_name = function
  | "chain" -> Some Chain
  | "inception" -> Some Inception
  | "fanout" -> Some Fanout
  | _ -> None

let all_shapes = [ Chain; Inception; Fanout ]

let kib = 1024

(* cost and volume draws: dense nodes are an order of magnitude heavier
   than glue nodes, and inter-layer activations vary enough that edge
   weight genuinely orders the mapper's contraction choices *)
let dense_cost rng = 8_000.0 +. Engine.Rng.float rng 8_000.0
let glue_cost rng = 1_200.0 +. Engine.Rng.float rng 1_800.0
let heavy_bytes rng = (32 * kib) + Engine.Rng.int rng (96 * kib)
let light_bytes rng = (2 * kib) + Engine.Rng.int rng (6 * kib)

let generate ~shape ~layers ~seed () =
  if layers < 1 then invalid_arg "Graph.generate: layers must be >= 1";
  let rng = Engine.Rng.create (0x7a5c0de + (seed * 31) + layers) in
  let nodes = ref [] and edges = ref [] and count = ref 0 in
  let add_node op cost =
    nodes := { op; cost_ns = cost } :: !nodes;
    incr count;
    !count - 1
  in
  let add_edge src dst bytes = edges := { src; dst; bytes } :: !edges in
  let name = Printf.sprintf "%s-%d-%d" (shape_name shape) layers seed in
  (match shape with
  | Chain ->
      (* a DNN backbone: embed -> (conv|matmul / elementwise)* -> reduce *)
      let prev = ref (add_node Embed (glue_cost rng)) in
      for l = 1 to layers do
        let op =
          if l mod 2 = 1 then if Engine.Rng.bool rng then Conv else Matmul
          else Elementwise
        in
        let cost = if accel_friendly op then dense_cost rng else glue_cost rng in
        let n = add_node op cost in
        add_edge !prev n (heavy_bytes rng);
        prev := n
      done;
      let head = add_node Reduce (glue_cost rng) in
      add_edge !prev head (light_bytes rng)
  | Inception ->
      (* branchy inception blocks: each layer splits into 2-4 parallel
         dense branches that re-join in a reduce node *)
      let prev = ref (add_node Embed (glue_cost rng)) in
      for _l = 1 to layers do
        let branches = 2 + Engine.Rng.int rng 3 in
        let join = ref [] in
        for _b = 1 to branches do
          let op = if Engine.Rng.bool rng then Conv else Matmul in
          let n = add_node op (dense_cost rng) in
          add_edge !prev n (heavy_bytes rng);
          join := n :: !join
        done;
        let j = add_node Reduce (glue_cost rng) in
        List.iter (fun b -> add_edge b j (heavy_bytes rng)) (List.rev !join);
        prev := j
      done
  | Fanout ->
      (* microservice fan-out: a front-end embeds the request, [layers]
         independent services work on it, an aggregator reduces replies *)
      let root = add_node Embed (glue_cost rng) in
      let agg_deps = ref [] in
      for _s = 1 to layers do
        let op = if Engine.Rng.int rng 3 = 0 then Matmul else Elementwise in
        let cost = if accel_friendly op then dense_cost rng else glue_cost rng in
        let n = add_node op cost in
        add_edge root n (light_bytes rng);
        agg_deps := n :: !agg_deps
      done;
      let agg = add_node Reduce (glue_cost rng) in
      List.iter (fun s -> add_edge s agg (heavy_bytes rng)) (List.rev !agg_deps));
  v ~name
    ~nodes:(Array.of_list (List.rev !nodes))
    ~edges:(Array.of_list (List.rev !edges))

(* -- config-file format ---------------------------------------------------

   One directive per line (or ';'-separated); '#' starts a comment.  Byte
   sizes accept KiB/MiB/GiB suffixes.

     name tiny-resnet
     node 0 embed 1500
     node 1 conv 9000
     edge 0 1 64KiB                                                       *)

let format_bytes b =
  let mib = 1024 * 1024 in
  if b >= mib && b mod mib = 0 then Printf.sprintf "%dMiB" (b / mib)
  else if b >= 1024 && b mod 1024 = 0 then Printf.sprintf "%dKiB" (b / 1024)
  else string_of_int b

let parse_bytes s =
  let num, mult =
    let n = String.length s in
    let suffix k m =
      if
        n > String.length k
        && String.sub s (n - String.length k) (String.length k) = k
      then Some (String.sub s 0 (n - String.length k), m)
      else None
    in
    match suffix "GiB" (1024 * 1024 * 1024) with
    | Some r -> r
    | None -> (
        match suffix "MiB" (1024 * 1024) with
        | Some r -> r
        | None -> ( match suffix "KiB" 1024 with Some r -> r | None -> (s, 1)))
  in
  match int_of_string_opt num with
  | Some v when v >= 0 -> Some (v * mult)
  | _ -> None

let format_float f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_lines t =
  let buf = ref [] in
  let add l = buf := l :: !buf in
  add (Printf.sprintf "name %s" t.name);
  Array.iteri
    (fun i n ->
      add
        (Printf.sprintf "node %d %s %s" i (op_name n.op) (format_float n.cost_ns)))
    t.nodes;
  Array.iter
    (fun e ->
      add (Printf.sprintf "edge %d %d %s" e.src e.dst (format_bytes e.bytes)))
    t.edges;
  List.rev !buf

let to_string t = String.concat "\n" (to_lines t) ^ "\n"
let to_spec t = String.concat "; " (to_lines t)

let pp ppf t =
  Format.fprintf ppf "%s: %d node(s), %d edge(s), %.1fus compute, %s comm"
    t.name (num_nodes t) (num_edges t)
    (total_cost_ns t /. 1e3)
    (format_bytes (total_edge_bytes t))

let of_string spec =
  let strip_comment line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let directives =
    String.split_on_char '\n' spec
    |> List.map strip_comment
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let tokens_of line =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun tok -> tok <> "")
  in
  let name = ref "dag" and nodes = ref [] and edges = ref [] in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  List.iter
    (fun line ->
      if !err = None then
        match tokens_of line with
        | [ "name"; n ] -> name := n
        | "name" :: _ -> fail "bad name directive: expected a single token"
        | [ "node"; id; op; cost ] -> (
            match int_of_string_opt id with
            | None ->
                fail (Printf.sprintf "bad node directive: id %S is not an integer" id)
            | Some id -> (
                match op_of_name op with
                | None ->
                    fail
                      (Printf.sprintf
                         "unknown op %S (want %s)" op
                         (String.concat "/" (List.map op_name all_ops)))
                | Some op -> (
                    match float_of_string_opt cost with
                    | Some c when Float.is_finite c ->
                        nodes := (id, { op; cost_ns = c }) :: !nodes
                    | _ ->
                        fail
                          (Printf.sprintf
                             "bad node directive: cost %S is not a number" cost))))
        | "node" :: _ -> fail "bad node directive: want node ID OP COST_NS"
        | [ "edge"; src; dst; bytes ] -> (
            match (int_of_string_opt src, int_of_string_opt dst) with
            | None, _ ->
                fail
                  (Printf.sprintf "bad edge directive: src %S is not an integer" src)
            | _, None ->
                fail
                  (Printf.sprintf "bad edge directive: dst %S is not an integer" dst)
            | Some src, Some dst -> (
                match parse_bytes bytes with
                | Some b -> edges := { src; dst; bytes = b } :: !edges
                | None ->
                    fail
                      (Printf.sprintf
                         "bad edge directive: bytes %S is not a size (int with \
                          optional KiB/MiB/GiB)"
                         bytes)))
        | "edge" :: _ -> fail "bad edge directive: want edge SRC DST BYTES"
        | key :: _ -> fail (Printf.sprintf "unknown task-graph field %S in %S" key line)
        | [] -> ())
    directives;
  match !err with
  | Some m -> Error m
  | None -> (
      let nodes = List.rev !nodes in
      let n = List.length nodes in
      if n = 0 then Error "a task graph needs at least one node directive"
      else begin
        let arr = Array.make n None in
        let dup = ref None in
        List.iter
          (fun (id, nd) ->
            match !dup with
            | Some _ -> ()
            | None ->
                if id < 0 || id >= n then
                  dup :=
                    Some
                      (Printf.sprintf
                         "node ids must be dense 0..%d but found node %d" (n - 1)
                         id)
                else if arr.(id) <> None then
                  dup := Some (Printf.sprintf "duplicate node id %d" id)
                else arr.(id) <- Some nd)
          nodes;
        match !dup with
        | Some m -> Error m
        | None -> (
            let nodes =
              Array.map (function Some nd -> nd | None -> assert false) arr
            in
            let edges = Array.of_list (List.rev !edges) in
            match v ~name:!name ~nodes ~edges with
            | t -> Ok t
            | exception Invalid_argument m -> Error m)
      end)

let of_file path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      let spec =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      of_string spec
