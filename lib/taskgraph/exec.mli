(** Execute a mapped task DAG on the engine.

    Each node runs as a scheduler task pinned to a worker resident on its
    mapped chiplet; it awaits its predecessors, pulls each incoming
    edge's bytes across the chiplet fabric ({!Chipsim.Machine.transfer}),
    then charges its op-class-weighted compute.  With scheduler checking
    on, DAG precedence (no node starts before all predecessors finish)
    and edge-byte conservation (cut bytes charged exactly once) are
    verified and raise {!Chipsim.Invariant.Violation} when broken.  When
    a trace is attached, every node emits a [Dag_node] lifecycle event on
    its chiplet's track. *)

type result = {
  span_ns : float;  (** last node finish minus job start, virtual ns *)
  cross_bytes : int;  (** bytes charged across chiplet boundaries *)
  nodes_run : int;
}

val run :
  ?tenant:string ->
  ?job_id:int ->
  Engine.Sched.ctx ->
  Mapper.t ->
  Graph.t ->
  result
(** Must be called from inside a scheduler task (it spawns and awaits
    children).  Deterministic for equal inputs and schedules.
    @raise Invalid_argument if the mapping does not cover the graph. *)
