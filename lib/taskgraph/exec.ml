(* Execute a mapped task DAG on the engine.

   Every node becomes a task pinned to a worker resident on its mapped
   chiplet (falling back to the spawner's queue when the chiplet hosts
   none).  Nodes are spawned dataflow-style: the driver launches the
   sources, and each node, once finished, decrements its successors'
   pending-predecessor counts and spawns any that hit zero with
   [~at:(max predecessor finish)] — the scheduler's ready-time clamp then
   guarantees the successor's quantum cannot start earlier, even on a
   worker whose virtual clock lags.  (Awaiting predecessor tasks is not
   enough: awaiting an already-finished task is a no-op and leaves the
   waiter's clock wherever it was.)

   A node first pulls each incoming edge's bytes across the chiplet
   fabric ([Machine.transfer]: same-chiplet pulls are one L3 hop,
   cross-chiplet pulls pay base latency plus serialization and contention
   on both endpoint links), then charges its op-class-weighted compute.

   Under [--check] two invariants are verified per job: no node observes
   a start time before any predecessor's finish, and the bytes charged
   cross-chiplet equal exactly the bytes the mapping cuts (each cut edge
   charged once — double or missed charging breaks the ledger). *)

open Chipsim
module Sched = Engine.Sched

type result = { span_ns : float; cross_bytes : int; nodes_run : int }

let start_eps = 1e-6

let run ?(tenant = "dag") ?(job_id = 0) ctx (m : Mapper.t) (g : Graph.t) =
  let sched = Sched.Ctx.sched ctx in
  let machine = Sched.Ctx.machine ctx in
  let topo = Machine.topology machine in
  let check = Sched.check_enabled sched in
  let trace = Sched.trace sched in
  let n = Graph.num_nodes g in
  if Array.length m.Mapper.assign <> n then
    invalid_arg "Exec.run: mapping does not cover the graph";
  let finish = Array.make n Float.nan in
  let tasks = Array.make n None in
  let pending = Array.map Array.length g.Graph.preds in
  let cross = ref 0 in
  let worker_for ch =
    let rec go = function
      | [] -> None
      | core :: rest -> (
          match Sched.worker_of_core sched core with
          | Some w -> Some w
          | None -> go rest)
    in
    go (Topology.cores_of_chiplet topo ch)
  in
  let rec body i ctx' =
    let nd = g.Graph.nodes.(i) in
    let dst = m.Mapper.assign.(i) in
    let start = Sched.Ctx.now ctx' in
    if check then
      Array.iter
        (fun ei ->
          let e = g.Graph.edges.(ei) in
          let f = finish.(e.Graph.src) in
          if not (start +. start_eps >= f) then
            Invariant.fail
              "taskgraph: node %d started at %g before predecessor %d \
               finished at %g"
              i start e.Graph.src f)
        g.Graph.preds.(i);
    Array.iter
      (fun ei ->
        let e = g.Graph.edges.(ei) in
        let src = m.Mapper.assign.(e.Graph.src) in
        if src <> dst then cross := !cross + e.Graph.bytes;
        let lat =
          Machine.transfer machine ~src_chiplet:src ~dst_chiplet:dst
            ~now_ns:(Sched.Ctx.now ctx') ~bytes:e.Graph.bytes
        in
        if lat > 0.0 then Sched.Ctx.work ctx' lat)
      g.Graph.preds.(i);
    let kind = Topology.kind_of_core topo (Sched.Ctx.core ctx') in
    Sched.Ctx.work ctx' (nd.Graph.cost_ns *. Graph.op_mult kind nd.Graph.op);
    (* end the quantum before reading the finish time: the scheduler
       rescales a whole quantum by core speed only at its end, so on a
       fast core the mid-quantum clock overstates when this node really
       finishes — and successors would appear to start in its past *)
    Sched.Ctx.yield ctx';
    let stop = Sched.Ctx.now ctx' in
    finish.(i) <- stop;
    Array.iter
      (fun ei ->
        let s = g.Graph.edges.(ei).Graph.dst in
        pending.(s) <- pending.(s) - 1;
        if pending.(s) = 0 then spawn_node ctx' s)
      g.Graph.succs.(i);
    match trace with
    | Some tr when Engine.Trace.enabled tr ->
        Engine.Trace.dag_node tr ~tenant ~job_id ~node:i
          ~op:(Graph.op_name nd.Graph.op) ~chiplet:dst ~start_ns:start
          ~end_ns:stop
    | _ -> ()
  and spawn_node ctx' i =
    let at =
      Array.fold_left
        (fun acc ei -> Float.max acc finish.(g.Graph.edges.(ei).Graph.src))
        (Sched.Ctx.now ctx')
        g.Graph.preds.(i)
    in
    tasks.(i) <-
      Some (Sched.Ctx.spawn ctx' ?worker:(worker_for m.Mapper.assign.(i)) ~at (body i))
  in
  let t0 = Sched.Ctx.now ctx in
  Array.iter (fun i -> if pending.(i) = 0 then spawn_node ctx i) g.Graph.order;
  (* awaiting in topological order is safe: all of node i's predecessors
     are awaited (hence fully finished) before i, and a node is spawned
     from inside its last predecessor's body — so tasks.(i) exists by the
     time the driver reaches it *)
  Array.iter
    (fun i ->
      match tasks.(i) with
      | Some t -> Sched.Ctx.await ctx t
      | None -> assert false)
    g.Graph.order;
  if check then begin
    let expected = Mapper.cross_bytes g ~assign:m.Mapper.assign in
    if !cross <> expected then
      Invariant.fail
        "taskgraph: %d cross-chiplet bytes charged but the mapping cuts %d"
        !cross expected
  end;
  let span = ref 0.0 in
  Array.iter (fun f -> if f > !span then span := f) finish;
  { span_ns = Float.max 0.0 (!span -. t0); cross_bytes = !cross; nodes_run = n }
