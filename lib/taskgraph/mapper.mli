(** Map a task DAG onto chiplets.

    [Blind] round-robins nodes across chiplets ignoring edge weights and
    chiplet kinds — the topology-blind baseline.  [Comm_aware] contracts
    the heaviest communication edges first (greedy union-find under a
    per-cluster compute budget, so no chiplet swallows the whole graph),
    then places clusters heaviest-first where current load plus
    kind-weighted compute cost is least: dense conv/matmul clusters land
    on accelerator tiles, glue on big cores, and heavy edges stay inside
    one chiplet.  Candidate order (and thus tie-breaking) follows the
    {!Charm.Placement} chiplet visit order, so mappings are
    deterministic. *)

open Chipsim

type policy = Blind | Comm_aware

val policy_name : policy -> string
val policy_of_name : string -> policy option
val all_policies : policy list

type t = {
  policy : policy;
  assign : int array;  (** node -> global chiplet *)
  cross_bytes : int;
      (** total bytes on edges whose endpoints map to different chiplets
          — the communication the machine will charge through its links *)
}

val map : ?usable:int array -> Topology.t -> policy:policy -> Graph.t -> t
(** [map topo ~policy g] assigns every node a chiplet.  [?usable]
    restricts candidates to the given global chiplet ids (e.g. chiplets
    that actually host workers); default all.
    @raise Invalid_argument if [usable] is empty or out of range. *)

val cross_bytes : Graph.t -> assign:int array -> int
(** Bytes on edges cut by an assignment (what {!t.cross_bytes} holds). *)
