(* Map a task DAG onto chiplets.

   [Blind] is the baseline every topology paper compares against:
   round-robin nodes across chiplets, ignoring both edge weights and
   chiplet kinds.

   [Comm_aware] follows the communication graph: contract the heaviest
   edges first (greedy Kruskal-style union-find) so high-volume producer/
   consumer pairs land inside one chiplet, bounded by a per-cluster
   compute budget so one chiplet does not swallow the whole graph; then
   assign clusters to chiplets heaviest-first, scoring each candidate by
   its current load plus the cluster's kind-weighted cost there — dense
   conv/matmul clusters gravitate to accelerator tiles, glue clusters to
   big cores.  Ties fall back to the [Charm.Placement] visit order, so
   the choice is deterministic and consistent with how CHARM fills
   sockets. *)

open Chipsim

type policy = Blind | Comm_aware

let policy_name = function Blind -> "blind" | Comm_aware -> "comm-aware"

let policy_of_name = function
  | "blind" -> Some Blind
  | "comm-aware" -> Some Comm_aware
  | _ -> None

let all_policies = [ Blind; Comm_aware ]

type t = {
  policy : policy;
  assign : int array;  (* node -> global chiplet *)
  cross_bytes : int;
}

let cross_bytes (g : Graph.t) ~assign =
  Array.fold_left
    (fun acc (e : Graph.edge) ->
      if assign.(e.src) <> assign.(e.dst) then acc + e.bytes else acc)
    0 g.edges

(* chiplets in CHARM's placement-hint order: socket by socket, each
   socket's chiplets as [Placement.chiplet_speed_order] visits them *)
let hint_order topo =
  let per_socket = topo.Topology.chiplets_per_socket in
  Array.init (Topology.num_chiplets topo) (fun i ->
      let socket = i / per_socket and k = i mod per_socket in
      (socket * per_socket)
      + (Charm.Placement.chiplet_speed_order topo ~socket).(k))

let usable_chiplets topo = function
  | Some u ->
      if Array.length u = 0 then
        invalid_arg "Mapper.map: usable chiplet set is empty";
      Array.iter
        (fun ch ->
          if ch < 0 || ch >= Topology.num_chiplets topo then
            invalid_arg "Mapper.map: usable chiplet out of range")
        u;
      Array.copy u
  | None -> Array.init (Topology.num_chiplets topo) Fun.id

let map ?usable topo ~policy (g : Graph.t) =
  let usable = usable_chiplets topo usable in
  let n = Graph.num_nodes g in
  let assign =
    match policy with
    | Blind ->
        Array.init n (fun i -> usable.(i mod Array.length usable))
    | Comm_aware ->
        let in_use = Array.make (Topology.num_chiplets topo) false in
        Array.iter (fun ch -> in_use.(ch) <- true) usable;
        let candidates =
          Array.of_list
            (List.filter (fun ch -> in_use.(ch))
               (Array.to_list (hint_order topo)))
        in
        (* 1. contract heavy edges under a per-cluster compute budget *)
        let parent = Array.init n Fun.id in
        let rec find i =
          if parent.(i) = i then i
          else begin
            let r = find parent.(i) in
            parent.(i) <- r;
            r
          end
        in
        let cost = Array.map (fun (nd : Graph.node) -> nd.cost_ns) g.nodes in
        let budget =
          1.5 *. Graph.total_cost_ns g
          /. float_of_int (min n (Array.length candidates))
        in
        let edges = Array.copy g.edges in
        Array.sort
          (fun (a : Graph.edge) (b : Graph.edge) ->
            if a.bytes <> b.bytes then compare b.bytes a.bytes
            else compare (a.src, a.dst) (b.src, b.dst))
          edges;
        Array.iter
          (fun (e : Graph.edge) ->
            let ra = find e.src and rb = find e.dst in
            if ra <> rb && cost.(ra) +. cost.(rb) <= budget then begin
              let keep, drop = if ra < rb then (ra, rb) else (rb, ra) in
              parent.(drop) <- keep;
              cost.(keep) <- cost.(keep) +. cost.(drop)
            end)
          edges;
        (* 2. collect clusters, heaviest first (ties by smallest root) *)
        let members = Hashtbl.create 16 in
        for i = n - 1 downto 0 do
          let r = find i in
          Hashtbl.replace members r
            (i :: Option.value ~default:[] (Hashtbl.find_opt members r))
        done;
        let clusters =
          Hashtbl.fold (fun r ms acc -> (r, ms) :: acc) members []
          |> List.sort (fun (ra, _) (rb, _) ->
                 if cost.(ra) <> cost.(rb) then compare cost.(rb) cost.(ra)
                 else compare ra rb)
        in
        (* 3. place each cluster where load + kind-weighted cost is least *)
        let load = Array.make (Topology.num_chiplets topo) 0.0 in
        let assign = Array.make n (-1) in
        List.iter
          (fun (_r, ms) ->
            let cost_on ch =
              let kind = Topology.kind_of_chiplet topo ch in
              List.fold_left
                (fun acc i ->
                  acc +. Graph.scaled_cost_ns topo kind g.Graph.nodes.(i))
                0.0 ms
            in
            let best = ref candidates.(0)
            and best_score = ref Float.infinity in
            Array.iter
              (fun ch ->
                let s = load.(ch) +. cost_on ch in
                if s < !best_score then begin
                  best := ch;
                  best_score := s
                end)
              candidates;
            load.(!best) <- !best_score;
            List.iter (fun i -> assign.(i) <- !best) ms)
          clusters;
        assign
  in
  { policy; assign; cross_bytes = cross_bytes g ~assign }
