(** Jobs as static task DAGs.

    Each node carries a compute cost and an op class; dense
    ([conv]/[matmul]) nodes run at full speed on accelerator chiplets
    while everything else pays an off-profile penalty there, so per-kind
    effective cost is a real mapping signal.  Each edge carries a
    communication volume in bytes, charged through the machine's
    chiplet-link channels when its endpoints are mapped to different
    chiplets.

    Like {!Chipsim.Topology}, a graph is a value with a tiny config-file
    format: [of_string (to_string g)] round-trips, [#] starts a comment,
    directives are one per line or [';']-separated, and parse errors are
    one line naming the offending directive or field. *)

open Chipsim

type op = Conv | Matmul | Elementwise | Reduce | Embed

val op_name : op -> string
val op_of_name : string -> op option
val all_ops : op list

val accel_friendly : op -> bool
(** [Conv] and [Matmul] — the dense kernels accelerator tiles are for. *)

val op_mult : Topology.core_kind -> op -> float
(** Compute-cost multiplier of running an op class on a core kind: 1.0
    everywhere except off-profile ops on [Accel] chiplets, which pay
    {!off_profile_penalty} — more than the accel kind's default speed
    advantage, so glue nodes are net slower there than on a big core. *)

val off_profile_penalty : float

type node = { op : op; cost_ns : float }
type edge = { src : int; dst : int; bytes : int }

type t = private {
  name : string;
  nodes : node array;
  edges : edge array;
  preds : int array array;  (** incoming edge indices, per node *)
  succs : int array array;  (** outgoing edge indices, per node *)
  order : int array;  (** a deterministic topological order of node ids *)
}

val v : name:string -> nodes:node array -> edges:edge array -> t
(** Validate and build: positive finite costs, in-range edge endpoints, no
    self or duplicate edges, and no cycles (Kahn's algorithm, smallest
    ready id first, so [order] is deterministic).
    @raise Invalid_argument with a one-line description otherwise. *)

val name : t -> string
val num_nodes : t -> int
val num_edges : t -> int
val total_cost_ns : t -> float
val total_edge_bytes : t -> int

val scaled_cost_ns : Topology.t -> Topology.core_kind -> node -> float
(** Effective cost of a node on a chiplet of this kind, in big-core ns:
    [cost * op_mult kind op / kind speed]. *)

val equal : t -> t -> bool

(** {1 Deterministic generator} *)

type shape = Chain | Inception | Fanout

val shape_name : shape -> string
val shape_of_name : string -> shape option
val all_shapes : shape list

val generate : shape:shape -> layers:int -> seed:int -> unit -> t
(** Seeded DNN-pipeline generator: [Chain] is a linear backbone of dense
    and glue layers, [Inception] splits each layer into 2-4 parallel
    dense branches re-joined by a reduce, [Fanout] is a microservice star
    (front-end, [layers] parallel services, aggregator).  Equal
    arguments give equal graphs.
    @raise Invalid_argument if [layers < 1]. *)

(** {1 Config files} *)

val of_string : string -> (t, string) result
val of_file : string -> (t, string) result

val to_string : t -> string
(** Canonical multi-line rendering; [of_string (to_string t)] yields a
    graph [equal] to [t]. *)

val to_spec : t -> string
(** Same directives joined with ["; "] — a single-line embeddable form. *)

val pp : Format.formatter -> t -> unit
