(** Seeded end-to-end scenarios for the fuzzing harness.

    A scenario is a complete, CLI-expressible experiment: a system, a
    preset machine, a worker count, an optional fault schedule (drawn
    through the {!Faults.Schedule} spec grammar so it renders back to a
    [--faults] string) and either a batch workload or a multi-tenant
    serving mix.  {!generate} draws one deterministically from a seed
    (qcheck-core generators over {!Harness.Systems.topology} bounds);
    {!check} runs it with invariants on and applies the oracles;
    {!shrink} proposes strictly simpler variants; {!to_repro} prints the
    ready-to-paste [charm_run]/[charm_serve] command line. *)

type batch_workload = Bfs | Pagerank | Tpch of int | Gups

type tenant = {
  tname : string;
  tweight : float;
  tkinds : Serving.Job.kind list;
  treplicas : int;  (** replicated-execution degree (1 = none) *)
}

type serve_params = {
  rate_per_s : float;
  jobs : int;  (** per tenant *)
  max_inflight : int;
  queue_bound : int;
  serve_graph_scale : int;
  senergy_weight : float;
      (** CHARM's EDP-aware placement weight; > 0 also turns the
          per-quantum compute-energy meter on *)
  spower_cap_mw : float;
      (** machine power cap in simulated mW (pJ/ns); > 0 arms the
          {!Charm.Power_cap} controller under CHARM systems *)
  tenants : tenant list;
}

type fleet_params = {
  shards : int;
  fpolicy : Fleet.Router.policy;
  fepoch_us : float;
  fdiurnal : float;  (** 0 = flat Poisson arrivals *)
  frelocation : bool;
  fshard_faults : (int * Faults.Schedule.t) list;
      (** per-shard machine-level fault schedules *)
  fserve : serve_params;  (** the per-shard serving template *)
}

type kind =
  | Batch of { workload : batch_workload; graph_scale : int }
  | Serve of serve_params
  | Fleet of fleet_params
      (** a whole cluster run ({!Fleet.Cluster}): routing, relocation and
          conservation checked across shards, with the placement log part
          of the determinism oracle's subject.  The top-level [faults]
          field is empty for fleet scenarios — schedules live per shard in
          [fshard_faults]. *)

type t = {
  seed : int;
  sys : Harness.Systems.sys;
  machine : Harness.Systems.machine_kind;
  cache_scale : int;
  workers : int;
  faults : Faults.Schedule.t;
  kind : kind;
}

type mode = Smoke | Deep
(** [Smoke] draws small scenarios (CI gate); [Deep] widens every range
    (nightly fuzz). *)

val generate : mode:mode -> seed:int -> t
(** Deterministic: same [mode] and [seed] always yield the same scenario. *)

type failure = {
  oracle : string;
      (** ["invariant"], ["determinism/report"], ["determinism/trace"],
          ["reference/..."] or ["crash"] *)
  detail : string;
}

val check : t -> failure option
(** Run the scenario end-to-end with invariants on and apply the oracles:
    two fresh runs must produce byte-identical reports, traces and
    functional digests, and batch functional results must match a
    sequential / single-worker reference.  [None] means every oracle
    passed. *)

val shrink : t -> t list
(** Strictly simpler candidate scenarios, most aggressive first (drop the
    fault schedule, halve it, drop single events, reduce workers, shrink
    the workload, collapse tenants, then normalise machine / system /
    cache scale).  Every candidate differs from [t]. *)

val describe : t -> string
(** One-line summary for fuzzer progress output. *)

val to_repro : t -> string
(** The [charm_run] / [charm_serve] invocation (with [--check] and
    [--faults]) that replays this scenario outside the fuzzer. *)
