type outcome =
  | Clean of { scenarios : int }
  | Failed of {
      seed : int;
      original : Scenario.t;
      original_failure : Scenario.failure;
      minimized : Scenario.t;
      failure : Scenario.failure;
      shrink_steps : int;
      repro : string;
    }

let minimize ?(budget = 80) scenario failure =
  let current = ref scenario in
  let cur_fail = ref failure in
  let tried = ref 0 in
  let steps = ref 0 in
  let progress = ref true in
  while !progress && !tried < budget do
    progress := false;
    (* restart from the first still-failing candidate: candidates are
       ordered most-aggressive-first, so accepted steps shrink fast *)
    (try
       List.iter
         (fun cand ->
           if !tried < budget then begin
             incr tried;
             match Scenario.check cand with
             | Some f ->
                 current := cand;
                 cur_fail := f;
                 incr steps;
                 progress := true;
                 raise Exit
             | None -> ()
           end)
         (Scenario.shrink !current)
     with Exit -> ())
  done;
  (!current, !cur_fail, !steps)

let run ?(log = fun _ -> ()) ~mode ~start_seed ~seeds () =
  let rec go i =
    if i >= seeds then Clean { scenarios = seeds }
    else begin
      let seed = start_seed + i in
      let scenario = Scenario.generate ~mode ~seed in
      log
        (Printf.sprintf "[%d/%d] %s" (i + 1) seeds (Scenario.describe scenario));
      match Scenario.check scenario with
      | None -> go (i + 1)
      | Some failure ->
          log
            (Printf.sprintf "FAIL oracle=%s: %s" failure.Scenario.oracle
               failure.Scenario.detail);
          log "shrinking...";
          let minimized, min_fail, shrink_steps = minimize scenario failure in
          log (Printf.sprintf "minimized in %d steps: %s" shrink_steps
                 (Scenario.describe minimized));
          Failed
            {
              seed;
              original = scenario;
              original_failure = failure;
              minimized;
              failure = min_fail;
              shrink_steps;
              repro = Scenario.to_repro minimized;
            }
    end
  in
  go 0

let outcome_to_text = function
  | Clean { scenarios } ->
      Printf.sprintf "fuzz: %d scenarios, all oracles passed\n" scenarios
  | Failed f ->
      String.concat ""
        [
          Printf.sprintf "fuzz: FAILURE at seed %d\n" f.seed;
          Printf.sprintf "original:  %s\n" (Scenario.describe f.original);
          Printf.sprintf "           oracle=%s: %s\n"
            f.original_failure.Scenario.oracle f.original_failure.Scenario.detail;
          Printf.sprintf "minimized: %s (%d shrink steps, %d fault events)\n"
            (Scenario.describe f.minimized)
            f.shrink_steps
            (List.length f.minimized.Scenario.faults);
          Printf.sprintf "           oracle=%s: %s\n" f.failure.Scenario.oracle
            f.failure.Scenario.detail;
          Printf.sprintf "repro:     %s\n" f.repro;
        ]
