let sched inst = inst.Harness.Systems.env.Workloads.Exec_env.sched
let enable inst = Engine.Sched.set_check (sched inst) true
let enabled inst = Engine.Sched.check_enabled (sched inst)

let verify inst =
  Engine.Sched.check_quiescent (sched inst);
  Chipsim.Machine.check_invariants_full inst.Harness.Systems.machine

let catalog =
  [
    ( "sched.ready-at",
      "no quantum starts before the task's ready_at (futures, barriers and \
       spawn continuations never run early)" );
    ( "sched.offline-idle",
      "a worker whose core is offline (hotplug fault) never executes a \
       quantum, and dormant workers stay dormant" );
    ( "sched.core-ordering",
      "per core, quanta do not overlap in virtual time while the core \
       keeps the same occupant worker" );
    ( "sched.clock-monotonic",
      "each worker's virtual clock is finite and never moves backwards \
       across a quantum" );
    ( "sched.work-conservation",
      "the runnable-task counter equals the total queued work across all \
       deques at every quantum boundary, and every deque is empty once no \
       task is live" );
    ( "machine.fill-conservation",
      "PMU fill-class counts (L2 / local L3 / remote-chiplet / remote-NUMA \
       / local DRAM / remote DRAM) sum to exactly the number of simulated \
       accesses" );
    ( "machine.l3-ways",
      "every chiplet's effective L3 ways stay within [1, configured ways] \
       under way-masking faults" );
    ( "memchan.ring-conservation",
      "per memory node, live time-bin bytes never exceed the node's total \
       accounted bytes, bins are line-aligned and slot ids map back to \
       their own bins (no aliasing)" );
    ( "serve.arrival-conservation",
      "per tenant and globally, submitted = admitted + shed at every \
       arrival and in the final report" );
    ( "serve.completion",
      "every admitted job completes, is sampled in exactly one latency and \
       one queue-wait histogram, and the fair queue drains" );
    ( "serve.registry-agreement",
      "the metrics registry's global counters equal the sums of the \
       per-tenant ledgers" );
    ( "fleet.job-conservation",
      "across the cluster, jobs offered to the router equal shard \
       completions plus shard sheds plus router sheds, and per shard \
       completed + relocated_out = admitted (relocated jobs are never \
       lost or double-counted)" );
    ( "taskgraph.dag-precedence",
      "no task-DAG node observes a start time before every one of its \
       predecessors' recorded finish times (edges are real happens-before \
       constraints, even across chiplets and stolen quanta)" );
    ( "taskgraph.edge-byte-conservation",
      "per DAG job, the bytes charged through chiplet links equal exactly \
       the bytes on edges the mapping cuts — every cut edge transfers \
       once, no cut edge is skipped, no intra-chiplet edge pays" );
    ( "serve.energy-conservation",
      "per-chiplet energy sums equal the machine's combined (memory + \
       compute) meter, and in serving reports the per-tenant attributed \
       energy plus the overhead residual equals the machine's energy \
       growth to 1e-6 relative" );
    ( "charm.power-cap-respected",
      "the power-cap controller never observes a windowed power sample \
       above the cap without having shed at least one chiplet's frequency \
       in response (overcap-unshed audit counter stays 0), shed levels \
       stay within [floor, 1], and a capped run that peaked above the cap \
       records at least one shed" );
    ( "serve.replica-agreement",
      "a replica group's tokens are identical absent an injected \
       corruption, and the voted result always equals the honest \
       plurality recomputation (catches a voter that returns the first \
       replica unchecked)" );
    ( "fleet.no-offline-placement",
      "the router never places a job — fresh or relocated — onto a \
       fully-offline shard (online capacity 0); when every shard is \
       offline the job is shed at the router and accounted there" );
  ]
