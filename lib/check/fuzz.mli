(** The fuzzing driver: seed loop, shrinking, repro reporting.

    [run ~mode ~start_seed ~seeds] generates one {!Scenario.t} per seed,
    checks it, and on the first failure greedily minimizes the scenario
    with {!Scenario.shrink} (re-checking each candidate) until no simpler
    scenario still fails, then reports the shrunk scenario together with
    its ready-to-paste repro command line. *)

type outcome =
  | Clean of { scenarios : int }
  | Failed of {
      seed : int;  (** generation seed of the original failure *)
      original : Scenario.t;
      original_failure : Scenario.failure;
      minimized : Scenario.t;
      failure : Scenario.failure;  (** failure of the minimized scenario *)
      shrink_steps : int;  (** accepted shrink steps *)
      repro : string;  (** [Scenario.to_repro minimized] *)
    }

val minimize :
  ?budget:int -> Scenario.t -> Scenario.failure -> Scenario.t * Scenario.failure * int
(** Greedy shrinking: repeatedly try the candidates of {!Scenario.shrink}
    in order, restart from the first one that still fails, stop when none
    fails or after [budget] candidate checks (default 80).  Returns the
    smallest failing scenario found, its failure, and the number of
    accepted steps. *)

val run :
  ?log:(string -> unit) ->
  mode:Scenario.mode ->
  start_seed:int ->
  seeds:int ->
  unit ->
  outcome
(** Stops at the first failing seed.  [log] receives one progress line per
    scenario and the shrinking trail (default: drop). *)

val outcome_to_text : outcome -> string
(** Human-readable report; for [Failed] it includes the minimized
    scenario, the oracle, the failure detail and the repro line (also the
    format of the CI artifact). *)
