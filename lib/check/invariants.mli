(** The executable-invariant layer, gathered behind one switch.

    Each subsystem owns its cheap assertions ({!Engine.Sched.set_check},
    {!Chipsim.Machine.check_invariants}, {!Serving.Server.config}[.check]);
    this module is the harness-facing façade: enable everything on an
    instance, verify everything after a run, and catch every failure as
    one exception type.  The {!catalog} names each invariant for docs and
    CLI listings. *)

val enable : Harness.Systems.instance -> unit
(** Turn on the scheduler's per-quantum invariants (which include the
    periodic machine conservation checks) for the instance. *)

val enabled : Harness.Systems.instance -> bool

val verify : Harness.Systems.instance -> unit
(** Full post-run verification, independent of whether per-quantum
    checking was on: scheduler quiescence (work conservation, drained
    deques) and the machine's complete conservation scan including the
    memory-channel rings.
    @raise Chipsim.Invariant.Violation describing the first broken
    invariant. *)

val catalog : (string * string) list
(** [(name, statement)] for every invariant the layer enforces. *)
