module Systems = Harness.Systems
module Schedule = Faults.Schedule
module Gen = QCheck.Gen
open Chipsim

type batch_workload = Bfs | Pagerank | Tpch of int | Gups

type tenant = {
  tname : string;
  tweight : float;
  tkinds : Serving.Job.kind list;
  treplicas : int;
}

type serve_params = {
  rate_per_s : float;
  jobs : int;
  max_inflight : int;
  queue_bound : int;
  serve_graph_scale : int;
  senergy_weight : float;  (** CHARM EDP-aware placement weight (0 = off) *)
  spower_cap_mw : float;  (** machine power cap in simulated mW (0 = off) *)
  tenants : tenant list;
}

type fleet_params = {
  shards : int;
  fpolicy : Fleet.Router.policy;
  fepoch_us : float;
  fdiurnal : float;
  frelocation : bool;
  fshard_faults : (int * Schedule.t) list;
  fserve : serve_params;
}

type kind =
  | Batch of { workload : batch_workload; graph_scale : int }
  | Serve of serve_params
  | Fleet of fleet_params

type t = {
  seed : int;
  sys : Systems.sys;
  machine : Systems.machine_kind;
  cache_scale : int;
  workers : int;
  faults : Schedule.t;
  kind : kind;
}

type mode = Smoke | Deep

(* -- generation ---------------------------------------------------------- *)

let batch_workloads = [ Bfs; Pagerank; Tpch 1; Tpch 3; Tpch 6; Gups ]

let serve_kind_pool =
  Serving.Job.
    [
      Bfs; Pagerank; Gups 512; Gups 2048; Tpch 1; Tpch 3; Tpch 6; Ycsb_batch 64;
      Dag (Taskgraph.Graph.Chain, 4);
      Dag (Taskgraph.Graph.Inception, 3);
      Dag (Taskgraph.Graph.Fanout, 4);
    ]

let tenant_names = [ "gold"; "silver"; "bronze" ]

let gen_tenant i =
  let open Gen in
  let* tweight = oneofl [ 1.0; 2.0; 4.0 ] in
  let* nkinds = int_range 1 3 in
  let* tkinds = list_repeat nkinds (oneofl serve_kind_pool) in
  let* treplicas = frequencyl [ (3, 1); (1, 2); (1, 3) ] in
  return { tname = List.nth tenant_names i; tweight; tkinds; treplicas }

let gen_serve_params mode =
  let open Gen in
  let max_gs = match mode with Smoke -> 7 | Deep -> 9 in
  let* jobs = int_range 2 (match mode with Smoke -> 10 | Deep -> 24) in
  let* rate_k = int_range 2 20 in
  let* max_inflight = int_range 1 4 in
  let* queue_bound = int_range 1 8 in
  let* serve_graph_scale = int_range 5 (min 8 max_gs) in
  let* senergy_weight = oneofl [ 0.0; 0.0; 0.5; 2.0 ] in
  let* spower_cap_mw = oneofl [ 0.0; 0.0; 2.0; 10.0 ] in
  let* ntenants = int_range 1 (match mode with Smoke -> 2 | Deep -> 3) in
  let* tenants = flatten_l (List.init ntenants gen_tenant) in
  return
    {
      rate_per_s = float_of_int (rate_k * 1000);
      jobs;
      max_inflight;
      queue_bound;
      serve_graph_scale;
      senergy_weight;
      spower_cap_mw;
      tenants;
    }

let gen_kind mode ~machine ~cache_scale =
  let open Gen in
  let max_gs = match mode with Smoke -> 7 | Deep -> 9 in
  frequencyl [ (4, `Batch); (2, `Serve); (1, `Fleet) ] >>= function
  | `Batch ->
      let* workload = oneofl batch_workloads in
      let* graph_scale = int_range 5 max_gs in
      return (Batch { workload; graph_scale })
  | `Serve ->
      let* p = gen_serve_params mode in
      return (Serve p)
  | `Fleet ->
      let* fserve = gen_serve_params mode in
      (* cluster shards build their own runtimes; the energy/cap knobs
         only reach single-machine serving, so zero them here to keep
         the repro line honest *)
      let fserve = { fserve with senergy_weight = 0.0; spower_cap_mw = 0.0 } in
      let* shards = int_range 2 (match mode with Smoke -> 3 | Deep -> 4) in
      let* fpolicy = oneofl Fleet.Router.all_policies in
      let* fepoch_us = oneofl [ 100.0; 250.0; 500.0 ] in
      let* fdiurnal = oneofl [ 0.0; 0.0; 0.6 ] in
      let* frelocation = bool in
      let* nfaulted =
        frequencyl
          (match mode with
          | Smoke -> [ (2, 0); (2, 1) ]
          | Deep -> [ (1, 0); (2, 1); (1, 2) ])
      in
      let* fshard_faults =
        if nfaulted = 0 then return []
        else
          let topo = Systems.topology machine ~cache_scale in
          let horizon_us = match mode with Smoke -> 2000.0 | Deep -> 20_000.0 in
          flatten_l
            (List.init nfaulted (fun _ ->
                 let* shard = int_range 0 (shards - 1) in
                 let* fault_seed = int_range 0 1_000_000 in
                 let* n = int_range 2 4 in
                 return
                   (shard, Schedule.random ~topo ~seed:fault_seed ~n ~horizon_us)))
      in
      return
        (Fleet
           {
             shards;
             fpolicy;
             fepoch_us;
             fdiurnal;
             frelocation;
             fshard_faults;
             fserve;
           })

(* random data-driven machine: small geometries so fuzz runs stay fast,
   kinds biased toward big so most cores keep baseline speed; sometimes a
   degraded I/O-die link on one chiplet.  Guaranteed >= 4 cores. *)
let gen_custom_machine =
  let open Gen in
  let* sockets = oneofl [ 1; 2 ] in
  let* chiplets_per_socket = oneofl [ 2; 4 ] in
  let* cores_per_chiplet = oneofl [ 2; 4 ] in
  let* chiplet_group_size =
    oneofl (if chiplets_per_socket = 4 then [ 1; 2; 4 ] else [ 1; 2 ])
  in
  let nchiplets = sockets * chiplets_per_socket in
  let* kinds =
    flatten_l
      (List.init nchiplets (fun _ ->
           frequencyl
             [ (3, Topology.Big); (2, Topology.Little); (1, Topology.Accel) ]))
  in
  let* l2_kib = oneofl [ 16; 32; 64 ] in
  let* l3_kib = oneofl [ 512; 1024 ] in
  let* slow_link = frequencyl [ (2, None); (1, Some ()) ] in
  let* slow_chiplet = int_range 0 (nchiplets - 1) in
  let links = Array.make nchiplets Topology.default_link in
  (match slow_link with
  | Some () ->
      links.(slow_chiplet) <-
        { Topology.lat_mult = 1.5; bw_bytes_per_ns = 2.0 }
  | None -> ());
  let topo =
    Topology.v ~chiplet_group_size ~l3_bytes_per_chiplet:(l3_kib * 1024)
      ~l2_bytes_per_core:(l2_kib * 1024) ~mem_channels_per_socket:2
      ~chiplet_kinds:(Array.of_list kinds) ~links ~sockets ~chiplets_per_socket
      ~cores_per_chiplet ()
  in
  return (Systems.Custom { name = "fuzz-hetero"; topo })

let gen ~mode ~seed =
  let open Gen in
  let* machine =
    let presets =
      match mode with
      | Smoke -> [ Systems.Amd_milan_1s ]
      | Deep -> [ Systems.Amd_milan_1s; Systems.Amd_milan; Systems.Intel_spr ]
    in
    frequency [ (4, oneofl presets); (1, gen_custom_machine) ]
  in
  let* sys =
    oneofl
      (match mode with
      | Smoke -> [ Systems.Charm; Systems.Ring; Systems.Os_default ]
      | Deep ->
          [
            Systems.Charm; Systems.Charm_os_threads; Systems.Ring;
            Systems.Shoal; Systems.Asymsched; Systems.Os_default;
          ])
  in
  let* cache_scale = oneofl [ 16; 32; 64 ] in
  let* workers = int_range 2 (match mode with Smoke -> 6 | Deep -> 12) in
  (* custom machines can be tiny (4 cores); presets always have >= 48 *)
  let workers =
    min workers (Topology.num_cores (Systems.topology machine ~cache_scale))
  in
  let* kind = gen_kind mode ~machine ~cache_scale in
  (* fleet scenarios carry per-shard schedules inside the kind instead *)
  let* fault_n =
    match kind with
    | Fleet _ -> return 0
    | Batch _ | Serve _ ->
        frequencyl
          (match mode with
          | Smoke -> [ (3, 0); (2, 2); (2, 4); (1, 6) ]
          | Deep -> [ (2, 0); (2, 3); (2, 6); (1, 12) ])
  in
  let* fault_seed = int_range 0 1_000_000 in
  let faults =
    if fault_n = 0 then []
    else
      let topo = Systems.topology machine ~cache_scale in
      let horizon_us = match mode with Smoke -> 2000.0 | Deep -> 20_000.0 in
      Schedule.random ~topo ~seed:fault_seed ~n:fault_n ~horizon_us
  in
  (* corruption events live outside [Schedule.random]'s pool (adding them
     there would reshuffle every existing fuzz seed); armed seeds that no
     replica ever consumes are harmless *)
  let* n_corrupt =
    match kind with
    | Fleet _ -> return 0
    | Batch _ | Serve _ -> frequencyl [ (4, 0); (2, 1); (1, 3) ]
  in
  (* multiples of 6 make the victim replica index 0 for any group size
     in {1,2,3,6}, which is what the vote-skip plant needs to trip *)
  let* corrupt_seeds =
    list_repeat n_corrupt (map (fun s -> 6 * s) (int_range 0 1_000_000))
  in
  let faults =
    List.map
      (fun s -> { Schedule.at_ns = 0.0; kind = Schedule.Corruption { seed = s } })
      corrupt_seeds
    @ faults
  in
  return { seed; sys; machine; cache_scale; workers; faults; kind }

let generate ~mode ~seed =
  let rand =
    Random.State.make
      [| 0x5ca1ab1e; seed; (match mode with Smoke -> 0 | Deep -> 1) |]
  in
  Gen.generate1 ~rand (gen ~mode ~seed)

(* -- execution ----------------------------------------------------------- *)

type functional =
  | F_levels of int array
  | F_ranks of float array
  | F_checksum of float
  | F_none

type digest = { report : string; trace : string; fn : functional }

let fn_digest = function
  | F_levels ls ->
      String.concat ","
        (Array.to_list (Array.map string_of_int ls))
  | F_ranks rs ->
      String.concat ","
        (Array.to_list (Array.map (Printf.sprintf "%.17g") rs))
  | F_checksum c -> Printf.sprintf "%.17g" c
  | F_none -> ""

let sched inst = inst.Systems.env.Workloads.Exec_env.sched

let attach_faults inst faults =
  if faults <> [] then
    ignore (Faults.Injector.attach (sched inst) faults : Faults.Injector.t)

let make_graph env ~seed ~graph_scale =
  let alloc ~elt_bytes ~count =
    env.Workloads.Exec_env.alloc_shared ~elt_bytes ~count
  in
  Workloads.Csr.of_kronecker ~weighted:false ~alloc
    (Workloads.Kronecker.generate ~seed ~scale:graph_scale ~edge_factor:16 ())

let bfs_source g =
  let rec go v =
    if v >= g.Workloads.Csr.n - 1 || Workloads.Csr.degree g v > 0 then v
    else go (v + 1)
  in
  go 0

let run_batch_workload env ~seed ~graph_scale ~n_workers:_ = function
  | Bfs ->
      let g = make_graph env ~seed ~graph_scale in
      let levels, _ = Workloads.Bfs.run env g ~source:(bfs_source g) in
      F_levels levels
  | Pagerank ->
      let g = make_graph env ~seed ~graph_scale in
      let ranks, _ = Workloads.Pagerank.run env g () in
      F_ranks ranks
  | Tpch q ->
      let alloc ~elt_bytes ~count =
        env.Workloads.Exec_env.alloc_shared ~elt_bytes ~count
      in
      let data = Olap.Tpch_data.generate ~alloc ~seed ~sf:0.01 () in
      let r, _ = Olap.Tpch_queries.execute env data q in
      F_checksum r.Olap.Tpch_queries.checksum
  | Gups ->
      let params = { Workloads.Gups.default_params with Workloads.Gups.seed } in
      let _ = Workloads.Gups.run env params in
      F_none

let server_config_of_params t (p : serve_params) ~trace =
  let tenants =
    List.map
      (fun te ->
        {
          Serving.Server.name = te.tname;
          weight = te.tweight;
          slo_factor = 3.0;
          process = Serving.Arrivals.Open_loop { rate_per_s = p.rate_per_s };
          jobs = p.jobs;
          mix = List.map (fun k -> (k, 1)) te.tkinds;
          replicas = te.treplicas;
        })
      p.tenants
  in
  {
    Serving.Server.tenants;
    admission =
      {
        Serving.Admission.max_queue_per_tenant = p.queue_bound;
        max_global_queue = p.queue_bound * max 2 (List.length p.tenants);
      };
    max_inflight = p.max_inflight;
    seed = t.seed;
    data =
      {
        Serving.Job.default_data_config with
        graph_scale = p.serve_graph_scale;
        seed = t.seed + 1;
      };
    trace;
    on_complete = None;
    check = true;
  }

(* the fleet oracle subject: the deterministic JSON result plus the
   placement log, with per-shard serving invariants and the cluster
   conservation checks live inside [Cluster.run] *)
let run_fleet t (f : fleet_params) =
  let cfg =
    {
      Fleet.Cluster.n_shards = f.shards;
      sys = t.sys;
      machines = [ t.machine ];
      n_workers = t.workers;
      cache_scale = t.cache_scale;
      policy = f.fpolicy;
      epoch_us = f.fepoch_us;
      serve = server_config_of_params t f.fserve ~trace:None;
      diurnal_amplitude = f.fdiurnal;
      diurnal_period_us = 4000.0;
      faults = f.fshard_faults;
      relocation = f.frelocation;
      degraded_capacity = 0.75;
      degraded_sick = 0.25;
      plant = None;
      trace = false;
    }
  in
  let res = Fleet.Cluster.run cfg in
  {
    report =
      Fleet.Cluster.result_to_json res ^ "\n" ^ res.Fleet.Cluster.placement_log;
    trace = "";
    fn = F_none;
  }

let run_once t =
  match t.kind with
  | Fleet f -> run_fleet t f
  | Batch _ | Serve _ ->
  let charm_config =
    match t.kind with
    | Serve p when p.senergy_weight > 0.0 || p.spower_cap_mw > 0.0 ->
        Some
          {
            Charm.Config.default with
            Charm.Config.energy_weight = p.senergy_weight;
            power_cap_mw = p.spower_cap_mw;
          }
    | _ -> None
  in
  let inst =
    Systems.make ?charm_config ~cache_scale:t.cache_scale t.sys t.machine
      ~n_workers:t.workers ()
  in
  (* non-CHARM systems have no runtime to flip the meter on *)
  (match t.kind with
  | Serve p when p.senergy_weight > 0.0 || p.spower_cap_mw > 0.0 ->
      Engine.Sched.set_energy (sched inst) true
  | _ -> ());
  let tr = Engine.Trace.create () in
  (match t.kind with
  | Fleet _ -> assert false
  | Batch { workload; graph_scale } ->
      Invariants.enable inst;
      (match inst.Systems.charm with
      | Some rt -> Charm.Runtime.attach_trace rt tr
      | None -> Engine.Sched.set_trace (sched inst) (Some tr));
      attach_faults inst t.faults;
      let fn =
        run_batch_workload inst.Systems.env ~seed:t.seed ~graph_scale
          ~n_workers:t.workers workload
      in
      Invariants.verify inst;
      let report =
        Format.asprintf "%a" Engine.Stats.pp (Systems.report inst)
      in
      { report; trace = Engine.Trace.to_chrome_json tr; fn }
  | Serve p ->
      attach_faults inst t.faults;
      let cfg = server_config_of_params t p ~trace:(Some tr) in
      let report = Serving.Server.run inst cfg in
      Invariants.verify inst;
      {
        report = Serving.Server.report_to_json report;
        trace = Engine.Trace.to_chrome_json tr;
        fn = F_none;
      })

(* -- oracles ------------------------------------------------------------- *)

type failure = { oracle : string; detail : string }

let first_difference a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  let i = go 0 in
  let ctx s =
    String.sub s (max 0 (i - 30)) (min 60 (String.length s - max 0 (i - 30)))
  in
  Printf.sprintf "first divergence at byte %d: %S vs %S (lengths %d / %d)" i
    (ctx a) (ctx b) (String.length a) (String.length b)

(* scheduling must never change results: compare against a sequential
   reference where one exists (BFS, PageRank) and a fresh single-worker
   run otherwise (TPC-H).  GUPS has no functional output; serving runs
   are covered by the determinism and invariant oracles only (admission
   outcomes legitimately depend on timing). *)
let reference_failure t fn =
  match (t.kind, fn) with
  | Batch { workload = Bfs; graph_scale }, F_levels levels ->
      let env =
        (Systems.make ~cache_scale:t.cache_scale t.sys t.machine ~n_workers:1
           ())
          .Systems.env
      in
      let g = make_graph env ~seed:t.seed ~graph_scale in
      let expected = Workloads.Bfs.reference g ~source:(bfs_source g) in
      if levels = expected then None
      else
        Some
          {
            oracle = "reference/bfs";
            detail =
              "parallel BFS levels differ from the sequential reference";
          }
  | Batch { workload = Pagerank; graph_scale }, F_ranks ranks ->
      let env =
        (Systems.make ~cache_scale:t.cache_scale t.sys t.machine ~n_workers:1
           ())
          .Systems.env
      in
      let g = make_graph env ~seed:t.seed ~graph_scale in
      let expected = Workloads.Pagerank.reference g () in
      let max_err = ref 0.0 in
      Array.iteri
        (fun i r ->
          max_err := Float.max !max_err (abs_float (r -. expected.(i))))
        ranks;
      if !max_err < 1e-9 then None
      else
        Some
          {
            oracle = "reference/pagerank";
            detail =
              Printf.sprintf
                "ranks diverge from the sequential reference (max err %g)"
                !max_err;
          }
  | Batch { workload = Tpch q; graph_scale }, F_checksum c ->
      let inst1 =
        Systems.make ~cache_scale:t.cache_scale t.sys t.machine ~n_workers:1 ()
      in
      let ref_fn =
        run_batch_workload inst1.Systems.env ~seed:t.seed ~graph_scale
          ~n_workers:1 (Tpch q)
      in
      let expected = match ref_fn with F_checksum e -> e | _ -> nan in
      let tol = 1e-4 +. (1e-7 *. Float.max (abs_float c) (abs_float expected)) in
      if abs_float (c -. expected) <= tol then None
      else
        Some
          {
            oracle = "reference/tpch";
            detail =
              Printf.sprintf
                "Q%d checksum %.9e differs from single-worker run %.9e" q c
                expected;
          }
  | _ -> None

let check t =
  let run () =
    match run_once t with
    | d -> Ok d
    | exception Chipsim.Invariant.Violation msg ->
        Error { oracle = "invariant"; detail = msg }
    | exception e -> Error { oracle = "crash"; detail = Printexc.to_string e }
  in
  match run () with
  | Error f -> Some f
  | Ok d1 -> (
      match run () with
      | Error f -> Some f
      | Ok d2 ->
          if d1.report <> d2.report then
            Some
              {
                oracle = "determinism/report";
                detail = first_difference d1.report d2.report;
              }
          else if d1.trace <> d2.trace then
            Some
              {
                oracle = "determinism/trace";
                detail = first_difference d1.trace d2.trace;
              }
          else if fn_digest d1.fn <> fn_digest d2.fn then
            Some
              {
                oracle = "determinism/result";
                detail =
                  first_difference (fn_digest d1.fn) (fn_digest d2.fn);
              }
          else
            match reference_failure t d1.fn with
            | Some f -> Some f
            | None -> None
            | exception Chipsim.Invariant.Violation msg ->
                Some { oracle = "invariant"; detail = msg }
            | exception e ->
                Some { oracle = "crash"; detail = Printexc.to_string e })

(* -- shrinking ----------------------------------------------------------- *)

let take n l = List.filteri (fun i _ -> i < n) l
let drop n l = List.filteri (fun i _ -> i >= n) l
let remove_nth n l = List.filteri (fun i _ -> i <> n) l

let sanitize_faults ~topo faults =
  let cores = Topology.num_cores topo in
  let chiplets = Topology.num_chiplets topo in
  let nodes = topo.Topology.sockets in
  List.filter
    (fun { Schedule.kind; _ } ->
      match kind with
      | Schedule.Core_off c | Schedule.Core_on c -> c < cores
      | Schedule.Dvfs { core; _ } -> core < cores
      | Schedule.L3_ways { chiplet; _ } | Schedule.Link { chiplet; _ } ->
          chiplet < chiplets
      | Schedule.Xsocket _ | Schedule.Corruption _ -> true
      | Schedule.Membw { node; _ } -> node < nodes)
    faults

let shrink_serve (p : serve_params) =
  let cands = ref [] in
  let add c = if c <> p then cands := c :: !cands in
  if List.length p.tenants > 1 then add { p with tenants = [ List.hd p.tenants ] };
  (match p.tenants with
  | [ te ] when List.length te.tkinds > 1 ->
      add { p with tenants = [ { te with tkinds = [ List.hd te.tkinds ] } ] }
  | _ -> ());
  if p.jobs > 1 then add { p with jobs = max 1 (p.jobs / 2) };
  if p.max_inflight > 1 then add { p with max_inflight = 1 };
  if p.queue_bound > 1 then add { p with queue_bound = 1 };
  if p.serve_graph_scale > 5 then
    add { p with serve_graph_scale = p.serve_graph_scale - 1 };
  if p.senergy_weight > 0.0 then add { p with senergy_weight = 0.0 };
  if p.spower_cap_mw > 0.0 then add { p with spower_cap_mw = 0.0 };
  if List.exists (fun te -> te.treplicas > 1) p.tenants then
    add
      {
        p with
        tenants = List.map (fun te -> { te with treplicas = 1 }) p.tenants;
      };
  List.rev !cands

let shrink t =
  let cands = ref [] in
  let add c = if c <> t then cands := c :: !cands in
  (match t.faults with
  | [] -> ()
  | evs ->
      let n = List.length evs in
      add { t with faults = [] };
      if n >= 2 then begin
        add { t with faults = take (n / 2) evs };
        add { t with faults = drop (n / 2) evs }
      end;
      if n <= 8 then
        List.iteri (fun i _ -> add { t with faults = remove_nth i evs }) evs);
  if t.workers > 2 then begin
    add { t with workers = max 2 (t.workers / 2) };
    add { t with workers = t.workers - 1 }
  end;
  (match t.kind with
  | Batch b ->
      if b.graph_scale > 5 then
        add { t with kind = Batch { b with graph_scale = b.graph_scale - 1 } }
  | Serve p ->
      List.iter (fun p' -> add { t with kind = Serve p' }) (shrink_serve p)
  | Fleet f ->
      (* collapse the fleet tier entirely first — if the bug reproduces on
         a single machine the repro is much simpler *)
      add { t with kind = Serve f.fserve };
      (match f.fshard_faults with
      | [] -> ()
      | [ _ ] -> add { t with kind = Fleet { f with fshard_faults = [] } }
      | evs ->
          add { t with kind = Fleet { f with fshard_faults = [] } };
          List.iteri
            (fun i _ ->
              add
                { t with kind = Fleet { f with fshard_faults = remove_nth i evs } })
            evs);
      if f.shards > 2 then
        add
          {
            t with
            kind =
              Fleet
                {
                  f with
                  shards = f.shards - 1;
                  (* keep fault shard indices in range for the smaller fleet *)
                  fshard_faults =
                    List.filter (fun (s, _) -> s < f.shards - 1) f.fshard_faults;
                };
          };
      if f.fdiurnal > 0.0 then
        add { t with kind = Fleet { f with fdiurnal = 0.0 } };
      if f.frelocation then
        add { t with kind = Fleet { f with frelocation = false } };
      if f.fpolicy <> Fleet.Router.Round_robin then
        add { t with kind = Fleet { f with fpolicy = Fleet.Router.Round_robin } };
      List.iter
        (fun p' -> add { t with kind = Fleet { f with fserve = p' } })
        (shrink_serve f.fserve));
  if t.machine <> Systems.Amd_milan_1s then begin
    let topo = Systems.topology Systems.Amd_milan_1s ~cache_scale:t.cache_scale in
    let kind =
      match t.kind with
      | Fleet f ->
          Fleet
            {
              f with
              fshard_faults =
                List.map
                  (fun (s, sch) -> (s, sanitize_faults ~topo sch))
                  f.fshard_faults;
            }
      | k -> k
    in
    add
      {
        t with
        machine = Systems.Amd_milan_1s;
        faults = sanitize_faults ~topo t.faults;
        kind;
      }
  end;
  if t.sys <> Systems.Charm then add { t with sys = Systems.Charm };
  if t.cache_scale <> 16 then add { t with cache_scale = 16 };
  List.rev !cands

(* -- rendering ----------------------------------------------------------- *)

let sys_cli = function
  | Systems.Charm -> "charm"
  | Systems.Charm_os_threads -> "charm-async"
  | Systems.Ring -> "ring"
  | Systems.Dw_native -> "dw-native"
  | Systems.Shoal -> "shoal"
  | Systems.Asymsched -> "asymsched"
  | Systems.Sam -> "sam"
  | Systems.Os_default -> "os-default"
  | Systems.Local_cache -> "local-cache"
  | Systems.Distributed_cache -> "distributed-cache"

(* machine CLI fragment, flag included: presets render as [-m NAME],
   custom machines inline their whole spec through [--topology] so the
   repro line stays self-contained *)
let machine_frag = function
  | Systems.Custom { topo; _ } ->
      Printf.sprintf "--topology '%s'" (Topology.to_spec topo)
  | m -> Printf.sprintf "-m %s" (Systems.machine_name m)

let workload_cli = function
  | Bfs -> "-w bfs"
  | Pagerank -> "-w pr"
  | Tpch q -> Printf.sprintf "-w tpch -q %d" q
  | Gups -> "-w gups"

let workload_name = function
  | Bfs -> "bfs"
  | Pagerank -> "pr"
  | Tpch q -> Printf.sprintf "tpch:%d" q
  | Gups -> "gups"

let faults_frag t =
  match t.faults with
  | [] -> ""
  | f -> Printf.sprintf " --faults '%s'" (Schedule.to_spec f)

let serve_frags t (p : serve_params) =
  let tenant_frags =
    String.concat ""
      (List.map
         (fun te ->
           Printf.sprintf " --tenant %s:%g:%s" te.tname te.tweight
             (String.concat "+" (List.map Serving.Job.kind_name te.tkinds)))
         p.tenants)
  in
  let replica_frags =
    String.concat ""
      (List.filter_map
         (fun te ->
           if te.treplicas > 1 then
             Some (Printf.sprintf " --replicate %s:%d" te.tname te.treplicas)
           else None)
         p.tenants)
  in
  let energy_frags =
    (if p.senergy_weight > 0.0 then
       Printf.sprintf " --energy-weight %g" p.senergy_weight
     else "")
    ^
    if p.spower_cap_mw > 0.0 then
      Printf.sprintf " --power-cap %g" p.spower_cap_mw
    else ""
  in
  Printf.sprintf
    "-s %s %s -n %d --cache-scale %d --rate %g --jobs %d --seed %d \
     --max-inflight %d --queue-bound %d --graph-scale %d%s%s%s"
    (sys_cli t.sys) (machine_frag t.machine) t.workers t.cache_scale
    p.rate_per_s p.jobs t.seed p.max_inflight p.queue_bound
    p.serve_graph_scale tenant_frags replica_frags energy_frags

let to_repro t =
  match t.kind with
  | Batch { workload; graph_scale } ->
      Printf.sprintf
        "charm_run %s -s %s %s -n %d --cache-scale %d --graph-scale %d \
         --seed %d --check%s"
        (workload_cli workload) (sys_cli t.sys) (machine_frag t.machine)
        t.workers t.cache_scale graph_scale t.seed (faults_frag t)
  | Serve p ->
      Printf.sprintf "charm_serve %s --check%s" (serve_frags t p)
        (faults_frag t)
  | Fleet f ->
      let fault_frags =
        String.concat ""
          (List.map
             (fun (s, sch) ->
               Printf.sprintf " --faults-shard '%d:%s'" s (Schedule.to_spec sch))
             f.fshard_faults)
      in
      Printf.sprintf
        "charm_serve --fleet %d --router %s --epoch-us %g %s%s%s%s --check"
        f.shards
        (Fleet.Router.policy_name f.fpolicy)
        f.fepoch_us
        (serve_frags t f.fserve)
        fault_frags
        (if f.fdiurnal > 0.0 then Printf.sprintf " --diurnal %g" f.fdiurnal
         else "")
        (if f.frelocation then "" else " --no-relocation")

let describe t =
  let kind =
    match t.kind with
    | Batch { workload; graph_scale } ->
        Printf.sprintf "batch %s scale=%d" (workload_name workload) graph_scale
    | Serve p ->
        Printf.sprintf "serve %d-tenant jobs=%d rate=%g%s%s%s"
          (List.length p.tenants) p.jobs p.rate_per_s
          (if p.spower_cap_mw > 0.0 then
             Printf.sprintf " cap=%gmW" p.spower_cap_mw
           else "")
          (if p.senergy_weight > 0.0 then
             Printf.sprintf " edp=%g" p.senergy_weight
           else "")
          (if List.exists (fun te -> te.treplicas > 1) p.tenants then
             " replicated"
           else "")
    | Fleet f ->
        Printf.sprintf "fleet %dx %s jobs=%d%s%s" f.shards
          (Fleet.Router.policy_name f.fpolicy)
          f.fserve.jobs
          (if f.fdiurnal > 0.0 then " diurnal" else "")
          (if f.frelocation then "" else " no-reloc")
  in
  let n_faults =
    List.length t.faults
    + (match t.kind with
      | Fleet f ->
          List.fold_left (fun a (_, s) -> a + List.length s) 0 f.fshard_faults
      | _ -> 0)
  in
  Printf.sprintf "seed=%d %s on %s/%s n=%d cache/%d faults=%d" t.seed kind
    (sys_cli t.sys) (Systems.machine_name t.machine) t.workers t.cache_scale
    n_faults
