module Systems = Harness.Systems
module Machine = Chipsim.Machine
module Pmu = Chipsim.Pmu
module Modifiers = Chipsim.Modifiers
module Server = Serving.Server
module Session = Serving.Server.Session
module Metrics = Serving.Metrics
module Histogram = Serving.Histogram
module Job = Serving.Job
module Trace = Engine.Trace
module Rng = Engine.Rng

type plant = Drop_relocated | Route_offline

let plant_name = function
  | Drop_relocated -> "drop-relocated"
  | Route_offline -> "route-offline"

type config = {
  n_shards : int;
  sys : Systems.sys;
  machines : Systems.machine_kind list;
  n_workers : int;
  cache_scale : int;
  policy : Router.policy;
  epoch_us : float;
  serve : Server.config;
  diurnal_amplitude : float;
  diurnal_period_us : float;
  faults : (int * Faults.Schedule.t) list;
  relocation : bool;
  degraded_capacity : float;
  degraded_sick : float;
  plant : plant option;
  trace : bool;
}

let default_config ~seed =
  {
    n_shards = 2;
    sys = Systems.Charm;
    machines = [ Systems.Amd_milan ];
    n_workers = 16;
    cache_scale = 16;
    policy = Router.Charm_aware;
    epoch_us = 250.0;
    serve = Server.default_config ~seed;
    diurnal_amplitude = 0.0;
    diurnal_period_us = 4000.0;
    faults = [];
    relocation = true;
    degraded_capacity = 0.75;
    degraded_sick = 0.25;
    plant = None;
    trace = false;
  }

let machine_name = Systems.machine_name

type shard_result = {
  shard : int;
  machine : string;
  placed : int;
  sim_events : int;
  report : Server.report;
}

type result = {
  policy : Router.policy;
  n_shards : int;
  router_submitted : int;
  router_shed : int;
  relocations : int;
  epochs : int;
  makespan_ns : float;
  shard_results : shard_result list;
  registry : Metrics.t;
  fleet_latency : Histogram.t;
  placement_log : string;
  traces : Trace.t list;
}

let validate (cfg : config) =
  if cfg.n_shards < 1 then invalid_arg "Cluster.run: n_shards < 1";
  if cfg.machines = [] then invalid_arg "Cluster.run: empty machine list";
  if cfg.epoch_us <= 0.0 then invalid_arg "Cluster.run: epoch_us <= 0";
  if cfg.diurnal_amplitude < 0.0 || cfg.diurnal_amplitude > 1.0 then
    invalid_arg "Cluster.run: diurnal amplitude outside [0, 1]";
  if cfg.diurnal_period_us <= 0.0 then
    invalid_arg "Cluster.run: diurnal period <= 0";
  List.iter
    (fun (s, _) ->
      if s < 0 || s >= cfg.n_shards then
        invalid_arg "Cluster.run: fault schedule for shard out of range")
    cfg.faults;
  List.iter
    (fun (t : Server.tenant_config) ->
      match t.Server.process with
      | Serving.Arrivals.Open_loop _ -> ()
      | Serving.Arrivals.Closed_loop _ ->
          invalid_arg "Cluster.run: fleet mode drives open-loop tenants only")
    cfg.serve.Server.tenants

(* -- cluster-level arrival generation ------------------------------------

   The job set is drawn once, before routing: per tenant, Poisson arrival
   times (optionally diurnally modulated by thinning against the peak
   rate) and a kind + per-job seed stream from the tenant's mix RNG.  The
   identical job set therefore hits every router policy — policy
   comparisons measure placement, not luck of the draw. *)

type arrival = {
  at_ns : float;
  tenant : int;
  kind : Job.kind;
  job_seed : int;
}

let pick_kind rng mix =
  let total = List.fold_left (fun a (_, w) -> a + w) 0 mix in
  let r = Rng.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (k, w) :: rest -> if r < acc + w then k else go (acc + w) rest
  in
  go 0 mix

let diurnal_times rng ~rate_per_s ~jobs ~amplitude ~period_ns =
  if amplitude <= 0.0 then
    Serving.Arrivals.poisson_times ~rng ~rate_per_s ~jobs
  else begin
    (* Poisson thinning: candidates at the peak rate, accepted with
       probability rate(t)/peak — exact for an inhomogeneous process and
       deterministic given the RNG stream *)
    let peak = rate_per_s *. (1.0 +. amplitude) in
    let out = Array.make jobs 0.0 in
    let t = ref 0.0 in
    let i = ref 0 in
    while !i < jobs do
      let u = 1.0 -. Rng.float rng 1.0 in
      t := !t +. (-.log u /. peak *. 1e9);
      let inst =
        rate_per_s
        *. (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. !t /. period_ns)))
      in
      if Rng.float rng 1.0 < inst /. peak then begin
        out.(!i) <- !t;
        incr i
      end
    done;
    out
  end

let generate_arrivals cfg =
  let period_ns = cfg.diurnal_period_us *. 1e3 in
  let seed = cfg.serve.Server.seed in
  let all =
    List.concat
      (List.mapi
         (fun ti (t : Server.tenant_config) ->
           let rate =
             match t.Server.process with
             | Serving.Arrivals.Open_loop { rate_per_s } -> rate_per_s
             | Serving.Arrivals.Closed_loop _ -> assert false
           in
           let arr_rng = Rng.create ((seed * 31) + (2 * ti) + 1) in
           let mix_rng = Rng.create ((seed * 31) + (2 * ti)) in
           let times =
             diurnal_times arr_rng ~rate_per_s:rate ~jobs:t.Server.jobs
               ~amplitude:cfg.diurnal_amplitude ~period_ns
           in
           Array.to_list
             (Array.map
                (fun at_ns ->
                  {
                    at_ns;
                    tenant = ti;
                    kind = pick_kind mix_rng t.Server.mix;
                    job_seed = Rng.int mix_rng 0x3FFFFFFF;
                  })
                times))
         cfg.serve.Server.tenants)
  in
  (* total order: time, then tenant index (per-tenant times are strictly
     increasing, so this is a deterministic total order) *)
  List.stable_sort
    (fun a b ->
      match Float.compare a.at_ns b.at_ns with
      | 0 -> compare a.tenant b.tenant
      | c -> c)
    all
  |> Array.of_list

(* -- fleet-level invariants --------------------------------------------- *)

let sum_tenants (r : Server.report) f =
  List.fold_left (fun acc tr -> acc + f tr) 0 r.Server.tenant_reports

let check_result res =
  let fail = Chipsim.Invariant.fail in
  let completed =
    List.fold_left
      (fun acc sr -> acc + sum_tenants sr.report (fun tr -> tr.Server.completed))
      0 res.shard_results
  in
  let shard_shed =
    List.fold_left
      (fun acc sr -> acc + sum_tenants sr.report (fun tr -> tr.Server.shed))
      0 res.shard_results
  in
  (* jobs conserved across router + shards: every arrival offered to the
     router either completed on some shard, was shed by a shard's
     admission control, or was shed at the router (no online shard).
     Relocations cancel out: each one is both a relocated_out and a fresh
     shard submission. *)
  if res.router_submitted <> completed + shard_shed + res.router_shed then
    fail
      "fleet: %d jobs offered to the router but %d completed + %d shard-shed \
       + %d router-shed"
      res.router_submitted completed shard_shed res.router_shed;
  List.iter
    (fun sr ->
      let r = sr.report in
      let submitted = sum_tenants r (fun tr -> tr.Server.submitted) in
      let admitted = sum_tenants r (fun tr -> tr.Server.admitted) in
      let shed = sum_tenants r (fun tr -> tr.Server.shed) in
      let comp = sum_tenants r (fun tr -> tr.Server.completed) in
      let out = sum_tenants r (fun tr -> tr.Server.relocated_out) in
      if submitted <> admitted + shed then
        fail "fleet: shard %d submitted %d <> admitted %d + shed %d" sr.shard
          submitted admitted shed;
      if comp + out <> admitted then
        fail "fleet: shard %d completed %d + relocated-out %d <> admitted %d"
          sr.shard comp out admitted)
    res.shard_results

(* -- the epoch-driven fleet loop ---------------------------------------- *)

let run cfg =
  validate cfg;
  let n = cfg.n_shards in
  let machines = Array.of_list cfg.machines in
  let shard_machine s = machines.(s mod Array.length machines) in
  let router_trace =
    if cfg.trace then Some (Trace.create ~pid:0 ~name:"router" ()) else None
  in
  let tenant_names =
    Array.of_list
      (List.map (fun (t : Server.tenant_config) -> t.Server.name) cfg.serve.Server.tenants)
  in
  (* a replicated tenant's job is a co-scheduled unit: the whole group
     lands on one shard (replicas spread over the shard's chiplets, not
     across machines — voting needs one scheduler), and the router must
     price the placement at the group's full service demand *)
  let tenant_replicas =
    Array.of_list
      (List.map
         (fun (t : Server.tenant_config) -> t.Server.replicas)
         cfg.serve.Server.tenants)
  in
  let shard_traces =
    Array.init n (fun s ->
        if cfg.trace then
          Some
            (Trace.create ~pid:(s + 1)
               ~name:(Printf.sprintf "shard%d/%s" s (machine_name (shard_machine s)))
               ())
        else None)
  in
  let router = Router.create cfg.policy in
  let sessions =
    Array.init n (fun s ->
        let inst =
          Systems.make ~cache_scale:cfg.cache_scale cfg.sys (shard_machine s)
            ~n_workers:cfg.n_workers ()
        in
        let scfg =
          {
            cfg.serve with
            Server.seed = cfg.serve.Server.seed + (7919 * (s + 1));
            trace = shard_traces.(s);
            (* every completion feeds the router's per-shard latency EWMA;
               only the [ewma] policy reads it, so other fleets are
               unaffected *)
            on_complete =
              Some
                (fun ~tenant:_ ~kind:_ ~submit_ns ~finish_ns ->
                  Router.observe router ~shard:s
                    ~service_ns:(finish_ns -. submit_ns));
          }
        in
        Session.create inst scfg)
  in
  let injectors =
    List.map
      (fun (s, schedule) ->
        let sched =
          (Session.instance sessions.(s)).Systems.env.Workloads.Exec_env.sched
        in
        Faults.Injector.attach sched schedule)
      cfg.faults
  in

  let views =
    Array.init n (fun s ->
        { Router.shard = s; capacity = 1.0; sick_fraction = 0.0; load_ns = 0.0; depth = 0 })
  in
  let sick_fraction s =
    let inst = Session.instance sessions.(s) in
    let topo = Machine.topology inst.Systems.machine in
    let n_chiplets = topo.Chipsim.Topology.sockets * topo.Chipsim.Topology.chiplets_per_socket in
    let sick =
      match inst.Systems.charm with
      | Some rt ->
          List.length
            (Charm.Health_monitor.sick_chiplets (Charm.Runtime.health rt))
      | None ->
          (* a chiplet-blind machine still has OS-visible state (hotplug,
             DVFS); silent link/L3 degradation stays invisible to it *)
          let mods = Machine.modifiers inst.Systems.machine in
          let c = ref 0 in
          for ch = 0 to n_chiplets - 1 do
            if
              Modifiers.chiplet_os_impaired mods ~chiplet:ch
                ~cores_per_chiplet:topo.Chipsim.Topology.cores_per_chiplet
            then incr c
          done;
          !c
    in
    float_of_int sick /. float_of_int (max 1 n_chiplets)
  in
  (* static per-shard heterogeneity factor: a fleet mixing big-core and
     little-core machines should not route as if they were equal.
     Exactly 1.0 for homogeneous shards, so preset fleets are unchanged. *)
  let shard_kind_capacity =
    Array.init n (fun s ->
        Chipsim.Topology.relative_capacity
          (Machine.topology (Session.instance sessions.(s)).Systems.machine))
  in
  let refresh_views ~now =
    Array.iter
      (fun (v : Router.view) ->
        let s = v.Router.shard in
        let inst = Session.instance sessions.(s) in
        v.Router.capacity <-
          Modifiers.online_capacity (Machine.modifiers inst.Systems.machine)
          *. shard_kind_capacity.(s);
        v.Router.sick_fraction <- sick_fraction s;
        v.Router.load_ns <-
          Float.max 0.0 (Session.backlog_ns sessions.(s) -. now)
          +. Session.queued_cost sessions.(s);
        v.Router.depth <- Session.queue_length sessions.(s))
      views
  in
  let degraded (v : Router.view) =
    v.Router.capacity <= 0.0
    || v.Router.capacity < cfg.degraded_capacity
    || v.Router.sick_fraction >= cfg.degraded_sick
  in

  let log = Buffer.create 4096 in
  let router_submitted = ref 0 in
  let router_shed = ref 0 in
  let relocations = ref 0 in
  let placed = Array.make n 0 in
  let check = cfg.serve.Server.check in

  (* place one job (fresh arrival or relocation) through the router *)
  let place ~now ~job_id ~tenant ~kind ~job_seed ~submit_ns ~from_shard =
    let tname = tenant_names.(tenant) in
    let cost =
      Session.cost_estimate sessions.(0) kind
      *. float_of_int tenant_replicas.(tenant)
    in
    let forced =
      (* planted routing bug: aim at a fully-offline shard when one
         exists, to prove the no-offline-placement invariant fires *)
      match cfg.plant with
      | Some Route_offline ->
          Array.fold_left
            (fun acc (v : Router.view) ->
              if acc = None && v.Router.capacity <= 0.0 then Some v.Router.shard
              else acc)
            None views
      | _ -> None
    in
    let target =
      match forced with
      | Some s -> Some s
      | None -> Router.choose router ~exclude:from_shard ~tenant:tname ~cost views
    in
    match target with
    | None ->
        incr router_shed;
        (match router_trace with
        | Some tr -> Trace.fleet_shed tr ~job_id ~tenant:tname ~at_ns:now
        | None -> ());
        Buffer.add_string log
          (Printf.sprintf "%.0f shed #%d %s/%s\n" now job_id tname
             (Job.kind_name kind))
    | Some s ->
        if check && views.(s).Router.capacity <= 0.0 then
          Chipsim.Invariant.fail
            "fleet: job #%d placed onto fully-offline shard %d" job_id s;
        (match router_trace with
        | Some tr ->
            if from_shard >= 0 then
              Trace.fleet_relocate tr ~job_id ~from_shard ~to_shard:s ~at_ns:now
            else Trace.fleet_route tr ~job_id ~tenant:tname ~shard:s ~at_ns:now
        | None -> ());
        if from_shard >= 0 then Session.note_relocated_in sessions.(s) ~tenant;
        let decision =
          Session.submit sessions.(s) ~tenant ~job_id ~arrival:submit_ns ~kind
            ~job_seed
        in
        placed.(s) <- placed.(s) + 1;
        let verb = if from_shard >= 0 then
            Printf.sprintf "reloc %d->%d" from_shard s
          else Printf.sprintf "route ->%d" s
        in
        Buffer.add_string log
          (Printf.sprintf "%.0f %s #%d %s/%s %s\n" now verb job_id tname
             (Job.kind_name kind)
             (Serving.Admission.decision_name decision))
  in

  let relocate_pass ~now =
    if cfg.relocation then
      for s = 0 to n - 1 do
        let healthy_target_exists =
          Array.exists
            (fun (v : Router.view) ->
              v.Router.shard <> s && v.Router.capacity > 0.0 && not (degraded v))
            views
        in
        if
          degraded views.(s)
          && Session.queue_length sessions.(s) > 0
          && healthy_target_exists
        then begin
          let dropped = Session.drop_queued sessions.(s) in
          views.(s).Router.load_ns <-
            Float.max 0.0 (Session.backlog_ns sessions.(s) -. now);
          views.(s).Router.depth <- 0;
          match cfg.plant with
          | Some Drop_relocated ->
              (* planted bug: relocated jobs vanish — fleet conservation
                 must trip *)
              ()
          | _ ->
              List.iter
                (fun (r : Session.relocatable) ->
                  incr relocations;
                  place ~now ~job_id:r.Session.r_id ~tenant:r.Session.r_tenant
                    ~kind:r.Session.r_kind ~job_seed:r.Session.r_seed
                    ~submit_ns:r.Session.r_submit_ns ~from_shard:s)
                dropped
        end
      done
  in

  let arrivals = generate_arrivals cfg in
  let n_arr = Array.length arrivals in
  let epoch_ns = cfg.epoch_us *. 1e3 in
  let cursor = ref 0 in
  let t0 = ref 0.0 in
  let epochs = ref 0 in
  let running = ref true in
  while !running do
    incr epochs;
    if !epochs > 1_000_000 then
      failwith "Cluster.run: epoch cap exceeded (runaway fleet loop)";
    let t1 = !t0 +. epoch_ns in
    (* the fleet clock has reached [t0] globally: force-apply fault events
       an idle shard's scheduler (which only advances while draining) has
       not reached on its own — between drains every sched is quiescent,
       so this is a safe hotplug point, and it keeps fault visibility
       independent of shard load *)
    List.iter (fun inj -> Faults.Injector.drain inj ~now:!t0) injectors;
    refresh_views ~now:!t0;
    relocate_pass ~now:!t0;
    while !cursor < n_arr && arrivals.(!cursor).at_ns < t1 do
      let a = arrivals.(!cursor) in
      incr router_submitted;
      place ~now:a.at_ns ~job_id:!cursor ~tenant:a.tenant ~kind:a.kind
        ~job_seed:a.job_seed ~submit_ns:a.at_ns ~from_shard:(-1);
      incr cursor
    done;
    let all_routed = !cursor >= n_arr in
    let more_reloc =
      cfg.relocation
      && Array.exists
           (fun (v : Router.view) ->
             degraded v
             && Session.queue_length sessions.(v.Router.shard) > 0
             && Array.exists
                  (fun (w : Router.view) ->
                    w.Router.shard <> v.Router.shard
                    && w.Router.capacity > 0.0
                    && not (degraded w))
                  views)
           views
    in
    let final = all_routed && not more_reloc in
    let horizon = if final then infinity else t1 in
    Array.iter (fun sess -> Session.drain sess ~horizon ~kick_ns:!t0) sessions;
    if final then running := false;
    t0 := t1
  done;

  let reports = Array.map Session.finish sessions in
  let registry = Metrics.create () in
  Array.iter (fun (r : Server.report) -> Metrics.merge registry r.Server.registry) reports;
  Metrics.incr registry ~by:!router_submitted "fleet.submitted";
  Metrics.incr registry ~by:!router_shed "fleet.router_shed";
  Metrics.incr registry ~by:!relocations "fleet.relocations";
  Metrics.set_gauge registry "fleet.shards" (float_of_int n);
  Metrics.set_gauge registry "fleet.epochs" (float_of_int !epochs);
  let makespan =
    Array.fold_left
      (fun acc (r : Server.report) -> Float.max acc r.Server.makespan_ns)
      0.0 reports
  in
  Metrics.set_gauge registry "serve.makespan_ns" makespan;
  let shard_results =
    List.init n (fun s ->
        let m = (Session.instance sessions.(s)).Systems.machine in
        let pmu = Machine.pmu m in
        {
          shard = s;
          machine = machine_name (shard_machine s);
          placed = placed.(s);
          sim_events =
            Machine.accesses m
            + Pmu.total pmu Pmu.Context_switch
            + Pmu.total pmu Pmu.Task_stolen
            + Pmu.total pmu Pmu.Migration;
          report = reports.(s);
        })
  in
  let traces =
    match router_trace with
    | Some tr -> tr :: List.filter_map Fun.id (Array.to_list shard_traces)
    | None -> []
  in
  let result =
    {
      policy = cfg.policy;
      n_shards = n;
      router_submitted = !router_submitted;
      router_shed = !router_shed;
      relocations = !relocations;
      epochs = !epochs;
      makespan_ns = makespan;
      shard_results;
      registry;
      fleet_latency = Metrics.histogram registry "serve.latency_ns";
      placement_log = Buffer.contents log;
      traces;
    }
  in
  if check then check_result result;
  result

(* -- JSON report --------------------------------------------------------- *)

let result_to_json res =
  let obj fields =
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> "\"" ^ Metrics.json_escape k ^ "\":" ^ v)
           fields)
    ^ "}"
  in
  let shard sr =
    let r = sr.report in
    obj
      [
        ("shard", string_of_int sr.shard);
        ("machine", "\"" ^ Metrics.json_escape sr.machine ^ "\"");
        ("placed", string_of_int sr.placed);
        ( "completed",
          string_of_int (sum_tenants r (fun tr -> tr.Server.completed)) );
        ("shed", string_of_int (sum_tenants r (fun tr -> tr.Server.shed)));
        ( "relocated_out",
          string_of_int (sum_tenants r (fun tr -> tr.Server.relocated_out)) );
        ( "relocated_in",
          string_of_int (sum_tenants r (fun tr -> tr.Server.relocated_in)) );
        ("makespan_ns", Metrics.json_of_float r.Server.makespan_ns);
        ( "effective_capacity",
          Metrics.json_of_float
            (Metrics.gauge_value r.Server.registry "serve.effective_capacity")
        );
      ]
  in
  obj
    [
      ("policy", "\"" ^ Router.policy_name res.policy ^ "\"");
      ("shards", string_of_int res.n_shards);
      ("router_submitted", string_of_int res.router_submitted);
      ("router_shed", string_of_int res.router_shed);
      ("relocations", string_of_int res.relocations);
      ("epochs", string_of_int res.epochs);
      ("makespan_ns", Metrics.json_of_float res.makespan_ns);
      ("fleet_latency_ns", Metrics.json_of_histogram res.fleet_latency);
      ( "shards_detail",
        "[" ^ String.concat "," (List.map shard res.shard_results) ^ "]" );
      ("metrics", Metrics.to_json res.registry);
    ]
