(** Cluster-level job placement: pick a shard for each arriving job.

    The router is deterministic state over deterministic inputs — a
    round-robin cursor and a tenant→last-shard affinity table — so a
    fleet run is a pure function of its seed, like everything below it.

    Every policy refuses fully-offline shards (capacity 0); the policies
    differ in what {e else} they can see:

    - {!Round_robin}: nothing — cyclic placement over online shards.
    - {!Least_loaded}: shard load (backlog + queued service demand), but
      chiplet-blind: a machine limping at 40% capacity with two sick
      chiplets looks identical to a healthy one at equal queue depth.
    - {!Ewma}: an exponentially-weighted moving average of each shard's
      observed end-to-end job latencies (fed by {!observe}), scaled by
      queue depth — a black-box policy that learns which shards are slow
      from completions alone, without seeing why.
    - {!Charm_aware}: load {e divided by effective capacity}, where
      effective capacity folds in {!Chipsim.Modifiers.online_capacity}
      and the shard's sick-chiplet fraction (from
      {!Core.Health_monitor} under CHARM, OS-visible impairment for
      baselines), plus a mild tenant-affinity bonus for cache locality —
      the paper's heterogeneity-awareness lifted to the cluster. *)

type policy = Round_robin | Least_loaded | Ewma | Charm_aware

val policy_name : policy -> string
(** ["round-robin"], ["least-loaded"], ["ewma"], ["charm"]. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_name}; also accepts ["rr"], ["ll"],
    ["charm-aware"]. *)

val all_policies : policy list

(** Per-shard routing snapshot, refreshed at each epoch boundary and
    updated in place by {!choose} as jobs are placed within an epoch. *)
type view = {
  shard : int;
  mutable capacity : float;  (** {!Chipsim.Modifiers.online_capacity}, 0 = offline *)
  mutable sick_fraction : float;  (** sick chiplets / chiplets, [0, 1] *)
  mutable load_ns : float;
      (** backlog past the epoch start plus queued service demand, ns *)
  mutable depth : int;  (** queued jobs *)
}

type t

val create : policy -> t
val policy : t -> policy

val observe : t -> shard:int -> service_ns:float -> unit
(** Feed one completed job's observed end-to-end latency (submit to
    finish, ns) into the shard's EWMA.  Cheap and policy-independent:
    only {!Ewma} scoring reads the average.  Negative samples are
    ignored. *)

val observed_latency : t -> shard:int -> float
(** The shard's current EWMA (0 until first observation). *)

val effective_capacity : view -> float
(** [max 0.05 (capacity * (1 - 0.75 * sick_fraction))] — the denominator
    of the CHARM-aware score. *)

val choose :
  t -> ?exclude:int -> tenant:string -> cost:float -> view array -> int option
(** Pick a shard for one job of estimated service demand [cost] (ns).
    [exclude] (a shard id, for relocations) is never chosen.  Returns
    [None] when no eligible shard exists (all offline — the caller sheds
    at the router).  On success the chosen view's [load_ns]/[depth] are
    bumped by the job's demand and the affinity/cursor state advances. *)
