(** The fleet tier: N independent simulated machines behind one
    deterministic cluster router.

    Each shard is a full {!Harness.Systems} instance (its own machine,
    runtime system and serving session); the cluster advances them in
    lockstep epochs of [epoch_us] virtual microseconds:

    + {b relocate} — if a shard is degraded (capacity below the threshold
      or too many sick chiplets) and a healthy target exists, its queued
      (admitted, not yet dispatched) jobs are drained and re-routed;
    + {b route} — cluster arrivals with timestamps inside the epoch are
      placed by the {!Router} policy against a per-shard load/health
      snapshot, then pass the target shard's own admission control;
    + {b drain} — every shard runs its scheduler with a dispatch horizon
      at the epoch end, so under overload queues persist across epochs
      (and stay visible to the router and the relocator) instead of
      draining eagerly.

    The job set (arrival times, kinds, per-job seeds — optionally
    diurnally modulated) is generated up front from the seed alone, so
    every router policy faces the identical offered load; an entire fleet
    run is byte-deterministic, placement log and traces included.
    Per-shard fault schedules ({!Faults.Schedule}) inject machine-level
    degradation mid-run. *)

type plant =
  | Drop_relocated
      (** planted bug: relocated jobs vanish instead of being re-routed —
          the fleet job-conservation invariant must trip *)
  | Route_offline
      (** planted bug: prefer a fully-offline shard when one exists — the
          no-offline-placement invariant must trip *)

val plant_name : plant -> string

type config = {
  n_shards : int;
  sys : Harness.Systems.sys;
  machines : Harness.Systems.machine_kind list;
      (** cycled across shards, so a fleet can mix presets *)
  n_workers : int;  (** per shard *)
  cache_scale : int;
  policy : Router.policy;
  epoch_us : float;
  serve : Serving.Server.config;
      (** per-shard serving template: tenants (their [process] must be
          open-loop; [jobs] is the {e cluster-wide} total per tenant),
          admission bounds, [max_inflight], data, [seed] and [check];
          [trace] and [on_complete] are ignored *)
  diurnal_amplitude : float;  (** 0 = flat Poisson; else rate swings by ±a *)
  diurnal_period_us : float;
  faults : (int * Faults.Schedule.t) list;  (** (shard, schedule) pairs *)
  relocation : bool;
      (** drain-and-requeue queued jobs off degraded shards at epoch
          boundaries *)
  degraded_capacity : float;  (** relocate below this online capacity *)
  degraded_sick : float;  (** ... or at/above this sick-chiplet fraction *)
  plant : plant option;  (** deliberate bug for invariant-gate tests *)
  trace : bool;
      (** allocate a router trace (pid 0) plus one per shard (pid s+1),
          returned in [result.traces] for {!Engine.Trace.save_merged} *)
}

val default_config : seed:int -> config
(** 2 CHARM shards on AMD presets, charm-aware routing, 250 us epochs,
    relocation on, no faults, the {!Serving.Server.default_config}
    tenants. *)

type shard_result = {
  shard : int;
  machine : string;
  placed : int;  (** router placements onto this shard (incl. relocations) *)
  sim_events : int;
      (** simulated engine events this shard retired: memory accesses plus
          task quanta, steals and migrations — the numerator of the
          [bench core] fleet events/sec figure *)
  report : Serving.Server.report;
}

type result = {
  policy : Router.policy;
  n_shards : int;
  router_submitted : int;  (** fresh arrivals offered to the router *)
  router_shed : int;  (** arrivals dropped because no shard was online *)
  relocations : int;  (** re-routing attempts for drained jobs *)
  epochs : int;
  makespan_ns : float;  (** max shard makespan *)
  shard_results : shard_result list;
  registry : Serving.Metrics.t;
      (** all shard registries merged ({!Serving.Metrics.merge}) plus
          [fleet.*] counters *)
  fleet_latency : Serving.Histogram.t;
      (** cluster-wide job latency (merged [serve.latency_ns]) *)
  placement_log : string;
      (** one line per route/relocate/shed decision — byte-identical for
          equal seeds, the determinism oracle's subject *)
  traces : Engine.Trace.t list;  (** router first, then shards; [] unless
                                     [config.trace] *)
}

val run : config -> result
(** Run the fleet to completion (all arrivals routed, all queues drained).
    With [serve.check] set, per-shard serving invariants run inside each
    session, placements onto offline shards fail immediately, and
    {!check_result} runs on the final result.
    @raise Invalid_argument on bad configuration (no shards, closed-loop
    tenants, out-of-range fault shard, bad diurnal parameters).
    @raise Chipsim.Invariant.Violation when checking finds a violation. *)

val check_result : result -> unit
(** Fleet conservation: router arrivals = shard completions + shard sheds
    + router sheds, and per shard [submitted = admitted + shed],
    [completed + relocated_out = admitted].
    @raise Chipsim.Invariant.Violation on the first broken invariant. *)

val result_to_json : result -> string
(** Deterministic JSON: router counters, fleet latency percentiles,
    per-shard summaries and the merged metrics registry. *)
