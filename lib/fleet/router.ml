type policy = Round_robin | Least_loaded | Ewma | Charm_aware

let policy_name = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Ewma -> "ewma"
  | Charm_aware -> "charm"

let policy_of_string = function
  | "round-robin" | "rr" -> Some Round_robin
  | "least-loaded" | "ll" -> Some Least_loaded
  | "ewma" -> Some Ewma
  | "charm" | "charm-aware" -> Some Charm_aware
  | _ -> None

let all_policies = [ Round_robin; Least_loaded; Ewma; Charm_aware ]

type view = {
  shard : int;
  mutable capacity : float;
  mutable sick_fraction : float;
  mutable load_ns : float;
  mutable depth : int;
}

type t = {
  policy : policy;
  mutable rr : int;
  affinity : (string, int) Hashtbl.t;
  ewma : (int, float) Hashtbl.t;  (* shard -> smoothed observed latency, ns *)
}

let create policy =
  { policy; rr = 0; affinity = Hashtbl.create 16; ewma = Hashtbl.create 16 }

let policy t = t.policy
let ewma_alpha = 0.2

let observe t ~shard ~service_ns =
  if service_ns >= 0.0 then
    let v =
      match Hashtbl.find_opt t.ewma shard with
      | None -> service_ns
      | Some prev -> (ewma_alpha *. service_ns) +. ((1.0 -. ewma_alpha) *. prev)
    in
    Hashtbl.replace t.ewma shard v

let observed_latency t ~shard =
  Option.value ~default:0.0 (Hashtbl.find_opt t.ewma shard)

(* Every policy hard-skips fully-offline shards (capacity 0): even a
   chiplet-blind router sees machine-level liveness, the way a TCP health
   check would.  What the blind policies cannot see is *partial*
   degradation — throttled cores, sick chiplets — which is exactly the
   signal [Charm_aware] scores by. *)
let eligible ~exclude v = v.shard <> exclude && v.capacity > 0.0

let effective_capacity v =
  Float.max 0.05 (v.capacity *. (1.0 -. (0.75 *. v.sick_fraction)))

let score t ~tenant v =
  match t.policy with
  | Round_robin -> 0.0 (* unused *)
  | Least_loaded -> v.load_ns
  | Ewma ->
      (* expected wait: smoothed observed per-job latency times queue
         depth.  A throttled shard's completions come back slow, its EWMA
         rises, and new jobs drift away — no machine introspection needed.
         Unobserved shards score 0, so the policy explores them first. *)
      observed_latency t ~shard:v.shard *. (1.0 +. float_of_int v.depth)
  | Charm_aware ->
      let s = v.load_ns /. effective_capacity v in
      (* tenant affinity: a shard already serving this tenant has its
         datasets warm in cache — a mild bonus, never enough to override
         a clearly sick or overloaded shard *)
      let bonus =
        match Hashtbl.find_opt t.affinity tenant with
        | Some last when last = v.shard -> 0.9
        | _ -> 1.0
      in
      s *. bonus

let choose t ?(exclude = -1) ~tenant ~cost views =
  let n = Array.length views in
  let chosen =
    match t.policy with
    | Round_robin ->
        let rec go k =
          if k >= n then None
          else
            let v = views.((t.rr + k) mod n) in
            if eligible ~exclude v then Some v else go (k + 1)
        in
        go 0
    | Least_loaded | Ewma | Charm_aware ->
        let best = ref None in
        Array.iter
          (fun v ->
            if eligible ~exclude v then
              let s = score t ~tenant v in
              match !best with
              | Some (bs, bv) when bs < s || (bs = s && bv.shard < v.shard) ->
                  ()
              | _ -> best := Some (s, v))
          views;
        Option.map snd !best
  in
  match chosen with
  | None -> None
  | Some v ->
      t.rr <- (v.shard + 1) mod n;
      Hashtbl.replace t.affinity tenant v.shard;
      (* within-epoch feedback: account the placed job's demand so a
         burst routed between two drain points spreads instead of piling
         onto whichever shard looked emptiest at the epoch snapshot *)
      v.load_ns <- v.load_ns +. cost;
      v.depth <- v.depth + 1;
      Some v.shard
