open Chipsim

(* Power is energy over time, and the simulator's energy unit is the
   picojoule over virtual nanoseconds — so 1 pJ/ns is exactly 1 mW and
   every power figure here is in simulated milliwatts, no conversion
   constants anywhere. *)

type sample = { t_ns : float; e_pj : float }

type t = {
  machine : Machine.t;
  cap_mw : float;
  window_ns : float;
  sample_ns : float;
  chiplets : int;
  cores_per_chiplet : int;
  samples : sample Queue.t array;  (* per chiplet, oldest first *)
  level : float array;  (* per-chiplet DVFS level the controller holds *)
  mutable now_ns : float;  (* max clock seen: workers' clocks are not
                              globally ordered, the estimator's timeline
                              must be *)
  mutable last_sample_ns : float;
  mutable max_power_mw : float;
  mutable sheds : int;
  mutable releases : int;
  mutable overcap_unshed : int;
      (* ticks where power exceeded the cap with shedding headroom left
         yet the controller did not act — always 0 unless the control
         logic is broken, which is exactly what verify checks *)
}

(* One shed multiplies the hottest chiplet's level by [shed_factor]; the
   floor keeps even a fully shed machine making progress (and bounds how
   much a cap can promise: a workload can exceed any cap with every
   chiplet at the floor).  Releasing only below [release_ratio] x cap
   leaves a dead band in which the controller holds still — the
   hysteresis that prevents actuator flapping on a steady workload. *)
let shed_factor = 0.75
let level_floor = 0.3
let release_ratio = 0.8

let create ?(window_ns = 500_000.0) ?(sample_ns = 50_000.0) machine ~cap_mw =
  if cap_mw <= 0.0 || not (Float.is_finite cap_mw) then
    invalid_arg "Power_cap.create: cap must be positive";
  if window_ns <= 0.0 || sample_ns <= 0.0 then
    invalid_arg "Power_cap.create: window and sample period must be positive";
  let topo = Machine.topology machine in
  let chiplets = Topology.num_chiplets topo in
  {
    machine;
    cap_mw;
    window_ns = Float.max window_ns (2.0 *. sample_ns);
    sample_ns;
    chiplets;
    cores_per_chiplet = topo.Topology.cores_per_chiplet;
    samples = Array.init chiplets (fun _ -> Queue.create ());
    level = Array.make chiplets 1.0;
    now_ns = 0.0;
    last_sample_ns = neg_infinity;
    max_power_mw = 0.0;
    sheds = 0;
    releases = 0;
    overcap_unshed = 0;
  }

let cap_mw t = t.cap_mw
let window_ns t = t.window_ns

let chiplet_power_mw t ~chiplet =
  if chiplet < 0 || chiplet >= t.chiplets then
    invalid_arg "Power_cap.chiplet_power_mw: chiplet out of range";
  let q = t.samples.(chiplet) in
  if Queue.length q < 2 then 0.0
  else begin
    let oldest = Queue.peek q in
    let newest = Queue.fold (fun _ s -> s) oldest q in
    let dt = newest.t_ns -. oldest.t_ns in
    if dt <= 0.0 then 0.0 else (newest.e_pj -. oldest.e_pj) /. dt
  end

let power_mw t =
  let acc = ref 0.0 in
  for ch = 0 to t.chiplets - 1 do
    acc := !acc +. chiplet_power_mw t ~chiplet:ch
  done;
  !acc

let max_power_mw t = t.max_power_mw
let sheds t = t.sheds
let releases t = t.releases
let level t ~chiplet =
  if chiplet < 0 || chiplet >= t.chiplets then
    invalid_arg "Power_cap.level: chiplet out of range";
  t.level.(chiplet)

let throttled t ~chiplet = level t ~chiplet < 1.0

let apply_level t chiplet =
  let mods = Machine.modifiers t.machine in
  let base = chiplet * t.cores_per_chiplet in
  for c = base to base + t.cores_per_chiplet - 1 do
    Modifiers.set_core_speed mods c t.level.(chiplet)
  done

let hottest_sheddable t =
  let best = ref (-1) and best_p = ref neg_infinity in
  for ch = 0 to t.chiplets - 1 do
    if t.level.(ch) > level_floor then begin
      let p = chiplet_power_mw t ~chiplet:ch in
      if p > !best_p then begin
        best_p := p;
        best := ch
      end
    end
  done;
  !best

let most_throttled t =
  let best = ref (-1) and best_l = ref 1.0 in
  for ch = 0 to t.chiplets - 1 do
    if t.level.(ch) < !best_l then begin
      best_l := t.level.(ch);
      best := ch
    end
  done;
  !best

let sample t =
  for ch = 0 to t.chiplets - 1 do
    let q = t.samples.(ch) in
    Queue.push { t_ns = t.now_ns; e_pj = Machine.chiplet_energy_pj t.machine ~chiplet:ch } q;
    while
      Queue.length q > 2 && (Queue.peek q).t_ns < t.now_ns -. t.window_ns
    do
      ignore (Queue.pop q : sample)
    done
  done

type action = Idle | Shed of int | Release of int

let tick t ~now_ns =
  if now_ns > t.now_ns then t.now_ns <- now_ns;
  if t.now_ns -. t.last_sample_ns < t.sample_ns then Idle
  else begin
    t.last_sample_ns <- t.now_ns;
    sample t;
    let p = power_mw t in
    if p > t.max_power_mw then t.max_power_mw <- p;
    let action =
      if p > t.cap_mw then begin
        match hottest_sheddable t with
        | -1 -> Idle  (* every chiplet at the floor: nothing left to shed *)
        | ch ->
            t.level.(ch) <- Float.max level_floor (t.level.(ch) *. shed_factor);
            apply_level t ch;
            t.sheds <- t.sheds + 1;
            Shed ch
      end
      else if p < release_ratio *. t.cap_mw then begin
        match most_throttled t with
        | -1 -> Idle
        | ch ->
            t.level.(ch) <- Float.min 1.0 (t.level.(ch) /. shed_factor);
            apply_level t ch;
            t.releases <- t.releases + 1;
            Release ch
      end
      else Idle  (* dead band: hold *)
    in
    (* audit the control law itself: an over-cap tick with shedding
       headroom left must have shed — any other outcome means the logic
       was broken (or tampered with), which verify reports *)
    (match action with
    | Shed _ -> ()
    | Idle | Release _ ->
        if p > t.cap_mw && hottest_sheddable t <> -1 then
          t.overcap_unshed <- t.overcap_unshed + 1);
    action
  end

let verify t =
  if t.overcap_unshed > 0 then
    Invariant.fail
      "power-cap: %d ticks exceeded the %g mW cap with shedding headroom \
       left but no actuation"
      t.overcap_unshed t.cap_mw;
  (* externally observable contract: if windowed power ever exceeded the
     cap, the controller must have reacted at least once *)
  if t.max_power_mw > t.cap_mw && t.sheds = 0 then
    Invariant.fail
      "power-cap: windowed power peaked at %.1f mW over the %g mW cap but \
       the controller never shed"
      t.max_power_mw t.cap_mw;
  (* the estimate itself must be sane *)
  let p = power_mw t in
  if not (Float.is_finite p) || p < 0.0 then
    Invariant.fail "power-cap: windowed power estimate is %g mW" p;
  Array.iteri
    (fun ch l ->
      if l < level_floor -. 1e-9 || l > 1.0 +. 1e-9 then
        Invariant.fail "power-cap: chiplet %d level %g outside [%g, 1]" ch l
          level_floor)
    t.level
