type approach = Location_centric | Cache_centric | Adaptive

type t = {
  scheduler_timer_ns : float;
  rmt_chip_access_rate : float;
  approach : approach;
  initial_spread : int;
  rebind_memory_on_migrate : bool;
  profile_while_running : bool;
  profiler_overhead_ns : float;
  chiplet_first_steal : bool;
  decentralized : bool;
  prefer_big_cores : bool;
  energy_weight : float;
  power_cap_mw : float;
}

let default =
  {
    scheduler_timer_ns = 50_000.0;
    rmt_chip_access_rate = 300.0;
    approach = Adaptive;
    initial_spread = 1;
    rebind_memory_on_migrate = true;
    profile_while_running = true;
    profiler_overhead_ns = 40.0;
    chiplet_first_steal = true;
    decentralized = true;
    prefer_big_cores = true;
    energy_weight = 0.0;
    power_cap_mw = 0.0;
  }

let validate t topo =
  if t.scheduler_timer_ns <= 0.0 then
    invalid_arg "Config: scheduler_timer_ns must be positive";
  if t.rmt_chip_access_rate < 0.0 then
    invalid_arg "Config: rmt_chip_access_rate must be non-negative";
  let chiplets = Chipsim.Topology.num_chiplets topo in
  if t.initial_spread < 1 || t.initial_spread > chiplets then
    invalid_arg "Config: initial_spread out of [1, chiplets]";
  if t.profiler_overhead_ns < 0.0 then
    invalid_arg "Config: profiler_overhead_ns must be non-negative";
  if t.energy_weight < 0.0 || not (Float.is_finite t.energy_weight) then
    invalid_arg "Config: energy_weight must be finite and non-negative";
  if t.power_cap_mw < 0.0 || not (Float.is_finite t.power_cap_mw) then
    invalid_arg "Config: power_cap_mw must be finite and non-negative"

let approach_to_string = function
  | Location_centric -> "location-centric"
  | Cache_centric -> "cache-centric"
  | Adaptive -> "adaptive"
