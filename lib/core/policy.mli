(** Alg. 1 — the decentralized Chiplet Scheduling Policy.

    Each worker periodically (every [SCHEDULER_TIMER] of virtual time)
    inspects its own cache-fill counter, computes the remote-access rate,
    and widens ([spread_rate + 1]) or narrows ([spread_rate - 1]) its gang
    footprint, then asks Alg. 2 for its new core.  Decisions use only
    worker-local observations — there is no central arbiter (paper §4.1). *)

open Chipsim

type stats = {
  ticks : int;  (** timer expirations evaluated *)
  spreads : int;  (** spread_rate increments *)
  contracts : int;  (** spread_rate decrements *)
  migrations : int;  (** affinity changes actually applied *)
  skipped : int;
      (** migrations skipped (invalid bounds, occupied core, or a
          health-vetoed sick target) *)
  health_migrations : int;
      (** of [migrations], those fleeing a chiplet flagged sick *)
}

type t

val create :
  Config.t -> Machine.t -> Controller.t -> Profiler.t -> n_workers:int -> t

val spread_rate : t -> worker:int -> int

val set_health : t -> (int -> bool) option -> unit
(** Install a [chiplet -> currently sick] oracle (the health monitor).
    While set, Alg. 2 targets on sick chiplets are vetoed, workers already
    on a sick chiplet flee to the nearest free healthy core at their next
    tick, and the controller threshold is halved for degraded workers. *)

val set_power_oracle : t -> (int -> bool) option -> unit
(** Install a [chiplet -> currently power-throttled] oracle (the
    {!Power_cap} controller).  Only consulted when
    [Config.energy_weight > 0]: hot chiplets then get the same treatment
    as sick ones — vetoed as Alg. 2 targets and fled when occupied — and
    flee candidates are scored EDP-style,
    [speed / (1 + energy_weight x kind energy density)], trading peak
    speed for efficient silicon.  With [energy_weight = 0] placement is
    identical to pre-energy CHARM regardless of the oracle. *)

val tick : t -> Engine.Sched.t -> worker:int -> unit
(** Run one Alg. 1 evaluation for [worker] if its timer elapsed.  Intended
    as the scheduler's [on_quantum_end] hook.  Applies the migration via
    {!Engine.Sched.migrate} and rebinds the worker's memory policy. *)

val force_tick : t -> Engine.Sched.t -> worker:int -> unit
(** Evaluate immediately, ignoring the timer (used by tests/benches). *)

val stats : t -> stats

val set_on_migrate : t -> (worker:int -> old_core:int -> new_core:int -> unit) -> unit
(** Callback invoked after every applied migration (memory manager hook). *)

val set_on_spread_change :
  t ->
  (worker:int -> old_spread:int -> new_spread:int -> at_ns:float -> unit) ->
  unit
(** Callback invoked whenever Alg. 1 widens or narrows a worker's
    spread_rate (tracing hook); centralized mode reports one gang-wide
    change as worker 0. *)
