(** Alg. 2 — UpdateLocation: translate a worker's [spread_rate] into a
    deterministic, collision-free core assignment.

    The worker gang is sliced into per-socket sub-gangs by id (paper §4.6:
    fill one socket's chiplets before touching the next), and Alg. 2 maps
    each sub-gang across the socket's chiplets: [spread_rate = k] gives
    every chiplet at most [cores_per_chiplet / k] consecutive ids, so a
    larger [k] spreads the same workers over more chiplets (more aggregate
    L3, longer inter-worker distances).  The paper's bounds-check example —
    64 workers, 8-core chiplets, spread 1 invalid — holds. *)

open Chipsim

val core_of_worker :
  ?prefer_fast:bool ->
  Topology.t -> spread_rate:int -> n_workers:int -> worker:int -> int option
(** The Alg. 2 core for [worker], or [None] when the bounds check fails
    (spread out of range, or too few dedicated cores for the gang at this
    spread).  Guaranteed injective over [worker] for a fixed valid
    configuration.

    On a heterogeneous topology with [prefer_fast] (the default), the
    socket's chiplets are visited general-task chiplets first, each band
    in descending kind-speed order, so a gang fills big-core chiplets
    before little ones and only reaches accelerator-only chiplets
    ([general_tasks = false]) when it cannot fit elsewhere; the order is
    stable, so homogeneous topologies are unaffected. *)

val valid_spread : Topology.t -> spread_rate:int -> n_workers:int -> bool
(** The Alg. 2 line-2 sanity check. *)

val min_valid_spread : Topology.t -> n_workers:int -> int
(** Smallest spread_rate that passes the bounds check (>= 1). *)

val max_general_spread : Topology.t -> n_workers:int -> int
(** Largest spread_rate that keeps a general gang off accelerator-only
    chiplets ([Topology.kind_spec.general_tasks = false]); equals
    [chiplets_per_socket] when the gang cannot fit on general chiplets
    alone (or the machine has none). *)

val numa_node_of_core : Topology.t -> int -> int
(** Alg. 2 line 13. *)

val chiplet_speed_order : Topology.t -> socket:int -> int array
(** The socket's local chiplet indices in visit order: general-task
    chiplets first, each band by descending kind speed, stable by index.
    Identity on homogeneous sockets.  Exposed as the placement hint
    other mappers (the task-graph mapper) fall back to. *)

val gang :
  ?prefer_fast:bool ->
  Topology.t -> spread_rate:int -> n_workers:int -> int array option
(** All workers' cores at once ([gang.(w)] = core of worker [w]). *)
