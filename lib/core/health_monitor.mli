(** Degradation detector: turns the profiler's raw signals into a
    per-chiplet sick/healthy verdict the policy can steer by.

    Two detection paths feed the same flags:

    - {b OS-visible} state (core hotplug, DVFS throttling, which a real
      runtime reads from sysfs) flags a chiplet the moment the machine's
      {!Chipsim.Modifiers} generation moves.
    - {b Silent} degradation (link latency, L3 way loss, memory-channel
      throttling) is inferred from memory latency per access: each worker
      quantum contributes a [ns/access] sample — the delta of the core's
      accumulated {!Chipsim.Machine.mem_ns} latency meter over the delta
      of its fill-event count, so compute time and scheduling delays
      cancel out — to its chiplet's fast EWMA.  A chiplet is flagged when
      the fast EWMA both jumps well above the chiplet's own slow baseline
      (faults are step changes; static workload heterogeneity is not) and
      stands out from the cross-chiplet median, for several consecutive
      samples.  The baseline freezes while sick and recovery is sticky —
      a run of samples back near the baseline — so the gang doesn't
      bounce.

    Everything is driven by virtual time and PMU deltas, so detection is
    deterministic. *)

open Chipsim

type t
type event = { chiplet : int; sick : bool; at_ns : float }

val create : Machine.t -> n_workers:int -> t

val observe : t -> worker:int -> core:int -> now:float -> unit
(** Feed one quantum-end observation for [worker] running on [core] at
    virtual time [now].  Cheap (a few PMU reads); intended to run from the
    scheduler's [on_quantum_end] hook before the policy tick. *)

val sick : t -> chiplet:int -> bool
val sick_chiplets : t -> int list
val any_sick : t -> bool

val first_flag_ns : t -> float option
(** Virtual time of the first sick flag ever raised (detection latency =
    this minus the fault's injection time). *)

val events : t -> event list
(** All flag transitions, oldest first. *)

val ewma : t -> chiplet:int -> float
(** Current memory-latency-per-access estimate in ns (0 until the chiplet
    has samples). *)

val counter_series : t -> (string * float) list
(** Per-chiplet [ns/access] EWMA and sick flags, for a trace counter
    track.  Only chiplets with data appear. *)

val set_on_event : t -> (chiplet:int -> sick:bool -> at_ns:float -> unit) -> unit
(** Callback on every flag transition (tracing / serving-layer hook). *)
