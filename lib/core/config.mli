(** CHARM runtime configuration (paper §4.6).

    The paper's deployment uses a 500 ms scheduler timer and a remote-access
    threshold of 300 events per interval on real hardware.  In simulation
    virtual time runs at workload scale, so the defaults here are the same
    ratio at microsecond scale; both are swept by the sensitivity bench. *)

type approach =
  | Location_centric
      (** minimise cross-chiplet communication: consolidate aggressively *)
  | Cache_centric
      (** maximise aggregate L3: spread aggressively *)
  | Adaptive
      (** switch between the two from profiler feedback (the paper's
          default controller behaviour) *)

type t = {
  scheduler_timer_ns : float;  (** Alg. 1 [SCHEDULER_TIMER] *)
  rmt_chip_access_rate : float;
      (** Alg. 1 [RMT_CHIP_ACCESS_RATE]: remote fill events per timer
          interval that trigger spreading *)
  approach : approach;
  initial_spread : int;  (** initial [spread_rate]; paper initialises to 1 *)
  rebind_memory_on_migrate : bool;
      (** re-home a worker's bound regions when it crosses sockets *)
  profile_while_running : bool;  (** profiler active (5–10%% overhead) *)
  profiler_overhead_ns : float;  (** charged per profiling check *)
  chiplet_first_steal : bool;
      (** steal from same-chiplet victims first (paper §4.4); [false]
          switches to random victims (ablation) *)
  decentralized : bool;
      (** paper §4.1: each worker decides from its own counters.  [false]
          switches to a centralized variant (ablation): one arbiter
          averages all workers' rates and pushes a uniform spread_rate *)
  prefer_big_cores : bool;
      (** on heterogeneous topologies, fill the fastest chiplets first
          when placing gangs and break flee-target ties toward faster
          kinds; no effect on homogeneous machines *)
  energy_weight : float;
      (** EDP-aware placement: > 0 makes {!Policy} discount flee targets
          by their kind's energy density (speed / (1 + w x density)) and
          steer placement away from chiplets the power-cap controller
          marks hot.  0 (the default) disables every energy influence on
          placement, keeping decisions identical to pre-energy CHARM *)
  power_cap_mw : float;
      (** machine-level power cap in simulated milliwatts (1 pJ/ns =
          1 mW); > 0 activates the {!Power_cap} controller, which sheds
          DVFS on the hottest chiplet while the sliding-window power
          estimate exceeds the cap.  0 (the default) = uncapped *)
}

val default : t

val validate : t -> Chipsim.Topology.t -> unit
(** @raise Invalid_argument on nonsensical values for the topology. *)

val approach_to_string : approach -> string
