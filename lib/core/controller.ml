type decision = { threshold : float; mode : Config.approach }

type t = {
  config : Config.t;
  (* lazily initialized on the first [decide]: seeding it with the
     configured approach would make the first concrete resolution in
     [Adaptive] mode look like a switch *)
  mutable last_mode : Config.approach option;
  mutable switches : int;
  mutable on_switch : from_mode:Config.approach -> to_mode:Config.approach -> unit;
}

let create config =
  {
    config;
    last_mode = None;
    switches = 0;
    on_switch = (fun ~from_mode:_ ~to_mode:_ -> ());
  }

let set_on_switch t f = t.on_switch <- f

(* Approach-specific threshold scaling: location-centric delays spreading
   (high threshold), cache-centric triggers it eagerly (low threshold). *)
let location_scale = 4.0
let cache_scale = 0.25

let concrete_mode t sample =
  match t.config.Config.approach with
  | (Config.Location_centric | Config.Cache_centric) as m -> m
  | Config.Adaptive -> (
      let sticky =
        match t.last_mode with Some m -> m | None -> Config.Adaptive
      in
      let remote = Profiler.remote_events sample in
      if remote = 0 then sticky
      else begin
        let dram_share = float_of_int sample.Profiler.dram /. float_of_int remote in
        let chiplet_share =
          float_of_int sample.Profiler.remote_chiplet /. float_of_int remote
        in
        if dram_share > 0.5 then Config.Cache_centric
        else if chiplet_share > 0.6 then Config.Location_centric
        else sticky
      end)

(* When the worker sits on degraded silicon, halving the threshold makes
   the policy spread away from it after roughly half the evidence — the
   hardware is known-bad, so the usual reluctance to migrate is wrong. *)
let degraded_scale = 0.5

let decide t ?(degraded = false) sample =
  let mode = concrete_mode t sample in
  (match t.last_mode with
  (* an [Adaptive] previous mode is the unresolved placeholder, not a
     direction — resolving it for the first time is not a switch *)
  | Some prev when prev <> mode && prev <> Config.Adaptive ->
      t.switches <- t.switches + 1;
      t.on_switch ~from_mode:prev ~to_mode:mode
  | _ -> ());
  t.last_mode <- Some mode;
  let base = t.config.Config.rmt_chip_access_rate in
  let threshold =
    match mode with
    | Config.Location_centric -> base *. location_scale
    | Config.Cache_centric -> base *. cache_scale
    | Config.Adaptive -> base
  in
  let threshold = if degraded then threshold *. degraded_scale else threshold in
  { threshold; mode }

let mode_switches t = t.switches
