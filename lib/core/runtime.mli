(** The CHARM runtime: public API (paper §4.6).

    Mirrors the paper's programming interface: initialise with {!init}
    (CHARM_Init), submit work with {!run} / {!all_do}, use {!Api.call} for
    remote procedure calls, {!Api.barrier_wait} for synchronisation, and
    collect statistics with {!finalize} (CHARM_Finalize).

    Under the hood every worker runs the decentralized Alg. 1 policy at
    each quantum end, migrating itself with Alg. 2 and rebinding its
    memory through the memory manager. *)

open Chipsim

type t

val init :
  ?config:Config.t ->
  ?sched_config:Engine.Sched.config ->
  Machine.t ->
  n_workers:int ->
  t
(** Create a runtime with [n_workers] worker threads placed by Alg. 2 at
    the initial spread rate (clamped up to the smallest valid spread).
    @raise Invalid_argument if the machine cannot host the gang. *)

val sched : t -> Engine.Sched.t
val machine : t -> Machine.t
val config : t -> Config.t
val n_workers : t -> int
val policy : t -> Policy.t
val memory : t -> Memory_manager.t
val profiler : t -> Profiler.t

val power_cap : t -> Power_cap.t option
(** The power-cap controller, present iff [Config.power_cap_mw > 0].  It
    ticks at every quantum end (before the profiler/policy hooks), sheds
    DVFS on the hottest chiplet while the windowed power estimate exceeds
    the cap, and — when [Config.energy_weight > 0] — serves as the
    policy's hot-chiplet oracle.  {!finalize} runs {!Power_cap.verify}
    on it when invariant checking is enabled. *)

val health : t -> Health_monitor.t
(** The degradation detector.  It is fed automatically at every quantum
    end (before the policy tick) and wired into the policy as its
    sick-chiplet oracle; under fault injection the gang flees flagged
    chiplets and admission control can shrink capacity. *)

val alloc_shared :
  t -> ?policy:Simmem.policy -> elt_bytes:int -> count:int -> unit ->
  Simmem.region
(** Allocate a dataset shared by all tasks (first-touch by default). *)

val attach_trace : t -> Engine.Trace.t -> unit
(** Wire a trace sink through every layer: the scheduler (quantum, steal,
    park, migration events), the policy (spread changes), the controller
    (adaptive mode switches), the memory manager (cross-socket region
    re-homes) and the health monitor (sick/recovered instants plus a
    per-chiplet ns/access counter track).  Call once, before running
    work. *)

val run : t -> (Engine.Sched.ctx -> unit) -> float
(** Execute a main task to completion; returns the virtual makespan (ns).
    Can be called repeatedly; clocks continue monotonically. *)

val all_do : t -> (Engine.Sched.ctx -> int -> unit) -> float
(** Paper [all_do()]: run [f ctx worker_id] on every worker; returns the
    makespan of the whole gang. *)

val finalize : t -> Engine.Stats.report
(** Collect the end-of-run report (safe to call once, after the last run). *)

val last_makespan : t -> float

(** Operations available inside tasks. *)
module Api : sig
  val alloc :
    Engine.Sched.ctx -> elt_bytes:int -> count:int -> unit -> Simmem.region
  (** Allocate bound to the calling worker's NUMA node (Alg. 2 line 14). *)

  val call :
    Engine.Sched.ctx -> worker:int -> (Engine.Sched.ctx -> unit) ->
    Engine.Sched.task
  (** Paper [call()] (async): dispatch a closure to another worker; the
      message pays the core-to-core latency before it becomes runnable. *)

  val call_sync : Engine.Sched.ctx -> worker:int -> (Engine.Sched.ctx -> unit) -> unit
  (** Paper [call()] (sync): dispatch and await completion. *)

  val all_do : Engine.Sched.ctx -> (Engine.Sched.ctx -> int -> unit) -> unit
  (** Run [f ctx worker_id] on every worker and await all of them. *)

  val parallel_for :
    Engine.Sched.ctx -> lo:int -> hi:int -> ?grain:int ->
    (Engine.Sched.ctx -> int -> int -> unit) -> unit
  (** Split [\[lo, hi)] into chunks of [grain] (default: range/4 per
      worker), spread them round-robin over the workers and await all.
      The chunk closure receives its sub-range. *)

  val barrier_wait : Engine.Sched.ctx -> Engine.Barrier.t -> unit
end

val barrier : t -> Engine.Barrier.t
(** A barrier across all workers of this runtime. *)
