(** Sliding-window power estimation and a hysteretic power-cap controller.

    The simulator's energy unit is picojoules over virtual nanoseconds,
    and 1 pJ/ns is exactly 1 mW — every power figure here is in simulated
    milliwatts with no conversion constants.

    The estimator samples each chiplet's combined (access + compute)
    energy meter ({!Chipsim.Machine.chiplet_energy_pj}) on a fixed virtual
    cadence and differentiates over a sliding window.  When the
    machine-wide estimate exceeds the cap, the controller sheds the
    hottest chiplet's DVFS level by 25% (down to a floor), reusing the
    fault subsystem's {!Chipsim.Modifiers.set_core_speed} actuator — a
    deliberate throttle, not a fault, but the same hardware knob, so the
    rest of the runtime (health monitor, policy) sees it exactly as it
    would see thermal throttling.  Levels release a step at a time only
    once power falls below 80% of the cap; the dead band in between is
    the hysteresis that keeps the actuator from flapping on a steady
    workload.  Compute energy scales with the square of the DVFS factor
    ({!Chipsim.Machine.charge_quantum}), so power falls roughly cubically
    with each shed — frequency shedding converges fast. *)

type t

type action =
  | Idle
  | Shed of int  (** chiplet throttled one step *)
  | Release of int  (** chiplet released one step *)

val create :
  ?window_ns:float -> ?sample_ns:float -> Chipsim.Machine.t -> cap_mw:float -> t
(** [create machine ~cap_mw] — [window_ns] (default 500 µs) is the power
    averaging window, [sample_ns] (default 50 µs, the scheduler-timer
    scale) the sampling cadence; the window is clamped to at least two
    samples.  @raise Invalid_argument on a non-positive cap, window or
    cadence. *)

val tick : t -> now_ns:float -> action
(** Advance the controller to [now_ns] (non-monotonic calls are fine —
    worker clocks are not globally ordered; the controller keeps its own
    max-clock timeline).  At most one sample and one actuation per
    cadence period; between samples this is one float compare. *)

val power_mw : t -> float
(** Current machine-wide windowed power estimate (sum over chiplets). *)

val chiplet_power_mw : t -> chiplet:int -> float
(** Windowed power of one chiplet; 0 until two samples exist.
    @raise Invalid_argument on an out-of-range chiplet. *)

val max_power_mw : t -> float
(** Highest machine-wide windowed estimate ever observed. *)

val cap_mw : t -> float
val window_ns : t -> float

val level : t -> chiplet:int -> float
(** The DVFS level the controller currently holds the chiplet at
    (1.0 = unthrottled, floor 0.3). *)

val throttled : t -> chiplet:int -> bool
(** [level < 1.0] — the "hot chiplet" predicate {!Policy} steers
    placement away from when [Config.energy_weight > 0]. *)

val sheds : t -> int
(** Total shed actuations (hysteresis tests assert this settles on a
    steady workload). *)

val releases : t -> int

val verify : t -> unit
(** Power-cap invariants: no over-cap tick ever passed with shedding
    headroom left but no actuation, the controller reacted at least once
    if power ever exceeded the cap, the windowed estimate is finite and
    non-negative, and every level lies in [floor, 1].
    @raise Chipsim.Invariant.Violation on the first broken one. *)
