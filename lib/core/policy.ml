open Chipsim

type stats = {
  ticks : int;
  spreads : int;
  contracts : int;
  migrations : int;
  skipped : int;
  health_migrations : int;
}

type worker_state = {
  mutable spread : int;
  mutable last_check : float;
}

type t = {
  config : Config.t;
  machine : Machine.t;
  controller : Controller.t;
  profiler : Profiler.t;
  n_workers : int;
  states : worker_state array;
  mutable s_ticks : int;
  mutable s_spreads : int;
  mutable s_contracts : int;
  mutable s_migrations : int;
  mutable s_skipped : int;
  mutable s_health_migrations : int;
  mutable health : (int -> bool) option;  (* chiplet -> currently sick? *)
  mutable power_hot : (int -> bool) option;
      (* chiplet -> throttled by the power-cap controller?  Only
         consulted when energy_weight > 0, so capped-but-unweighted runs
         place identically to pre-energy CHARM *)
  mutable on_migrate : worker:int -> old_core:int -> new_core:int -> unit;
  mutable on_spread_change :
    worker:int -> old_spread:int -> new_spread:int -> at_ns:float -> unit;
}

let create config machine controller profiler ~n_workers =
  let topo = Machine.topology machine in
  Config.validate config topo;
  {
    config;
    machine;
    controller;
    profiler;
    n_workers;
    states =
      Array.init n_workers (fun _ ->
          { spread = config.Config.initial_spread; last_check = 0.0 });
    s_ticks = 0;
    s_spreads = 0;
    s_contracts = 0;
    s_migrations = 0;
    s_skipped = 0;
    s_health_migrations = 0;
    health = None;
    power_hot = None;
    on_migrate = (fun ~worker:_ ~old_core:_ ~new_core:_ -> ());
    on_spread_change =
      (fun ~worker:_ ~old_spread:_ ~new_spread:_ ~at_ns:_ -> ());
  }

(* Contraction happens only well below the spread trigger: CHARM
   "preserves the initial task-to-worker-to-core mapping as much as
   possible" and migrates "only when significant inefficiency is
   detected" (paper 4.6) — without this dead band the policy oscillates
   at the capacity boundary and migration churn eats the gains. *)
let hysteresis = 0.25

let spread_rate t ~worker = t.states.(worker).spread
let set_health t f = t.health <- f
let chiplet_sick t chiplet =
  match t.health with None -> false | Some sick -> sick chiplet

let set_power_oracle t f = t.power_hot <- f

let chiplet_hot t chiplet =
  t.config.Config.energy_weight > 0.0
  && match t.power_hot with None -> false | Some hot -> hot chiplet

(* sick and hot chiplets get the same treatment: vetoed as targets, fled
   when occupied — being throttled for power is operationally the same
   signal as being throttled by a fault *)
let chiplet_avoid t chiplet = chiplet_sick t chiplet || chiplet_hot t chiplet
let set_on_migrate t f = t.on_migrate <- f
let set_on_spread_change t f = t.on_spread_change <- f

let stats t =
  {
    ticks = t.s_ticks;
    spreads = t.s_spreads;
    contracts = t.s_contracts;
    migrations = t.s_migrations;
    skipped = t.s_skipped;
    health_migrations = t.s_health_migrations;
  }

(* Alg. 2 application: compute the target core and migrate if it is free.
   An occupied target (transient, while neighbours still hold older
   spread_rates) skips the move; the next timer cycle retries. *)
let update_location t sched ~worker ~core =
  let topo = Machine.topology t.machine in
  let st = t.states.(worker) in
  match
    Placement.core_of_worker ~prefer_fast:t.config.Config.prefer_big_cores topo
      ~spread_rate:st.spread ~n_workers:t.n_workers ~worker
  with
  | None -> t.s_skipped <- t.s_skipped + 1
  | Some target when target = core -> ()
  | Some target
    when chiplet_avoid t (Topology.chiplet_of_core topo target)
         && not (chiplet_avoid t (Topology.chiplet_of_core topo core)) ->
      (* health/power veto: never move a clean worker onto a sick or
         power-throttled chiplet, even when Alg. 2 nominates it —
         retried once the flag clears *)
      t.s_skipped <- t.s_skipped + 1
  | Some target -> (
      match Engine.Sched.worker_of_core sched target with
      | Some _other -> t.s_skipped <- t.s_skipped + 1
      | None ->
          Engine.Sched.migrate sched ~worker ~core:target;
          t.s_migrations <- t.s_migrations + 1;
          Profiler.rebase t.profiler ~worker ~core:target;
          t.on_migrate ~worker ~old_core:core ~new_core:target)

(* A worker stuck on a sick chiplet ignores Alg. 2 and flees to the
   nearest free core on a healthy chiplet.  Alg. 2 keeps nominating cores
   from the contiguous gang footprint, so without this escape hatch the
   gang would sit on the degraded silicon forever. *)
let flee_sick_chiplet t sched ~worker ~core =
  let topo = Machine.topology t.machine in
  if chiplet_avoid t (Topology.chiplet_of_core topo core) then begin
    let cores = Topology.num_cores topo in
    let prefer_fast = t.config.Config.prefer_big_cores in
    let best = ref (-1) and best_rank = ref max_int and best_speed = ref 0.0 in
    for c = 0 to cores - 1 do
      if
        (not (chiplet_avoid t (Topology.chiplet_of_core topo c)))
        && Engine.Sched.worker_of_core sched c = None
        && Modifiers.core_online (Machine.modifiers t.machine) c
      then begin
        let r =
          match Latency.classify topo core c with
          | Latency.Same_core -> 0
          | Latency.Same_chiplet -> 1
          | Latency.Same_group -> 2
          | Latency.Same_socket -> 3
          | Latency.Cross_socket -> 4
        in
        (* accelerator-only chiplets are a last resort for fleeing
           general work, ranked past any general-task core *)
        let r =
          if
            prefer_fast
            && not
                 (Topology.chiplet_accepts_general topo
                    (Topology.chiplet_of_core topo c))
          then r + 8
          else r
        in
        let s =
          let speed = Topology.core_speed topo c in
          let w = t.config.Config.energy_weight in
          if w > 0.0 then begin
            (* EDP-aware score: discount a candidate by its kind's energy
               density, so with rising energy_weight the policy trades
               peak speed for efficient silicon (a little core's low
               density can beat a big core's raw speed).  With w = 0 this
               is exactly the PR-8 speed tie-break. *)
            let density =
              (Topology.spec_of_kind topo (Topology.kind_of_core topo c))
                .Topology.energy_pj
            in
            speed /. (1.0 +. (w *. density))
          end
          else speed
        in
        (* equal-distance candidates: prefer the faster kind (strict >, so
           homogeneous machines still pick the lowest-numbered core) *)
        if r < !best_rank || (r = !best_rank && prefer_fast && s > !best_speed)
        then begin
          best_rank := r;
          best_speed := s;
          best := c
        end
      end
    done;
    if !best >= 0 then begin
      Engine.Sched.migrate sched ~worker ~core:!best;
      t.s_migrations <- t.s_migrations + 1;
      t.s_health_migrations <- t.s_health_migrations + 1;
      Profiler.rebase t.profiler ~worker ~core:!best;
      t.on_migrate ~worker ~old_core:core ~new_core:!best
    end
  end

let evaluate t sched ~worker ~now ~elapsed =
  let core = Engine.Sched.worker_core sched worker in
  let st = t.states.(worker) in
  t.s_ticks <- t.s_ticks + 1;
  let sample = Profiler.read t.profiler ~worker ~core in
  let counter = float_of_int (Profiler.remote_events sample) in
  let rate = counter *. t.config.Config.scheduler_timer_ns /. elapsed in
  let degraded =
    chiplet_sick t (Topology.chiplet_of_core (Machine.topology t.machine) core)
  in
  let decision = Controller.decide t.controller ~degraded sample in
  let topo = Machine.topology t.machine in
  let chiplets = topo.Topology.chiplets_per_socket in
  let min_spread = Placement.min_valid_spread topo ~n_workers:t.n_workers in
  (* general work never spreads onto accelerator-only chiplets while the
     gang fits on the general ones *)
  let max_spread =
    if t.config.Config.prefer_big_cores then
      Placement.max_general_spread topo ~n_workers:t.n_workers
    else chiplets
  in
  if rate >= decision.Controller.threshold then begin
    if st.spread < max_spread then begin
      st.spread <- st.spread + 1;
      t.s_spreads <- t.s_spreads + 1;
      t.on_spread_change ~worker ~old_spread:(st.spread - 1)
        ~new_spread:st.spread ~at_ns:now
    end
  end
  else if rate < hysteresis *. decision.Controller.threshold
          && st.spread > min_spread then begin
    (* Alg. 1 decrements to 1, but values below the Alg. 2 bounds check can
       never be applied; clamping at the smallest valid spread avoids a
       long invalid-retry climb when the rate rises again. *)
    st.spread <- st.spread - 1;
    t.s_contracts <- t.s_contracts + 1;
    t.on_spread_change ~worker ~old_spread:(st.spread + 1)
      ~new_spread:st.spread ~at_ns:now
  end;
  update_location t sched ~worker ~core:(Engine.Sched.worker_core sched worker);
  flee_sick_chiplet t sched ~worker
    ~core:(Engine.Sched.worker_core sched worker);
  st.last_check <- now;
  let current_core = Engine.Sched.worker_core sched worker in
  Profiler.reset t.profiler ~worker ~core:current_core

(* Centralized ablation (DESIGN.md #1): worker 0 is a global arbiter that
   collects every worker's counters (paying a cross-core read per worker —
   the coordination cost the paper's decentralization avoids), averages
   the rate, and pushes one uniform spread_rate to the whole gang. *)
let centralized_evaluate t sched ~now ~elapsed =
  let machine = t.machine in
  t.s_ticks <- t.s_ticks + 1;
  let arbiter_core = Engine.Sched.worker_core sched 0 in
  let total = ref 0 in
  let agg = ref { Profiler.local_hits = 0; remote_chiplet = 0; remote_numa = 0; dram = 0 } in
  for w = 0 to t.n_workers - 1 do
    let core = Engine.Sched.worker_core sched w in
    let sample = Profiler.read t.profiler ~worker:w ~core in
    total := !total + Profiler.remote_events sample;
    agg :=
      {
        Profiler.local_hits = !agg.Profiler.local_hits + sample.Profiler.local_hits;
        remote_chiplet = !agg.Profiler.remote_chiplet + sample.Profiler.remote_chiplet;
        remote_numa = !agg.Profiler.remote_numa + sample.Profiler.remote_numa;
        dram = !agg.Profiler.dram + sample.Profiler.dram;
      };
    (* global data collection: one cross-core transfer per worker *)
    Engine.Sched.charge sched ~worker:0 (Machine.core_to_core_ns machine arbiter_core core)
  done;
  let rate =
    float_of_int !total /. float_of_int t.n_workers
    *. t.config.Config.scheduler_timer_ns /. elapsed
  in
  let decision = Controller.decide t.controller !agg in
  let topo = Machine.topology machine in
  let chiplets = topo.Topology.chiplets_per_socket in
  let min_spread = Placement.min_valid_spread topo ~n_workers:t.n_workers in
  let max_spread =
    if t.config.Config.prefer_big_cores then
      Placement.max_general_spread topo ~n_workers:t.n_workers
    else chiplets
  in
  let old_global = t.states.(0).spread in
  let global =
    if rate >= decision.Controller.threshold then begin
      if old_global < max_spread then begin
        t.s_spreads <- t.s_spreads + 1;
        old_global + 1
      end
      else old_global
    end
    else if rate < hysteresis *. decision.Controller.threshold
            && old_global > min_spread
    then begin
      t.s_contracts <- t.s_contracts + 1;
      old_global - 1
    end
    else old_global
  in
  if global <> old_global then
    (* one event for the gang: the arbiter decides, everyone follows *)
    t.on_spread_change ~worker:0 ~old_spread:old_global ~new_spread:global
      ~at_ns:now;
  for w = 0 to t.n_workers - 1 do
    let st = t.states.(w) in
    st.spread <- global;
    update_location t sched ~worker:w ~core:(Engine.Sched.worker_core sched w);
    st.last_check <- now;
    Profiler.reset t.profiler ~worker:w ~core:(Engine.Sched.worker_core sched w)
  done

let tick t sched ~worker =
  if t.config.Config.profile_while_running then begin
    if t.config.Config.decentralized then begin
      let now = Engine.Sched.worker_clock sched worker in
      let st = t.states.(worker) in
      let elapsed = now -. st.last_check in
      if elapsed >= t.config.Config.scheduler_timer_ns then
        evaluate t sched ~worker ~now ~elapsed
    end
    else if worker = 0 then begin
      let now = Engine.Sched.worker_clock sched 0 in
      let elapsed = now -. t.states.(0).last_check in
      if elapsed >= t.config.Config.scheduler_timer_ns then
        centralized_evaluate t sched ~now ~elapsed
    end
  end

let force_tick t sched ~worker =
  let now = Engine.Sched.worker_clock sched worker in
  let st = t.states.(worker) in
  (* clamp to one full timer period, not 1 ns: a force-tick right after a
     timer tick would otherwise scale the raw counter by ~timer_ns and
     trigger a bogus spread.  With this floor, rate <= raw counter. *)
  let elapsed =
    Float.max (now -. st.last_check) t.config.Config.scheduler_timer_ns
  in
  evaluate t sched ~worker ~now ~elapsed
