(** Adaptive controller (paper §4.1, component 2).

    Turns an {e approach} (guiding principle) into a concrete {e policy}:
    the effective remote-access threshold the per-worker scheduling policy
    (Alg. 1) compares against.  In [Adaptive] mode the controller inspects
    each worker's profiler sample and leans cache-centric when DRAM fills
    dominate (working set outgrew the current footprint — spread for more
    aggregate L3) and location-centric when cross-chiplet fills dominate
    (sharing traffic — consolidate for locality). *)

type decision = {
  threshold : float;  (** effective [RMT_CHIP_ACCESS_RATE] for this tick *)
  mode : Config.approach;  (** the concrete approach chosen this tick *)
}

type t

val create : Config.t -> t

val decide : t -> ?degraded:bool -> Profiler.sample -> decision
(** Per-worker, per-tick policy generation from the latest sample.
    [~degraded:true] (the worker sits on a chiplet the health monitor
    flagged sick) halves the threshold so the policy spreads away from
    known-bad silicon with half the usual evidence. *)

val mode_switches : t -> int
(** Number of times adaptive mode changed direction (for stats).  The
    first concrete resolution after {!create} is not a switch. *)

val set_on_switch :
  t -> (from_mode:Config.approach -> to_mode:Config.approach -> unit) -> unit
(** Callback invoked whenever a counted mode switch happens (tracing
    hook). *)
