(** NUMA-aware memory manager (paper §4.1, component 3).

    Tracks a memory policy per worker — the simulated analogue of
    [set_mempolicy(MPOL_BIND, 1 << numa_node)] in Alg. 2 line 14 — and
    applies it to the worker's allocations.  On a cross-socket migration it
    can re-home the worker's bound regions (pages then migrate lazily on
    next touch), mirroring CHARM's task-completion-time data movement. *)

open Chipsim

type t

val create : Config.t -> Machine.t -> n_workers:int -> t

val bind_worker : t -> worker:int -> node:int -> unit
(** Set the worker's memory policy to bind to [node]. *)

val worker_node : t -> worker:int -> int option
(** Current binding, if any. *)

val alloc :
  t -> worker:int -> elt_bytes:int -> count:int -> unit -> Simmem.region
(** Allocate following the worker's current policy (bound node, or
    first-touch when unbound); the region is remembered as worker-owned. *)

val alloc_shared :
  t -> ?policy:Simmem.policy -> elt_bytes:int -> count:int -> unit ->
  Simmem.region
(** Allocation not owned by any worker (shared datasets). *)

val on_migrate : t -> worker:int -> old_core:int -> new_core:int -> unit
(** Alg. 2 lines 13–14: re-point an {e already-bound} worker's policy to
    the new core's NUMA node and, on a socket change, re-home its owned
    regions.  Never-bound (first-touch) workers are left untouched, and
    the whole step is gated on [Config.rebind_memory_on_migrate]. *)

val rebinds : t -> int
(** Number of region re-homings performed (data-movement stat). *)

val set_on_rebind : t -> (worker:int -> node:int -> regions:int -> unit) -> unit
(** Callback invoked after a cross-socket re-home of a worker's regions
    (tracing hook); [regions] is the number of regions re-pointed. *)
