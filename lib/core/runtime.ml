open Chipsim
module Sched = Engine.Sched

type t = {
  config : Config.t;
  machine : Machine.t;
  sched : Sched.t;
  profiler : Profiler.t;
  controller : Controller.t;
  policy : Policy.t;
  memory : Memory_manager.t;
  health : Health_monitor.t;
  power_cap : Power_cap.t option;
  n_workers : int;
  mutable makespan : float;
}

let init ?(config = Config.default) ?(sched_config = Sched.default_config)
    machine ~n_workers =
  let topo = Machine.topology machine in
  Config.validate config topo;
  if n_workers > Topology.num_cores topo then
    invalid_arg "Runtime.init: more workers than physical cores";
  let spread0 =
    let s = config.Config.initial_spread in
    if Placement.valid_spread topo ~spread_rate:s ~n_workers then s
    else Placement.min_valid_spread topo ~n_workers
  in
  let placement w =
    match
      Placement.core_of_worker ~prefer_fast:config.Config.prefer_big_cores topo
        ~spread_rate:spread0 ~n_workers ~worker:w
    with
    | Some core -> core
    | None -> invalid_arg "Runtime.init: no valid placement for the gang"
  in
  let sched = Sched.create ~config:sched_config machine ~n_workers ~placement in
  let profiler = Profiler.create machine ~n_workers in
  let controller = Controller.create config in
  let config = { config with Config.initial_spread = spread0 } in
  let policy = Policy.create config machine controller profiler ~n_workers in
  let memory = Memory_manager.create config machine ~n_workers in
  let health = Health_monitor.create machine ~n_workers in
  (* any energy feature — a cap or EDP-weighted placement — needs the
     per-quantum compute meters running; plain runs leave them off so the
     energy-free baselines stay bit-identical *)
  if config.Config.power_cap_mw > 0.0 || config.Config.energy_weight > 0.0 then
    Sched.set_energy sched true;
  let power_cap =
    if config.Config.power_cap_mw > 0.0 then
      Some
        (Power_cap.create machine ~cap_mw:config.Config.power_cap_mw
           ~sample_ns:config.Config.scheduler_timer_ns
           ~window_ns:(10.0 *. config.Config.scheduler_timer_ns))
    else None
  in
  Policy.set_health policy (Some (fun chiplet -> Health_monitor.sick health ~chiplet));
  (match power_cap with
  | Some pc ->
      Policy.set_power_oracle policy
        (Some (fun chiplet -> Power_cap.throttled pc ~chiplet))
  | None -> ());
  Policy.set_on_migrate policy (fun ~worker ~old_core ~new_core ->
      Memory_manager.on_migrate memory ~worker ~old_core ~new_core);
  (* initial memory bindings follow the initial placement *)
  for w = 0 to n_workers - 1 do
    Memory_manager.bind_worker memory ~worker:w
      ~node:(Placement.numa_node_of_core topo (Sched.worker_core sched w))
  done;
  let t =
    { config; machine; sched; profiler; controller; policy; memory; health;
      power_cap; n_workers; makespan = 0.0 }
  in
  let steal_rng = Engine.Rng.create 0x51ea1 in
  let hooks =
    {
      Sched.on_quantum_end =
        (fun sched worker ->
          (* the power controller samples and actuates on its own virtual
             cadence, independent of the profiler switch: a cap must hold
             even in profiling-off ablations *)
          (match power_cap with
          | Some pc ->
              let action =
                Power_cap.tick pc ~now_ns:(Sched.worker_clock sched worker)
              in
              (match (action, Sched.trace sched) with
              | Power_cap.Idle, _ | _, None -> ()
              | action, Some tr when Engine.Trace.enabled tr ->
                  let desc =
                    match action with
                    | Power_cap.Shed ch ->
                        Printf.sprintf "power-cap: shed chiplet %d to %.2fx \
                                        (%.0f mW over %g mW cap)"
                          ch (Power_cap.level pc ~chiplet:ch)
                          (Power_cap.power_mw pc) (Power_cap.cap_mw pc)
                    | Power_cap.Release ch ->
                        Printf.sprintf "power-cap: released chiplet %d to %.2fx"
                          ch (Power_cap.level pc ~chiplet:ch)
                    | Power_cap.Idle -> assert false
                  in
                  Engine.Trace.instant tr ~name:desc
                    ~at_ns:(Sched.worker_clock sched worker)
              | _ -> ())
          | None -> ());
          if config.Config.profile_while_running then begin
            Sched.charge sched ~worker config.Config.profiler_overhead_ns;
            (* health first: the policy tick right after should already
               see a freshly flagged chiplet *)
            Health_monitor.observe health ~worker
              ~core:(Sched.worker_core sched worker)
              ~now:(Sched.worker_clock sched worker);
            Policy.tick policy sched ~worker
          end);
      steal_order =
        (fun sched ~thief ->
          if config.Config.chiplet_first_steal then
            (Sched.no_hooks).Sched.steal_order sched ~thief
          else begin
            let n = Sched.n_workers sched in
            let others = Array.of_list (List.filter (fun w -> w <> thief) (List.init n Fun.id)) in
            Engine.Rng.shuffle steal_rng others;
            others
          end);
    }
  in
  Sched.set_hooks sched hooks;
  t

let sched t = t.sched
let machine t = t.machine

(* the clocks are virtual and deterministic, so the frontier is a stable
   timestamp for events with no single owning worker (mode switches) *)
let max_clock t =
  let m = ref 0.0 in
  for w = 0 to t.n_workers - 1 do
    m := Float.max !m (Sched.worker_clock t.sched w)
  done;
  !m

let attach_trace t tr =
  Sched.set_trace t.sched (Some tr);
  Policy.set_on_spread_change t.policy
    (fun ~worker ~old_spread ~new_spread ~at_ns ->
      Engine.Trace.spread_change tr ~worker ~old_spread ~new_spread ~at_ns);
  Controller.set_on_switch t.controller (fun ~from_mode ~to_mode ->
      Engine.Trace.mode_switch tr
        ~from_mode:(Config.approach_to_string from_mode)
        ~to_mode:(Config.approach_to_string to_mode)
        ~at_ns:(max_clock t));
  Memory_manager.set_on_rebind t.memory (fun ~worker ~node ~regions ->
      Engine.Trace.rebind tr ~worker ~node ~regions
        ~at_ns:(Sched.worker_clock t.sched worker));
  Health_monitor.set_on_event t.health (fun ~chiplet ~sick ~at_ns ->
      Engine.Trace.instant tr
        ~name:
          (Printf.sprintf "health: chiplet %d %s" chiplet
             (if sick then "sick" else "recovered"))
        ~at_ns;
      Engine.Trace.counter tr ~name:"health" ~at_ns
        ~series:(Health_monitor.counter_series t.health))
let config t = t.config
let n_workers t = t.n_workers
let policy t = t.policy
let power_cap t = t.power_cap
let memory t = t.memory
let profiler t = t.profiler
let health t = t.health

let alloc_shared t ?policy ~elt_bytes ~count () =
  Memory_manager.alloc_shared t.memory ?policy ~elt_bytes ~count ()

let run t main =
  ignore (Sched.spawn t.sched ~worker:0 main : Sched.task);
  let makespan = Sched.run t.sched in
  t.makespan <- Float.max t.makespan makespan;
  makespan

let all_do t f =
  for w = 0 to t.n_workers - 1 do
    ignore (Sched.spawn t.sched ~worker:w (fun ctx -> f ctx w) : Sched.task)
  done;
  let makespan = Sched.run t.sched in
  t.makespan <- Float.max t.makespan makespan;
  makespan

let finalize t =
  if Sched.check_enabled t.sched then Option.iter Power_cap.verify t.power_cap;
  Engine.Stats.collect t.machine ~makespan_ns:t.makespan
let last_makespan t = t.makespan
let barrier t = Engine.Barrier.create t.n_workers

module Api = struct
  let alloc ctx ~elt_bytes ~count () =
    (* Alg. 2 binds a worker's memory policy to its current core's node;
       task-side allocations therefore bind to the caller's socket. *)
    let machine = Sched.Ctx.machine ctx in
    let topo = Machine.topology machine in
    let node = Topology.socket_of_core topo (Sched.Ctx.core ctx) in
    Machine.alloc machine ~policy:(Simmem.Bind node) ~elt_bytes ~count ()

  let call = Engine.Par.call
  let call_sync = Engine.Par.call_sync
  let all_do = Engine.Par.all_do
  let parallel_for = Engine.Par.parallel_for
  let barrier_wait ctx b = Engine.Barrier.wait ctx b
end
