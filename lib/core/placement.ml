open Chipsim

(* Alg. 2 operates within one socket: CHARM's multi-level NUMA policy
   (paper §4.6) fills all chiplets of one socket before touching the next,
   so CHIPLETS in the algorithm is chiplets-per-socket and the worker gang
   is sliced into per-socket sub-gangs by id.  This also matches the
   paper's bounds-check example: 64 workers on 8-core chiplets make
   spread_rate 1 invalid (64 > 1 x 8). *)

let socket_gang_size topo ~n_workers ~socket =
  let cps = Topology.cores_per_socket topo in
  let remaining = n_workers - (socket * cps) in
  max 0 (min cps remaining)

let valid_spread topo ~spread_rate ~n_workers =
  let chiplets = topo.Topology.chiplets_per_socket in
  let cpc = topo.Topology.cores_per_chiplet in
  if spread_rate < 1 || spread_rate > chiplets then false
  else if n_workers > Topology.num_cores topo then false
  else begin
    (* every per-socket sub-gang must fit in spread_rate chiplets *)
    let ok = ref true in
    for socket = 0 to topo.Topology.sockets - 1 do
      let gang = socket_gang_size topo ~n_workers ~socket in
      if gang > spread_rate * cpc then ok := false
    done;
    !ok
  end

let min_valid_spread topo ~n_workers =
  let chiplets = topo.Topology.chiplets_per_socket in
  let rec go k =
    if k > chiplets then chiplets
    else if valid_spread topo ~spread_rate:k ~n_workers then k
    else go (k + 1)
  in
  go 1

let numa_node_of_core topo core = core / Topology.cores_per_socket topo

(* Largest spread_rate a gang may take without general work spilling onto
   accelerator-only chiplets.  [chiplet_speed_order] sorts general-task
   chiplets first, so at spread k <= #general every Alg. 2 chiplet index
   maps to a general chiplet; the cap only relaxes to the full socket when
   the gang is too wide to fit on general chiplets alone. *)
let max_general_spread topo ~n_workers =
  let chiplets = topo.Topology.chiplets_per_socket in
  let general = Topology.general_chiplets_per_socket topo in
  if general > 0 && general < chiplets
     && valid_spread topo ~spread_rate:general ~n_workers
  then general
  else chiplets

(* Alg. 2 body, applied to the worker's position within its socket's
   sub-gang.  The published formula (chiplet = id / (cpc/k), slot = id mod
   (cpc/k), with a wrap branch) is only well-defined when k divides cpc;
   for other k it collides (e.g. k = 3, cpc = 8 maps ids 0 and 2 to the
   same core).  We use the natural total version: ids are consumed in
   passes of [k * g] (g = group size per chiplet per pass), so
   [(chiplet, slot)] decomposes id bijectively —
     id = pass * (k*g) + chiplet * g + (slot mod g),  slot = pass*g + ...
   which coincides with the paper's mapping whenever k | cpc. *)
(* On a heterogeneous socket, Alg. 2's k-th chiplet is the k-th {e
   fastest} chiplet that accepts general tasks: local chiplet indices
   permuted by (general-tasks, descending kind speed), stable, so
   homogeneous sockets keep the identity order and placements there are
   unchanged byte-for-byte.  Accelerator-only chiplets (general_tasks =
   false) sort last: general gangs only reach them when the gang is too
   wide to fit on the general chiplets alone. *)
let chiplet_speed_order topo ~socket =
  let n = topo.Topology.chiplets_per_socket in
  let order = Array.init n (fun i -> i) in
  let spec local =
    Topology.spec_of_kind topo
      (Topology.kind_of_chiplet topo ((socket * n) + local))
  in
  Array.stable_sort
    (fun a b ->
      let sa = spec a and sb = spec b in
      if sa.Topology.general_tasks <> sb.Topology.general_tasks then
        compare sb.Topology.general_tasks sa.Topology.general_tasks
      else if sa.Topology.speed = sb.Topology.speed then compare a b
      else compare sb.Topology.speed sa.Topology.speed)
    order;
  order

let core_of_worker ?(prefer_fast = true) topo ~spread_rate ~n_workers ~worker =
  if worker < 0 || worker >= n_workers then
    invalid_arg "Placement.core_of_worker: worker out of range";
  if not (valid_spread topo ~spread_rate ~n_workers) then None
  else begin
    let cpc = topo.Topology.cores_per_chiplet in
    let cps = Topology.cores_per_socket topo in
    let socket = worker / cps in
    let id = worker mod cps in
    let g = max 1 (cpc / spread_rate) in
    let stride = spread_rate * g in
    let pass = id / stride in
    let pos = id mod stride in
    let chiplet = pos / g in
    let slot = (pass * g) + (pos mod g) in
    if slot >= cpc || chiplet >= topo.Topology.chiplets_per_socket then None
    else begin
      let chiplet =
        if prefer_fast && Topology.heterogeneous topo then
          (chiplet_speed_order topo ~socket).(chiplet)
        else chiplet
      in
      Some ((socket * cps) + (chiplet * cpc) + slot)
    end
  end

let gang ?(prefer_fast = true) topo ~spread_rate ~n_workers =
  if not (valid_spread topo ~spread_rate ~n_workers) then None
  else begin
    let cores = Array.make n_workers (-1) in
    let seen = Array.make (Topology.num_cores topo) false in
    let ok = ref true in
    for w = 0 to n_workers - 1 do
      match core_of_worker ~prefer_fast topo ~spread_rate ~n_workers ~worker:w with
      | None -> ok := false
      | Some core ->
          if seen.(core) then ok := false
          else begin
            seen.(core) <- true;
            cores.(w) <- core
          end
    done;
    if !ok then Some cores else None
  end
