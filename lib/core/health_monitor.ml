open Chipsim

(* Detection parameters.  The monitor is a heuristic consumer of the same
   PMU deltas the profiler reads; the constants trade detection latency
   against false positives under ordinary contention noise. *)
let alpha = 0.3  (* fast EWMA smoothing for per-chiplet ns/access *)
let alpha_slow = 0.05  (* slow EWMA: the chiplet's own healthy baseline *)

(* A chiplet is flagged only when BOTH hold for [strike_limit] consecutive
   samples: its fast EWMA jumped [jump_ratio] above its own slow baseline
   (faults are step changes; static workload heterogeneity is not) AND it
   is [sick_ratio] above the cross-chiplet median (so a machine-wide phase
   change does not flag everyone).  Either test alone is too noisy: under
   a mixed tenant load the healthy cross-chiplet spread of ns/access
   reaches ~2.5x.  The EWMA path only has to catch *silent* degradation —
   link / L3 / bandwidth faults multiply per-access latency by 3x and
   more — because DVFS and hotplug arrive through the instant OS-visible
   path below.  The baseline freezes while sick, so recovery is judged
   against the pre-fault level; the cost is that very gradual creep gets
   absorbed as the new normal. *)
let jump_ratio = 2.0  (* fast EWMA vs own frozen baseline *)
let sick_ratio = 1.6  (* fast EWMA vs cross-chiplet median *)
let recover_ratio = 1.3  (* back within this of baseline counts healthy *)
let strike_limit = 4  (* consecutive over-ratio samples before flagging *)
let recovery_samples = 8  (* consecutive healthy samples before unflagging *)
let min_accesses = 16  (* PMU delta below this is noise; keep accumulating *)
let min_samples = 4  (* per-chiplet EWMA updates before it can be judged *)

type event = { chiplet : int; sick : bool; at_ns : float }

type chiplet_state = {
  mutable ewma : float;
  mutable baseline : float;  (* slow EWMA, frozen while sick *)
  mutable samples : int;
  mutable strikes : int;
  mutable healthy_streak : int;
  mutable sick : bool;
}

type worker_state = {
  mutable last_core : int;
  mutable last_mem_ns : float;
  mutable last_accesses : int;
}

type t = {
  machine : Machine.t;
  chiplets : chiplet_state array;
  workers : worker_state array;
  mutable mods_generation : int;
  mutable first_flag_ns : float option;
  mutable events : event list;  (* newest first *)
  mutable on_event : chiplet:int -> sick:bool -> at_ns:float -> unit;
}

let create machine ~n_workers =
  if n_workers <= 0 then
    invalid_arg "Health_monitor.create: n_workers must be positive";
  let topo = Machine.topology machine in
  {
    machine;
    chiplets =
      Array.init (Topology.num_chiplets topo) (fun _ ->
          {
            ewma = 0.0;
            baseline = 0.0;
            samples = 0;
            strikes = 0;
            healthy_streak = 0;
            sick = false;
          });
    workers =
      Array.init n_workers (fun _ ->
          { last_core = -1; last_mem_ns = 0.0; last_accesses = 0 });
    mods_generation = -1;
    first_flag_ns = None;
    events = [];
    on_event = (fun ~chiplet:_ ~sick:_ ~at_ns:_ -> ());
  }

let set_on_event t f = t.on_event <- f
let sick t ~chiplet = t.chiplets.(chiplet).sick

let sick_chiplets t =
  let acc = ref [] in
  for c = Array.length t.chiplets - 1 downto 0 do
    if t.chiplets.(c).sick then acc := c :: !acc
  done;
  !acc

let any_sick t = Array.exists (fun c -> c.sick) t.chiplets
let first_flag_ns t = t.first_flag_ns
let events t = List.rev t.events
let ewma t ~chiplet = t.chiplets.(chiplet).ewma

let flag t ~chiplet ~sick ~at_ns =
  let st = t.chiplets.(chiplet) in
  if st.sick <> sick then begin
    st.sick <- sick;
    st.strikes <- 0;
    st.healthy_streak <- 0;
    if sick && t.first_flag_ns = None then t.first_flag_ns <- Some at_ns;
    t.events <- { chiplet; sick; at_ns } :: t.events;
    t.on_event ~chiplet ~sick ~at_ns
  end

(* Total data accesses a core has performed, per the PMU. *)
let accesses_of_core t ~core =
  let pmu = Machine.pmu t.machine in
  Pmu.read pmu ~core Pmu.L2_hit
  + Pmu.read pmu ~core Pmu.L3_local_hit
  + Pmu.read pmu ~core Pmu.Fill_remote_chiplet
  + Pmu.read pmu ~core Pmu.Fill_remote_numa
  + Pmu.read pmu ~core Pmu.Dram_local
  + Pmu.read pmu ~core Pmu.Dram_remote

(* DVFS and hotplug are OS-visible on real machines (sysfs); treating
   them as instantly known keeps the EWMA path for what is genuinely
   silent (latency degradation).  Re-derived only when the modifier
   generation moved. *)
let sync_os_visible t ~now =
  let mods = Machine.modifiers t.machine in
  let gen = Modifiers.generation mods in
  if gen <> t.mods_generation then begin
    t.mods_generation <- gen;
    let topo = Machine.topology t.machine in
    let cpc = topo.Topology.cores_per_chiplet in
    Array.iteri
      (fun chiplet st ->
        let impaired =
          Modifiers.chiplet_os_impaired mods ~chiplet ~cores_per_chiplet:cpc
        in
        if impaired && not st.sick then flag t ~chiplet ~sick:true ~at_ns:now)
      t.chiplets
  end

let median_ewma t =
  let vals =
    Array.of_seq
      (Seq.filter_map
         (fun c -> if c.samples >= min_samples then Some c.ewma else None)
         (Array.to_seq t.chiplets))
  in
  if Array.length vals < 2 then None
  else begin
    Array.sort compare vals;
    Some vals.(Array.length vals / 2)
  end

let judge t ~chiplet ~now =
  let st = t.chiplets.(chiplet) in
  if st.samples >= min_samples && st.baseline > 0.0 then
    if st.sick then begin
      (* sticky: judged against the frozen pre-fault baseline, and the
         flag only clears after a run of healthy samples, or the gang
         would bounce back and forth *)
      if st.ewma <= recover_ratio *. st.baseline then begin
        st.healthy_streak <- st.healthy_streak + 1;
        if
          st.healthy_streak >= recovery_samples
          && not
               (Modifiers.chiplet_impaired
                  (Machine.modifiers t.machine)
                  ~chiplet
                  ~cores_per_chiplet:
                    (Machine.topology t.machine).Topology.cores_per_chiplet)
        then flag t ~chiplet ~sick:false ~at_ns:now
      end
      else st.healthy_streak <- 0
    end
    else begin
      let jumped = st.ewma > jump_ratio *. st.baseline in
      let outlier =
        match median_ewma t with
        | Some med when med > 0.0 -> st.ewma > sick_ratio *. med
        | _ -> true  (* too few peers to compare: trust the jump test *)
      in
      if jumped && outlier then begin
        st.strikes <- st.strikes + 1;
        if st.strikes >= strike_limit then flag t ~chiplet ~sick:true ~at_ns:now
      end
      else st.strikes <- 0
    end

let observe t ~worker ~core ~now =
  sync_os_visible t ~now;
  let ws = t.workers.(worker) in
  let accesses = accesses_of_core t ~core in
  let mem_ns = Machine.mem_ns t.machine ~core in
  if ws.last_core <> core then begin
    (* migrated (or first sample): the old baseline refers to another
       core's counters — rebase without producing a sample *)
    ws.last_core <- core;
    ws.last_mem_ns <- mem_ns;
    ws.last_accesses <- accesses
  end
  else begin
    let da = accesses - ws.last_accesses in
    let dmem = mem_ns -. ws.last_mem_ns in
    if da >= min_accesses && dmem > 0.0 then begin
      let ns_per_access = dmem /. float_of_int da in
      let topo = Machine.topology t.machine in
      let chiplet = Topology.chiplet_of_core topo core in
      let st = t.chiplets.(chiplet) in
      st.ewma <-
        (if st.samples = 0 then ns_per_access
         else (alpha *. ns_per_access) +. ((1.0 -. alpha) *. st.ewma));
      if not st.sick then
        st.baseline <-
          (if st.samples = 0 then ns_per_access
           else
             (alpha_slow *. ns_per_access)
             +. ((1.0 -. alpha_slow) *. st.baseline));
      st.samples <- st.samples + 1;
      ws.last_mem_ns <- mem_ns;
      ws.last_accesses <- accesses;
      judge t ~chiplet ~now
    end
  end

let counter_series t =
  let acc = ref [] in
  for c = Array.length t.chiplets - 1 downto 0 do
    let st = t.chiplets.(c) in
    if st.samples > 0 || st.sick then
      acc :=
        (Printf.sprintf "chiplet%d_ns_per_access" c, st.ewma)
        :: (Printf.sprintf "chiplet%d_sick" c, if st.sick then 1.0 else 0.0)
        :: !acc
  done;
  !acc
