open Chipsim

type t = {
  config : Config.t;
  machine : Machine.t;
  bindings : int option array;  (* per worker *)
  owned : Simmem.region list array;  (* per worker *)
  mutable rebinds : int;
  mutable on_rebind : worker:int -> node:int -> regions:int -> unit;
}

let create config machine ~n_workers =
  Config.validate config (Machine.topology machine);
  {
    config;
    machine;
    bindings = Array.make n_workers None;
    owned = Array.make n_workers [];
    rebinds = 0;
    on_rebind = (fun ~worker:_ ~node:_ ~regions:_ -> ());
  }

let set_on_rebind t f = t.on_rebind <- f

let bind_worker t ~worker ~node =
  let topo = Machine.topology t.machine in
  if node < 0 || node >= topo.Topology.sockets then
    invalid_arg "Memory_manager.bind_worker: node out of range";
  t.bindings.(worker) <- Some node

let worker_node t ~worker = t.bindings.(worker)

let alloc t ~worker ~elt_bytes ~count () =
  let policy =
    match t.bindings.(worker) with
    | Some node -> Simmem.Bind node
    | None -> Simmem.First_touch
  in
  let region = Machine.alloc t.machine ~policy ~elt_bytes ~count () in
  t.owned.(worker) <- region :: t.owned.(worker);
  region

let alloc_shared t ?policy ~elt_bytes ~count () =
  Machine.alloc t.machine ?policy ~elt_bytes ~count ()

let on_migrate t ~worker ~old_core ~new_core =
  (* a never-bound worker allocates first-touch by choice; migrating it
     must not silently harden that into a [Bind] policy, and with
     [rebind_memory_on_migrate] off the binding itself stays put too *)
  match t.bindings.(worker) with
  | None -> ()
  | Some _ when not t.config.Config.rebind_memory_on_migrate -> ()
  | Some _ ->
      let topo = Machine.topology t.machine in
      let old_node = Topology.socket_of_core topo old_core in
      let new_node = Topology.socket_of_core topo new_core in
      t.bindings.(worker) <- Some new_node;
      if old_node <> new_node then begin
        List.iter
          (fun region ->
            Simmem.rebind (Machine.mem t.machine) region (Simmem.Bind new_node);
            t.rebinds <- t.rebinds + 1)
          t.owned.(worker);
        t.on_rebind ~worker ~node:new_node ~regions:(List.length t.owned.(worker))
      end

let rebinds t = t.rebinds
