open Chipsim

type kind =
  | Core_off of int
  | Core_on of int
  | Dvfs of { core : int; speed : float }
  | L3_ways of { chiplet : int; ways : int }
  | Link of { chiplet : int; mult : float }
  | Xsocket of float
  | Membw of { node : int; factor : float }
  | Corruption of { seed : int }

type event = { at_ns : float; kind : kind }
type t = event list

let describe = function
  | Core_off c -> Printf.sprintf "core-off %d" c
  | Core_on c -> Printf.sprintf "core-on %d" c
  | Dvfs { core; speed } -> Printf.sprintf "dvfs core %d -> %.2fx" core speed
  | L3_ways { chiplet; ways } ->
      Printf.sprintf "l3-ways chiplet %d -> %d" chiplet ways
  | Link { chiplet; mult } ->
      Printf.sprintf "link chiplet %d -> x%.2f" chiplet mult
  | Xsocket m -> Printf.sprintf "xsocket -> x%.2f" m
  | Membw { node; factor } ->
      Printf.sprintf "membw node %d -> %.2fx" node factor
  | Corruption { seed } -> Printf.sprintf "corrupt seed %d" seed

let sort t =
  (* stable, so same-instant events keep their spec order *)
  List.stable_sort (fun a b -> compare a.at_ns b.at_ns) t

let to_spec t =
  String.concat ";"
    (List.map
       (fun { at_ns; kind } ->
         let us = at_ns /. 1000.0 in
         match kind with
         | Core_off c -> Printf.sprintf "%g:core-off:%d" us c
         | Core_on c -> Printf.sprintf "%g:core-on:%d" us c
         | Dvfs { core; speed } -> Printf.sprintf "%g:dvfs:%d:%g" us core speed
         | L3_ways { chiplet; ways } ->
             Printf.sprintf "%g:l3-ways:%d:%d" us chiplet ways
         | Link { chiplet; mult } ->
             Printf.sprintf "%g:link:%d:%g" us chiplet mult
         | Xsocket m -> Printf.sprintf "%g:xsocket:%g" us m
         | Membw { node; factor } ->
             Printf.sprintf "%g:membw:%d:%g" us node factor
         | Corruption { seed } -> Printf.sprintf "%g:corrupt:%d" us seed)
       (sort t))

(* -- spec parsing -------------------------------------------------------- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let int_field entry name s =
  match int_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> fail "%s: %s must be an integer (got %S)" entry name s

let float_field entry name s =
  match float_of_string_opt (String.trim s) with
  | Some v when Float.is_finite v -> v
  | _ -> fail "%s: %s must be a finite number (got %S)" entry name s

let check_range entry name v lo hi =
  if v < lo || v >= hi then
    fail "%s: %s %d out of range [0, %d)" entry name v hi

(* [rand:SEED:N:HORIZON_US] expands to N machine-valid fault events drawn
   deterministically from SEED over [0, horizon); useful for chaos-style
   robustness runs that must still replay byte-identically. *)
let expand_rand ~topo entry ~seed ~n ~horizon_us =
  if n < 0 then fail "%s: event count must be >= 0" entry;
  if horizon_us <= 0.0 then fail "%s: horizon must be positive" entry;
  let cores = Topology.num_cores topo in
  let chiplets = Topology.num_chiplets topo in
  let nodes = topo.Topology.sockets in
  let rng = Engine.Rng.create seed in
  let module Rng = Engine.Rng in
  List.init n (fun _ ->
      let at_ns = Rng.float rng (horizon_us *. 1000.0) in
      let kind =
        match Rng.int rng 6 with
        | 0 -> Core_off (Rng.int rng cores)
        | 1 -> Core_on (Rng.int rng cores)
        | 2 ->
            Dvfs { core = Rng.int rng cores; speed = 0.2 +. Rng.float rng 0.7 }
        | 3 ->
            L3_ways
              { chiplet = Rng.int rng chiplets; ways = 1 + Rng.int rng 16 }
        | 4 ->
            Link { chiplet = Rng.int rng chiplets; mult = 1.5 +. Rng.float rng 6.0 }
        | _ ->
            Membw { node = Rng.int rng nodes; factor = 0.1 +. Rng.float rng 0.9 }
      in
      { at_ns; kind })

let parse_entry ~topo entry =
  let cores = Topology.num_cores topo in
  let chiplets = Topology.num_chiplets topo in
  let nodes = topo.Topology.sockets in
  match String.split_on_char ':' entry with
  | [ "rand"; seed; n; horizon ] ->
      expand_rand ~topo entry ~seed:(int_field entry "seed" seed)
        ~n:(int_field entry "count" n)
        ~horizon_us:(float_field entry "horizon" horizon)
  | time :: rest -> (
      let us = float_field entry "time" time in
      if us < 0.0 then fail "%s: time must be >= 0" entry;
      let at_ns = us *. 1000.0 in
      let one kind = [ { at_ns; kind } ] in
      match rest with
      | [ "core-off"; c ] ->
          let c = int_field entry "core" c in
          check_range entry "core" c 0 cores;
          one (Core_off c)
      | [ "core-on"; c ] ->
          let c = int_field entry "core" c in
          check_range entry "core" c 0 cores;
          one (Core_on c)
      | [ "dvfs"; c; s ] ->
          let c = int_field entry "core" c in
          check_range entry "core" c 0 cores;
          let s = float_field entry "speed" s in
          if s <= 0.0 then fail "%s: speed must be positive" entry;
          one (Dvfs { core = c; speed = s })
      | [ "l3-ways"; ch; w ] ->
          let ch = int_field entry "chiplet" ch in
          check_range entry "chiplet" ch 0 chiplets;
          let w = int_field entry "ways" w in
          if w < 1 then fail "%s: ways must be >= 1" entry;
          one (L3_ways { chiplet = ch; ways = w })
      | [ "link"; ch; m ] ->
          let ch = int_field entry "chiplet" ch in
          check_range entry "chiplet" ch 0 chiplets;
          let m = float_field entry "mult" m in
          if m < 1.0 then fail "%s: link multiplier must be >= 1" entry;
          one (Link { chiplet = ch; mult = m })
      | [ "xsocket"; m ] ->
          let m = float_field entry "mult" m in
          if m < 1.0 then fail "%s: xsocket multiplier must be >= 1" entry;
          one (Xsocket m)
      | [ "membw"; nd; f ] ->
          let nd = int_field entry "node" nd in
          check_range entry "node" nd 0 nodes;
          let f = float_field entry "factor" f in
          if f <= 0.0 || f > 1.0 then
            fail "%s: capacity factor must be in (0, 1]" entry;
          one (Membw { node = nd; factor = f })
      | [ "corrupt"; s ] ->
          (* no range to check: the seed only picks which bit flips *)
          one (Corruption { seed = int_field entry "seed" s })
      | kind :: _ -> fail "%s: unknown fault kind %S" entry kind
      | [] -> fail "%s: missing fault kind" entry)
  | [] -> fail "%s: empty entry" entry

let parse ~topo spec =
  let entries =
    String.split_on_char '\n' spec
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "" && not (String.length s > 0 && s.[0] = '#'))
  in
  try Ok (sort (List.concat_map (parse_entry ~topo) entries))
  with Parse_error msg -> Error msg

let parse_exn ~topo spec =
  match parse ~topo spec with
  | Ok t -> t
  | Error msg -> invalid_arg ("Faults.Schedule.parse: " ^ msg)

let random ~topo ~seed ~n ~horizon_us =
  match
    sort
      (expand_rand ~topo
         (Printf.sprintf "rand:%d:%d:%g" seed n horizon_us)
         ~seed ~n ~horizon_us)
  with
  | t -> t
  | exception Parse_error msg -> invalid_arg ("Faults.Schedule.random: " ^ msg)

(* -- presets ------------------------------------------------------------- *)

(* The bench scenario: one chiplet's cores throttle hard, its L3 loses
   most of its ways and its I/O-die link degrades — the compound
   "sick chiplet" from the paper's motivation for runtime adaptivity. *)
let chiplet_meltdown ~topo ?(chiplet = 0) ~at_us () =
  let at_ns = at_us *. 1000.0 in
  if chiplet < 0 || chiplet >= Topology.num_chiplets topo then
    invalid_arg "Schedule.chiplet_meltdown: chiplet out of range";
  let cpc = topo.Topology.cores_per_chiplet in
  let dvfs =
    List.init cpc (fun i ->
        { at_ns; kind = Dvfs { core = (chiplet * cpc) + i; speed = 0.35 } })
  in
  dvfs
  @ [
      { at_ns; kind = L3_ways { chiplet; ways = 2 } };
      { at_ns; kind = Link { chiplet; mult = 6.0 } };
    ]
