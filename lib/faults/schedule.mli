(** Typed fault schedules and their textual spec grammar.

    A schedule is a list of fault events at virtual timestamps.  The spec
    grammar accepted by {!parse} is a [';']- or newline-separated list of
    entries ([#]-prefixed entries are comments):

    {v
    TIME_US:core-off:CORE        take CORE offline
    TIME_US:core-on:CORE         bring CORE back
    TIME_US:dvfs:CORE:SPEED      throttle CORE to SPEED x nominal (0 < s)
    TIME_US:l3-ways:CHIPLET:WAYS degrade CHIPLET's L3 to WAYS enabled ways
    TIME_US:link:CHIPLET:MULT    multiply CHIPLET's I/O-die link latency
    TIME_US:xsocket:MULT         multiply cross-socket hop latency
    TIME_US:membw:NODE:FACTOR    throttle NODE's memory bandwidth (0..1]
    TIME_US:corrupt:SEED         arm a one-shot result corruption (SEED
                                 picks the flipped bit; see
                                 {!Chipsim.Modifiers.arm_corruption})
    rand:SEED:N:HORIZON_US       N random events over [0, HORIZON_US)
    v}

    Parsing is deterministic, including the [rand] expansion (seeded
    splitmix64), so the same spec over the same topology always yields the
    same schedule. *)

open Chipsim

type kind =
  | Core_off of int
  | Core_on of int
  | Dvfs of { core : int; speed : float }
  | L3_ways of { chiplet : int; ways : int }  (** absolute enabled ways *)
  | Link of { chiplet : int; mult : float }
  | Xsocket of float
  | Membw of { node : int; factor : float }
  | Corruption of { seed : int }
      (** arm a seeded one-shot result-token bit-flip, consumed by the
          next replicated job result (silent data corruption; masked by
          replica voting, fatal to unreplicated tenants only in the sense
          that their token is poisoned — latency is unaffected).  Not in
          {!random}'s pool: the scenario fuzzer injects these separately
          so pre-existing seeds keep their schedules. *)

type event = { at_ns : float; kind : kind }
type t = event list

val describe : kind -> string
(** Short human-readable label (used for trace fault events). *)

val sort : t -> t
(** Stable sort by timestamp (same-instant events keep spec order). *)

val to_spec : t -> string
(** Render back to the spec grammar ([';']-separated, sorted);
    [parse (to_spec t)] round-trips. *)

val parse : topo:Topology.t -> string -> (t, string) result
(** Parse a spec against a topology (targets are range-checked).  Returns
    the sorted schedule or a human-readable error. *)

val parse_exn : topo:Topology.t -> string -> t
(** @raise Invalid_argument on malformed specs. *)

val random : topo:Topology.t -> seed:int -> n:int -> horizon_us:float -> t
(** [random ~topo ~seed ~n ~horizon_us] is the schedule the spec entry
    [rand:SEED:N:HORIZON_US] expands to: [n] machine-valid events drawn
    deterministically (seeded splitmix64) over [\[0, horizon_us)], sorted.
    The scenario fuzzer draws its fault schedules through this so every
    generated schedule is expressible in the spec grammar.
    @raise Invalid_argument if [n < 0] or [horizon_us <= 0]. *)

val chiplet_meltdown : topo:Topology.t -> ?chiplet:int -> at_us:float -> unit -> t
(** The benchmark scenario: at [at_us], [chiplet] (default 0) throttles to
    0.35x DVFS on every core, loses all but 2 L3 ways and suffers a 6x
    I/O-die link degradation — a compound "sick chiplet". *)
