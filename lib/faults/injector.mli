(** Deterministic fault injector: replays a {!Schedule.t} against a live
    scheduler.

    The injector hooks the scheduler's event-loop frontier
    ({!Engine.Sched.set_on_advance}); every fault is applied at the first
    quantum boundary whose frontier reaches its timestamp — no wall-clock,
    no sampling, so two runs with the same seed and schedule produce
    byte-identical traces.  Applying a fault mutates the machine's
    {!Chipsim.Modifiers} (and cache/channel state for L3 and bandwidth
    faults) and notifies the scheduler about core hotplug events. *)

type t

val attach : Engine.Sched.t -> Schedule.t -> t
(** Sort the schedule and install the fault pump.  Replaces any previously
    installed [on_advance] hook. *)

val detach : t -> unit
(** Remove the pump (pending events stop firing). *)

val applied : t -> int
(** Events applied so far. *)

val pending : t -> int

val drain : t -> now:float -> unit
(** Force-apply every event due at or before [now] (for end-of-run
    reporting outside the scheduler loop). *)
