open Chipsim
open Engine

type t = {
  sched : Sched.t;
  events : Schedule.event array;
  mutable next : int;
}

let apply_kind t ~at kind =
  let machine = Sched.machine t.sched in
  let mods = Machine.modifiers machine in
  (match kind with
  | Schedule.Core_off c ->
      Modifiers.set_core_online mods c false;
      Sched.handle_core_offline t.sched ~core:c
  | Schedule.Core_on c ->
      Modifiers.set_core_online mods c true;
      Sched.handle_core_online t.sched ~core:c ~at
  | Schedule.Dvfs { core; speed } -> Modifiers.set_core_speed mods core speed
  | Schedule.L3_ways { chiplet; ways } -> Machine.set_l3_ways machine ~chiplet ~ways
  | Schedule.Link { chiplet; mult } -> Modifiers.set_link_mult mods chiplet mult
  | Schedule.Xsocket m -> Modifiers.set_xsocket_mult mods m
  | Schedule.Membw { node; factor } ->
      Machine.set_mem_capacity_factor machine ~node factor
  | Schedule.Corruption { seed } -> Modifiers.arm_corruption mods ~seed);
  match Sched.trace t.sched with
  | Some tr when Trace.enabled tr ->
      Trace.fault tr ~desc:(Schedule.describe kind) ~at_ns:at
  | _ -> ()

let pump t frontier =
  while
    t.next < Array.length t.events && t.events.(t.next).Schedule.at_ns <= frontier
  do
    let ev = t.events.(t.next) in
    (* stamp the event at its scheduled instant, not the frontier: the
       trace then shows the fault where the schedule put it, and replays
       are independent of quantum granularity *)
    apply_kind t ~at:ev.Schedule.at_ns ev.Schedule.kind;
    t.next <- t.next + 1
  done

let attach sched schedule =
  let events = Array.of_list (Schedule.sort schedule) in
  let t = { sched; events; next = 0 } in
  Sched.set_on_advance sched (Some (pump t));
  t

let detach t = Sched.set_on_advance t.sched None
let applied t = t.next
let pending t = Array.length t.events - t.next

let drain t ~now =
  (* force-apply everything due by [now] (e.g. before a final report when
     the run ended between quantum boundaries) *)
  pump t now
