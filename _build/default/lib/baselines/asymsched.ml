open Chipsim
module Sched = Engine.Sched

let imbalance_factor = 1.4

(* A chiplet-blind core pick: random free core on the target socket. *)
let random_free_core t ~socket =
  let sched = Baseline.sched t in
  let topo = Machine.topology (Baseline.machine t) in
  let cps = Topology.cores_per_socket topo in
  let base = socket * cps in
  let free = ref [] in
  for c = base to base + cps - 1 do
    if Sched.worker_of_core sched c = None then free := c :: !free
  done;
  match !free with
  | [] -> None
  | cores ->
      let arr = Array.of_list cores in
      Some arr.(Engine.Rng.int (Baseline.rng t) (Array.length arr))

let tick t ~worker =
  let machine = Baseline.machine t in
  let sched = Baseline.sched t in
  let topo = Machine.topology machine in
  if topo.Topology.sockets > 1 then begin
    let core = Sched.worker_core sched worker in
    let my_node = Topology.socket_of_core topo core in
    let now = Sched.worker_clock sched worker in
    let my_load = Machine.dram_load_ratio machine ~node:my_node ~now_ns:now in
    (* find the least-loaded other node *)
    let best_node = ref my_node and best_load = ref my_load in
    for node = 0 to topo.Topology.sockets - 1 do
      if node <> my_node then begin
        let load = Machine.dram_load_ratio machine ~node ~now_ns:now in
        if load < !best_load then begin
          best_load := load;
          best_node := node
        end
      end
    done;
    if !best_node <> my_node && my_load > imbalance_factor *. Float.max !best_load 0.05
    then
      match random_free_core t ~socket:!best_node with
      | Some target -> Sched.migrate sched ~worker ~core:target
      | None -> ()
  end

let spec () =
  {
    (Baseline.default_spec ~name:"asymsched"
       ~description:"bandwidth-centric NUMA scheduler with node rebalancing")
    with
    Baseline.placement = Baseline.Layouts.socket_round_robin_scatter;
    steal = Baseline.Numa_first;
    tick_interval_ns = 1_000_000.0;
    on_tick = Some tick;
  }
