open Chipsim
module Sched = Engine.Sched

type steal_discipline = Chiplet_first | Numa_first | Random_victim | No_steal

type t = {
  spec : spec;
  machine : Machine.t;
  sched : Sched.t;
  n_workers : int;
  last_tick : float array;
  trng : Engine.Rng.t;
  mutable makespan : float;
}

and spec = {
  name : string;
  description : string;
  placement : Topology.t -> n_workers:int -> int -> int;
  shared_policy : Topology.t -> Simmem.policy;
  steal : steal_discipline;
  tick_interval_ns : float;
  on_tick : (t -> worker:int -> unit) option;
  profile_adjust : Latency.profile -> Latency.profile;
  task_model : Engine.Sched.task_model;
}

module Layouts = struct
  let sequential _topo ~n_workers:_ w = w

  let socket_round_robin_scatter topo ~n_workers:_ w =
    let sockets = topo.Topology.sockets in
    let cps = Topology.cores_per_socket topo in
    let cpc = topo.Topology.cores_per_chiplet in
    let chiplets = topo.Topology.chiplets_per_socket in
    let socket = w mod sockets in
    let i = w / sockets in
    let chiplet = i mod chiplets in
    let slot = i / chiplets in
    (socket * cps) + (chiplet * cpc) + slot

  let socket_round_robin_fill topo ~n_workers:_ w =
    let sockets = topo.Topology.sockets in
    let cps = Topology.cores_per_socket topo in
    let socket = w mod sockets in
    let i = w / sockets in
    (socket * cps) + i

  let one_per_chiplet topo ~n_workers:_ w =
    let chiplets = Topology.num_chiplets topo in
    let cpc = topo.Topology.cores_per_chiplet in
    let chiplet = w mod chiplets in
    let slot = w / chiplets in
    (chiplet * cpc) + slot
end

let default_spec ~name ~description =
  {
    name;
    description;
    placement = Layouts.sequential;
    shared_policy = (fun _ -> Simmem.First_touch);
    steal = Chiplet_first;
    tick_interval_ns = 0.0;
    on_tick = None;
    profile_adjust = (fun p -> p);
    task_model = Engine.Sched.Coroutines { switch_ns = 30.0 };
  }

let numa_first_order t ~thief =
  let topo = Machine.topology t.machine in
  let sched = t.sched in
  let my_socket = Topology.socket_of_core topo (Sched.worker_core sched thief) in
  let others = ref [] in
  for w = Sched.n_workers sched - 1 downto 0 do
    if w <> thief then others := w :: !others
  done;
  let arr = Array.of_list !others in
  let rank w =
    if Topology.socket_of_core topo (Sched.worker_core sched w) = my_socket then 0
    else 1
  in
  Array.sort (fun a b -> compare (rank a, a) (rank b, b)) arr;
  arr

let random_order t ~thief =
  let sched = t.sched in
  let others = ref [] in
  for w = Sched.n_workers sched - 1 downto 0 do
    if w <> thief then others := w :: !others
  done;
  let arr = Array.of_list !others in
  Engine.Rng.shuffle t.trng arr;
  arr

let init spec machine ~n_workers =
  let topo = Machine.topology machine in
  let sched_config =
    {
      Engine.Sched.default_config with
      Engine.Sched.task_model = spec.task_model;
      steal_enabled = spec.steal <> No_steal;
    }
  in
  let sched =
    Sched.create ~config:sched_config machine ~n_workers
      ~placement:(fun w -> spec.placement topo ~n_workers w)
  in
  let t =
    {
      spec;
      machine;
      sched;
      n_workers;
      last_tick = Array.make n_workers 0.0;
      trng = Engine.Rng.create 0xba5e;
      makespan = 0.0;
    }
  in
  let steal_order sched_ ~thief =
    match spec.steal with
    | Chiplet_first | No_steal ->
        Engine.Sched.no_hooks.Engine.Sched.steal_order sched_ ~thief
    | Numa_first -> numa_first_order t ~thief
    | Random_victim -> random_order t ~thief
  in
  let on_quantum_end _sched worker =
    match spec.on_tick with
    | None -> ()
    | Some tick ->
        if spec.tick_interval_ns > 0.0 then begin
          let now = Sched.worker_clock t.sched worker in
          if now -. t.last_tick.(worker) >= spec.tick_interval_ns then begin
            t.last_tick.(worker) <- now;
            tick t ~worker
          end
        end
  in
  Sched.set_hooks sched { Engine.Sched.on_quantum_end; steal_order };
  t

let name t = t.spec.name
let spec t = t.spec
let sched t = t.sched
let machine t = t.machine
let n_workers t = t.n_workers
let rng t = t.trng

let alloc_shared t ~elt_bytes ~count () =
  let topo = Machine.topology t.machine in
  Machine.alloc t.machine ~policy:(t.spec.shared_policy topo) ~elt_bytes ~count ()

let run t main =
  ignore (Sched.spawn t.sched ~worker:0 main : Sched.task);
  let makespan = Sched.run t.sched in
  t.makespan <- Float.max t.makespan makespan;
  makespan

let all_do t f =
  for w = 0 to t.n_workers - 1 do
    ignore (Sched.spawn t.sched ~worker:w (fun ctx -> f ctx w) : Sched.task)
  done;
  let makespan = Sched.run t.sched in
  t.makespan <- Float.max t.makespan makespan;
  makespan

let finalize t = Engine.Stats.collect t.machine ~makespan_ns:t.makespan
let last_makespan t = t.makespan
