(** Linux-CFS-like default scheduling: spread across sockets first, scatter
    over chiplets within each socket, steal from random victims, first-touch
    memory.  The no-runtime-support baseline of paper Fig. 9. *)

val spec : unit -> Baseline.spec
