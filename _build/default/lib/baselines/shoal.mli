(** SHOAL (Kaestle et al., ATC'15): smart array allocation/replication for
    NUMA machines.

    Reimplemented policy: strictly sequential core assignment (task 0 on
    core 0 — the behaviour paper §5.4 highlights: with 16 cores SHOAL uses
    only 2 of 8 chiplets), array data interleaved across nodes with
    huge-page/DMA assistance modelled as a DRAM latency discount. *)

val spec : unit -> Baseline.spec
