open Chipsim

let dram_discount = 0.92  (* huge pages / DMA copy engines *)

let spec () =
  {
    (Baseline.default_spec ~name:"shoal"
       ~description:"NUMA array allocation with sequential core fill")
    with
    Baseline.placement = Baseline.Layouts.sequential;
    shared_policy = (fun _ -> Simmem.Interleave);
    steal = Baseline.Numa_first;
    profile_adjust =
      (fun p ->
        {
          p with
          Latency.dram_local_ns = p.Latency.dram_local_ns *. dram_discount;
          dram_remote_ns = p.Latency.dram_remote_ns *. dram_discount;
        });
  }
