(* Both policies change only thread placement (paper §5.7 modifies ERMIA's
   scheduling, not its allocator): shared arenas are interleaved across
   nodes, as database engines allocate them. *)
let local_cache () =
  {
    (Baseline.default_spec ~name:"local-cache"
       ~description:"pack workers onto the fewest chiplets")
    with
    Baseline.placement = Baseline.Layouts.sequential;
    shared_policy = (fun _ -> Chipsim.Simmem.Interleave);
  }

let distributed_cache () =
  {
    (Baseline.default_spec ~name:"distributed-cache"
       ~description:"spread workers one per chiplet")
    with
    Baseline.placement = Baseline.Layouts.one_per_chiplet;
    shared_policy = (fun _ -> Chipsim.Simmem.Interleave);
  }
