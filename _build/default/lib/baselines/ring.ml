let spec () =
  {
    (Baseline.default_spec ~name:"ring"
       ~description:"NUMA-aware message-batching runtime (chiplet-blind)")
    with
    Baseline.placement = Baseline.Layouts.socket_round_robin_scatter;
    steal = Baseline.Numa_first;
  }
