(** RING (Meng & Tan, ICPADS'17): NUMA-aware message-batching runtime.

    Reimplemented policy: worker threads are balanced round-robin across
    NUMA nodes (chiplet-blind scatter within each node), memory is
    allocated NUMA-locally (first touch by the owning worker), and steals
    prefer same-node victims.  This reproduces the paper's observation
    that RING avoids remote {e memory} but not remote {e L3} accesses. *)

val spec : unit -> Baseline.spec
