(** AsymSched (Lepers et al.): bandwidth-centric NUMA scheduler.

    Reimplemented policy: threads balanced across nodes, and a periodic
    per-worker check that migrates the worker to the other socket when its
    node's memory channels are markedly more loaded — maximising aggregate
    bandwidth, with no notion of chiplets (target cores within the
    destination socket are picked blindly). *)

val spec : unit -> Baseline.spec
