(** The two static chiplet policies of paper §2.3 and §5.7.

    [LocalCache] confines the gang to as few chiplets as possible
    (maximum locality, minimum aggregate L3); [DistributedCache] spreads
    one worker per chiplet round-robin (maximum aggregate L3, maximum
    inter-chiplet distance).  Both are static — no adaptation — which is
    exactly what makes them useful as envelope probes around CHARM. *)

val local_cache : unit -> Baseline.spec
val distributed_cache : unit -> Baseline.spec
