lib/baselines/ring.ml: Baseline
