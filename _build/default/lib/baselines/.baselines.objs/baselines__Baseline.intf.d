lib/baselines/baseline.mli: Chipsim Engine Latency Machine Simmem Topology
