lib/baselines/sam.mli: Baseline
