lib/baselines/os_default.mli: Baseline
