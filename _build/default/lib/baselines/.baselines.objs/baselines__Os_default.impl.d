lib/baselines/os_default.ml: Baseline Chipsim Engine Machine Topology
