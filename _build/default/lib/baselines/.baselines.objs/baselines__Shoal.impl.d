lib/baselines/shoal.ml: Baseline Chipsim Latency Simmem
