lib/baselines/ring.mli: Baseline
