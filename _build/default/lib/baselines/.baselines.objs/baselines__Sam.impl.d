lib/baselines/sam.ml: Array Baseline Chipsim Engine Hashtbl Machine Option Pmu Topology
