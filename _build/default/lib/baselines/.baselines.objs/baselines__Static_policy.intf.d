lib/baselines/static_policy.mli: Baseline
