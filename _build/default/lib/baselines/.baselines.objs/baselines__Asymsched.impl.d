lib/baselines/asymsched.ml: Array Baseline Chipsim Engine Float Machine Topology
