lib/baselines/asymsched.mli: Baseline
