lib/baselines/shoal.mli: Baseline
