lib/baselines/static_policy.ml: Baseline Chipsim
