lib/baselines/baseline.ml: Array Chipsim Engine Float Latency Machine Simmem Topology
