(** SAM (Srikanthan et al., ATC'16): sharing/contention-aware multicore
    scheduler.

    Reimplemented policy: threads balanced across sockets (SAM schedules a
    multiprogrammed machine), and a periodic check that pulls a worker
    suffering heavy
    cross-socket coherence traffic back to the gang's majority socket —
    choosing the target core within the socket blindly, since SAM has no
    chiplet notion.  With [~confused:true] (the Intel case of paper §5.3,
    where SAM's PMU heuristics misread the platform) migrations are
    additionally issued at random. *)

val spec : ?confused:bool -> unit -> Baseline.spec
