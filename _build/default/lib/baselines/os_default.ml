open Chipsim

(* CFS periodically rebalances: threads wander to random idle cores,
   destroying cache affinity (what pinning — and CHARM — prevents). *)
let wander t ~worker =
  let sched = Baseline.sched t in
  let machine = Baseline.machine t in
  let rng = Baseline.rng t in
  if Engine.Rng.int rng 4 = 0 then begin
    let topo = Machine.topology machine in
    let cores = Topology.num_cores topo in
    let tries = ref 8 in
    let moved = ref false in
    while (not !moved) && !tries > 0 do
      decr tries;
      let target = Engine.Rng.int rng cores in
      if Engine.Sched.worker_of_core sched target = None then begin
        Engine.Sched.migrate sched ~worker ~core:target;
        moved := true
      end
    done
  end

let spec () =
  {
    (Baseline.default_spec ~name:"os-default"
       ~description:
         "CFS-like: socket round-robin, chiplet-blind scatter, random stealing, periodic rebalancing")
    with
    Baseline.placement = Baseline.Layouts.socket_round_robin_scatter;
    steal = Baseline.Random_victim;
    tick_interval_ns = 400_000.0;
    on_tick = Some wander;
  }
