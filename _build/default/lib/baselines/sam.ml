open Chipsim
module Sched = Engine.Sched

let remote_fill_threshold = 200

let remote_numa_fills machine ~core =
  Pmu.read (Machine.pmu machine) ~core Pmu.Fill_remote_numa
  + Pmu.read (Machine.pmu machine) ~core Pmu.Dram_remote

(* strict majority: SAM consolidates sharers only when one socket already
   clearly dominates; a balanced gang stays balanced *)
let majority_socket t ~current =
  let sched = Baseline.sched t in
  let topo = Machine.topology (Baseline.machine t) in
  let counts = Array.make topo.Topology.sockets 0 in
  for w = 0 to Sched.n_workers sched - 1 do
    let s = Topology.socket_of_core topo (Sched.worker_core sched w) in
    counts.(s) <- counts.(s) + 1
  done;
  let best = ref 0 in
  Array.iteri (fun i c -> if c > counts.(!best) then best := i) counts;
  if 10 * counts.(!best) >= 6 * Sched.n_workers sched then !best else current

let random_free_core t ~socket =
  let sched = Baseline.sched t in
  let topo = Machine.topology (Baseline.machine t) in
  let cps = Topology.cores_per_socket topo in
  let base = socket * cps in
  let free = ref [] in
  for c = base to base + cps - 1 do
    if Sched.worker_of_core sched c = None then free := c :: !free
  done;
  match !free with
  | [] -> None
  | cores ->
      let arr = Array.of_list cores in
      Some arr.(Engine.Rng.int (Baseline.rng t) (Array.length arr))

let tick ~confused ~baselines t ~worker =
  let machine = Baseline.machine t in
  let sched = Baseline.sched t in
  let topo = Machine.topology machine in
  let core = Sched.worker_core sched worker in
  let fills = remote_numa_fills machine ~core in
  let base = Option.value ~default:0 (Hashtbl.find_opt baselines worker) in
  Hashtbl.replace baselines worker fills;
  let delta = fills - base in
  let my_socket = Topology.socket_of_core topo core in
  let target_socket =
    if confused && Engine.Rng.int (Baseline.rng t) 4 = 0 then
      (* misread PMU signal: migrate somewhere random *)
      Engine.Rng.int (Baseline.rng t) topo.Topology.sockets
    else if delta > remote_fill_threshold then majority_socket t ~current:my_socket
    else my_socket
  in
  if target_socket <> my_socket then
    match random_free_core t ~socket:target_socket with
    | Some target -> Sched.migrate sched ~worker ~core:target
    | None -> ()

let spec ?(confused = false) () =
  (* per-instance PMU baselines: fresh for every spec instantiation *)
  let baselines : (int, int) Hashtbl.t = Hashtbl.create 64 in
  {
    (Baseline.default_spec ~name:(if confused then "sam(confused)" else "sam")
       ~description:"sharing-aware socket co-location, chiplet-blind cores")
    with
    Baseline.placement = Baseline.Layouts.socket_round_robin_scatter;
    steal = Baseline.Numa_first;
    tick_interval_ns = 800_000.0;
    on_tick = Some (tick ~confused ~baselines);
  }
