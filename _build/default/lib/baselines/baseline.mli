(** Generic driver for the comparison systems of paper §5.1.

    Every baseline is expressed as a {!spec}: an initial thread-placement
    function, a shared-memory allocation policy, a steal-victim discipline,
    an optional periodic rebalancing action, and a task model.  The driver
    runs the spec over the same simulated machine and scheduler as CHARM,
    so differences in results come only from policy — exactly how the
    paper's comparisons are constructed. *)

open Chipsim

type steal_discipline =
  | Chiplet_first  (** victims ordered by core distance (CHARM's order) *)
  | Numa_first  (** same socket first, chiplet-blind within it *)
  | Random_victim
  | No_steal

type t

type spec = {
  name : string;
  description : string;
  placement : Topology.t -> n_workers:int -> int -> int;
      (** initial core of each worker; must be injective *)
  shared_policy : Topology.t -> Simmem.policy;
      (** how the system places shared datasets *)
  steal : steal_discipline;
  tick_interval_ns : float;  (** 0 disables periodic rebalancing *)
  on_tick : (t -> worker:int -> unit) option;
  profile_adjust : Latency.profile -> Latency.profile;
      (** machine-level latency adjustment (e.g., SHOAL's huge pages) *)
  task_model : Engine.Sched.task_model;
}

val default_spec : name:string -> description:string -> spec
(** Sequential placement, first-touch memory, chiplet-first stealing, no
    rebalancing, coroutine tasks. *)

val init : spec -> Machine.t -> n_workers:int -> t
val name : t -> string
val spec : t -> spec
val sched : t -> Engine.Sched.t
val machine : t -> Machine.t
val n_workers : t -> int
val rng : t -> Engine.Rng.t

val alloc_shared : t -> elt_bytes:int -> count:int -> unit -> Simmem.region
val run : t -> (Engine.Sched.ctx -> unit) -> float
val all_do : t -> (Engine.Sched.ctx -> int -> unit) -> float
val finalize : t -> Engine.Stats.report
val last_makespan : t -> float

(** Placement building blocks shared by the concrete baselines. *)
module Layouts : sig
  val sequential : Topology.t -> n_workers:int -> int -> int
  (** worker [w] -> core [w] (fills chiplet 0, then 1, ...). *)

  val socket_round_robin_scatter : Topology.t -> n_workers:int -> int -> int
  (** Alternate sockets; within a socket, scatter across chiplets
      round-robin (Linux-CFS-like spreading). *)

  val socket_round_robin_fill : Topology.t -> n_workers:int -> int -> int
  (** Alternate sockets; within a socket, fill cores sequentially. *)

  val one_per_chiplet : Topology.t -> n_workers:int -> int -> int
  (** Round-robin across all chiplets (maximal spread). *)
end
