(** Registry of runnable systems and evaluation machines.

    One-stop construction of an {!Workloads.Exec_env.t} for any
    (system, machine, worker count) combination used in the paper's
    evaluation.  Every call builds a {e fresh} simulated machine so PMU
    counters and caches start cold, as in the paper's per-run methodology. *)

open Chipsim

type machine_kind =
  | Amd_milan  (** dual-socket EPYC Milan 7713 (the default testbed) *)
  | Amd_milan_1s  (** single-socket Milan (§2.3 microbenchmark) *)
  | Intel_spr  (** dual-socket Xeon Platinum 8488C (§5.3) *)

type sys =
  | Charm
  | Charm_os_threads  (** CHARM placement but std::async-style tasking *)
  | Ring
  | Dw_native
      (** RING-like NUMA-aware placement with DimmWitted's kernel-thread
          tasking (one thread per task, as its engine creates) *)
  | Shoal
  | Asymsched
  | Sam
  | Os_default
  | Local_cache
  | Distributed_cache

val all_baseline_systems : sys list
(** The four comparison systems of §5.1 (plus OS default). *)

val sys_name : sys -> string
val topology : machine_kind -> cache_scale:int -> Topology.t

type instance = {
  env : Workloads.Exec_env.t;
  machine : Machine.t;
  charm : Charm.Runtime.t option;  (** present when [sys] is CHARM *)
}

val make :
  ?cache_scale:int ->
  ?charm_config:Charm.Config.t ->
  sys ->
  machine_kind ->
  n_workers:int ->
  unit ->
  instance
(** @raise Invalid_argument if the machine cannot host [n_workers]. *)

val report : instance -> Engine.Stats.report
(** End-of-run statistics (makespan = last run on the instance). *)
