lib/harness/systems.mli: Charm Chipsim Engine Machine Topology Workloads
