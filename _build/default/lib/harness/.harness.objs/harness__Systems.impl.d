lib/harness/systems.ml: Baselines Charm Chipsim Engine Float Latency Machine Presets Workloads
