type t = {
  sf : float;
  region : Table.t;
  nation : Table.t;
  supplier : Table.t;
  customer : Table.t;
  part : Table.t;
  partsupp : Table.t;
  orders : Table.t;
  lineitem : Table.t;
}

let num_segments = 5
let num_priorities = 5
let num_shipmodes = 7
let num_types = 150
let num_brands = 25
let num_containers = 40
let num_return_flags = 3
let days_total = 2556

let day_of ~year =
  if year < 1992 || year > 1999 then invalid_arg "Tpch_data.day_of: year out of range";
  (year - 1992) * 365  (* leap days ignored; predicates only need ordering *)

let generate ~alloc ?(seed = 1234) ~sf () =
  if sf <= 0.0 then invalid_arg "Tpch_data.generate: sf must be positive";
  let rng = Engine.Rng.create seed in
  let scale base = max 1 (int_of_float (float_of_int base *. sf)) in
  let n_supplier = scale 10_000 in
  let n_customer = scale 150_000 in
  let n_part = scale 200_000 in
  let n_partsupp = 4 * n_part in
  let n_orders = scale 1_500_000 in
  let ri n = Engine.Rng.int rng n in
  let rf bound = Engine.Rng.float rng bound in

  (* region / nation: fixed tiny dimension tables *)
  let region =
    Table.v ~name:"region" ~rows:5
      [
        ("r_regionkey", Column.ints ~alloc (Array.init 5 Fun.id));
        ("r_name", Column.ints ~alloc (Array.init 5 Fun.id));
      ]
  in
  let nation_region = Array.init 25 (fun i -> i mod 5) in
  let nation =
    Table.v ~name:"nation" ~rows:25
      [
        ("n_nationkey", Column.ints ~alloc (Array.init 25 Fun.id));
        ("n_regionkey", Column.ints ~alloc nation_region);
        ("n_name", Column.ints ~alloc (Array.init 25 Fun.id));
      ]
  in

  let supplier =
    Table.v ~name:"supplier" ~rows:n_supplier
      [
        ("s_suppkey", Column.ints ~alloc (Array.init n_supplier Fun.id));
        ("s_nationkey", Column.ints ~alloc (Array.init n_supplier (fun _ -> ri 25)));
        ("s_acctbal", Column.floats ~alloc (Array.init n_supplier (fun _ -> rf 11_000.0 -. 1_000.0)));
      ]
  in

  let customer =
    Table.v ~name:"customer" ~rows:n_customer
      [
        ("c_custkey", Column.ints ~alloc (Array.init n_customer Fun.id));
        ("c_nationkey", Column.ints ~alloc (Array.init n_customer (fun _ -> ri 25)));
        ("c_mktsegment", Column.ints ~alloc (Array.init n_customer (fun _ -> ri num_segments)));
        ("c_acctbal", Column.floats ~alloc (Array.init n_customer (fun _ -> rf 11_000.0 -. 1_000.0)));
      ]
  in

  let part =
    Table.v ~name:"part" ~rows:n_part
      [
        ("p_partkey", Column.ints ~alloc (Array.init n_part Fun.id));
        ("p_type", Column.ints ~alloc (Array.init n_part (fun _ -> ri num_types)));
        ("p_size", Column.ints ~alloc (Array.init n_part (fun _ -> 1 + ri 50)));
        ("p_brand", Column.ints ~alloc (Array.init n_part (fun _ -> ri num_brands)));
        ("p_container", Column.ints ~alloc (Array.init n_part (fun _ -> ri num_containers)));
        ("p_retailprice", Column.floats ~alloc (Array.init n_part (fun _ -> 900.0 +. rf 1_200.0)));
      ]
  in

  let ps_part = Array.init n_partsupp (fun i -> i / 4) in
  let partsupp =
    Table.v ~name:"partsupp" ~rows:n_partsupp
      [
        ("ps_partkey", Column.ints ~alloc ps_part);
        ("ps_suppkey", Column.ints ~alloc (Array.init n_partsupp (fun _ -> ri n_supplier)));
        ("ps_supplycost", Column.floats ~alloc (Array.init n_partsupp (fun _ -> 1.0 +. rf 1_000.0)));
        ("ps_availqty", Column.ints ~alloc (Array.init n_partsupp (fun _ -> 1 + ri 9_999)));
      ]
  in

  let o_custkey = Array.init n_orders (fun _ -> ri n_customer) in
  let o_orderdate = Array.init n_orders (fun _ -> ri days_total) in
  let orders =
    Table.v ~name:"orders" ~rows:n_orders
      [
        ("o_orderkey", Column.ints ~alloc (Array.init n_orders Fun.id));
        ("o_custkey", Column.ints ~alloc o_custkey);
        ("o_orderdate", Column.ints ~alloc o_orderdate);
        ("o_orderpriority", Column.ints ~alloc (Array.init n_orders (fun _ -> ri num_priorities)));
        ("o_shippriority", Column.ints ~alloc (Array.make n_orders 0));
        ("o_totalprice", Column.floats ~alloc (Array.init n_orders (fun _ -> 1_000.0 +. rf 400_000.0)));
        ("o_orderstatus", Column.ints ~alloc (Array.init n_orders (fun _ -> ri 3)));
      ]
  in

  (* lineitem: 1..7 lines per order (avg ~4) *)
  let lines = ref [] in
  let n_lineitem = ref 0 in
  for o = 0 to n_orders - 1 do
    let k = 1 + ri 7 in
    for l = 0 to k - 1 do
      lines := (o, l) :: !lines;
      incr n_lineitem
    done
  done;
  let n_li = !n_lineitem in
  let order_of = Array.make n_li 0 and line_no = Array.make n_li 0 in
  List.iteri
    (fun i (o, l) ->
      order_of.(i) <- o;
      line_no.(i) <- l)
    (List.rev !lines);
  let l_quantity = Array.init n_li (fun _ -> 1.0 +. float_of_int (ri 50)) in
  let l_extendedprice = Array.init n_li (fun _ -> 900.0 +. rf 100_000.0) in
  let l_discount = Array.init n_li (fun _ -> float_of_int (ri 11) /. 100.0) in
  let l_tax = Array.init n_li (fun _ -> float_of_int (ri 9) /. 100.0) in
  let l_shipdate = Array.init n_li (fun i -> min (days_total - 1) (o_orderdate.(order_of.(i)) + 1 + ri 121)) in
  let l_commitdate = Array.init n_li (fun i -> min (days_total - 1) (o_orderdate.(order_of.(i)) + 30 + ri 61)) in
  let l_receiptdate = Array.init n_li (fun i -> min (days_total - 1) (l_shipdate.(i) + 1 + ri 30)) in
  let lineitem =
    Table.v ~name:"lineitem" ~rows:n_li
      [
        ("l_orderkey", Column.ints ~alloc order_of);
        ("l_linenumber", Column.ints ~alloc line_no);
        ("l_partkey", Column.ints ~alloc (Array.init n_li (fun _ -> ri n_part)));
        ("l_suppkey", Column.ints ~alloc (Array.init n_li (fun _ -> ri n_supplier)));
        ("l_quantity", Column.floats ~alloc l_quantity);
        ("l_extendedprice", Column.floats ~alloc l_extendedprice);
        ("l_discount", Column.floats ~alloc l_discount);
        ("l_tax", Column.floats ~alloc l_tax);
        ("l_returnflag", Column.ints ~alloc (Array.init n_li (fun _ -> ri num_return_flags)));
        ("l_linestatus", Column.ints ~alloc (Array.init n_li (fun _ -> ri 2)));
        ("l_shipdate", Column.ints ~alloc l_shipdate);
        ("l_commitdate", Column.ints ~alloc l_commitdate);
        ("l_receiptdate", Column.ints ~alloc l_receiptdate);
        ("l_shipmode", Column.ints ~alloc (Array.init n_li (fun _ -> ri num_shipmodes)));
        ("l_shipinstruct", Column.ints ~alloc (Array.init n_li (fun _ -> ri 4)));
      ]
  in
  { sf; region; nation; supplier; customer; part; partsupp; orders; lineitem }

let total_rows t =
  Table.rows t.region + Table.rows t.nation + Table.rows t.supplier
  + Table.rows t.customer + Table.rows t.part + Table.rows t.partsupp
  + Table.rows t.orders + Table.rows t.lineitem
