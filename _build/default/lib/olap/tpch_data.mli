(** TPC-H-shaped synthetic data generator.

    Schemas and cardinality ratios follow the TPC-H specification
    (per unit scale factor: 10 k suppliers, 150 k customers, 200 k parts,
    800 k partsupp, 1.5 M orders, ~6 M lineitems); strings are encoded as
    small integer dictionary codes and dates as day numbers in
    [\[0, 2556)] (1992-01-01 .. 1998-12-31), which preserves every
    predicate structure the queries need. *)

open Chipsim

type t = {
  sf : float;
  region : Table.t;
  nation : Table.t;
  supplier : Table.t;
  customer : Table.t;
  part : Table.t;
  partsupp : Table.t;
  orders : Table.t;
  lineitem : Table.t;
}

val generate :
  alloc:(elt_bytes:int -> count:int -> Simmem.region) ->
  ?seed:int -> sf:float -> unit -> t
(** @raise Invalid_argument if [sf <= 0]. *)

val total_rows : t -> int

(** Dictionary sizes for encoded string columns. *)

val num_segments : int
(** dictionary size of [c_mktsegment] *)

val num_priorities : int
(** dictionary size of [o_orderpriority] *)

val num_shipmodes : int
val num_types : int
val num_brands : int
val num_containers : int
val num_return_flags : int
val days_total : int
val day_of : year:int -> int
(** First day number of a year in [1992, 1999]. *)
