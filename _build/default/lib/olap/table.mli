(** A named collection of equal-length columns. *)

type t

val v : name:string -> rows:int -> (string * Column.t) list -> t
(** @raise Invalid_argument if any column's length differs from [rows]. *)

val name : t -> string
val rows : t -> int
val col : t -> string -> Column.t
(** @raise Not_found for unknown column names. *)

val ints : t -> string -> int array
(** Raw data of an int column (for tight query loops). *)

val floats : t -> string -> float array
val columns : t -> (string * Column.t) list
