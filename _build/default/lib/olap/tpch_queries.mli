(** The 22 TPC-H-shaped queries over {!Tpch_data}, written against the
    morsel-driven operators of {!Exec}.

    Every query keeps the structural skeleton of its TPC-H counterpart —
    which tables it scans, which joins it builds, what it groups by — with
    dictionary-coded strings and day-number dates.  Results are reduced to
    a deterministic checksum so correctness can be asserted across runtime
    systems (the same data must give the same checksum under CHARM and
    every baseline). *)

type result = {
  query : int;
  checksum : float;
  rows_out : int;  (** result-set cardinality before top-k truncation *)
}

val run :
  Engine.Sched.ctx -> alloc:Exec.alloc -> Tpch_data.t -> int -> result
(** Run query [1..22] inside a task.  @raise Invalid_argument otherwise. *)

val execute :
  Workloads.Exec_env.t -> Tpch_data.t -> int -> result * float
(** Drive one query as a main task; returns (result, makespan ns). *)

val query_numbers : int list
(** [1; ...; 22]. *)

val join_heavy : int list
(** The queries the paper singles out as hash-join dominated (Q3, Q4, Q5,
    Q7, Q9, Q10, Q21). *)
