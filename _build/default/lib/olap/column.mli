(** Typed columns with a simulated-memory shadow.

    Values live in OCaml arrays for query semantics; the paired region is
    what the machine model charges when a morsel scans the column. *)

open Chipsim

type t =
  | Ints of { data : int array; sim : Simmem.region }
  | Floats of { data : float array; sim : Simmem.region }

val ints :
  alloc:(elt_bytes:int -> count:int -> Simmem.region) -> int array -> t
val floats :
  alloc:(elt_bytes:int -> count:int -> Simmem.region) -> float array -> t

val length : t -> int
val get_int : t -> int -> int
(** @raise Invalid_argument on a float column. *)

val get_float : t -> int -> float
(** Works on both (ints are converted). *)

val sim : t -> Simmem.region

val scan_range : Engine.Sched.ctx -> t -> lo:int -> hi:int -> unit
(** Charge a sequential read of rows [lo, hi). *)

val touch : Engine.Sched.ctx -> t -> int -> unit
(** Charge a point read of one row. *)
