open Chipsim
module Sched = Engine.Sched

type alloc = elt_bytes:int -> count:int -> Simmem.region

let default_morsel = 2048
let compare_ns = 1.5  (* per row comparison in sorts *)
let row_work_ns = 0.6  (* per row of scan logic *)

let parallel_scan ctx table ~columns ?(morsel = default_morsel) f =
  let rows = Table.rows table in
  if rows > 0 then begin
    let cols = List.map (Table.col table) columns in
    Engine.Par.parallel_for ctx ~lo:0 ~hi:rows ~grain:morsel (fun ctx' lo hi ->
        List.iter (fun c -> Column.scan_range ctx' c ~lo ~hi) cols;
        Sched.Ctx.work ctx' (row_work_ns *. float_of_int (hi - lo));
        for row = lo to hi - 1 do
          f ctx' row
        done;
        Sched.Ctx.maybe_yield ctx')
  end

(* Hash-structure charging: every operation touches the bucket's cache
   line in the simulated slab; collisions chain into extra touches. *)
let bucket_of ~capacity key =
  let h = key * 0x9e3779b9 in
  let h = (h lxor (h lsr 16)) land max_int in
  h mod capacity

module Hash_join = struct
  type t = {
    table : (int, int list) Hashtbl.t;
    slab : Simmem.region;
    capacity : int;
    mutable entries : int;
  }

  let create ~alloc ~expected =
    let capacity = max 64 (2 * expected) in
    {
      table = Hashtbl.create (max 16 expected);
      slab = alloc ~elt_bytes:16 ~count:capacity;
      capacity;
      entries = 0;
    }

  let insert ctx t ~key ~payload =
    let b = bucket_of ~capacity:t.capacity key in
    Sched.Ctx.write ctx t.slab b;
    let prev = Option.value ~default:[] (Hashtbl.find_opt t.table key) in
    (* chained entries touch an extra line *)
    if prev <> [] then Sched.Ctx.write ctx t.slab ((b + 1) mod t.capacity);
    Hashtbl.replace t.table key (payload :: prev);
    t.entries <- t.entries + 1

  let probe ctx t ~key =
    let b = bucket_of ~capacity:t.capacity key in
    Sched.Ctx.read ctx t.slab b;
    match Hashtbl.find_opt t.table key with
    | None -> []
    | Some payloads ->
        if List.length payloads > 1 then
          Sched.Ctx.read ctx t.slab ((b + 1) mod t.capacity);
        payloads

  let probe_iter ctx t ~key f = List.iter f (probe ctx t ~key)

  let mem ctx t ~key =
    let b = bucket_of ~capacity:t.capacity key in
    Sched.Ctx.read ctx t.slab b;
    Hashtbl.mem t.table key

  let size t = t.entries
end

module Hash_agg = struct
  type t = {
    table : (int, float array) Hashtbl.t;
    slab : Simmem.region;
    capacity : int;
    width : int;
  }

  let create ~alloc ~expected ~width =
    if width <= 0 then invalid_arg "Hash_agg.create: width must be positive";
    let capacity = max 64 (2 * expected) in
    {
      table = Hashtbl.create (max 16 expected);
      slab = alloc ~elt_bytes:(8 * width) ~count:capacity;
      capacity;
      width;
    }

  let update ctx t ~key deltas =
    let b = bucket_of ~capacity:t.capacity key in
    Sched.Ctx.read ctx t.slab b;
    Sched.Ctx.write ctx t.slab b;
    let acc =
      match Hashtbl.find_opt t.table key with
      | Some acc -> acc
      | None ->
          let acc = Array.make t.width 0.0 in
          Hashtbl.add t.table key acc;
          acc
    in
    List.iter
      (fun (slot, v) ->
        if slot < 0 || slot >= t.width then
          invalid_arg "Hash_agg.update: slot out of range";
        acc.(slot) <- acc.(slot) +. v)
      deltas

  let get t ~key = Hashtbl.find_opt t.table key
  let fold t f init = Hashtbl.fold f t.table init
  let groups t = Hashtbl.length t.table
end

let charge_sort ctx ~rows =
  if rows > 1 then begin
    let n = float_of_int rows in
    Sched.Ctx.work ctx (compare_ns *. n *. (log n /. log 2.0))
  end
