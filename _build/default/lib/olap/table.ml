type t = { name : string; rows : int; cols : (string * Column.t) list }

let v ~name ~rows cols =
  List.iter
    (fun (cname, c) ->
      if Column.length c <> rows then
        invalid_arg
          (Printf.sprintf "Table %s: column %s has %d rows, expected %d" name
             cname (Column.length c) rows))
    cols;
  { name; rows; cols }

let name t = t.name
let rows t = t.rows

let col t cname =
  match List.assoc_opt cname t.cols with
  | Some c -> c
  | None -> raise Not_found

let ints t cname =
  match col t cname with
  | Column.Ints { data; _ } -> data
  | Column.Floats _ ->
      invalid_arg (Printf.sprintf "Table %s: column %s is not ints" t.name cname)

let floats t cname =
  match col t cname with
  | Column.Floats { data; _ } -> data
  | Column.Ints _ ->
      invalid_arg (Printf.sprintf "Table %s: column %s is not floats" t.name cname)

let columns t = t.cols
