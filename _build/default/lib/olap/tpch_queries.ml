module Sched = Engine.Sched
module D = Tpch_data

type result = { query : int; checksum : float; rows_out : int }

let query_numbers = List.init 22 (fun i -> i + 1)
let join_heavy = [ 3; 4; 5; 7; 9; 10; 21 ]

(* Q1: pricing summary report — pure scan + tiny group-by. *)
let q1 ctx ~alloc data =
  let li = data.D.lineitem in
  let shipdate = Table.ints li "l_shipdate" in
  let qty = Table.floats li "l_quantity" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let tax = Table.floats li "l_tax" in
  let rf = Table.ints li "l_returnflag" in
  let ls = Table.ints li "l_linestatus" in
  let cutoff = D.days_total - 90 in
  let agg = Exec.Hash_agg.create ~alloc ~expected:8 ~width:5 in
  Exec.parallel_scan ctx li
    ~columns:
      [
        "l_shipdate"; "l_quantity"; "l_extendedprice"; "l_discount"; "l_tax";
        "l_returnflag"; "l_linestatus";
      ]
    (fun ctx' row ->
      if shipdate.(row) <= cutoff then begin
        let key = (rf.(row) * 2) + ls.(row) in
        let dp = price.(row) *. (1.0 -. disc.(row)) in
        Exec.Hash_agg.update ctx' agg ~key
          [
            (0, qty.(row));
            (1, price.(row));
            (2, dp);
            (3, dp *. (1.0 +. tax.(row)));
            (4, 1.0);
          ]
      end);
  let sum = Exec.Hash_agg.fold agg (fun _k acc s -> s +. acc.(2)) 0.0 in
  { query = 1; checksum = sum; rows_out = Exec.Hash_agg.groups agg }

(* Q2: minimum-cost supplier in a region for mid-size parts. *)
let q2 ctx ~alloc data =
  let target_region = 2 in
  let supplier = data.D.supplier and nation = data.D.nation in
  let s_nation = Table.ints supplier "s_nationkey" in
  let n_region = Table.ints nation "n_regionkey" in
  let region_suppliers = Exec.Hash_join.create ~alloc ~expected:(Table.rows supplier) in
  Exec.parallel_scan ctx supplier ~columns:[ "s_suppkey"; "s_nationkey" ]
    (fun ctx' s ->
      if n_region.(s_nation.(s)) = target_region then
        Exec.Hash_join.insert ctx' region_suppliers ~key:s ~payload:s);
  let part = data.D.part in
  let p_size = Table.ints part "p_size" and p_type = Table.ints part "p_type" in
  let wanted_parts = Exec.Hash_join.create ~alloc ~expected:(Table.rows part / 10) in
  Exec.parallel_scan ctx part ~columns:[ "p_partkey"; "p_size"; "p_type" ]
    (fun ctx' p ->
      if p_size.(p) = 15 && p_type.(p) mod 5 = 0 then
        Exec.Hash_join.insert ctx' wanted_parts ~key:p ~payload:p);
  let ps = data.D.partsupp in
  let ps_part = Table.ints ps "ps_partkey" in
  let ps_supp = Table.ints ps "ps_suppkey" in
  let ps_cost = Table.floats ps "ps_supplycost" in
  let min_cost = Exec.Hash_agg.create ~alloc ~expected:64 ~width:2 in
  Exec.parallel_scan ctx ps ~columns:[ "ps_partkey"; "ps_suppkey"; "ps_supplycost" ]
    (fun ctx' r ->
      if
        Exec.Hash_join.mem ctx' wanted_parts ~key:ps_part.(r)
        && Exec.Hash_join.mem ctx' region_suppliers ~key:ps_supp.(r)
      then begin
        (* track (min via negated max trick is overkill): store min in slot
           0 by keeping the running minimum manually *)
        match Exec.Hash_agg.get min_cost ~key:ps_part.(r) with
        | None ->
            Exec.Hash_agg.update ctx' min_cost ~key:ps_part.(r)
              [ (0, ps_cost.(r)); (1, 1.0) ]
        | Some acc ->
            Exec.Hash_agg.update ctx' min_cost ~key:ps_part.(r) [ (1, 1.0) ];
            if ps_cost.(r) < acc.(0) then acc.(0) <- ps_cost.(r)
      end);
  Exec.charge_sort ctx ~rows:(Exec.Hash_agg.groups min_cost);
  let sum = Exec.Hash_agg.fold min_cost (fun _ acc s -> s +. acc.(0)) 0.0 in
  { query = 2; checksum = sum; rows_out = Exec.Hash_agg.groups min_cost }

(* Q3: shipping-priority revenue — the canonical 3-way hash join. *)
let q3 ctx ~alloc data =
  let segment = 1 in
  let cutoff = D.day_of ~year:1995 + 74 in
  let customer = data.D.customer in
  let c_seg = Table.ints customer "c_mktsegment" in
  let cust = Exec.Hash_join.create ~alloc ~expected:(Table.rows customer / D.num_segments) in
  Exec.parallel_scan ctx customer ~columns:[ "c_custkey"; "c_mktsegment" ]
    (fun ctx' c ->
      if c_seg.(c) = segment then Exec.Hash_join.insert ctx' cust ~key:c ~payload:c);
  let orders = data.D.orders in
  let o_cust = Table.ints orders "o_custkey" in
  let o_date = Table.ints orders "o_orderdate" in
  let ord = Exec.Hash_join.create ~alloc ~expected:(Table.rows orders / 4) in
  Exec.parallel_scan ctx orders ~columns:[ "o_orderkey"; "o_custkey"; "o_orderdate" ]
    (fun ctx' o ->
      if o_date.(o) < cutoff && Exec.Hash_join.mem ctx' cust ~key:o_cust.(o) then
        Exec.Hash_join.insert ctx' ord ~key:o ~payload:o);
  let li = data.D.lineitem in
  let l_order = Table.ints li "l_orderkey" in
  let l_ship = Table.ints li "l_shipdate" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let revenue = Exec.Hash_agg.create ~alloc ~expected:1024 ~width:1 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_orderkey"; "l_shipdate"; "l_extendedprice"; "l_discount" ]
    (fun ctx' r ->
      if l_ship.(r) > cutoff && Exec.Hash_join.mem ctx' ord ~key:l_order.(r) then
        Exec.Hash_agg.update ctx' revenue ~key:l_order.(r)
          [ (0, price.(r) *. (1.0 -. disc.(r))) ]);
  Exec.charge_sort ctx ~rows:(Exec.Hash_agg.groups revenue);
  let sum = Exec.Hash_agg.fold revenue (fun _ acc s -> s +. acc.(0)) 0.0 in
  { query = 3; checksum = sum; rows_out = Exec.Hash_agg.groups revenue }

(* Q4: order-priority checking — semi-join of orders against late lines. *)
let q4 ctx ~alloc data =
  let lo = D.day_of ~year:1993 + 180 and hi = D.day_of ~year:1993 + 270 in
  let li = data.D.lineitem in
  let l_order = Table.ints li "l_orderkey" in
  let l_commit = Table.ints li "l_commitdate" in
  let l_receipt = Table.ints li "l_receiptdate" in
  let late = Exec.Hash_join.create ~alloc ~expected:(Table.rows li / 2) in
  Exec.parallel_scan ctx li ~columns:[ "l_orderkey"; "l_commitdate"; "l_receiptdate" ]
    (fun ctx' r ->
      if l_commit.(r) < l_receipt.(r) && not (Exec.Hash_join.mem ctx' late ~key:l_order.(r))
      then Exec.Hash_join.insert ctx' late ~key:l_order.(r) ~payload:r);
  let orders = data.D.orders in
  let o_date = Table.ints orders "o_orderdate" in
  let o_prio = Table.ints orders "o_orderpriority" in
  let counts = Exec.Hash_agg.create ~alloc ~expected:D.num_priorities ~width:1 in
  Exec.parallel_scan ctx orders ~columns:[ "o_orderkey"; "o_orderdate"; "o_orderpriority" ]
    (fun ctx' o ->
      if o_date.(o) >= lo && o_date.(o) < hi && Exec.Hash_join.mem ctx' late ~key:o
      then Exec.Hash_agg.update ctx' counts ~key:o_prio.(o) [ (0, 1.0) ]);
  let sum = Exec.Hash_agg.fold counts (fun k acc s -> s +. (float_of_int (k + 1) *. acc.(0))) 0.0 in
  { query = 4; checksum = sum; rows_out = Exec.Hash_agg.groups counts }

(* Q5: local-supplier volume — 6-way join, revenue per nation. *)
let q5 ctx ~alloc data =
  let target_region = 1 in
  let year_lo = D.day_of ~year:1994 and year_hi = D.day_of ~year:1995 in
  let nation = data.D.nation in
  let n_region = Table.ints nation "n_regionkey" in
  let supplier = data.D.supplier in
  let s_nation = Table.ints supplier "s_nationkey" in
  let supp_nation = Exec.Hash_join.create ~alloc ~expected:(Table.rows supplier) in
  Exec.parallel_scan ctx supplier ~columns:[ "s_suppkey"; "s_nationkey" ]
    (fun ctx' s ->
      if n_region.(s_nation.(s)) = target_region then
        Exec.Hash_join.insert ctx' supp_nation ~key:s ~payload:s_nation.(s));
  let customer = data.D.customer in
  let c_nation = Table.ints customer "c_nationkey" in
  let cust_nation = Exec.Hash_join.create ~alloc ~expected:(Table.rows customer) in
  Exec.parallel_scan ctx customer ~columns:[ "c_custkey"; "c_nationkey" ]
    (fun ctx' c ->
      if n_region.(c_nation.(c)) = target_region then
        Exec.Hash_join.insert ctx' cust_nation ~key:c ~payload:c_nation.(c));
  let orders = data.D.orders in
  let o_cust = Table.ints orders "o_custkey" in
  let o_date = Table.ints orders "o_orderdate" in
  let ord_nation = Exec.Hash_join.create ~alloc ~expected:(Table.rows orders / 5) in
  Exec.parallel_scan ctx orders ~columns:[ "o_orderkey"; "o_custkey"; "o_orderdate" ]
    (fun ctx' o ->
      if o_date.(o) >= year_lo && o_date.(o) < year_hi then
        Exec.Hash_join.probe_iter ctx' cust_nation ~key:o_cust.(o) (fun nat ->
            Exec.Hash_join.insert ctx' ord_nation ~key:o ~payload:nat));
  let li = data.D.lineitem in
  let l_order = Table.ints li "l_orderkey" in
  let l_supp = Table.ints li "l_suppkey" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let revenue = Exec.Hash_agg.create ~alloc ~expected:25 ~width:1 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_orderkey"; "l_suppkey"; "l_extendedprice"; "l_discount" ]
    (fun ctx' r ->
      Exec.Hash_join.probe_iter ctx' ord_nation ~key:l_order.(r) (fun c_nat ->
          Exec.Hash_join.probe_iter ctx' supp_nation ~key:l_supp.(r) (fun s_nat ->
              if c_nat = s_nat then
                Exec.Hash_agg.update ctx' revenue ~key:s_nat
                  [ (0, price.(r) *. (1.0 -. disc.(r))) ])));
  let sum = Exec.Hash_agg.fold revenue (fun _ acc s -> s +. acc.(0)) 0.0 in
  { query = 5; checksum = sum; rows_out = Exec.Hash_agg.groups revenue }

(* Q6: forecasting revenue change — pure scan with selective predicate. *)
let q6 ctx ~alloc:_ data =
  let li = data.D.lineitem in
  let ship = Table.ints li "l_shipdate" in
  let qty = Table.floats li "l_quantity" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let lo = D.day_of ~year:1994 and hi = D.day_of ~year:1995 in
  let revenue = ref 0.0 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_shipdate"; "l_quantity"; "l_extendedprice"; "l_discount" ]
    (fun _ctx' r ->
      if
        ship.(r) >= lo && ship.(r) < hi
        && disc.(r) >= 0.05 && disc.(r) <= 0.07
        && qty.(r) < 24.0
      then revenue := !revenue +. (price.(r) *. disc.(r)));
  { query = 6; checksum = !revenue; rows_out = 1 }

(* Q7: volume shipping between two nations, by year. *)
let q7 ctx ~alloc data =
  let nat_a = 3 and nat_b = 7 in
  let supplier = data.D.supplier in
  let s_nation = Table.ints supplier "s_nationkey" in
  let supp = Exec.Hash_join.create ~alloc ~expected:(Table.rows supplier / 12) in
  Exec.parallel_scan ctx supplier ~columns:[ "s_suppkey"; "s_nationkey" ]
    (fun ctx' s ->
      if s_nation.(s) = nat_a || s_nation.(s) = nat_b then
        Exec.Hash_join.insert ctx' supp ~key:s ~payload:s_nation.(s));
  let customer = data.D.customer in
  let c_nation = Table.ints customer "c_nationkey" in
  let cust = Exec.Hash_join.create ~alloc ~expected:(Table.rows customer / 12) in
  Exec.parallel_scan ctx customer ~columns:[ "c_custkey"; "c_nationkey" ]
    (fun ctx' c ->
      if c_nation.(c) = nat_a || c_nation.(c) = nat_b then
        Exec.Hash_join.insert ctx' cust ~key:c ~payload:c_nation.(c));
  let orders = data.D.orders in
  let o_cust = Table.ints orders "o_custkey" in
  let ord = Exec.Hash_join.create ~alloc ~expected:(Table.rows orders / 12) in
  Exec.parallel_scan ctx orders ~columns:[ "o_orderkey"; "o_custkey" ]
    (fun ctx' o ->
      Exec.Hash_join.probe_iter ctx' cust ~key:o_cust.(o) (fun nat ->
          Exec.Hash_join.insert ctx' ord ~key:o ~payload:nat));
  let li = data.D.lineitem in
  let l_order = Table.ints li "l_orderkey" in
  let l_supp = Table.ints li "l_suppkey" in
  let l_ship = Table.ints li "l_shipdate" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let lo = D.day_of ~year:1995 in
  let volume = Exec.Hash_agg.create ~alloc ~expected:8 ~width:1 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_orderkey"; "l_suppkey"; "l_shipdate"; "l_extendedprice"; "l_discount" ]
    (fun ctx' r ->
      if l_ship.(r) >= lo then
        Exec.Hash_join.probe_iter ctx' ord ~key:l_order.(r) (fun c_nat ->
            Exec.Hash_join.probe_iter ctx' supp ~key:l_supp.(r) (fun s_nat ->
                if (c_nat = nat_a && s_nat = nat_b) || (c_nat = nat_b && s_nat = nat_a)
                then begin
                  let year = l_ship.(r) / 365 in
                  Exec.Hash_agg.update ctx' volume
                    ~key:((s_nat * 100) + year)
                    [ (0, price.(r) *. (1.0 -. disc.(r))) ]
                end)));
  let sum = Exec.Hash_agg.fold volume (fun _ acc s -> s +. acc.(0)) 0.0 in
  { query = 7; checksum = sum; rows_out = Exec.Hash_agg.groups volume }

(* Q8: national market share within a region, by year. *)
let q8 ctx ~alloc data =
  let target_nation = 5 and target_region = 1 and target_type = 42 in
  let nation = data.D.nation in
  let n_region = Table.ints nation "n_regionkey" in
  let part = data.D.part in
  let p_type = Table.ints part "p_type" in
  let parts = Exec.Hash_join.create ~alloc ~expected:(Table.rows part / D.num_types) in
  Exec.parallel_scan ctx part ~columns:[ "p_partkey"; "p_type" ]
    (fun ctx' p ->
      if p_type.(p) = target_type then Exec.Hash_join.insert ctx' parts ~key:p ~payload:p);
  let customer = data.D.customer in
  let c_nation = Table.ints customer "c_nationkey" in
  let cust = Exec.Hash_join.create ~alloc ~expected:(Table.rows customer / 5) in
  Exec.parallel_scan ctx customer ~columns:[ "c_custkey"; "c_nationkey" ]
    (fun ctx' c ->
      if n_region.(c_nation.(c)) = target_region then
        Exec.Hash_join.insert ctx' cust ~key:c ~payload:c);
  let orders = data.D.orders in
  let o_cust = Table.ints orders "o_custkey" in
  let o_date = Table.ints orders "o_orderdate" in
  let ord = Exec.Hash_join.create ~alloc ~expected:(Table.rows orders / 5) in
  Exec.parallel_scan ctx orders ~columns:[ "o_orderkey"; "o_custkey"; "o_orderdate" ]
    (fun ctx' o ->
      if
        o_date.(o) >= D.day_of ~year:1995
        && o_date.(o) < D.day_of ~year:1997
        && Exec.Hash_join.mem ctx' cust ~key:o_cust.(o)
      then Exec.Hash_join.insert ctx' ord ~key:o ~payload:(o_date.(o) / 365));
  let supplier = data.D.supplier in
  let s_nation = Table.ints supplier "s_nationkey" in
  let li = data.D.lineitem in
  let l_order = Table.ints li "l_orderkey" in
  let l_part = Table.ints li "l_partkey" in
  let l_supp = Table.ints li "l_suppkey" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let share = Exec.Hash_agg.create ~alloc ~expected:4 ~width:2 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_orderkey"; "l_partkey"; "l_suppkey"; "l_extendedprice"; "l_discount" ]
    (fun ctx' r ->
      if Exec.Hash_join.mem ctx' parts ~key:l_part.(r) then
        Exec.Hash_join.probe_iter ctx' ord ~key:l_order.(r) (fun year ->
            let v = price.(r) *. (1.0 -. disc.(r)) in
            let from_nation = if s_nation.(l_supp.(r)) = target_nation then v else 0.0 in
            Exec.Hash_agg.update ctx' share ~key:year [ (0, from_nation); (1, v) ]));
  let sum =
    Exec.Hash_agg.fold share
      (fun _ acc s -> if acc.(1) > 0.0 then s +. (acc.(0) /. acc.(1)) else s)
      0.0
  in
  { query = 8; checksum = sum; rows_out = Exec.Hash_agg.groups share }

(* Q9: product-type profit, by nation and year. *)
let q9 ctx ~alloc data =
  let part = data.D.part in
  let p_type = Table.ints part "p_type" in
  let parts = Exec.Hash_join.create ~alloc ~expected:(Table.rows part / 10) in
  Exec.parallel_scan ctx part ~columns:[ "p_partkey"; "p_type" ]
    (fun ctx' p ->
      if p_type.(p) mod 15 = 0 then Exec.Hash_join.insert ctx' parts ~key:p ~payload:p);
  let ps = data.D.partsupp in
  let ps_part = Table.ints ps "ps_partkey" in
  let ps_supp = Table.ints ps "ps_suppkey" in
  let ps_cost = Table.floats ps "ps_supplycost" in
  let cost = Exec.Hash_join.create ~alloc ~expected:(Table.rows ps / 10) in
  Exec.parallel_scan ctx ps ~columns:[ "ps_partkey"; "ps_suppkey"; "ps_supplycost" ]
    (fun ctx' r ->
      if Exec.Hash_join.mem ctx' parts ~key:ps_part.(r) then
        Exec.Hash_join.insert ctx'
          cost
          ~key:((ps_part.(r) * 65536) + ps_supp.(r))
          ~payload:(int_of_float (ps_cost.(r) *. 100.0)));
  let supplier = data.D.supplier in
  let s_nation = Table.ints supplier "s_nationkey" in
  let orders = data.D.orders in
  let o_date = Table.ints orders "o_orderdate" in
  let li = data.D.lineitem in
  let l_order = Table.ints li "l_orderkey" in
  let l_part = Table.ints li "l_partkey" in
  let l_supp = Table.ints li "l_suppkey" in
  let l_qty = Table.floats li "l_quantity" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let profit = Exec.Hash_agg.create ~alloc ~expected:200 ~width:1 in
  Exec.parallel_scan ctx li
    ~columns:
      [ "l_orderkey"; "l_partkey"; "l_suppkey"; "l_quantity"; "l_extendedprice"; "l_discount" ]
    (fun ctx' r ->
      Exec.Hash_join.probe_iter ctx' cost
        ~key:((l_part.(r) * 65536) + l_supp.(r))
        (fun cost_cents ->
          let year = o_date.(l_order.(r)) / 365 in
          let nat = s_nation.(l_supp.(r)) in
          let amount =
            (price.(r) *. (1.0 -. disc.(r)))
            -. (float_of_int cost_cents /. 100.0 *. l_qty.(r))
          in
          Exec.Hash_agg.update ctx' profit ~key:((nat * 100) + year) [ (0, amount) ]));
  Exec.charge_sort ctx ~rows:(Exec.Hash_agg.groups profit);
  let sum = Exec.Hash_agg.fold profit (fun _ acc s -> s +. acc.(0)) 0.0 in
  { query = 9; checksum = sum; rows_out = Exec.Hash_agg.groups profit }

(* Q10: returned-item reporting — revenue lost per customer. *)
let q10 ctx ~alloc data =
  let lo = D.day_of ~year:1993 + 270 and hi = D.day_of ~year:1994 in
  let orders = data.D.orders in
  let o_cust = Table.ints orders "o_custkey" in
  let o_date = Table.ints orders "o_orderdate" in
  let ord = Exec.Hash_join.create ~alloc ~expected:(Table.rows orders / 20) in
  Exec.parallel_scan ctx orders ~columns:[ "o_orderkey"; "o_custkey"; "o_orderdate" ]
    (fun ctx' o ->
      if o_date.(o) >= lo && o_date.(o) < hi then
        Exec.Hash_join.insert ctx' ord ~key:o ~payload:o_cust.(o));
  let li = data.D.lineitem in
  let l_order = Table.ints li "l_orderkey" in
  let l_rf = Table.ints li "l_returnflag" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let lost = Exec.Hash_agg.create ~alloc ~expected:2048 ~width:1 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_orderkey"; "l_returnflag"; "l_extendedprice"; "l_discount" ]
    (fun ctx' r ->
      if l_rf.(r) = 0 (* 'R' *) then
        Exec.Hash_join.probe_iter ctx' ord ~key:l_order.(r) (fun cust ->
            Exec.Hash_agg.update ctx' lost ~key:cust
              [ (0, price.(r) *. (1.0 -. disc.(r))) ]));
  Exec.charge_sort ctx ~rows:(Exec.Hash_agg.groups lost);
  let sum = Exec.Hash_agg.fold lost (fun _ acc s -> s +. acc.(0)) 0.0 in
  { query = 10; checksum = sum; rows_out = Exec.Hash_agg.groups lost }

(* Q11: important stock identification in one nation. *)
let q11 ctx ~alloc data =
  let target_nation = 9 in
  let supplier = data.D.supplier in
  let s_nation = Table.ints supplier "s_nationkey" in
  let supp = Exec.Hash_join.create ~alloc ~expected:(Table.rows supplier / 25) in
  Exec.parallel_scan ctx supplier ~columns:[ "s_suppkey"; "s_nationkey" ]
    (fun ctx' s ->
      if s_nation.(s) = target_nation then
        Exec.Hash_join.insert ctx' supp ~key:s ~payload:s);
  let ps = data.D.partsupp in
  let ps_part = Table.ints ps "ps_partkey" in
  let ps_supp = Table.ints ps "ps_suppkey" in
  let ps_cost = Table.floats ps "ps_supplycost" in
  let ps_qty = Table.ints ps "ps_availqty" in
  let value = Exec.Hash_agg.create ~alloc ~expected:1024 ~width:1 in
  let total = ref 0.0 in
  Exec.parallel_scan ctx ps
    ~columns:[ "ps_partkey"; "ps_suppkey"; "ps_supplycost"; "ps_availqty" ]
    (fun ctx' r ->
      if Exec.Hash_join.mem ctx' supp ~key:ps_supp.(r) then begin
        let v = ps_cost.(r) *. float_of_int ps_qty.(r) in
        total := !total +. v;
        Exec.Hash_agg.update ctx' value ~key:ps_part.(r) [ (0, v) ]
      end);
  let threshold = !total *. 0.001 in
  let rows = ref 0 and sum = ref 0.0 in
  Exec.Hash_agg.fold value
    (fun _ acc () ->
      if acc.(0) > threshold then begin
        incr rows;
        sum := !sum +. acc.(0)
      end)
    ();
  { query = 11; checksum = !sum; rows_out = !rows }

(* Q12: shipping-mode and order-priority counting. *)
let q12 ctx ~alloc data =
  let mode_a = 2 and mode_b = 5 in
  let lo = D.day_of ~year:1994 and hi = D.day_of ~year:1995 in
  let orders = data.D.orders in
  let o_prio = Table.ints orders "o_orderpriority" in
  let li = data.D.lineitem in
  let l_order = Table.ints li "l_orderkey" in
  let l_mode = Table.ints li "l_shipmode" in
  let l_commit = Table.ints li "l_commitdate" in
  let l_receipt = Table.ints li "l_receiptdate" in
  let l_ship = Table.ints li "l_shipdate" in
  let counts = Exec.Hash_agg.create ~alloc ~expected:4 ~width:2 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_orderkey"; "l_shipmode"; "l_commitdate"; "l_receiptdate"; "l_shipdate" ]
    (fun ctx' r ->
      if
        (l_mode.(r) = mode_a || l_mode.(r) = mode_b)
        && l_commit.(r) < l_receipt.(r)
        && l_ship.(r) < l_commit.(r)
        && l_receipt.(r) >= lo && l_receipt.(r) < hi
      then begin
        (* charge the orders-side point lookup (index join) *)
        Column.touch ctx' (Table.col orders "o_orderpriority") l_order.(r);
        let high = if o_prio.(l_order.(r)) <= 1 then 1.0 else 0.0 in
        Exec.Hash_agg.update ctx' counts ~key:l_mode.(r)
          [ (0, high); (1, 1.0 -. high) ]
      end);
  let sum = Exec.Hash_agg.fold counts (fun _ acc s -> s +. acc.(0) +. (2.0 *. acc.(1))) 0.0 in
  { query = 12; checksum = sum; rows_out = Exec.Hash_agg.groups counts }

(* Q13: customer order-count distribution. *)
let q13 ctx ~alloc data =
  let orders = data.D.orders in
  let o_cust = Table.ints orders "o_custkey" in
  let o_prio = Table.ints orders "o_orderpriority" in
  let per_cust = Exec.Hash_agg.create ~alloc ~expected:(Table.rows data.D.customer) ~width:1 in
  Exec.parallel_scan ctx orders ~columns:[ "o_custkey"; "o_orderpriority" ]
    (fun ctx' o ->
      (* the NOT LIKE 'special requests' filter drops one priority class *)
      if o_prio.(o) <> 4 then
        Exec.Hash_agg.update ctx' per_cust ~key:o_cust.(o) [ (0, 1.0) ]);
  let histogram = Hashtbl.create 64 in
  Exec.Hash_agg.fold per_cust
    (fun _ acc () ->
      let k = int_of_float acc.(0) in
      Hashtbl.replace histogram k (1 + Option.value ~default:0 (Hashtbl.find_opt histogram k)))
    ();
  Exec.charge_sort ctx ~rows:(Hashtbl.length histogram);
  let sum = Hashtbl.fold (fun k c s -> s +. float_of_int (k * c)) histogram 0.0 in
  { query = 13; checksum = sum; rows_out = Hashtbl.length histogram }

(* Q14: promotion-effect revenue share. *)
let q14 ctx ~alloc:_ data =
  let lo = D.day_of ~year:1995 + 240 and hi = D.day_of ~year:1995 + 270 in
  let part = data.D.part in
  let p_type = Table.ints part "p_type" in
  let li = data.D.lineitem in
  let l_part = Table.ints li "l_partkey" in
  let l_ship = Table.ints li "l_shipdate" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let promo = ref 0.0 and total = ref 0.0 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_partkey"; "l_shipdate"; "l_extendedprice"; "l_discount" ]
    (fun ctx' r ->
      if l_ship.(r) >= lo && l_ship.(r) < hi then begin
        Column.touch ctx' (Table.col part "p_type") l_part.(r);
        let v = price.(r) *. (1.0 -. disc.(r)) in
        total := !total +. v;
        if p_type.(l_part.(r)) < 30 (* PROMO%% *) then promo := !promo +. v
      end);
  let share = if !total > 0.0 then 100.0 *. !promo /. !total else 0.0 in
  { query = 14; checksum = share; rows_out = 1 }

(* Q15: top supplier by quarterly revenue. *)
let q15 ctx ~alloc data =
  let lo = D.day_of ~year:1996 in
  let hi = lo + 90 in
  let li = data.D.lineitem in
  let l_supp = Table.ints li "l_suppkey" in
  let l_ship = Table.ints li "l_shipdate" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let revenue = Exec.Hash_agg.create ~alloc ~expected:(Table.rows data.D.supplier) ~width:1 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_suppkey"; "l_shipdate"; "l_extendedprice"; "l_discount" ]
    (fun ctx' r ->
      if l_ship.(r) >= lo && l_ship.(r) < hi then
        Exec.Hash_agg.update ctx' revenue ~key:l_supp.(r)
          [ (0, price.(r) *. (1.0 -. disc.(r))) ]);
  let best = Exec.Hash_agg.fold revenue (fun _ acc m -> Float.max m acc.(0)) 0.0 in
  { query = 15; checksum = best; rows_out = Exec.Hash_agg.groups revenue }

(* Q16: parts/supplier relationship counting (distinct suppliers). *)
let q16 ctx ~alloc data =
  let part = data.D.part in
  let p_brand = Table.ints part "p_brand" in
  let p_size = Table.ints part "p_size" in
  let p_type = Table.ints part "p_type" in
  let wanted = Exec.Hash_join.create ~alloc ~expected:(Table.rows part / 3) in
  Exec.parallel_scan ctx part ~columns:[ "p_partkey"; "p_brand"; "p_size"; "p_type" ]
    (fun ctx' p ->
      if p_brand.(p) <> 11 && p_type.(p) mod 7 <> 0 && p_size.(p) mod 6 < 4 then
        Exec.Hash_join.insert ctx' wanted ~key:p
          ~payload:((p_brand.(p) * 10_000) + (p_type.(p) * 60) + p_size.(p)));
  let ps = data.D.partsupp in
  let ps_part = Table.ints ps "ps_partkey" in
  let ps_supp = Table.ints ps "ps_suppkey" in
  let distinct : (int * int, unit) Hashtbl.t = Hashtbl.create 4096 in
  Exec.parallel_scan ctx ps ~columns:[ "ps_partkey"; "ps_suppkey" ]
    (fun ctx' r ->
      Exec.Hash_join.probe_iter ctx' wanted ~key:ps_part.(r) (fun group ->
          Hashtbl.replace distinct (group, ps_supp.(r)) ()));
  let counts = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (group, _) () ->
      Hashtbl.replace counts group
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts group)))
    distinct;
  Exec.charge_sort ctx ~rows:(Hashtbl.length counts);
  let sum = Hashtbl.fold (fun _ c s -> s +. float_of_int c) counts 0.0 in
  { query = 16; checksum = sum; rows_out = Hashtbl.length counts }

(* Q17: small-quantity-order revenue for one brand/container. *)
let q17 ctx ~alloc data =
  let part = data.D.part in
  let p_brand = Table.ints part "p_brand" in
  let p_container = Table.ints part "p_container" in
  let wanted = Exec.Hash_join.create ~alloc ~expected:256 in
  Exec.parallel_scan ctx part ~columns:[ "p_partkey"; "p_brand"; "p_container" ]
    (fun ctx' p ->
      if p_brand.(p) = 13 && p_container.(p) = 7 then
        Exec.Hash_join.insert ctx' wanted ~key:p ~payload:p);
  let li = data.D.lineitem in
  let l_part = Table.ints li "l_partkey" in
  let l_qty = Table.floats li "l_quantity" in
  let price = Table.floats li "l_extendedprice" in
  let qty_stats = Exec.Hash_agg.create ~alloc ~expected:256 ~width:2 in
  Exec.parallel_scan ctx li ~columns:[ "l_partkey"; "l_quantity" ]
    (fun ctx' r ->
      if Exec.Hash_join.mem ctx' wanted ~key:l_part.(r) then
        Exec.Hash_agg.update ctx' qty_stats ~key:l_part.(r)
          [ (0, l_qty.(r)); (1, 1.0) ]);
  let total = ref 0.0 in
  Exec.parallel_scan ctx li ~columns:[ "l_partkey"; "l_quantity"; "l_extendedprice" ]
    (fun ctx' r ->
      if Exec.Hash_join.mem ctx' wanted ~key:l_part.(r) then
        match Exec.Hash_agg.get qty_stats ~key:l_part.(r) with
        | Some acc when acc.(1) > 0.0 ->
            if l_qty.(r) < 0.2 *. (acc.(0) /. acc.(1)) then
              total := !total +. price.(r)
        | _ -> ());
  { query = 17; checksum = !total /. 7.0; rows_out = 1 }

(* Q18: large-volume customers (group-by on orderkey, the paper's noted
   outlier: uneven distribution limits chiplet gains). *)
let q18 ctx ~alloc data =
  let li = data.D.lineitem in
  let l_order = Table.ints li "l_orderkey" in
  let l_qty = Table.floats li "l_quantity" in
  let per_order = Exec.Hash_agg.create ~alloc ~expected:(Table.rows data.D.orders) ~width:1 in
  Exec.parallel_scan ctx li ~columns:[ "l_orderkey"; "l_quantity" ]
    (fun ctx' r ->
      Exec.Hash_agg.update ctx' per_order ~key:l_order.(r) [ (0, l_qty.(r)) ]);
  let orders = data.D.orders in
  let o_total = Table.floats orders "o_totalprice" in
  let threshold = 180.0 in
  let sum = ref 0.0 and rows = ref 0 in
  Exec.parallel_scan ctx orders ~columns:[ "o_orderkey"; "o_totalprice" ]
    (fun _ctx' o ->
      match Exec.Hash_agg.get per_order ~key:o with
      | Some acc when acc.(0) > threshold ->
          incr rows;
          sum := !sum +. o_total.(o)
      | _ -> ());
  Exec.charge_sort ctx ~rows:!rows;
  { query = 18; checksum = !sum; rows_out = !rows }

(* Q19: discounted revenue with disjunctive brand/container predicates. *)
let q19 ctx ~alloc:_ data =
  let part = data.D.part in
  let p_brand = Table.ints part "p_brand" in
  let p_container = Table.ints part "p_container" in
  let li = data.D.lineitem in
  let l_part = Table.ints li "l_partkey" in
  let l_qty = Table.floats li "l_quantity" in
  let l_mode = Table.ints li "l_shipmode" in
  let price = Table.floats li "l_extendedprice" in
  let disc = Table.floats li "l_discount" in
  let revenue = ref 0.0 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_partkey"; "l_quantity"; "l_shipmode"; "l_extendedprice"; "l_discount" ]
    (fun ctx' r ->
      if l_mode.(r) <= 1 then begin
        Column.touch ctx' (Table.col part "p_brand") l_part.(r);
        Column.touch ctx' (Table.col part "p_container") l_part.(r);
        let b = p_brand.(l_part.(r)) and c = p_container.(l_part.(r)) in
        let q = l_qty.(r) in
        if
          (b = 12 && c < 10 && q >= 1.0 && q <= 11.0)
          || (b = 23 && c >= 10 && c < 20 && q >= 10.0 && q <= 20.0)
          || (b = 33 && c >= 20 && c < 30 && q >= 20.0 && q <= 30.0)
        then revenue := !revenue +. (price.(r) *. (1.0 -. disc.(r)))
      end);
  { query = 19; checksum = !revenue; rows_out = 1 }

(* Q20: potential part promotion (nested semi-joins). *)
let q20 ctx ~alloc data =
  let part = data.D.part in
  let p_type = Table.ints part "p_type" in
  let wanted_parts = Exec.Hash_join.create ~alloc ~expected:(Table.rows part / 10) in
  Exec.parallel_scan ctx part ~columns:[ "p_partkey"; "p_type" ]
    (fun ctx' p ->
      if p_type.(p) mod 10 = 3 then
        Exec.Hash_join.insert ctx' wanted_parts ~key:p ~payload:p);
  let li = data.D.lineitem in
  let l_part = Table.ints li "l_partkey" in
  let l_supp = Table.ints li "l_suppkey" in
  let l_ship = Table.ints li "l_shipdate" in
  let l_qty = Table.floats li "l_quantity" in
  let lo = D.day_of ~year:1994 and hi = D.day_of ~year:1995 in
  let shipped = Exec.Hash_agg.create ~alloc ~expected:4096 ~width:1 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_partkey"; "l_suppkey"; "l_shipdate"; "l_quantity" ]
    (fun ctx' r ->
      if
        l_ship.(r) >= lo && l_ship.(r) < hi
        && Exec.Hash_join.mem ctx' wanted_parts ~key:l_part.(r)
      then
        Exec.Hash_agg.update ctx' shipped
          ~key:((l_part.(r) * 65536) + l_supp.(r))
          [ (0, l_qty.(r)) ]);
  let ps = data.D.partsupp in
  let ps_part = Table.ints ps "ps_partkey" in
  let ps_supp = Table.ints ps "ps_suppkey" in
  let ps_qty = Table.ints ps "ps_availqty" in
  let suppliers : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  Exec.parallel_scan ctx ps ~columns:[ "ps_partkey"; "ps_suppkey"; "ps_availqty" ]
    (fun ctx' r ->
      match Exec.Hash_agg.get shipped ~key:((ps_part.(r) * 65536) + ps_supp.(r)) with
      | Some acc when float_of_int ps_qty.(r) > 0.5 *. acc.(0) ->
          Sched.Ctx.read ctx' (Column.sim (Table.col ps "ps_availqty")) r;
          Hashtbl.replace suppliers ps_supp.(r) ()
      | _ -> ());
  { query = 20; checksum = float_of_int (Hashtbl.length suppliers);
    rows_out = Hashtbl.length suppliers }

(* Q21: suppliers who kept orders waiting (multi-pass per-order analysis). *)
let q21 ctx ~alloc data =
  let target_nation = 4 in
  let li = data.D.lineitem in
  let l_order = Table.ints li "l_orderkey" in
  let l_supp = Table.ints li "l_suppkey" in
  let l_commit = Table.ints li "l_commitdate" in
  let l_receipt = Table.ints li "l_receiptdate" in
  let supplier = data.D.supplier in
  let s_nation = Table.ints supplier "s_nationkey" in
  (* pass 1: per order, collect distinct suppliers and late suppliers *)
  let supps = Exec.Hash_agg.create ~alloc ~expected:(Table.rows data.D.orders) ~width:2 in
  let late_supp : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  Exec.parallel_scan ctx li
    ~columns:[ "l_orderkey"; "l_suppkey"; "l_commitdate"; "l_receiptdate" ]
    (fun ctx' r ->
      let late = if l_receipt.(r) > l_commit.(r) then 1.0 else 0.0 in
      Exec.Hash_agg.update ctx' supps ~key:l_order.(r) [ (0, 1.0); (1, late) ];
      if late = 1.0 && not (Hashtbl.mem late_supp l_order.(r)) then
        Hashtbl.replace late_supp l_order.(r) l_supp.(r));
  (* pass 2: orders where exactly one supplier was late, and it is ours *)
  let counts = Exec.Hash_agg.create ~alloc ~expected:128 ~width:1 in
  let orders = data.D.orders in
  let o_status = Table.ints orders "o_orderstatus" in
  Exec.parallel_scan ctx orders ~columns:[ "o_orderkey"; "o_orderstatus" ]
    (fun ctx' o ->
      if o_status.(o) = 0 (* 'F' *) then
        match (Exec.Hash_agg.get supps ~key:o, Hashtbl.find_opt late_supp o) with
        | Some acc, Some s
          when acc.(1) >= 1.0 && acc.(1) < 2.0 && s_nation.(s) = target_nation ->
            Column.touch ctx' (Table.col supplier "s_nationkey") s;
            Exec.Hash_agg.update ctx' counts ~key:s [ (0, 1.0) ]
        | _ -> ());
  Exec.charge_sort ctx ~rows:(Exec.Hash_agg.groups counts);
  let sum = Exec.Hash_agg.fold counts (fun _ acc s -> s +. acc.(0)) 0.0 in
  { query = 21; checksum = sum; rows_out = Exec.Hash_agg.groups counts }

(* Q22: global sales opportunity (anti-join against orders). *)
let q22 ctx ~alloc data =
  let customer = data.D.customer in
  let c_acct = Table.floats customer "c_acctbal" in
  let c_nation = Table.ints customer "c_nationkey" in
  (* average positive balance *)
  let sum = ref 0.0 and cnt = ref 0 in
  Exec.parallel_scan ctx customer ~columns:[ "c_acctbal" ]
    (fun _ctx' c ->
      if c_acct.(c) > 0.0 then begin
        sum := !sum +. c_acct.(c);
        incr cnt
      end);
  let avg = if !cnt > 0 then !sum /. float_of_int !cnt else 0.0 in
  let orders = data.D.orders in
  let o_cust = Table.ints orders "o_custkey" in
  let has_orders = Exec.Hash_join.create ~alloc ~expected:(Table.rows customer) in
  Exec.parallel_scan ctx orders ~columns:[ "o_custkey" ]
    (fun ctx' o ->
      if not (Exec.Hash_join.mem ctx' has_orders ~key:o_cust.(o)) then
        Exec.Hash_join.insert ctx' has_orders ~key:o_cust.(o) ~payload:o);
  let per_code = Exec.Hash_agg.create ~alloc ~expected:7 ~width:2 in
  Exec.parallel_scan ctx customer ~columns:[ "c_custkey"; "c_acctbal"; "c_nationkey" ]
    (fun ctx' c ->
      let code = c_nation.(c) mod 7 in
      if code < 5 (* IN ('13','31',...) *) && c_acct.(c) > avg
         && not (Exec.Hash_join.mem ctx' has_orders ~key:c)
      then Exec.Hash_agg.update ctx' per_code ~key:code [ (0, 1.0); (1, c_acct.(c)) ]);
  let total = Exec.Hash_agg.fold per_code (fun _ acc s -> s +. acc.(1)) 0.0 in
  { query = 22; checksum = total; rows_out = Exec.Hash_agg.groups per_code }

let run ctx ~alloc data n =
  match n with
  | 1 -> q1 ctx ~alloc data
  | 2 -> q2 ctx ~alloc data
  | 3 -> q3 ctx ~alloc data
  | 4 -> q4 ctx ~alloc data
  | 5 -> q5 ctx ~alloc data
  | 6 -> q6 ctx ~alloc data
  | 7 -> q7 ctx ~alloc data
  | 8 -> q8 ctx ~alloc data
  | 9 -> q9 ctx ~alloc data
  | 10 -> q10 ctx ~alloc data
  | 11 -> q11 ctx ~alloc data
  | 12 -> q12 ctx ~alloc data
  | 13 -> q13 ctx ~alloc data
  | 14 -> q14 ctx ~alloc data
  | 15 -> q15 ctx ~alloc data
  | 16 -> q16 ctx ~alloc data
  | 17 -> q17 ctx ~alloc data
  | 18 -> q18 ctx ~alloc data
  | 19 -> q19 ctx ~alloc data
  | 20 -> q20 ctx ~alloc data
  | 21 -> q21 ctx ~alloc data
  | 22 -> q22 ctx ~alloc data
  | _ -> invalid_arg "Tpch_queries.run: query number must be in [1, 22]"

let execute env data n =
  let result = ref { query = n; checksum = 0.0; rows_out = 0 } in
  let alloc ~elt_bytes ~count = env.Workloads.Exec_env.alloc_shared ~elt_bytes ~count in
  (* quiesce: align worker clocks so the makespan delta is exactly this
     query's duration *)
  let sched = env.Workloads.Exec_env.sched in
  Engine.Sched.sync_clocks sched;
  let before = Engine.Sched.worker_clock sched 0 in
  let makespan = env.Workloads.Exec_env.run (fun ctx -> result := run ctx ~alloc data n) in
  (!result, Float.max 0.0 (makespan -. before))
