(** Morsel-driven query operators (Leis et al.-style execution, the model
    DuckDB uses): parallel column scans, charged hash joins and hash
    aggregation.

    All shared hash structures carry a simulated-memory shadow so builds
    and probes generate the cache traffic that CHARM's controller reacts
    to (spread for large join state, compact for small working sets —
    paper §5.6). *)

open Chipsim

type alloc = elt_bytes:int -> count:int -> Simmem.region

val default_morsel : int

val parallel_scan :
  Engine.Sched.ctx ->
  Table.t ->
  columns:string list ->
  ?morsel:int ->
  (Engine.Sched.ctx -> int -> unit) ->
  unit
(** Scan the table in morsels spread over all workers; the named columns
    are charged as sequential reads per morsel, then the callback runs for
    every row of the morsel. *)

(** Charged multimap hash table for joins. *)
module Hash_join : sig
  type t

  val create : alloc:alloc -> expected:int -> t
  val insert : Engine.Sched.ctx -> t -> key:int -> payload:int -> unit
  val probe : Engine.Sched.ctx -> t -> key:int -> int list
  val probe_iter : Engine.Sched.ctx -> t -> key:int -> (int -> unit) -> unit
  val mem : Engine.Sched.ctx -> t -> key:int -> bool
  val size : t -> int
end

(** Charged hash aggregation: per-key float accumulators. *)
module Hash_agg : sig
  type t

  val create : alloc:alloc -> expected:int -> width:int -> t
  (** [width] accumulators per group. *)

  val update :
    Engine.Sched.ctx -> t -> key:int -> (int * float) list -> unit
  (** Add deltas to accumulator slots of the key's group, creating it on
      first touch (count-style slots pass [(slot, 1.0)]). *)

  val get : t -> key:int -> float array option
  val fold : t -> (int -> float array -> 'a -> 'a) -> 'a -> 'a
  val groups : t -> int
end

val charge_sort : Engine.Sched.ctx -> rows:int -> unit
(** Charge an n log n comparison sort (order-by output phases). *)
