lib/olap/exec.ml: Array Chipsim Column Engine Hashtbl List Option Simmem Table
