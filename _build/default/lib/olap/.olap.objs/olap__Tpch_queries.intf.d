lib/olap/tpch_queries.mli: Engine Exec Tpch_data Workloads
