lib/olap/table.ml: Column List Printf
