lib/olap/tpch_data.mli: Chipsim Simmem Table
