lib/olap/table.mli: Column
