lib/olap/tpch_data.ml: Array Column Engine Fun List Table
