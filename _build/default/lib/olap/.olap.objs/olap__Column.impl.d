lib/olap/column.ml: Array Chipsim Engine Simmem
