lib/olap/column.mli: Chipsim Engine Simmem
