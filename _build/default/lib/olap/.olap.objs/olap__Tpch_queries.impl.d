lib/olap/tpch_queries.ml: Array Column Engine Exec Float Hashtbl List Option Table Tpch_data Workloads
