lib/olap/exec.mli: Chipsim Engine Simmem Table
