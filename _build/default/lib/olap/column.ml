open Chipsim

type t =
  | Ints of { data : int array; sim : Simmem.region }
  | Floats of { data : float array; sim : Simmem.region }

let ints ~alloc data =
  Ints { data; sim = alloc ~elt_bytes:8 ~count:(max 1 (Array.length data)) }

let floats ~alloc data =
  Floats { data; sim = alloc ~elt_bytes:8 ~count:(max 1 (Array.length data)) }

let length = function
  | Ints { data; _ } -> Array.length data
  | Floats { data; _ } -> Array.length data

let get_int = function
  | Ints { data; _ } -> Array.get data
  | Floats _ -> invalid_arg "Column.get_int: float column"

let get_float = function
  | Floats { data; _ } -> Array.get data
  | Ints { data; _ } -> fun i -> float_of_int data.(i)

let sim = function Ints { sim; _ } -> sim | Floats { sim; _ } -> sim

let scan_range ctx col ~lo ~hi =
  if hi > lo then Engine.Sched.Ctx.read_range ctx (sim col) ~lo ~hi

let touch ctx col i = Engine.Sched.Ctx.read ctx (sim col) i
