lib/chipsim/cache.mli:
