lib/chipsim/directory.mli: Topology
