lib/chipsim/topology.ml: Format List Printf
