lib/chipsim/machine.ml: Array Cache Directory Float Latency Memchan Pmu Simmem Topology
