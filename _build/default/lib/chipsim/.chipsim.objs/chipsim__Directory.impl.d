lib/chipsim/directory.ml: Hashtbl Latency
