lib/chipsim/simmem.ml: Array Hashtbl Topology
