lib/chipsim/latency.ml: Topology
