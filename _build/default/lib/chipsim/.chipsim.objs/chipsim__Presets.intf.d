lib/chipsim/presets.mli: Latency Topology
