lib/chipsim/latency.mli: Topology
