lib/chipsim/memchan.ml: Array
