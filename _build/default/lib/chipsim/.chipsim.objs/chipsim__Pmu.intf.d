lib/chipsim/pmu.mli: Format
