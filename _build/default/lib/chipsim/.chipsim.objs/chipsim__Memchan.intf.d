lib/chipsim/memchan.mli:
