lib/chipsim/cache.ml: Array
