lib/chipsim/machine.mli: Latency Pmu Simmem Topology
