lib/chipsim/topology.mli: Format
