lib/chipsim/pmu.ml: Array Format List
