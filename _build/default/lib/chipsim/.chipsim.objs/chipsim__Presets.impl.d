lib/chipsim/presets.ml: Latency Topology
