lib/chipsim/simmem.mli: Topology
