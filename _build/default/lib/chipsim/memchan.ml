type t = {
  bin_ns : float;
  nodes : int;
  line_bytes : int;
  capacity_bytes_per_bin : float;  (* per node *)
  (* ring of recent bins per node: bins.(node * ring + (bin mod ring)) *)
  ring : int;
  bin_ids : int array;  (* which absolute bin each slot currently holds *)
  bin_bytes : int array;
  total_bytes : int array;  (* per node *)
}

let ring_slots = 8192

let create ?(bin_ns = 1000.0) ~nodes ~channels_per_node ~bytes_per_ns_per_channel
    ~line_bytes () =
  if nodes <= 0 then invalid_arg "Memchan.create: nodes must be positive";
  if channels_per_node <= 0 then
    invalid_arg "Memchan.create: channels_per_node must be positive";
  {
    bin_ns;
    nodes;
    line_bytes;
    capacity_bytes_per_bin =
      float_of_int channels_per_node *. bytes_per_ns_per_channel *. bin_ns;
    ring = ring_slots;
    bin_ids = Array.make (nodes * ring_slots) (-1);
    bin_bytes = Array.make (nodes * ring_slots) 0;
    total_bytes = Array.make nodes 0;
  }

let slot t node bin = (node * t.ring) + (bin mod t.ring)

let bin_of t now_ns = int_of_float (now_ns /. t.bin_ns)

let check_node t node =
  if node < 0 || node >= t.nodes then invalid_arg "Memchan: node out of range"

let current_bytes t node bin =
  let s = slot t node bin in
  if t.bin_ids.(s) = bin then t.bin_bytes.(s) else 0

let access_ns t ~node ~now_ns ~base_ns =
  check_node t node;
  let bin = bin_of t now_ns in
  let s = slot t node bin in
  if t.bin_ids.(s) <> bin then begin
    t.bin_ids.(s) <- bin;
    t.bin_bytes.(s) <- 0
  end;
  t.bin_bytes.(s) <- t.bin_bytes.(s) + t.line_bytes;
  t.total_bytes.(node) <- t.total_bytes.(node) + t.line_bytes;
  let load = float_of_int t.bin_bytes.(s) /. t.capacity_bytes_per_bin in
  (* Mild queueing slope below saturation, steep beyond it. *)
  let factor =
    if load <= 1.0 then 1.0 +. (0.3 *. load)
    else 1.3 +. (2.0 *. (load -. 1.0))
  in
  base_ns *. factor

let load_ratio t ~node ~now_ns =
  check_node t node;
  let bin = bin_of t now_ns in
  float_of_int (current_bytes t node bin) /. t.capacity_bytes_per_bin

let bytes_served t ~node =
  check_node t node;
  t.total_bytes.(node)

let reset t =
  Array.fill t.bin_ids 0 (Array.length t.bin_ids) (-1);
  Array.fill t.bin_bytes 0 (Array.length t.bin_bytes) 0;
  Array.fill t.total_bytes 0 (Array.length t.total_bytes) 0
