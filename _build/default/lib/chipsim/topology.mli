(** Physical layout of a chiplet-based CPU.

    A machine is a set of sockets (= NUMA nodes); each socket holds several
    chiplets (CCDs); each chiplet holds several physical cores sharing one
    L3 slice.  Chiplets are further grouped into {e quadrants} that share an
    I/O-die stop, which produces the middle latency band of paper Fig. 3
    (inter-chiplet but intra-quadrant traffic is cheaper than crossing the
    whole die). *)

type t = {
  sockets : int;  (** number of sockets = NUMA nodes *)
  chiplets_per_socket : int;
  cores_per_chiplet : int;
  chiplet_group_size : int;
      (** chiplets per I/O-die quadrant; must divide [chiplets_per_socket] *)
  l3_bytes_per_chiplet : int;
  l2_bytes_per_core : int;
  line_bytes : int;
  mem_channels_per_socket : int;
  mem_bw_bytes_per_ns_per_channel : float;
      (** calibrated as {e effective} bandwidth per outstanding miss: the
          simulator issues one access at a time per core (no MLP), so
          capacities are scaled down ~10x from the parts' raw numbers to
          keep saturation points realistic *)
}

val v :
  ?chiplet_group_size:int ->
  ?l3_bytes_per_chiplet:int ->
  ?l2_bytes_per_core:int ->
  ?line_bytes:int ->
  ?mem_channels_per_socket:int ->
  ?mem_bw_bytes_per_ns_per_channel:float ->
  sockets:int ->
  chiplets_per_socket:int ->
  cores_per_chiplet:int ->
  unit ->
  t
(** [v ~sockets ~chiplets_per_socket ~cores_per_chiplet ()] builds a
    topology, validating that every divisibility constraint holds.
    @raise Invalid_argument on inconsistent parameters. *)

val num_cores : t -> int
val num_chiplets : t -> int
val cores_per_socket : t -> int

val chiplet_of_core : t -> int -> int
(** Global chiplet index of a global core index. *)

val socket_of_core : t -> int -> int
val socket_of_chiplet : t -> int -> int
val group_of_chiplet : t -> int -> int
(** Quadrant index (global) of a chiplet. *)

val cores_of_chiplet : t -> int -> int list
(** Ascending list of the core ids located on a chiplet. *)

val first_core_of_chiplet : t -> int -> int
val chiplets_of_socket : t -> int -> int list

val same_chiplet : t -> int -> int -> bool
val same_socket : t -> int -> int -> bool

val validate_core : t -> int -> unit
(** @raise Invalid_argument if the core id is out of range. *)

val pp : Format.formatter -> t -> unit
