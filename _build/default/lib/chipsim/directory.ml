type t = { chiplets : int; table : (int, int) Hashtbl.t }

let create ~chiplets =
  if chiplets <= 0 || chiplets > 62 then
    invalid_arg "Directory.create: chiplets must be in [1,62]";
  { chiplets; table = Hashtbl.create (1 lsl 16) }

let holders t line = match Hashtbl.find_opt t.table line with Some m -> m | None -> 0

let check t chiplet =
  if chiplet < 0 || chiplet >= t.chiplets then
    invalid_arg "Directory: chiplet out of range"

let add t ~line ~chiplet =
  check t chiplet;
  let m = holders t line lor (1 lsl chiplet) in
  Hashtbl.replace t.table line m

let remove t ~line ~chiplet =
  check t chiplet;
  let m = holders t line land lnot (1 lsl chiplet) in
  if m = 0 then Hashtbl.remove t.table line else Hashtbl.replace t.table line m

let set_exclusive t ~line ~chiplet =
  check t chiplet;
  Hashtbl.replace t.table line (1 lsl chiplet)

let holds t ~line ~chiplet =
  check t chiplet;
  holders t line land (1 lsl chiplet) <> 0

let iter_holders t ~line f =
  let m = holders t line in
  for c = 0 to t.chiplets - 1 do
    if m land (1 lsl c) <> 0 then f c
  done

let count_holders t ~line =
  let m = holders t line in
  let rec popcount m acc = if m = 0 then acc else popcount (m lsr 1) (acc + (m land 1)) in
  popcount m 0

let nearest_holder topo t ~line ~from_chiplet =
  let m = holders t line land lnot (1 lsl from_chiplet) in
  if m = 0 then None
  else begin
    let best = ref None and best_rank = ref max_int in
    let rank c =
      match Latency.classify_chiplets topo from_chiplet c with
      | Latency.Same_chiplet -> 0
      | Latency.Same_group -> 1
      | Latency.Same_socket -> 2
      | Latency.Cross_socket -> 3
      | Latency.Same_core -> 0
    in
    for c = 0 to t.chiplets - 1 do
      if m land (1 lsl c) <> 0 then begin
        let r = rank c in
        if r < !best_rank then begin
          best_rank := r;
          best := Some c
        end
      end
    done;
    !best
  end

let clear t = Hashtbl.reset t.table
