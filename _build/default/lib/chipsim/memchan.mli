(** Per-NUMA-node memory-channel contention model.

    DRAM accesses are binned by virtual time; when the bytes demanded within
    a bin exceed what the node's channels can deliver, the access latency is
    inflated proportionally.  This reproduces the paper's core premise
    (§2.2): more cores competing for a fixed number of channels degrade
    per-access latency once the node saturates. *)

type t

val create :
  ?bin_ns:float ->
  nodes:int ->
  channels_per_node:int ->
  bytes_per_ns_per_channel:float ->
  line_bytes:int ->
  unit ->
  t

val access_ns : t -> node:int -> now_ns:float -> base_ns:float -> float
(** [access_ns t ~node ~now_ns ~base_ns] records one line transfer against
    [node] at virtual time [now_ns] and returns the contention-adjusted
    latency (at least [base_ns]). *)

val load_ratio : t -> node:int -> now_ns:float -> float
(** Demand / capacity of the bin containing [now_ns] (1.0 = saturated). *)

val bytes_served : t -> node:int -> int
(** Total bytes ever served by the node (for bandwidth-utilisation stats). *)

val reset : t -> unit
