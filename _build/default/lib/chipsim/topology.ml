type t = {
  sockets : int;
  chiplets_per_socket : int;
  cores_per_chiplet : int;
  chiplet_group_size : int;
  l3_bytes_per_chiplet : int;
  l2_bytes_per_core : int;
  line_bytes : int;
  mem_channels_per_socket : int;
  mem_bw_bytes_per_ns_per_channel : float;
}

let v ?(chiplet_group_size = 2) ?(l3_bytes_per_chiplet = 32 * 1024 * 1024)
    ?(l2_bytes_per_core = 512 * 1024) ?(line_bytes = 64)
    ?(mem_channels_per_socket = 8) ?(mem_bw_bytes_per_ns_per_channel = 4.8)
    ~sockets ~chiplets_per_socket ~cores_per_chiplet () =
  if sockets <= 0 || chiplets_per_socket <= 0 || cores_per_chiplet <= 0 then
    invalid_arg "Topology.v: counts must be positive";
  if chiplet_group_size <= 0 || chiplets_per_socket mod chiplet_group_size <> 0
  then invalid_arg "Topology.v: chiplet_group_size must divide chiplets_per_socket";
  if line_bytes <= 0 || line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Topology.v: line_bytes must be a positive power of two";
  if l3_bytes_per_chiplet < line_bytes || l2_bytes_per_core < line_bytes then
    invalid_arg "Topology.v: cache sizes must hold at least one line";
  if mem_channels_per_socket <= 0 then
    invalid_arg "Topology.v: mem_channels_per_socket must be positive";
  {
    sockets;
    chiplets_per_socket;
    cores_per_chiplet;
    chiplet_group_size;
    l3_bytes_per_chiplet;
    l2_bytes_per_core;
    line_bytes;
    mem_channels_per_socket;
    mem_bw_bytes_per_ns_per_channel;
  }

let num_chiplets t = t.sockets * t.chiplets_per_socket
let cores_per_socket t = t.chiplets_per_socket * t.cores_per_chiplet
let num_cores t = t.sockets * cores_per_socket t

let validate_core t core =
  if core < 0 || core >= num_cores t then
    invalid_arg (Printf.sprintf "Topology: core %d out of range [0,%d)" core (num_cores t))

let chiplet_of_core t core = core / t.cores_per_chiplet
let socket_of_core t core = core / cores_per_socket t
let socket_of_chiplet t chiplet = chiplet / t.chiplets_per_socket
let group_of_chiplet t chiplet = chiplet / t.chiplet_group_size
let first_core_of_chiplet t chiplet = chiplet * t.cores_per_chiplet

let cores_of_chiplet t chiplet =
  let base = first_core_of_chiplet t chiplet in
  List.init t.cores_per_chiplet (fun i -> base + i)

let chiplets_of_socket t socket =
  let base = socket * t.chiplets_per_socket in
  List.init t.chiplets_per_socket (fun i -> base + i)

let same_chiplet t a b = chiplet_of_core t a = chiplet_of_core t b
let same_socket t a b = socket_of_core t a = socket_of_core t b

let pp ppf t =
  Format.fprintf ppf
    "%d socket(s) x %d chiplet(s) x %d core(s); L3 %d MiB/chiplet; %d mem ch/socket"
    t.sockets t.chiplets_per_socket t.cores_per_chiplet
    (t.l3_bytes_per_chiplet / (1024 * 1024))
    t.mem_channels_per_socket
