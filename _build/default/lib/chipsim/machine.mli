(** The simulated chiplet machine: caches + coherence + DRAM + PMU behind a
    single access call.

    Every memory access made by a simulated core returns the latency it
    would have cost on the modelled hardware, and increments the PMU
    counter classifying the source that served it (local L3 slice, remote
    chiplet, remote socket, or DRAM) — the same signal CHARM's profiler
    reads from hardware counters on real machines. *)

type t

val create : ?profile:Latency.profile -> Topology.t -> t
val topology : t -> Topology.t
val profile : t -> Latency.profile
val pmu : t -> Pmu.t
val mem : t -> Simmem.t

val alloc :
  t -> ?policy:Simmem.policy -> elt_bytes:int -> count:int -> unit ->
  Simmem.region
(** Allocate simulated memory (see {!Simmem.alloc}). *)

val access : t -> core:int -> now_ns:float -> write:bool -> int -> float
(** [access t ~core ~now_ns ~write addr] simulates one memory access and
    returns its latency in virtual nanoseconds. *)

val access_line :
  t -> core:int -> now_ns:float -> write:bool -> line:int -> float
(** Same, when the caller already knows the line id. *)

val touch :
  t -> core:int -> now_ns:float -> write:bool -> Simmem.region -> int -> float
(** Access element [i] of a region. *)

val touch_range :
  t -> core:int -> now_ns:float -> write:bool -> Simmem.region ->
  lo:int -> hi:int -> float
(** Sequentially access elements [lo, hi) of a region, touching each covered
    cache line exactly once.  Returns the summed latency. *)

val core_to_core_ns : t -> int -> int -> float
val dram_load_ratio : t -> node:int -> now_ns:float -> float
val dram_bytes_served : t -> node:int -> int

val flush_caches : t -> unit
(** Drop all cached state (caches, directory, channel history) but keep
    page placements and PMU counters. *)

val reset : t -> unit
(** Full reset: caches, directory, channels, page placements, PMU. *)
