(** Simulated virtual address space with NUMA page placement.

    Workload data values live in ordinary OCaml arrays; this module only
    assigns {e simulated addresses} to logical allocations and tracks which
    NUMA node each simulated page resides on.  Placement follows the policy
    attached to the region, mirroring Linux [set_mempolicy]:
    first-touch binds a page to the node of the first core touching it,
    [Bind] forces a node, [Interleave] round-robins pages across nodes. *)

type policy =
  | First_touch
  | Bind of int  (** NUMA node *)
  | Interleave

type t

type region = {
  base : int;  (** simulated byte address of the first element *)
  length_bytes : int;
  elt_bytes : int;
  mutable region_policy : policy;
}

val create : Topology.t -> t
val page_bytes : int

val alloc : t -> ?policy:policy -> elt_bytes:int -> count:int -> unit -> region
(** Allocate a region of [count] elements of [elt_bytes] bytes each,
    page-aligned so distinct regions never share a page. *)

val addr : region -> int -> int
(** Simulated address of element [i].  Bounds are the caller's problem in
    release mode; checked with [assert]. *)

val node_of_addr : t -> toucher_node:int -> int -> int
(** NUMA node holding the page of a simulated address, placing the page
    per the owning region's policy if this is the first touch. *)

val rebind : t -> region -> policy -> unit
(** Change the region's policy and drop existing page placements so pages
    migrate on next touch (models [mbind(MPOL_MF_MOVE)] cheaply). *)

val placed_pages : t -> node:int -> int
(** Number of pages currently resident on [node]. *)

val line_of_addr : t -> int -> int
val reset : t -> unit
