let mib n = n * 1024 * 1024
let kib n = n * 1024

let scale_div bytes scale =
  let v = bytes / scale in
  max v 4096

let amd_milan ?(scale = 1) () =
  Topology.v ~sockets:2 ~chiplets_per_socket:8 ~cores_per_chiplet:8
    ~chiplet_group_size:2
    ~l3_bytes_per_chiplet:(scale_div (mib 32) scale)
    ~l2_bytes_per_core:(scale_div (kib 512) scale)
    ~mem_channels_per_socket:8 ~mem_bw_bytes_per_ns_per_channel:4.8 ()

let amd_milan_1s ?(scale = 1) () =
  Topology.v ~sockets:1 ~chiplets_per_socket:8 ~cores_per_chiplet:8
    ~chiplet_group_size:2
    ~l3_bytes_per_chiplet:(scale_div (mib 32) scale)
    ~l2_bytes_per_core:(scale_div (kib 512) scale)
    ~mem_channels_per_socket:8 ~mem_bw_bytes_per_ns_per_channel:4.8 ()

let intel_spr ?(scale = 1) () =
  (* 48 cores/socket as 4 tiles x 12 cores; 105 MB shared L3 modelled as
     ~26 MB slices with a faster tile-to-tile interconnect. *)
  Topology.v ~sockets:2 ~chiplets_per_socket:4 ~cores_per_chiplet:12
    ~chiplet_group_size:2
    ~l3_bytes_per_chiplet:(scale_div (mib 26) scale)
    ~l2_bytes_per_core:(scale_div (mib 2) scale)
    ~mem_channels_per_socket:8 ~mem_bw_bytes_per_ns_per_channel:4.8 ()

let tiny () =
  Topology.v ~sockets:1 ~chiplets_per_socket:2 ~cores_per_chiplet:2
    ~chiplet_group_size:1 ~l3_bytes_per_chiplet:(kib 16)
    ~l2_bytes_per_core:4096 ~mem_channels_per_socket:2 ()

let intel_profile =
  {
    Latency.default_profile with
    Latency.same_chiplet_ns = 32.0;
    same_group_ns = 60.0;
    same_socket_ns = 75.0;
    cross_socket_ns = 240.0;
  }
