(** RandomAccess (GUPS): random read-modify-write updates over a large
    table, the paper's non-contiguous memory-access probe.  Throughput is
    reported in giga-updates per second of virtual time. *)

type params = {
  table_words : int;  (** 8-byte words in the shared table *)
  updates : int;  (** total RMW operations *)
  seed : int;
}

val default_params : params

val run : Exec_env.t -> params -> Workload_result.t
(** [work_items] = updates performed. *)

val gups : Workload_result.t -> float
(** Giga-updates per (virtual) second. *)
