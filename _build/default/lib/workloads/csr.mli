(** Compressed-sparse-row graph with a simulated-memory shadow.

    The adjacency structure lives in ordinary OCaml arrays (for the actual
    algorithm) and in simulated regions (for charging cache/DRAM costs):
    touching vertex/edge data through {!read_adj} etc. advances the
    executing worker's clock through the machine model. *)

open Chipsim

type t = {
  n : int;
  m : int;
  row_ptr : int array;  (** length n+1 *)
  col : int array;  (** length m *)
  weight : int array;  (** length m; 1 for unweighted graphs *)
  sim_row : Simmem.region;  (** 8 B per entry *)
  sim_col : Simmem.region;
  sim_weight : Simmem.region;
}

val of_edges :
  alloc:(elt_bytes:int -> count:int -> Simmem.region) ->
  n:int ->
  src:int array ->
  dst:int array ->
  ?weights:int array ->
  unit ->
  t
(** Build a CSR (out-edges) from an edge list.  [weights] defaults to
    random-free all-ones. *)

val of_kronecker :
  alloc:(elt_bytes:int -> count:int -> Simmem.region) ->
  ?weighted:bool -> ?seed:int -> Kronecker.t -> t
(** Symmetrise (both directions) and build; weights uniform in [1,255]
    when [weighted]. *)

val degree : t -> int -> int
val out_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [out_neighbors t u f] calls [f v w] for every out-edge (u,v,w). *)

(** Charged accessors: each also performs the simulated memory access. *)

val read_adj : Engine.Sched.ctx -> t -> int -> unit
(** Touch the row pointer and the whole adjacency range of a vertex
    (sequential edge scan). *)

val read_vertex : Engine.Sched.ctx -> Simmem.region -> int -> unit
val write_vertex : Engine.Sched.ctx -> Simmem.region -> int -> unit

val approx_bytes : t -> int
(** Total simulated footprint (row + col + weight). *)
