type t = { label : string; makespan_ns : float; work_items : int }

let v ~label ~makespan_ns ~work_items = { label; makespan_ns; work_items }

let throughput_per_s t =
  if t.makespan_ns <= 0.0 then 0.0
  else float_of_int t.work_items /. (t.makespan_ns /. 1e9)

let pp ppf t =
  Format.fprintf ppf "%s: %.3f ms, %d items, %.3e items/s" t.label
    (t.makespan_ns /. 1e6) t.work_items (throughput_per_s t)
