(** Push-style parallel PageRank (fixed iteration count).

    The push phase performs random writes into the next-rank vector —
    cross-chiplet invalidation traffic when the gang is spread — while the
    normalize phase is a sequential sweep.  This mix is what makes PR
    sensitive to placement in paper Fig. 7. *)

val run :
  Exec_env.t -> Csr.t -> ?iterations:int -> ?damping:float -> unit ->
  float array * Workload_result.t
(** Returns final ranks; [work_items] counts edge updates
    (edges x iterations). *)

val reference : Csr.t -> ?iterations:int -> ?damping:float -> unit -> float array
