(** DimmWitted-style analytics engine driver (paper §5.5, Fig. 11/12).

    Runs the SGD loss and gradient kernels for a given model-replica
    strategy and reports both throughputs in GB/s of virtual time,
    matching how the paper plots Fig. 11. *)

type outcome = {
  strategy : string;
  loss_gbps : float;
  gradient_gbps : float;
  final_loss : float;
  accuracy : float;
}

val run :
  Exec_env.t -> replica:Sgd.replica -> ?epochs:int -> ?grain:int ->
  Dataset.t -> outcome
(** [epochs] gradient passes (default 2) between the initial and final
    loss evaluations; throughputs are averaged over passes. *)

val pp : Format.formatter -> outcome -> unit
