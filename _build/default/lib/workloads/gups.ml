module Sched = Engine.Sched

type params = { table_words : int; updates : int; seed : int }

let default_params = { table_words = 1 lsl 18; updates = 1 lsl 16; seed = 17 }

let run env params =
  if params.table_words <= 0 || params.updates <= 0 then
    invalid_arg "Gups.run: table and update counts must be positive";
  let table = env.Exec_env.alloc_shared ~elt_bytes:8 ~count:params.table_words in
  let workers = Exec_env.n_workers env in
  let per_worker = (params.updates + workers - 1) / workers in
  let makespan =
    env.Exec_env.run (fun ctx ->
        Engine.Par.all_do ctx (fun ctx' w ->
            let rng = Engine.Rng.create (params.seed + w) in
            for i = 0 to per_worker - 1 do
              let idx = Engine.Rng.int rng params.table_words in
              Sched.Ctx.read ctx' table idx;
              Sched.Ctx.write ctx' table idx;
              Sched.Ctx.work ctx' 2.0;
              if i land 255 = 255 then Sched.Ctx.maybe_yield ctx'
            done))
  in
  Workload_result.v ~label:"gups" ~makespan_ns:makespan
    ~work_items:(per_worker * workers)

let gups result =
  Workload_result.throughput_per_s result /. 1e9
