open Chipsim

type t = {
  name : string;
  sched : Engine.Sched.t;
  alloc_shared : elt_bytes:int -> count:int -> Simmem.region;
  run : (Engine.Sched.ctx -> unit) -> float;
}

let machine t = Engine.Sched.machine t.sched
let n_workers t = Engine.Sched.n_workers t.sched
