open Chipsim

type t = {
  n : int;
  m : int;
  row_ptr : int array;
  col : int array;
  weight : int array;
  sim_row : Simmem.region;
  sim_col : Simmem.region;
  sim_weight : Simmem.region;
}

let of_edges ~alloc ~n ~src ~dst ?weights () =
  let m = Array.length src in
  if Array.length dst <> m then invalid_arg "Csr.of_edges: src/dst length mismatch";
  Array.iter
    (fun v -> if v < 0 || v >= n then invalid_arg "Csr.of_edges: vertex out of range")
    src;
  Array.iter
    (fun v -> if v < 0 || v >= n then invalid_arg "Csr.of_edges: vertex out of range")
    dst;
  let weight =
    match weights with
    | Some w ->
        if Array.length w <> m then invalid_arg "Csr.of_edges: weights length mismatch";
        w
    | None -> Array.make m 1
  in
  (* counting sort by source *)
  let row_ptr = Array.make (n + 1) 0 in
  Array.iter (fun u -> row_ptr.(u + 1) <- row_ptr.(u + 1) + 1) src;
  for i = 1 to n do
    row_ptr.(i) <- row_ptr.(i) + row_ptr.(i - 1)
  done;
  let col = Array.make m 0 and wout = Array.make m 0 in
  let cursor = Array.copy row_ptr in
  for e = 0 to m - 1 do
    let u = src.(e) in
    col.(cursor.(u)) <- dst.(e);
    wout.(cursor.(u)) <- weight.(e);
    cursor.(u) <- cursor.(u) + 1
  done;
  {
    n;
    m;
    row_ptr;
    col;
    weight = wout;
    sim_row = alloc ~elt_bytes:8 ~count:(n + 1);
    sim_col = alloc ~elt_bytes:8 ~count:(max m 1);
    sim_weight = alloc ~elt_bytes:8 ~count:(max m 1);
  }

let of_kronecker ~alloc ?(weighted = false) ?(seed = 7) kron =
  let m = Kronecker.num_edges kron in
  let n = Kronecker.num_vertices kron in
  (* symmetrise: each generated edge appears in both directions *)
  let src = Array.make (2 * m) 0 and dst = Array.make (2 * m) 0 in
  Array.blit kron.Kronecker.src 0 src 0 m;
  Array.blit kron.Kronecker.dst 0 dst 0 m;
  Array.blit kron.Kronecker.dst 0 src m m;
  Array.blit kron.Kronecker.src 0 dst m m;
  let weights =
    if weighted then begin
      let rng = Engine.Rng.create seed in
      Some (Array.init (2 * m) (fun _ -> 1 + Engine.Rng.int rng 255))
    end
    else None
  in
  of_edges ~alloc ~n ~src ~dst ?weights ()

let degree t u = t.row_ptr.(u + 1) - t.row_ptr.(u)

let out_neighbors t u f =
  for e = t.row_ptr.(u) to t.row_ptr.(u + 1) - 1 do
    f t.col.(e) t.weight.(e)
  done

let read_adj ctx t u =
  Engine.Sched.Ctx.read ctx t.sim_row u;
  let lo = t.row_ptr.(u) and hi = t.row_ptr.(u + 1) in
  if hi > lo then Engine.Sched.Ctx.read_range ctx t.sim_col ~lo ~hi

let read_vertex ctx region i = Engine.Sched.Ctx.read ctx region i
let write_vertex ctx region i = Engine.Sched.Ctx.write ctx region i

let approx_bytes t = 8 * ((t.n + 1) + t.m + t.m)
