(** Single-source shortest paths: frontier-based parallel Bellman–Ford
    (chaotic relaxation) over the weighted CSR. *)

val run : Exec_env.t -> Csr.t -> source:int -> int array * Workload_result.t
(** Returns distances (max_int if unreachable); [work_items] counts edge
    relaxations attempted. *)

val reference : Csr.t -> source:int -> int array
(** Sequential Dijkstra reference. *)
