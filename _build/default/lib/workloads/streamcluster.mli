(** PARSEC-style streamcluster: online k-median clustering of a point
    stream processed in batches (paper §5.4, Fig. 9 / Tab. 2).

    Each batch runs a parallel assignment phase (every point scans the
    open centers) followed by local-search rounds that evaluate opening a
    candidate point as a new center (a parallel gain reduction touching
    the whole batch).  The data footprint — points plus a hot shared
    center set — is the working-set pattern SHOAL and CHARM contend over
    in the paper. *)

type params = {
  points : int;  (** points per batch x batches = total stream *)
  dims : int;
  batch : int;
  k_max : int;  (** cap on open centers per batch *)
  search_rounds : int;
  seed : int;
}

val default_params : params

type outcome = {
  result : Workload_result.t;
  total_cost : float;  (** sum of point-to-center distances (quality) *)
  centers_opened : int;
}

val run : Exec_env.t -> params -> outcome
(** [work_items] counts point-center distance evaluations. *)
