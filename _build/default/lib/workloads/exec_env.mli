(** Execution environment handed to workloads.

    Abstracts over the runtime system driving the workload (CHARM or any
    baseline): workloads allocate shared data and submit a main task; the
    system's placement/memory policies are already wired into the
    scheduler behind [sched]. *)

open Chipsim

type t = {
  name : string;  (** system name, for reports *)
  sched : Engine.Sched.t;
  alloc_shared : elt_bytes:int -> count:int -> Simmem.region;
  run : (Engine.Sched.ctx -> unit) -> float;
      (** run a main task to completion; returns the makespan (virtual ns) *)
}

val machine : t -> Machine.t
val n_workers : t -> int
