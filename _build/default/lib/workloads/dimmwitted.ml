type outcome = {
  strategy : string;
  loss_gbps : float;
  gradient_gbps : float;
  final_loss : float;
  accuracy : float;
}

let run env ~replica ?(epochs = 2) ?grain data =
  if epochs < 1 then invalid_arg "Dimmwitted.run: epochs must be >= 1";
  let model = Sgd.make_model env ~replica ~features:data.Dataset.features in
  let loss_time = ref 0.0 and loss_bytes = ref 0 in
  let grad_time = ref 0.0 and grad_bytes = ref 0 in
  let final_loss = ref infinity in
  for _ = 1 to epochs do
    let _loss, lres = Sgd.loss_epoch env ?grain model data in
    loss_time := !loss_time +. lres.Workload_result.makespan_ns;
    loss_bytes := !loss_bytes + lres.Workload_result.work_items;
    let gres = Sgd.gradient_epoch env ?grain model data in
    grad_time := !grad_time +. gres.Workload_result.makespan_ns;
    grad_bytes := !grad_bytes + gres.Workload_result.work_items
  done;
  let loss, lres = Sgd.loss_epoch env ?grain model data in
  loss_time := !loss_time +. lres.Workload_result.makespan_ns;
  loss_bytes := !loss_bytes + lres.Workload_result.work_items;
  final_loss := loss;
  {
    strategy = Sgd.replica_to_string replica;
    loss_gbps =
      (if !loss_time > 0.0 then float_of_int !loss_bytes /. !loss_time else 0.0);
    gradient_gbps =
      (if !grad_time > 0.0 then float_of_int !grad_bytes /. !grad_time else 0.0);
    final_loss = !final_loss;
    accuracy = Sgd.predict_accuracy model data;
  }

let pp ppf o =
  Format.fprintf ppf "%s: loss %.2f GB/s, gradient %.2f GB/s, loss=%.4f acc=%.3f"
    o.strategy o.loss_gbps o.gradient_gbps o.final_loss o.accuracy
