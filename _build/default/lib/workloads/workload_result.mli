(** Common result shape for all workloads. *)

type t = {
  label : string;
  makespan_ns : float;
  work_items : int;  (** workload-defined unit (edges, updates, bytes...) *)
}

val v : label:string -> makespan_ns:float -> work_items:int -> t

val throughput_per_s : t -> float
(** work items per virtual second. *)

val pp : Format.formatter -> t -> unit
