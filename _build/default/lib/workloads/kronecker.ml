type t = { scale : int; edge_factor : int; src : int array; dst : int array }

(* Standard Graph500 R-MAT parameters. *)
let pa = 0.57
let pb = 0.19
let pc = 0.19

let generate ?(seed = 42) ?(edge_factor = 16) ~scale () =
  if scale < 1 then invalid_arg "Kronecker.generate: scale must be >= 1";
  if edge_factor < 1 then invalid_arg "Kronecker.generate: edge_factor must be >= 1";
  let n = 1 lsl scale in
  let m = edge_factor * n in
  let rng = Engine.Rng.create seed in
  let src = Array.make m 0 and dst = Array.make m 0 in
  let gen_edge () =
    let u = ref 0 and v = ref 0 in
    for _bit = 0 to scale - 1 do
      let r = Engine.Rng.float rng 1.0 in
      let iu, iv =
        if r < pa then (0, 0)
        else if r < pa +. pb then (0, 1)
        else if r < pa +. pb +. pc then (1, 0)
        else (1, 1)
      in
      u := (!u lsl 1) lor iu;
      v := (!v lsl 1) lor iv
    done;
    (!u, !v)
  in
  let i = ref 0 in
  while !i < m do
    let u, v = gen_edge () in
    if u <> v then begin
      src.(!i) <- u;
      dst.(!i) <- v;
      incr i
    end
  done;
  (* Graph500 permutes vertex labels to break generator locality. *)
  let perm = Array.init n (fun j -> j) in
  Engine.Rng.shuffle rng perm;
  for j = 0 to m - 1 do
    src.(j) <- perm.(src.(j));
    dst.(j) <- perm.(dst.(j))
  done;
  { scale; edge_factor; src; dst }

let num_vertices t = 1 lsl t.scale
let num_edges t = Array.length t.src
