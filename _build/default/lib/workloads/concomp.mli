(** Connected components by parallel label propagation. *)

val run : Exec_env.t -> Csr.t -> int array * Workload_result.t
(** Returns the component label of every vertex (the minimum vertex id in
    its component); [work_items] counts edge inspections. *)

val reference : Csr.t -> int array
(** Sequential union-find reference. *)
