open Chipsim

type t = {
  samples : int;
  features : int;
  rows : float array;
  labels : float array;
  sim_rows : Simmem.region;
  sim_labels : Simmem.region;
}

let generate ~alloc ?(seed = 3) ~samples ~features () =
  if samples <= 0 || features <= 0 then
    invalid_arg "Dataset.generate: dimensions must be positive";
  let rng = Engine.Rng.create seed in
  let truth = Array.init features (fun _ -> Engine.Rng.float rng 2.0 -. 1.0) in
  let rows = Array.make (samples * features) 0.0 in
  let labels = Array.make samples 0.0 in
  for s = 0 to samples - 1 do
    let dot = ref 0.0 in
    for f = 0 to features - 1 do
      let v = Engine.Rng.float rng 2.0 -. 1.0 in
      rows.((s * features) + f) <- v;
      dot := !dot +. (v *. truth.(f))
    done;
    let noisy = !dot +. (Engine.Rng.float rng 0.2 -. 0.1) in
    labels.(s) <- (if noisy >= 0.0 then 1.0 else -1.0)
  done;
  {
    samples;
    features;
    rows;
    labels;
    sim_rows = alloc ~elt_bytes:4 ~count:(samples * features);
    sim_labels = alloc ~elt_bytes:4 ~count:samples;
  }

let bytes t = 4 * t.samples * t.features
let row_offset t s = s * t.features
