type params = { scale : int; edge_factor : int; roots : int; seed : int }

let default_params = { scale = 14; edge_factor = 16; roots = 4; seed = 99 }

let run env g params =
  if params.roots <= 0 then invalid_arg "Graph500.run: roots must be positive";
  let rng = Engine.Rng.create params.seed in
  let makespan = ref 0.0 in
  let edges = ref 0 in
  for _ = 1 to params.roots do
    (* pick a root with non-zero degree, as Graph500 mandates *)
    let rec pick tries =
      let v = Engine.Rng.int rng g.Csr.n in
      if Csr.degree g v > 0 || tries > 100 then v else pick (tries + 1)
    in
    let source = pick 0 in
    let _levels, result = Bfs.run env g ~source in
    makespan := !makespan +. result.Workload_result.makespan_ns;
    edges := !edges + result.Workload_result.work_items
  done;
  Workload_result.v ~label:"graph500" ~makespan_ns:!makespan ~work_items:!edges

let teps result = Workload_result.throughput_per_s result
