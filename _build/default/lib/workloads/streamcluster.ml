module Sched = Engine.Sched

type params = {
  points : int;
  dims : int;
  batch : int;
  k_max : int;
  search_rounds : int;
  seed : int;
}

let default_params =
  { points = 4096; dims = 32; batch = 1024; k_max = 20; search_rounds = 4; seed = 5 }

type outcome = {
  result : Workload_result.t;
  total_cost : float;
  centers_opened : int;
}

let flop_ns_per_dim = 2.0

let sq_dist data dims a b =
  let acc = ref 0.0 in
  for d = 0 to dims - 1 do
    let diff = data.((a * dims) + d) -. data.((b * dims) + d) in
    acc := !acc +. (diff *. diff)
  done;
  !acc

let run env params =
  if params.batch <= 0 || params.points < params.batch then
    invalid_arg "Streamcluster.run: need at least one full batch";
  let dims = params.dims in
  let data =
    let rng = Engine.Rng.create params.seed in
    Array.init (params.points * dims) (fun _ -> Engine.Rng.float rng 100.0)
  in
  let sim_points = env.Exec_env.alloc_shared ~elt_bytes:4 ~count:(params.points * dims) in
  (* center list: indices of points promoted to centers (shared, written) *)
  let sim_centers = env.Exec_env.alloc_shared ~elt_bytes:8 ~count:params.k_max in
  let sim_assign = env.Exec_env.alloc_shared ~elt_bytes:8 ~count:params.points in
  let assign = Array.make params.points 0 in
  let cost = Array.make params.points 0.0 in
  let evals = ref 0 in
  let opened_total = ref 0 in
  let total_cost = ref 0.0 in
  let rng = Engine.Rng.create (params.seed + 1) in
  let makespan =
    env.Exec_env.run (fun ctx ->
        let batches = params.points / params.batch in
        for b = 0 to batches - 1 do
          let base = b * params.batch in
          let centers = ref [ base ] in
          (* read a point row and one center row, compute the distance *)
          let charged_dist ctx' p c =
            Sched.Ctx.read_range ctx' sim_points ~lo:(p * dims) ~hi:((p + 1) * dims);
            Sched.Ctx.read_range ctx' sim_points ~lo:(c * dims) ~hi:((c + 1) * dims);
            Sched.Ctx.work ctx' (flop_ns_per_dim *. float_of_int dims);
            incr evals;
            sq_dist data dims p c
          in
          let assign_phase () =
            Engine.Par.parallel_for ctx ~lo:base ~hi:(base + params.batch)
              (fun ctx' lo hi ->
                let cs = !centers in
                for p = lo to hi - 1 do
                  Sched.Ctx.read ctx' sim_centers 0;
                  let best_c = ref (List.hd cs) and best_d = ref infinity in
                  List.iter
                    (fun c ->
                      let d = charged_dist ctx' p c in
                      if d < !best_d then begin
                        best_d := d;
                        best_c := c
                      end)
                    cs;
                  assign.(p) <- !best_c;
                  cost.(p) <- !best_d;
                  Sched.Ctx.write ctx' sim_assign p;
                  Sched.Ctx.maybe_yield ctx'
                done)
          in
          assign_phase ();
          (* local search: try opening random candidates *)
          for _round = 1 to params.search_rounds do
            if List.length !centers < params.k_max then begin
              let candidate = base + Engine.Rng.int rng params.batch in
              if not (List.mem candidate !centers) then begin
                let gain = ref 0.0 in
                Engine.Par.parallel_for ctx ~lo:base ~hi:(base + params.batch)
                  (fun ctx' lo hi ->
                    let local_gain = ref 0.0 in
                    for p = lo to hi - 1 do
                      let d = charged_dist ctx' p candidate in
                      Sched.Ctx.read ctx' sim_assign p;
                      if d < cost.(p) then local_gain := !local_gain +. (cost.(p) -. d);
                      Sched.Ctx.maybe_yield ctx'
                    done;
                    gain := !gain +. !local_gain);
                (* opening cost: proportional to current center count *)
                let open_cost = 50.0 *. float_of_int (List.length !centers) in
                if !gain > open_cost then begin
                  centers := candidate :: !centers;
                  incr opened_total;
                  Sched.Ctx.write ctx sim_centers (List.length !centers - 1);
                  (* reassign with the new center *)
                  Engine.Par.parallel_for ctx ~lo:base ~hi:(base + params.batch)
                    (fun ctx' lo hi ->
                      for p = lo to hi - 1 do
                        let d = charged_dist ctx' p candidate in
                        if d < cost.(p) then begin
                          cost.(p) <- d;
                          assign.(p) <- candidate;
                          Sched.Ctx.write ctx' sim_assign p
                        end;
                        Sched.Ctx.maybe_yield ctx'
                      done)
                end
              end
            end
          done;
          for p = base to base + params.batch - 1 do
            total_cost := !total_cost +. cost.(p)
          done
        done)
  in
  {
    result =
      Workload_result.v ~label:"streamcluster" ~makespan_ns:makespan
        ~work_items:!evals;
    total_cost = !total_cost;
    centers_opened = !opened_total;
  }
