(** Graph500-style Kronecker (R-MAT) edge-list generator.

    The paper's graph inputs are Kronecker graphs with 2^24 vertices and
    16 x 2^24 edges; the same generator here is run at configurable scale.
    Self-loops are dropped; duplicate edges are kept (as Graph500 does
    before its optional dedup). *)

type t = {
  scale : int;  (** vertices = 2^scale *)
  edge_factor : int;
  src : int array;
  dst : int array;
}

val generate : ?seed:int -> ?edge_factor:int -> scale:int -> unit -> t
(** @raise Invalid_argument if [scale < 1] or [edge_factor < 1]. *)

val num_vertices : t -> int
val num_edges : t -> int
