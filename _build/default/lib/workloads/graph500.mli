(** Graph500-style benchmark: Kronecker generation + BFS from several
    random roots, reported in traversed edges per second (TEPS). *)

type params = { scale : int; edge_factor : int; roots : int; seed : int }

val default_params : params

val run : Exec_env.t -> Csr.t -> params -> Workload_result.t
(** Runs [roots] BFS searches over a pre-built graph; [work_items] is the
    total number of traversed edges. *)

val teps : Workload_result.t -> float
