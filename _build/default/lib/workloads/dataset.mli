(** Dense synthetic dataset for logistic-regression SGD (paper §5.5:
    10,000 samples x 8,192 features; run here at configurable scale).
    Labels follow a random ground-truth hyperplane plus noise so that SGD
    measurably converges (used by correctness tests). *)

open Chipsim

type t = {
  samples : int;
  features : int;
  rows : float array;  (** row-major, samples x features *)
  labels : float array;  (** +1.0 / -1.0 *)
  sim_rows : Simmem.region;  (** 4 B per value, as float32 on the wire *)
  sim_labels : Simmem.region;
}

val generate :
  alloc:(elt_bytes:int -> count:int -> Simmem.region) ->
  ?seed:int -> samples:int -> features:int -> unit -> t

val bytes : t -> int
(** Simulated payload size of the sample matrix. *)

val row_offset : t -> int -> int
(** Element index of the first value of a sample row. *)
