(** Stochastic gradient descent for logistic regression over {!Dataset},
    with DimmWitted's model-replica strategies (Zhang & Ré, VLDB'14):
    one model per core, per NUMA node, or per machine.

    The two measured kernels match paper Fig. 11: the {e loss} evaluation
    (read-only over data + model) and the {e gradient} step (reads data,
    writes the replica — the write pattern is what differentiates the
    strategies on chiplets). *)

open Chipsim

type replica = Per_core | Per_node | Per_machine

val replica_to_string : replica -> string

type model = {
  replica : replica;
  weights : float array array;  (** one copy per replica *)
  sim_weights : Simmem.region array;
  owner_of_worker : int -> int;  (** worker id -> replica index *)
}

val make_model :
  Exec_env.t -> replica:replica -> features:int -> model

val loss_epoch :
  Exec_env.t -> ?grain:int -> model -> Dataset.t -> float * Workload_result.t
(** One full pass computing the logistic loss; returns (loss, result) with
    [work_items] = bytes of sample data streamed. *)

val gradient_epoch :
  Exec_env.t -> ?learning_rate:float -> ?grain:int -> model -> Dataset.t ->
  Workload_result.t
(** One full SGD pass updating the replicas (averaged into replica 0 at
    the end, as DimmWitted's model averaging does).  [grain] is the chunk
    size in samples: DimmWitted's native engine uses one coarse chunk per
    core, CHARM uses fine chunks. *)

val predict_accuracy : model -> Dataset.t -> float
(** Fraction of samples classified correctly by replica 0. *)
