(** Level-synchronous parallel breadth-first search (paper benchmark
    suite).  Tasks are generated dynamically per frontier chunk — the
    paper's "tasks per active frontier node" decomposition. *)

val run :
  Exec_env.t -> Csr.t -> source:int -> int array * Workload_result.t
(** Returns the level of every vertex (-1 if unreached) and the result;
    [work_items] counts traversed edges. *)

val reference : Csr.t -> source:int -> int array
(** Sequential reference implementation (for correctness tests). *)
