open Chipsim
module Sched = Engine.Sched

type replica = Per_core | Per_node | Per_machine

let replica_to_string = function
  | Per_core -> "per-core"
  | Per_node -> "per-node"
  | Per_machine -> "per-machine"

type model = {
  replica : replica;
  weights : float array array;
  sim_weights : Simmem.region array;
  owner_of_worker : int -> int;
}

let flop_ns_per_feature = 0.5
let sigmoid_ns = 5.0

let make_model env ~replica ~features =
  let machine = Exec_env.machine env in
  let topo = Machine.topology machine in
  let sched = env.Exec_env.sched in
  let copies =
    match replica with
    | Per_core -> Exec_env.n_workers env
    | Per_node -> topo.Topology.sockets
    | Per_machine -> 1
  in
  let owner_of_worker w =
    match replica with
    | Per_core -> w
    | Per_node -> Topology.socket_of_core topo (Sched.worker_core sched w)
    | Per_machine -> 0
  in
  {
    replica;
    weights = Array.init copies (fun _ -> Array.make features 0.0);
    sim_weights =
      Array.init copies (fun _ ->
          env.Exec_env.alloc_shared ~elt_bytes:4 ~count:features);
    owner_of_worker;
  }

let dot weights rows off features =
  let acc = ref 0.0 in
  for f = 0 to features - 1 do
    acc := !acc +. (weights.(f) *. rows.(off + f))
  done;
  !acc

let sigmoid z = 1.0 /. (1.0 +. exp (-.z))

let charge_sample ctx model data ~replica_idx ~sample ~write_model =
  let features = data.Dataset.features in
  let off = Dataset.row_offset data sample in
  Sched.Ctx.read_range ctx data.Dataset.sim_rows ~lo:off ~hi:(off + features);
  Sched.Ctx.read ctx data.Dataset.sim_labels sample;
  let w_region = model.sim_weights.(replica_idx) in
  Sched.Ctx.read_range ctx w_region ~lo:0 ~hi:features;
  if write_model then Sched.Ctx.write_range ctx w_region ~lo:0 ~hi:features;
  Sched.Ctx.work ctx ((flop_ns_per_feature *. float_of_int features) +. sigmoid_ns)

let loss_epoch env ?grain model data =
  let features = data.Dataset.features in
  let total_loss = ref 0.0 in
  let makespan =
    env.Exec_env.run (fun ctx ->
        Engine.Par.parallel_for ctx ~lo:0 ~hi:data.Dataset.samples ?grain
          (fun ctx' lo hi ->
            let worker = Sched.Ctx.worker_id ctx' in
            let replica_idx = model.owner_of_worker worker in
            let weights = model.weights.(replica_idx) in
            let local = ref 0.0 in
            for s = lo to hi - 1 do
              charge_sample ctx' model data ~replica_idx ~sample:s
                ~write_model:false;
              let z = dot weights data.Dataset.rows (Dataset.row_offset data s) features in
              let y = data.Dataset.labels.(s) in
              let p = sigmoid (y *. z) in
              local := !local -. log (Float.max p 1e-12);
              Sched.Ctx.maybe_yield ctx'
            done;
            total_loss := !total_loss +. !local))
  in
  ( !total_loss /. float_of_int data.Dataset.samples,
    Workload_result.v ~label:"sgd-loss" ~makespan_ns:makespan
      ~work_items:(Dataset.bytes data) )

let gradient_epoch env ?(learning_rate = 0.05) ?grain model data =
  let features = data.Dataset.features in
  let makespan =
    env.Exec_env.run (fun ctx ->
        Engine.Par.parallel_for ctx ~lo:0 ~hi:data.Dataset.samples ?grain
          (fun ctx' lo hi ->
            let worker = Sched.Ctx.worker_id ctx' in
            let replica_idx = model.owner_of_worker worker in
            let weights = model.weights.(replica_idx) in
            for s = lo to hi - 1 do
              charge_sample ctx' model data ~replica_idx ~sample:s
                ~write_model:true;
              let off = Dataset.row_offset data s in
              let z = dot weights data.Dataset.rows off features in
              let y = data.Dataset.labels.(s) in
              (* d/dw of -log sigmoid(y z) = -y x sigmoid(-y z) *)
              let g = -.y *. sigmoid (-.y *. z) in
              for f = 0 to features - 1 do
                weights.(f) <-
                  weights.(f) -. (learning_rate *. g *. data.Dataset.rows.(off + f))
              done;
              Sched.Ctx.maybe_yield ctx'
            done))
  in
  (* model averaging across replicas (DimmWitted's reconciliation) *)
  let copies = Array.length model.weights in
  if copies > 1 then begin
    let avg = Array.make features 0.0 in
    Array.iter
      (fun w ->
        for f = 0 to features - 1 do
          avg.(f) <- avg.(f) +. w.(f)
        done)
      model.weights;
    for f = 0 to features - 1 do
      avg.(f) <- avg.(f) /. float_of_int copies
    done;
    Array.iter (fun w -> Array.blit avg 0 w 0 features) model.weights
  end;
  Workload_result.v ~label:"sgd-gradient" ~makespan_ns:makespan
    ~work_items:(Dataset.bytes data)

let predict_accuracy model data =
  let features = data.Dataset.features in
  let weights = model.weights.(0) in
  let correct = ref 0 in
  for s = 0 to data.Dataset.samples - 1 do
    let z = dot weights data.Dataset.rows (Dataset.row_offset data s) features in
    let predicted = if z >= 0.0 then 1.0 else -1.0 in
    if predicted = data.Dataset.labels.(s) then incr correct
  done;
  float_of_int !correct /. float_of_int data.Dataset.samples
