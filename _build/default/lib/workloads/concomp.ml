module Sched = Engine.Sched

let max_iterations = 64
let compute_ns_per_edge = 1.0

let reference g =
  let n = g.Csr.n in
  let parent = Array.init n (fun i -> i) in
  let rec find x = if parent.(x) = x then x else (parent.(x) <- find parent.(x); parent.(x)) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then if ra < rb then parent.(rb) <- ra else parent.(ra) <- rb
  in
  for u = 0 to n - 1 do
    Csr.out_neighbors g u (fun v _w -> union u v)
  done;
  Array.init n find

let run env g =
  let n = g.Csr.n in
  let sim_label = env.Exec_env.alloc_shared ~elt_bytes:8 ~count:n in
  let label = Array.init n (fun i -> i) in
  let work = ref 0 in
  let makespan =
    env.Exec_env.run (fun ctx ->
        let changed = ref true in
        let iter = ref 0 in
        while !changed && !iter < max_iterations do
          changed := false;
          incr iter;
          Engine.Par.parallel_for ctx ~lo:0 ~hi:n (fun ctx' lo hi ->
              let local_edges = ref 0 in
              let local_changed = ref false in
              for u = lo to hi - 1 do
                if Csr.degree g u > 0 then begin
                  Csr.read_adj ctx' g u;
                  Sched.Ctx.read ctx' sim_label u;
                  let lu = label.(u) in
                  Csr.out_neighbors g u (fun v _w ->
                      incr local_edges;
                      Sched.Ctx.read ctx' sim_label v;
                      if label.(v) > lu then begin
                        label.(v) <- lu;
                        Sched.Ctx.write ctx' sim_label v;
                        local_changed := true
                      end
                      else if label.(v) < lu && label.(v) < label.(u) then begin
                        label.(u) <- label.(v);
                        Sched.Ctx.write ctx' sim_label u;
                        local_changed := true
                      end)
                end;
                Sched.Ctx.maybe_yield ctx'
              done;
              Sched.Ctx.work ctx' (compute_ns_per_edge *. float_of_int !local_edges);
              work := !work + !local_edges;
              if !local_changed then changed := true)
        done)
  in
  (label, Workload_result.v ~label:"cc" ~makespan_ns:makespan ~work_items:!work)
