module Sched = Engine.Sched

let compute_ns_per_edge = 1.2

let reference g ~source =
  let n = g.Csr.n in
  let dist = Array.make n max_int in
  dist.(source) <- 0;
  let module Pq = Set.Make (struct
    type t = int * int  (* dist, vertex *)

    let compare = compare
  end) in
  let pq = ref (Pq.singleton (0, source)) in
  while not (Pq.is_empty !pq) do
    let ((d, u) as min_elt) = Pq.min_elt !pq in
    pq := Pq.remove min_elt !pq;
    if d = dist.(u) then
      Csr.out_neighbors g u (fun v w ->
          if d + w < dist.(v) then begin
            dist.(v) <- d + w;
            pq := Pq.add (dist.(v), v) !pq
          end)
  done;
  dist

let run env g ~source =
  let n = g.Csr.n in
  let sim_dist = env.Exec_env.alloc_shared ~elt_bytes:8 ~count:n in
  let dist = Array.make n max_int in
  let work = ref 0 in
  let makespan =
    env.Exec_env.run (fun ctx ->
        dist.(source) <- 0;
        Sched.Ctx.write ctx sim_dist source;
        let frontier = ref [| source |] in
        while Array.length !frontier > 0 do
          let fr = !frontier in
          let workers = Sched.n_workers (Sched.Ctx.sched ctx) in
          let grain = max 16 (Array.length fr / (4 * workers)) in
          let buffers = ref [] in
          Engine.Par.parallel_for ctx ~lo:0 ~hi:(Array.length fr) ~grain
            (fun ctx' lo hi ->
              let local = ref [] in
              let local_edges = ref 0 in
              for i = lo to hi - 1 do
                let u = fr.(i) in
                Csr.read_adj ctx' g u;
                Sched.Ctx.read ctx' sim_dist u;
                let du = dist.(u) in
                Csr.out_neighbors g u (fun v w ->
                    incr local_edges;
                    Sched.Ctx.read ctx' sim_dist v;
                    if du <> max_int && du + w < dist.(v) then begin
                      dist.(v) <- du + w;
                      Sched.Ctx.write ctx' sim_dist v;
                      local := v :: !local
                    end);
                Sched.Ctx.maybe_yield ctx'
              done;
              Sched.Ctx.work ctx' (compute_ns_per_edge *. float_of_int !local_edges);
              work := !work + !local_edges;
              buffers := !local :: !buffers);
          (* dedup the next frontier *)
          let seen = Hashtbl.create 64 in
          let next =
            List.concat !buffers
            |> List.filter (fun v ->
                   if Hashtbl.mem seen v then false
                   else begin
                     Hashtbl.add seen v ();
                     true
                   end)
          in
          frontier := Array.of_list next
        done)
  in
  (dist, Workload_result.v ~label:"sssp" ~makespan_ns:makespan ~work_items:!work)
