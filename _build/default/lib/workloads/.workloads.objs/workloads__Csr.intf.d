lib/workloads/csr.mli: Chipsim Engine Kronecker Simmem
