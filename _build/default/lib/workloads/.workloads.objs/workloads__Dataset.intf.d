lib/workloads/dataset.mli: Chipsim Simmem
