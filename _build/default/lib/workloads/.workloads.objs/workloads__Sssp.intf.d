lib/workloads/sssp.mli: Csr Exec_env Workload_result
