lib/workloads/streamcluster.ml: Array Engine Exec_env List Workload_result
