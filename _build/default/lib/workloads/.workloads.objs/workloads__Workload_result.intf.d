lib/workloads/workload_result.mli: Format
