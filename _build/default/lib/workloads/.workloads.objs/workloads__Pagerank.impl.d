lib/workloads/pagerank.ml: Array Csr Engine Exec_env Workload_result
