lib/workloads/csr.ml: Array Chipsim Engine Kronecker Simmem
