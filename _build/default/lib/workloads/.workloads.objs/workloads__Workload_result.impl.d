lib/workloads/workload_result.ml: Format
