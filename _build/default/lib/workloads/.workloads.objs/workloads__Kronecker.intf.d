lib/workloads/kronecker.mli:
