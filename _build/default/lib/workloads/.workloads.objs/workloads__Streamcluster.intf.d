lib/workloads/streamcluster.mli: Exec_env Workload_result
