lib/workloads/concomp.mli: Csr Exec_env Workload_result
