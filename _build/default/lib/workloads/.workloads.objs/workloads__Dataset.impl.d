lib/workloads/dataset.ml: Array Chipsim Engine Simmem
