lib/workloads/bfs.ml: Array Csr Engine Exec_env List Queue Workload_result
