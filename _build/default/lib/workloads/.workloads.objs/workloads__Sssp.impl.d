lib/workloads/sssp.ml: Array Csr Engine Exec_env Hashtbl List Set Workload_result
