lib/workloads/sgd.ml: Array Chipsim Dataset Engine Exec_env Float Machine Simmem Topology Workload_result
