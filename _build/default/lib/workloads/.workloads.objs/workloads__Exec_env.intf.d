lib/workloads/exec_env.mli: Chipsim Engine Machine Simmem
