lib/workloads/bfs.mli: Csr Exec_env Workload_result
