lib/workloads/gups.ml: Engine Exec_env Workload_result
