lib/workloads/sgd.mli: Chipsim Dataset Exec_env Simmem Workload_result
