lib/workloads/graph500.mli: Csr Exec_env Workload_result
