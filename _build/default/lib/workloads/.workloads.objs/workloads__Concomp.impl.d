lib/workloads/concomp.ml: Array Csr Engine Exec_env Workload_result
