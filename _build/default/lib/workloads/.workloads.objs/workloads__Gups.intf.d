lib/workloads/gups.mli: Exec_env Workload_result
