lib/workloads/dimmwitted.mli: Dataset Exec_env Format Sgd
