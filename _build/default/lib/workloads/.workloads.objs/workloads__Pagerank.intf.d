lib/workloads/pagerank.mli: Csr Exec_env Workload_result
