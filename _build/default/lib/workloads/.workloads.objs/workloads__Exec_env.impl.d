lib/workloads/exec_env.ml: Chipsim Engine Simmem
