lib/workloads/dimmwitted.ml: Dataset Format Sgd Workload_result
