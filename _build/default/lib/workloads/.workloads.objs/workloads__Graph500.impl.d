lib/workloads/graph500.ml: Bfs Csr Engine Workload_result
