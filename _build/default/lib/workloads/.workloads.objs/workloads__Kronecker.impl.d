lib/workloads/kronecker.ml: Array Engine
