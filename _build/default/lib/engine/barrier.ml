open Chipsim

type t = {
  parties : int;
  mutable arrived : (Sched.task * int * float) list;  (* task, core, arrival *)
  mutable generation : int;
}

let create n =
  if n <= 0 then invalid_arg "Barrier.create: parties must be positive";
  { parties = n; arrived = []; generation = 0 }

let parties t = t.parties
let waiting t = List.length t.arrived

let log2_ceil n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  go 0 1

let release_cost machine cores ~releaser_core =
  let topo = Machine.topology machine in
  let profile = Machine.profile machine in
  let max_dist =
    List.fold_left
      (fun acc c -> Float.max acc (Latency.core_to_core_ns ~profile topo releaser_core c))
      0.0 cores
  in
  2.0 *. max_dist *. float_of_int (log2_ceil (List.length cores + 1))

let wait ctx t =
  let sched = Sched.Ctx.sched ctx in
  let machine = Sched.Ctx.machine ctx in
  let my_core = Sched.Ctx.core ctx in
  let now = Sched.Ctx.now ctx in
  if List.length t.arrived + 1 < t.parties then
    Sched.Ctx.suspend ctx (fun task ->
        t.arrived <- (task, my_core, now) :: t.arrived)
  else begin
    (* last arrival: release everyone *)
    let waiters = t.arrived in
    t.arrived <- [];
    t.generation <- t.generation + 1;
    let cores = my_core :: List.map (fun (_, c, _) -> c) waiters in
    let latest =
      List.fold_left (fun acc (_, _, at) -> Float.max acc at) now waiters
    in
    let cost = release_cost machine cores ~releaser_core:my_core in
    let release_at = latest +. cost in
    List.iter (fun (task, _, _) -> Sched.ready sched ~at:release_at task) waiters;
    (* the releaser also pays the synchronization cost *)
    Sched.Ctx.work ctx (release_at -. now)
  end
