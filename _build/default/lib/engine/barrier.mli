(** Task-level barrier across chiplets (paper §4.1: "barrier synchronization
    mechanisms coordinate task execution across multiple chiplets").

    The release cost models a tree barrier: every participant pays
    [2 * max-core-distance * ceil(log2 n)] from the latest arrival, so
    barriers among cores spread across chiplets/sockets cost more than
    barriers within a chiplet — the effect the Fig. 5 microbenchmark
    measures. *)

type t

val create : int -> t
(** Barrier for [n] participants.  @raise Invalid_argument if [n <= 0]. *)

val parties : t -> int
val waiting : t -> int

val wait : Sched.ctx -> t -> unit
(** Block the calling task until [n] tasks have arrived; the barrier then
    resets for reuse (cyclic). *)
