(** Per-core work-stealing deque (Chase–Lev discipline).

    The owner pushes and pops at the bottom (LIFO, for locality); thieves
    steal from the top (FIFO, taking the coldest task).  The simulation is
    single-threaded, so no atomics are needed — the cost of the real
    lock-free operations is charged in virtual time by the scheduler. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit
(** Owner: push at the bottom. *)

val pop : 'a t -> 'a option
(** Owner: pop the most recently pushed element. *)

val pop_front : 'a t -> 'a option
(** Owner: pop the oldest element (FIFO service order). *)

val steal : 'a t -> 'a option
(** Thief: take the oldest element. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
val to_list : 'a t -> 'a list
(** Oldest first; for draining on migration. *)
