type outcome = Yielded | Suspended | Finished

type t = { cid : int; mutable state : state; mutable last : outcome }

and state =
  | Created of (unit -> unit)
  | Parked of (unit, unit) Effect.Deep.continuation
  | Running
  | Finished_

type _ Effect.t +=
  | Yield : unit Effect.t
  | Suspend : (t -> unit) -> unit Effect.t

let counter = ref 0

let create f =
  incr counter;
  { cid = !counter; state = Created f; last = Finished }

let id t = t.cid
let is_done t = t.state = Finished_

let is_parked t =
  match t.state with Created _ | Parked _ -> true | Running | Finished_ -> false

let yield () = Effect.perform Yield
let suspend register = Effect.perform (Suspend register)

(* The deep handler is installed once, at the first resume; it must write
   through the coroutine record (not a per-resume cell) because it stays in
   scope for every later [continue]. *)
let handler t : (unit, unit) Effect.Deep.handler =
  {
    retc =
      (fun () ->
        t.state <- Finished_;
        t.last <- Finished);
    exnc =
      (fun e ->
        t.state <- Finished_;
        t.last <- Finished;
        raise e);
    effc =
      (fun (type c) (eff : c Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (c, unit) Effect.Deep.continuation) ->
                t.state <- Parked k;
                t.last <- Yielded)
        | Suspend register ->
            Some
              (fun (k : (c, unit) Effect.Deep.continuation) ->
                t.state <- Parked k;
                t.last <- Suspended;
                register t)
        | _ -> None);
  }

let resume t =
  match t.state with
  | Created f ->
      t.state <- Running;
      Effect.Deep.match_with f () (handler t);
      t.last
  | Parked k ->
      t.state <- Running;
      Effect.Deep.continue k ();
      t.last
  | Running -> invalid_arg "Coroutine.resume: already running"
  | Finished_ -> invalid_arg "Coroutine.resume: already finished"
