(** Execution tracing: per-worker timelines of task quanta, migrations and
    policy events in Chrome trace-event JSON (load in
    [chrome://tracing] / Perfetto).

    This is the observability side of the paper's profiler: where the PMU
    counters say {e what} was served from where, the trace shows {e when}
    each worker ran which task on which core. *)

type t

val create : unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** Event recording (no-ops when disabled). *)

val task_quantum :
  t -> worker:int -> core:int -> task_id:int -> start_ns:float -> end_ns:float -> unit

val migration : t -> worker:int -> from_core:int -> to_core:int -> at_ns:float -> unit
val policy_decision : t -> worker:int -> spread:int -> at_ns:float -> unit
val instant : t -> name:string -> at_ns:float -> unit

val num_events : t -> int
val clear : t -> unit

val to_chrome_json : t -> string
(** The complete trace as a Chrome trace-event JSON array.  Durations are
    microseconds of virtual time, one row ("pid 0, tid = worker") per
    worker. *)

val hook : t -> Sched.t -> hooks:Sched.hooks -> Sched.hooks
(** Wrap scheduler hooks so every quantum end records the executing
    worker's position (cheap coarse tracing without engine changes). *)
