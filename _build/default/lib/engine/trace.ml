type event =
  | Quantum of { worker : int; core : int; task_id : int; start_ns : float; end_ns : float }
  | Migration of { worker : int; from_core : int; to_core : int; at_ns : float }
  | Policy of { worker : int; spread : int; at_ns : float }
  | Instant of { name : string; at_ns : float }

type t = { mutable events : event list; mutable count : int; mutable on : bool }

let create () = { events = []; count = 0; on = true }
let enabled t = t.on
let set_enabled t on = t.on <- on

let push t e =
  if t.on then begin
    t.events <- e :: t.events;
    t.count <- t.count + 1
  end

let task_quantum t ~worker ~core ~task_id ~start_ns ~end_ns =
  push t (Quantum { worker; core; task_id; start_ns; end_ns })

let migration t ~worker ~from_core ~to_core ~at_ns =
  push t (Migration { worker; from_core; to_core; at_ns })

let policy_decision t ~worker ~spread ~at_ns =
  push t (Policy { worker; spread; at_ns })

let instant t ~name ~at_ns = push t (Instant { name; at_ns })
let num_events t = t.count

let clear t =
  t.events <- [];
  t.count <- 0

let us ns = ns /. 1000.0

let event_json = function
  | Quantum { worker; core; task_id; start_ns; end_ns } ->
      Printf.sprintf
        {|{"name":"task %d","cat":"quantum","ph":"X","ts":%.3f,"dur":%.3f,"pid":0,"tid":%d,"args":{"core":%d}}|}
        task_id (us start_ns)
        (us (Float.max 0.0 (end_ns -. start_ns)))
        worker core
  | Migration { worker; from_core; to_core; at_ns } ->
      Printf.sprintf
        {|{"name":"migrate %d->%d","cat":"migration","ph":"i","ts":%.3f,"pid":0,"tid":%d,"s":"t"}|}
        from_core to_core (us at_ns) worker
  | Policy { worker; spread; at_ns } ->
      Printf.sprintf
        {|{"name":"spread=%d","cat":"policy","ph":"i","ts":%.3f,"pid":0,"tid":%d,"s":"t"}|}
        spread (us at_ns) worker
  | Instant { name; at_ns } ->
      Printf.sprintf
        {|{"name":"%s","cat":"marker","ph":"i","ts":%.3f,"pid":0,"tid":0,"s":"g"}|}
        name (us at_ns)

let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[";
  let first = ref true in
  List.iter
    (fun e ->
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf (event_json e))
    (List.rev t.events);
  Buffer.add_string buf "]";
  Buffer.contents buf

let hook t sched ~hooks =
  let last_end = Array.make (Sched.n_workers sched) 0.0 in
  {
    hooks with
    Sched.on_quantum_end =
      (fun s worker ->
        let now = Sched.worker_clock s worker in
        task_quantum t ~worker
          ~core:(Sched.worker_core s worker)
          ~task_id:(-1) ~start_ns:last_end.(worker) ~end_ns:now;
        last_end.(worker) <- now;
        hooks.Sched.on_quantum_end s worker);
  }
