(** Lightweight coroutines built on OCaml 5 effect handlers.

    Each coroutine owns its execution state (an effect continuation — the
    moral equivalent of an individual stack) and can suspend at
    developer-defined points, exactly the concurrency model of paper §4.4:
    user-level-thread state management with coroutine-style voluntary
    yielding. *)

type t

type outcome =
  | Yielded  (** performed {!yield}; wants to be rescheduled *)
  | Suspended  (** performed {!suspend}; someone else must wake it *)
  | Finished

val create : (unit -> unit) -> t
(** A coroutine that will run the thunk when first resumed. *)

val id : t -> int
val resume : t -> outcome
(** Run (or continue) the coroutine until it yields, suspends or returns.
    @raise Invalid_argument if it is not in a resumable state. *)

val is_done : t -> bool
val is_parked : t -> bool
(** True after [Yielded] or [Suspended], until the next {!resume}. *)

val yield : unit -> unit
(** Within a coroutine: suspend, asking to be rescheduled immediately.
    @raise Effect.Unhandled if called outside a coroutine. *)

val suspend : (t -> unit) -> unit
(** [suspend register] parks the running coroutine and hands it to
    [register] (which typically stores it on a wait list).  Returns when
    somebody resumes it. *)
