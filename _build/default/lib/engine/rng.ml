type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (next t) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Zipfian generator (Gray et al., SIGMOD'94), as used by YCSB: constants
   depend only on (n, theta), memoised per generator call site. *)
let zipf_cache : (int * int, float * float * float) Hashtbl.t = Hashtbl.create 8

let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Rng.zipf: theta must be in [0, 1)";
  if theta = 0.0 then int t n
  else begin
    let key = (n, int_of_float (theta *. 1_000_000.0)) in
    let zetan, alpha, eta =
      match Hashtbl.find_opt zipf_cache key with
      | Some c -> c
      | None ->
          let zetan = ref 0.0 in
          for i = 1 to n do
            zetan := !zetan +. (1.0 /. Float.pow (float_of_int i) theta)
          done;
          let zeta2 = 1.0 +. (1.0 /. Float.pow 2.0 theta) in
          let alpha = 1.0 /. (1.0 -. theta) in
          let eta =
            (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
            /. (1.0 -. (zeta2 /. !zetan))
          in
          let c = (!zetan, alpha, eta) in
          Hashtbl.replace zipf_cache key c;
          c
    in
    let u = float t 1.0 in
    let uz = u *. zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 theta then 1
    else
      let v =
        float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha
      in
      min (n - 1) (int_of_float v)
  end
