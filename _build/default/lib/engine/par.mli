(** System-agnostic parallel helpers over {!Sched}.

    These express the task/RPC model shared by CHARM and the baseline
    runtimes (all of which inherit RING's API per paper §4.6); placement
    policy differences live entirely in scheduler hooks, so the same
    workload code runs under every system. *)

val call :
  Sched.ctx -> worker:int -> (Sched.ctx -> unit) -> Sched.task
(** Dispatch a closure to another worker; the message pays the
    core-to-core latency before the task becomes runnable. *)

val call_sync : Sched.ctx -> worker:int -> (Sched.ctx -> unit) -> unit

val all_do : Sched.ctx -> (Sched.ctx -> int -> unit) -> unit
(** Run [f ctx worker_id] on every worker; await all. *)

val parallel_for :
  Sched.ctx -> lo:int -> hi:int -> ?grain:int ->
  (Sched.ctx -> int -> int -> unit) -> unit
(** Fork chunks of [\[lo, hi)] round-robin over workers; await all. *)

val spawn_all : Sched.t -> n:int -> (int -> Sched.ctx -> unit) -> Sched.task list
(** Top-level: spawn [n] tasks round-robin (task [i] gets its index). *)
