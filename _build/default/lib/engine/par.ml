open Chipsim

let call ctx ~worker f =
  let sched = Sched.Ctx.sched ctx in
  let machine = Sched.Ctx.machine ctx in
  let here = Sched.Ctx.core ctx in
  let there = Sched.worker_core sched worker in
  let delay = Machine.core_to_core_ns machine here there in
  Sched.Ctx.spawn ctx ~worker ~at:(Sched.Ctx.now ctx +. delay) f

let call_sync ctx ~worker f =
  let task = call ctx ~worker f in
  Sched.Ctx.await ctx task

let all_do ctx f =
  let sched = Sched.Ctx.sched ctx in
  let n = Sched.n_workers sched in
  let tasks = List.init n (fun w -> call ctx ~worker:w (fun ctx' -> f ctx' w)) in
  List.iter (fun task -> Sched.Ctx.await ctx task) tasks

let parallel_for ctx ~lo ~hi ?grain f =
  if hi > lo then begin
    let sched = Sched.Ctx.sched ctx in
    let n = Sched.n_workers sched in
    let span = hi - lo in
    let grain =
      match grain with
      | Some g ->
          if g <= 0 then invalid_arg "Par.parallel_for: grain must be positive";
          g
      | None -> max 1 (span / (4 * n))
    in
    let rec chunks acc i =
      if i >= hi then List.rev acc
      else chunks ((i, min hi (i + grain)) :: acc) (i + grain)
    in
    let pieces = chunks [] lo in
    let npieces = List.length pieces in
    (* block distribution: adjacent chunks land on the same worker, so a
       worker's L3 keeps seeing the same data range across phases *)
    let tasks =
      List.mapi
        (fun k (clo, chi) ->
          let worker = min (n - 1) (k * n / npieces) in
          Sched.Ctx.spawn ctx ~worker (fun ctx' -> f ctx' clo chi))
        pieces
    in
    List.iter (fun task -> Sched.Ctx.await ctx task) tasks
  end

let spawn_all sched ~n f =
  List.init n (fun i ->
      Sched.spawn sched ~worker:(i mod Sched.n_workers sched) (fun ctx -> f i ctx))
