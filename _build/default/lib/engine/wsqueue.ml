type 'a t = {
  mutable buf : 'a option array;
  mutable top : int;  (* index of oldest element *)
  mutable bottom : int;  (* one past newest element *)
}

let initial_capacity = 16

let create () = { buf = Array.make initial_capacity None; top = 0; bottom = 0 }

let length t = t.bottom - t.top
let is_empty t = length t = 0

let slot t i = i land (Array.length t.buf - 1)

let grow t =
  let old = t.buf in
  let cap = Array.length old in
  let buf = Array.make (cap * 2) None in
  for i = t.top to t.bottom - 1 do
    buf.(i land ((cap * 2) - 1)) <- old.(i land (cap - 1))
  done;
  t.buf <- buf

let push t x =
  if length t = Array.length t.buf then grow t;
  t.buf.(slot t t.bottom) <- Some x;
  t.bottom <- t.bottom + 1

let pop t =
  if is_empty t then None
  else begin
    t.bottom <- t.bottom - 1;
    let i = slot t t.bottom in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    x
  end

let pop_front t =
  if is_empty t then None
  else begin
    let i = slot t t.top in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    t.top <- t.top + 1;
    x
  end

let steal t = pop_front t

let clear t =
  t.buf <- Array.make initial_capacity None;
  t.top <- 0;
  t.bottom <- 0

let to_list t =
  let rec go i acc =
    if i >= t.bottom then List.rev acc
    else
      match t.buf.(slot t i) with
      | Some x -> go (i + 1) (x :: acc)
      | None -> go (i + 1) acc
  in
  go t.top []
