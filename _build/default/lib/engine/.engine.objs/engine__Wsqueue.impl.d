lib/engine/wsqueue.ml: Array List
