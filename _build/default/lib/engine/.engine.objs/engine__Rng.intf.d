lib/engine/rng.mli:
