lib/engine/future.ml: List Sched
