lib/engine/coroutine.ml: Effect
