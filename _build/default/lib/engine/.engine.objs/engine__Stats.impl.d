lib/engine/stats.ml: Array Chipsim Format Machine Pmu Topology
