lib/engine/rng.ml: Array Float Hashtbl Int64
