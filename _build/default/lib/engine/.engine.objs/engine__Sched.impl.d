lib/engine/sched.ml: Array Chipsim Coroutine Float Latency List Machine Option Pmu Printf Rng Simmem Topology Wsqueue
