lib/engine/barrier.ml: Chipsim Float Latency List Machine Sched
