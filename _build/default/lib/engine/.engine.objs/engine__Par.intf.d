lib/engine/par.mli: Sched
