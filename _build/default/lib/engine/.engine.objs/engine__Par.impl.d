lib/engine/par.ml: Chipsim List Machine Sched
