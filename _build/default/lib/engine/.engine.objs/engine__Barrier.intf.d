lib/engine/barrier.mli: Sched
