lib/engine/stats.mli: Chipsim Format Machine Pmu
