lib/engine/future.mli: Sched
