lib/engine/trace.mli: Sched
