lib/engine/wsqueue.mli:
