lib/engine/coroutine.mli:
