lib/engine/sched.mli: Chipsim Machine Rng Simmem
