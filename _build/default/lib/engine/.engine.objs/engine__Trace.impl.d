lib/engine/trace.ml: Array Buffer Float List Printf Sched
