(** Deterministic splittable PRNG (splitmix64).

    Every simulated component owns its own stream so experiment results are
    reproducible regardless of scheduling order. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val split : t -> t
(** Derive an independent stream (e.g., one per worker). *)

val next : t -> int64
val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** Uniform in [\[0, bound)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipfian draw in [\[0, n)] with skew [theta] (0 = uniform; YCSB's
    default is 0.99), via the Gray et al. rejection-free approximation.
    @raise Invalid_argument if [n <= 0] or [theta < 0.0 || theta >= 1.0]. *)
