lib/core/controller.ml: Config Profiler
