lib/core/runtime.ml: Array Chipsim Config Controller Engine Float Fun List Machine Memory_manager Placement Policy Profiler Simmem Topology
