lib/core/memory_manager.ml: Array Chipsim Config List Machine Simmem Topology
