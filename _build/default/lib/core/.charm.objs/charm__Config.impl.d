lib/core/config.ml: Chipsim
