lib/core/profiler.mli: Chipsim Machine
