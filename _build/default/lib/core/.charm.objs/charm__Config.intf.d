lib/core/config.mli: Chipsim
