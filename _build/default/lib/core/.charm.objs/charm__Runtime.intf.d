lib/core/runtime.mli: Chipsim Config Engine Machine Memory_manager Policy Profiler Simmem
