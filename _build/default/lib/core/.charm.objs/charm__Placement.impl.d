lib/core/placement.ml: Array Chipsim Topology
