lib/core/memory_manager.mli: Chipsim Config Machine Simmem
