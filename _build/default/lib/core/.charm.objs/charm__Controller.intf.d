lib/core/controller.mli: Config Profiler
