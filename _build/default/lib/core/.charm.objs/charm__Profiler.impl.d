lib/core/profiler.ml: Array Chipsim Machine Pmu
