lib/core/policy.ml: Array Chipsim Config Controller Engine Float Machine Placement Profiler Topology
