lib/core/policy.mli: Chipsim Config Controller Engine Machine Profiler
