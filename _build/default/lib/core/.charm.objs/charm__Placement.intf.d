lib/core/placement.mli: Chipsim Topology
