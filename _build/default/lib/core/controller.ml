type decision = { threshold : float; mode : Config.approach }

type t = {
  config : Config.t;
  mutable last_mode : Config.approach;
  mutable switches : int;
}

let create config =
  { config; last_mode = config.Config.approach; switches = 0 }

(* Approach-specific threshold scaling: location-centric delays spreading
   (high threshold), cache-centric triggers it eagerly (low threshold). *)
let location_scale = 4.0
let cache_scale = 0.25

let concrete_mode t sample =
  match t.config.Config.approach with
  | (Config.Location_centric | Config.Cache_centric) as m -> m
  | Config.Adaptive ->
      let remote = Profiler.remote_events sample in
      if remote = 0 then t.last_mode
      else begin
        let dram_share = float_of_int sample.Profiler.dram /. float_of_int remote in
        let chiplet_share =
          float_of_int sample.Profiler.remote_chiplet /. float_of_int remote
        in
        if dram_share > 0.5 then Config.Cache_centric
        else if chiplet_share > 0.6 then Config.Location_centric
        else t.last_mode
      end

let decide t sample =
  let mode = concrete_mode t sample in
  (match (mode, t.last_mode) with
  | Config.Location_centric, Config.Location_centric
  | Config.Cache_centric, Config.Cache_centric
  | Config.Adaptive, Config.Adaptive -> ()
  | _ -> t.switches <- t.switches + 1);
  t.last_mode <- mode;
  let base = t.config.Config.rmt_chip_access_rate in
  let threshold =
    match mode with
    | Config.Location_centric -> base *. location_scale
    | Config.Cache_centric -> base *. cache_scale
    | Config.Adaptive -> base
  in
  { threshold; mode }

let mode_switches t = t.switches
