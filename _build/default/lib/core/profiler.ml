open Chipsim

type sample = {
  local_hits : int;
  remote_chiplet : int;
  remote_numa : int;
  dram : int;
}

let remote_events s = s.remote_chiplet + s.remote_numa + s.dram

let zero = { local_hits = 0; remote_chiplet = 0; remote_numa = 0; dram = 0 }

let add a b =
  {
    local_hits = a.local_hits + b.local_hits;
    remote_chiplet = a.remote_chiplet + b.remote_chiplet;
    remote_numa = a.remote_numa + b.remote_numa;
    dram = a.dram + b.dram;
  }

type t = {
  machine : Machine.t;
  baselines : sample array;  (* per worker: counter values at last reset *)
  consumed : sample array;  (* per worker: total deltas seen *)
}

let create machine ~n_workers =
  if n_workers <= 0 then invalid_arg "Profiler.create: n_workers must be positive";
  {
    machine;
    baselines = Array.make n_workers zero;
    consumed = Array.make n_workers zero;
  }

let raw t ~core =
  let pmu = Machine.pmu t.machine in
  {
    local_hits = Pmu.read pmu ~core Pmu.L3_local_hit;
    remote_chiplet = Pmu.read pmu ~core Pmu.Fill_remote_chiplet;
    remote_numa = Pmu.read pmu ~core Pmu.Fill_remote_numa;
    dram = Pmu.read pmu ~core Pmu.Dram_local + Pmu.read pmu ~core Pmu.Dram_remote;
  }

let read t ~worker ~core =
  let now = raw t ~core in
  let base = t.baselines.(worker) in
  {
    local_hits = now.local_hits - base.local_hits;
    remote_chiplet = now.remote_chiplet - base.remote_chiplet;
    remote_numa = now.remote_numa - base.remote_numa;
    dram = now.dram - base.dram;
  }

let reset t ~worker ~core =
  let delta = read t ~worker ~core in
  t.consumed.(worker) <- add t.consumed.(worker) delta;
  t.baselines.(worker) <- raw t ~core

let cumulative t ~worker = t.consumed.(worker)

let rebase t ~worker ~core = t.baselines.(worker) <- raw t ~core
