(** Per-worker performance profiler (paper §4.5).

    Reads the simulated PMU exactly as CHARM reads
    [ANY_DATA_CACHE_FILLS_FROM_SYSTEM] on AMD hardware: each worker keeps a
    baseline of its current core's fill counters and consumes deltas at
    every scheduling-policy tick.  Profiling charges a small per-check
    overhead to the worker, modelling the paper's 5–10%% polling cost. *)

open Chipsim

type sample = {
  local_hits : int;  (** L3 fills served by the local chiplet slice *)
  remote_chiplet : int;  (** fills served by another chiplet, same socket *)
  remote_numa : int;  (** fills served from the other socket's caches *)
  dram : int;  (** fills served from memory (either node) *)
}

val remote_events : sample -> int
(** The Alg. 1 counter: [remote_chiplet + remote_numa + dram]. *)

type t

val create : Machine.t -> n_workers:int -> t

val read : t -> worker:int -> core:int -> sample
(** Fill-event deltas on [core] since this worker's last {!reset}. *)

val reset : t -> worker:int -> core:int -> unit
(** Re-baseline after a policy decision (Alg. 1 line 18) or a migration. *)

val cumulative : t -> worker:int -> sample
(** All deltas this worker has ever consumed (for end-of-run statistics). *)

val rebase : t -> worker:int -> core:int -> unit
(** Set the baseline to [core]'s current counters {e without} accumulating a
    delta — used right after a migration, when the old baseline refers to a
    different core's counters. *)
