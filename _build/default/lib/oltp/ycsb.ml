module Sched = Engine.Sched
module Exec_env = Workloads.Exec_env
module Workload_result = Workloads.Workload_result

type distribution = Uniform | Zipfian of float

type mix = {
  read_pct : int;
  update_pct : int;
  rmw_pct : int;
  scan_pct : int;
  insert_pct : int;
}

let workload_a = { read_pct = 50; update_pct = 50; rmw_pct = 0; scan_pct = 0; insert_pct = 0 }
let workload_b = { read_pct = 95; update_pct = 5; rmw_pct = 0; scan_pct = 0; insert_pct = 0 }
let workload_c = { read_pct = 100; update_pct = 0; rmw_pct = 0; scan_pct = 0; insert_pct = 0 }
let workload_d = { read_pct = 95; update_pct = 0; rmw_pct = 0; scan_pct = 0; insert_pct = 5 }
let workload_e = { read_pct = 0; update_pct = 0; rmw_pct = 5; scan_pct = 95; insert_pct = 0 }
let workload_f = { read_pct = 50; update_pct = 0; rmw_pct = 50; scan_pct = 0; insert_pct = 0 }
let paper_mix = { read_pct = 45; update_pct = 0; rmw_pct = 55; scan_pct = 0; insert_pct = 0 }

type params = {
  records : int;
  payload_words : int;
  ops : int;
  mix : mix;
  distribution : distribution;
  max_scan : int;
  seed : int;
}

let default_params =
  {
    records = 65_536;
    payload_words = 13;
    ops = 20_000;
    mix = paper_mix;
    distribution = Uniform;
    max_scan = 20;
    seed = 21;
  }

type outcome = {
  result : Workload_result.t;
  commits : int;
  commits_per_second : float;
  reads : int;
  updates : int;
  rmws : int;
  scans : int;
  inserts : int;
  read_sum : int;
}

let mix_sum m = m.read_pct + m.update_pct + m.rmw_pct + m.scan_pct + m.insert_pct

let run env params =
  if mix_sum params.mix <> 100 then
    invalid_arg "Ycsb.run: operation mix must sum to 100";
  let alloc = env.Exec_env.alloc_shared in
  let table =
    Storage.create_table ~alloc ~name:"usertable" ~rows:params.records
      ~payload_words:params.payload_words
  in
  let engine = Txn.create ~alloc () in
  let workers = Exec_env.n_workers env in
  let per_worker = (params.ops + workers - 1) / workers in
  let read_sum = ref 0 in
  let reads = ref 0 and updates = ref 0 and rmws = ref 0 in
  let scans = ref 0 and inserts = ref 0 in
  (* inserts append circularly into the key space (YCSB D/E's growing
     tail, bounded so the table stays fixed-size) *)
  let insert_cursor = ref 0 in
  let makespan =
    env.Exec_env.run (fun ctx ->
        Engine.Par.all_do ctx (fun ctx' w ->
            let rng = Engine.Rng.create (params.seed + w) in
            let pick () =
              match params.distribution with
              | Uniform -> Engine.Rng.int rng params.records
              | Zipfian theta -> Engine.Rng.zipf rng ~n:params.records ~theta
            in
            let m = params.mix in
            for i = 0 to per_worker - 1 do
              let dice = Engine.Rng.int rng 100 in
              if dice < m.read_pct then begin
                incr reads;
                read_sum := !read_sum + Storage.read_record ctx' table (pick ())
              end
              else if dice < m.read_pct + m.update_pct then begin
                incr updates;
                Storage.write_record ctx' table (pick ()) i
              end
              else if dice < m.read_pct + m.update_pct + m.rmw_pct then begin
                incr rmws;
                let key = pick () in
                let v = Storage.read_record ctx' table key in
                Storage.write_record ctx' table key (v + 1)
              end
              else if dice < m.read_pct + m.update_pct + m.rmw_pct + m.scan_pct
              then begin
                incr scans;
                let start = pick () in
                let len = 1 + Engine.Rng.int rng params.max_scan in
                for k = 0 to len - 1 do
                  read_sum :=
                    !read_sum
                    + Storage.read_record ctx' table ((start + k) mod params.records)
                done
              end
              else begin
                incr inserts;
                let key = !insert_cursor mod params.records in
                incr insert_cursor;
                Storage.write_record ctx' table key (i + 1)
              end;
              Txn.commit engine ctx';
              if i land 63 = 63 then Sched.Ctx.maybe_yield ctx'
            done))
  in
  {
    result =
      Workload_result.v ~label:"ycsb" ~makespan_ns:makespan
        ~work_items:(per_worker * workers);
    commits = Txn.commits engine;
    commits_per_second = Txn.commits_per_second engine ~makespan_ns:makespan;
    reads = !reads;
    updates = !updates;
    rmws = !rmws;
    scans = !scans;
    inserts = !inserts;
    read_sum = !read_sum;
  }
