lib/oltp/tpcc.ml: Engine Storage Txn Workloads
