lib/oltp/txn.ml: Chipsim Engine Float Hashtbl Option
