lib/oltp/ycsb.ml: Engine Storage Txn Workloads
