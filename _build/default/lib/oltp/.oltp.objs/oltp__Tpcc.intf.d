lib/oltp/tpcc.mli: Workloads
