lib/oltp/storage.mli: Chipsim Engine Simmem
