lib/oltp/txn.mli: Chipsim Engine Simmem
