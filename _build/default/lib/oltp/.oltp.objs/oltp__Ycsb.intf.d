lib/oltp/ycsb.mli: Workloads
