lib/oltp/storage.ml: Array Chipsim Engine Printf
