module Sched = Engine.Sched
module Exec_env = Workloads.Exec_env
module Workload_result = Workloads.Workload_result

type params = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  txns : int;
  seed : int;
}

let default_params =
  {
    warehouses = 50;
    districts_per_warehouse = 10;
    customers_per_district = 120;
    items = 4_000;
    txns = 10_000;
    seed = 77;
  }

type outcome = {
  result : Workload_result.t;
  commits : int;
  commits_per_second : float;
  new_orders : int;
}

type db = {
  warehouse : Storage.table;
  district : Storage.table;
  customer : Storage.table;
  stock : Storage.table;
  item : Storage.table;
  order_line : Storage.table;  (* ring buffer of recent order lines *)
}

let order_line_seg = 256  (* recent order-line slots per warehouse *)

let make_db ~alloc p =
  {
    warehouse = Storage.create_table ~alloc ~name:"warehouse" ~rows:p.warehouses ~payload_words:8;
    district =
      Storage.create_table ~alloc ~name:"district"
        ~rows:(p.warehouses * p.districts_per_warehouse)
        ~payload_words:8;
    customer =
      Storage.create_table ~alloc ~name:"customer"
        ~rows:(p.warehouses * p.districts_per_warehouse * p.customers_per_district)
        ~payload_words:16;
    stock =
      Storage.create_table ~alloc ~name:"stock" ~rows:(p.warehouses * p.items)
        ~payload_words:8;
    item = Storage.create_table ~alloc ~name:"item" ~rows:p.items ~payload_words:8;
    order_line =
      Storage.create_table ~alloc ~name:"order_line"
        ~rows:(p.warehouses * order_line_seg) ~payload_words:8;
  }

let district_row p ~w ~d = (w * p.districts_per_warehouse) + d
let customer_row p ~w ~d ~c =
  (((w * p.districts_per_warehouse) + d) * p.customers_per_district) + c
let stock_row p ~w ~i = (w * p.items) + i

(* order lines append into the home warehouse's ring segment, as TPC-C
   inserts are per-district *)
let new_order ctx db p rng engine ol_cursor ~home =
  let w = home in
  let d = Engine.Rng.int rng p.districts_per_warehouse in
  let c = Engine.Rng.int rng p.customers_per_district in
  ignore (Storage.read_record ctx db.warehouse w);
  (* district next_o_id is a serialization hot spot *)
  let next = Storage.read_field ctx db.district ~row:(district_row p ~w ~d) ~word:1 in
  Storage.write_field ctx db.district ~row:(district_row p ~w ~d) ~word:1 (next + 1);
  ignore (Storage.read_record ctx db.customer (customer_row p ~w ~d ~c));
  let ol_cnt = 5 + Engine.Rng.int rng 11 in
  for _ = 1 to ol_cnt do
    let i = Engine.Rng.int rng p.items in
    ignore (Storage.read_record ctx db.item i);
    let qty = Storage.read_field ctx db.stock ~row:(stock_row p ~w ~i) ~word:0 in
    Storage.write_field ctx db.stock ~row:(stock_row p ~w ~i) ~word:0
      (if qty > 10 then qty - 1 else qty + 91);
    let slot = (home * order_line_seg) + (!ol_cursor mod order_line_seg) in
    incr ol_cursor;
    Storage.write_record ctx db.order_line slot i
  done;
  Txn.commit engine ctx

let payment ctx db p rng engine ~home =
  let w = home in
  let d = Engine.Rng.int rng p.districts_per_warehouse in
  let c = Engine.Rng.int rng p.customers_per_district in
  let amount = 1 + Engine.Rng.int rng 5000 in
  let wv = Storage.read_field ctx db.warehouse ~row:w ~word:1 in
  Storage.write_field ctx db.warehouse ~row:w ~word:1 (wv + amount);
  let drow = district_row p ~w ~d in
  let dv = Storage.read_field ctx db.district ~row:drow ~word:2 in
  Storage.write_field ctx db.district ~row:drow ~word:2 (dv + amount);
  let crow = customer_row p ~w ~d ~c in
  let bal = Storage.read_field ctx db.customer ~row:crow ~word:1 in
  Storage.write_field ctx db.customer ~row:crow ~word:1 (bal - amount);
  Txn.commit engine ctx

let delivery ctx db p rng engine ~home =
  let w = home in
  for d = 0 to p.districts_per_warehouse - 1 do
    let c = Engine.Rng.int rng p.customers_per_district in
    let crow = customer_row p ~w ~d ~c in
    let bal = Storage.read_field ctx db.customer ~row:crow ~word:1 in
    Storage.write_field ctx db.customer ~row:crow ~word:1 (bal + 100)
  done;
  Txn.commit engine ctx

let order_status ctx db p rng engine ~home =
  let w = home in
  let d = Engine.Rng.int rng p.districts_per_warehouse in
  let c = Engine.Rng.int rng p.customers_per_district in
  ignore (Storage.read_record ctx db.customer (customer_row p ~w ~d ~c));
  for k = 0 to 9 do
    ignore
      (Storage.read_record ctx db.order_line
         ((w * order_line_seg) + ((c + k) mod order_line_seg)))
  done;
  Txn.commit engine ctx

let stock_level ctx db p rng engine ~home =
  let w = home in
  let d = Engine.Rng.int rng p.districts_per_warehouse in
  ignore (Storage.read_record ctx db.district (district_row p ~w ~d));
  for k = 0 to 19 do
    let slot = (w * order_line_seg) + ((d + k) mod order_line_seg) in
    let i = Storage.read_record ctx db.order_line slot in
    let i = if i >= 0 && i < p.items then i else 0 in
    ignore (Storage.read_record ctx db.stock (stock_row p ~w ~i))
  done;
  Txn.commit engine ctx

let run env p =
  let alloc = env.Exec_env.alloc_shared in
  let db = make_db ~alloc p in
  let engine = Txn.create ~alloc () in
  let workers = Exec_env.n_workers env in
  let per_worker = (p.txns + workers - 1) / workers in
  let new_orders = ref 0 in
  let makespan =
    env.Exec_env.run (fun ctx ->
        Engine.Par.all_do ctx (fun ctx' wkr ->
            let rng = Engine.Rng.create (p.seed + wkr) in
            (* each worker terminal owns a home warehouse (paper: "always
               accesses the home warehouse") *)
            let home = wkr mod p.warehouses in
            let ol_cursor = ref 0 in
            for i = 0 to per_worker - 1 do
              let dice = Engine.Rng.int rng 100 in
              if dice < 45 then begin
                new_order ctx' db p rng engine ol_cursor ~home;
                incr new_orders
              end
              else if dice < 88 then payment ctx' db p rng engine ~home
              else if dice < 92 then delivery ctx' db p rng engine ~home
              else if dice < 96 then order_status ctx' db p rng engine ~home
              else stock_level ctx' db p rng engine ~home;
              if i land 15 = 15 then Sched.Ctx.maybe_yield ctx'
            done))
  in
  {
    result =
      Workload_result.v ~label:"tpcc" ~makespan_ns:makespan
        ~work_items:(per_worker * workers);
    commits = Txn.commits engine;
    commits_per_second = Txn.commits_per_second engine ~makespan_ns:makespan;
    new_orders = !new_orders;
  }
