module Sched = Engine.Sched

type t = {
  commit_service_ns : float;
  group_size : int;
  sim_log_tail : Chipsim.Simmem.region;
  mutable log_busy_until : float;
  mutable n_commits : int;
  pending : (int, int) Hashtbl.t;  (* worker -> commits since last flush *)
}

let create ~alloc ?(commit_service_ns = 350.0) ?(group_size = 8) () =
  if group_size <= 0 then invalid_arg "Txn.create: group_size must be positive";
  {
    commit_service_ns;
    group_size;
    sim_log_tail = alloc ~elt_bytes:8 ~count:8;
    log_busy_until = 0.0;
    n_commits = 0;
    pending = Hashtbl.create 64;
  }

(* ERMIA-style pipelined group commit: each worker batches [group_size]
   transactions, then claims the shared log tail once (the hot line) and
   serialises the whole batch's service time on the log device. *)
let flush t ctx ~batch =
  Sched.Ctx.read ctx t.sim_log_tail 0;
  Sched.Ctx.write ctx t.sim_log_tail 0;
  let now = Sched.Ctx.now ctx in
  let start = Float.max now t.log_busy_until in
  let service = t.commit_service_ns *. float_of_int batch in
  t.log_busy_until <- start +. service;
  Sched.Ctx.work ctx (start -. now +. service)

let commit t ctx =
  t.n_commits <- t.n_commits + 1;
  let worker = Sched.Ctx.worker_id ctx in
  let pending = 1 + Option.value ~default:0 (Hashtbl.find_opt t.pending worker) in
  if pending >= t.group_size then begin
    Hashtbl.replace t.pending worker 0;
    flush t ctx ~batch:pending
  end
  else begin
    Hashtbl.replace t.pending worker pending;
    (* commit record written to the worker-local buffer *)
    Sched.Ctx.work ctx (t.commit_service_ns *. 0.1)
  end

let commits t = t.n_commits

let commits_per_second t ~makespan_ns =
  if makespan_ns <= 0.0 then 0.0
  else float_of_int t.n_commits /. (makespan_ns /. 1e9)
