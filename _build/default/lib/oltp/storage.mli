(** Record-oriented in-memory storage for the OLTP engine.

    Each table keeps fixed-width records in simulated memory plus a
    per-record lock word; reads and writes charge the lock-word touch and
    the payload transfer, which is where the cross-chiplet coherence
    traffic of short transactions comes from. *)

open Chipsim

type table

val create_table :
  alloc:(elt_bytes:int -> count:int -> Simmem.region) ->
  name:string -> rows:int -> payload_words:int -> table

val name : table -> string
val rows : table -> int

val read_record : Engine.Sched.ctx -> table -> int -> int
(** Charged read (lock word + payload); returns the record's first word. *)

val write_record : Engine.Sched.ctx -> table -> int -> int -> unit
(** Charged read-modify-write of the record (sets its first word). *)

val read_field : Engine.Sched.ctx -> table -> row:int -> word:int -> int
val write_field : Engine.Sched.ctx -> table -> row:int -> word:int -> int -> unit
val peek : table -> row:int -> word:int -> int
(** Uncharged value access (assertions/tests). *)
