(** Transaction engine: ERMIA-style pipelined group commit.

    Models the bottleneck paper §5.7 identifies: workers batch
    [group_size] transactions, then claim the single hot log-tail cache
    line (coherence traffic) and serialise the batch's service time on
    the log device (virtual-time mutual exclusion).  These costs dwarf
    cache-placement effects for short transactions — the mechanism behind
    Fig. 14's policy indifference. *)

open Chipsim

type t

val create :
  alloc:(elt_bytes:int -> count:int -> Simmem.region) ->
  ?commit_service_ns:float -> ?group_size:int -> unit -> t
(** [group_size] transactions are batched per log flush (default 8). *)

val commit : t -> Engine.Sched.ctx -> unit
(** Record a commit; every [group_size]-th commit per worker flushes the
    batch: touch the log tail, wait for the log, occupy it. *)

val commits : t -> int
val commits_per_second : t -> makespan_ns:float -> float
