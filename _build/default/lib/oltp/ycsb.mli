(** YCSB over the OLTP engine.

    The paper's §5.7 configuration (single table, uniform keys, 45%% reads
    / 55%% read-modify-writes) is [default_params]; the six standard YCSB
    core workloads A–F are also provided, with uniform or Zipfian request
    distributions. *)

type distribution = Uniform | Zipfian of float  (** skew theta, e.g. 0.99 *)

type mix = {
  read_pct : int;
  update_pct : int;  (** blind writes *)
  rmw_pct : int;
  scan_pct : int;  (** short scans of up to [max_scan] records *)
  insert_pct : int;  (** appends into the key space *)
}
(** Percentages; must sum to 100. *)

val workload_a : mix
(** 50 read / 50 update *)

val workload_b : mix
(** 95 read / 5 update *)

val workload_c : mix
(** 100 read *)

val workload_d : mix
(** 95 read / 5 insert *)

val workload_e : mix
(** 95 scan / 5 insert *)

val workload_f : mix
(** 50 read / 50 read-modify-write *)

val paper_mix : mix
(** 45 read / 55 read-modify-write (paper §5.1) *)

type params = {
  records : int;
  payload_words : int;
  ops : int;  (** total operations (one per transaction) *)
  mix : mix;
  distribution : distribution;
  max_scan : int;
  seed : int;
}

val default_params : params
(** The paper's configuration: [paper_mix], uniform keys. *)

type outcome = {
  result : Workloads.Workload_result.t;
  commits : int;
  commits_per_second : float;
  reads : int;
  updates : int;
  rmws : int;
  scans : int;
  inserts : int;
  read_sum : int;  (** checksum over read values (determinism probe) *)
}

val run : Workloads.Exec_env.t -> params -> outcome
(** @raise Invalid_argument if the mix does not sum to 100. *)
