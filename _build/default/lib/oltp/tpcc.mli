(** TPC-C-lite over the OLTP engine (paper §5.7 configuration: 45%%
    New-Order, 43%% Payment, remainder Delivery / Order-Status /
    Stock-Level; uniform items; home-warehouse accesses only). *)

type params = {
  warehouses : int;
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  txns : int;  (** total transactions across all workers *)
  seed : int;
}

val default_params : params

type outcome = {
  result : Workloads.Workload_result.t;
  commits : int;
  commits_per_second : float;
  new_orders : int;  (** New-Order transactions completed *)
}

val run : Workloads.Exec_env.t -> params -> outcome
