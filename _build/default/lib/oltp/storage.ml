module Sched = Engine.Sched

type table = {
  name : string;
  rows : int;
  payload_words : int;
  sim_data : Chipsim.Simmem.region;
  sim_locks : Chipsim.Simmem.region;
  values : int array;
}

let create_table ~alloc ~name ~rows ~payload_words =
  if rows <= 0 || payload_words <= 0 then
    invalid_arg "Storage.create_table: rows and payload_words must be positive";
  {
    name;
    rows;
    payload_words;
    sim_data = alloc ~elt_bytes:8 ~count:(rows * payload_words);
    sim_locks = alloc ~elt_bytes:8 ~count:rows;
    values = Array.make (rows * payload_words) 0;
  }

let name t = t.name
let rows t = t.rows

let check t row word =
  if row < 0 || row >= t.rows then
    invalid_arg (Printf.sprintf "Storage %s: row %d out of range" t.name row);
  if word < 0 || word >= t.payload_words then
    invalid_arg (Printf.sprintf "Storage %s: word %d out of range" t.name word)

let read_field ctx t ~row ~word =
  check t row word;
  Sched.Ctx.read ctx t.sim_locks row;
  Sched.Ctx.read ctx t.sim_data ((row * t.payload_words) + word);
  t.values.((row * t.payload_words) + word)

let write_field ctx t ~row ~word v =
  check t row word;
  (* lock acquire/release: an RMW on the lock word *)
  Sched.Ctx.read ctx t.sim_locks row;
  Sched.Ctx.write ctx t.sim_locks row;
  Sched.Ctx.write ctx t.sim_data ((row * t.payload_words) + word);
  t.values.((row * t.payload_words) + word) <- v

let read_record ctx t row = read_field ctx t ~row ~word:0
let write_record ctx t row v = write_field ctx t ~row ~word:0 v

let peek t ~row ~word =
  check t row word;
  t.values.((row * t.payload_words) + word)
