(* Fig. 7: graph-processing + random-access scalability on the AMD model:
   six workloads, CHARM vs RING / AsymSched / SAM across core counts.
   Paper shape: CHARM near-linear to 64 cores, baselines saturate around
   48-56, CHARM 1.8-2.3x at 64 cores and 2-2.8x beyond 96. *)

module Sys_ = Harness.Systems

let systems = [ Sys_.Charm; Sys_.Ring; Sys_.Asymsched; Sys_.Sam ]
let core_counts = [ 8; 16; 32; 48; 64; 96; 128 ]

let run_one bench =
  Util.subsection (Util.graph_bench_name bench);
  Util.row "  %-6s" "cores";
  List.iter (fun sys -> Util.row " %12s" (Util.sys_label sys)) systems;
  Util.row " %10s\n" "charm/best";
  List.iter
    (fun workers ->
      let tps =
        List.map
          (fun sys ->
            fst (Util.run_graph_bench ~sys ~kind:Sys_.Amd_milan ~workers bench))
          systems
      in
      Util.row "  %-6d" workers;
      List.iter (fun t -> Util.row " %12s" (Util.pp_throughput t)) tps;
      (match tps with
      | charm :: rest ->
          let best = List.fold_left Float.max 0.0 rest in
          Util.row " %9.2fx\n" (charm /. best)
      | [] -> Util.row "\n"))
    core_counts

let run () =
  Util.section "Fig. 7 - graph + random-access scalability (AMD model)";
  Util.row "  (throughput: edges/s for graphs, updates/s for GUPS)\n";
  List.iter run_one Util.all_graph_benches
