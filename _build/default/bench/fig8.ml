(* Fig. 8: the Fig. 7 suite on the Intel Sapphire Rapids model.  Paper
   shape: CHARM leads clearly up to one socket (48 cores); beyond it the
   gap to RING/AsymSched narrows, and SAM consistently underperforms (its
   PMU heuristics misread the platform). *)

module Sys_ = Harness.Systems

let systems = [ Sys_.Charm; Sys_.Ring; Sys_.Asymsched; Sys_.Sam ]
let core_counts = [ 6; 12; 24; 48; 72; 96 ]

let run_one bench =
  Util.subsection (Util.graph_bench_name bench);
  Util.row "  %-6s" "cores";
  List.iter (fun sys -> Util.row " %12s" (Util.sys_label sys)) systems;
  Util.row "\n";
  List.iter
    (fun workers ->
      Util.row "  %-6d" workers;
      List.iter
        (fun sys ->
          let tp, _ = Util.run_graph_bench ~sys ~kind:Sys_.Intel_spr ~workers bench in
          Util.row " %12s" (Util.pp_throughput tp))
        systems;
      Util.row "\n")
    core_counts

let run () =
  Util.section "Fig. 8 - graph + random-access scalability (Intel model)";
  List.iter run_one Util.all_graph_benches
