bench/fig14.ml: Float Harness List Oltp Util
