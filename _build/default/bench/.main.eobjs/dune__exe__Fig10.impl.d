bench/fig10.ml: Harness List Printf Util
