bench/fig9.ml: Engine Harness List Util Workloads
