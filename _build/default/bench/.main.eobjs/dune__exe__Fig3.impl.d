bench/fig3.ml: Array Chipsim Latency List Presets Topology Util
