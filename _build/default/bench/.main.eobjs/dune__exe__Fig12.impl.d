bench/fig12.ml: Array Dataset Engine Exec_env Float Harness List Sgd Util Workload_result Workloads
