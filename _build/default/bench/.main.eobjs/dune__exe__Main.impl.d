bench/main.ml: Ablation Array Fig1 Fig10 Fig11 Fig12 Fig13 Fig14 Fig3 Fig4 Fig5 Fig7 Fig8 Fig9 List Micro Printf String Sys Tab1 Unix
