bench/main.mli:
