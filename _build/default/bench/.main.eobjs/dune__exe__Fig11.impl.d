bench/fig11.ml: Dataset Dimmwitted Exec_env Harness List Sgd Util Workloads
