bench/fig1.ml: Dataset Dimmwitted Exec_env Float Harness List Sgd Streamcluster Util Workload_result Workloads
