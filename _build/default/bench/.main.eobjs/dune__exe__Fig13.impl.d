bench/fig13.ml: Charm Harness List Olap Util Workloads
