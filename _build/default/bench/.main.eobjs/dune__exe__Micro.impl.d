bench/micro.ml: Analyze Bechamel Benchmark Cache Charm Chipsim Engine Hashtbl Instance Latency List Machine Measure Presets Staged Test Time Toolkit Util
