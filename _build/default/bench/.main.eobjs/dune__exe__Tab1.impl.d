bench/tab1.ml: Engine Harness List Util
