bench/fig7.ml: Float Harness List Util
