bench/ablation.ml: Array Bfs Charm Engine Gups Harness List Util Workload_result Workloads
