bench/fig4.ml: List Util
