bench/fig8.ml: Harness List Util
