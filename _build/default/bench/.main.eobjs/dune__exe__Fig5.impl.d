bench/fig5.ml: Engine Exec_env Harness List Printf Util Workloads
