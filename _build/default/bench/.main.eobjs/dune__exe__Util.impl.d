bench/util.ml: Bfs Concomp Csr Exec_env Graph500 Gups Harness Hashtbl Kronecker Pagerank Printf Sssp String Workload_result Workloads
