(* Fig. 4: cores vs. memory channels in high-end server CPUs over the
   years — the industry data motivating §2.2 (static, from public specs). *)

let data =
  [
    (2010, "Xeon X7560 / Opteron 6174", 8, 4);
    (2012, "Xeon E5-2690", 8, 4);
    (2014, "Xeon E5-2699 v3", 18, 4);
    (2017, "EPYC Naples 7601", 32, 8);
    (2019, "EPYC Rome 7742", 64, 8);
    (2021, "EPYC Milan 7713", 64, 8);
    (2023, "EPYC Genoa 9654", 96, 12);
    (2024, "EPYC Bergamo 9754", 128, 12);
    (2026, "(projected)", 300, 16);
  ]

let run () =
  Util.section "Fig. 4 - cores vs. memory channels over the years";
  Util.row "  %-6s %-26s %6s %9s %12s\n" "year" "part" "cores" "channels" "cores/chan";
  List.iter
    (fun (year, part, cores, channels) ->
      Util.row "  %-6d %-26s %6d %9d %12.1f\n" year part cores channels
        (float_of_int cores /. float_of_int channels))
    data
