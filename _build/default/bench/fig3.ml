(* Fig. 3: CDF of core-to-core latency on the AMD model.  The paper reports
   three steps within a NUMA node: ~25 ns intra-chiplet, 80-90 ns
   inter-chiplet intra-quadrant, beyond 150 ns across quadrants, with
   cross-socket slowest. *)

open Chipsim

let run () =
  Util.section "Fig. 3 - core-to-core latency CDF (AMD EPYC Milan model)";
  let topo = Presets.amd_milan () in
  let n = Topology.num_cores topo in
  let lats = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      lats := Latency.core_to_core_ns topo a b :: !lats
    done
  done;
  let arr = Array.of_list !lats in
  Array.sort compare arr;
  let total = Array.length arr in
  Util.subsection "percentiles";
  List.iter
    (fun p ->
      let idx = min (total - 1) (p * total / 100) in
      Util.row "  p%-3d  %7.1f ns\n" p arr.(idx))
    [ 1; 5; 10; 25; 50; 75; 90; 95; 99 ];
  Util.subsection "latency steps (within-NUMA groups of paper Fig. 3)";
  let count pred = Array.fold_left (fun acc l -> if pred l then acc + 1 else acc) 0 arr in
  let share pred = 100.0 *. float_of_int (count pred) /. float_of_int total in
  Util.row "  intra-chiplet   (<= 30 ns) : %5.1f%% of pairs\n" (share (fun l -> l <= 30.0));
  Util.row "  intra-quadrant  (80-95 ns) : %5.1f%% of pairs\n"
    (share (fun l -> l > 80.0 && l <= 95.0));
  Util.row "  cross-quadrant (150-170 ns): %5.1f%% of pairs\n"
    (share (fun l -> l >= 150.0 && l <= 170.0));
  Util.row "  cross-socket    (>= 215 ns): %5.1f%% of pairs\n" (share (fun l -> l >= 215.0))
