(* Tab. 1: chiplet access classes, CHARM vs RING at 64 cores.  Paper
   shape: CHARM's remote-NUMA-chiplet fills are orders of magnitude below
   RING's, and its local-chiplet hits well above. *)

module Sys_ = Harness.Systems

let run () =
  Util.section "Tab. 1 - chiplet accesses at 64 cores, CHARM vs RING";
  Util.row "  %-10s %15s %15s %15s %15s\n" "workload" "rmtNUMA(charm)"
    "rmtNUMA(ring)" "local(charm)" "local(ring)";
  List.iter
    (fun bench ->
      let counts sys =
        let _tp, inst =
          Util.run_graph_bench ~sys ~kind:Sys_.Amd_milan ~workers:64 bench
        in
        let r = Harness.Systems.report inst in
        ( r.Engine.Stats.accesses.Engine.Stats.remote_numa,
          r.Engine.Stats.accesses.Engine.Stats.local_chiplet )
      in
      let charm_numa, charm_local = counts Sys_.Charm in
      let ring_numa, ring_local = counts Sys_.Ring in
      Util.row "  %-10s %15d %15d %15d %15d\n"
        (Util.graph_bench_name bench)
        charm_numa ring_numa charm_local ring_local)
    Util.all_graph_benches
