(* Bechamel micro-benchmarks of the runtime primitives (real nanoseconds):
   the coroutine switch, deque operations, Alg. 2 placement computation and
   the machine-model access path.  These back the paper's claim that
   user-space task switching is orders of magnitude cheaper than kernel
   threads. *)

open Bechamel
open Toolkit
open Chipsim

let test_coroutine_spawn =
  Test.make ~name:"coroutine create+run"
    (Staged.stage (fun () ->
         let c = Engine.Coroutine.create (fun () -> ()) in
         ignore (Engine.Coroutine.resume c)))

let test_coroutine_switch =
  (* one yield + one resume = two context switches *)
  let c =
    ref
      (Engine.Coroutine.create (fun () ->
           while true do
             Engine.Coroutine.yield ()
           done))
  in
  Test.make ~name:"coroutine yield/resume"
    (Staged.stage (fun () -> ignore (Engine.Coroutine.resume !c)))

let test_wsqueue =
  let q = Engine.Wsqueue.create () in
  Test.make ~name:"wsqueue push+pop"
    (Staged.stage (fun () ->
         Engine.Wsqueue.push q 1;
         ignore (Engine.Wsqueue.pop q)))

let test_wsqueue_steal =
  let q = Engine.Wsqueue.create () in
  Test.make ~name:"wsqueue push+steal"
    (Staged.stage (fun () ->
         Engine.Wsqueue.push q 1;
         ignore (Engine.Wsqueue.steal q)))

let test_placement =
  let topo = Presets.amd_milan () in
  let i = ref 0 in
  Test.make ~name:"alg2 core_of_worker"
    (Staged.stage (fun () ->
         i := (!i + 1) land 63;
         ignore (Charm.Placement.core_of_worker topo ~spread_rate:8 ~n_workers:64 ~worker:!i)))

let test_latency_classify =
  let topo = Presets.amd_milan () in
  let i = ref 0 in
  Test.make ~name:"latency classify"
    (Staged.stage (fun () ->
         i := (!i + 17) land 127;
         ignore (Latency.core_to_core_ns topo 0 !i)))

let test_cache_hit =
  let cache = Cache.create ~size_bytes:(1 lsl 20) ~line_bytes:64 () in
  ignore (Cache.access cache 42);
  Test.make ~name:"cache hit lookup"
    (Staged.stage (fun () -> ignore (Cache.access cache 42)))

let test_machine_access =
  let machine = Machine.create (Presets.amd_milan ()) in
  let region = Machine.alloc machine ~elt_bytes:8 ~count:64 () in
  ignore (Machine.touch machine ~core:0 ~now_ns:0.0 ~write:false region 0);
  Test.make ~name:"machine access (L2 hit)"
    (Staged.stage (fun () ->
         ignore (Machine.touch machine ~core:0 ~now_ns:0.0 ~write:false region 0)))

let tests =
  Test.make_grouped ~name:"micro"
    [
      test_coroutine_spawn;
      test_coroutine_switch;
      test_wsqueue;
      test_wsqueue_steal;
      test_placement;
      test_latency_classify;
      test_cache_hit;
      test_machine_access;
    ]

let run () =
  Util.section "Micro-benchmarks (bechamel; real nanoseconds per op)";
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some (t :: _) -> rows := (name, t) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, t) -> Util.row "  %-32s %10.1f ns/op\n" name t)
    (List.sort compare !rows)
