(* Fig. 10: CHARM's speedup over RING across graph sizes, at 32 and 64
   cores.  Paper shape: speedups stable as the graph grows (working-set
   driven, not total-size driven), best around sizes matching the L3
   capacity, larger at 64 cores than 32. *)

module Sys_ = Harness.Systems

let scales = [ 10; 12; 14; 15 ]  (* with cache scale 16: ~0.4 .. ~13 MiB graphs *)

let graph_mib scale =
  (* CSR bytes: (n+1 + 2m + 2m) * 8 with m = 16*2^scale symmetrised *)
  let n = 1 lsl scale in
  let m = 2 * 16 * n in
  float_of_int (8 * (n + 1 + m + m)) /. (1024.0 *. 1024.0)

let run () =
  Util.section "Fig. 10 - CHARM speedup over RING across graph sizes";
  List.iter
    (fun workers ->
      Util.subsection (Printf.sprintf "%d cores" workers);
      Util.row "  %-10s" "size";
      List.iter
        (fun b -> Util.row " %9s" (Util.graph_bench_name b))
        Util.all_graph_benches;
      Util.row "\n";
      List.iter
        (fun scale ->
          Util.row "  %7.1fMiB" (graph_mib scale);
          List.iter
            (fun bench ->
              let tp sys =
                fst
                  (Util.run_graph_bench ~graph_scale:scale ~sys
                     ~kind:Sys_.Amd_milan ~workers bench)
              in
              Util.row " %8.2fx" (tp Sys_.Charm /. tp Sys_.Ring))
            Util.all_graph_benches;
          Util.row "\n")
        scales)
    [ 32; 64 ]
