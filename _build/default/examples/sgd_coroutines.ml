(* Fine-grained task parallelism (paper §4.4 / Fig. 12): the same SGD
   workload executed with CHARM's cooperative coroutines and with a
   std::async-style one-kernel-thread-per-task model.  Coroutines keep
   thread concurrency stable and avoid creation/switch overheads.

   Run with: dune exec examples/sgd_coroutines.exe *)

open Workloads
module Sys_ = Harness.Systems

let workers = 32

let run sys =
  let inst = Sys_.make ~cache_scale:16 sys Sys_.Amd_milan ~n_workers:workers () in
  let env = inst.Sys_.env in
  let data =
    Dataset.generate
      ~alloc:(fun ~elt_bytes ~count -> env.Exec_env.alloc_shared ~elt_bytes ~count)
      ~samples:1024 ~features:512 ()
  in
  let outcome = Dimmwitted.run env ~replica:Sgd.Per_node ~epochs:2 data in
  let sched = env.Exec_env.sched in
  (outcome, Engine.Sched.total_spawned sched)

let () =
  Printf.printf "SGD on %d cores: coroutines vs kernel threads\n\n" workers;
  let charm, charm_tasks = run Sys_.Charm in
  let async, async_tasks = run Sys_.Charm_os_threads in
  Printf.printf "%-22s %14s %14s %10s %8s\n" "tasking model" "loss GB/s"
    "gradient GB/s" "accuracy" "tasks";
  Printf.printf "%-22s %14.2f %14.2f %10.3f %8d\n" "CHARM coroutines"
    charm.Dimmwitted.loss_gbps charm.Dimmwitted.gradient_gbps
    charm.Dimmwitted.accuracy charm_tasks;
  Printf.printf "%-22s %14.2f %14.2f %10.3f %8d\n" "std::async threads"
    async.Dimmwitted.loss_gbps async.Dimmwitted.gradient_gbps
    async.Dimmwitted.accuracy async_tasks;
  Printf.printf "\ncoroutine gradient speedup: %.2fx\n"
    (charm.Dimmwitted.gradient_gbps /. async.Dimmwitted.gradient_gbps)
