(* Adaptive cache partitioning on OLAP (paper §5.6): a scan-heavy query
   (Q6) prefers a compact footprint, a join-heavy query (Q3) profits from
   spreading across chiplets for aggregate L3.  CHARM's controller makes
   that call at runtime; this example shows the decisions it took.

   Run with: dune exec examples/adaptive_olap.exe *)

module Sys_ = Harness.Systems

let () =
  let inst = Sys_.make ~cache_scale:16 Sys_.Charm Sys_.Amd_milan ~n_workers:8 () in
  let env = inst.Sys_.env in
  let data =
    Olap.Tpch_data.generate
      ~alloc:(fun ~elt_bytes ~count ->
        env.Workloads.Exec_env.alloc_shared ~elt_bytes ~count)
      ~sf:0.01 ()
  in
  Printf.printf "TPC-H-shaped dataset: %d total rows\n\n" (Olap.Tpch_data.total_rows data);
  let rt = Option.get inst.Sys_.charm in
  let policy = Charm.Runtime.policy rt in
  let spread_of w = Charm.Policy.spread_rate policy ~worker:w in
  List.iter
    (fun q ->
      let result, makespan = Olap.Tpch_queries.execute env data q in
      let spreads = List.init 8 spread_of in
      Printf.printf
        "Q%-2d (%s): %8.3f ms, checksum %.3e, %d result groups\n     spread_rates now: %s\n"
        q
        (if List.mem q Olap.Tpch_queries.join_heavy then "join-heavy" else "scan-heavy")
        (makespan /. 1e6) result.Olap.Tpch_queries.checksum
        result.Olap.Tpch_queries.rows_out
        (String.concat " " (List.map string_of_int spreads)))
    [ 6; 1; 3; 9; 18 ];
  let st = Charm.Policy.stats policy in
  Printf.printf
    "\npolicy activity: %d evaluations, %d spreads, %d contractions, %d migrations\n"
    st.Charm.Policy.ticks st.Charm.Policy.spreads st.Charm.Policy.contracts
    st.Charm.Policy.migrations
