(* Quickstart: bring up CHARM on a simulated dual-socket AMD Milan, run a
   parallel computation through the paper's API (init / parallel_for /
   all_do / barrier / finalize), and read the chiplet-level statistics.

   Run with: dune exec examples/quickstart.exe *)

open Chipsim
module Runtime = Charm.Runtime
module Sched = Engine.Sched

let () =
  (* 1. a machine: 2 sockets x 8 chiplets x 8 cores, 32 MB L3 per chiplet *)
  let machine = Machine.create (Presets.amd_milan ()) in
  Format.printf "machine: %a@." Topology.pp (Machine.topology machine);

  (* 2. CHARM_Init with 16 worker threads (Alg. 2 places them compactly) *)
  let rt = Runtime.init machine ~n_workers:16 in

  (* 3. allocate a shared dataset and fill it in parallel *)
  let n = 1 lsl 18 in
  let data = Runtime.alloc_shared rt ~elt_bytes:8 ~count:n () in
  let values = Array.make n 0 in
  let makespan =
    Runtime.run rt (fun ctx ->
        Runtime.Api.parallel_for ctx ~lo:0 ~hi:n (fun ctx' lo hi ->
            Sched.Ctx.write_range ctx' data ~lo ~hi;
            for i = lo to hi - 1 do
              values.(i) <- i * i
            done))
  in
  Printf.printf "parallel fill of %d elements: %.3f ms virtual time\n" n
    (makespan /. 1e6);

  (* 4. every worker reports in via all_do + barrier *)
  let b = Runtime.barrier rt in
  let sum = ref 0 in
  ignore
    (Runtime.all_do rt (fun ctx w ->
         Runtime.Api.barrier_wait ctx b;
         sum := !sum + w)
      : float);
  Printf.printf "all %d workers synchronized (sum of ids = %d)\n" 16 !sum;

  (* 5. CHARM_Finalize: chiplet-aware statistics *)
  let report = Runtime.finalize rt in
  Format.printf "%a@." Engine.Stats.pp report;
  let policy = Runtime.policy rt in
  Printf.printf "worker 0 spread_rate: %d\n"
    (Charm.Policy.spread_rate policy ~worker:0)
