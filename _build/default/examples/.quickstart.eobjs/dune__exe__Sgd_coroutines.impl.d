examples/sgd_coroutines.ml: Dataset Dimmwitted Engine Exec_env Harness Printf Sgd Workloads
