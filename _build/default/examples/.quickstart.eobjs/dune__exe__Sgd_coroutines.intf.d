examples/sgd_coroutines.mli:
