examples/graph_analytics.ml: Array Bfs Csr Engine Exec_env Harness Kronecker Pagerank Printf Workload_result Workloads
