examples/adaptive_olap.ml: Charm Harness List Olap Option Printf String Workloads
