examples/quickstart.mli:
