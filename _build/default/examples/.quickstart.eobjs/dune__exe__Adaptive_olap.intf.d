examples/adaptive_olap.mli:
