examples/quickstart.ml: Array Charm Chipsim Engine Format Machine Presets Printf Topology
