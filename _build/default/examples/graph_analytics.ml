(* Graph analytics under CHARM vs a NUMA-aware runtime: the paper's
   motivating scenario (§5.2).  Builds a Kronecker graph, runs BFS and
   PageRank under both systems on identical machines, and shows where the
   fills were served from.

   Run with: dune exec examples/graph_analytics.exe *)

open Workloads
module Sys_ = Harness.Systems

let scale = 13
let workers = 32

let run_system sys =
  let inst = Sys_.make ~cache_scale:16 sys Sys_.Amd_milan ~n_workers:workers () in
  let env = inst.Sys_.env in
  let kron = Kronecker.generate ~scale ~edge_factor:16 () in
  let g =
    Csr.of_kronecker
      ~alloc:(fun ~elt_bytes ~count -> env.Exec_env.alloc_shared ~elt_bytes ~count)
      kron
  in
  let source =
    let rec go v = if Csr.degree g v > 0 then v else go (v + 1) in
    go 0
  in
  let levels, bfs = Bfs.run env g ~source in
  let _ranks, pr = Pagerank.run env g () in
  let reached = Array.fold_left (fun acc l -> if l >= 0 then acc + 1 else acc) 0 levels in
  let report = Sys_.report inst in
  (bfs, pr, reached, report)

let () =
  Printf.printf "Kronecker graph: 2^%d vertices, %d workers\n\n" scale workers;
  let show name (bfs, pr, reached, report) =
    let a = report.Engine.Stats.accesses in
    Printf.printf "%s:\n" name;
    Printf.printf "  BFS: %.2f Medges/s (%d vertices reached)\n"
      (Workload_result.throughput_per_s bfs /. 1e6)
      reached;
    Printf.printf "  PageRank: %.2f Medge-updates/s\n"
      (Workload_result.throughput_per_s pr /. 1e6);
    Printf.printf
      "  fills: local-chiplet=%d remote-chiplet=%d remote-numa=%d dram=%d\n\n"
      a.Engine.Stats.local_chiplet a.Engine.Stats.remote_chiplet
      a.Engine.Stats.remote_numa a.Engine.Stats.dram
  in
  let charm = run_system Sys_.Charm in
  let ring = run_system Sys_.Ring in
  show "CHARM" charm;
  show "RING (NUMA-aware baseline)" ring;
  let (bfs_c, _, _, _) = charm and (bfs_r, _, _, _) = ring in
  Printf.printf "CHARM BFS speedup over RING: %.2fx\n"
    (Workload_result.throughput_per_s bfs_c /. Workload_result.throughput_per_s bfs_r)
