open Chipsim
open Engine

let machine () = Machine.create (Presets.amd_milan ())

let test_migrate () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  Sched.migrate sched ~worker:0 ~core:32;
  Alcotest.(check int) "new core" 32 (Sched.worker_core sched 0);
  Alcotest.(check (option int)) "ownership moved" (Some 0) (Sched.worker_of_core sched 32);
  Alcotest.(check (option int)) "old core free" None (Sched.worker_of_core sched 0);
  Alcotest.(check bool) "migration charged" true (Sched.worker_clock sched 0 > 0.0);
  Alcotest.(check int) "pmu migration" 1 (Pmu.read (Machine.pmu m) ~core:32 Pmu.Migration);
  Alcotest.check_raises "occupied target"
    (Invalid_argument "Sched.migrate: core 1 already owned by worker 1") (fun () ->
      Sched.migrate sched ~worker:0 ~core:1)

let test_placement_collision_rejected () =
  let m = machine () in
  try
    ignore (Sched.create m ~n_workers:2 ~placement:(fun _ -> 3));
    Alcotest.fail "accepted colliding placement"
  with Invalid_argument _ -> ()

let test_deadlock_detected () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  ignore
    (Sched.spawn sched (fun ctx ->
         (* suspend with a registrar that never wakes us *)
         Sched.Ctx.suspend ctx (fun _task -> ())));
  Alcotest.check_raises "deadlock" Sched.Deadlock (fun () ->
      ignore (Sched.run sched : float))

let test_ready_at_delays () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  let seen = ref 0.0 in
  ignore
    (Sched.spawn sched ~at:5_000.0 (fun ctx -> seen := Sched.Ctx.now ctx));
  ignore (Sched.run sched : float);
  Alcotest.(check bool) "not before ready time" true (!seen >= 5_000.0)

let test_os_threads_cost_more () =
  let run_with config =
    let m = machine () in
    let sched = Sched.create ~config m ~n_workers:4 ~placement:(fun w -> w) in
    for _ = 1 to 64 do
      ignore (Sched.spawn sched (fun ctx -> Sched.Ctx.work ctx 100.0))
    done;
    Sched.run sched
  in
  let coroutines = run_with Sched.default_config in
  let os_threads =
    run_with
      {
        Sched.default_config with
        Sched.task_model = Sched.Os_threads { spawn_ns = 20_000.0; switch_ns = 2_000.0 };
      }
  in
  Alcotest.(check bool) "kernel threads slower" true (os_threads > 3.0 *. coroutines)

let test_concurrency_samples () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  for _ = 1 to 8 do
    ignore (Sched.spawn sched (fun ctx -> Sched.Ctx.work ctx 50.0))
  done;
  ignore (Sched.run sched : float);
  let samples = Sched.concurrency_samples sched in
  Alcotest.(check int) "one sample per finish" 8 (Array.length samples);
  let _, last = samples.(Array.length samples - 1) in
  Alcotest.(check int) "drains to zero" 0 last

let test_worker_local_spawn () =
  let m = machine () in
  let sched = Sched.create ~config:{ Sched.default_config with Sched.steal_enabled = false }
      m ~n_workers:2 ~placement:(fun w -> w) in
  let child_worker = ref (-1) in
  ignore
    (Sched.spawn sched ~worker:1 (fun ctx ->
         let child = Sched.Ctx.spawn ctx (fun ctx' -> child_worker := Sched.Ctx.worker_id ctx') in
         Sched.Ctx.await ctx child));
  ignore (Sched.run sched : float);
  Alcotest.(check int) "child inherits spawner's worker" 1 !child_worker

let test_charge () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  Sched.charge sched ~worker:0 123.0;
  Alcotest.(check (float 0.001)) "charged" 123.0 (Sched.worker_clock sched 0)

let test_quantum_hook_runs () =
  let m = machine () in
  let count = ref 0 in
  let hooks =
    { Sched.no_hooks with Sched.on_quantum_end = (fun _ _ -> incr count) }
  in
  let sched = Sched.create ~hooks m ~n_workers:1 ~placement:(fun w -> w) in
  ignore
    (Sched.spawn sched (fun ctx ->
         Sched.Ctx.yield ctx;
         Sched.Ctx.yield ctx));
  ignore (Sched.run sched : float);
  Alcotest.(check int) "hook per quantum" 3 !count

let test_sync_clocks () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:3 ~placement:(fun w -> w) in
  Sched.charge sched ~worker:1 5_000.0;
  Sched.sync_clocks sched;
  for w = 0 to 2 do
    Alcotest.(check (float 0.001)) "aligned" 5_000.0 (Sched.worker_clock sched w)
  done

let suite =
  [
    Alcotest.test_case "migrate" `Quick test_migrate;
    Alcotest.test_case "sync_clocks" `Quick test_sync_clocks;
    Alcotest.test_case "placement collision rejected" `Quick test_placement_collision_rejected;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "ready_at delays" `Quick test_ready_at_delays;
    Alcotest.test_case "os threads cost more" `Quick test_os_threads_cost_more;
    Alcotest.test_case "concurrency samples" `Quick test_concurrency_samples;
    Alcotest.test_case "worker-local spawn" `Quick test_worker_local_spawn;
    Alcotest.test_case "external charge" `Quick test_charge;
    Alcotest.test_case "quantum hook" `Quick test_quantum_hook_runs;
  ]
