open Chipsim
module Sched = Engine.Sched
module Runtime = Charm.Runtime

let make ?config ~n_workers () =
  let machine = Machine.create (Presets.amd_milan ()) in
  (machine, Runtime.init ?config machine ~n_workers)

let test_init_places_compactly () =
  let _m, rt = make ~n_workers:8 () in
  let sched = Runtime.sched rt in
  for w = 0 to 7 do
    Alcotest.(check int) "compact core" w (Sched.worker_core sched w)
  done

let test_init_clamps_spread () =
  (* 64 workers cannot start at spread 1; init must clamp to 8 *)
  let _m, rt = make ~n_workers:64 () in
  Alcotest.(check int) "clamped initial spread" 8
    (Charm.Policy.spread_rate (Runtime.policy rt) ~worker:0)

let test_run_and_makespan () =
  let _m, rt = make ~n_workers:4 () in
  let makespan = Runtime.run rt (fun ctx -> Sched.Ctx.work ctx 1234.0) in
  Alcotest.(check bool) "makespan covers work" true (makespan >= 1234.0);
  Alcotest.(check (float 1.0)) "last_makespan" makespan (Runtime.last_makespan rt)

let test_all_do_runs_every_worker () =
  let _m, rt = make ~n_workers:6 () in
  let seen = Array.make 6 false in
  ignore
    (Runtime.all_do rt (fun _ctx w -> seen.(w) <- true)
      : float);
  Alcotest.(check bool) "all workers ran" true (Array.for_all Fun.id seen)

let test_parallel_for_covers_range () =
  let _m, rt = make ~n_workers:4 () in
  let n = 1000 in
  let hits = Array.make n 0 in
  ignore
    (Runtime.run rt (fun ctx ->
         Runtime.Api.parallel_for ctx ~lo:0 ~hi:n (fun _ctx' lo hi ->
             for i = lo to hi - 1 do
               hits.(i) <- hits.(i) + 1
             done))
      : float);
  Alcotest.(check bool) "each index exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_call_sync_runs_on_target () =
  let _m, rt = make ~n_workers:4 () in
  let ran_on = ref (-1) in
  ignore
    (Runtime.run rt (fun ctx ->
         Runtime.Api.call_sync ctx ~worker:3 (fun ctx' ->
             ran_on := Sched.Ctx.worker_id ctx'))
      : float);
  Alcotest.(check int) "on worker 3" 3 !ran_on

let test_call_pays_message_latency () =
  let _m, rt = make ~n_workers:64 () in
  let start_time = ref 0.0 in
  ignore
    (Runtime.run rt (fun ctx ->
         (* worker 63 is on another chiplet; message latency > 0 *)
         Runtime.Api.call_sync ctx ~worker:63 (fun ctx' ->
             start_time := Sched.Ctx.now ctx'))
      : float);
  Alcotest.(check bool) "message delayed" true (!start_time > 0.0)

let test_alloc_binds_to_caller_socket () =
  let m, rt = make ~n_workers:64 () in
  ignore
    (Runtime.run rt (fun ctx ->
         let r = Runtime.Api.alloc ctx ~elt_bytes:8 ~count:16 () in
         (* first touch from anywhere must land on the caller's socket *)
         let node =
           Simmem.node_of_addr (Machine.mem m) ~toucher_node:1 (Simmem.addr r 0)
         in
         Alcotest.(check int) "bound to socket 0" 0 node)
      : float)

let test_barrier_api () =
  let _m, rt = make ~n_workers:4 () in
  let b = Runtime.barrier rt in
  let after = ref 0 in
  ignore
    (Runtime.all_do rt (fun ctx _w ->
         Runtime.Api.barrier_wait ctx b;
         incr after)
      : float);
  Alcotest.(check int) "all through" 4 !after

let test_finalize_reports () =
  let _m, rt = make ~n_workers:2 () in
  ignore (Runtime.run rt (fun ctx -> Sched.Ctx.work ctx 10.0) : float);
  let report = Runtime.finalize rt in
  Alcotest.(check bool) "tasks executed" true (report.Engine.Stats.tasks_executed >= 1);
  Alcotest.(check bool) "switches counted" true (report.Engine.Stats.context_switches >= 1)

let test_adaptation_under_pressure () =
  (* a working set that exceeds per-chiplet L3 even at full spread keeps
     the remote-fill rate high, so the policy must spread and stay spread
     (at the capacity boundary Alg. 1 oscillates by design — it has no
     hysteresis — so the probe uses unambiguous pressure) *)
  let topo = Presets.amd_milan ~scale:16 () in
  (* 2 MB L3 per chiplet *)
  let machine = Machine.create topo in
  let rt = Runtime.init machine ~n_workers:8 in
  let region = Runtime.alloc_shared rt ~elt_bytes:8 ~count:(1 lsl 22) () in
  (* 32 MB across 8 workers: 4 MB per worker > any slice *)
  ignore
    (Runtime.all_do rt (fun ctx w ->
         let chunk = (1 lsl 22) / 8 in
         for pass = 1 to 3 do
           ignore pass;
           Sched.Ctx.read_range ctx region ~lo:(w * chunk) ~hi:((w + 1) * chunk);
           Sched.Ctx.yield ctx
         done)
      : float);
  let policy = Runtime.policy rt in
  let max_spread = ref 0 in
  for w = 0 to 7 do
    max_spread := max !max_spread (Charm.Policy.spread_rate policy ~worker:w)
  done;
  Alcotest.(check bool) "spread grew beyond 1" true (!max_spread > 1);
  let st = Charm.Policy.stats policy in
  Alcotest.(check bool) "policy made spread decisions" true
    (st.Charm.Policy.spreads > 0)

let suite =
  [
    Alcotest.test_case "init compact placement" `Quick test_init_places_compactly;
    Alcotest.test_case "init clamps spread" `Quick test_init_clamps_spread;
    Alcotest.test_case "run returns makespan" `Quick test_run_and_makespan;
    Alcotest.test_case "all_do covers workers" `Quick test_all_do_runs_every_worker;
    Alcotest.test_case "parallel_for covers range" `Quick test_parallel_for_covers_range;
    Alcotest.test_case "call_sync on target worker" `Quick test_call_sync_runs_on_target;
    Alcotest.test_case "call pays message latency" `Quick test_call_pays_message_latency;
    Alcotest.test_case "alloc binds to caller socket" `Quick test_alloc_binds_to_caller_socket;
    Alcotest.test_case "barrier API" `Quick test_barrier_api;
    Alcotest.test_case "finalize reports" `Quick test_finalize_reports;
    Alcotest.test_case "adapts under cache pressure" `Quick test_adaptation_under_pressure;
  ]
