open Workloads

let env sys ~workers =
  let inst = Harness.Systems.make sys Harness.Systems.Amd_milan ~n_workers:workers () in
  inst.Harness.Systems.env

let params =
  {
    Streamcluster.default_params with
    Streamcluster.points = 512;
    dims = 8;
    batch = 256;
    search_rounds = 3;
  }

let test_runs_and_counts () =
  let o = Streamcluster.run (env Harness.Systems.Charm ~workers:4) params in
  Alcotest.(check bool) "evaluations happened" true
    (o.Streamcluster.result.Workload_result.work_items > 0);
  Alcotest.(check bool) "cost positive" true (o.Streamcluster.total_cost > 0.0);
  Alcotest.(check bool) "centers bounded" true
    (o.Streamcluster.centers_opened <= 2 * params.Streamcluster.k_max)

let test_deterministic_quality_across_systems () =
  let a = Streamcluster.run (env Harness.Systems.Charm ~workers:4) params in
  let b = Streamcluster.run (env Harness.Systems.Shoal ~workers:4) params in
  Alcotest.(check (float 0.0001)) "same clustering quality"
    a.Streamcluster.total_cost b.Streamcluster.total_cost;
  Alcotest.(check int) "same centers" a.Streamcluster.centers_opened
    b.Streamcluster.centers_opened

let test_opening_centers_reduces_cost () =
  (* more search rounds can only (weakly) reduce the final assignment cost *)
  let none = Streamcluster.run (env Harness.Systems.Charm ~workers:4)
      { params with Streamcluster.search_rounds = 0 } in
  let some = Streamcluster.run (env Harness.Systems.Charm ~workers:4) params in
  Alcotest.(check bool) "local search helps" true
    (some.Streamcluster.total_cost <= none.Streamcluster.total_cost)

let test_invalid_params () =
  try
    ignore (Streamcluster.run (env Harness.Systems.Charm ~workers:2)
              { params with Streamcluster.batch = 0 });
    Alcotest.fail "accepted zero batch"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "runs and counts" `Quick test_runs_and_counts;
    Alcotest.test_case "deterministic across systems" `Quick
      test_deterministic_quality_across_systems;
    Alcotest.test_case "local search reduces cost" `Quick test_opening_centers_reduces_cost;
    Alcotest.test_case "invalid params" `Quick test_invalid_params;
  ]
