open Chipsim

let mem () = Simmem.create (Presets.amd_milan ())

let test_alloc_disjoint () =
  let m = mem () in
  let a = Simmem.alloc m ~elt_bytes:8 ~count:100 () in
  let b = Simmem.alloc m ~elt_bytes:8 ~count:100 () in
  let a_last = Simmem.addr a 99 and b_first = Simmem.addr b 0 in
  Alcotest.(check bool) "regions ordered" true (a_last < b_first);
  Alcotest.(check bool) "no shared page" true
    (a_last / Simmem.page_bytes < b_first / Simmem.page_bytes)

let test_first_touch () =
  let m = mem () in
  let r = Simmem.alloc m ~elt_bytes:8 ~count:1024 () in
  let node = Simmem.node_of_addr m ~toucher_node:1 (Simmem.addr r 0) in
  Alcotest.(check int) "first touch binds to toucher" 1 node;
  (* second touch from elsewhere keeps the placement *)
  let node' = Simmem.node_of_addr m ~toucher_node:0 (Simmem.addr r 0) in
  Alcotest.(check int) "sticky" 1 node'

let test_bind () =
  let m = mem () in
  let r = Simmem.alloc m ~policy:(Simmem.Bind 1) ~elt_bytes:8 ~count:1024 () in
  Alcotest.(check int) "bound node" 1
    (Simmem.node_of_addr m ~toucher_node:0 (Simmem.addr r 0))

let test_interleave () =
  let m = mem () in
  let pages = 8 in
  let count = pages * Simmem.page_bytes / 8 in
  let r = Simmem.alloc m ~policy:Simmem.Interleave ~elt_bytes:8 ~count () in
  let nodes =
    List.init pages (fun p ->
        Simmem.node_of_addr m ~toucher_node:0 (Simmem.addr r (p * Simmem.page_bytes / 8)))
  in
  Alcotest.(check (list int)) "alternating" [ 0; 1; 0; 1; 0; 1; 0; 1 ] nodes

let test_rebind () =
  let m = mem () in
  let r = Simmem.alloc m ~policy:(Simmem.Bind 0) ~elt_bytes:8 ~count:1024 () in
  ignore (Simmem.node_of_addr m ~toucher_node:0 (Simmem.addr r 0));
  Alcotest.(check int) "placed on 0" 1 (Simmem.placed_pages m ~node:0);
  Simmem.rebind m r (Simmem.Bind 1);
  Alcotest.(check int) "pages dropped" 0 (Simmem.placed_pages m ~node:0);
  Alcotest.(check int) "re-placed on 1" 1
    (Simmem.node_of_addr m ~toucher_node:0 (Simmem.addr r 0))

let test_validation () =
  let m = mem () in
  (try
     ignore (Simmem.alloc m ~policy:(Simmem.Bind 5) ~elt_bytes:8 ~count:4 ());
     Alcotest.fail "accepted bad bind node"
   with Invalid_argument _ -> ());
  try
    ignore (Simmem.alloc m ~elt_bytes:0 ~count:4 ());
    Alcotest.fail "accepted zero elt_bytes"
  with Invalid_argument _ -> ()

let prop_addr_within_region =
  QCheck.Test.make ~name:"addresses stay within the region" ~count:100
    QCheck.(pair (int_range 1 64) (int_range 1 1000))
    (fun (elt_bytes, count) ->
      let m = mem () in
      let r = Simmem.alloc m ~elt_bytes ~count () in
      let last = Simmem.addr r (count - 1) in
      last + elt_bytes <= r.Simmem.base + r.Simmem.length_bytes)

let suite =
  [
    Alcotest.test_case "allocations disjoint" `Quick test_alloc_disjoint;
    Alcotest.test_case "first touch" `Quick test_first_touch;
    Alcotest.test_case "bind" `Quick test_bind;
    Alcotest.test_case "interleave" `Quick test_interleave;
    Alcotest.test_case "rebind" `Quick test_rebind;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_addr_within_region;
  ]
