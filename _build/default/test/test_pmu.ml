open Chipsim

let test_incr_read () =
  let pmu = Pmu.create ~cores:4 in
  Pmu.incr pmu ~core:1 Pmu.L2_hit;
  Pmu.add pmu ~core:1 Pmu.L2_hit 4;
  Alcotest.(check int) "core 1" 5 (Pmu.read pmu ~core:1 Pmu.L2_hit);
  Alcotest.(check int) "core 0 untouched" 0 (Pmu.read pmu ~core:0 Pmu.L2_hit);
  Alcotest.(check int) "total" 5 (Pmu.total pmu Pmu.L2_hit)

let test_snapshot_delta () =
  let pmu = Pmu.create ~cores:2 in
  Pmu.incr pmu ~core:0 Pmu.Dram_local;
  let before = Pmu.snapshot pmu in
  Pmu.add pmu ~core:0 Pmu.Dram_local 7;
  Pmu.incr pmu ~core:1 Pmu.Dram_remote;
  let after = Pmu.snapshot pmu in
  Alcotest.(check int) "delta core 0" 7 (Pmu.delta ~before ~after ~core:0 Pmu.Dram_local);
  Alcotest.(check int) "delta total remote" 1 (Pmu.delta_total ~before ~after Pmu.Dram_remote)

let test_remote_fill_events () =
  let pmu = Pmu.create ~cores:1 in
  Pmu.incr pmu ~core:0 Pmu.Fill_remote_chiplet;
  Pmu.incr pmu ~core:0 Pmu.Fill_remote_numa;
  Pmu.incr pmu ~core:0 Pmu.Dram_local;
  Pmu.incr pmu ~core:0 Pmu.Dram_remote;
  Pmu.incr pmu ~core:0 Pmu.L3_local_hit;  (* not remote *)
  Alcotest.(check int) "alg1 counter" 4 (Pmu.remote_fill_events pmu ~core:0)

let test_reset () =
  let pmu = Pmu.create ~cores:2 in
  Pmu.incr pmu ~core:0 Pmu.Migration;
  Pmu.incr pmu ~core:1 Pmu.Migration;
  Pmu.reset_core pmu ~core:0;
  Alcotest.(check int) "core 0 reset" 0 (Pmu.read pmu ~core:0 Pmu.Migration);
  Alcotest.(check int) "core 1 kept" 1 (Pmu.read pmu ~core:1 Pmu.Migration);
  Pmu.reset pmu;
  Alcotest.(check int) "all reset" 0 (Pmu.total pmu Pmu.Migration)

let test_bounds () =
  let pmu = Pmu.create ~cores:2 in
  Alcotest.check_raises "core out of range" (Invalid_argument "Pmu: core out of range")
    (fun () -> Pmu.incr pmu ~core:2 Pmu.L2_hit)

let test_event_names_unique () =
  let names = List.map Pmu.event_name Pmu.all_events in
  Alcotest.(check int) "count" Pmu.num_events (List.length names);
  Alcotest.(check int) "unique" Pmu.num_events
    (List.length (List.sort_uniq compare names));
  let idxs = List.map Pmu.event_index Pmu.all_events in
  Alcotest.(check int) "indices unique" Pmu.num_events
    (List.length (List.sort_uniq compare idxs))

let suite =
  [
    Alcotest.test_case "incr/read/total" `Quick test_incr_read;
    Alcotest.test_case "snapshot delta" `Quick test_snapshot_delta;
    Alcotest.test_case "remote fill counter" `Quick test_remote_fill_events;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "bounds" `Quick test_bounds;
    Alcotest.test_case "event names unique" `Quick test_event_names_unique;
  ]
