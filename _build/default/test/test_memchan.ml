open Chipsim

let chan () =
  Memchan.create ~bin_ns:1000.0 ~nodes:2 ~channels_per_node:2
    ~bytes_per_ns_per_channel:1.0 ~line_bytes:64 ()
(* capacity per bin = 2 * 1.0 * 1000 = 2000 bytes = ~31 lines *)

let test_uncontended () =
  let c = chan () in
  let l = Memchan.access_ns c ~node:0 ~now_ns:0.0 ~base_ns:100.0 in
  Alcotest.(check bool) "near base" true (l >= 100.0 && l < 120.0)

let test_contention_grows () =
  let c = chan () in
  let first = Memchan.access_ns c ~node:0 ~now_ns:0.0 ~base_ns:100.0 in
  (* hammer the same bin far past saturation *)
  let last = ref first in
  for _ = 1 to 100 do
    last := Memchan.access_ns c ~node:0 ~now_ns:10.0 ~base_ns:100.0
  done;
  Alcotest.(check bool) "saturated latency grows" true (!last > 2.0 *. first);
  Alcotest.(check bool) "load ratio > 1" true (Memchan.load_ratio c ~node:0 ~now_ns:10.0 > 1.0)

let test_nodes_independent () =
  let c = chan () in
  for _ = 1 to 100 do
    ignore (Memchan.access_ns c ~node:0 ~now_ns:0.0 ~base_ns:100.0)
  done;
  let l = Memchan.access_ns c ~node:1 ~now_ns:0.0 ~base_ns:100.0 in
  Alcotest.(check bool) "other node unaffected" true (l < 140.0)

let test_bins_roll () =
  let c = chan () in
  for _ = 1 to 100 do
    ignore (Memchan.access_ns c ~node:0 ~now_ns:0.0 ~base_ns:100.0)
  done;
  (* a later bin starts fresh *)
  let l = Memchan.access_ns c ~node:0 ~now_ns:5_000.0 ~base_ns:100.0 in
  Alcotest.(check bool) "fresh bin" true (l < 140.0)

let test_bytes_served () =
  let c = chan () in
  for _ = 1 to 10 do
    ignore (Memchan.access_ns c ~node:1 ~now_ns:0.0 ~base_ns:50.0)
  done;
  Alcotest.(check int) "bytes" 640 (Memchan.bytes_served c ~node:1);
  Memchan.reset c;
  Alcotest.(check int) "reset" 0 (Memchan.bytes_served c ~node:1)

let test_bad_node () =
  let c = chan () in
  Alcotest.check_raises "node range" (Invalid_argument "Memchan: node out of range")
    (fun () -> ignore (Memchan.access_ns c ~node:2 ~now_ns:0.0 ~base_ns:1.0))

let suite =
  [
    Alcotest.test_case "uncontended near base" `Quick test_uncontended;
    Alcotest.test_case "contention inflates" `Quick test_contention_grows;
    Alcotest.test_case "nodes independent" `Quick test_nodes_independent;
    Alcotest.test_case "bins roll over" `Quick test_bins_roll;
    Alcotest.test_case "bytes served" `Quick test_bytes_served;
    Alcotest.test_case "bad node" `Quick test_bad_node;
  ]
