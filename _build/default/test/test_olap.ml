let env sys ~workers =
  let inst = Harness.Systems.make sys Harness.Systems.Amd_milan ~n_workers:workers () in
  inst.Harness.Systems.env

let dataset env_ =
  Olap.Tpch_data.generate
    ~alloc:(fun ~elt_bytes ~count ->
      env_.Workloads.Exec_env.alloc_shared ~elt_bytes ~count)
    ~sf:0.002 ~seed:11 ()

let test_cardinalities () =
  let e = env Harness.Systems.Charm ~workers:4 in
  let d = dataset e in
  Alcotest.(check int) "regions" 5 (Olap.Table.rows d.Olap.Tpch_data.region);
  Alcotest.(check int) "nations" 25 (Olap.Table.rows d.Olap.Tpch_data.nation);
  Alcotest.(check int) "suppliers" 20 (Olap.Table.rows d.Olap.Tpch_data.supplier);
  Alcotest.(check int) "customers" 300 (Olap.Table.rows d.Olap.Tpch_data.customer);
  Alcotest.(check int) "orders" 3000 (Olap.Table.rows d.Olap.Tpch_data.orders);
  let li = Olap.Table.rows d.Olap.Tpch_data.lineitem in
  Alcotest.(check bool) "lineitem fanout in [1,7] per order" true
    (li >= 3000 && li <= 7 * 3000);
  (* partsupp is 4 rows per part *)
  Alcotest.(check int) "partsupp" (4 * Olap.Table.rows d.Olap.Tpch_data.part)
    (Olap.Table.rows d.Olap.Tpch_data.partsupp)

let test_date_encoding () =
  Alcotest.(check int) "1992 epoch" 0 (Olap.Tpch_data.day_of ~year:1992);
  Alcotest.(check int) "1995" (3 * 365) (Olap.Tpch_data.day_of ~year:1995);
  try
    ignore (Olap.Tpch_data.day_of ~year:1980);
    Alcotest.fail "accepted bad year"
  with Invalid_argument _ -> ()

let test_q6_matches_naive () =
  let e = env Harness.Systems.Charm ~workers:4 in
  let d = dataset e in
  let result, _ = Olap.Tpch_queries.execute e d 6 in
  (* naive sequential recomputation *)
  let li = d.Olap.Tpch_data.lineitem in
  let ship = Olap.Table.ints li "l_shipdate" in
  let qty = Olap.Table.floats li "l_quantity" in
  let price = Olap.Table.floats li "l_extendedprice" in
  let disc = Olap.Table.floats li "l_discount" in
  let lo = Olap.Tpch_data.day_of ~year:1994 and hi = Olap.Tpch_data.day_of ~year:1995 in
  let expected = ref 0.0 in
  for r = 0 to Olap.Table.rows li - 1 do
    if
      ship.(r) >= lo && ship.(r) < hi
      && disc.(r) >= 0.05 && disc.(r) <= 0.07
      && qty.(r) < 24.0
    then expected := !expected +. (price.(r) *. disc.(r))
  done;
  Alcotest.(check (float 0.001)) "q6 revenue" !expected result.Olap.Tpch_queries.checksum

let test_q1_group_count () =
  let e = env Harness.Systems.Charm ~workers:4 in
  let d = dataset e in
  let result, _ = Olap.Tpch_queries.execute e d 1 in
  (* 3 return flags x 2 line statuses *)
  Alcotest.(check int) "six groups" 6 result.Olap.Tpch_queries.rows_out

let test_all_queries_run () =
  let e = env Harness.Systems.Charm ~workers:8 in
  let d = dataset e in
  List.iter
    (fun q ->
      let result, makespan = Olap.Tpch_queries.execute e d q in
      if makespan <= 0.0 then Alcotest.failf "q%d zero makespan" q;
      if Float.is_nan result.Olap.Tpch_queries.checksum then
        Alcotest.failf "q%d produced NaN" q)
    Olap.Tpch_queries.query_numbers

let test_checksums_system_independent () =
  let run sys =
    let e = env sys ~workers:8 in
    let d = dataset e in
    List.map
      (fun q -> (fst (Olap.Tpch_queries.execute e d q)).Olap.Tpch_queries.checksum)
      [ 1; 3; 5; 6; 9; 13; 18; 22 ]
  in
  let a = run Harness.Systems.Charm and b = run Harness.Systems.Os_default in
  List.iter2 (fun x y -> Alcotest.(check (float 0.0001)) "equal checksum" x y) a b

let test_bad_query_number () =
  let e = env Harness.Systems.Charm ~workers:2 in
  let d = dataset e in
  try
    ignore (Olap.Tpch_queries.execute e d 23);
    Alcotest.fail "accepted query 23"
  with Invalid_argument _ -> ()

let test_table_validation () =
  let e = env Harness.Systems.Charm ~workers:2 in
  let alloc ~elt_bytes ~count = e.Workloads.Exec_env.alloc_shared ~elt_bytes ~count in
  try
    ignore
      (Olap.Table.v ~name:"bad" ~rows:2
         [ ("a", Olap.Column.ints ~alloc [| 1 |]) ]);
    Alcotest.fail "accepted mismatched column"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "cardinalities" `Quick test_cardinalities;
    Alcotest.test_case "date encoding" `Quick test_date_encoding;
    Alcotest.test_case "q6 matches naive scan" `Quick test_q6_matches_naive;
    Alcotest.test_case "q1 group count" `Quick test_q1_group_count;
    Alcotest.test_case "all 22 queries run" `Slow test_all_queries_run;
    Alcotest.test_case "checksums system-independent" `Slow test_checksums_system_independent;
    Alcotest.test_case "bad query number" `Quick test_bad_query_number;
    Alcotest.test_case "table validation" `Quick test_table_validation;
  ]
