open Chipsim

let amd () = Presets.amd_milan ()

let test_classes () =
  let t = amd () in
  Alcotest.(check string) "same core" "same-core"
    (Latency.distance_to_string (Latency.classify t 5 5));
  Alcotest.(check string) "same chiplet" "same-chiplet"
    (Latency.distance_to_string (Latency.classify t 0 7));
  Alcotest.(check string) "same group" "same-group"
    (Latency.distance_to_string (Latency.classify t 0 8));
  Alcotest.(check string) "same socket" "same-socket"
    (Latency.distance_to_string (Latency.classify t 0 63));
  Alcotest.(check string) "cross socket" "cross-socket"
    (Latency.distance_to_string (Latency.classify t 0 64))

let test_hierarchy () =
  (* the paper's §2.1 ordering: chiplet < group < socket < cross-socket *)
  let p = Latency.default_profile in
  Alcotest.(check bool) "ordering" true
    (p.Latency.same_chiplet_ns < p.Latency.same_group_ns
    && p.Latency.same_group_ns < p.Latency.same_socket_ns
    && p.Latency.same_socket_ns < p.Latency.cross_socket_ns)

let test_jitter_bounds () =
  let t = amd () in
  let p = Latency.default_profile in
  let base = p.Latency.same_chiplet_ns in
  for a = 0 to 7 do
    for b = 0 to 7 do
      if a <> b then begin
        let l = Latency.core_to_core_ns t a b in
        if l < base || l > base *. 1.09 then
          Alcotest.failf "latency %f outside [%f, %f]" l base (base *. 1.09)
      end
    done
  done

let prop_symmetry =
  QCheck.Test.make ~name:"latency is symmetric" ~count:300
    QCheck.(pair (int_range 0 127) (int_range 0 127))
    (fun (a, b) ->
      let t = amd () in
      Latency.core_to_core_ns t a b = Latency.core_to_core_ns t b a)

let prop_classify_chiplets_agrees =
  QCheck.Test.make ~name:"chiplet classification matches core classification"
    ~count:300
    QCheck.(pair (int_range 0 127) (int_range 0 127))
    (fun (a, b) ->
      let t = amd () in
      let ca = Topology.chiplet_of_core t a and cb = Topology.chiplet_of_core t b in
      ca = cb
      || Latency.classify t a b = Latency.classify_chiplets t ca cb)

let suite =
  [
    Alcotest.test_case "distance classes" `Quick test_classes;
    Alcotest.test_case "latency hierarchy" `Quick test_hierarchy;
    Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds;
    QCheck_alcotest.to_alcotest prop_symmetry;
    QCheck_alcotest.to_alcotest prop_classify_chiplets_agrees;
  ]
