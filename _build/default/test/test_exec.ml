(* Morsel-driven operator tests (lib/olap/exec.ml). *)

let env () =
  let inst =
    Harness.Systems.make Harness.Systems.Charm Harness.Systems.Amd_milan
      ~n_workers:4 ()
  in
  inst.Harness.Systems.env

let in_task env_ f =
  let out = ref None in
  ignore (env_.Workloads.Exec_env.run (fun ctx -> out := Some (f ctx)) : float);
  Option.get !out

let test_hash_join_multimap () =
  let e = env () in
  let alloc ~elt_bytes ~count = e.Workloads.Exec_env.alloc_shared ~elt_bytes ~count in
  let payloads =
    in_task e (fun ctx ->
        let hj = Olap.Exec.Hash_join.create ~alloc ~expected:16 in
        Olap.Exec.Hash_join.insert ctx hj ~key:7 ~payload:1;
        Olap.Exec.Hash_join.insert ctx hj ~key:7 ~payload:2;
        Olap.Exec.Hash_join.insert ctx hj ~key:9 ~payload:3;
        ( List.sort compare (Olap.Exec.Hash_join.probe ctx hj ~key:7),
          Olap.Exec.Hash_join.probe ctx hj ~key:404,
          Olap.Exec.Hash_join.mem ctx hj ~key:9,
          Olap.Exec.Hash_join.size hj ))
  in
  let sevens, missing, has9, size = payloads in
  Alcotest.(check (list int)) "multimap" [ 1; 2 ] sevens;
  Alcotest.(check (list int)) "missing key" [] missing;
  Alcotest.(check bool) "mem" true has9;
  Alcotest.(check int) "entries" 3 size

let test_hash_agg_accumulates () =
  let e = env () in
  let alloc ~elt_bytes ~count = e.Workloads.Exec_env.alloc_shared ~elt_bytes ~count in
  let acc =
    in_task e (fun ctx ->
        let agg = Olap.Exec.Hash_agg.create ~alloc ~expected:8 ~width:2 in
        Olap.Exec.Hash_agg.update ctx agg ~key:1 [ (0, 2.0); (1, 1.0) ];
        Olap.Exec.Hash_agg.update ctx agg ~key:1 [ (0, 3.0); (1, 1.0) ];
        Olap.Exec.Hash_agg.update ctx agg ~key:2 [ (0, 10.0) ];
        ( Olap.Exec.Hash_agg.get agg ~key:1,
          Olap.Exec.Hash_agg.groups agg,
          Olap.Exec.Hash_agg.fold agg (fun _ a s -> s +. a.(0)) 0.0 ))
  in
  let one, groups, total = acc in
  (match one with
  | Some a ->
      Alcotest.(check (float 0.001)) "sum slot 0" 5.0 a.(0);
      Alcotest.(check (float 0.001)) "count slot 1" 2.0 a.(1)
  | None -> Alcotest.fail "group missing");
  Alcotest.(check int) "groups" 2 groups;
  Alcotest.(check (float 0.001)) "fold" 15.0 total

let test_hash_agg_bad_slot () =
  let e = env () in
  let alloc ~elt_bytes ~count = e.Workloads.Exec_env.alloc_shared ~elt_bytes ~count in
  let raised =
    in_task e (fun ctx ->
        let agg = Olap.Exec.Hash_agg.create ~alloc ~expected:8 ~width:1 in
        try
          Olap.Exec.Hash_agg.update ctx agg ~key:1 [ (1, 1.0) ];
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "slot out of range" true raised

let test_parallel_scan_covers_all_rows () =
  let e = env () in
  let alloc ~elt_bytes ~count = e.Workloads.Exec_env.alloc_shared ~elt_bytes ~count in
  let col = Olap.Column.ints ~alloc (Array.init 1000 (fun i -> i)) in
  let table = Olap.Table.v ~name:"t" ~rows:1000 [ ("x", col) ] in
  let hits = Array.make 1000 0 in
  ignore
    (e.Workloads.Exec_env.run (fun ctx ->
         Olap.Exec.parallel_scan ctx table ~columns:[ "x" ] ~morsel:64
           (fun _ctx' row -> hits.(row) <- hits.(row) + 1))
      : float);
  Alcotest.(check bool) "every row exactly once" true
    (Array.for_all (fun h -> h = 1) hits)

let test_charge_sort_advances_time () =
  let e = env () in
  let before_after =
    in_task e (fun ctx ->
        let t0 = Engine.Sched.Ctx.now ctx in
        Olap.Exec.charge_sort ctx ~rows:100_000;
        Engine.Sched.Ctx.now ctx -. t0)
  in
  Alcotest.(check bool) "n log n charged" true (before_after > 100_000.0)

let suite =
  [
    Alcotest.test_case "hash join multimap" `Quick test_hash_join_multimap;
    Alcotest.test_case "hash agg accumulates" `Quick test_hash_agg_accumulates;
    Alcotest.test_case "hash agg bad slot" `Quick test_hash_agg_bad_slot;
    Alcotest.test_case "parallel scan coverage" `Quick test_parallel_scan_covers_all_rows;
    Alcotest.test_case "charge_sort advances time" `Quick test_charge_sort_advances_time;
  ]
