open Engine

let test_lifo_owner () =
  let q = Wsqueue.create () in
  Wsqueue.push q 1;
  Wsqueue.push q 2;
  Wsqueue.push q 3;
  Alcotest.(check (option int)) "pop newest" (Some 3) (Wsqueue.pop q);
  Alcotest.(check (option int)) "then 2" (Some 2) (Wsqueue.pop q);
  Alcotest.(check (option int)) "then 1" (Some 1) (Wsqueue.pop q);
  Alcotest.(check (option int)) "empty" None (Wsqueue.pop q)

let test_fifo_and_steal () =
  let q = Wsqueue.create () in
  Wsqueue.push q 1;
  Wsqueue.push q 2;
  Wsqueue.push q 3;
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Wsqueue.steal q);
  Alcotest.(check (option int)) "pop_front next oldest" (Some 2) (Wsqueue.pop_front q);
  Alcotest.(check (option int)) "owner pop newest" (Some 3) (Wsqueue.pop q)

let test_growth () =
  let q = Wsqueue.create () in
  for i = 0 to 999 do
    Wsqueue.push q i
  done;
  Alcotest.(check int) "length" 1000 (Wsqueue.length q);
  for i = 0 to 999 do
    Alcotest.(check (option int)) "fifo order" (Some i) (Wsqueue.pop_front q)
  done

let test_to_list_and_clear () =
  let q = Wsqueue.create () in
  List.iter (Wsqueue.push q) [ 5; 6; 7 ];
  Alcotest.(check (list int)) "oldest first" [ 5; 6; 7 ] (Wsqueue.to_list q);
  Wsqueue.clear q;
  Alcotest.(check bool) "empty" true (Wsqueue.is_empty q)

(* model-based property: the deque behaves like a reference list *)
let prop_model =
  let gen_ops = QCheck.(list_of_size (Gen.int_range 0 200) (int_range 0 3)) in
  QCheck.Test.make ~name:"deque matches list model" ~count:200 gen_ops (fun ops ->
      let q = Wsqueue.create () in
      let model = ref [] in
      let counter = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              incr counter;
              Wsqueue.push q !counter;
              model := !model @ [ !counter ]
          | 1 -> (
              let got = Wsqueue.pop q in
              match List.rev !model with
              | [] -> if got <> None then ok := false
              | last :: rest ->
                  if got <> Some last then ok := false;
                  model := List.rev rest)
          | _ -> (
              let got = Wsqueue.steal q in
              match !model with
              | [] -> if got <> None then ok := false
              | first :: rest ->
                  if got <> Some first then ok := false;
                  model := rest))
        ops;
      !ok && Wsqueue.length q = List.length !model)

let suite =
  [
    Alcotest.test_case "LIFO owner pops" `Quick test_lifo_owner;
    Alcotest.test_case "FIFO steals" `Quick test_fifo_and_steal;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "to_list / clear" `Quick test_to_list_and_clear;
    QCheck_alcotest.to_alcotest prop_model;
  ]
