open Chipsim
module Sched = Engine.Sched

(* Harness: a CHARM runtime whose machine we drive by hand so we can force
   specific PMU readings into Alg. 1. *)
let make ?(config = Charm.Config.default) ~n_workers () =
  let machine = Machine.create (Presets.amd_milan ()) in
  let rt = Charm.Runtime.init ~config machine ~n_workers in
  (machine, rt)

let pump_remote_events machine ~core n =
  Pmu.add (Machine.pmu machine) ~core Pmu.Dram_local n

let test_spreads_on_high_rate () =
  let machine, rt = make ~n_workers:8 () in
  let sched = Charm.Runtime.sched rt in
  let policy = Charm.Runtime.policy rt in
  Alcotest.(check int) "starts at 1" 1 (Charm.Policy.spread_rate policy ~worker:0);
  pump_remote_events machine ~core:(Sched.worker_core sched 0) 100_000;
  Charm.Policy.force_tick policy sched ~worker:0;
  Alcotest.(check int) "spread incremented" 2 (Charm.Policy.spread_rate policy ~worker:0);
  let st = Charm.Policy.stats policy in
  Alcotest.(check int) "one spread" 1 st.Charm.Policy.spreads

let test_contracts_on_low_rate () =
  let config = { Charm.Config.default with Charm.Config.initial_spread = 4 } in
  let machine, rt = make ~config ~n_workers:8 () in
  let sched = Charm.Runtime.sched rt in
  let policy = Charm.Runtime.policy rt in
  ignore machine;
  (* no remote events at all: rate 0 < threshold *)
  Charm.Policy.force_tick policy sched ~worker:0;
  Alcotest.(check int) "spread decremented" 3 (Charm.Policy.spread_rate policy ~worker:0)

let test_never_below_min_valid () =
  (* 64 workers: min valid spread is 8; contraction must stop there *)
  let config = { Charm.Config.default with Charm.Config.initial_spread = 8 } in
  let _machine, rt = make ~config ~n_workers:64 () in
  let sched = Charm.Runtime.sched rt in
  let policy = Charm.Runtime.policy rt in
  for _ = 1 to 5 do
    Charm.Policy.force_tick policy sched ~worker:0
  done;
  Alcotest.(check int) "clamped at 8" 8 (Charm.Policy.spread_rate policy ~worker:0)

let test_never_above_chiplets () =
  let machine, rt = make ~n_workers:8 () in
  let sched = Charm.Runtime.sched rt in
  let policy = Charm.Runtime.policy rt in
  for _ = 1 to 20 do
    pump_remote_events machine ~core:(Sched.worker_core sched 0) 100_000;
    Charm.Policy.force_tick policy sched ~worker:0
  done;
  Alcotest.(check bool) "bounded by chiplets/socket" true
    (Charm.Policy.spread_rate policy ~worker:0 <= 8)

let test_migration_applied () =
  let machine, rt = make ~n_workers:8 () in
  let sched = Charm.Runtime.sched rt in
  let policy = Charm.Runtime.policy rt in
  let before = Sched.worker_core sched 7 in
  pump_remote_events machine ~core:before 100_000;
  Charm.Policy.force_tick policy sched ~worker:7;
  let after = Sched.worker_core sched 7 in
  Alcotest.(check bool) "worker 7 moved" true (before <> after);
  let st = Charm.Policy.stats policy in
  Alcotest.(check int) "migration recorded" 1 st.Charm.Policy.migrations

let test_occupied_target_skipped () =
  (* worker 1 wants worker 0's spot? Construct: spread worker 1 while its
     Alg.2 target at the new spread is occupied by a worker that has not
     ticked yet.  With 8 workers at spread 1 -> spread 2, worker 1's target
     is core 1 -> target (chiplet 0, slot 1) ... worker 1 maps to chiplet 0
     slot 1 = same core; use worker 4: spread 2 target = chiplet 1 slot 0 =
     core 8, which is free -> moves.  To force an occupied skip, first
     migrate worker 7 onto core 8 manually. *)
  let machine, rt = make ~n_workers:8 () in
  let sched = Charm.Runtime.sched rt in
  let policy = Charm.Runtime.policy rt in
  Sched.migrate sched ~worker:7 ~core:10;
  Sched.migrate sched ~worker:4 ~core:8;
  pump_remote_events machine ~core:(Sched.worker_core sched 5) 100_000;
  (* worker 5 at spread 2 targets chiplet 1 slot 1 = core 9; that's free, so
     instead pin it: move worker 6 to core 9 first *)
  Sched.migrate sched ~worker:6 ~core:9;
  Charm.Policy.force_tick policy sched ~worker:5;
  Alcotest.(check int) "worker 5 did not move onto occupied core" 5
    (Sched.worker_core sched 5);
  let st = Charm.Policy.stats policy in
  Alcotest.(check bool) "skip recorded" true (st.Charm.Policy.skipped >= 1)

let test_timer_gates_tick () =
  let machine, rt = make ~n_workers:8 () in
  let sched = Charm.Runtime.sched rt in
  let policy = Charm.Runtime.policy rt in
  pump_remote_events machine ~core:(Sched.worker_core sched 0) 100_000;
  (* tick (not force): no virtual time elapsed, so nothing happens *)
  Charm.Policy.tick policy sched ~worker:0;
  Alcotest.(check int) "no decision before the timer" 1
    (Charm.Policy.spread_rate policy ~worker:0)

let test_centralized_uniform_spread () =
  let config =
    { Charm.Config.default with Charm.Config.decentralized = false }
  in
  let machine, rt = make ~config ~n_workers:8 () in
  let sched = Charm.Runtime.sched rt in
  let policy = Charm.Runtime.policy rt in
  (* heavy remote traffic on every worker's core *)
  for w = 0 to 7 do
    pump_remote_events machine ~core:(Sched.worker_core sched w) 100_000
  done;
  (* only the arbiter's tick acts; others are inert *)
  Charm.Policy.tick policy sched ~worker:3;
  Alcotest.(check int) "non-arbiter inert" 1 (Charm.Policy.spread_rate policy ~worker:3);
  Sched.charge sched ~worker:0 1_000_000.0;
  Charm.Policy.tick policy sched ~worker:0;
  for w = 0 to 7 do
    Alcotest.(check int) "uniform spread pushed" 2
      (Charm.Policy.spread_rate policy ~worker:w)
  done

let test_centralized_charges_arbiter () =
  let config =
    { Charm.Config.default with Charm.Config.decentralized = false }
  in
  let machine, rt = make ~config ~n_workers:8 () in
  let sched = Charm.Runtime.sched rt in
  let policy = Charm.Runtime.policy rt in
  ignore machine;
  Sched.charge sched ~worker:0 1_000_000.0;
  let before = Sched.worker_clock sched 0 in
  Charm.Policy.tick policy sched ~worker:0;
  (* global data collection: at least one cross-core latency per worker *)
  Alcotest.(check bool) "coordination cost charged" true
    (Sched.worker_clock sched 0 -. before >= 8.0 *. 12.0)

let suite =
  [
    Alcotest.test_case "spreads on high rate" `Quick test_spreads_on_high_rate;
    Alcotest.test_case "contracts on low rate" `Quick test_contracts_on_low_rate;
    Alcotest.test_case "clamped at min valid spread" `Quick test_never_below_min_valid;
    Alcotest.test_case "bounded above" `Quick test_never_above_chiplets;
    Alcotest.test_case "migration applied" `Quick test_migration_applied;
    Alcotest.test_case "occupied target skipped" `Quick test_occupied_target_skipped;
    Alcotest.test_case "timer gates ticks" `Quick test_timer_gates_tick;
    Alcotest.test_case "centralized uniform spread" `Quick test_centralized_uniform_spread;
    Alcotest.test_case "centralized coordination cost" `Quick test_centralized_charges_arbiter;
  ]
