open Workloads

let env ?(workers = 8) () =
  let inst =
    Harness.Systems.make Harness.Systems.Charm Harness.Systems.Amd_milan
      ~n_workers:workers ()
  in
  inst.Harness.Systems.env

let data env_ =
  Dataset.generate
    ~alloc:(fun ~elt_bytes ~count -> env_.Exec_env.alloc_shared ~elt_bytes ~count)
    ~samples:256 ~features:64 ()

let test_dataset_shape () =
  let e = env () in
  let d = data e in
  Alcotest.(check int) "rows" (256 * 64) (Array.length d.Dataset.rows);
  Alcotest.(check int) "labels" 256 (Array.length d.Dataset.labels);
  Array.iter
    (fun l -> if l <> 1.0 && l <> -1.0 then Alcotest.fail "label not in {-1,1}")
    d.Dataset.labels;
  Alcotest.(check int) "bytes" (256 * 64 * 4) (Dataset.bytes d)

let test_loss_decreases () =
  let e = env () in
  let d = data e in
  let model = Sgd.make_model e ~replica:Sgd.Per_machine ~features:64 in
  let loss0, _ = Sgd.loss_epoch e model d in
  for _ = 1 to 3 do
    ignore (Sgd.gradient_epoch e model d : Workload_result.t)
  done;
  let loss1, _ = Sgd.loss_epoch e model d in
  Alcotest.(check bool) "loss decreased" true (loss1 < loss0);
  Alcotest.(check bool) "learned something" true (Sgd.predict_accuracy model d > 0.8)

let test_replica_counts () =
  let e = env ~workers:8 () in
  let per_core = Sgd.make_model e ~replica:Sgd.Per_core ~features:8 in
  Alcotest.(check int) "one per worker" 8 (Array.length per_core.Sgd.weights);
  let per_node = Sgd.make_model e ~replica:Sgd.Per_node ~features:8 in
  Alcotest.(check int) "one per socket" 2 (Array.length per_node.Sgd.weights);
  let per_machine = Sgd.make_model e ~replica:Sgd.Per_machine ~features:8 in
  Alcotest.(check int) "single" 1 (Array.length per_machine.Sgd.weights)

let test_owner_mapping () =
  let e = env ~workers:8 () in
  let m = Sgd.make_model e ~replica:Sgd.Per_core ~features:8 in
  Alcotest.(check int) "per-core owner" 5 (m.Sgd.owner_of_worker 5);
  let m2 = Sgd.make_model e ~replica:Sgd.Per_machine ~features:8 in
  Alcotest.(check int) "per-machine owner" 0 (m2.Sgd.owner_of_worker 5)

let test_dimmwitted_outcome () =
  let e = env () in
  let d = data e in
  let o = Dimmwitted.run e ~replica:Sgd.Per_node ~epochs:2 d in
  Alcotest.(check string) "strategy name" "per-node" o.Dimmwitted.strategy;
  Alcotest.(check bool) "loss gbps positive" true (o.Dimmwitted.loss_gbps > 0.0);
  Alcotest.(check bool) "gradient gbps positive" true (o.Dimmwitted.gradient_gbps > 0.0);
  Alcotest.(check bool) "accuracy sane" true
    (o.Dimmwitted.accuracy >= 0.0 && o.Dimmwitted.accuracy <= 1.0)

let test_model_averaging_syncs_replicas () =
  let e = env ~workers:4 () in
  let d = data e in
  let model = Sgd.make_model e ~replica:Sgd.Per_core ~features:64 in
  ignore (Sgd.gradient_epoch e model d : Workload_result.t);
  let w0 = model.Sgd.weights.(0) and w1 = model.Sgd.weights.(1) in
  Alcotest.(check bool) "replicas reconciled" true (w0 = w1)

let suite =
  [
    Alcotest.test_case "dataset shape" `Quick test_dataset_shape;
    Alcotest.test_case "sgd converges" `Quick test_loss_decreases;
    Alcotest.test_case "replica counts" `Quick test_replica_counts;
    Alcotest.test_case "owner mapping" `Quick test_owner_mapping;
    Alcotest.test_case "dimmwitted outcome" `Quick test_dimmwitted_outcome;
    Alcotest.test_case "model averaging syncs" `Quick test_model_averaging_syncs_replicas;
  ]
