open Workloads

let env ?(workers = 8) () =
  let inst = Harness.Systems.make Harness.Systems.Charm Harness.Systems.Amd_milan ~n_workers:workers () in
  inst.Harness.Systems.env

let small_graph env_ =
  let kron = Kronecker.generate ~scale:8 ~edge_factor:8 () in
  Csr.of_kronecker
    ~alloc:(fun ~elt_bytes ~count -> env_.Exec_env.alloc_shared ~elt_bytes ~count)
    kron

let weighted_graph env_ =
  let kron = Kronecker.generate ~scale:8 ~edge_factor:8 () in
  Csr.of_kronecker ~weighted:true
    ~alloc:(fun ~elt_bytes ~count -> env_.Exec_env.alloc_shared ~elt_bytes ~count)
    kron

let test_kronecker_shape () =
  let k = Kronecker.generate ~scale:10 ~edge_factor:16 () in
  Alcotest.(check int) "vertices" 1024 (Kronecker.num_vertices k);
  Alcotest.(check int) "edges" (16 * 1024) (Kronecker.num_edges k);
  Array.iteri
    (fun i u -> if u = k.Kronecker.dst.(i) then Alcotest.fail "self loop")
    k.Kronecker.src

let test_kronecker_deterministic () =
  let a = Kronecker.generate ~seed:5 ~scale:8 () in
  let b = Kronecker.generate ~seed:5 ~scale:8 () in
  Alcotest.(check (array int)) "same src" a.Kronecker.src b.Kronecker.src

let test_csr_well_formed () =
  let e = env () in
  let g = small_graph e in
  Alcotest.(check int) "row_ptr length" (g.Csr.n + 1) (Array.length g.Csr.row_ptr);
  Alcotest.(check int) "row_ptr total" g.Csr.m g.Csr.row_ptr.(g.Csr.n);
  let mono = ref true in
  for i = 0 to g.Csr.n - 1 do
    if g.Csr.row_ptr.(i) > g.Csr.row_ptr.(i + 1) then mono := false
  done;
  Alcotest.(check bool) "row_ptr monotone" true !mono;
  Array.iter
    (fun v -> if v < 0 || v >= g.Csr.n then Alcotest.fail "col out of range")
    g.Csr.col

let test_bfs_matches_reference () =
  let e = env () in
  let g = small_graph e in
  let levels, result = Bfs.run e g ~source:0 in
  let expected = Bfs.reference g ~source:0 in
  Alcotest.(check (array int)) "levels" expected levels;
  Alcotest.(check bool) "edges counted" true (result.Workload_result.work_items > 0)

let test_sssp_matches_dijkstra () =
  let e = env () in
  let g = weighted_graph e in
  let dist, _ = Sssp.run e g ~source:1 in
  let expected = Sssp.reference g ~source:1 in
  Alcotest.(check (array int)) "distances" expected dist

let test_cc_partition_matches () =
  let e = env () in
  let g = small_graph e in
  let labels, _ = Concomp.run e g in
  let expected = Concomp.reference g in
  (* compare as partitions: same label iff same reference root *)
  let n = g.Csr.n in
  let map = Hashtbl.create 64 in
  let ok = ref true in
  for v = 0 to n - 1 do
    match Hashtbl.find_opt map expected.(v) with
    | None -> Hashtbl.add map expected.(v) labels.(v)
    | Some l -> if l <> labels.(v) then ok := false
  done;
  Alcotest.(check bool) "same partition" true !ok;
  (* label-propagation labels are the min vertex id of the component *)
  Alcotest.(check int) "vertex 0 leads its component" 0 labels.(0)

let test_pagerank_close_to_reference () =
  let e = env () in
  let g = small_graph e in
  let ranks, _ = Pagerank.run e g () in
  let expected = Pagerank.reference g () in
  let max_err = ref 0.0 in
  Array.iteri
    (fun i r -> max_err := Float.max !max_err (abs_float (r -. expected.(i))))
    ranks;
  Alcotest.(check bool) "ranks match" true (!max_err < 1e-9);
  let total = Array.fold_left ( +. ) 0.0 ranks in
  Alcotest.(check bool) "mass conserved-ish" true (total > 0.5 && total <= 1.01)

let test_gups_counts () =
  let e = env ~workers:4 () in
  let params = { Gups.default_params with Gups.table_words = 4096; updates = 4096 } in
  let result = Gups.run e params in
  Alcotest.(check int) "updates" 4096 result.Workload_result.work_items;
  Alcotest.(check bool) "gups positive" true (Gups.gups result > 0.0)

let test_graph500_teps () =
  let e = env () in
  let g = small_graph e in
  let params = { Graph500.default_params with Graph500.roots = 2 } in
  let result = Graph500.run e g params in
  Alcotest.(check bool) "teps positive" true (Graph500.teps result > 0.0)

let test_deterministic_across_systems () =
  (* correctness must not depend on the runtime system *)
  let run sys =
    let inst = Harness.Systems.make sys Harness.Systems.Amd_milan ~n_workers:8 () in
    let e = inst.Harness.Systems.env in
    let g = small_graph e in
    fst (Bfs.run e g ~source:0)
  in
  Alcotest.(check (array int)) "charm = ring" (run Harness.Systems.Charm)
    (run Harness.Systems.Ring)

let prop_bfs_random_graphs =
  QCheck.Test.make ~name:"parallel BFS equals sequential reference" ~count:15
    QCheck.(pair (int_range 4 7) (int_range 1 42))
    (fun (scale, seed) ->
      let e = env ~workers:4 () in
      let kron = Kronecker.generate ~seed ~scale ~edge_factor:4 () in
      let g =
        Csr.of_kronecker
          ~alloc:(fun ~elt_bytes ~count -> e.Exec_env.alloc_shared ~elt_bytes ~count)
          kron
      in
      let levels, _ = Bfs.run e g ~source:0 in
      levels = Bfs.reference g ~source:0)

let suite =
  [
    Alcotest.test_case "kronecker shape" `Quick test_kronecker_shape;
    Alcotest.test_case "kronecker deterministic" `Quick test_kronecker_deterministic;
    Alcotest.test_case "csr well-formed" `Quick test_csr_well_formed;
    Alcotest.test_case "bfs matches reference" `Quick test_bfs_matches_reference;
    Alcotest.test_case "sssp matches dijkstra" `Quick test_sssp_matches_dijkstra;
    Alcotest.test_case "cc matches union-find" `Quick test_cc_partition_matches;
    Alcotest.test_case "pagerank matches reference" `Quick test_pagerank_close_to_reference;
    Alcotest.test_case "gups counts updates" `Quick test_gups_counts;
    Alcotest.test_case "graph500 teps" `Quick test_graph500_teps;
    Alcotest.test_case "deterministic across systems" `Quick test_deterministic_across_systems;
    QCheck_alcotest.to_alcotest prop_bfs_random_graphs;
  ]
