open Engine

let test_runs_to_completion () =
  let hit = ref false in
  let c = Coroutine.create (fun () -> hit := true) in
  Alcotest.(check bool) "finished" true (Coroutine.resume c = Coroutine.Finished);
  Alcotest.(check bool) "side effect" true !hit;
  Alcotest.(check bool) "is_done" true (Coroutine.is_done c)

let test_yield_resume () =
  let steps = ref [] in
  let c =
    Coroutine.create (fun () ->
        steps := 1 :: !steps;
        Coroutine.yield ();
        steps := 2 :: !steps;
        Coroutine.yield ();
        steps := 3 :: !steps)
  in
  Alcotest.(check bool) "yield 1" true (Coroutine.resume c = Coroutine.Yielded);
  Alcotest.(check (list int)) "after 1" [ 1 ] !steps;
  Alcotest.(check bool) "yield 2" true (Coroutine.resume c = Coroutine.Yielded);
  Alcotest.(check bool) "finish" true (Coroutine.resume c = Coroutine.Finished);
  Alcotest.(check (list int)) "all steps" [ 3; 2; 1 ] !steps

let test_suspend_registrar () =
  let parked = ref None in
  let c =
    Coroutine.create (fun () -> Coroutine.suspend (fun self -> parked := Some self))
  in
  Alcotest.(check bool) "suspended" true (Coroutine.resume c = Coroutine.Suspended);
  (match !parked with
  | Some self -> Alcotest.(check int) "registrar got self" (Coroutine.id c) (Coroutine.id self)
  | None -> Alcotest.fail "registrar not called");
  Alcotest.(check bool) "parked" true (Coroutine.is_parked c);
  Alcotest.(check bool) "resumes to completion" true (Coroutine.resume c = Coroutine.Finished)

let test_double_resume_rejected () =
  let c = Coroutine.create (fun () -> ()) in
  ignore (Coroutine.resume c);
  Alcotest.check_raises "resume finished"
    (Invalid_argument "Coroutine.resume: already finished") (fun () ->
      ignore (Coroutine.resume c))

let test_exception_propagates () =
  let c = Coroutine.create (fun () -> failwith "boom") in
  (try
     ignore (Coroutine.resume c);
     Alcotest.fail "no exception"
   with Failure msg -> Alcotest.(check string) "message" "boom" msg);
  Alcotest.(check bool) "done after raise" true (Coroutine.is_done c)

let test_many_yields () =
  (* individual stacks: two coroutines interleave without corrupting state *)
  let log = Buffer.create 64 in
  let mk tag n =
    Coroutine.create (fun () ->
        for i = 0 to n - 1 do
          Buffer.add_string log (Printf.sprintf "%s%d " tag i);
          Coroutine.yield ()
        done)
  in
  let a = mk "a" 3 and b = mk "b" 3 in
  let rec pump () =
    let more = ref false in
    if not (Coroutine.is_done a) then
      if Coroutine.resume a <> Coroutine.Finished then more := true;
    if not (Coroutine.is_done b) then
      if Coroutine.resume b <> Coroutine.Finished then more := true;
    if !more then pump ()
  in
  pump ();
  Alcotest.(check string) "interleaved" "a0 b0 a1 b1 a2 b2 " (Buffer.contents log)

let suite =
  [
    Alcotest.test_case "runs to completion" `Quick test_runs_to_completion;
    Alcotest.test_case "yield/resume" `Quick test_yield_resume;
    Alcotest.test_case "suspend registrar" `Quick test_suspend_registrar;
    Alcotest.test_case "double resume rejected" `Quick test_double_resume_rejected;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "interleaving preserves state" `Quick test_many_yields;
  ]
