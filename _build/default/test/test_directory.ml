open Chipsim

let test_add_remove () =
  let d = Directory.create ~chiplets:16 in
  Directory.add d ~line:7 ~chiplet:3;
  Directory.add d ~line:7 ~chiplet:11;
  Alcotest.(check bool) "holds 3" true (Directory.holds d ~line:7 ~chiplet:3);
  Alcotest.(check int) "two holders" 2 (Directory.count_holders d ~line:7);
  Directory.remove d ~line:7 ~chiplet:3;
  Alcotest.(check bool) "removed" false (Directory.holds d ~line:7 ~chiplet:3);
  Directory.remove d ~line:7 ~chiplet:11;
  Alcotest.(check int) "empty entry dropped" 0 (Directory.holders d 7)

let test_exclusive () =
  let d = Directory.create ~chiplets:4 in
  Directory.add d ~line:1 ~chiplet:0;
  Directory.add d ~line:1 ~chiplet:1;
  Directory.set_exclusive d ~line:1 ~chiplet:2;
  Alcotest.(check int) "only one holder" 1 (Directory.count_holders d ~line:1);
  Alcotest.(check bool) "it is chiplet 2" true (Directory.holds d ~line:1 ~chiplet:2)

let test_nearest_holder () =
  let topo = Presets.amd_milan () in
  let d = Directory.create ~chiplets:16 in
  (* from chiplet 0: chiplet 1 is same-group, 4 is same-socket, 8 is remote *)
  Directory.add d ~line:5 ~chiplet:8;
  Alcotest.(check (option int)) "remote only" (Some 8)
    (Directory.nearest_holder topo d ~line:5 ~from_chiplet:0);
  Directory.add d ~line:5 ~chiplet:4;
  Alcotest.(check (option int)) "same socket preferred" (Some 4)
    (Directory.nearest_holder topo d ~line:5 ~from_chiplet:0);
  Directory.add d ~line:5 ~chiplet:1;
  Alcotest.(check (option int)) "same group preferred" (Some 1)
    (Directory.nearest_holder topo d ~line:5 ~from_chiplet:0);
  Alcotest.(check (option int)) "self excluded" None
    (Directory.nearest_holder topo d ~line:99 ~from_chiplet:0)

let test_iter () =
  let d = Directory.create ~chiplets:8 in
  Directory.add d ~line:3 ~chiplet:2;
  Directory.add d ~line:3 ~chiplet:5;
  let seen = ref [] in
  Directory.iter_holders d ~line:3 (fun c -> seen := c :: !seen);
  Alcotest.(check (list int)) "holders in order" [ 2; 5 ] (List.rev !seen)

let test_bounds () =
  let d = Directory.create ~chiplets:4 in
  Alcotest.check_raises "chiplet range" (Invalid_argument "Directory: chiplet out of range")
    (fun () -> Directory.add d ~line:0 ~chiplet:4);
  try
    ignore (Directory.create ~chiplets:63);
    Alcotest.fail "accepted 63 chiplets"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "set exclusive" `Quick test_exclusive;
    Alcotest.test_case "nearest holder" `Quick test_nearest_holder;
    Alcotest.test_case "iter holders" `Quick test_iter;
    Alcotest.test_case "bounds" `Quick test_bounds;
  ]
