open Engine

let test_determinism () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different first draw" true (Rng.next a <> Rng.next b)

let test_split_independent () =
  let a = Rng.create 1 in
  let c = Rng.split a in
  let x = Rng.next a and y = Rng.next c in
  Alcotest.(check bool) "streams diverge" true (x <> y)

let test_shuffle_permutes () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let prop_int_in_bounds =
  QCheck.Test.make ~name:"int stays in [0, bound)" ~count:500
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_float_in_bounds =
  QCheck.Test.make ~name:"float stays in [0, bound)" ~count:500
    QCheck.(pair (float_range 0.001 1e6) small_int)
    (fun (bound, seed) ->
      let rng = Rng.create seed in
      let v = Rng.float rng bound in
      v >= 0.0 && v < bound)

let test_int_bad_bound () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_zipf_skew () =
  let rng = Rng.create 11 in
  let n = 1000 in
  let hits = Array.make n 0 in
  for _ = 1 to 20_000 do
    let k = Rng.zipf rng ~n ~theta:0.99 in
    hits.(k) <- hits.(k) + 1
  done;
  (* hot head: the most popular key draws far more than uniform share *)
  Alcotest.(check bool) "head is hot" true (hits.(0) > 20 * (20_000 / n));
  let total = Array.fold_left ( + ) 0 hits in
  Alcotest.(check int) "all draws in range" 20_000 total

let prop_zipf_in_bounds =
  QCheck.Test.make ~name:"zipf stays in [0, n)" ~count:300
    QCheck.(pair (int_range 1 10_000) small_int)
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let v = Rng.zipf rng ~n ~theta:0.99 in
      v >= 0 && v < n)

let test_zipf_validation () =
  let rng = Rng.create 1 in
  (try
     ignore (Rng.zipf rng ~n:0 ~theta:0.5);
     Alcotest.fail "accepted n=0"
   with Invalid_argument _ -> ());
  try
    ignore (Rng.zipf rng ~n:10 ~theta:1.0);
    Alcotest.fail "accepted theta=1"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf validation" `Quick test_zipf_validation;
    Alcotest.test_case "seeds differ" `Quick test_seeds_differ;
    Alcotest.test_case "split independent" `Quick test_split_independent;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "bad bound" `Quick test_int_bad_bound;
    QCheck_alcotest.to_alcotest prop_int_in_bounds;
    QCheck_alcotest.to_alcotest prop_float_in_bounds;
    QCheck_alcotest.to_alcotest prop_zipf_in_bounds;
  ]
