open Chipsim
module B = Baselines.Baseline

let amd () = Presets.amd_milan ()

let cores_of spec n =
  let topo = amd () in
  List.init n (fun w -> spec.B.placement topo ~n_workers:n w)

let test_layouts_injective () =
  let topo = amd () in
  let check name placement =
    let cores = List.init 128 (fun w -> placement topo ~n_workers:128 w) in
    let distinct = List.sort_uniq compare cores in
    Alcotest.(check int) (name ^ " injective over all cores") 128 (List.length distinct);
    List.iter (fun c -> Topology.validate_core topo c) cores
  in
  check "sequential" B.Layouts.sequential;
  check "socket-rr-scatter" B.Layouts.socket_round_robin_scatter;
  check "socket-rr-fill" B.Layouts.socket_round_robin_fill;
  check "one-per-chiplet" B.Layouts.one_per_chiplet

let test_shoal_sequential () =
  let cores = cores_of (Baselines.Shoal.spec ()) 16 in
  Alcotest.(check (list int)) "cores 0..15" (List.init 16 Fun.id) cores;
  (* the paper's §5.4 point: 16 workers use only 2 of 8 chiplets *)
  let topo = amd () in
  let chiplets = List.sort_uniq compare (List.map (Topology.chiplet_of_core topo) cores) in
  Alcotest.(check int) "only 2 chiplets" 2 (List.length chiplets)

let test_ring_scatters_across_sockets () =
  let topo = amd () in
  let cores = cores_of (Baselines.Ring.spec ()) 8 in
  let sockets = List.map (Topology.socket_of_core topo) cores in
  Alcotest.(check int) "both sockets used" 2 (List.length (List.sort_uniq compare sockets));
  let chiplets = List.sort_uniq compare (List.map (Topology.chiplet_of_core topo) cores) in
  Alcotest.(check bool) "scattered over chiplets" true (List.length chiplets >= 4)

let test_distributed_cache_one_per_chiplet () =
  let topo = amd () in
  let cores = cores_of (Baselines.Static_policy.distributed_cache ()) 16 in
  let chiplets = List.map (Topology.chiplet_of_core topo) cores in
  Alcotest.(check int) "all 16 chiplets" 16 (List.length (List.sort_uniq compare chiplets))

let test_local_cache_packs () =
  let topo = amd () in
  let cores = cores_of (Baselines.Static_policy.local_cache ()) 8 in
  let chiplets = List.sort_uniq compare (List.map (Topology.chiplet_of_core topo) cores) in
  Alcotest.(check int) "one chiplet" 1 (List.length chiplets)

let test_driver_runs_workload () =
  let machine = Machine.create (amd ()) in
  let driver = B.init (Baselines.Os_default.spec ()) machine ~n_workers:4 in
  let count = ref 0 in
  let makespan = B.all_do driver (fun _ctx _w -> incr count) in
  Alcotest.(check int) "all ran" 4 !count;
  Alcotest.(check bool) "time advanced" true (makespan > 0.0);
  let report = B.finalize driver in
  Alcotest.(check bool) "stats collected" true (report.Engine.Stats.tasks_executed >= 4)

let test_sam_migrates_to_majority () =
  let machine = Machine.create (amd ()) in
  let driver = B.init (Baselines.Sam.spec ()) machine ~n_workers:8 in
  let sched = B.sched driver in
  let topo = Machine.topology machine in
  (* build a decisive 7-vs-1 majority on socket 0: SAM only consolidates
     on a strict (>= 60%) majority *)
  List.iter
    (fun (w, core) -> Engine.Sched.migrate sched ~worker:w ~core)
    [ (1, 10); (3, 12); (5, 14) ];
  Alcotest.(check int) "worker 7 starts on socket 1" 1
    (Topology.socket_of_core topo (Engine.Sched.worker_core sched 7));
  Pmu.add (Machine.pmu machine)
    ~core:(Engine.Sched.worker_core sched 7)
    Pmu.Fill_remote_numa 100_000;
  (match (B.spec driver).B.on_tick with
  | Some tick ->
      (* first tick baselines the counter, second sees the delta *)
      tick driver ~worker:7;
      Pmu.add (Machine.pmu machine)
        ~core:(Engine.Sched.worker_core sched 7)
        Pmu.Fill_remote_numa 100_000;
      tick driver ~worker:7
  | None -> Alcotest.fail "sam has no tick");
  Alcotest.(check int) "pulled to the majority socket" 0
    (Topology.socket_of_core topo (Engine.Sched.worker_core sched 7))

let test_asymsched_rebalances () =
  let machine = Machine.create (amd ()) in
  let driver = B.init (Baselines.Asymsched.spec ()) machine ~n_workers:4 in
  let sched = B.sched driver in
  (* saturate node 0's channels in the current bin *)
  let now = Engine.Sched.worker_clock sched 0 in
  let region = Machine.alloc machine ~policy:(Simmem.Bind 0) ~elt_bytes:8 ~count:100_000 () in
  for i = 0 to 8_000 do
    ignore (Machine.touch machine ~core:0 ~now_ns:now ~write:false region (i * 8))
  done;
  let before = Topology.socket_of_core (Machine.topology machine) (Engine.Sched.worker_core sched 0) in
  (match (B.spec driver).B.on_tick with
  | Some tick -> tick driver ~worker:0
  | None -> Alcotest.fail "asymsched has no tick");
  let after = Topology.socket_of_core (Machine.topology machine) (Engine.Sched.worker_core sched 0) in
  Alcotest.(check int) "was on socket 0" 0 before;
  Alcotest.(check int) "moved to socket 1" 1 after

let suite =
  [
    Alcotest.test_case "layouts injective" `Quick test_layouts_injective;
    Alcotest.test_case "shoal sequential fill" `Quick test_shoal_sequential;
    Alcotest.test_case "ring scatters across sockets" `Quick test_ring_scatters_across_sockets;
    Alcotest.test_case "distributed-cache spreads" `Quick test_distributed_cache_one_per_chiplet;
    Alcotest.test_case "local-cache packs" `Quick test_local_cache_packs;
    Alcotest.test_case "driver runs workloads" `Quick test_driver_runs_workload;
    Alcotest.test_case "sam migrates to majority socket" `Quick test_sam_migrates_to_majority;
    Alcotest.test_case "asymsched rebalances bandwidth" `Quick test_asymsched_rebalances;
  ]
