open Chipsim
open Engine

let machine () = Machine.create (Presets.tiny ())

let test_single_task () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  let hits = ref 0 in
  let _task = Sched.spawn sched (fun _ctx -> incr hits) in
  let makespan = Sched.run sched in
  Alcotest.(check int) "task ran" 1 !hits;
  Alcotest.(check bool) "time advanced" true (makespan > 0.0)

let test_yield_interleaves () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  let log = ref [] in
  let mk tag =
    Sched.spawn sched ~worker:0 (fun ctx ->
        for i = 0 to 2 do
          log := (tag, i) :: !log;
          Sched.Ctx.yield ctx
        done)
  in
  let _a = mk "a" and _b = mk "b" in
  ignore (Sched.run sched : float);
  let order = List.rev !log in
  Alcotest.(check int) "six steps" 6 (List.length order);
  (* FIFO re-queueing interleaves the two tasks *)
  match order with
  | ("a", 0) :: ("b", 0) :: ("a", 1) :: _ -> ()
  | _ -> Alcotest.fail "tasks did not interleave"

let test_memory_charges_time () =
  let m = machine () in
  let region = Machine.alloc m ~elt_bytes:8 ~count:1024 () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  let _task =
    Sched.spawn sched (fun ctx ->
        for i = 0 to 1023 do
          Sched.Ctx.read ctx region i
        done)
  in
  let makespan = Sched.run sched in
  (* 1024 * 8B = 128 lines; every first touch costs at least DRAM latency *)
  Alcotest.(check bool) "dram charged" true (makespan > 128.0 *. 100.0);
  Alcotest.(check bool) "pmu saw dram" true (Pmu.total (Machine.pmu m) Pmu.Dram_local > 0)

let test_barrier_coordinates () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:4 ~placement:(fun w -> w) in
  let b = Barrier.create 4 in
  let after = ref [] in
  for w = 0 to 3 do
    ignore
      (Sched.spawn sched ~worker:w (fun ctx ->
           Sched.Ctx.work ctx (float_of_int (100 * (w + 1)));
           Barrier.wait ctx b;
           after := Sched.Ctx.now ctx :: !after))
  done;
  ignore (Sched.run sched : float);
  Alcotest.(check int) "all passed" 4 (List.length !after);
  let min_after = List.fold_left Float.min infinity !after in
  Alcotest.(check bool) "nobody before the slowest arrival" true (min_after >= 400.0)

let test_steal_balances () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:4 ~placement:(fun w -> w) in
  (* all tasks spawned on worker 0; stealing should spread them *)
  for _ = 1 to 32 do
    ignore
      (Sched.spawn sched ~worker:0 (fun ctx -> Sched.Ctx.work ctx 10_000.0))
  done;
  ignore (Sched.run sched : float);
  Alcotest.(check bool) "steals happened" true
    (Pmu.total (Machine.pmu m) Pmu.Task_stolen > 0)

let test_await () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  let order = ref [] in
  let _parent =
    Sched.spawn sched ~worker:0 (fun ctx ->
        let child =
          Sched.Ctx.spawn ctx ~worker:1 (fun ctx' ->
              Sched.Ctx.work ctx' 5_000.0;
              order := "child" :: !order)
        in
        Sched.Ctx.await ctx child;
        order := "parent" :: !order)
  in
  ignore (Sched.run sched : float);
  Alcotest.(check (list string)) "child before parent" [ "parent"; "child" ] !order

let suite =
  [
    Alcotest.test_case "single task" `Quick test_single_task;
    Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
    Alcotest.test_case "memory charges time" `Quick test_memory_charges_time;
    Alcotest.test_case "barrier coordinates" `Quick test_barrier_coordinates;
    Alcotest.test_case "steal balances" `Quick test_steal_balances;
    Alcotest.test_case "await" `Quick test_await;
  ]
