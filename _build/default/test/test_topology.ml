open Chipsim

let amd () = Presets.amd_milan ()

let test_geometry () =
  let t = amd () in
  Alcotest.(check int) "cores" 128 (Topology.num_cores t);
  Alcotest.(check int) "chiplets" 16 (Topology.num_chiplets t);
  Alcotest.(check int) "cores/socket" 64 (Topology.cores_per_socket t)

let test_mapping () =
  let t = amd () in
  Alcotest.(check int) "chiplet of core 0" 0 (Topology.chiplet_of_core t 0);
  Alcotest.(check int) "chiplet of core 63" 7 (Topology.chiplet_of_core t 63);
  Alcotest.(check int) "chiplet of core 64" 8 (Topology.chiplet_of_core t 64);
  Alcotest.(check int) "socket of core 63" 0 (Topology.socket_of_core t 63);
  Alcotest.(check int) "socket of core 64" 1 (Topology.socket_of_core t 64);
  Alcotest.(check int) "socket of chiplet 8" 1 (Topology.socket_of_chiplet t 8);
  Alcotest.(check (list int)) "cores of chiplet 1" [ 8; 9; 10; 11; 12; 13; 14; 15 ]
    (Topology.cores_of_chiplet t 1);
  Alcotest.(check (list int)) "chiplets of socket 1"
    [ 8; 9; 10; 11; 12; 13; 14; 15 ]
    (Topology.chiplets_of_socket t 1)

let test_predicates () =
  let t = amd () in
  Alcotest.(check bool) "same chiplet" true (Topology.same_chiplet t 0 7);
  Alcotest.(check bool) "not same chiplet" false (Topology.same_chiplet t 7 8);
  Alcotest.(check bool) "same socket" true (Topology.same_socket t 0 63);
  Alcotest.(check bool) "not same socket" false (Topology.same_socket t 63 64)

let test_validation () =
  let t = amd () in
  Alcotest.check_raises "negative core" (Invalid_argument "Topology: core -1 out of range [0,128)")
    (fun () -> Topology.validate_core t (-1));
  Alcotest.check_raises "overflow core" (Invalid_argument "Topology: core 128 out of range [0,128)")
    (fun () -> Topology.validate_core t 128);
  (try
     ignore (Topology.v ~sockets:0 ~chiplets_per_socket:1 ~cores_per_chiplet:1 ());
     Alcotest.fail "accepted zero sockets"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Topology.v ~chiplet_group_size:3 ~sockets:1 ~chiplets_per_socket:8
          ~cores_per_chiplet:8 ());
     Alcotest.fail "accepted bad group size"
   with Invalid_argument _ -> ());
  try
    ignore (Topology.v ~line_bytes:48 ~sockets:1 ~chiplets_per_socket:1 ~cores_per_chiplet:1 ());
    Alcotest.fail "accepted non-power-of-two line"
  with Invalid_argument _ -> ()

let prop_core_roundtrip =
  QCheck.Test.make ~name:"core <-> chiplet mapping is consistent" ~count:200
    QCheck.(pair (int_range 0 127) unit)
    (fun (core, ()) ->
      let t = amd () in
      let chiplet = Topology.chiplet_of_core t core in
      List.mem core (Topology.cores_of_chiplet t chiplet))

let prop_first_core =
  QCheck.Test.make ~name:"first core of chiplet lies on it" ~count:100
    QCheck.(int_range 0 15)
    (fun chiplet ->
      let t = amd () in
      Topology.chiplet_of_core t (Topology.first_core_of_chiplet t chiplet) = chiplet)

let suite =
  [
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "mapping" `Quick test_mapping;
    Alcotest.test_case "predicates" `Quick test_predicates;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest prop_core_roundtrip;
    QCheck_alcotest.to_alcotest prop_first_core;
  ]
