test/test_placement.ml: Alcotest Array Charm Chipsim Fun List Option Presets QCheck QCheck_alcotest Topology
