test/test_policy.ml: Alcotest Charm Chipsim Engine Machine Pmu Presets
