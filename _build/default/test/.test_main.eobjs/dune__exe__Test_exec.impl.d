test/test_exec.ml: Alcotest Array Engine Harness List Olap Option Workloads
