test/test_analytics.ml: Alcotest Array Dataset Dimmwitted Exec_env Harness Sgd Workload_result Workloads
