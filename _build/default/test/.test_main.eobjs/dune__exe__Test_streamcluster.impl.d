test/test_streamcluster.ml: Alcotest Harness Streamcluster Workload_result Workloads
