test/test_rng.ml: Alcotest Array Engine Fun QCheck QCheck_alcotest Rng
