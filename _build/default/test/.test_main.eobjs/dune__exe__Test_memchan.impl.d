test/test_memchan.ml: Alcotest Chipsim Memchan
