test/test_simmem.ml: Alcotest Chipsim List Presets QCheck QCheck_alcotest Simmem
