test/test_baselines.ml: Alcotest Baselines Chipsim Engine Fun List Machine Pmu Presets Simmem Topology
