test/test_oltp.ml: Alcotest Engine Float Harness Oltp Workloads
