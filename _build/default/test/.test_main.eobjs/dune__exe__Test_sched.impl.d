test/test_sched.ml: Alcotest Array Chipsim Engine Machine Pmu Presets Sched
