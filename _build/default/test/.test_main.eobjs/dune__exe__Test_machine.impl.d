test/test_machine.ml: Alcotest Array Chipsim Machine Pmu Presets Simmem
