test/test_future.ml: Alcotest Array Chipsim Engine Future Machine Presets Sched
