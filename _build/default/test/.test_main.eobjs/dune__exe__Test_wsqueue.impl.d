test/test_wsqueue.ml: Alcotest Engine Gen List QCheck QCheck_alcotest Wsqueue
