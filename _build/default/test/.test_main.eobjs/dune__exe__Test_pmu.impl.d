test/test_pmu.ml: Alcotest Chipsim List Pmu
