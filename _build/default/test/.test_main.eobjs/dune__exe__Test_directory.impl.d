test/test_directory.ml: Alcotest Chipsim Directory List Presets
