test/test_par.ml: Alcotest Array Chipsim Engine Hashtbl List Machine Presets Printf
