test/test_controller.ml: Alcotest Charm
