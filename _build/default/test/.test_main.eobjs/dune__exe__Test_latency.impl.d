test/test_latency.ml: Alcotest Chipsim Latency Presets QCheck QCheck_alcotest Topology
