test/test_profiler.ml: Alcotest Charm Chipsim Machine Pmu Presets
