test/test_runtime.ml: Alcotest Array Charm Chipsim Engine Fun Machine Presets Simmem
