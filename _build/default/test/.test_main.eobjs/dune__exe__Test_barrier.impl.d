test/test_barrier.ml: Alcotest Array Barrier Chipsim Engine Float List Machine Presets Sched
