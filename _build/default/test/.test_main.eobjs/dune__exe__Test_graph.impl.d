test/test_graph.ml: Alcotest Array Bfs Concomp Csr Exec_env Float Graph500 Gups Harness Hashtbl Kronecker Pagerank QCheck QCheck_alcotest Sssp Workload_result Workloads
