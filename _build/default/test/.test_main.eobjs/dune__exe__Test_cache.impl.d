test/test_cache.ml: Alcotest Cache Chipsim Gen List QCheck QCheck_alcotest
