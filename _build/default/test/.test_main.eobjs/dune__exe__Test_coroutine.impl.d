test/test_coroutine.ml: Alcotest Buffer Coroutine Engine Printf
