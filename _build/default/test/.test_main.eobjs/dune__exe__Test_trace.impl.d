test/test_trace.ml: Alcotest Chipsim Engine Machine Presets Sched String Trace
