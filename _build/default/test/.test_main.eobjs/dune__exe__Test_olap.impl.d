test/test_olap.ml: Alcotest Array Float Harness List Olap Workloads
