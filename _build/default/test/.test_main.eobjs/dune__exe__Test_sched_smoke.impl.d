test/test_sched_smoke.ml: Alcotest Barrier Chipsim Engine Float List Machine Pmu Presets Sched
