test/test_topology.ml: Alcotest Chipsim List Presets QCheck QCheck_alcotest Topology
