open Chipsim

let machine () = Machine.create (Presets.amd_milan ())

let test_read_reset () =
  let m = machine () in
  let p = Charm.Profiler.create m ~n_workers:2 in
  Pmu.add (Machine.pmu m) ~core:0 Pmu.Dram_local 5;
  Pmu.add (Machine.pmu m) ~core:0 Pmu.Fill_remote_chiplet 3;
  let s = Charm.Profiler.read p ~worker:0 ~core:0 in
  Alcotest.(check int) "dram" 5 s.Charm.Profiler.dram;
  Alcotest.(check int) "remote chiplet" 3 s.Charm.Profiler.remote_chiplet;
  Alcotest.(check int) "alg1 counter" 8 (Charm.Profiler.remote_events s);
  Charm.Profiler.reset p ~worker:0 ~core:0;
  let s2 = Charm.Profiler.read p ~worker:0 ~core:0 in
  Alcotest.(check int) "zero after reset" 0 (Charm.Profiler.remote_events s2);
  let cum = Charm.Profiler.cumulative p ~worker:0 in
  Alcotest.(check int) "cumulative keeps history" 8 (Charm.Profiler.remote_events cum)

let test_rebase_does_not_accumulate () =
  let m = machine () in
  let p = Charm.Profiler.create m ~n_workers:1 in
  Pmu.add (Machine.pmu m) ~core:9 Pmu.Dram_remote 50;
  (* migrating to core 9: rebase, do not claim core 9's history *)
  Charm.Profiler.rebase p ~worker:0 ~core:9;
  let s = Charm.Profiler.read p ~worker:0 ~core:9 in
  Alcotest.(check int) "no inherited events" 0 (Charm.Profiler.remote_events s);
  let cum = Charm.Profiler.cumulative p ~worker:0 in
  Alcotest.(check int) "nothing accumulated" 0 (Charm.Profiler.remote_events cum)

let test_workers_independent () =
  let m = machine () in
  let p = Charm.Profiler.create m ~n_workers:2 in
  Pmu.add (Machine.pmu m) ~core:0 Pmu.Dram_local 7;
  Charm.Profiler.reset p ~worker:0 ~core:0;
  (* worker 1 reading the same core sees the raw counters (its own baseline
     is still zero) -- workers own disjoint cores in practice *)
  let s1 = Charm.Profiler.read p ~worker:1 ~core:1 in
  Alcotest.(check int) "other core quiet" 0 (Charm.Profiler.remote_events s1)

let suite =
  [
    Alcotest.test_case "read/reset/cumulative" `Quick test_read_reset;
    Alcotest.test_case "rebase after migration" `Quick test_rebase_does_not_accumulate;
    Alcotest.test_case "workers independent" `Quick test_workers_independent;
  ]
