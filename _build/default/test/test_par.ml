open Chipsim
module Sched = Engine.Sched

let sched_of ~workers =
  let m = Machine.create (Presets.amd_milan ()) in
  Sched.create m ~n_workers:workers ~placement:(fun w -> w)

let test_block_distribution () =
  (* adjacent chunks must land on the same worker (cache affinity) *)
  let sched = sched_of ~workers:4 in
  let owners = Hashtbl.create 64 in
  ignore
    (Sched.spawn sched (fun ctx ->
         Engine.Par.parallel_for ctx ~lo:0 ~hi:1600 ~grain:100 (fun ctx' lo _hi ->
             Hashtbl.replace owners lo (Sched.Ctx.worker_id ctx'))));
  ignore (Sched.run sched : float);
  (* 16 chunks over 4 workers: chunk k on worker k/4 *)
  for k = 0 to 15 do
    Alcotest.(check int)
      (Printf.sprintf "chunk %d" k)
      (k / 4)
      (Hashtbl.find owners (k * 100))
  done

let test_parallel_for_empty_range () =
  let sched = sched_of ~workers:2 in
  let ran = ref false in
  ignore
    (Sched.spawn sched (fun ctx ->
         Engine.Par.parallel_for ctx ~lo:5 ~hi:5 (fun _ _ _ -> ran := true)));
  ignore (Sched.run sched : float);
  Alcotest.(check bool) "no chunks" false !ran

let test_parallel_for_bad_grain () =
  let sched = sched_of ~workers:2 in
  let failed = ref false in
  ignore
    (Sched.spawn sched (fun ctx ->
         try Engine.Par.parallel_for ctx ~lo:0 ~hi:10 ~grain:0 (fun _ _ _ -> ())
         with Invalid_argument _ -> failed := true));
  ignore (Sched.run sched : float);
  Alcotest.(check bool) "rejects grain 0" true !failed

let test_all_do_and_call () =
  let sched = sched_of ~workers:3 in
  let seen = Array.make 3 (-1) in
  ignore
    (Sched.spawn sched (fun ctx ->
         Engine.Par.all_do ctx (fun ctx' w -> seen.(w) <- Sched.Ctx.worker_id ctx')));
  ignore (Sched.run sched : float);
  Alcotest.(check (array int)) "each on its own worker" [| 0; 1; 2 |] seen

let test_spawn_all () =
  let sched = sched_of ~workers:4 in
  let count = ref 0 in
  let tasks = Engine.Par.spawn_all sched ~n:10 (fun _i _ctx -> incr count) in
  Alcotest.(check int) "ten tasks" 10 (List.length tasks);
  ignore (Sched.run sched : float);
  Alcotest.(check int) "all ran" 10 !count

let suite =
  [
    Alcotest.test_case "block distribution" `Quick test_block_distribution;
    Alcotest.test_case "empty range" `Quick test_parallel_for_empty_range;
    Alcotest.test_case "bad grain rejected" `Quick test_parallel_for_bad_grain;
    Alcotest.test_case "all_do" `Quick test_all_do_and_call;
    Alcotest.test_case "spawn_all" `Quick test_spawn_all;
  ]
