open Chipsim
open Engine

let sched_of ~workers =
  let m = Machine.create (Presets.amd_milan ()) in
  Sched.create m ~n_workers:workers ~placement:(fun w -> w)

let test_spawn_and_await () =
  let sched = sched_of ~workers:2 in
  let f = Future.spawn sched ~worker:1 (fun ctx -> Sched.Ctx.work ctx 100.0; 42) in
  let got = ref 0 in
  ignore (Sched.spawn sched ~worker:0 (fun ctx -> got := Future.await ctx f));
  ignore (Sched.run sched : float);
  Alcotest.(check int) "value" 42 !got;
  Alcotest.(check bool) "fulfilled" true (Future.is_fulfilled f);
  Alcotest.(check (option int)) "peek" (Some 42) (Future.peek f)

let test_await_after_fulfilled () =
  let sched = sched_of ~workers:1 in
  let f = Future.create () in
  let order = ref [] in
  ignore
    (Sched.spawn sched (fun ctx ->
         Future.fulfill ctx f "hello";
         order := Future.await ctx f :: !order));
  ignore (Sched.run sched : float);
  Alcotest.(check (list string)) "no suspension needed" [ "hello" ] !order

let test_multiple_waiters () =
  let sched = sched_of ~workers:4 in
  let f = Future.create () in
  let got = Array.make 3 0 in
  for w = 0 to 2 do
    ignore
      (Sched.spawn sched ~worker:w (fun ctx -> got.(w) <- Future.await ctx f))
  done;
  ignore
    (Sched.spawn sched ~worker:3 (fun ctx ->
         Sched.Ctx.work ctx 10_000.0;
         Future.fulfill ctx f 7));
  ignore (Sched.run sched : float);
  Alcotest.(check (array int)) "all woken with the value" [| 7; 7; 7 |] got

let test_double_fulfill_rejected () =
  let sched = sched_of ~workers:1 in
  let f = Future.create () in
  let raised = ref false in
  ignore
    (Sched.spawn sched (fun ctx ->
         Future.fulfill ctx f 1;
         try Future.fulfill ctx f 2 with Invalid_argument _ -> raised := true));
  ignore (Sched.run sched : float);
  Alcotest.(check bool) "second fulfill rejected" true !raised

let test_spawn_at () =
  let sched = sched_of ~workers:2 in
  let result = ref 0.0 in
  ignore
    (Sched.spawn sched (fun ctx ->
         let f = Future.spawn_at ctx ~worker:1 (fun ctx' -> Sched.Ctx.now ctx') in
         result := Future.await ctx f));
  ignore (Sched.run sched : float);
  Alcotest.(check bool) "child ran and returned" true (!result >= 0.0)

let suite =
  [
    Alcotest.test_case "spawn and await" `Quick test_spawn_and_await;
    Alcotest.test_case "await after fulfilled" `Quick test_await_after_fulfilled;
    Alcotest.test_case "multiple waiters" `Quick test_multiple_waiters;
    Alcotest.test_case "double fulfill rejected" `Quick test_double_fulfill_rejected;
    Alcotest.test_case "spawn_at" `Quick test_spawn_at;
  ]
