let env ?cache_scale sys ~workers =
  let inst =
    Harness.Systems.make ?cache_scale sys Harness.Systems.Amd_milan
      ~n_workers:workers ()
  in
  inst.Harness.Systems.env

let test_storage_semantics () =
  let e = env Harness.Systems.Charm ~workers:2 in
  let alloc = e.Workloads.Exec_env.alloc_shared in
  let t = Oltp.Storage.create_table ~alloc ~name:"t" ~rows:4 ~payload_words:2 in
  ignore
    (e.Workloads.Exec_env.run (fun ctx ->
         Oltp.Storage.write_field ctx t ~row:2 ~word:1 99;
         Alcotest.(check int) "read back" 99
           (Oltp.Storage.read_field ctx t ~row:2 ~word:1))
      : float);
  Alcotest.(check int) "peek" 99 (Oltp.Storage.peek t ~row:2 ~word:1);
  try
    ignore (Oltp.Storage.peek t ~row:4 ~word:0);
    Alcotest.fail "accepted bad row"
  with Invalid_argument _ -> ()

let test_commit_serializes () =
  let e = env Harness.Systems.Charm ~workers:8 in
  let alloc = e.Workloads.Exec_env.alloc_shared in
  let engine = Oltp.Txn.create ~alloc ~commit_service_ns:500.0 ~group_size:4 () in
  let makespan =
    e.Workloads.Exec_env.run (fun ctx ->
        Engine.Par.all_do ctx (fun ctx' _w ->
            for _ = 1 to 25 do
              Oltp.Txn.commit engine ctx'
            done))
  in
  Alcotest.(check int) "commits" 200 (Oltp.Txn.commits engine);
  (* the log is serial: every flushed batch occupies the device; only the
     last (unflushed) partial batch per worker escapes *)
  let flushed = 200 - (8 * 3) in
  Alcotest.(check bool) "serialized lower bound" true
    (makespan >= float_of_int flushed *. 500.0)

let ycsb_params =
  { Oltp.Ycsb.default_params with Oltp.Ycsb.records = 1024; ops = 1024 }

let test_ycsb_counts () =
  let o = Oltp.Ycsb.run (env Harness.Systems.Charm ~workers:8) ycsb_params in
  Alcotest.(check int) "one commit per op" 1024 o.Oltp.Ycsb.commits;
  Alcotest.(check bool) "throughput positive" true (o.Oltp.Ycsb.commits_per_second > 0.0)

let test_ycsb_policy_indifference () =
  (* the Fig. 14 result: Local vs Distributed commit/s within a small gap.
     Caches are scaled down so the table exceeds them, as the paper's 50M
     records exceed the real parts' L3. *)
  let run sys =
    (Oltp.Ycsb.run (env ~cache_scale:64 sys ~workers:16) Oltp.Ycsb.default_params)
      .Oltp.Ycsb.commits_per_second
  in
  let local = run Harness.Systems.Local_cache in
  let dist = run Harness.Systems.Distributed_cache in
  let gap = abs_float (local -. dist) /. Float.max local dist in
  Alcotest.(check bool) "within 15%" true (gap < 0.15)

let test_ycsb_mixes () =
  let run mix distribution =
    Oltp.Ycsb.run
      (env Harness.Systems.Charm ~workers:8)
      {
        Oltp.Ycsb.default_params with
        Oltp.Ycsb.records = 2048;
        ops = 2000;
        mix;
        distribution;
      }
  in
  let a = run Oltp.Ycsb.workload_a Oltp.Ycsb.Uniform in
  Alcotest.(check int) "A: no scans" 0 a.Oltp.Ycsb.scans;
  Alcotest.(check bool) "A: roughly half reads" true
    (let share = float_of_int a.Oltp.Ycsb.reads /. 2000.0 in
     share > 0.4 && share < 0.6);
  let c = run Oltp.Ycsb.workload_c Oltp.Ycsb.Uniform in
  Alcotest.(check int) "C: reads only" 2000 c.Oltp.Ycsb.reads;
  let e = run Oltp.Ycsb.workload_e (Oltp.Ycsb.Zipfian 0.99) in
  Alcotest.(check bool) "E: scan heavy" true (e.Oltp.Ycsb.scans > 1500);
  Alcotest.(check int) "E: commits still one per op" 2000 e.Oltp.Ycsb.commits

let test_ycsb_bad_mix () =
  try
    ignore
      (Oltp.Ycsb.run
         (env Harness.Systems.Charm ~workers:2)
         {
           Oltp.Ycsb.default_params with
           Oltp.Ycsb.mix =
             { Oltp.Ycsb.read_pct = 50; update_pct = 0; rmw_pct = 0;
               scan_pct = 0; insert_pct = 0 };
         });
    Alcotest.fail "accepted mix summing to 50"
  with Invalid_argument _ -> ()

let tpcc_params =
  {
    Oltp.Tpcc.default_params with
    Oltp.Tpcc.warehouses = 4;
    customers_per_district = 30;
    items = 100;
    txns = 512;
  }

let test_tpcc_counts () =
  let o = Oltp.Tpcc.run (env Harness.Systems.Charm ~workers:8) tpcc_params in
  Alcotest.(check int) "one commit per txn" 512 o.Oltp.Tpcc.commits;
  Alcotest.(check bool) "new orders ~45%" true
    (let share = float_of_int o.Oltp.Tpcc.new_orders /. 512.0 in
     share > 0.30 && share < 0.60)

let test_tpcc_policy_indifference () =
  let run sys =
    (Oltp.Tpcc.run (env ~cache_scale:32 sys ~workers:16) Oltp.Tpcc.default_params)
      .Oltp.Tpcc.commits_per_second
  in
  let local = run Harness.Systems.Local_cache in
  let dist = run Harness.Systems.Distributed_cache in
  let gap = abs_float (local -. dist) /. Float.max local dist in
  Alcotest.(check bool) "within 15%" true (gap < 0.15)

let suite =
  [
    Alcotest.test_case "storage semantics" `Quick test_storage_semantics;
    Alcotest.test_case "commit serializes" `Quick test_commit_serializes;
    Alcotest.test_case "ycsb counts" `Quick test_ycsb_counts;
    Alcotest.test_case "ycsb policy indifference" `Slow test_ycsb_policy_indifference;
    Alcotest.test_case "ycsb workload mixes" `Quick test_ycsb_mixes;
    Alcotest.test_case "ycsb bad mix rejected" `Quick test_ycsb_bad_mix;
    Alcotest.test_case "tpcc counts" `Quick test_tpcc_counts;
    Alcotest.test_case "tpcc policy indifference" `Slow test_tpcc_policy_indifference;
  ]
