open Chipsim
open Engine

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_records_and_serializes () =
  let t = Trace.create () in
  Trace.task_quantum t ~worker:0 ~core:3 ~task_id:7 ~start_ns:100.0 ~end_ns:400.0;
  Trace.migration t ~worker:1 ~from_core:3 ~to_core:9 ~at_ns:500.0;
  Trace.policy_decision t ~worker:1 ~spread:4 ~at_ns:600.0;
  Trace.instant t ~name:"phase" ~at_ns:700.0;
  Alcotest.(check int) "four events" 4 (Trace.num_events t);
  let json = Trace.to_chrome_json t in
  Alcotest.(check bool) "array" true
    (String.length json > 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  Alcotest.(check bool) "quantum event present" true
    (contains json {|"cat":"quantum"|});
  Alcotest.(check bool) "migration event present" true
    (contains json {|"migrate 3->9"|})

let test_disable () =
  let t = Trace.create () in
  Trace.set_enabled t false;
  Trace.instant t ~name:"x" ~at_ns:0.0;
  Alcotest.(check int) "nothing recorded" 0 (Trace.num_events t);
  Trace.set_enabled t true;
  Trace.instant t ~name:"y" ~at_ns:0.0;
  Alcotest.(check int) "recording again" 1 (Trace.num_events t)

let test_clear () =
  let t = Trace.create () in
  Trace.instant t ~name:"a" ~at_ns:1.0;
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.num_events t);
  Alcotest.(check string) "empty json" "[]" (Trace.to_chrome_json t)

let test_hooked_scheduler () =
  let m = Machine.create (Presets.amd_milan ()) in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  let t = Trace.create () in
  Sched.set_hooks sched (Trace.hook t sched ~hooks:Sched.no_hooks);
  for _ = 1 to 4 do
    ignore (Sched.spawn sched (fun ctx -> Sched.Ctx.work ctx 100.0))
  done;
  ignore (Sched.run sched : float);
  Alcotest.(check bool) "one quantum event per quantum" true (Trace.num_events t >= 4)

let suite =
  [
    Alcotest.test_case "records and serializes" `Quick test_records_and_serializes;
    Alcotest.test_case "disable" `Quick test_disable;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "hooked scheduler" `Quick test_hooked_scheduler;
  ]
