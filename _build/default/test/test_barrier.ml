open Chipsim
open Engine

let machine () = Machine.create (Presets.amd_milan ())

let run_barrier ~cores =
  let m = machine () in
  let n = List.length cores in
  let placement =
    let arr = Array.of_list cores in
    fun w -> arr.(w)
  in
  let sched = Sched.create m ~n_workers:n ~placement in
  let b = Barrier.create n in
  let exits = ref [] in
  List.iteri
    (fun w _ ->
      ignore
        (Sched.spawn sched ~worker:w (fun ctx ->
             Sched.Ctx.work ctx (float_of_int (w * 100));
             Barrier.wait ctx b;
             exits := Sched.Ctx.now ctx :: !exits)))
    cores;
  ignore (Sched.run sched : float);
  !exits

let test_waits_for_all () =
  let exits = run_barrier ~cores:[ 0; 1; 2; 3 ] in
  Alcotest.(check int) "all exit" 4 (List.length exits);
  let min_exit = List.fold_left Float.min infinity exits in
  (* slowest arrival was worker 3 at t=300 *)
  Alcotest.(check bool) "nobody exits early" true (min_exit >= 300.0)

let test_spread_costs_more () =
  let packed = run_barrier ~cores:[ 0; 1; 2; 3 ] in
  let spread = run_barrier ~cores:[ 0; 16; 64; 80 ] in
  let max_l = List.fold_left Float.max 0.0 in
  Alcotest.(check bool) "cross-socket barrier slower" true
    (max_l spread > max_l packed)

let test_cyclic_reuse () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  let b = Barrier.create 2 in
  let rounds = ref [] in
  for w = 0 to 1 do
    ignore
      (Sched.spawn sched ~worker:w (fun ctx ->
           for round = 1 to 3 do
             Sched.Ctx.work ctx 10.0;
             Barrier.wait ctx b;
             if w = 0 then rounds := round :: !rounds
           done))
  done;
  ignore (Sched.run sched : float);
  Alcotest.(check (list int)) "three rounds" [ 3; 2; 1 ] !rounds;
  Alcotest.(check int) "barrier reset" 0 (Barrier.waiting b)

let test_create_invalid () =
  Alcotest.check_raises "zero parties"
    (Invalid_argument "Barrier.create: parties must be positive") (fun () ->
      ignore (Barrier.create 0))

let suite =
  [
    Alcotest.test_case "waits for all" `Quick test_waits_for_all;
    Alcotest.test_case "spread costs more" `Quick test_spread_costs_more;
    Alcotest.test_case "cyclic reuse" `Quick test_cyclic_reuse;
    Alcotest.test_case "invalid create" `Quick test_create_invalid;
  ]
