(* Golden determinism: identical configurations produce byte-identical
   reports and traces, with and without fault injection, for both the
   batch path and the serving loop. *)

module Systems = Harness.Systems

let batch_digest ~faults () =
  let inst =
    Systems.make ~cache_scale:16 Systems.Charm Systems.Amd_milan_1s
      ~n_workers:4 ()
  in
  let sched = inst.Systems.env.Workloads.Exec_env.sched in
  let tr = Engine.Trace.create () in
  (match inst.Systems.charm with
  | Some rt -> Charm.Runtime.attach_trace rt tr
  | None -> Engine.Sched.set_trace sched (Some tr));
  if faults then begin
    let topo = Chipsim.Machine.topology inst.Systems.machine in
    ignore
      (Faults.Injector.attach sched
         (Faults.Schedule.random ~topo ~seed:11 ~n:4 ~horizon_us:500.0)
        : Faults.Injector.t)
  end;
  let params =
    { Workloads.Gups.default_params with Workloads.Gups.updates = 8192 }
  in
  ignore (Workloads.Gups.run inst.Systems.env params : Workloads.Workload_result.t);
  ( Format.asprintf "%a" Engine.Stats.pp (Systems.report inst),
    Engine.Trace.to_chrome_json tr )

let serve_digest ~faults () =
  let inst =
    Systems.make ~cache_scale:16 Systems.Charm Systems.Amd_milan_1s
      ~n_workers:4 ()
  in
  if faults then begin
    let topo = Chipsim.Machine.topology inst.Systems.machine in
    ignore
      (Faults.Injector.attach inst.Systems.env.Workloads.Exec_env.sched
         (Faults.Schedule.random ~topo ~seed:23 ~n:4 ~horizon_us:2000.0)
        : Faults.Injector.t)
  end;
  let tr = Engine.Trace.create () in
  let cfg = Serving.Server.default_config ~seed:42 in
  let cfg =
    {
      cfg with
      Serving.Server.trace = Some tr;
      check = true;
      tenants =
        List.map
          (fun t -> { t with Serving.Server.jobs = 6 })
          cfg.Serving.Server.tenants;
    }
  in
  let report = Serving.Server.run inst cfg in
  (Serving.Server.report_to_json report, Engine.Trace.to_chrome_json tr)

let check_twice name digest =
  let r1, t1 = digest () in
  let r2, t2 = digest () in
  Alcotest.(check string) (name ^ ": report bytes") r1 r2;
  Alcotest.(check string) (name ^ ": trace bytes") t1 t2;
  Alcotest.(check bool) (name ^ ": trace nonempty") true (String.length t1 > 2)

let test_batch () = check_twice "gups" (batch_digest ~faults:false)
let test_batch_faults () = check_twice "gups+faults" (batch_digest ~faults:true)
let test_serve () = check_twice "serve" (serve_digest ~faults:false)
let test_serve_faults () = check_twice "serve+faults" (serve_digest ~faults:true)

let suite =
  [
    Alcotest.test_case "batch run byte-identical" `Quick test_batch;
    Alcotest.test_case "batch run with faults byte-identical" `Quick test_batch_faults;
    Alcotest.test_case "serve run byte-identical" `Quick test_serve;
    Alcotest.test_case "serve run with faults byte-identical" `Quick test_serve_faults;
  ]
