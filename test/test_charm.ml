let () =
  Alcotest.run "charm"
    [
      ("placement", Test_placement.suite);
      ("profiler", Test_profiler.suite);
      ("controller", Test_controller.suite);
      ("policy", Test_policy.suite);
      ("runtime", Test_runtime.suite);
    ]
