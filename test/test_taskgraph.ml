(* The task-graph subsystem: generator determinism, the text format's
   round-trip and one-line negative parses (mirroring Serving.Spec's),
   mapper properties (blind vs comm-aware), DAG execution on the engine
   under invariants, and the accelerator-only placement satellite (OLAP
   work never lands on a [general_tasks = false] chiplet). *)

module Sys_ = Harness.Systems
module Graph = Taskgraph.Graph
module Mapper = Taskgraph.Mapper
module Exec = Taskgraph.Exec
module Topology = Chipsim.Topology
module Server = Serving.Server
module Job = Serving.Job

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* the tiny-hetero machine: 1 socket x 4 chiplets x 2 cores, kinds
   big big little accel — chiplet 3 (cores 6-7) is accelerator-only *)
let hetero_spec =
  "sockets 1; chiplets-per-socket 4; cores-per-chiplet 2; \
   chiplet-group-size 2; l3-bytes-per-chiplet 16KiB; l2-bytes-per-core \
   4KiB; line-bytes 64; mem-channels-per-socket 2; mem-bw-bytes-per-ns \
   4.8; chiplet-kinds big big little accel; link 3 lat-mult 1.5 bw 2"

let hetero_topo =
  match Topology.of_string hetero_spec with
  | Ok t -> t
  | Error m -> Alcotest.failf "hetero topo: %s" m

let hetero_machine =
  match Sys_.custom_machine_of_spec hetero_spec with
  | Ok m -> m
  | Error m -> Alcotest.failf "hetero machine: %s" m

let all_cases =
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun layers -> List.map (fun seed -> (shape, layers, seed)) [ 0; 5 ])
        [ 1; 3; 6 ])
    Graph.all_shapes

(* -- generator ----------------------------------------------------------- *)

let test_generator_deterministic () =
  List.iter
    (fun (shape, layers, seed) ->
      let a = Graph.generate ~shape ~layers ~seed () in
      let b = Graph.generate ~shape ~layers ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "%s equal across calls" (Graph.name a))
        true (Graph.equal a b);
      let c = Graph.generate ~shape ~layers ~seed:(seed + 1) () in
      Alcotest.(check bool)
        (Printf.sprintf "%s differs across seeds" (Graph.name a))
        false (Graph.equal a c))
    all_cases

let test_generator_shapes () =
  let chain = Graph.generate ~shape:Graph.Chain ~layers:5 ~seed:0 () in
  Alcotest.(check int) "chain nodes" 7 (Graph.num_nodes chain);
  Alcotest.(check int) "chain edges" 6 (Graph.num_edges chain);
  let fan = Graph.generate ~shape:Graph.Fanout ~layers:5 ~seed:0 () in
  Alcotest.(check int) "fanout nodes" 7 (Graph.num_nodes fan);
  Alcotest.(check int) "fanout edges" 10 (Graph.num_edges fan);
  Alcotest.check_raises "layers must be positive"
    (Invalid_argument "Graph.generate: layers must be >= 1") (fun () ->
      ignore (Graph.generate ~shape:Graph.Chain ~layers:0 ~seed:0 ()))

(* -- text format --------------------------------------------------------- *)

let test_round_trip () =
  List.iter
    (fun (shape, layers, seed) ->
      let g = Graph.generate ~shape ~layers ~seed () in
      match Graph.of_string (Graph.to_string g) with
      | Ok g' ->
          Alcotest.(check bool)
            (Printf.sprintf "%s round-trips" (Graph.name g))
            true (Graph.equal g g')
      | Error m -> Alcotest.failf "%s failed to re-parse: %s" (Graph.name g) m)
    all_cases

let test_spec_round_trip () =
  let g = Graph.generate ~shape:Graph.Inception ~layers:3 ~seed:2 () in
  match Graph.of_string (Graph.to_spec g) with
  | Ok g' -> Alcotest.(check bool) "to_spec round-trips" true (Graph.equal g g')
  | Error m -> Alcotest.failf "to_spec failed to re-parse: %s" m

let test_comments_and_separators () =
  let spec =
    "# a tiny two-node pipeline\n\
     name tiny # trailing comment\n\
     node 0 embed 1500; node 1 conv 9000   # two directives, one line\n\
     \tedge 0 1 64KiB\n\n"
  in
  match Graph.of_string spec with
  | Ok g ->
      Alcotest.(check string) "name" "tiny" (Graph.name g);
      Alcotest.(check int) "nodes" 2 (Graph.num_nodes g);
      Alcotest.(check int) "edge bytes" (64 * 1024) (Graph.total_edge_bytes g)
  | Error m -> Alcotest.failf "comment spec rejected: %s" m

let test_of_file () =
  let g = Graph.generate ~shape:Graph.Chain ~layers:4 ~seed:1 () in
  let path = Filename.temp_file "taskgraph" ".dag" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Graph.to_string g);
      close_out oc;
      match Graph.of_file path with
      | Ok g' -> Alcotest.(check bool) "of_file round-trips" true (Graph.equal g g')
      | Error m -> Alcotest.failf "of_file: %s" m);
  match Graph.of_file "/nonexistent/graph.dag" with
  | Ok _ -> Alcotest.fail "missing file parsed"
  | Error _ -> ()

(* every malformed spec must fail with a one-line error naming the
   offending directive or field — same contract as Serving.Spec *)
let negative_specs =
  [
    ("", "at least one node");
    ("nope 1 2", "unknown task-graph field \"nope\"");
    ("name a b", "bad name directive");
    ("node 0 swish 100", "unknown op \"swish\"");
    ("node x conv 100", "id \"x\" is not an integer");
    ("node 0 conv abc", "cost \"abc\" is not a number");
    ("node 0 conv 100 extra", "want node ID OP COST_NS");
    ("node 0 conv -5", "cost -5 must be positive");
    ("node 0 conv 100\nnode 2 conv 50", "node ids must be dense");
    ("node 0 conv 100\nnode 0 conv 50", "duplicate node id 0");
    ("node 0 conv 100\nedge 0 1 64KiB", "outside [0,1)");
    ("node 0 conv 100\nedge 0 0 64KiB", "self-edge on node 0");
    ( "node 0 conv 100\nnode 1 conv 50\nedge 0 1 1KiX",
      "bytes \"1KiX\" is not a size" );
    ("node 0 conv 100\nnode 1 conv 50\nedge 0 q 1KiB", "dst \"q\" is not an integer");
    ( "node 0 conv 100\nnode 1 conv 50\nedge 0 1 1KiB\nedge 0 1 2KiB",
      "duplicate edge 0 -> 1" );
    ( "node 0 conv 100\nnode 1 conv 50\nedge 0 1 1KiB\nedge 1 0 1KiB",
      "cycle through node" );
  ]

let test_negative_parses () =
  List.iter
    (fun (spec, want) ->
      match Graph.of_string spec with
      | Ok _ -> Alcotest.failf "spec %S parsed but should fail with %S" spec want
      | Error m ->
          if not (contains m want) then
            Alcotest.failf "spec %S: error %S does not mention %S" spec m want;
          Alcotest.(check bool)
            (Printf.sprintf "%S error is one line" spec)
            false
            (String.contains m '\n'))
    negative_specs

(* -- mapper -------------------------------------------------------------- *)

let test_blind_round_robin () =
  let g = Graph.generate ~shape:Graph.Chain ~layers:6 ~seed:0 () in
  let usable = [| 0; 2 |] in
  let m = Mapper.map ~usable hetero_topo ~policy:Mapper.Blind g in
  Array.iteri
    (fun i ch ->
      Alcotest.(check int)
        (Printf.sprintf "node %d round-robins" i)
        usable.(i mod 2) ch)
    m.Mapper.assign

let test_mapper_usable_validation () =
  let g = Graph.generate ~shape:Graph.Chain ~layers:2 ~seed:0 () in
  List.iter
    (fun usable ->
      match Mapper.map ~usable hetero_topo ~policy:Mapper.Comm_aware g with
      | _ -> Alcotest.failf "usable %s accepted" "set"
      | exception Invalid_argument _ -> ())
    [ [||]; [| 4 |]; [| -1 |] ]

let test_comm_aware_cuts_less () =
  List.iter
    (fun (shape, layers, seed) ->
      let g = Graph.generate ~shape ~layers ~seed () in
      let blind = Mapper.map hetero_topo ~policy:Mapper.Blind g in
      let aware = Mapper.map hetero_topo ~policy:Mapper.Comm_aware g in
      Alcotest.(check bool)
        (Printf.sprintf "%s: comm-aware cuts <= blind" (Graph.name g))
        true
        (aware.Mapper.cross_bytes <= blind.Mapper.cross_bytes);
      Array.iter
        (fun ch ->
          Alcotest.(check bool) "assign in range" true
            (ch >= 0 && ch < Topology.num_chiplets hetero_topo))
        aware.Mapper.assign;
      (* the recorded cut agrees with a recount *)
      Alcotest.(check int)
        (Printf.sprintf "%s: cut recount" (Graph.name g))
        (Mapper.cross_bytes g ~assign:aware.Mapper.assign)
        aware.Mapper.cross_bytes;
      (* deterministic *)
      let again = Mapper.map hetero_topo ~policy:Mapper.Comm_aware g in
      Alcotest.(check bool) "mapping deterministic" true
        (again.Mapper.assign = aware.Mapper.assign))
    all_cases

(* -- execution on the engine --------------------------------------------- *)

let run_dag_once ~policy ~check g =
  let inst = Sys_.make ~cache_scale:16 Sys_.Charm hetero_machine ~n_workers:8 () in
  let sched = inst.Sys_.env.Workloads.Exec_env.sched in
  if check then Engine.Sched.set_check sched true;
  let m = Mapper.map hetero_topo ~policy g in
  let result = ref None in
  ignore
    (inst.Sys_.env.Workloads.Exec_env.run (fun ctx ->
         result := Some (Exec.run ctx m g))
      : float);
  if check then Engine.Sched.check_quiescent sched;
  (m, Option.get !result)

let test_exec_runs_under_invariants () =
  List.iter
    (fun (shape, layers, seed) ->
      let g = Graph.generate ~shape ~layers ~seed () in
      List.iter
        (fun policy ->
          let m, r = run_dag_once ~policy ~check:true g in
          Alcotest.(check int)
            (Printf.sprintf "%s: all nodes ran" (Graph.name g))
            (Graph.num_nodes g) r.Exec.nodes_run;
          Alcotest.(check int)
            (Printf.sprintf "%s: cut bytes charged" (Graph.name g))
            m.Mapper.cross_bytes r.Exec.cross_bytes;
          Alcotest.(check bool)
            (Printf.sprintf "%s: positive span" (Graph.name g))
            true (r.Exec.span_ns > 0.0))
        Mapper.all_policies)
    [ (Graph.Chain, 4, 0); (Graph.Inception, 3, 1); (Graph.Fanout, 5, 2) ]

let test_exec_deterministic () =
  let g = Graph.generate ~shape:Graph.Inception ~layers:3 ~seed:4 () in
  let _, a = run_dag_once ~policy:Mapper.Comm_aware ~check:false g in
  let _, b = run_dag_once ~policy:Mapper.Comm_aware ~check:false g in
  Alcotest.(check (float 0.0)) "same span across runs" a.Exec.span_ns b.Exec.span_ns

let test_exec_rejects_short_mapping () =
  let g = Graph.generate ~shape:Graph.Chain ~layers:3 ~seed:0 () in
  let m = Mapper.map hetero_topo ~policy:Mapper.Blind g in
  let short = { m with Mapper.assign = Array.sub m.Mapper.assign 0 1 } in
  let inst = Sys_.make ~cache_scale:16 Sys_.Charm hetero_machine ~n_workers:8 () in
  match
    inst.Sys_.env.Workloads.Exec_env.run (fun ctx -> ignore (Exec.run ctx short g))
  with
  | _ -> Alcotest.fail "short mapping accepted"
  | exception Invalid_argument m ->
      Alcotest.(check bool) "names the mapping" true (contains m "mapping")

(* -- accelerator-only chiplets stay off general work --------------------- *)

let test_accel_chiplet_flags () =
  Alcotest.(check bool) "big accepts general" true
    (Topology.chiplet_accepts_general hetero_topo 0);
  Alcotest.(check bool) "little accepts general" true
    (Topology.chiplet_accepts_general hetero_topo 2);
  Alcotest.(check bool) "accel refuses general" false
    (Topology.chiplet_accepts_general hetero_topo 3);
  Alcotest.(check int) "general chiplets per socket" 3
    (Topology.general_chiplets_per_socket hetero_topo)

let accel_cores = Topology.cores_of_chiplet hetero_topo 3

let test_gang_avoids_accel () =
  (* a gang that fits on the general chiplets must never touch the accel
     chiplet under prefer_fast, at any spread the general band allows *)
  let max_spread = Charm.Placement.max_general_spread hetero_topo ~n_workers:4 in
  Alcotest.(check int) "general spread caps at the general band" 3 max_spread;
  for spread_rate = 1 to max_spread do
    if Charm.Placement.valid_spread hetero_topo ~spread_rate ~n_workers:4 then
      match
        Charm.Placement.gang ~prefer_fast:true hetero_topo ~spread_rate
          ~n_workers:4
      with
      | None -> ()
      | Some cores ->
          Array.iter
            (fun core ->
              Alcotest.(check bool)
                (Printf.sprintf "spread %d: core %d not on accel" spread_rate core)
                false (List.mem core accel_cores))
            cores
  done;
  (* a gang too big for the general band does reach the accel chiplet *)
  match
    Charm.Placement.gang ~prefer_fast:true hetero_topo ~spread_rate:4 ~n_workers:8
  with
  | None -> Alcotest.fail "full-machine gang rejected"
  | Some cores ->
      Alcotest.(check bool) "8 workers must use the accel chiplet" true
        (Array.exists (fun c -> List.mem c accel_cores) cores)

let test_olap_serving_avoids_accel () =
  (* end to end: an OLAP/OLTP-only serving run on the hetero machine with
     6 workers (fits the 3 general chiplets) never executes a quantum on
     the accelerator-only chiplet *)
  let trace = Engine.Trace.create () in
  let inst = Sys_.make ~cache_scale:16 Sys_.Charm hetero_machine ~n_workers:6 () in
  let tenant name mix =
    {
      Server.name;
      weight = 1.0;
      slo_factor = 3.0;
      process = Serving.Arrivals.Open_loop { rate_per_s = 3000.0 };
      jobs = 12;
      mix;
      replicas = 1;
    }
  in
  let cfg =
    {
      Server.tenants =
        [
          tenant "olap" [ (Job.Tpch 1, 1); (Job.Tpch 6, 1) ];
          tenant "oltp" [ (Job.Ycsb_batch 64, 1); (Job.Gups 512, 1) ];
        ];
      admission =
        { Serving.Admission.max_queue_per_tenant = 32; max_global_queue = 64 };
      max_inflight = 4;
      seed = 11;
      data = { Job.default_data_config with graph_scale = 7; seed = 12 };
      trace = Some trace;
      on_complete = None;
      check = true;
    }
  in
  let report = Server.run inst cfg in
  let completed =
    List.fold_left
      (fun acc (tr : Server.tenant_report) -> acc + tr.Server.completed)
      0 report.Server.tenant_reports
  in
  Alcotest.(check bool) "jobs completed" true (completed > 0);
  let quanta = ref 0 and on_accel = ref 0 in
  List.iter
    (function
      | Engine.Trace.Quantum { core; _ } ->
          incr quanta;
          if List.mem core accel_cores then incr on_accel
      | _ -> ())
    (Engine.Trace.events trace);
  Alcotest.(check bool) "saw quanta" true (!quanta > 0);
  Alcotest.(check int) "no OLAP quantum on the accel chiplet" 0 !on_accel

let () =
  Alcotest.run "taskgraph"
    [
      ( "graph",
        [
          Alcotest.test_case "generator deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "generator shapes" `Quick test_generator_shapes;
          Alcotest.test_case "round-trip" `Quick test_round_trip;
          Alcotest.test_case "spec round-trip" `Quick test_spec_round_trip;
          Alcotest.test_case "comments and separators" `Quick
            test_comments_and_separators;
          Alcotest.test_case "of_file" `Quick test_of_file;
          Alcotest.test_case "negative parses" `Quick test_negative_parses;
        ] );
      ( "mapper",
        [
          Alcotest.test_case "blind round-robins" `Quick test_blind_round_robin;
          Alcotest.test_case "usable validation" `Quick
            test_mapper_usable_validation;
          Alcotest.test_case "comm-aware cuts less" `Quick
            test_comm_aware_cuts_less;
        ] );
      ( "exec",
        [
          Alcotest.test_case "runs under invariants" `Quick
            test_exec_runs_under_invariants;
          Alcotest.test_case "deterministic" `Quick test_exec_deterministic;
          Alcotest.test_case "rejects short mapping" `Quick
            test_exec_rejects_short_mapping;
        ] );
      ( "accel",
        [
          Alcotest.test_case "chiplet flags" `Quick test_accel_chiplet_flags;
          Alcotest.test_case "gang avoids accel" `Quick test_gang_avoids_accel;
          Alcotest.test_case "OLAP serving avoids accel" `Quick
            test_olap_serving_avoids_accel;
        ] );
    ]
