let () =
  Alcotest.run "workloads"
    [
      ("baselines", Test_baselines.suite);
      ("graph", Test_graph.suite);
      ("analytics", Test_analytics.suite);
      ("streamcluster", Test_streamcluster.suite);
    ]
