open Chipsim
open Engine

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* -- minimal JSON validator --------------------------------------------- *)

exception Bad_json

(* strict recursive-descent check of the whole string: unescaped quotes,
   control characters or truncated structures in a trace all surface as a
   parse failure here, exactly as they would in chrome://tracing *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise Bad_json in
  let adv () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c = if peek () <> c then raise Bad_json else adv () in
  let keyword k =
    String.iter (fun c -> if peek () <> c then raise Bad_json else adv ()) k
  in
  let digits () =
    let saw = ref false in
    while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
      adv ();
      saw := true
    done;
    if not !saw then raise Bad_json
  in
  let number () =
    if peek () = '-' then adv ();
    digits ();
    if !pos < n && s.[!pos] = '.' then begin
      adv ();
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      adv ();
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then adv ();
      digits ()
    end
  in
  let rec pstring () =
    expect '"';
    let rec go () =
      let c = peek () in
      adv ();
      match c with
      | '"' -> ()
      | '\\' -> (
          let e = peek () in
          adv ();
          match e with
          | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> go ()
          | 'u' ->
              for _ = 1 to 4 do
                (match peek () with
                | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                | _ -> raise Bad_json);
                adv ()
              done;
              go ()
          | _ -> raise Bad_json)
      | c when Char.code c < 0x20 -> raise Bad_json
      | _ -> go ()
    in
    go ()
  and value () =
    skip_ws ();
    match peek () with
    | '{' ->
        adv ();
        skip_ws ();
        if peek () = '}' then adv ()
        else begin
          let rec members () =
            skip_ws ();
            pstring ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            if peek () = ',' then begin
              adv ();
              members ()
            end
            else expect '}'
          in
          members ()
        end
    | '[' ->
        adv ();
        skip_ws ();
        if peek () = ']' then adv ()
        else begin
          let rec elems () =
            value ();
            skip_ws ();
            if peek () = ',' then begin
              adv ();
              elems ()
            end
            else expect ']'
          in
          elems ()
        end
    | '"' -> pstring ()
    | 't' -> keyword "true"
    | 'f' -> keyword "false"
    | 'n' -> keyword "null"
    | c when c = '-' || (c >= '0' && c <= '9') -> number ()
    | _ -> raise Bad_json
  in
  try
    value ();
    skip_ws ();
    !pos = n
  with Bad_json -> false

(* -- unit tests --------------------------------------------------------- *)

let test_records_and_serializes () =
  let t = Trace.create () in
  Trace.task_quantum t ~worker:0 ~core:3 ~task_id:7 ~start_ns:100.0 ~end_ns:400.0;
  Trace.migration t ~worker:1 ~from_core:3 ~to_core:9 ~at_ns:500.0;
  Trace.policy_decision t ~worker:1 ~spread:4 ~at_ns:600.0;
  Trace.instant t ~name:"phase" ~at_ns:700.0;
  Alcotest.(check int) "four events" 4 (Trace.num_events t);
  let json = Trace.to_chrome_json t in
  Alcotest.(check bool) "array" true
    (String.length json > 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  Alcotest.(check bool) "quantum event present" true
    (contains json {|"cat":"quantum"|});
  Alcotest.(check bool) "real task id in args" true (contains json {|"task":7|});
  Alcotest.(check bool) "migration event present" true
    (contains json {|"migrate 3->9"|})

let test_disable () =
  let t = Trace.create () in
  Trace.set_enabled t false;
  Trace.instant t ~name:"x" ~at_ns:0.0;
  Alcotest.(check int) "nothing recorded" 0 (Trace.num_events t);
  Trace.set_enabled t true;
  Trace.instant t ~name:"y" ~at_ns:0.0;
  Alcotest.(check int) "recording again" 1 (Trace.num_events t)

let test_clear () =
  let t = Trace.create () in
  Trace.instant t ~name:"a" ~at_ns:1.0;
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.num_events t);
  Alcotest.(check string) "empty json" "[]" (Trace.to_chrome_json t)

let test_ring_wraparound () =
  let t = Trace.create ~capacity:8 () in
  for i = 0 to 19 do
    Trace.instant t ~name:(string_of_int i) ~at_ns:(float_of_int i)
  done;
  Alcotest.(check int) "capacity retained" 8 (Trace.num_events t);
  Alcotest.(check int) "overflow counted" 12 (Trace.dropped t);
  let names =
    List.filter_map
      (function Trace.Instant { name; _ } -> Some name | _ -> None)
      (Trace.events t)
  in
  Alcotest.(check (list string)) "newest events survive, oldest first"
    [ "12"; "13"; "14"; "15"; "16"; "17"; "18"; "19" ]
    names;
  Alcotest.(check bool) "json still valid after wrap" true
    (json_valid (Trace.to_chrome_json t))

let test_json_escaping_all_kinds () =
  let t = Trace.create () in
  (* one of every event kind, with hostile names where names are free-form *)
  Trace.task_quantum t ~worker:0 ~core:1 ~task_id:42 ~start_ns:0.0 ~end_ns:10.0;
  Trace.steal t ~thief:1 ~victim:0 ~task_id:42 ~at_ns:5.0;
  Trace.park t ~worker:1 ~at_ns:6.0;
  Trace.migration t ~worker:0 ~from_core:1 ~to_core:2 ~at_ns:7.0;
  Trace.policy_decision t ~worker:0 ~spread:2 ~at_ns:8.0;
  Trace.spread_change t ~worker:0 ~old_spread:1 ~new_spread:2 ~at_ns:8.0;
  Trace.mode_switch t ~from_mode:"cache\"centric" ~to_mode:"location\\centric"
    ~at_ns:9.0;
  Trace.rebind t ~worker:0 ~node:1 ~regions:3 ~at_ns:10.0;
  Trace.job t ~phase:Trace.Admit ~tenant:{|te"nant|} ~kind:"bfs\nnested"
    ~job_id:0 ~at_ns:11.0;
  Trace.counter t ~name:{|fi"lls|} ~at_ns:12.0
    ~series:[ ("local", 3.0); ({|dr\am|}, 4.0) ];
  Trace.instant t ~name:"quote \" backslash \\ newline \n tab \t" ~at_ns:13.0;
  let json = Trace.to_chrome_json t in
  Alcotest.(check bool) "hostile names produce valid json" true (json_valid json);
  Alcotest.(check bool) "counter channel present" true (contains json {|"ph":"C"|});
  Alcotest.(check bool) "job category present" true (contains json {|"cat":"job"|});
  let s = Trace.summary t in
  Alcotest.(check bool) "summary covers categories" true
    (contains s "quantum" && contains s "steal" && contains s "job")

let test_sched_emits_with_real_ids () =
  let m = Machine.create (Presets.amd_milan ()) in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  let t = Trace.create () in
  Sched.set_trace sched (Some t);
  (* all work spawned on worker 0: worker 1 can only run what it steals *)
  for _ = 1 to 8 do
    ignore
      (Sched.spawn sched ~worker:0 (fun ctx ->
           Sched.Ctx.work ctx 300.0;
           Sched.Ctx.yield ctx;
           Sched.Ctx.work ctx 300.0))
  done;
  ignore (Sched.run sched : float);
  let quanta = ref 0 and steals = ref 0 and bad_id = ref 0 in
  List.iter
    (function
      | Trace.Quantum { task_id; _ } ->
          incr quanta;
          if task_id < 0 then incr bad_id
      | Trace.Steal _ -> incr steals
      | _ -> ())
    (Trace.events t);
  Alcotest.(check bool) "a quantum per task quantum" true (!quanta >= 16);
  Alcotest.(check int) "no placeholder task ids" 0 !bad_id;
  Alcotest.(check bool) "idle worker stole" true (!steals >= 1);
  Alcotest.(check bool) "valid chrome json" true (json_valid (Trace.to_chrome_json t))

let test_quanta_never_overlap_per_worker () =
  let m = Machine.create (Presets.amd_milan ()) in
  let sched = Sched.create m ~n_workers:4 ~placement:(fun w -> w) in
  let t = Trace.create () in
  Sched.set_trace sched (Some t);
  for i = 0 to 31 do
    ignore
      (Sched.spawn sched ~worker:(i mod 4) (fun ctx ->
           for _ = 1 to 3 do
             Sched.Ctx.work ctx 100.0;
             Sched.Ctx.yield ctx
           done))
  done;
  ignore (Sched.run sched : float);
  let last_end = Array.make 4 0.0 in
  let checked = ref 0 in
  List.iter
    (function
      | Trace.Quantum { worker; start_ns; end_ns; _ } ->
          incr checked;
          Alcotest.(check bool) "start before end" true (start_ns <= end_ns);
          Alcotest.(check bool) "no overlap with previous quantum" true
            (start_ns >= last_end.(worker));
          last_end.(worker) <- end_ns
      | _ -> ())
    (Trace.events t);
  Alcotest.(check bool) "quanta were checked" true (!checked >= 32)

(* -- serve-mode determinism --------------------------------------------- *)

let serve_trace seed =
  let inst =
    Harness.Systems.make ~cache_scale:16 Harness.Systems.Charm
      Harness.Systems.Amd_milan ~n_workers:8 ()
  in
  let tr = Trace.create () in
  let base = Serving.Server.default_config ~seed in
  let cfg =
    {
      base with
      Serving.Server.tenants =
        [
          {
            Serving.Server.name = "t0";
            weight = 1.0;
            slo_factor = 3.0;
            process = Serving.Arrivals.Open_loop { rate_per_s = 20_000.0 };
            jobs = 8;
            mix = [ (Serving.Job.Gups 2048, 1) ];
            replicas = 1;
          };
        ];
      data = { Serving.Job.default_data_config with graph_scale = 8 };
      trace = Some tr;
    }
  in
  ignore (Serving.Server.run inst cfg : Serving.Server.report);
  Trace.to_chrome_json tr

let test_serve_trace_deterministic () =
  let a = serve_trace 42 and b = serve_trace 42 in
  Alcotest.(check bool) "same seed, byte-identical trace" true (a = b);
  Alcotest.(check bool) "valid chrome json" true (json_valid a);
  Alcotest.(check bool) "job lifecycle recorded" true
    (contains a {|"phase":"admit"|} && contains a {|"phase":"finish"|});
  Alcotest.(check bool) "fill-class counter track recorded" true
    (contains a {|"name":"fills"|} && contains a {|"ph":"C"|})

let suite =
  [
    Alcotest.test_case "records and serializes" `Quick test_records_and_serializes;
    Alcotest.test_case "disable" `Quick test_disable;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "ring wraparound keeps newest" `Quick test_ring_wraparound;
    Alcotest.test_case "escaping: every kind parses" `Quick test_json_escaping_all_kinds;
    Alcotest.test_case "scheduler emits real task ids" `Quick test_sched_emits_with_real_ids;
    Alcotest.test_case "quanta never overlap per worker" `Quick
      test_quanta_never_overlap_per_worker;
    Alcotest.test_case "serve trace deterministic" `Quick test_serve_trace_deterministic;
  ]
