(* Replicated execution: deterministic result tokens, seeded corruption,
   plurality voting (and the planted voter bug), group placement over
   distinct chiplets, --replicate spec parsing, and end-to-end serving
   with voting under injected silent data corruption. *)

module Replica = Serving.Replica
module Server = Serving.Server
module Spec = Serving.Spec
module Metrics = Serving.Metrics
module Machine = Chipsim.Machine
module Modifiers = Chipsim.Modifiers
module Sys_ = Harness.Systems

let t64 = Alcotest.int64

(* -- tokens and corruption --------------------------------------------- *)

let test_token_deterministic () =
  let a = Replica.token ~job_seed:42 ~kind:"bfs" in
  Alcotest.(check t64) "same seed and kind, same token" a
    (Replica.token ~job_seed:42 ~kind:"bfs");
  Alcotest.(check bool) "seed changes the token" true
    (a <> Replica.token ~job_seed:43 ~kind:"bfs");
  Alcotest.(check bool) "kind changes the token" true
    (a <> Replica.token ~job_seed:42 ~kind:"pagerank")

let test_corrupt_single_bit () =
  let tok = Replica.token ~job_seed:7 ~kind:"gups" in
  let bad = Replica.corrupt tok ~seed:6 in
  Alcotest.(check bool) "corruption changes the token" true (bad <> tok);
  let diff = Int64.logxor tok bad in
  Alcotest.(check bool) "exactly one bit flipped" true
    (Int64.logand diff (Int64.sub diff 1L) = 0L && diff <> 0L);
  Alcotest.(check t64) "corruption is an involution"
    tok
    (Replica.corrupt bad ~seed:6);
  Alcotest.(check bool) "different seeds can hit different bits" true
    (Replica.corrupt tok ~seed:1 <> Replica.corrupt tok ~seed:2)

(* -- voting ------------------------------------------------------------ *)

let test_majority_masks_minority () =
  let tok = Replica.token ~job_seed:1 ~kind:"bfs" in
  let bad = Replica.corrupt tok ~seed:9 in
  Alcotest.(check t64) "unanimous group" tok
    (Replica.majority [| tok; tok; tok |]);
  Alcotest.(check t64) "one corrupted of three is outvoted" tok
    (Replica.majority [| bad; tok; tok |]);
  Alcotest.(check t64) "two identical corruptions win the plurality" bad
    (Replica.majority [| bad; tok; bad |]);
  Alcotest.(check t64) "singleton group" tok (Replica.majority [| tok |])

let test_majority_tie_break () =
  let tok = Replica.token ~job_seed:2 ~kind:"bfs" in
  let bad = Replica.corrupt tok ~seed:3 in
  (* a 2-way tie resolves to the lowest replica index, deterministically —
     which is also why the vote-skip plant is undetectable at k = 2 and
     the CI gate runs 3-replica groups *)
  Alcotest.(check t64) "tie goes to replica 0" bad
    (Replica.majority [| bad; tok |]);
  Alcotest.(check t64) "tie goes to replica 0 (swapped)" tok
    (Replica.majority [| tok; bad |])

let test_empty_group_invalid () =
  let invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted an empty group" name
  in
  invalid "majority" (fun () -> Replica.majority [||]);
  invalid "vote" (fun () -> Replica.vote [||])

let with_plant kind f =
  Unix.putenv "CHARM_CHECK_PLANT" kind;
  Fun.protect ~finally:(fun () -> Unix.putenv "CHARM_CHECK_PLANT" "") f

let test_vote_and_plant () =
  let tok = Replica.token ~job_seed:5 ~kind:"tpch" in
  let bad = Replica.corrupt tok ~seed:6 in
  let group = [| bad; tok; tok |] in
  Alcotest.(check t64) "honest vote equals the plurality" tok
    (Replica.vote group);
  (* the planted bug returns replica 0 unchecked; the env var is read per
     call, so the defect switches on and off with it *)
  with_plant "vote-skip" (fun () ->
      Alcotest.(check t64) "planted voter returns replica 0" bad
        (Replica.vote group));
  Alcotest.(check t64) "plant off again after restore" tok
    (Replica.vote group)

let test_unanimous () =
  let tok = Replica.token ~job_seed:8 ~kind:"bfs" in
  Alcotest.(check bool) "all equal" true (Replica.unanimous [| tok; tok |]);
  Alcotest.(check bool) "divergent" false
    (Replica.unanimous [| tok; Replica.corrupt tok ~seed:1 |]);
  Alcotest.(check bool) "singleton" true (Replica.unanimous [| tok |])

(* -- placement --------------------------------------------------------- *)

let test_placement_distinct () =
  let chiplets = [| 1; 3; 5; 7 |] in
  for job_id = 0 to 50 do
    for replicas = 2 to 4 do
      let p = Replica.placement ~chiplets ~job_id ~replicas in
      Alcotest.(check int) "requested group size" replicas (Array.length p);
      let sorted = Array.copy p in
      Array.sort compare sorted;
      for i = 1 to Array.length sorted - 1 do
        if sorted.(i) = sorted.(i - 1) then
          Alcotest.failf "job %d k=%d co-located two replicas on chiplet %d"
            job_id replicas sorted.(i)
      done;
      Array.iter
        (fun ch ->
          if not (Array.exists (( = ) ch) chiplets) then
            Alcotest.failf "placed on chiplet %d outside the worker set" ch)
        p
    done
  done

let test_placement_rotates_and_clamps () =
  let chiplets = [| 0; 1; 2; 3 |] in
  let p0 = Replica.placement ~chiplets ~job_id:0 ~replicas:2 in
  let p1 = Replica.placement ~chiplets ~job_id:1 ~replicas:2 in
  Alcotest.(check bool) "successive jobs rotate over the machine" true
    (p0 <> p1);
  Alcotest.(check int) "clamped to the chiplet count" 4
    (Array.length (Replica.placement ~chiplets ~job_id:0 ~replicas:9));
  (match Replica.placement ~chiplets:[||] ~job_id:0 ~replicas:2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted an empty chiplet set");
  match Replica.placement ~chiplets ~job_id:0 ~replicas:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted replicas = 0"

(* -- --replicate spec parsing ------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_err name result frag =
  match result with
  | Ok _ -> Alcotest.failf "%s: accepted a malformed spec" name
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" name msg frag)
        true (contains msg frag)

let test_replicate_spec () =
  (match Spec.parse_replication "gold:3" with
  | Ok (name, k) ->
      Alcotest.(check string) "name" "gold" name;
      Alcotest.(check int) "degree" 3 k
  | Error msg -> Alcotest.failf "rejected valid spec: %s" msg);
  (* the degree is the LAST ':' field, so tenant names may carry colons *)
  (match Spec.parse_replication "a:b:2" with
  | Ok (name, k) ->
      Alcotest.(check string) "colon-bearing name" "a:b" name;
      Alcotest.(check int) "degree" 2 k
  | Error msg -> Alcotest.failf "rejected colon-bearing name: %s" msg);
  check_err "empty" (Spec.parse_replication "") "want NAME:DEGREE";
  check_err "no degree" (Spec.parse_replication "gold") "want NAME:DEGREE";
  check_err "dangling colon" (Spec.parse_replication "gold:") "want NAME:DEGREE";
  check_err "empty name" (Spec.parse_replication ":3") "want NAME:DEGREE";
  check_err "non-integer degree" (Spec.parse_replication "gold:x")
    "not an integer";
  check_err "zero degree" (Spec.parse_replication "gold:0") ">= 1"

(* -- end to end through the server ------------------------------------- *)

(* amd1s has 4 cores per chiplet: 24 workers span 6 chiplets, so a
   3-replica group really lands on 3 distinct chiplets (k = 2 would make
   a single corruption an undetectable 1-1 tie) *)
let replicated_inst () =
  Sys_.make ~cache_scale:16 Sys_.Charm Sys_.Amd_milan_1s ~n_workers:24 ()

let replicated_cfg ~check seed =
  let base = Server.default_config ~seed in
  {
    base with
    Server.tenants =
      [
        {
          Server.name = "gold";
          weight = 1.0;
          slo_factor = 3.0;
          process = Serving.Arrivals.Open_loop { rate_per_s = 5000.0 };
          jobs = 6;
          mix = [ (Serving.Job.Gups 512, 1) ];
          replicas = 3;
        };
      ];
    check;
  }

let test_server_votes_out_corruption () =
  let inst = replicated_inst () in
  (* seed 6 mod k=3 picks replica 0 as the victim: deterministic, same
     choice the CI plant gate relies on *)
  Modifiers.arm_corruption (Machine.modifiers inst.Sys_.machine) ~seed:6;
  let r = Server.run inst (replicated_cfg ~check:true 17) in
  let tr = List.hd r.Server.tenant_reports in
  Alcotest.(check int) "every job completes once" 6 tr.Server.completed;
  Alcotest.(check int) "report carries the degree" 3 tr.Server.replicas;
  Alcotest.(check int) "one divergent group" 1 tr.Server.divergences;
  Alcotest.(check int) "six replica groups" 6
    (Metrics.counter_value r.Server.registry "serve.replica.groups");
  Alcotest.(check int) "corruption consumed" 1
    (Metrics.counter_value r.Server.registry "serve.replica.corruptions");
  Alcotest.(check int) "divergence observed" 1
    (Metrics.counter_value r.Server.registry "serve.replica.divergent");
  Alcotest.(check int) "and masked by the vote" 1
    (Metrics.counter_value r.Server.registry "serve.replica.masked")

let test_server_clean_replication_agrees () =
  let inst = replicated_inst () in
  let r = Server.run inst (replicated_cfg ~check:true 17) in
  let tr = List.hd r.Server.tenant_reports in
  Alcotest.(check int) "no divergences without injected corruption" 0
    tr.Server.divergences;
  Alcotest.(check int) "no masked votes" 0
    (Metrics.counter_value r.Server.registry "serve.replica.masked")

let test_server_detects_planted_voter () =
  (* the replica-agreement invariant must catch vote-skip: the corrupted
     replica 0 wins the planted vote while the honest plurality disagrees *)
  with_plant "vote-skip" (fun () ->
      let inst = replicated_inst () in
      Modifiers.arm_corruption (Machine.modifiers inst.Sys_.machine) ~seed:6;
      match Server.run inst (replicated_cfg ~check:true 17) with
      | exception Chipsim.Invariant.Violation msg ->
          Alcotest.(check bool)
            (Printf.sprintf "violation names the vote: %s" msg)
            true
            (contains msg "voted token")
      | _ -> Alcotest.fail "planted vote-skip went undetected")

let test_server_replication_deterministic () =
  let run () =
    let inst = replicated_inst () in
    Modifiers.arm_corruption (Machine.modifiers inst.Sys_.machine) ~seed:6;
    Server.report_to_json (Server.run inst (replicated_cfg ~check:false 23))
  in
  Alcotest.(check string) "same seed, identical report" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "token deterministic" `Quick test_token_deterministic;
    Alcotest.test_case "corruption flips one bit" `Quick
      test_corrupt_single_bit;
    Alcotest.test_case "majority masks the minority" `Quick
      test_majority_masks_minority;
    Alcotest.test_case "tie-break deterministic" `Quick test_majority_tie_break;
    Alcotest.test_case "empty groups rejected" `Quick test_empty_group_invalid;
    Alcotest.test_case "vote honest and planted" `Quick test_vote_and_plant;
    Alcotest.test_case "unanimity" `Quick test_unanimous;
    Alcotest.test_case "placement never co-locates" `Quick
      test_placement_distinct;
    Alcotest.test_case "placement rotates and clamps" `Quick
      test_placement_rotates_and_clamps;
    Alcotest.test_case "--replicate spec parsing" `Quick test_replicate_spec;
    Alcotest.test_case "server votes out corruption" `Quick
      test_server_votes_out_corruption;
    Alcotest.test_case "clean replication agrees" `Quick
      test_server_clean_replication_agrees;
    Alcotest.test_case "planted voter detected" `Quick
      test_server_detects_planted_voter;
    Alcotest.test_case "replicated serving deterministic" `Quick
      test_server_replication_deterministic;
  ]
