(* Property tests for the memory-channel ring, locking in the wraparound
   aliasing fix: stale accesses (older than the ring's retained window)
   are counted but never clobber a newer bin's demand history, and byte
   accounting balances for any access pattern. *)

open Chipsim

let line_bytes = 64
let bin_ns = 100.0
let slots = 4

let mk () =
  Memchan.create ~bin_ns ~slots ~nodes:1 ~channels_per_node:2
    ~bytes_per_ns_per_channel:1.0 ~line_bytes ()

let now_of_bin bin = (float_of_int bin *. bin_ns) +. 10.0

(* any interleaving of in-order, lagging and wrapped accesses keeps the
   ring's conservation invariants and loses no bytes *)
let prop_conservation =
  QCheck.Test.make ~name:"ring conserves bytes under any access pattern"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (int_range 0 12))
    (fun bins ->
      let c = mk () in
      List.iter
        (fun bin ->
          ignore (Memchan.access_ns c ~node:0 ~now_ns:(now_of_bin bin) ~base_ns:50.0))
        bins;
      Memchan.check_invariants c;
      Memchan.bytes_served c ~node:0 = line_bytes * List.length bins)

(* an access aliasing a recycled slot (same slot index, [slots * k] bins
   behind the slot's current occupant) must count as stale and leave the
   newer bin's demand untouched *)
let prop_stale_does_not_clobber =
  QCheck.Test.make
    ~name:"stale access counts without clobbering the newer bin" ~count:200
    QCheck.(triple (int_range 4 12) (int_range 1 3) (int_range 1 20))
    (fun (high_bin, lag_rings, burst) ->
      let low_bin = high_bin - (slots * lag_rings) in
      QCheck.assume (low_bin >= 0 && lag_rings >= 1 && burst >= 1);
      let c = mk () in
      let now_high = now_of_bin high_bin in
      for _ = 1 to burst do
        ignore (Memchan.access_ns c ~node:0 ~now_ns:now_high ~base_ns:50.0)
      done;
      let load_before = Memchan.load_ratio c ~node:0 ~now_ns:now_high in
      ignore
        (Memchan.access_ns c ~node:0 ~now_ns:(now_of_bin low_bin) ~base_ns:50.0);
      Memchan.check_invariants c;
      Memchan.stale_accesses c = 1
      && abs_float (Memchan.load_ratio c ~node:0 ~now_ns:now_high -. load_before)
         < 1e-9
      && Memchan.bytes_served c ~node:0 = line_bytes * (burst + 1))

(* accesses inside the retained window are never misclassified as stale *)
let prop_retained_window_not_stale =
  QCheck.Test.make ~name:"retained-window accesses are never stale" ~count:200
    QCheck.(pair (int_range 4 12) (int_range 1 3))
    (fun (high_bin, back) ->
      let c = mk () in
      ignore
        (Memchan.access_ns c ~node:0 ~now_ns:(now_of_bin high_bin) ~base_ns:50.0);
      ignore
        (Memchan.access_ns c ~node:0
           ~now_ns:(now_of_bin (high_bin - back))
           ~base_ns:50.0);
      Memchan.check_invariants c;
      Memchan.stale_accesses c = 0)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_conservation; prop_stale_does_not_clobber; prop_retained_window_not_stale ]
