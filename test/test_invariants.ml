(* The invariant layer catches tampering and passes clean runs. *)

open Chipsim
open Engine

let machine () = Machine.create (Presets.amd_milan ())

let violation f =
  match f () with
  | _ -> None
  | exception Invariant.Violation msg -> Some msg

let test_clean_checked_run () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:4 ~placement:(fun w -> w) in
  Sched.set_check sched true;
  Alcotest.(check bool) "enabled" true (Sched.check_enabled sched);
  for i = 1 to 32 do
    ignore
      (Sched.spawn sched ~at:(float_of_int (i * 10)) (fun ctx ->
           Sched.Ctx.work ctx 200.0;
           ignore (Sched.Ctx.spawn ctx (fun ctx' -> Sched.Ctx.work ctx' 50.0))))
  done;
  ignore (Sched.run sched : float);
  (* explicit re-verification is idempotent *)
  Sched.check_quiescent sched;
  Machine.check_invariants_full m

let test_pmu_tamper_caught () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  let region = Machine.alloc m ~elt_bytes:8 ~count:1024 () in
  ignore
    (Sched.spawn sched (fun ctx ->
         for i = 0 to 255 do
           Sched.Ctx.read ctx region i
         done));
  ignore (Sched.run sched : float);
  Machine.check_invariants m;
  (* bump one fill class without a matching access: conservation breaks *)
  Pmu.incr (Machine.pmu m) ~core:0 Pmu.L2_hit;
  match violation (fun () -> Machine.check_invariants m) with
  | Some msg ->
      Alcotest.(check bool) "names the fill conservation law" true
        (String.length msg > 0)
  | None -> Alcotest.fail "tampered PMU passed the conservation check"

let test_backwards_clock_caught () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  Sched.set_check sched true;
  ignore
    (Sched.spawn sched (fun ctx ->
         Sched.Ctx.work ctx 100.0;
         (* a buggy policy hook refunding more time than the quantum used:
            the worker clock lands before the quantum started *)
         Sched.charge sched ~worker:0 (-1e9)));
  (match violation (fun () -> ignore (Sched.run sched : float)) with
  | Some _ -> ()
  | None -> Alcotest.fail "backwards clock passed the monotonicity check");
  Alcotest.(check bool) "still enabled after violation" true
    (Sched.check_enabled sched)

let test_checked_serve_run () =
  let inst =
    Harness.Systems.make ~cache_scale:16 Harness.Systems.Charm
      Harness.Systems.Amd_milan_1s ~n_workers:4 ()
  in
  let cfg = Serving.Server.default_config ~seed:7 in
  let cfg =
    {
      cfg with
      Serving.Server.check = true;
      tenants =
        List.map
          (fun t -> { t with Serving.Server.jobs = 4 })
          cfg.Serving.Server.tenants;
    }
  in
  let report = Serving.Server.run inst cfg in
  Alcotest.(check bool) "completed jobs" true
    (List.exists
       (fun t -> t.Serving.Server.completed > 0)
       report.Serving.Server.tenant_reports)

let test_catalog_nonempty () =
  Alcotest.(check bool) "catalog covers every layer" true
    (List.length Check.Invariants.catalog >= 8);
  List.iter
    (fun (name, statement) ->
      Alcotest.(check bool) (name ^ " described") true
        (String.length statement > 0))
    Check.Invariants.catalog

let suite =
  [
    Alcotest.test_case "clean checked run passes" `Quick test_clean_checked_run;
    Alcotest.test_case "pmu tamper caught" `Quick test_pmu_tamper_caught;
    Alcotest.test_case "backwards clock caught" `Quick test_backwards_clock_caught;
    Alcotest.test_case "checked serve run passes" `Quick test_checked_serve_run;
    Alcotest.test_case "catalog nonempty" `Quick test_catalog_nonempty;
  ]
