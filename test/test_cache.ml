open Chipsim

let small () = Cache.create ~ways:4 ~size_bytes:4096 ~line_bytes:64 ()
(* 4096/64 = 64 lines, 4 ways -> 16 sets *)

let is_hit r = r = Cache.hit

let test_geometry () =
  let c = small () in
  Alcotest.(check int) "ways" 4 (Cache.ways c);
  Alcotest.(check int) "sets" 16 (Cache.sets c);
  Alcotest.(check int) "bytes" 4096 (Cache.size_bytes c)

let test_hit_after_insert () =
  let c = small () in
  Alcotest.(check bool) "first is miss" false (is_hit (Cache.access c 42));
  Alcotest.(check bool) "second is hit" true (is_hit (Cache.access c 42));
  Alcotest.(check bool) "probe" true (Cache.probe c 42);
  Alcotest.(check int) "occupancy" 1 (Cache.occupancy c)

let test_lru_eviction () =
  let c = Cache.create ~ways:2 ~size_bytes:128 ~line_bytes:64 () in
  (* one set, two ways *)
  ignore (Cache.access c 1);
  ignore (Cache.access c 2);
  ignore (Cache.access c 1);  (* 1 is now MRU *)
  let victim = Cache.access c 3 in
  if victim < 0 then Alcotest.fail "expected an eviction";
  Alcotest.(check int) "LRU way evicted" 2 victim;
  Alcotest.(check bool) "1 survives" true (Cache.probe c 1)

let test_invalidate () =
  let c = small () in
  ignore (Cache.access c 9);
  Alcotest.(check bool) "present" true (Cache.invalidate c 9);
  Alcotest.(check bool) "absent" false (Cache.invalidate c 9);
  Alcotest.(check bool) "miss after invalidate" false (is_hit (Cache.access c 9))

let test_clear () =
  let c = small () in
  for i = 0 to 63 do
    ignore (Cache.access c i)
  done;
  Cache.clear c;
  Alcotest.(check int) "empty" 0 (Cache.occupancy c)

let test_bad_geometry () =
  try
    ignore (Cache.create ~ways:16 ~size_bytes:512 ~line_bytes:64 ());
    Alcotest.fail "accepted cache smaller than one set"
  with Invalid_argument _ -> ()

let prop_occupancy_bounded =
  QCheck.Test.make ~name:"occupancy never exceeds capacity" ~count:50
    QCheck.(list_of_size (Gen.int_range 1 500) (int_range 0 10_000))
    (fun lines ->
      let c = small () in
      List.iter (fun l -> ignore (Cache.access c l)) lines;
      Cache.occupancy c <= 64)

let prop_present_after_access =
  QCheck.Test.make ~name:"a just-accessed line probes present" ~count:100
    QCheck.(pair (int_range 0 10_000) (list_of_size (Gen.int_range 0 50) (int_range 0 10_000)))
    (fun (line, prefix) ->
      let c = small () in
      List.iter (fun l -> ignore (Cache.access c l)) prefix;
      ignore (Cache.access c line);
      Cache.probe c line)

let suite =
  [
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "hit after insert" `Quick test_hit_after_insert;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "invalidate" `Quick test_invalidate;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "bad geometry" `Quick test_bad_geometry;
    QCheck_alcotest.to_alcotest prop_occupancy_bounded;
    QCheck_alcotest.to_alcotest prop_present_after_access;
  ]
