let () =
  Alcotest.run "db"
    [
      ("exec", Test_exec.suite);
      ("olap", Test_olap.suite);
      ("oltp", Test_oltp.suite);
    ]
