let () =
  Alcotest.run "engine"
    [
      ("rng", Test_rng.suite);
      ("coroutine", Test_coroutine.suite);
      ("wsqueue", Test_wsqueue.suite);
      ("sched-smoke", Test_sched_smoke.suite);
      ("sched", Test_sched.suite);
      ("barrier", Test_barrier.suite);
      ("future", Test_future.suite);
      ("trace", Test_trace.suite);
      ("par", Test_par.suite);
    ]
