open Chipsim
open Engine

let machine () = Machine.create (Presets.amd_milan ())

let test_migrate () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  Sched.migrate sched ~worker:0 ~core:32;
  Alcotest.(check int) "new core" 32 (Sched.worker_core sched 0);
  Alcotest.(check (option int)) "ownership moved" (Some 0) (Sched.worker_of_core sched 32);
  Alcotest.(check (option int)) "old core free" None (Sched.worker_of_core sched 0);
  Alcotest.(check bool) "migration charged" true (Sched.worker_clock sched 0 > 0.0);
  Alcotest.(check int) "pmu migration" 1 (Pmu.read (Machine.pmu m) ~core:32 Pmu.Migration);
  Alcotest.check_raises "occupied target"
    (Invalid_argument "Sched.migrate: core 1 already owned by worker 1") (fun () ->
      Sched.migrate sched ~worker:0 ~core:1)

let test_placement_collision_rejected () =
  let m = machine () in
  try
    ignore (Sched.create m ~n_workers:2 ~placement:(fun _ -> 3));
    Alcotest.fail "accepted colliding placement"
  with Invalid_argument _ -> ()

let test_deadlock_detected () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  ignore
    (Sched.spawn sched (fun ctx ->
         (* suspend with a registrar that never wakes us *)
         Sched.Ctx.suspend ctx (fun _task -> ())));
  Alcotest.check_raises "deadlock" Sched.Deadlock (fun () ->
      ignore (Sched.run sched : float))

let test_ready_at_delays () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  let seen = ref 0.0 in
  ignore
    (Sched.spawn sched ~at:5_000.0 (fun ctx -> seen := Sched.Ctx.now ctx));
  ignore (Sched.run sched : float);
  Alcotest.(check bool) "not before ready time" true (!seen >= 5_000.0)

let test_os_threads_cost_more () =
  let run_with config =
    let m = machine () in
    let sched = Sched.create ~config m ~n_workers:4 ~placement:(fun w -> w) in
    for _ = 1 to 64 do
      ignore (Sched.spawn sched (fun ctx -> Sched.Ctx.work ctx 100.0))
    done;
    Sched.run sched
  in
  let coroutines = run_with Sched.default_config in
  let os_threads =
    run_with
      {
        Sched.default_config with
        Sched.task_model = Sched.Os_threads { spawn_ns = 20_000.0; switch_ns = 2_000.0 };
      }
  in
  Alcotest.(check bool) "kernel threads slower" true (os_threads > 3.0 *. coroutines)

let test_concurrency_samples () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  for _ = 1 to 8 do
    ignore (Sched.spawn sched (fun ctx -> Sched.Ctx.work ctx 50.0))
  done;
  ignore (Sched.run sched : float);
  let samples = Sched.concurrency_samples sched in
  Alcotest.(check int) "one sample per finish" 8 (Array.length samples);
  let _, last = samples.(Array.length samples - 1) in
  Alcotest.(check int) "drains to zero" 0 last

let test_worker_local_spawn () =
  let m = machine () in
  let sched = Sched.create ~config:{ Sched.default_config with Sched.steal_enabled = false }
      m ~n_workers:2 ~placement:(fun w -> w) in
  let child_worker = ref (-1) in
  ignore
    (Sched.spawn sched ~worker:1 (fun ctx ->
         let child = Sched.Ctx.spawn ctx (fun ctx' -> child_worker := Sched.Ctx.worker_id ctx') in
         Sched.Ctx.await ctx child));
  ignore (Sched.run sched : float);
  Alcotest.(check int) "child inherits spawner's worker" 1 !child_worker

let test_charge () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  Sched.charge sched ~worker:0 123.0;
  Alcotest.(check (float 0.001)) "charged" 123.0 (Sched.worker_clock sched 0)

let test_quantum_hook_runs () =
  let m = machine () in
  let count = ref 0 in
  let hooks =
    { Sched.no_hooks with Sched.on_quantum_end = (fun _ _ -> incr count) }
  in
  let sched = Sched.create ~hooks m ~n_workers:1 ~placement:(fun w -> w) in
  ignore
    (Sched.spawn sched (fun ctx ->
         Sched.Ctx.yield ctx;
         Sched.Ctx.yield ctx));
  ignore (Sched.run sched : float);
  Alcotest.(check int) "hook per quantum" 3 !count

let test_sync_clocks () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:3 ~placement:(fun w -> w) in
  Sched.charge sched ~worker:1 5_000.0;
  Sched.sync_clocks sched;
  for w = 0 to 2 do
    Alcotest.(check (float 0.001)) "aligned" 5_000.0 (Sched.worker_clock sched w)
  done

(* Regression: Ctx.range used to count accesses per element instead of per
   line touched, so the quantum budget and Machine.accesses disagreed for
   any region whose elements are smaller than a cache line. *)
let test_range_accounting_matches_machine () =
  let m = machine () in
  let region = Machine.alloc m ~elt_bytes:8 ~count:1000 () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  let quantum = ref 0 and delta = ref 0 in
  ignore
    (Sched.spawn sched (fun ctx ->
         let before = Machine.accesses m in
         Sched.Ctx.read_range ctx region ~lo:3 ~hi:997;
         quantum := Sched.Ctx.quantum_accesses ctx;
         delta := Machine.accesses m - before));
  ignore (Sched.run sched : float);
  (* independently count the distinct lines the range spans *)
  let line_bytes = (Machine.topology m).Topology.line_bytes in
  let lines = Hashtbl.create 64 in
  for i = 3 to 996 do
    Hashtbl.replace lines (Simmem.addr region i / line_bytes) ()
  done;
  Alcotest.(check int) "task charged per line" (Hashtbl.length lines) !quantum;
  Alcotest.(check int) "machine counter agrees" !delta !quantum

(* Regression: a steal sweep that refuses every queued task (all beyond the
   thief's horizon) used to rotate the victim's run order as a side effect. *)
let test_refused_steal_preserves_order () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  Sched.charge sched ~worker:0 1_000_000.0;
  let ids =
    List.init 5 (fun _ ->
        Sched.task_id
          (Sched.spawn sched ~worker:0 ~at:1_000_000.0 (fun _ -> ())))
  in
  Alcotest.(check (list int)) "all queued ready" ids (Sched.ready_queue_ids sched 0);
  (* the thief's clock is 0, so every task sits beyond its steal horizon *)
  Alcotest.(check int) "sweep refuses all" (-1) (Sched.steal_once sched ~thief:1 ~victim:0);
  Alcotest.(check (list int)) "victim order untouched" ids (Sched.ready_queue_ids sched 0);
  (* advance the thief: the oldest task is now inside the horizon *)
  Sched.charge sched ~worker:1 1_000_000.0;
  Alcotest.(check int) "steals oldest first" (List.hd ids)
    (Sched.steal_once sched ~thief:1 ~victim:0);
  Alcotest.(check (list int)) "remainder keeps order" (List.tl ids)
    (Sched.ready_queue_ids sched 0)

(* Regression: sync_clocks aligned the worker clocks but left the event
   heap holding the old keys, so the next pick could dequeue a worker far
   out of clock order. *)
let test_sync_clocks_refreshes_heap () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:3 ~placement:(fun w -> w) in
  Sched.charge sched ~worker:1 5_000.0;
  Sched.sync_clocks sched;
  let snap = Sched.heap_snapshot sched in
  Alcotest.(check int) "one heap entry per worker" 3 (Array.length snap);
  Array.iter
    (fun (key, wid) ->
      Alcotest.(check (float 0.001)) "heap key tracks synced clock"
        (Sched.worker_clock sched wid) key;
      Alcotest.(check (float 0.001)) "synced to the max clock" 5_000.0 key)
    snap

(* The per-access path (Ctx.read -> Machine.access_clk -> cache, directory,
   page map, channel charge) must stay allocation-free: a boxed float pair
   per access already costs 32 bytes.  The budget leaves slack for quantum
   switches and amortised metadata growth. *)
let test_access_path_allocation_budget () =
  let m = machine () in
  let region = Machine.alloc m ~elt_bytes:8 ~count:4096 () in
  let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
  let n = 200_000 in
  ignore
    (Sched.spawn sched (fun ctx ->
         for i = 0 to n - 1 do
           Sched.Ctx.read ctx region (i land 4095);
           Sched.Ctx.maybe_yield ctx
         done));
  let before = Gc.allocated_bytes () in
  ignore (Sched.run sched : float);
  let per_access = (Gc.allocated_bytes () -. before) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f bytes/access within budget" per_access)
    true
    (per_access < 16.0)

let suite =
  [
    Alcotest.test_case "migrate" `Quick test_migrate;
    Alcotest.test_case "sync_clocks" `Quick test_sync_clocks;
    Alcotest.test_case "placement collision rejected" `Quick test_placement_collision_rejected;
    Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
    Alcotest.test_case "ready_at delays" `Quick test_ready_at_delays;
    Alcotest.test_case "os threads cost more" `Quick test_os_threads_cost_more;
    Alcotest.test_case "concurrency samples" `Quick test_concurrency_samples;
    Alcotest.test_case "worker-local spawn" `Quick test_worker_local_spawn;
    Alcotest.test_case "external charge" `Quick test_charge;
    Alcotest.test_case "quantum hook" `Quick test_quantum_hook_runs;
    Alcotest.test_case "range accounting matches machine" `Quick
      test_range_accounting_matches_machine;
    Alcotest.test_case "refused steal preserves order" `Quick
      test_refused_steal_preserves_order;
    Alcotest.test_case "sync_clocks refreshes heap" `Quick
      test_sync_clocks_refreshes_heap;
    Alcotest.test_case "access path allocation budget" `Quick
      test_access_path_allocation_budget;
  ]
