(* Property tests for the serving layer's log-bucketed histogram: quantile
   ordering, bucket-width accuracy against exact sorted quantiles, and the
   junk-sample (negative / NaN / infinite) guard. *)

let growth = 1.12

let exact_quantile sorted q =
  let n = Array.length sorted in
  let k = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  sorted.(min (n - 1) (k - 1))

(* p50 <= p99 <= p999 and every quantile is bounded by the largest sample's
   bucket — even when the stream contains junk *)
let junk_sample =
  QCheck.Gen.(
    frequency
      [
        (6, float_range 0.5 1e9);
        (1, return nan);
        (1, return infinity);
        (1, float_range (-100.0) 0.0);
      ])

let prop_ordering =
  QCheck.Test.make ~name:"quantiles are ordered (junk tolerated)" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 200) junk_sample))
    (fun samples ->
      let h = Serving.Histogram.create () in
      List.iter (Serving.Histogram.observe h) samples;
      let p50 = Serving.Histogram.p50 h in
      let p99 = Serving.Histogram.p99 h in
      let p999 = Serving.Histogram.p999 h in
      Serving.Histogram.count h = List.length samples
      && p50 <= p99 && p99 <= p999
      && p999 <= Serving.Histogram.quantile h 1.0)

(* against clean samples the reported quantile brackets the exact sorted
   quantile within one geometric bucket (relative error <= growth - 1) *)
let prop_accuracy =
  QCheck.Test.make ~name:"quantiles within one bucket of exact" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 300) (float_range 1.0 1e9))
    (fun samples ->
      let h = Serving.Histogram.create ~growth () in
      List.iter (Serving.Histogram.observe h) samples;
      let sorted = Array.of_list samples in
      Array.sort compare sorted;
      List.for_all
        (fun q ->
          let exact = exact_quantile sorted q in
          let reported = Serving.Histogram.quantile h q in
          reported >= exact *. (1.0 -. 1e-9)
          && reported <= exact *. growth *. (1.0 +. 1e-9))
        [ 0.5; 0.9; 0.99; 0.999 ])

(* the overflow / NaN guard: absurd samples land in the first or top
   bucket instead of corrupting the counts array *)
let test_nan_and_overflow () =
  let h = Serving.Histogram.create () in
  Serving.Histogram.observe h nan;
  Serving.Histogram.observe h (-5.0);
  Serving.Histogram.observe h infinity;
  Serving.Histogram.observe h 1e300;
  Alcotest.(check int) "all junk samples counted" 4 (Serving.Histogram.count h);
  Alcotest.(check bool) "quantiles stay finite" true
    (Float.is_finite (Serving.Histogram.p50 h)
    && Float.is_finite (Serving.Histogram.p999 h))

let suite =
  Alcotest.test_case "nan and overflow guard" `Quick test_nan_and_overflow
  :: List.map QCheck_alcotest.to_alcotest [ prop_ordering; prop_accuracy ]
